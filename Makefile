# Convenience entry points; everything is plain dune underneath.

.PHONY: build test bench bench-full bench-smoke serve-smoke metrics-smoke proc-smoke chaos-smoke clean

build:
	dune build

test:
	dune runtest

# Full experiment regeneration (slow: every table E1-E14, A, B, B6-B10).
bench:
	dune exec bench/main.exe

EXPERIMENTS = E1-E3 E4-E5 E6 E7 E8 E9 E10 E11 E12 E13 E14 A B B6 B7 B8 B9 B10 B11 B12 B13

# Regenerate every committed bench artifact (BENCH_*.json, bench_csv/ +
# MANIFEST.csv, bench_output.txt), one process per experiment.  The
# isolation is deliberate: OCaml 5.1 has no heap compaction (Gc.compact
# is just a full major), so a big-n experiment leaves a fragmented major
# heap that can tax everything after it in the same process by 2-8x on
# wall-clock — per-process runs keep each experiment's timings honest.
# BENCH_engine.json and bench_csv/MANIFEST.csv merge across processes.
bench-full:
	dune build
	rm -f bench_output.txt
	for e in $(EXPERIMENTS); do \
	  dune exec --no-build bench/main.exe -- --csv bench_csv $$e \
	    >> bench_output.txt 2>&1 || exit 1; \
	done
	@tail -5 bench_output.txt

# Fast sanity pass used by CI: one analytic experiment plus the engine
# stepping comparison on a small instance, regression-gated against the
# committed baseline (loose tolerance; only catastrophic slowdowns fail).
bench-smoke:
	dune exec bench/main.exe -- E11
	cp BENCH_engine.json bench-baseline.json
	TL_ENGINE_BENCH_N=2000 TL_ENGINE_BENCH_KERNELS=cv3 dune exec bench/main.exe -- B6
	TL_POOL_BENCH_N=2000 dune exec bench/main.exe -- B7
	TL_SHARD_BENCH_N=2000 dune exec bench/main.exe -- B8
	TL_METRICS_BENCH_N=20000 dune exec bench/main.exe -- B10
	TL_FLAT_BENCH_N=20000 dune exec bench/main.exe -- B11
	TL_PROC_BENCH_N=20000 dune exec bench/main.exe -- B12
	TL_FAULT_BENCH_N=20000 dune exec bench/main.exe -- B13
	dune exec bench/regress.exe -- --tolerance 5.0 bench-baseline.json BENCH_engine.json
	cp BENCH_serve.json serve-baseline.json
	TL_SERVE_BENCH_N=2000 TL_SERVE_BENCH_R=20 dune exec bench/main.exe -- B9
	dune exec bench/regress.exe -- --tolerance 5.0 serve-baseline.json BENCH_serve.json
	dune exec examples/quickstart.exe

# End-to-end smoke of the serving layer: the example client spawns the
# real daemon over pipes (cold request, warm cache-hit repeat, stats,
# shutdown); the grep asserts the clean exit and the digest check
# asserts cold and warm served bit-identical results.
serve-smoke:
	dune build bin/tree_local_serve.exe examples/serve_client.exe
	dune exec examples/serve_client.exe | tee serve_smoke.out
	grep -q "daemon exited cleanly" serve_smoke.out
	test "$$(grep -oE 'digest=[0-9a-f]+' serve_smoke.out | head -2 | sort -u | wc -l)" -eq 1
	grep -q "cache_hit=true" serve_smoke.out
	grep -q "pool-spawns first=[0-9]* second=[0-9]* stable=true" serve_smoke.out
	rm -f serve_smoke.out

# Live-metrics smoke: the example client spawns the real daemon over
# pipes, fires a burst of solves, then scrapes the registry through the
# `metrics` control. The PASS lines it prints assert the core
# invariants: serve_request_seconds histogram count == serve_served_total
# (one observation per served request, no more, no less), the prom
# rendering is well-formed line-by-line, and the flight recorder's tail
# covers the burst.
metrics-smoke:
	dune build bin/tree_local_serve.exe examples/metrics_smoke.exe
	dune exec examples/metrics_smoke.exe | tee metrics_smoke.out
	grep -q "PASS histogram count == served counter" metrics_smoke.out
	grep -q "PASS prometheus exposition well-formed" metrics_smoke.out
	test "$$(grep -c FAIL metrics_smoke.out)" -eq 0
	rm -f metrics_smoke.out

# Chaos smoke: seeded crash-stop / crash-recover / link-drop / worker
# kill schedules driven through Tl_fault.Chaos on flood and MIS. Every
# scenario asserts final validity on the surviving graph and replay
# determinism (identical event log, repair counts and digest); the
# cross-mode scenarios also assert digest equality across backends.
# Runs in its own process: the proc-kill scenario forks, so it must
# precede any domain spawn (OCaml 5 forbids fork after one).
chaos-smoke:
	dune build examples/chaos_smoke.exe
	dune exec --no-build examples/chaos_smoke.exe

# Process-backend smoke: proc:{1,2,4} digest-identical to seq (flood
# and the full Theorem 12 MIS pipeline), worker crash containment
# (Failure surfaces verbatim, no zombies), and the fork-after-domain
# guard. Runs in its own process because OCaml 5 forbids fork once a
# domain has spawned.
proc-smoke:
	dune build examples/proc_smoke.exe
	dune exec --no-build examples/proc_smoke.exe

clean:
	dune clean
