# Convenience entry points; everything is plain dune underneath.

.PHONY: build test bench bench-smoke clean

build:
	dune build

test:
	dune runtest

# Full experiment regeneration (slow: every table E1-E14, A, B, B6).
bench:
	dune exec bench/main.exe

# Fast sanity pass used by CI: one analytic experiment plus the engine
# stepping comparison on a small instance, regression-gated against the
# committed baseline (loose tolerance; only catastrophic slowdowns fail).
bench-smoke:
	dune exec bench/main.exe -- E11
	cp BENCH_engine.json bench-baseline.json
	TL_ENGINE_BENCH_N=2000 TL_ENGINE_BENCH_KERNELS=cv3 dune exec bench/main.exe -- B6
	TL_POOL_BENCH_N=2000 dune exec bench/main.exe -- B7
	dune exec bench/regress.exe -- --tolerance 5.0 bench-baseline.json BENCH_engine.json
	dune exec examples/quickstart.exe

clean:
	dune clean
