(* A1-A4: ablations of the design choices called out in DESIGN.md.

   A1: the decomposition parameter k. Theorem 12's proof sets k = g(n);
       sweeping k shows the two competing costs (f(k) for the base
       algorithm on T_C vs log_k n for the decomposition and the rake
       components) and that k = g(n) sits near the minimum.
   A2: Theorem 15's rho (k = g(n)^rho).
   A3: Algorithm 3's b. Lemma 13 uses b = 2a; smaller b stalls the
       process (more iterations), larger b makes more star families.
   A4: ID-assignment robustness: the deterministic pipelines stay valid
       and within a narrow round band across adversarial ID schemes. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Ids = Tl_local.Ids
module Pipeline = Tl_core.Pipeline
module Complexity = Tl_core.Complexity
module Round_cost = Tl_local.Round_cost

let a1_k_sweep () =
  Util.subheading "A1: k-sweep for Theorem 12 (MIS, balanced-d8 tree, n = 30000)";
  let tree = Gen.balanced_regular_tree ~delta:8 ~n:30_000 in
  let ids = Util.ids_for tree 97 in
  let g_n = Complexity.choose_k ~f:Complexity.f_linear ~n:30_000 in
  let rows = ref [] in
  List.iter
    (fun k ->
      let r = Pipeline.mis_on_tree ~k ~tree ~ids () in
      rows :=
        [
          Util.i k;
          (if k = g_n then "<- g(n)" else "");
          Util.i (Round_cost.get r.Pipeline.cost "decompose");
          Util.i (Round_cost.get r.Pipeline.cost "base:A(T_C)");
          Util.i (Round_cost.get r.Pipeline.cost "gather-solve(T_R)");
          Util.i r.Pipeline.total_rounds;
          Util.pass_fail r.Pipeline.valid;
        ]
        :: !rows)
    [ 2; 3; 4; g_n; 8; 16; 32; 64 ];
  Util.table
    ~header:[ "k"; ""; "decompose"; "base A"; "gather"; "total"; "valid" ]
    (List.rev !rows)

let a2_rho_sweep () =
  Util.subheading "A2: rho-sweep for Theorem 15 (edge coloring, union-a2, n = 30000)";
  let g = Gen.forest_union ~n:30_000 ~arboricity:2 ~seed:101 in
  let ids = Util.ids_for g 103 in
  let rows = ref [] in
  List.iter
    (fun rho ->
      let r = Pipeline.edge_coloring_on_graph ~rho ~graph:g ~a:2 ~ids () in
      rows :=
        [
          Util.i rho;
          Util.i r.Pipeline.k;
          Util.i (Round_cost.get r.Pipeline.cost "decompose");
          Util.i (Round_cost.get r.Pipeline.cost "base:A(G[E2])");
          Util.i r.Pipeline.total_rounds;
          Util.pass_fail r.Pipeline.valid;
        ]
        :: !rows)
    [ 1; 2; 3; 4 ];
  Util.table
    ~header:[ "rho"; "k=g^rho"; "decompose"; "base A"; "total"; "valid" ]
    (List.rev !rows)

let a3_b_sweep () =
  Util.subheading "A3: b-sweep for Algorithm 3 (hubs-a2, n = 20000, k = 20)";
  (* run the raw decomposition with different b by varying the declared a
     (b = 2a internally); the Lemma 13 guarantee needs b >= 2a_true *)
  let g = Gen.power_law_union ~n:20_000 ~arboricity:2 ~seed:107 in
  let ids = Util.ids_for g 109 in
  let rows = ref [] in
  List.iter
    (fun declared_a ->
      match
        Tl_decompose.Arb_decompose.run g ~a:declared_a ~k:(10 * declared_a) ~ids
      with
      | d ->
        rows :=
          [
            Util.i (2 * declared_a);
            Util.i (10 * declared_a);
            Util.i (Tl_decompose.Arb_decompose.iterations d);
            Util.i (List.length (Tl_decompose.Arb_decompose.atypical_edges d));
            "ok";
          ]
          :: !rows
      | exception Failure _ ->
        rows :=
          [ Util.i (2 * declared_a); Util.i (10 * declared_a); "-"; "-"; "guard fired" ]
          :: !rows)
    [ 1; 2; 3; 4 ];
  Util.table
    ~header:[ "b"; "k"; "iterations"; "atypical edges"; "outcome" ]
    (List.rev !rows)

let a4_id_robustness () =
  Util.subheading "A4: ID-assignment robustness (MIS on random tree, n = 20000)";
  let n = 20_000 in
  let tree = Gen.random_tree ~n ~seed:113 in
  let rows = ref [] in
  List.iter
    (fun (name, ids) ->
      let r = Pipeline.mis_on_tree ~tree ~ids () in
      rows :=
        [ name; Util.i r.Pipeline.total_rounds; Util.pass_fail r.Pipeline.valid ]
        :: !rows)
    [
      ("identity", Ids.identity n);
      ("reversed", Ids.reversed n);
      ("permuted", Ids.permuted ~n ~seed:127);
      ("spread n^2", Ids.spread ~n ~c:2 ~seed:131);
      ("spread n^3", Ids.spread ~n ~c:3 ~seed:137);
    ];
  Util.table ~header:[ "id scheme"; "rounds"; "valid" ] (List.rev !rows)

let run () =
  Util.heading "A1-A4: ablations";
  a1_k_sweep ();
  a2_rho_sweep ();
  a3_b_sweep ();
  a4_id_robustness ()
