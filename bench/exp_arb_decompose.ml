(* E4-E5: the Algorithm 3 decomposition on bounded-arboricity graphs.

   E4 (Lemma 13): all nodes marked within ceil(10 log_{k/a} n) + 1
                  iterations with b = 2a.
   E5 (Lemma 14 & structure): the typical edges induce a graph of degree
                  at most k; every node has at most 2a atypical edges;
                  every F_{i,j} component is a star. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module AD = Tl_decompose.Arb_decompose

let instances n seed =
  [
    ("tree", Gen.random_tree ~n ~seed, 1);
    ("union-a2", Gen.forest_union ~n ~arboricity:2 ~seed, 2);
    ("union-a4", Gen.forest_union ~n ~arboricity:4 ~seed, 4);
    (* preferential-attachment unions have high-degree hubs, the regime in
       which Algorithm 3 actually produces atypical edges *)
    ("hubs-a2", Gen.power_law_union ~n ~arboricity:2 ~seed, 2);
    ("hubs-a4", Gen.power_law_union ~n ~arboricity:4 ~seed, 4);
    ( "planar",
      (let side = int_of_float (Float.sqrt (float_of_int n)) in
       Gen.triangulated_grid (max 2 side)),
      3 );
  ]

let run () =
  Util.heading "E4-E5: Algorithm 3 decomposition certificates (Lemmas 13-14)";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, g, a) ->
          List.iter
            (fun k_factor ->
              let k = 5 * a * k_factor in
              let real_n = Graph.n_nodes g in
              let ids = Util.ids_for g 2000 in
              let d = AD.run g ~a ~k ~ids in
              rows :=
                [
                  Util.i real_n;
                  family;
                  Util.i a;
                  Util.i k;
                  Util.i (AD.iterations d);
                  Util.i (AD.lemma13_bound d);
                  Util.pass_fail (AD.check_lemma13 d);
                  Util.i (AD.typical_max_degree d);
                  Util.pass_fail (AD.check_lemma14 d);
                  Util.i (AD.max_atypical_per_node d);
                  Util.i (AD.b d);
                  Util.pass_fail (AD.check_atypical_bound d);
                  Util.pass_fail (AD.check_forests d && AD.check_stars d);
                  Util.i (AD.max_out_degree d);
                  Util.pass_fail (AD.check_acyclic_orientation d);
                ]
                :: !rows)
            [ 1; 4 ])
        (instances n 11))
    [ 100; 1_000; 10_000; 50_000 ];
  Util.table
    ~header:
      [
        "n"; "family"; "a"; "k"; "iters"; "L13 bound"; "L13"; "maxdeg(E2)";
        "L14"; "max atyp"; "b=2a"; "atyp<=b"; "stars"; "outdeg"; "acyclic<=k";
      ]
    (List.rev !rows)
