(* E12: Theorem 3's arboricity part — O(a + log^{12/13} n) rounds for
   (edge-degree+1)-edge coloring on graphs of arboricity
   a <= 2^{log^{1/13} n}.

   Sweep a at fixed n: the measured rounds should grow additively in a
   (through the O(a) star phases and the decomposition) while the
   f(k)-driven part stays put; planar graphs (a <= 3) in particular stay
   in the strongly sublogarithmic regime. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Pipeline = Tl_core.Pipeline
module Round_cost = Tl_local.Round_cost

let run () =
  Util.heading "E12: arboricity sweep for (edge-degree+1)-edge coloring";
  let n = 30_000 in
  let rows = ref [] in
  List.iter
    (fun a ->
      let g = Gen.forest_union ~n ~arboricity:a ~seed:53 in
      let ids = Util.ids_for g 59 in
      let r = Pipeline.edge_coloring_on_graph ~graph:g ~a ~ids () in
      let stars = Round_cost.get r.Pipeline.cost "gather-solve(stars)" in
      let base = Round_cost.get r.Pipeline.cost "base:A(G[E2])" in
      let decomp = Round_cost.get r.Pipeline.cost "decompose" in
      rows :=
        [
          Util.i a;
          Util.i (Graph.n_edges g);
          Util.i r.Pipeline.k;
          Util.i r.Pipeline.total_rounds;
          Util.i decomp;
          Util.i base;
          Util.i stars;
          Util.pass_fail r.Pipeline.valid;
          Util.pass_fail (stars = 6 * a * 2);
        ]
        :: !rows)
    [ 1; 2; 3; 4; 6; 8 ];
  Util.table
    ~header:
      [
        "a"; "m"; "k"; "total"; "decompose"; "base A"; "stars";
        "valid"; "stars=12a";
      ]
    (List.rev !rows);
  (* planar instance *)
  Util.subheading "planar graph (triangulated grid, a = 3)";
  let g = Gen.triangulated_grid 170 in
  let ids = Util.ids_for g 61 in
  let r = Pipeline.edge_coloring_on_graph ~graph:g ~a:3 ~ids () in
  Printf.printf "  n = %d, rounds = %d, valid = %b\n" (Graph.n_nodes g)
    r.Pipeline.total_rounds r.Pipeline.valid
