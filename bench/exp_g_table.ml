(* E11: the "concrete implications" table of Section 1.1.

   For each truly local complexity f discussed in the paper, solve
   g(n)^{f(g(n))} = n and report the transformed tree complexity f(g(n)),
   next to the closed-form the paper states:

     f(D) = D            =>  O(log n / log log n)   (MIS, matching)
     f(D) = sqrt(D logD) =>  (best known (deg+1)-coloring, [MT20])
     f(D) = 2^sqrt(logD) =>  O(log n / log^2 log n)
     f(D) = log^5 D      =>  O(log^{5/6} n)
     f(D) = log^12 D     =>  O(log^{12/13} n)       (Theorem 3)
*)

module Complexity = Tl_core.Complexity

let named_fs =
  [
    ("Delta", Complexity.f_linear, fun l -> l /. (Float.log l /. Float.log 2.));
    ( "sqrt(Delta logDelta)",
      Complexity.f_sqrt_log,
      fun l ->
        (* f(g) ~ sqrt(g log g); g log g... no tidy closed form: report the
           solver value itself as reference *)
        Complexity.theorem1_rounds_log ~f:Complexity.f_sqrt_log ~log2_n:l );
    ( "2^sqrt(logDelta)",
      Complexity.f_exp_sqrt_log,
      fun l ->
        let ll = Float.log l /. Float.log 2. in
        l /. (ll *. ll) );
    ( "log^5 Delta",
      Complexity.f_polylog ~exponent:5.0,
      fun l -> Float.pow l (5. /. 6.) );
    ( "log^12 Delta",
      Complexity.f_polylog ~exponent:12.0,
      fun l -> Float.pow l (12. /. 13.) );
  ]

let run () =
  Util.heading "E11: the g(n) solver and Section 1.1's concrete implications";
  List.iter
    (fun (name, f, closed) ->
      Util.subheading (Printf.sprintf "f(Delta) = %s" name);
      let rows = ref [] in
      List.iter
        (fun log2_n ->
          let g = Complexity.solve_g_log ~f ~log2_n in
          let transformed = f g in
          let reference = closed log2_n in
          rows :=
            [
              Printf.sprintf "2^%g" log2_n;
              Printf.sprintf "%.4g" g;
              Printf.sprintf "%.4g" transformed;
              Printf.sprintf "%.4g" reference;
              Util.f2 (transformed /. reference);
            ]
            :: !rows)
        [ 10.; 20.; 40.; 80.; 160.; 320.; 1000.; 10000. ];
      Util.table
        ~header:[ "n"; "g(n)"; "f(g(n)) [transformed]"; "paper closed form"; "ratio" ]
        (List.rev !rows))
    named_fs;
  Printf.printf
    "\n  The transformed complexity tracks the paper's closed form for each\n\
    \  f (ratios converge to a constant), mechanizing the Section 1.1 table.\n";
  (* the tightness discussion: a truly local lower bound Omega(h(Delta))
     on balanced regular trees lifts mechanically to Omega(h(g(n))) —
     with the same g as the upper-bound transformation, so matching truly
     local bounds give matching tree bounds *)
  Util.subheading
    "tightness: lifted lower bound vs transformed upper bound (f = h = Delta, MIS)";
  let rows =
    List.map
      (fun e ->
        let n = 1 lsl e in
        let lifted = Complexity.lift_lower_bound ~h:Complexity.f_linear ~n in
        let upper = Complexity.theorem1_rounds ~f:Complexity.f_linear ~n in
        [
          Printf.sprintf "2^%d" e;
          Printf.sprintf "%.3f" lifted;
          Printf.sprintf "%.3f" upper;
          Util.f2 (upper /. lifted);
        ])
      [ 10; 20; 30; 40; 50; 60 ]
  in
  Util.table
    ~header:
      [ "n"; "lifted LB h(g(n))"; "Thm 1 UB f(g(n)) + log*"; "UB/LB" ]
    rows;
  Printf.printf
    "\n  With h = f (MIS and maximal matching have Theta(Delta) truly local\n\
    \  complexity), the lifted lower bound and the transformed upper bound\n\
    \  are the same function of n up to the additive log* term: the\n\
    \  conditional-optimality argument of the paper's tightness discussion.\n"
