(* E10: Section 5.2 — maximal matching on trees in O(log n / log log n)
   rounds via Theorem 15 with f(Delta) = Theta(Delta), reproving the
   [BE13] upper bound generically.

   The measured rounds divided by log n / log log n should stay bounded
   (the constant depends on our executable base algorithm's constant
   factors), certifying the shape. *)

module Gen = Tl_graph.Gen
module Pipeline = Tl_core.Pipeline
module Complexity = Tl_core.Complexity

let run () =
  Util.heading "E10: maximal matching on trees (reproving [BE13])";
  let rows = ref [] in
  let ratios = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, tree) ->
          let ids = Util.ids_for tree 43 in
          let r = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
          let curve = Complexity.mis_lower_bound ~n in
          let ratio = float_of_int r.Pipeline.total_rounds /. curve in
          if family = "random" then ratios := ratio :: !ratios;
          rows :=
            [
              Util.i n;
              family;
              Util.i r.Pipeline.k;
              Util.i r.Pipeline.total_rounds;
              Util.f1 curve;
              Util.f2 ratio;
              Util.pass_fail r.Pipeline.valid;
            ]
            :: !rows)
        (Util.tree_families n 47))
    Util.n_sweep;
  Util.table
    ~header:
      [
        "n"; "family"; "k"; "rounds"; "log n/loglog n"; "rounds/curve"; "valid";
      ]
    (List.rev !rows);
  (* shape check: the ratio on random trees must not blow up with n *)
  let min_r = List.fold_left min infinity !ratios in
  let max_r = List.fold_left max 0.0 !ratios in
  Printf.printf
    "\n  rounds / (log n / log log n) stays within [%.1f, %.1f] across three\n\
    \  orders of magnitude — the O(log n / log log n) shape of [BE13].\n"
    min_r max_r
