(* E1-E3: the rake-and-compress lemmas (Lemmas 9, 10, 11).

   E1 (Lemma 9):  Algorithm 1 marks every node within ceil(log_k n) + 1
                  iterations.
   E2 (Lemma 10): the graph induced by edges with compressed lower
                  endpoint has maximum degree at most k.
   E3 (Lemma 11): every component of the raked subgraph has diameter at
                  most 4 (log_k n + 1) + 2. *)

module Gen = Tl_graph.Gen
module RC = Tl_decompose.Rake_compress

let run () =
  Util.heading "E1-E3: rake-and-compress certificates (Lemmas 9-11)";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, tree) ->
          List.iter
            (fun k ->
              let ids = Util.ids_for tree 1000 in
              let rc = RC.run tree ~k ~ids in
              let iters = RC.iterations rc in
              let ceil_log_k =
                let rec go acc p = if p >= n then acc else go (acc + 1) (p * k) in
                go 0 1
              in
              let e1_bound = ceil_log_k + 1 in
              let deg = RC.compress_part_max_degree rc in
              let diam =
                List.fold_left max 0 (RC.rake_component_diameters rc)
              in
              let e3_bound = RC.lemma11_bound rc in
              rows :=
                [
                  Util.i n;
                  family;
                  Util.i k;
                  Util.i iters;
                  Util.i e1_bound;
                  Util.pass_fail (iters <= e1_bound);
                  Util.i deg;
                  Util.pass_fail (deg <= k);
                  Util.i diam;
                  Util.i e3_bound;
                  Util.pass_fail (diam <= e3_bound);
                ]
                :: !rows)
            [ 2; 4; 16 ])
        (Util.tree_families n 7))
    Util.n_sweep;
  Util.table
    ~header:
      [
        "n"; "family"; "k"; "iters"; "L9 bound"; "L9"; "maxdeg(E_C)"; "L10";
        "rake diam"; "L11 bound"; "L11";
      ]
    (List.rev !rows)
