(* E13: the round-elimination context of Section 1.

   The paper grounds its tightness discussion in round elimination: lower
   bounds on the truly local complexity come from RE trajectories, and
   RE fixed points signal Omega(log n)-type bounds. We exhibit:
   - sinkless orientation as an R-fixed point for Delta = 3, 4, 5;
   - perfect matching and 2-coloring as fixed points;
   - MIS's growing trajectory (the engine behind the
     Omega(log n / log log n) barrier used in E9). *)

module Re = Tl_roundelim.Re

let run () =
  Util.heading "E13: round elimination — fixed points and growth";
  let rows = ref [] in
  List.iter
    (fun delta ->
      List.iter
        (fun p ->
          rows :=
            [
              p.Re.name;
              Util.i delta;
              Util.i (Array.length p.Re.alphabet);
              Util.i (List.length p.Re.node);
              Util.i (List.length p.Re.edge);
              Util.b (Re.is_fixed_point p);
            ]
            :: !rows)
        [
          Re.sinkless_orientation ~delta;
          Re.perfect_matching ~delta;
          Re.weak_2coloring ~delta;
        ])
    [ 3; 4; 5 ];
  Util.table
    ~header:[ "problem"; "Delta"; "|Sigma|"; "|N|"; "|E|"; "R-fixed point" ]
    (List.rev !rows);
  Util.subheading "the lower-bound loop (iterate R-bar . R until 0-round or fixed point)";
  let describe = function
    | Re.Zero_round_after t -> Printf.sprintf "0-round solvable after %d pairs" t
    | Re.Fixed_point_at t -> Printf.sprintf "fixed point at %d pairs (unbounded-T bound)" t
    | Re.Still_growing t -> Printf.sprintf "still growing after %d pairs" t
  in
  let trivial =
    Re.make ~name:"trivial" ~alphabet:[ "a" ] ~node_arity:3 ~edge_arity:2
      ~node:[ [ "a"; "a"; "a" ] ]
      ~edge:[ [ "a"; "a" ] ]
  in
  let rows =
    List.map
      (fun p -> [ p.Re.name; describe (Re.lower_bound_loop p) ])
      [
        trivial;
        Re.sinkless_orientation ~delta:3;
        Re.perfect_matching ~delta:3;
        Re.weak_2coloring ~delta:3;
        Re.mis ~delta:3;
      ]
  in
  Util.table ~header:[ "problem"; "loop outcome" ] rows;
  Util.subheading "MIS trajectory under alternating R / R-bar (Delta = 3)";
  let traj = Re.trajectory ~steps:3 (Re.mis ~delta:3) in
  let rows =
    List.mapi
      (fun i (a, n, e) -> [ Util.i i; Util.i a; Util.i n; Util.i e ])
      traj
  in
  Util.table ~header:[ "step"; "|Sigma|"; "|N|"; "|E|" ] rows;
  Printf.printf
    "\n  Sinkless orientation is an R-fixed point (the mechanism behind its\n\
    \  Theta(log n) bound); the MIS encoding grows without stabilizing —\n\
    \  the combinatorial engine behind the Omega(log n / log log n) lower\n\
    \  bound the paper separates edge coloring from.\n"
