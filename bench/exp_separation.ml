(* E9: the separation between the edge coloring problems and
   MIS / maximal matching on trees.

   MIS and maximal matching have a Omega(log n / log log n) lower bound on
   trees [BBH+21, BBKO22a] that their upper bounds match; Theorem 3 puts
   (edge-degree+1)- and (2Delta-1)-edge coloring strictly below that
   barrier. We report: measured rounds of our transformed algorithms for
   both problem groups (same executable substrate, so directly
   comparable), together with the two analytic curves. *)

module Gen = Tl_graph.Gen
module Pipeline = Tl_core.Pipeline
module Complexity = Tl_core.Complexity

let run () =
  Util.heading "E9: separation — edge coloring vs MIS/matching on trees";
  let rows = ref [] in
  List.iter
    (fun n ->
      let tree = Gen.random_tree ~n ~seed:37 in
      let ids = Util.ids_for tree 41 in
      let mis = Pipeline.mis_on_tree ~tree ~ids () in
      let matching = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
      let ec = Pipeline.edge_coloring_on_graph ~graph:tree ~a:1 ~ids () in
      (* prior-art baseline: the [BE13]-style O(log n) forest-split
         algorithm for the same edge coloring problem *)
      let bl_labeling, bl_cost = Tl_core.Baseline.edge_coloring_on_tree ~tree ~ids in
      let bl_ok =
        Tl_problems.Nec.is_valid Tl_problems.Edge_coloring.problem tree bl_labeling
      in
      let barrier = Complexity.mis_lower_bound ~n in
      let thm3 = Complexity.theorem3_tree_rounds ~n in
      rows :=
        [
          Util.i n;
          Util.i mis.Pipeline.total_rounds;
          Util.i matching.Pipeline.total_rounds;
          Util.i ec.Pipeline.total_rounds;
          Util.i (Tl_local.Round_cost.total bl_cost);
          Util.f1 barrier;
          Util.f1 thm3;
          Util.pass_fail
            (mis.Pipeline.valid && matching.Pipeline.valid && ec.Pipeline.valid
           && bl_ok);
        ]
        :: !rows)
    Util.n_sweep;
  Util.table
    ~header:
      [
        "n"; "MIS rounds"; "matching rounds"; "edge-col rounds";
        "BE13-style baseline"; "barrier curve"; "Thm3 curve"; "valid";
      ]
    (List.rev !rows);
  Printf.printf
    "\n  MIS/matching rounds are tied to the Omega(log n / log log n)\n\
    \  barrier (they are asymptotically optimal on trees); the edge\n\
    \  coloring pipeline's rounds are governed by f(g(n)) for its own f,\n\
    \  and by Theorem 3 they drop strictly below the barrier\n\
    \  asymptotically (see experiment E8(b) for the asymptotic curves).\n\
    \  Note the honest constant-factor picture: at practical sizes the\n\
    \  simple O(log n) prior-art baseline is the fastest in absolute\n\
    \  rounds — the paper's contribution is the asymptotic exponent, and\n\
    \  the crossover for the literature's f = log^12 sits far beyond\n\
    \  physical input sizes (E8(b)).\n"
