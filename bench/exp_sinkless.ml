(* E14: sinkless orientation on trees in Theta(log n) rounds.

   The paper's introduction cites sinkless orientation as one of only two
   natural problems with known nontrivial tight bounds: Theta(log n)
   deterministic [GS17, CKP19], the lower bound being the round
   elimination fixed point of experiment E13. The upper bound here is the
   rake-and-compress (k = 2) orientation of Tl_core.Sinkless: measured
   rounds must scale with log2 n (3 rounds per decomposition iteration
   plus one orientation round). *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Pipeline = Tl_core.Pipeline

let run () =
  Util.heading "E14: sinkless orientation on trees (the Theta(log n) problem)";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, tree) ->
          let ids = Util.ids_for tree 83 in
          let r = Pipeline.sinkless_orientation_on_tree ~tree ~ids () in
          let log2n = Float.log (float_of_int n) /. Float.log 2.0 in
          rows :=
            [
              Util.i n;
              family;
              Util.i r.Pipeline.total_rounds;
              Util.f1 log2n;
              Util.f2 (float_of_int r.Pipeline.total_rounds /. log2n);
              Util.pass_fail r.Pipeline.valid;
            ]
            :: !rows)
        (Util.tree_families n 89))
    Util.n_sweep;
  Util.table
    ~header:[ "n"; "family"; "rounds"; "log2 n"; "rounds/log2 n"; "valid" ]
    (List.rev !rows);
  Printf.printf
    "\n  rounds/log2 n stays bounded: the Theta(log n) upper bound, matched\n\
    \  by the round-elimination fixed point lower bound of E13.\n"
