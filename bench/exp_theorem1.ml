(* E6: Theorem 12 end to end (the paper's Theorem 1).

   For MIS and (deg+1)-vertex coloring on trees, run the transformed
   algorithm, validate the output against the node-edge-checkable
   constraints, and report the measured LOCAL rounds with their per-phase
   breakdown. The rounds should scale like the theorem's
   O(f(g(n)) + log* n) with the executable base algorithm's f, and far
   below the direct O(f(Delta) + log* n) run when Delta is large. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Pipeline = Tl_core.Pipeline
module Round_cost = Tl_local.Round_cost
module Complexity = Tl_core.Complexity

let run () =
  Util.heading "E6: Theorem 12 on trees — MIS and (deg+1)-coloring";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, tree) ->
          let ids = Util.ids_for tree 3000 in
          let mis = Pipeline.mis_on_tree ~tree ~ids () in
          let col = Pipeline.coloring_on_tree ~tree ~ids () in
          let predicted = Complexity.mis_lower_bound ~n in
          rows :=
            [
              Util.i n;
              family;
              Util.i mis.Pipeline.k;
              Util.i mis.Pipeline.total_rounds;
              Util.pass_fail mis.Pipeline.valid;
              Util.i col.Pipeline.total_rounds;
              Util.pass_fail col.Pipeline.valid;
              Util.f1 predicted;
              Util.f2
                (float_of_int mis.Pipeline.total_rounds /. predicted);
            ]
            :: !rows)
        (Util.tree_families n 13))
    Util.n_sweep;
  Util.table
    ~header:
      [
        "n"; "family"; "k=g(n)"; "MIS rounds"; "MIS ok"; "col rounds";
        "col ok"; "log n/loglog n"; "MIS/curve";
      ]
    (List.rev !rows);
  (* phase breakdown on the largest random tree *)
  Util.subheading "phase breakdown (random tree, n = 100000, MIS)";
  let tree = Gen.random_tree ~n:100_000 ~seed:13 in
  let ids = Util.ids_for tree 3000 in
  let r = Pipeline.mis_on_tree ~tree ~ids () in
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-24s %6d rounds\n" phase rounds)
    (Round_cost.phases r.Pipeline.cost);
  (* transformed vs direct on a high-degree tree *)
  Util.subheading "transformed vs direct base algorithm (broom trees)";
  let rows = ref [] in
  List.iter
    (fun bristles ->
      let tree = Gen.broom ~handle:50 ~bristles in
      let n = Graph.n_nodes tree in
      let ids = Util.ids_for tree 17 in
      let t = Pipeline.mis_on_tree ~tree ~ids () in
      let d = Pipeline.mis_direct ~graph:tree ~ids in
      rows :=
        [
          Util.i n;
          Util.i (Graph.max_degree tree);
          Util.i t.Pipeline.total_rounds;
          Util.i d.Pipeline.total_rounds;
          Util.pass_fail (t.Pipeline.valid && d.Pipeline.valid);
          Util.pass_fail (t.Pipeline.total_rounds < d.Pipeline.total_rounds);
        ]
        :: !rows)
    [ 100; 1_000; 10_000 ];
  Util.table
    ~header:
      [ "n"; "Delta"; "transformed"; "direct"; "valid"; "transform wins" ]
    (List.rev !rows)
