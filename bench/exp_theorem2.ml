(* E7: Theorem 15 end to end (the paper's Theorem 2).

   Maximal matching and (edge-degree+1)-edge coloring on graphs of
   arboricity a, via Algorithm 3/4 with b = 2a and k = g(n)^rho. Outputs
   are validated; rounds are reported with the per-phase breakdown. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Pipeline = Tl_core.Pipeline
module Round_cost = Tl_local.Round_cost

let instances n seed =
  [
    ("tree", Gen.random_tree ~n ~seed, 1);
    ("union-a2", Gen.forest_union ~n ~arboricity:2 ~seed, 2);
    ("union-a4", Gen.forest_union ~n ~arboricity:4 ~seed, 4);
    ( "planar",
      (let side = int_of_float (Float.sqrt (float_of_int n)) in
       Gen.triangulated_grid (max 2 side)),
      3 );
  ]

let run () =
  Util.heading
    "E7: Theorem 15 on bounded arboricity — matching and edge coloring";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (family, g, a) ->
          let real_n = Graph.n_nodes g in
          let ids = Util.ids_for g 23 in
          let m = Pipeline.matching_on_graph ~graph:g ~a ~ids () in
          let ec = Pipeline.edge_coloring_on_graph ~graph:g ~a ~ids () in
          rows :=
            [
              Util.i real_n;
              family;
              Util.i a;
              Util.i m.Pipeline.k;
              Util.i m.Pipeline.total_rounds;
              Util.pass_fail m.Pipeline.valid;
              Util.i ec.Pipeline.k;
              Util.i ec.Pipeline.total_rounds;
              Util.pass_fail ec.Pipeline.valid;
            ]
            :: !rows)
        (instances n 19))
    Util.n_sweep;
  Util.table
    ~header:
      [
        "n"; "family"; "a"; "k(match)"; "match rounds"; "match ok";
        "k(ec)"; "ec rounds"; "ec ok";
      ]
    (List.rev !rows);
  Util.subheading "phase breakdown (union-a2, n = 100000, edge coloring)";
  let g = Gen.forest_union ~n:100_000 ~arboricity:2 ~seed:19 in
  let ids = Util.ids_for g 23 in
  let r = Pipeline.edge_coloring_on_graph ~graph:g ~a:2 ~ids () in
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-24s %6d rounds\n" phase rounds)
    (Round_cost.phases r.Pipeline.cost)
