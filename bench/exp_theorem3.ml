(* E8: Theorem 3 — O(log^{12/13} n) (edge-degree+1)-edge coloring on
   trees.

   Part (a), measured: the executable Theorem 15 pipeline on trees (a=1),
   validated, with the decomposition depth O(log_{k} n) it actually used.

   Part (b), analytic: the paper's bound comes from plugging the BBKO22b
   truly local complexity f(D) = log^12 D into the transformation. The
   resulting curve log^{12/13} n and the MIS/matching barrier
   log n / log log n are evaluated from L = log2 n — including the
   asymptotic regime where the separation shows, since the crossover sits
   at L ~ e^52 (far beyond physical inputs; the paper's claim is
   asymptotic). *)

module Gen = Tl_graph.Gen
module Pipeline = Tl_core.Pipeline
module Complexity = Tl_core.Complexity
module Round_cost = Tl_local.Round_cost

let run () =
  Util.heading "E8: Theorem 3 — strongly sublogarithmic edge coloring";
  Util.subheading "(a) measured: Theorem 15 pipeline on trees (a = 1)";
  let rows = ref [] in
  List.iter
    (fun n ->
      let tree = Gen.random_tree ~n ~seed:29 in
      let ids = Util.ids_for tree 31 in
      let r = Pipeline.edge_coloring_on_graph ~graph:tree ~a:1 ~ids () in
      let decompose = Round_cost.get r.Pipeline.cost "decompose" in
      rows :=
        [
          Util.i n;
          Util.i r.Pipeline.k;
          Util.i r.Pipeline.total_rounds;
          Util.i decompose;
          Util.pass_fail r.Pipeline.valid;
        ]
        :: !rows)
    Util.n_sweep;
  Util.table
    ~header:[ "n"; "k"; "total rounds"; "decompose rounds"; "valid" ]
    (List.rev !rows);

  Util.subheading
    "(b) analytic: f = log^12 through the transformation (Theorem 3 curve)";
  let f12 = Complexity.f_polylog ~exponent:12.0 in
  let rows = ref [] in
  List.iter
    (fun log2_n ->
      let ub = Complexity.theorem1_rounds_log ~f:f12 ~log2_n in
      let lb = Complexity.mis_lower_bound_log ~log2_n in
      rows :=
        [
          Printf.sprintf "2^%.0e" log2_n;
          Printf.sprintf "%.3e" ub;
          Printf.sprintf "%.3e" lb;
          Util.f2 (ub /. lb);
        ]
        :: !rows)
    [ 20.; 60.; 1e3; 1e6; 1e12; 1e20; 1e23; 1e26; 1e30 ];
  Util.table
    ~header:
      [ "n"; "log^{12/13} n (Thm 3)"; "log n/loglog n (MIS barrier)"; "ratio" ]
    (List.rev !rows);
  Printf.printf
    "\n  The ratio grows until log2 n ~ e^52 ~ 1e22.6 and then falls:\n\
    \  Theorem 3's upper bound drops below the MIS/matching barrier only\n\
    \  asymptotically, which is exactly the paper's (asymptotic) claim of\n\
    \  a separation on trees.\n";
  (* exponent self-test: the curve really is Theta(L^{12/13}) *)
  let v1 = Complexity.theorem1_rounds_log ~f:f12 ~log2_n:1e8 in
  let v2 = Complexity.theorem1_rounds_log ~f:f12 ~log2_n:2e8 in
  Printf.printf
    "  empirical exponent from doubling L at 1e8: %.4f (12/13 = %.4f)\n"
    (Float.log (v2 /. v1) /. Float.log 2.0)
    (12.0 /. 13.0)
