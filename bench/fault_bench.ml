(* ---------- B13: tl_fault — incremental repair vs full recompute ----------

   Two questions, answered on one random tree:

   1. Does incremental repair beat recomputing from scratch? For crash
      rates in {0.1%, 1%, 5%} we converge flood once, crash a seeded
      random node set (the same sampler the chaos schedules use), and
      time (a) Repair.repair_flood over the suspect components against
      (b) a full Topology.compile + engine re-run on the damaged view.
      Both arms see identical surgery; the repaired labeling must be
      bit-identical to the recomputed one on survivors, and both must
      pass the validity checker. One MIS row rides along at the 1%
      rate — there the recompute arm is a different (equally valid)
      MIS, so its PASS column asserts replay determinism of the repair
      instead of cross-arm equality.

   2. Is the disarmed fault machinery free? B10-style interleaved
      trials of the same flood run with Engine.fault_gate disarmed vs
      armed-with-an-empty-schedule, gated at <= 3% like the metrics
      overhead row.

   Rows merge into BENCH_engine.json ("fault-repair", "fault-overhead")
   so bench/regress.exe gates both the repair speedup and the gate
   overhead once the baseline carries them. Size is overridable via
   TL_FAULT_BENCH_N (CI smoke). *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Json = Tl_obs.Json
module Schedule = Tl_fault.Schedule
module Injector = Tl_fault.Injector
module Repair = Tl_fault.Repair

let fault_bench_n () =
  match Option.bind (Sys.getenv_opt "TL_FAULT_BENCH_N") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 1_000_000

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Seeded crash set of [k] distinct nodes, drawn through the schedule's
   own sampler so the bench fails the same way a chaos run would. *)
let crash_set ~seed ~n k =
  let spec = Printf.sprintf "seed=%d;crash_random@1:%d" seed k in
  match Schedule.of_spec spec with
  | Error e -> failwith e
  | Ok s ->
      List.filter_map
        (function _, Schedule.Crash v -> Some v | _ -> None)
        (Schedule.instantiate s ~n)

let converge_flood ~topo ~n =
  Engine.run_until_stable ~mode:Engine.Seq ~topo
    ~init:(Repair.flood_init ~source:0)
    ~step:Repair.flood_step ~equal:Int.equal ~max_rounds:(n + 1) ()

let converge_mis ~topo ~ids ~n =
  Engine.run ~mode:Engine.Seq ~topo ~init:Repair.mis_init
    ~step:(Repair.mis_step ~ids) ~halted:Repair.mis_halted
    ~max_rounds:(n + 64) ()

(* Present neighbors of the crashed set — exactly the suspect list the
   chaos orchestrator hands repair_flood after a crash epoch. *)
let suspects_of ~tree ~sg crashed =
  List.concat_map
    (fun v ->
      Array.to_list (Graph.neighbors tree v)
      |> List.filter (Semi_graph.node_present sg))
    crashed

type row = {
  label : string;
  crashed : int;
  relabeled : int;
  region : int;
  repair_t : float;
  recompute_t : float;
  recompute_rounds : int;
  valid : bool;
  identical : bool;  (** repaired = recomputed (flood) / replay (MIS) *)
}

let flood_row ~tree ~n ~reps ~baseline ~rate =
  let k = max 1 (int_of_float (rate *. float_of_int n)) in
  let crashed = crash_set ~seed:(83 + int_of_float (rate *. 1e6)) ~n k in
  let damaged () =
    let sg = Semi_graph.of_graph tree in
    List.iter (Semi_graph.hide_node sg) crashed;
    sg
  in
  (* repair arm: surgery outside the timer, repair inside *)
  let repair_once () =
    let sg = damaged () in
    let labels = Array.copy baseline in
    let suspects = suspects_of ~tree ~sg crashed in
    let stats, t = time (fun () ->
      Repair.repair_flood ~sg ~source:0 ~labels ~suspects) in
    (sg, labels, stats, t)
  in
  let best = ref infinity and last = ref None in
  ignore (repair_once ());
  for _ = 1 to reps do
    let (_, _, _, t) as r = repair_once () in
    if t < !best then best := t;
    last := Some r
  done;
  let sg, labels, stats, _ = Option.get !last in
  let repair_t = !best in
  (* recompute arm: same surgery, then compile + run from scratch *)
  let recompute_once () =
    let sg = damaged () in
    time (fun () ->
        let topo = Topology.compile sg in
        converge_flood ~topo ~n)
  in
  let best_r = ref infinity and out = ref None in
  ignore (recompute_once ());
  for _ = 1 to reps do
    let o, t = recompute_once () in
    if t < !best_r then best_r := t;
    out := Some o
  done;
  let o = Option.get !out in
  let identical =
    let ok = ref true in
    for v = 0 to n - 1 do
      if Semi_graph.node_present sg v && labels.(v) <> o.Engine.states.(v)
      then ok := false
    done;
    !ok
  in
  {
    label = Printf.sprintf "flood r=%g" rate;
    crashed = List.length crashed;
    relabeled = stats.Repair.relabeled;
    region = stats.Repair.region;
    repair_t;
    recompute_t = !best_r;
    recompute_rounds = o.Engine.rounds;
    valid = Repair.check_flood ~sg ~source:0 ~labels;
    identical;
  }

let mis_row ~tree ~n ~reps ~ids ~baseline ~rate =
  let k = max 1 (int_of_float (rate *. float_of_int n)) in
  let crashed = crash_set ~seed:(97 + int_of_float (rate *. 1e6)) ~n k in
  let damaged () =
    let sg = Semi_graph.of_graph tree in
    List.iter (Semi_graph.hide_node sg) crashed;
    sg
  in
  let repair_once () =
    let sg = damaged () in
    let labels = Array.copy baseline in
    let stats, t =
      time (fun () -> Repair.repair_mis ~graph:tree ~sg ~ids ~labels)
    in
    (sg, labels, stats, t)
  in
  let best = ref infinity and last = ref None in
  ignore (repair_once ());
  for _ = 1 to reps do
    let (_, _, _, t) as r = repair_once () in
    if t < !best then best := t;
    last := Some r
  done;
  let sg, labels, stats, _ = Option.get !last in
  (* a second repair from the same inputs must reproduce labels exactly *)
  let _, labels2, stats2, _ = repair_once () in
  let identical = labels = labels2 && stats = stats2 in
  let recompute_once () =
    let sg = damaged () in
    time (fun () ->
        let topo = Topology.compile sg in
        converge_mis ~topo ~ids ~n)
  in
  let best_r = ref infinity and out = ref None in
  ignore (recompute_once ());
  for _ = 1 to reps do
    let o, t = recompute_once () in
    if t < !best_r then best_r := t;
    out := Some o
  done;
  let o = Option.get !out in
  {
    label = Printf.sprintf "mis   r=%g" rate;
    crashed = List.length crashed;
    relabeled = stats.Repair.relabeled;
    region = stats.Repair.region;
    repair_t = !best;
    recompute_t = !best_r;
    recompute_rounds = o.Engine.rounds;
    valid = Repair.check_mis ~sg ~labels;
    identical;
  }

let run () =
  let n = fault_bench_n () in
  let seed = 83 in
  Util.heading
    (Printf.sprintf
       "B13: tl_fault — incremental repair vs full recompute (n=%d, random \
        tree)" n);
  let tree = Gen.random_tree ~n ~seed in
  let sg0 = Semi_graph.of_graph tree in
  let topo0 = Topology.compile sg0 in
  let flood_base = (converge_flood ~topo:topo0 ~n).Engine.states in
  let ids = Array.init n (fun i -> (i * 2654435761) land max_int) in
  let mis_base = (converge_mis ~topo:topo0 ~ids ~n).Engine.states in
  let reps = if n >= 500_000 then 3 else 5 in
  let rates = [ 0.001; 0.01; 0.05 ] in
  let rows =
    List.map (fun rate ->
        flood_row ~tree ~n ~reps ~baseline:flood_base ~rate)
      rates
    @ [ mis_row ~tree ~n ~reps ~ids ~baseline:mis_base ~rate:0.01 ]
  in
  Util.table
    ~header:
      [ "workload"; "crashed"; "relabeled"; "region"; "repair s";
        "recompute s"; "speedup"; "valid"; "identical" ]
    (List.map
       (fun r ->
         [
           r.label; Util.i r.crashed; Util.i r.relabeled; Util.i r.region;
           Printf.sprintf "%.4f" r.repair_t;
           Printf.sprintf "%.4f" r.recompute_t;
           Printf.sprintf "%.1fx"
             (if r.repair_t > 0. then r.recompute_t /. r.repair_t else 0.);
           Util.pass_fail r.valid;
           Util.pass_fail r.identical;
         ])
       rows);
  let all_valid = List.for_all (fun r -> r.valid) rows in
  let all_identical = List.for_all (fun r -> r.identical) rows in
  let flood_faster = List.for_all (fun r -> r.repair_t <= r.recompute_t) rows in
  Printf.printf "\nall repairs valid: %s   deterministic: %s\n"
    (Util.pass_fail all_valid)
    (Util.pass_fail all_identical);
  Printf.printf "incremental repair <= full recompute on every row: %s\n"
    (Util.pass_fail flood_faster);
  (* ---- disarmed vs armed-empty gate overhead, B10-style ---- *)
  let flood () =
    let o = converge_flood ~topo:topo0 ~n in
    (o.Engine.states, o.Engine.rounds)
  in
  let oreps = if n >= 500_000 then 9 else 7 in
  (* one untimed warmup per arm, then interleaved off/on trials so
     machine-load drift lands on both arms alike (see B10) *)
  let off_r = ref (flood ()) in
  let on_r =
    ref (Injector.with_armed Schedule.empty ~n (fun _ -> flood ()))
  in
  let best_off = ref infinity and best_on = ref infinity in
  for _ = 1 to oreps do
    let r, dt = time flood in
    if dt < !best_off then best_off := dt;
    off_r := r;
    Injector.with_armed Schedule.empty ~n (fun _ ->
        let r, dt = time flood in
        if dt < !best_on then best_on := dt;
        on_r := r)
  done;
  let off_t = !best_off and on_t = !best_on in
  let gate_identical = !off_r = !on_r in
  let overhead_pct =
    if off_t > 0. then 100. *. ((on_t -. off_t) /. off_t) else 0.
  in
  Util.table
    ~header:[ "mode"; "rounds"; "wall s"; "identical" ]
    [
      [ "gate-disarmed"; Util.i (snd !off_r); Printf.sprintf "%.4f" off_t;
        "-" ];
      [ "gate-armed-empty"; Util.i (snd !on_r); Printf.sprintf "%.4f" on_t;
        Util.pass_fail gate_identical ];
    ];
  Printf.printf "armed-empty within 3%% of disarmed: %s (%+.2f%%)\n"
    (Util.pass_fail (on_t <= off_t *. 1.03 || on_t <= off_t +. 0.005))
    overhead_pct;
  let mode_row (mode, t, rounds) =
    Json.Obj
      [
        ("mode", Json.Str mode);
        ("domains", Json.Num 1.);
        ("wall_s", Json.Num t);
        ("rounds", Json.Num (float_of_int rounds));
      ]
  in
  Kernel_bench.merge_into_engine_json ~file:"BENCH_engine.json"
    [
      Json.Obj
        [
          ("kernel", Json.Str "fault-repair");
          ("n", Json.Num (float_of_int n));
          ("deterministic", Json.Bool (all_valid && all_identical));
          ( "modes",
            Json.Arr
              (List.concat_map
                 (fun r ->
                   let tag =
                     String.concat ""
                       (String.split_on_char ' ' r.label)
                   in
                   [
                     mode_row
                       (Printf.sprintf "repair:%s" tag, r.repair_t,
                        r.relabeled);
                     mode_row
                       (Printf.sprintf "recompute:%s" tag, r.recompute_t,
                        r.recompute_rounds);
                   ])
                 rows) );
        ];
      Json.Obj
        [
          ("kernel", Json.Str "fault-overhead");
          ("n", Json.Num (float_of_int n));
          ("deterministic", Json.Bool gate_identical);
          ( "modes",
            Json.Arr
              [
                mode_row ("gate-disarmed", off_t, snd !off_r);
                mode_row ("gate-armed-empty", on_t, snd !on_r);
              ] );
        ];
    ];
  Printf.printf "merged fault-repair + fault-overhead into BENCH_engine.json\n"
