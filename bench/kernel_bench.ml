(* B1-B5: wall-clock microbenchmarks of the computational kernels
   (Bechamel). The paper's metric is LOCAL rounds (covered by E1-E12);
   these benchmarks track the simulator's own throughput so regressions
   in the implementation are visible. *)

open Bechamel
open Toolkit

module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling

let n = 10_000

let tree = lazy (Gen.random_tree ~n ~seed:71)
let union = lazy (Gen.forest_union ~n ~arboricity:2 ~seed:73)
let ids = lazy (Ids.permuted ~n ~seed:79)

let b1_rake_compress () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  ignore (Tl_decompose.Rake_compress.run tree ~k:4 ~ids)

let b2_arb_decompose () =
  let g = Lazy.force union and ids = Lazy.force ids in
  ignore (Tl_decompose.Arb_decompose.run g ~a:2 ~k:10 ~ids)

let b3_cv_coloring () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  let parent = Tl_graph.Tree.parents_forest tree in
  ignore
    (Tl_symmetry.Cole_vishkin.color3 ~nodes:(List.init n Fun.id) ~parent ~ids)

let b4_base_coloring () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  let sg = Semi_graph.of_graph tree in
  let labeling = Labeling.create tree in
  ignore (Tl_symmetry.Algos.deg_plus_one_coloring sg ~ids labeling)

let b5_theorem1_mis () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  ignore (Tl_core.Pipeline.mis_on_tree ~tree ~ids ())

let tests =
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"B1 rake-and-compress 10k" (Staged.stage b1_rake_compress);
      Test.make ~name:"B2 algorithm-3 10k a=2" (Staged.stage b2_arb_decompose);
      Test.make ~name:"B3 CV 3-coloring 10k" (Staged.stage b3_cv_coloring);
      Test.make ~name:"B4 base (deg+1)-coloring 10k" (Staged.stage b4_base_coloring);
      Test.make ~name:"B5 theorem-1 MIS pipeline 10k" (Staged.stage b5_theorem1_mis);
    ]

let run () =
  Util.heading "B1-B5: kernel wall-clock microbenchmarks (Bechamel)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some [ t ] -> t
        | _ -> Float.nan
      in
      rows := [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ] :: !rows)
    results;
  Util.table ~header:[ "kernel"; "time/run" ]
    (List.sort compare !rows)
