(* B1-B5: wall-clock microbenchmarks of the computational kernels
   (Bechamel). The paper's metric is LOCAL rounds (covered by E1-E12);
   these benchmarks track the simulator's own throughput so regressions
   in the implementation are visible. *)

open Bechamel
open Toolkit

module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling

let n = 10_000

let tree = lazy (Gen.random_tree ~n ~seed:71)
let union = lazy (Gen.forest_union ~n ~arboricity:2 ~seed:73)
let ids = lazy (Ids.permuted ~n ~seed:79)

let b1_rake_compress () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  ignore (Tl_decompose.Rake_compress.run tree ~k:4 ~ids)

let b2_arb_decompose () =
  let g = Lazy.force union and ids = Lazy.force ids in
  ignore (Tl_decompose.Arb_decompose.run g ~a:2 ~k:10 ~ids)

let b3_cv_coloring () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  let parent = Tl_graph.Tree.parents_forest tree in
  ignore
    (Tl_symmetry.Cole_vishkin.color3 ~nodes:(List.init n Fun.id) ~parent ~ids)

let b4_base_coloring () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  let sg = Semi_graph.of_graph tree in
  let labeling = Labeling.create tree in
  ignore (Tl_symmetry.Algos.deg_plus_one_coloring sg ~ids labeling)

let b5_theorem1_mis () =
  let tree = Lazy.force tree and ids = Lazy.force ids in
  ignore (Tl_core.Pipeline.mis_on_tree ~tree ~ids ())

let tests =
  Test.make_grouped ~name:"kernels"
    [
      Test.make ~name:"B1 rake-and-compress 10k" (Staged.stage b1_rake_compress);
      Test.make ~name:"B2 algorithm-3 10k a=2" (Staged.stage b2_arb_decompose);
      Test.make ~name:"B3 CV 3-coloring 10k" (Staged.stage b3_cv_coloring);
      Test.make ~name:"B4 base (deg+1)-coloring 10k" (Staged.stage b4_base_coloring);
      Test.make ~name:"B5 theorem-1 MIS pipeline 10k" (Staged.stage b5_theorem1_mis);
    ]

(* ---------- B6: engine stepping comparison (emits BENCH_engine.json) ----------

   Times the same LOCAL kernels under the three engine steppers — the
   legacy naive full-scan reference, the compiled-topology active-set
   scheduler, and the Domain-parallel variant — on a >= 100k-node random
   tree, asserts the results are bit-identical across modes, and writes
   the measurements as BENCH_engine.json in the working directory.
   Instance size is overridable via TL_ENGINE_BENCH_N (CI smoke). *)

module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Trace = Tl_engine.Trace
module CV = Tl_symmetry.Cole_vishkin

let engine_bench_n () =
  match Sys.getenv_opt "TL_ENGINE_BENCH_N" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 100_000)
  | None -> 100_000

type mode_result = {
  mode : string;
  domains : int;  (* domains the mode actually runs on, not host cores *)
  wall_s : float;
  rounds : int;
  steps : int;
  ok : bool;  (* bit-identical to the naive reference *)
}

let mode_domains = function
  | Engine.Naive | Engine.Seq | Engine.Shard _ | Engine.Proc _ -> 1
  | Engine.Par p -> p

(* Run [f], capturing total step executions through the trace sink. *)
let timed_with_steps f =
  let traces = ref [] in
  let saved = !Engine.trace_sink in
  Engine.trace_sink := Some (fun t -> traces := t :: !traces);
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      let steps =
        List.fold_left
          (fun acc t -> acc + (Trace.metrics t).Trace.steps)
          0 !traces
      in
      (r, dt, steps))

(* Best-of-[reps] timing; result and rounds are deterministic across reps. *)
let bench_mode ~reps ~mode f =
  let best = ref infinity and result = ref None and steps = ref 0 in
  for _ = 1 to reps do
    let r, dt, st = timed_with_steps (fun () -> f mode) in
    if dt < !best then best := dt;
    steps := st;
    result := Some r
  done;
  (Option.get !result, !best, !steps)

let engine_modes = [ Engine.Naive; Engine.Seq; Engine.Par 2; Engine.Par 4 ]

let run_kernel ~name ~reps f =
  let naive_r, naive_t, naive_steps = bench_mode ~reps ~mode:Engine.Naive f in
  let results =
    { mode = "naive"; domains = 1; wall_s = naive_t; rounds = snd naive_r;
      steps = naive_steps; ok = true }
    :: List.filter_map
         (fun mode ->
           if mode = Engine.Naive then None
           else begin
             let r, t, st = bench_mode ~reps ~mode f in
             Some
               {
                 mode = Engine.mode_to_string mode;
                 domains = mode_domains mode;
                 wall_s = t;
                 rounds = snd r;
                 steps = st;
                 ok = r = naive_r;
               }
           end)
         engine_modes
  in
  (name, results)

let emit_engine_json ~file ~n ~seed kernels =
  let b = Buffer.create 4096 in
  Printf.bprintf b
    "{\"bench\":\"engine\",\"family\":\"random-tree\",\"n\":%d,\"seed\":%d,\
     \"cores\":%d,\"kernels\":[" n seed
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (name, results) ->
      if i > 0 then Buffer.add_char b ',';
      let naive_t =
        List.find (fun r -> r.mode = "naive") results |> fun r -> r.wall_s
      in
      Printf.bprintf b
        "\n {\"kernel\":\"%s\",\"deterministic\":%b,\"modes\":[" name
        (List.for_all (fun r -> r.ok) results);
      List.iteri
        (fun j r ->
          if j > 0 then Buffer.add_char b ',';
          Printf.bprintf b
            "\n  {\"mode\":\"%s\",\"domains\":%d,\"wall_s\":%.6f,\"rounds\":%d,\
             \"steps\":%d,\"speedup_vs_naive\":%.3f}"
            r.mode r.domains r.wall_s r.rounds r.steps
            (if r.wall_s > 0. then naive_t /. r.wall_s else 0.))
        results;
      Buffer.add_string b "]}")
    kernels;
  Buffer.add_string b "]}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc

let run_engine () =
  let n = engine_bench_n () in
  let seed = 71 in
  Util.heading
    (Printf.sprintf
       "B6: engine stepping — naive vs active-set vs parallel (n=%d)" n)
  ;
  let tree = Gen.random_tree ~n ~seed in
  let sg = Semi_graph.of_graph tree in
  let topo = Topology.compile sg in
  let ids = Ids.permuted ~n ~seed:(seed + 8) in
  (* CV 3-coloring: the repo's log*-round workhorse, executed as a state
     machine through Runtime (hence through the engine default mode). *)
  let parent = Tl_graph.Tree.parents_forest tree in
  let nodes = List.init n Fun.id in
  let cv3 mode =
    let saved = !Engine.default_mode in
    Engine.default_mode := mode;
    Fun.protect
      ~finally:(fun () -> Engine.default_mode := saved)
      (fun () -> CV.color3_runtime ~sg ~nodes ~parent ~ids)
  in
  (* Flooding to a fixed point: diameter-many rounds with a shrinking
     frontier — the active-set scheduler's best case. *)
  let flood mode =
    let o =
      Engine.run_until_stable ~mode ~topo
        ~init:(fun v -> v = 0)
        ~step:(fun ~round:_ ~node:_ s ~neighbors ->
          s || List.exists (fun (_, _, su) -> su) neighbors)
        ~equal:Bool.equal ~max_rounds:(n + 1) ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  (* Greedy MIS by local id maximum: 0 undecided, 1 in, 2 out; decided
     regions go quiet while undecided chains keep stepping. *)
  let mis mode =
    let step ~round:_ ~node:v s ~neighbors =
      if s <> 0 then s
      else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
      else if
        List.for_all (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v)) neighbors
      then 1
      else 0
    in
    let o =
      Engine.run ~mode ~topo
        ~init:(fun _ -> 0)
        ~step
        ~halted:(fun s -> s <> 0)
        ~max_rounds:(n + 1) ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  let kernels =
    match Sys.getenv_opt "TL_ENGINE_BENCH_KERNELS" with
    | Some "cv3" -> [ run_kernel ~name:"cv3" ~reps:3 cv3 ]
    | _ ->
      [
        run_kernel ~name:"cv3" ~reps:3 cv3;
        run_kernel ~name:"flood" ~reps:1 flood;
        run_kernel ~name:"mis-local-max" ~reps:3 mis;
      ]
  in
  let rows =
    List.concat_map
      (fun (name, results) ->
        let naive_t =
          (List.find (fun r -> r.mode = "naive") results).wall_s
        in
        List.map
          (fun r ->
            [
              name;
              r.mode;
              Util.i r.rounds;
              Util.i r.steps;
              Printf.sprintf "%.4f" r.wall_s;
              Printf.sprintf "%.2fx"
                (if r.wall_s > 0. then naive_t /. r.wall_s else 0.);
              Util.pass_fail r.ok;
            ])
          results)
      kernels
  in
  Util.table
    ~header:
      [ "kernel"; "mode"; "rounds"; "steps"; "wall s"; "vs naive"; "identical" ]
    rows;
  let active_beats_naive =
    List.for_all
      (fun (name, results) ->
        let t m = (List.find (fun r -> r.mode = m) results).wall_s in
        name <> "cv3" || t "seq" < t "naive")
      kernels
  in
  Printf.printf "\nactive-set faster than naive on cv3: %s\n"
    (Util.pass_fail active_beats_naive);
  emit_engine_json ~file:"BENCH_engine.json" ~n ~seed kernels;
  Printf.printf "wrote BENCH_engine.json\n"

(* ---------- B7: component-solve pool (merges into BENCH_engine.json) ----------

   Times the sequential vs pooled Theorem 12 / Theorem 15 executions —
   the per-component gather-solve and the per-star Π* solving fanned
   over OCaml domains — and merges the measurements into
   BENCH_engine.json (same schema as B6, so bench/regress.exe gates
   both). Pool widths beyond the host's core count measure the pool's
   overhead honestly rather than a speedup. Sizes are overridable via
   TL_POOL_BENCH_N (CI smoke runs one small size; its kernel index 0
   still aligns with the committed baseline's first size). *)

module Graph = Tl_graph.Graph
module Json = Tl_obs.Json
module Theorem1 = Tl_core.Theorem1
module Theorem2 = Tl_core.Theorem2

let pool_sizes () =
  match Option.bind (Sys.getenv_opt "TL_POOL_BENCH_N") int_of_string_opt with
  | Some n when n > 0 -> [ n ]
  | _ -> [ 100_000; 500_000; 1_000_000 ]

let pool_widths = [ 1; 2; 4 ]

type pool_row = {
  width : int;
  pool_wall_s : float;
  total_rounds : int;
  identical : bool;  (* labeling bit-identical to the width-1 run *)
}

(* Best-of-[reps]; clears the topology compile cache before every run so
   each width starts cold and repeated runs don't pin big snapshots. *)
let bench_pool_widths ~reps ~run ~labels =
  let time w =
    let best = ref infinity and result = ref None in
    for _ = 1 to reps do
      Topology.clear_cache ();
      let t0 = Unix.gettimeofday () in
      let r = run w in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let (seq_labels, seq_rounds), seq_t = time 1 in
  { width = 1; pool_wall_s = seq_t; total_rounds = seq_rounds;
    identical = true }
  :: List.filter_map
       (fun w ->
         if w = 1 then None
         else begin
           let (l, rounds), t = time w in
           Some
             {
               width = w;
               pool_wall_s = t;
               total_rounds = rounds;
               identical = labels l = labels seq_labels;
             }
         end)
       pool_widths

let pool_kernel_json ~name ~n rows =
  let seq_t = (List.find (fun r -> r.width = 1) rows).pool_wall_s in
  Json.Obj
    [
      ("kernel", Json.Str name);
      ("n", Json.Num (float_of_int n));
      ("deterministic", Json.Bool (List.for_all (fun r -> r.identical) rows));
      ( "modes",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ( "mode",
                     Json.Str
                       (if r.width = 1 then "seq"
                        else Printf.sprintf "pool:%d" r.width) );
                   ("domains", Json.Num (float_of_int r.width));
                   ("wall_s", Json.Num r.pool_wall_s);
                   ("rounds", Json.Num (float_of_int r.total_rounds));
                   ( "speedup_vs_seq",
                     Json.Num
                       (if r.pool_wall_s > 0. then seq_t /. r.pool_wall_s
                        else 0.) );
                 ])
             rows) );
    ]

(* Rewrite [file] with [kernels] merged in: existing kernels keep their
   place, same-named ones are replaced. A missing or unreadable file
   degrades to a fresh header. *)
let merge_into_engine_json ~file kernels =
  let fresh =
    [
      ("bench", Json.Str "engine");
      ( "cores",
        Json.Num (float_of_int (Domain.recommended_domain_count ())) );
    ]
  in
  let base_fields =
    if Sys.file_exists file then
      match Json.parse_file file with
      | Json.Obj fields -> fields
      | _ -> fresh
      | exception _ -> fresh
    else fresh
  in
  let new_names =
    List.filter_map
      (fun k -> Option.bind (Json.member "kernel" k) Json.to_str)
      kernels
  in
  let kept =
    Option.bind (List.assoc_opt "kernels" base_fields) Json.to_list
    |> Option.value ~default:[]
    |> List.filter (fun k ->
           match Option.bind (Json.member "kernel" k) Json.to_str with
           | Some name -> not (List.mem name new_names)
           | None -> true)
  in
  let fields =
    List.remove_assoc "kernels" base_fields
    @ [ ("kernels", Json.Arr (kept @ kernels)) ]
  in
  let oc = open_out file in
  output_string oc (Json.to_string (Json.Obj fields));
  output_char oc '\n';
  close_out oc

let run_pool () =
  let sizes = pool_sizes () in
  Util.heading
    (Printf.sprintf
       "B7: component-solve pool — sequential vs pooled Theorem 12/15 (n in \
        {%s}, host cores %d)"
       (String.concat ", " (List.map string_of_int sizes))
       (Domain.recommended_domain_count ()));
  let mis_spec =
    {
      Theorem1.problem = Tl_problems.Mis.problem;
      base_algorithm = Tl_symmetry.Algos.mis;
      solve_edge_list = Tl_problems.Mis.solve_edge_list;
    }
  in
  let matching_spec =
    {
      Theorem2.problem = Tl_problems.Matching.problem;
      base_algorithm = Tl_symmetry.Algos.maximal_matching;
      solve_node_list = Tl_problems.Matching.solve_node_list;
    }
  in
  let labels g l = List.init (Graph.n_half_edges g) (Labeling.get l) in
  let kernels =
    List.concat
      (List.mapi
         (fun i n ->
           let reps = if n >= 500_000 then 1 else 2 in
           let ids = Ids.permuted ~n ~seed:79 in
           let tree = Gen.random_tree ~n ~seed:71 in
           let t1_rows =
             bench_pool_widths ~reps
               ~run:(fun w ->
                 let r =
                   Theorem1.run ~workers:w ~spec:mis_spec ~tree ~ids
                     ~f:Tl_core.Complexity.f_linear ()
                 in
                 (r.Theorem1.labeling, Tl_local.Round_cost.total r.Theorem1.cost))
               ~labels:(labels tree)
           in
           let graph = Gen.forest_union ~n ~arboricity:2 ~seed:73 in
           let t2_rows =
             bench_pool_widths ~reps
               ~run:(fun w ->
                 let r =
                   Theorem2.run ~workers:w ~spec:matching_spec ~graph ~a:2 ~ids
                     ~f:Tl_core.Complexity.f_linear ()
                 in
                 (r.Theorem2.labeling, Tl_local.Round_cost.total r.Theorem2.cost))
               ~labels:(labels graph)
           in
           [
             (Printf.sprintf "t1-mis-pool.%d" i, n, t1_rows);
             (Printf.sprintf "t2-matching-pool.%d" i, n, t2_rows);
           ])
         sizes)
  in
  let rows =
    List.concat_map
      (fun (name, n, rows) ->
        let seq_t = (List.find (fun r -> r.width = 1) rows).pool_wall_s in
        List.map
          (fun r ->
            [
              name;
              Util.i n;
              (if r.width = 1 then "seq" else Printf.sprintf "pool:%d" r.width);
              Util.i r.total_rounds;
              Printf.sprintf "%.4f" r.pool_wall_s;
              Printf.sprintf "%.2fx"
                (if r.pool_wall_s > 0. then seq_t /. r.pool_wall_s else 0.);
              Util.pass_fail r.identical;
            ])
          rows)
      kernels
  in
  Util.table
    ~header:[ "kernel"; "n"; "mode"; "rounds"; "wall s"; "vs seq"; "identical" ]
    rows;
  let hits, misses = Topology.cache_stats () in
  Printf.printf "\ntopology compile cache over this process: %d hit(s), %d miss(es)\n"
    hits misses;
  merge_into_engine_json ~file:"BENCH_engine.json"
    (List.map (fun (name, n, rows) -> pool_kernel_json ~name ~n rows) kernels);
  Printf.printf "merged %d pool kernels into BENCH_engine.json\n"
    (List.length kernels)

(* ---------- B8: sharded halo-exchange backend (merges into BENCH_engine.json) ----------

   Times the sequential stepper against the tl_shard halo-exchange
   backend (shard counts 2/4/8) on three kernels: flooding to a fixed
   point (active-set), the full Theorem 12 MIS pipeline, and a
   fixed-round full-scan max-id sweep — the memory-bound shape where
   the compact per-shard arrays pay off. The pool width is pinned to 1
   so the comparison isolates the cache-blocking effect of sharding
   from domain parallelism (the qcheck battery already proves
   shard x pool bit-identical). Results merge into BENCH_engine.json
   (same schema as B6/B7, so bench/regress.exe gates all three). Sizes
   are overridable via TL_SHARD_BENCH_N (CI smoke runs one small size;
   its kernel index 0 still aligns with the committed baseline's first
   size). *)

module Pool = Tl_engine.Pool
module Shard_plan = Tl_shard.Plan

let shard_sizes () =
  match Option.bind (Sys.getenv_opt "TL_SHARD_BENCH_N") int_of_string_opt with
  | Some n when n > 0 -> [ n ]
  | _ -> [ 250_000; 1_000_000 ]

let shard_modes = [ Engine.Seq; Engine.Shard 2; Engine.Shard 4; Engine.Shard 8 ]

(* Best-of-[reps] with the pool width pinned to 1 and both the
   shard-plan and topology compile caches cleared before every run, so
   each mode pays its own (re)build cold. The pre-rep compaction keeps
   the measurement honest: plan + per-shard context building allocates
   many large arrays, which crawl through a fragmented major heap left
   behind by whatever ran before (earlier kernels, earlier
   experiments) — untimed defragmentation removes that noise. *)
let bench_shard_mode ~reps ~mode f =
  let saved = !Pool.default_workers in
  Pool.default_workers := 1;
  Fun.protect
    ~finally:(fun () -> Pool.default_workers := saved)
    (fun () ->
      let best = ref infinity and result = ref None and steps = ref 0 in
      for _ = 1 to reps do
        Shard_plan.clear_cache ();
        Topology.clear_cache ();
        Gc.compact ();
        let r, dt, st = timed_with_steps (fun () -> f mode) in
        if dt < !best then best := dt;
        steps := st;
        result := Some r
      done;
      (Option.get !result, !best, !steps))

let run_shard_kernel ~reps f =
  let seq_r, seq_t, seq_steps = bench_shard_mode ~reps ~mode:Engine.Seq f in
  { mode = "seq"; domains = 1; wall_s = seq_t; rounds = snd seq_r;
    steps = seq_steps; ok = true }
  :: List.filter_map
       (fun mode ->
         if mode = Engine.Seq then None
         else begin
           let r, t, st = bench_shard_mode ~reps ~mode f in
           Some
             {
               mode = Engine.mode_to_string mode;
               domains = 1;
               wall_s = t;
               rounds = snd r;
               steps = st;
               ok = r = seq_r;
             }
         end)
       shard_modes

let shard_kernel_json ~name ~n results =
  let seq_t = (List.find (fun r -> r.mode = "seq") results).wall_s in
  Json.Obj
    [
      ("kernel", Json.Str name);
      ("n", Json.Num (float_of_int n));
      ("deterministic", Json.Bool (List.for_all (fun r -> r.ok) results));
      ( "modes",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("mode", Json.Str r.mode);
                   ("domains", Json.Num (float_of_int r.domains));
                   ("wall_s", Json.Num r.wall_s);
                   ("rounds", Json.Num (float_of_int r.rounds));
                   ("steps", Json.Num (float_of_int r.steps));
                   ( "speedup_vs_seq",
                     Json.Num
                       (if r.wall_s > 0. then seq_t /. r.wall_s else 0.) );
                 ])
             results) );
    ]

let run_shard () =
  let sizes = shard_sizes () in
  Util.heading
    (Printf.sprintf
       "B8: sharded halo-exchange backend — seq vs shard:{2,4,8} (n in {%s}, \
        pool=1)"
       (String.concat ", " (List.map string_of_int sizes)));
  let mis_spec =
    {
      Theorem1.problem = Tl_problems.Mis.problem;
      base_algorithm = Tl_symmetry.Algos.mis;
      solve_edge_list = Tl_problems.Mis.solve_edge_list;
    }
  in
  let kernels =
    List.concat
      (List.mapi
         (fun i n ->
           let reps = if n >= 500_000 then 1 else 2 in
           let seed = 71 in
           let tree = Gen.random_tree ~n ~seed in
           let sg = Semi_graph.of_graph tree in
           let topo = Topology.compile sg in
           let ids = Ids.permuted ~n ~seed:79 in
           (* Flooding to a fixed point: shrinking frontier, Active_set. *)
           let flood mode =
             let o =
               Engine.run_until_stable ~mode ~topo
                 ~init:(fun v -> v = 0)
                 ~step:(fun ~round:_ ~node:_ s ~neighbors ->
                   s || List.exists (fun (_, _, su) -> su) neighbors)
                 ~equal:Bool.equal ~max_rounds:(n + 1) ()
             in
             (o.Engine.states, o.Engine.rounds)
           in
           (* The whole Theorem 12 MIS pipeline through the engine knob. *)
           let t1mis mode =
             let r =
               Theorem1.run ~workers:1 ~engine:mode ~spec:mis_spec ~tree ~ids
                 ~f:Tl_core.Complexity.f_linear ()
             in
             ( List.init (Graph.n_half_edges tree)
                 (Labeling.get r.Theorem1.labeling),
               Tl_local.Round_cost.total r.Theorem1.cost )
           in
           (* Fixed-round full-scan max-id sweep: every round touches
              every node and gathers every neighbor — the memory-bound
              reference where working-set size dominates. *)
           let maxprop mode =
             let o =
               Engine.run_rounds ~mode ~sched:Engine.Full_scan
                 ~equal:Int.equal ~topo
                 ~init:(fun v -> ids.(v))
                 ~step:(fun ~round:_ ~node:_ s ~neighbors ->
                   List.fold_left
                     (fun m (_, _, su) -> if su > m then su else m)
                     s neighbors)
                 ~rounds:24 ()
             in
             (o.Engine.states, o.Engine.rounds)
           in
           (* Mostly-hidden snapshot, the shape of a late rake-compress
              layer: a path with all but ~1% of the base nodes hidden,
              stepped under Active_set with an always-changing sum rule
              so every round's frontier is dense. The monolithic
              stepper's dense-frontier rebuild scans its O(n_base)
              dirty array every round; the shards scan their compact
              O(n_owned) bitmaps — the working-set gap this backend
              exists to close. *)
           let n_visible = max 64 (n / 100) in
           let sparse_sg = Semi_graph.of_graph (Gen.path n) in
           for v = n_visible to n - 1 do
             Semi_graph.hide_node sparse_sg v
           done;
           let sparse_topo = Topology.compile sparse_sg in
           let sparse_sum mode =
             let o =
               Engine.run_rounds ~mode ~equal:Int.equal ~topo:sparse_topo
                 ~init:(fun v -> ids.(v))
                 ~step:(fun ~round:_ ~node:_ s ~neighbors ->
                   List.fold_left (fun acc (_, _, su) -> acc + su) (s + 1)
                     neighbors)
                 ~rounds:96 ()
             in
             (o.Engine.states, o.Engine.rounds)
           in
           [
             (Printf.sprintf "shard-flood.%d" i, n,
              run_shard_kernel ~reps flood);
             (Printf.sprintf "shard-t1mis.%d" i, n,
              run_shard_kernel ~reps t1mis);
             (Printf.sprintf "shard-maxprop.%d" i, n,
              run_shard_kernel ~reps maxprop);
             (Printf.sprintf "shard-sparse-sum.%d" i, n,
              run_shard_kernel ~reps sparse_sum);
           ])
         sizes)
  in
  let rows =
    List.concat_map
      (fun (name, n, results) ->
        let seq_t = (List.find (fun r -> r.mode = "seq") results).wall_s in
        List.map
          (fun r ->
            [
              name;
              Util.i n;
              r.mode;
              Util.i r.rounds;
              Printf.sprintf "%.4f" r.wall_s;
              Printf.sprintf "%.2fx"
                (if r.wall_s > 0. then seq_t /. r.wall_s else 0.);
              Util.pass_fail r.ok;
            ])
          results)
      kernels
  in
  Util.table
    ~header:[ "kernel"; "n"; "mode"; "rounds"; "wall s"; "vs seq"; "identical" ]
    rows;
  let best =
    List.fold_left
      (fun acc (_, _, results) ->
        let seq_t = (List.find (fun r -> r.mode = "seq") results).wall_s in
        List.fold_left
          (fun acc r ->
            if r.mode = "seq" || r.wall_s <= 0. then acc
            else max acc (seq_t /. r.wall_s))
          acc results)
      0. kernels
  in
  Printf.printf "\nbest shard speedup over seq: %.2fx — >= 1.5x on some kernel: %s\n"
    best
    (Util.pass_fail (best >= 1.5));
  merge_into_engine_json ~file:"BENCH_engine.json"
    (List.map (fun (name, n, results) -> shard_kernel_json ~name ~n results)
       kernels);
  Printf.printf "merged %d shard kernels into BENCH_engine.json\n"
    (List.length kernels)

(* ---------- B10: tl_metrics overhead (merges into BENCH_engine.json) ----------

   Measures what the live metrics registry costs on the hottest loop we
   have: the flood kernel under the active-set engine, once with the
   registry disabled (the one-shot CLI default — engine/pool hooks
   uninstalled, every shard-layer guard a single relaxed Atomic read)
   and once with Tl_obs.Metrics.enable () installed, which also turns on
   per-run trace collection feeding the engine_* counters and the
   engine_run_seconds histogram. Both best-of-reps wall clocks merge
   into BENCH_engine.json as kernel "metrics-overhead" (modes
   "metrics-off" / "metrics-on"), so bench/regress.exe gates the
   instrumentation cost like any other kernel; the acceptance bar —
   metrics-on within 3% of metrics-off — is printed as its own check
   (with the regress absolute floor for smoke-sized runs). Size is
   overridable via TL_METRICS_BENCH_N (CI smoke). *)

module Metrics = Tl_obs.Metrics

let metrics_bench_n () =
  match Option.bind (Sys.getenv_opt "TL_METRICS_BENCH_N") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 1_000_000

let run_metrics () =
  let n = metrics_bench_n () in
  let seed = 71 in
  Util.heading
    (Printf.sprintf
       "B10: tl_metrics overhead — flood, registry off vs on (n=%d)" n);
  let tree = Gen.random_tree ~n ~seed in
  let sg = Semi_graph.of_graph tree in
  let topo = Topology.compile sg in
  let flood () =
    let o =
      Engine.run_until_stable ~mode:Engine.Seq ~topo
        ~init:(fun v -> v = 0)
        ~step:(fun ~round:_ ~node:_ s ~neighbors ->
          s || List.exists (fun (_, _, su) -> su) neighbors)
        ~equal:Bool.equal ~max_rounds:(n + 1) ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  let reps = if n >= 500_000 then 5 else 7 in
  (* One untimed warmup per arm, then interleaved off/on trials: each
     rep times the off arm and the on arm back to back, so page-cache
     state and machine-load drift land on both arms alike. (The old
     all-off-then-all-on ordering let whichever arm ran first absorb
     the cold start — "on" would occasionally beat "off" on run order
     alone.) *)
  Metrics.disable ();
  let off_r = ref (flood ()) in
  Metrics.enable ();
  let on_r = ref (flood ()) in
  Metrics.reset ();
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let best_off = ref infinity and best_on = ref infinity in
  for _ = 1 to reps do
    Metrics.disable ();
    let r, dt = time flood in
    if dt < !best_off then best_off := dt;
    off_r := r;
    Metrics.enable ();
    let r, dt = time flood in
    if dt < !best_on then best_on := dt;
    on_r := r
  done;
  let off_r = !off_r and on_r = !on_r in
  let off_t = !best_off and on_t = !best_on in
  let runs_seen = Metrics.counter_value (Metrics.counter "engine_runs_total") in
  let steps_seen =
    Metrics.counter_value (Metrics.counter "engine_steps_total")
  in
  Metrics.disable ();
  let identical = off_r = on_r in
  let overhead_pct =
    if off_t > 0. then 100. *. ((on_t -. off_t) /. off_t) else 0.
  in
  Util.table
    ~header:[ "mode"; "rounds"; "wall s"; "identical" ]
    [
      [ "metrics-off"; Util.i (snd off_r); Printf.sprintf "%.4f" off_t; "-" ];
      [
        "metrics-on"; Util.i (snd on_r); Printf.sprintf "%.4f" on_t;
        Util.pass_fail identical;
      ];
    ];
  Printf.printf "\nengine counters while enabled: runs=%d steps=%d (%s)\n"
    runs_seen steps_seen
    (Util.pass_fail (runs_seen = reps && steps_seen > 0));
  Printf.printf "metrics-on within 3%% of metrics-off: %s (%+.2f%%)\n"
    (Util.pass_fail (on_t <= off_t *. 1.03 || on_t <= off_t +. 0.005))
    overhead_pct;
  merge_into_engine_json ~file:"BENCH_engine.json"
    [
      Json.Obj
        [
          ("kernel", Json.Str "metrics-overhead");
          ("n", Json.Num (float_of_int n));
          ("deterministic", Json.Bool identical);
          ( "modes",
            Json.Arr
              (List.map
                 (fun (mode, t, rounds) ->
                   Json.Obj
                     [
                       ("mode", Json.Str mode);
                       ("domains", Json.Num 1.);
                       ("wall_s", Json.Num t);
                       ("rounds", Json.Num (float_of_int rounds));
                     ])
                 [
                   ("metrics-off", off_t, snd off_r);
                   ("metrics-on", on_t, snd on_r);
                 ]) );
        ];
    ];
  Printf.printf "merged metrics-overhead into BENCH_engine.json\n"

(* ---------- B11: flat slabs + domain team (merges into BENCH_engine.json) ----------

   Times flood and greedy MIS on the boxed active-set engine (Seq, the
   production reference) against the flat slab path — sequential and
   fanned over the persistent domain team — asserting the flat results
   bit-identical to the boxed ones. Also measures the flat hot path's
   minor-heap allocation per step on an untraced flat:seq run and
   merges it as its own pseudo-kernel row ("flat-alloc", wall_s =
   words/step): bench/regress.exe then gates allocation regressions
   through its existing absolute floor, no new tooling. Size is
   overridable via TL_FLAT_BENCH_N (CI smoke). *)

module Flat = Tl_engine.Flat

let flat_bench_n () =
  match Option.bind (Sys.getenv_opt "TL_FLAT_BENCH_N") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 1_000_000

(* Step count of one traced run of [f]; rounds and steps are
   deterministic per mode, so one extra run outside the timing loop. *)
let flat_steps_of f =
  let traces = ref [] in
  let saved = !Engine.trace_sink in
  Engine.trace_sink := Some (fun t -> traces := t :: !traces);
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      ignore (f ());
      List.fold_left
        (fun acc t -> acc + (Trace.metrics t).Trace.steps)
        0 !traces)

(* One kernel's comparison rows: boxed Seq reference plus the flat path
   at par in {1, 2, 4}. [col_boxed] projects the boxed outcome to the
   (int column, rounds) pair the flat column is compared against.
   Trials are interleaved — each rep times the boxed arm then every
   flat arm back to back, after one untimed warmup apiece — so machine
   load drift lands on all arms alike (the same bias B10 corrects for;
   all-of-one-arm-then-the-next made ratios on a busy host a function
   of run order, not of the code). *)
let flat_kernel_rows ~reps ~run_boxed ~col_boxed ~run_flat_par =
  let pars = [| 1; 2; 4 |] in
  let warm_b = ref (run_boxed ()) in
  let warm_f = Array.map (fun par -> run_flat_par par) pars in
  let t_b = ref infinity in
  let t_f = Array.make (Array.length pars) infinity in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  for _ = 1 to reps do
    let r, dt = time run_boxed in
    if dt < !t_b then t_b := dt;
    warm_b := r;
    Array.iteri
      (fun i par ->
        let r, dt = time (fun () -> run_flat_par par) in
        if dt < t_f.(i) then t_f.(i) <- dt;
        warm_f.(i) <- r)
      pars
  done;
  let steps_b = flat_steps_of run_boxed in
  let col_b, rounds_b = col_boxed !warm_b in
  let boxed_row =
    { mode = "seq"; domains = 1; wall_s = !t_b; rounds = rounds_b;
      steps = steps_b; ok = true }
  in
  let flat_rows =
    List.mapi
      (fun i par ->
        let o_f = warm_f.(i) in
        let steps_f = flat_steps_of (fun () -> run_flat_par par) in
        {
          mode =
            (if par <= 1 then "flat:seq" else Printf.sprintf "flat:par:%d" par);
          domains = (if par <= 1 then 1 else par);
          wall_s = t_f.(i);
          rounds = o_f.Flat.rounds;
          steps = steps_f;
          ok = Flat.column o_f ~slot:0 = col_b && o_f.Flat.rounds = rounds_b;
        })
      (Array.to_list pars)
  in
  boxed_row :: flat_rows

let flat_kernel_json ~name ~n rows =
  let seq_t = (List.find (fun r -> r.mode = "seq") rows).wall_s in
  Json.Obj
    [
      ("kernel", Json.Str name);
      ("n", Json.Num (float_of_int n));
      ("deterministic", Json.Bool (List.for_all (fun r -> r.ok) rows));
      ( "modes",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("mode", Json.Str r.mode);
                   ("domains", Json.Num (float_of_int r.domains));
                   ("wall_s", Json.Num r.wall_s);
                   ("rounds", Json.Num (float_of_int r.rounds));
                   ("steps", Json.Num (float_of_int r.steps));
                   ( "speedup_vs_seq",
                     Json.Num (if r.wall_s > 0. then seq_t /. r.wall_s else 0.)
                   );
                 ])
             rows) );
    ]

let run_flat () =
  let n = flat_bench_n () in
  let seed = 71 in
  Util.heading
    (Printf.sprintf
       "B11: flat state slabs + persistent domain team — boxed seq vs flat \
        (n=%d)"
       n);
  let tree = Gen.random_tree ~n ~seed in
  let sg = Semi_graph.of_graph tree in
  let topo = Topology.compile sg in
  let ids = Ids.permuted ~n ~seed:(seed + 8) in
  (* best-of-5 even at full size: the arms are interleaved, so more reps
     buy more quiet-window samples for every arm at once *)
  let reps = 5 in
  let max_rounds = n + 1 in
  (* flood: boxed bool states vs flat slot-0 column *)
  let boxed_flood () =
    Engine.run_until_stable ~mode:Engine.Seq ~topo
      ~init:(fun v -> v = 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors ->
        s || List.exists (fun (_, _, su) -> su) neighbors)
      ~equal:Bool.equal ~max_rounds ()
  in
  let flood_kernel = Flat.Kernels.flood () in
  let flat_flood par =
    Flat.run_until_stable ~par ~topo ~kernel:flood_kernel ~max_rounds ()
  in
  (* greedy MIS by local id maximum: boxed int states vs flat column *)
  let boxed_mis () =
    Engine.run ~mode:Engine.Seq ~topo
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:v s ~neighbors ->
        if s <> 0 then s
        else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
        else if
          List.for_all
            (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v))
            neighbors
        then 1
        else 0)
      ~halted:(fun s -> s <> 0)
      ~max_rounds ()
  in
  let mis_kernel = Flat.Kernels.mis_local_max ~ids in
  let flat_mis par = Flat.run ~par ~topo ~kernel:mis_kernel ~max_rounds () in
  let kernels =
    [
      ( "flat-flood",
        flat_kernel_rows ~reps ~run_boxed:boxed_flood
          ~col_boxed:(fun o ->
            (Array.map Bool.to_int o.Engine.states, o.Engine.rounds))
          ~run_flat_par:flat_flood );
      ( "flat-mis",
        flat_kernel_rows ~reps ~run_boxed:boxed_mis
          ~col_boxed:(fun o -> (o.Engine.states, o.Engine.rounds))
          ~run_flat_par:flat_mis );
    ]
  in
  let rows =
    List.concat_map
      (fun (name, rows) ->
        let seq_t = (List.find (fun r -> r.mode = "seq") rows).wall_s in
        List.map
          (fun r ->
            [
              name;
              r.mode;
              Util.i r.rounds;
              Util.i r.steps;
              Printf.sprintf "%.4f" r.wall_s;
              Printf.sprintf "%.2fx"
                (if r.wall_s > 0. then seq_t /. r.wall_s else 0.);
              Util.pass_fail r.ok;
            ])
          rows)
      kernels
  in
  Util.table
    ~header:
      [ "kernel"; "mode"; "rounds"; "steps"; "wall s"; "vs seq"; "identical" ]
    rows;
  (* acceptance: the flat path on the 4-wide team beats the boxed
     sequential engine by >= 1.6x on both kernels *)
  let speedup_ok =
    List.for_all
      (fun (_, rows) ->
        let t m = (List.find (fun r -> r.mode = m) rows).wall_s in
        t "flat:par:4" > 0. && t "seq" /. t "flat:par:4" >= 1.6)
      kernels
  in
  Printf.printf "\nflat:par:4 >= 1.6x over boxed seq on both kernels: %s\n"
    (Util.pass_fail speedup_ok);
  (* allocation per step on the untraced flat:seq hot path: the state
     slabs go straight to the major heap (>= 256 words), so the
     bracketed minor-words delta is the per-round bookkeeping budget —
     a handful of words for the whole run, orders of magnitude below
     one word per step. *)
  let flood_steps =
    let rows = List.assoc "flat-flood" kernels in
    (List.find (fun r -> r.mode = "flat:seq") rows).steps
  in
  ignore (flat_flood 1);
  let w0 = Gc.minor_words () in
  ignore (flat_flood 1);
  let w1 = Gc.minor_words () in
  let words_per_step =
    if flood_steps > 0 then (w1 -. w0) /. float_of_int flood_steps else 0.
  in
  Printf.printf "flat:seq minor words/step: %.6f over %d steps (%s)\n"
    words_per_step flood_steps
    (Util.pass_fail (words_per_step < 0.01));
  merge_into_engine_json ~file:"BENCH_engine.json"
    (List.map (fun (name, rows) -> flat_kernel_json ~name ~n rows) kernels
    @ [
        Json.Obj
          [
            ("kernel", Json.Str "flat-alloc");
            ("n", Json.Num (float_of_int n));
            ("deterministic", Json.Bool true);
            ( "modes",
              Json.Arr
                [
                  Json.Obj
                    [
                      ("mode", Json.Str "flat:seq");
                      ("domains", Json.Num 1.);
                      ("wall_s", Json.Num words_per_step);
                      ("rounds", Json.Num (float_of_int flood_steps));
                    ];
                ] );
          ];
      ]);
  Printf.printf "merged flat-flood / flat-mis / flat-alloc into BENCH_engine.json\n"

(* ---------- B12: process-parallel shard backend (merges into BENCH_engine.json) ----------

   Times the sequential stepper against the tl_proc backend — one shard
   per forked Unix process, halos over socketpairs in the tlp binary
   wire format — on flood and the greedy-MIS machine, with the in-process
   shard:4 backend (pool=1) as the cache-blocking control: the delta
   between shard:4 and proc:4 is what the processes add (isolation, the
   wire, per-worker minor heaps) minus what they cost (fork, frame
   traffic, coordinator barriers). The proc-flat rows run the flat
   int-slab executor inside each worker — the configuration the backend
   exists for. A "proc-alloc" pseudo-row records the scalar codec's
   minor words per put+get pair (wall_s = words/op, exactly 0 in steady
   state), so regress.exe gates allocation creep on the wire hot path
   through its absolute floor.

   CRITICAL ordering: every proc measurement runs before any mode that
   can spawn a domain (shard, par, pool) — OCaml 5 forbids fork once a
   domain has ever been spawned. For the same reason B12 skips itself
   with a note when domains already exist in this process (a full-suite
   `bench/main.exe` run after B6/B7): run it standalone, one process per
   experiment, as `make bench-full` and CI do. Size is overridable via
   TL_PROC_BENCH_N (CI smoke). *)

module Proc = Tl_proc.Coordinator
module Proc_wire = Tl_proc.Wire
module Team = Tl_engine.Team

let proc_bench_n () =
  match Option.bind (Sys.getenv_opt "TL_PROC_BENCH_N") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 1_000_000

(* Best-of-[reps] with the shard-plan and topology caches cleared before
   every run (each mode pays its plan build cold, fork and prologue
   shipping included) and an untimed pre-rep compaction, as in B8. *)
let bench_proc_arm ~reps f =
  let best = ref infinity and result = ref None in
  for _ = 1 to reps do
    Shard_plan.clear_cache ();
    Topology.clear_cache ();
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

let codec_words_per_op () =
  let b = Bytes.create 16 in
  Proc_wire.put_i64 b 0 42;
  ignore (Proc_wire.get_i64 b 0);
  let ops = 1_000_000 in
  let w0 = Gc.minor_words () in
  for i = 1 to ops do
    Proc_wire.put_i64 b 0 (i * 1_000_003);
    if Proc_wire.get_i64 b 0 <> i * 1_000_003 then assert false
  done;
  let dw = Gc.minor_words () -. w0 in
  (* subtract nothing: the only allocation in the bracket is the
     Gc.minor_words float box itself, under one word per thousand ops *)
  (Float.max 0. (dw -. 8.) /. float_of_int ops, ops)

let run_proc () =
  let n = proc_bench_n () in
  let seed = 71 in
  Util.heading
    (Printf.sprintf
       "B12: process-parallel shard backend — seq vs shard:4 vs proc:{2,4} \
        over the tlp wire (n=%d)"
       n);
  if Team.spawns () > 0 then
    Printf.printf
      "domains already spawned in this process — fork is unavailable, \
       skipping B12\n\
       (run it standalone: dune exec bench/main.exe -- B12)\n"
  else begin
    let tree = Gen.random_tree ~n ~seed in
    let sg = Semi_graph.of_graph tree in
    let topo = Topology.compile sg in
    let ids = Ids.permuted ~n ~seed:79 in
    let max_rounds = n + 1 in
    let reps = if n >= 500_000 then 1 else 2 in
    let flood mode =
      let o =
        Engine.run_until_stable ~mode ~topo
          ~init:(fun v -> v = 0)
          ~step:(fun ~round:_ ~node:_ s ~neighbors ->
            s || List.exists (fun (_, _, su) -> su) neighbors)
          ~equal:Bool.equal ~max_rounds ()
      in
      (Array.map Bool.to_int o.Engine.states, o.Engine.rounds)
    in
    let mis mode =
      let o =
        Engine.run ~mode ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:v s ~neighbors ->
            if s <> 0 then s
            else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
            else if
              List.for_all
                (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v))
                neighbors
            then 1
            else 0)
          ~halted:(fun s -> s <> 0)
          ~max_rounds ()
      in
      (o.Engine.states, o.Engine.rounds)
    in
    let flat_flood procs () =
      let o =
        Proc.run_flat_until_stable ~procs ~topo
          ~kernel_for:(Proc.Kernels.flood ()) ~max_rounds ()
      in
      (Flat.column o ~slot:0, o.Flat.rounds)
    in
    let flat_mis procs () =
      let o =
        Proc.run_flat ~procs ~topo
          ~kernel_for:(Proc.Kernels.mis_local_max ~ids)
          ~max_rounds ()
      in
      (Flat.column o ~slot:0, o.Flat.rounds)
    in
    (* 1. every proc arm, before anything can spawn a domain *)
    let proc_arms kernel flat =
      List.map
        (fun (mode_name, f) -> (mode_name, bench_proc_arm ~reps f))
        [
          ("proc:2", fun () -> kernel (Engine.Proc 2));
          ("proc:4", fun () -> kernel (Engine.Proc 4));
          ("proc-flat:4", flat 4);
        ]
    in
    let flood_proc = proc_arms flood flat_flood in
    let mis_proc = proc_arms mis flat_mis in
    (* 2. the in-process references (seq, then shard:4 — the latter may
       spawn the domain team even at pool width 1) *)
    let flood_seq = bench_proc_arm ~reps (fun () -> flood Engine.Seq) in
    let mis_seq = bench_proc_arm ~reps (fun () -> mis Engine.Seq) in
    let shard_arm kernel =
      let saved = !Pool.default_workers in
      Pool.default_workers := 1;
      Fun.protect
        ~finally:(fun () -> Pool.default_workers := saved)
        (fun () -> bench_proc_arm ~reps (fun () -> kernel (Engine.Shard 4)))
    in
    let flood_shard = shard_arm flood in
    let mis_shard = shard_arm mis in
    let rows_of (seq_r, seq_t) shard arms =
      { mode = "seq"; domains = 1; wall_s = seq_t; rounds = snd seq_r;
        steps = 0; ok = true }
      :: (let r, t = shard in
          { mode = "shard:4"; domains = 1; wall_s = t; rounds = snd r;
            steps = 0; ok = r = seq_r })
      :: List.map
           (fun (mode, (r, t)) ->
             { mode; domains = 4; wall_s = t; rounds = snd r; steps = 0;
               ok = r = seq_r })
           arms
    in
    let kernels =
      [
        ("proc-flood.0", n, rows_of flood_seq flood_shard flood_proc);
        ("proc-mis.0", n, rows_of mis_seq mis_shard mis_proc);
      ]
    in
    let rows =
      List.concat_map
        (fun (name, n, results) ->
          let seq_t = (List.find (fun r -> r.mode = "seq") results).wall_s in
          List.map
            (fun r ->
              [
                name;
                Util.i n;
                r.mode;
                Util.i r.rounds;
                Printf.sprintf "%.4f" r.wall_s;
                Printf.sprintf "%.2fx"
                  (if r.wall_s > 0. then seq_t /. r.wall_s else 0.);
                Util.pass_fail r.ok;
              ])
            results)
        kernels
    in
    Util.table
      ~header:[ "kernel"; "n"; "mode"; "rounds"; "wall s"; "vs seq"; "identical" ]
      rows;
    let best =
      List.fold_left
        (fun acc (_, _, results) ->
          let seq_t = (List.find (fun r -> r.mode = "seq") results).wall_s in
          List.fold_left
            (fun acc r ->
              if String.length r.mode >= 4 && String.sub r.mode 0 4 = "proc"
                 && r.wall_s > 0.
              then max acc (seq_t /. r.wall_s)
              else acc)
            acc results)
        0. kernels
    in
    Printf.printf
      "\nbest proc arm over seq: %.2fx — proc backend >= 1.0x on flood or \
       MIS: %s\n"
      best
      (Util.pass_fail (best >= 1.0));
    let words_per_op, ops = codec_words_per_op () in
    Printf.printf "wire codec minor words/op: %.6f over %d ops (%s)\n"
      words_per_op ops
      (Util.pass_fail (words_per_op < 0.01));
    merge_into_engine_json ~file:"BENCH_engine.json"
      (List.map
         (fun (name, n, results) -> shard_kernel_json ~name ~n results)
         kernels
      @ [
          Json.Obj
            [
              ("kernel", Json.Str "proc-alloc");
              ("n", Json.Num (float_of_int n));
              ("deterministic", Json.Bool true);
              ( "modes",
                Json.Arr
                  [
                    Json.Obj
                      [
                        ("mode", Json.Str "codec");
                        ("domains", Json.Num 1.);
                        ("wall_s", Json.Num words_per_op);
                        ("rounds", Json.Num (float_of_int ops));
                      ];
                  ] );
            ];
        ]);
    Printf.printf
      "merged proc-flood / proc-mis / proc-alloc into BENCH_engine.json\n"
  end

let run () =
  Util.heading "B1-B5: kernel wall-clock microbenchmarks (Bechamel)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name est ->
      let ns =
        match Analyze.OLS.estimates est with
        | Some [ t ] -> t
        | _ -> Float.nan
      in
      rows := [ name; Printf.sprintf "%.3f ms" (ns /. 1e6) ] :: !rows)
    results;
  Util.table ~header:[ "kernel"; "time/run" ]
    (List.sort compare !rows)
