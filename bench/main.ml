(* Experiment harness: regenerates every quantitative claim of the paper
   (see DESIGN.md section 5 for the per-experiment index and
   EXPERIMENTS.md for paper-vs-measured outcomes).

   Usage:
     dune exec bench/main.exe                  # run everything
     dune exec bench/main.exe -- E6 E8         # run selected experiments
     dune exec bench/main.exe -- --list        # list experiment ids
     dune exec bench/main.exe -- --csv out/    # also write each table as CSV
*)

let experiments =
  [
    ("E1-E3", "rake-and-compress certificates (Lemmas 9-11)", Exp_rake_compress.run);
    ("E4-E5", "Algorithm 3 certificates (Lemmas 13-14, stars)", Exp_arb_decompose.run);
    ("E6", "Theorem 12 end-to-end on trees", Exp_theorem1.run);
    ("E7", "Theorem 15 end-to-end on bounded arboricity", Exp_theorem2.run);
    ("E8", "Theorem 3: strongly sublogarithmic edge coloring", Exp_theorem3.run);
    ("E9", "separation: edge coloring vs MIS/matching", Exp_separation.run);
    ("E10", "maximal matching on trees ([BE13] shape)", Exp_matching_tree.run);
    ("E11", "g(n) solver and Section 1.1 implications", Exp_g_table.run);
    ("E12", "arboricity sweep (Theorem 3, second part)", Exp_arboricity_sweep.run);
    ("E13", "round elimination fixed points and growth", Exp_roundelim.run);
    ("E14", "sinkless orientation in Theta(log n)", Exp_sinkless.run);
    ("A", "ablations: k, rho, b, ID schemes", Exp_ablation.run);
    ("B", "kernel wall-clock microbenchmarks", Kernel_bench.run);
    ("B6", "engine: naive vs active-set vs parallel stepping", Kernel_bench.run_engine);
    ("B7", "component-solve pool: sequential vs pooled Theorem 12/15", Kernel_bench.run_pool);
    ("B8", "sharded halo-exchange backend: seq vs shard:{2,4,8}", Kernel_bench.run_shard);
    ("B9", "serving daemon: closed-loop latency, cold vs warm cache", Serve_bench.run);
    ("B10", "tl_metrics overhead: flood with registry off vs on", Kernel_bench.run_metrics);
    ("B11", "flat state slabs + domain team: boxed seq vs flat", Kernel_bench.run_flat);
    (* B12 forks worker processes, which OCaml 5 forbids after any domain
       spawn: it self-skips in a full-suite single-process run (after
       B6/B7 spawned the team) and is meant to run standalone, one
       process per experiment, as `make bench-full` and CI do. *)
    ("B12", "process backend: seq vs shard:4 vs proc:{2,4} over the tlp wire", Kernel_bench.run_proc);
    ("B13", "tl_fault: incremental repair vs full recompute, gate overhead", Fault_bench.run);
  ]

(* GC parameters as of process start.  The bechamel microbenches
   (experiment "B") permanently set [max_overhead] to 1e6 — disabling
   automatic compaction for the rest of the process — so every
   experiment dispatched after them would otherwise run on an
   ever-fragmenting major heap and report wall times 2-7x worse than
   the same code measured standalone. *)
let initial_gc = Gc.get ()

(* Dispatch one experiment, tagging its CSV tables for the manifest.
   Restoring the GC parameters and compacting between experiments is
   measurement hygiene: the big-n experiments (B7/B8 at n = 1e6) grow
   and fragment the major heap, and a later experiment's large-array
   allocations crawl through the fragmented free lists — wall-clock
   noise that has nothing to do with the code under test. *)
let dispatch (id, _, run) =
  Util.manifest_experiment := id;
  Gc.set initial_gc;
  Gc.compact ();
  run ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let args =
    (* --csv DIR: mirror every table to CSV artifacts under DIR *)
    let rec strip acc = function
      | "--csv" :: dir :: rest ->
        Util.csv_dir := Some dir;
        strip acc rest
      | x :: rest -> strip (x :: acc) rest
      | [] -> List.rev acc
    in
    strip [] args
  in
  match args with
  | [ "--list" ] ->
    List.iter (fun (id, desc, _) -> Printf.printf "%-6s %s\n" id desc) experiments
  | [] ->
    Printf.printf
      "tree-local experiment harness — reproducing 'Towards Optimal\n\
       Deterministic LOCAL Algorithms on Trees' (PODC 2025)\n";
    List.iter dispatch experiments;
    Util.write_manifest ()
  | selected ->
    List.iter
      (fun want ->
        match
          List.find_opt
            (fun (id, _, _) ->
              id = want || String.lowercase_ascii id = String.lowercase_ascii want)
            experiments
        with
        | Some exp -> dispatch exp
        | None ->
          Printf.eprintf "unknown experiment %s (try --list)\n" want;
          exit 1)
      selected;
    Util.write_manifest ()
