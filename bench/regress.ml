(* regress: bench/report regression comparator.

   Usage:
     regress.exe [--tolerance FRAC] [--abs-tolerance SECS] OLD.json NEW.json

   Loads two measurement files, aligns their kernels/spans by label and
   prints a per-label PASS/FAIL delta table. A label passes when its
   wall-clock in NEW is within the relative tolerance
   (new <= old * (1 + FRAC), default 0.20) OR within the absolute
   tolerance (new <= old + SECS, default 0.005). The absolute fallback is
   the timer-noise floor: a zero or near-zero baseline would otherwise
   fail on any positive measurement, however tiny. With a zero baseline
   the delta column shows seconds instead of a (undefined) percentage.
   A non-finite metric — JSON null, which the repo's writers emit for
   nan/inf — always FAILs its row: a measurement that produced garbage
   must not pass a gate silently. Exit status: 0 when every aligned label
   passes, 1 on any regression, 2 on usage/parse errors — so CI can gate
   on it.

   Three self-describing input formats are recognized:
     - BENCH_engine.json   (bench/kernel_bench.ml B6): labels are
       "<kernel>/<mode>", metric is the mode's "wall_s";
     - span reports        (tl_obs, CLI --profile): labels are
       slash-joined span paths, metric is "elapsed_s";
     - trace arrays        (CLI --trace): labels are "<label>#<i>",
       metric is "total_s".
   The two files need not share a format: alignment is purely by label.
   Labels present in only one file are reported but never fail the run. *)

module Json = Tl_obs.Json

let usage () =
  prerr_endline
    "usage: regress.exe [--tolerance FRAC] [--abs-tolerance SECS] OLD.json \
     NEW.json";
  exit 2

let die fmt = Printf.ksprintf (fun msg -> prerr_endline ("regress: " ^ msg); exit 2) fmt

(* ---------- extraction: (label, seconds) rows per format ---------- *)

let num_field name j =
  match Json.member name j with
  | Some (Json.Num f) -> f
  (* null is what the Json printer emits for nan/inf: keep the row and
     let the comparison fail it rather than dying with "missing field" *)
  | Some Json.Null -> Float.nan
  | _ -> die "missing numeric field %S" name

let str_field name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> s
  | None -> die "missing string field %S" name

let rows_of_bench j =
  let kernels =
    match Option.bind (Json.member "kernels" j) Json.to_list with
    | Some l -> l
    | None -> die "bench file has no \"kernels\" array"
  in
  List.concat_map
    (fun kernel ->
      let name = str_field "kernel" kernel in
      let modes =
        Option.bind (Json.member "modes" kernel) Json.to_list
        |> Option.value ~default:[]
      in
      List.map
        (fun m -> (name ^ "/" ^ str_field "mode" m, num_field "wall_s" m))
        modes)
    kernels

let rows_of_report j =
  let rec go prefix seen acc span =
    let path =
      let name = str_field "name" span in
      if prefix = "" then name else prefix ^ "/" ^ name
    in
    let path =
      match Hashtbl.find_opt seen path with
      | None ->
        Hashtbl.add seen path 1;
        path
      | Some k ->
        Hashtbl.replace seen path (k + 1);
        Printf.sprintf "%s#%d" path k
    in
    let acc = (path, num_field "elapsed_s" span) :: acc in
    let children =
      Option.bind (Json.member "children" span) Json.to_list
      |> Option.value ~default:[]
    in
    List.fold_left (go path seen) acc children
  in
  match Json.member "span" j with
  | Some span -> List.rev (go "" (Hashtbl.create 16) [] span)
  | None -> die "report file has no \"span\" object"

let rows_of_traces traces =
  List.mapi
    (fun i t ->
      (Printf.sprintf "%s#%d" (str_field "label" t) i, num_field "total_s" t))
    traces

let rows_of_file file =
  match Json.parse_file file with
  | exception Sys_error msg -> die "cannot read %s: %s" file msg
  | exception Json.Parse_error msg -> die "cannot parse %s: %s" file msg
  | Json.Arr traces -> rows_of_traces traces
  | Json.Obj _ as j ->
    if Json.member "bench" j <> None then rows_of_bench j
    else if Json.member "tl_obs_report" j <> None then rows_of_report j
    else die "%s: unrecognized format (expected bench, report or trace JSON)" file
  | _ -> die "%s: unrecognized format" file

(* ---------- comparison ---------- *)

let () =
  let tolerance = ref 0.20 in
  let abs_tolerance = ref 0.005 in
  let files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | ("--tolerance" | "-t") :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 0. ->
        tolerance := f;
        parse_args rest
      | _ -> die "invalid tolerance %S" v)
    | "--abs-tolerance" :: v :: rest -> (
      match float_of_string_opt v with
      | Some f when f >= 0. && Float.is_finite f ->
        abs_tolerance := f;
        parse_args rest
      | _ -> die "invalid absolute tolerance %S" v)
    | "--help" :: _ -> usage ()
    | f :: rest ->
      files := f :: !files;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let old_file, new_file =
    match List.rev !files with [ o; n ] -> (o, n) | _ -> usage ()
  in
  let old_rows = rows_of_file old_file and new_rows = rows_of_file new_file in
  Printf.printf "regress: %s -> %s (tolerance +%.1f%% or +%.3fs)\n" old_file
    new_file
    (100. *. !tolerance)
    !abs_tolerance;
  Printf.printf "  %-44s %10s %10s %8s  %s\n" "label" "old_s" "new_s" "delta"
    "status";
  let regressions = ref 0 and compared = ref 0 in
  List.iter
    (fun (label, old_s) ->
      match List.assoc_opt label new_rows with
      | None -> Printf.printf "  %-44s %10.4f %10s %8s  only-in-old\n" label old_s "-" "-"
      | Some new_s ->
        incr compared;
        let finite = Float.is_finite old_s && Float.is_finite new_s in
        let ok =
          finite
          && (new_s <= old_s *. (1. +. !tolerance)
             || new_s <= old_s +. !abs_tolerance)
        in
        if not ok then incr regressions;
        let delta =
          if not finite then "n/a"
          else if old_s > 0. then
            Printf.sprintf "%+7.1f%%" (100. *. ((new_s -. old_s) /. old_s))
          else Printf.sprintf "%+7.4fs" (new_s -. old_s)
        in
        Printf.printf "  %-44s %10.4f %10.4f %8s  %s\n" label old_s new_s delta
          (if ok then "PASS"
           else if finite then "FAIL"
           else "FAIL(non-finite)"))
    old_rows;
  List.iter
    (fun (label, new_s) ->
      if not (List.mem_assoc label old_rows) then
        Printf.printf "  %-44s %10s %10.4f %8s  only-in-new\n" label "-" new_s
          "-")
    new_rows;
  Printf.printf "regress: %s (%d compared, %d regression(s))\n"
    (if !regressions = 0 then "PASS" else "FAIL")
    !compared !regressions;
  exit (if !regressions = 0 then 0 else 1)
