(* ---------- B9: serving daemon load generator (emits BENCH_serve.json) ----------

   Spawns the real tree_local_serve.exe over pipes and drives it as a
   closed-loop client: send one ndjson request, wait for its response,
   measure the wall-clock between them. Two phases per problem:

   - cold: every request names a different seed, so every request is an
     instance-cache miss — generator + compile + solve on each;
   - warm: every request names the same spec, so after one unmeasured
     priming request the daemon serves pure cache hits (the instance,
     its compiled topology and — in shard mode — its plan are reused).

   The per-request latencies aggregate to p50/p99 per phase plus a
   requests/sec figure. The aggregation goes through a Tl_obs.Metrics
   histogram rather than a sorted-array percentile: each latency is
   observed into a fresh log-bucketed histogram and the quantiles are
   read from its snapshot — the same machinery (and the same <= 2^(1/4)
   bucket-boundary overestimate, see EXPERIMENTS.md) that the daemon's
   live `metrics` control exposes, so offline and live numbers agree by
   construction. Warm must show cache hits and identical digests
   (served results are deterministic, cached or not). Measurements land
   in BENCH_serve.json in the same kernels/modes/wall_s schema as
   BENCH_engine.json, so bench/regress.exe gates them unchanged.
   Instance size and request count are overridable via TL_SERVE_BENCH_N
   and TL_SERVE_BENCH_R (CI smoke). *)

module Json = Tl_obs.Json
module Metrics = Tl_obs.Metrics
module P = Tl_serve.Protocol

let bench_n () =
  match Option.bind (Sys.getenv_opt "TL_SERVE_BENCH_N") int_of_string_opt with
  | Some n when n > 1 -> n
  | _ -> 20_000

let bench_r () =
  match Option.bind (Sys.getenv_opt "TL_SERVE_BENCH_R") int_of_string_opt with
  | Some r when r > 1 -> r
  | _ -> 60

let daemon_path () =
  let p =
    Filename.concat
      (Filename.dirname Sys.executable_name)
      "../bin/tree_local_serve.exe"
  in
  if Sys.file_exists p then p
  else failwith ("B9: daemon binary not found at " ^ p)

let spec ~n ~seed =
  P.Family { family = "random-tree"; n; seed; a = 1; delta = 8 }

(* one closed-loop request; returns (latency_s, solved) *)
let roundtrip inc out req =
  let t0 = Unix.gettimeofday () in
  output_string out (Json.to_line (P.request_to_json req));
  flush out;
  let line = input_line inc in
  let dt = Unix.gettimeofday () -. t0 in
  match P.response_of_json (Json.parse line) with
  | Ok { P.outcome = P.Solved s; _ } -> (dt, s)
  | Ok { P.outcome = P.Error (_, msg); _ } -> failwith ("B9: request failed: " ^ msg)
  | Ok _ -> failwith "B9: unexpected response kind"
  | Error msg -> failwith ("B9: bad response: " ^ msg)

(* Aggregate one phase's latencies through a tl_metrics histogram: a
   labeled histogram per (problem, phase) keeps registrations distinct,
   and p50/p99 come from Metrics.quantile over its snapshot. rps is
   count/sum — both read back from the same snapshot the quantiles use. *)
let summarize ~problem ~phase lats =
  let h =
    Metrics.histogram
      ~labels:[ ("problem", problem); ("phase", phase) ]
      "serve_bench_request_seconds"
  in
  List.iter (Metrics.observe h) lats;
  let s = Metrics.histogram_snapshot h in
  ( Metrics.quantile s 0.50,
    Metrics.quantile s 0.99,
    if s.Metrics.h_sum > 0. then
      float_of_int s.Metrics.h_count /. s.Metrics.h_sum
    else 0. )

(* drive one problem through both phases over a fresh daemon *)
let drive ~problem ~n ~r =
  let inc, out = Unix.open_process (daemon_path ()) in
  Fun.protect
    ~finally:(fun () -> ignore (Unix.close_process (inc, out)))
    (fun () ->
      let request ~seed =
        P.request ~id:"b9" ~problem ~spec:(spec ~n ~seed) ~want_span:false ()
      in
      (* cold: distinct seeds, every request builds its instance *)
      let cold = ref [] in
      for i = 1 to r do
        let dt, s = roundtrip inc out (request ~seed:i) in
        if s.P.cache_hit then failwith "B9: cold request hit the cache";
        cold := dt :: !cold
      done;
      (* warm: one spec; prime once (unmeasured), then pure cache hits *)
      let warm_seed = r + 1000 in
      let _, primed = roundtrip inc out (request ~seed:warm_seed) in
      let warm = ref [] and hits = ref 0 in
      for _ = 1 to r do
        let dt, s = roundtrip inc out (request ~seed:warm_seed) in
        if s.P.cache_hit then incr hits;
        if s.P.digest <> primed.P.digest then
          failwith "B9: warm digest diverged from the primed run";
        warm := dt :: !warm
      done;
      if !hits = 0 then failwith "B9: warm phase saw no cache hits";
      output_string out (Json.to_line (P.control_to_json ~id:"bye" P.Shutdown));
      flush out;
      ( summarize ~problem ~phase:"cold" !cold,
        summarize ~problem ~phase:"warm" !warm,
        !hits ))

let emit_json ~file ~n ~r rows =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "{\"bench\":\"serve\",\"family\":\"random-tree\",\"n\":%d,\"requests\":%d,\
     \"cores\":%d,\"kernels\":[" n r
    (Domain.recommended_domain_count ());
  List.iteri
    (fun i (problem, ((c50, c99, crps), (w50, w99, wrps), hits)) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b
        "\n {\"kernel\":\"serve-%s\",\"deterministic\":true,\
         \"rps_cold\":%.1f,\"rps_warm\":%.1f,\"warm_cache_hits\":%d,\"modes\":[\n\
        \  {\"mode\":\"cold_p50\",\"wall_s\":%.6f},\n\
        \  {\"mode\":\"cold_p99\",\"wall_s\":%.6f},\n\
        \  {\"mode\":\"warm_p50\",\"wall_s\":%.6f},\n\
        \  {\"mode\":\"warm_p99\",\"wall_s\":%.6f}]}"
        problem crps wrps hits c50 c99 w50 w99)
    rows;
  Buffer.add_string b "]}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc

let run () =
  let n = bench_n () and r = bench_r () in
  Util.heading
    (Printf.sprintf
       "B9: serving daemon — closed-loop latency, cold vs warm (n=%d, %d \
        requests/phase)"
       n r);
  let problems = [ "flood"; "mis" ] in
  let rows = List.map (fun p -> (p, drive ~problem:p ~n ~r)) problems in
  Printf.printf "  %-14s %12s %12s %12s %12s %10s %6s\n" "kernel" "cold_p50"
    "cold_p99" "warm_p50" "warm_p99" "warm_rps" "hits";
  List.iter
    (fun (p, ((c50, c99, _), (w50, w99, wrps), hits)) ->
      Printf.printf "  serve-%-8s %10.3fms %10.3fms %10.3fms %10.3fms %10.1f %6d\n"
        p (c50 *. 1e3) (c99 *. 1e3) (w50 *. 1e3) (w99 *. 1e3) wrps hits;
      if w50 >= c50 then
        Printf.printf
          "  note: warm p50 not below cold p50 for serve-%s (timer noise at \
           this n)\n"
          p)
    rows;
  emit_json ~file:"BENCH_serve.json" ~n ~r rows;
  Printf.printf "wrote BENCH_serve.json\n"
