(* Shared helpers for the experiment harness: aligned table printing
   (optionally mirrored to CSV artifacts) and the standard instance
   families. *)

(* When set (via `bench/main.exe -- --csv DIR`), every printed table is
   also written as a CSV file under DIR, numbered within the current
   section — the raw series behind each "figure". *)
let csv_dir : string option ref = ref None
let section_slug = ref "preamble"
let table_counter = ref 0

(* Experiment id of the currently running section (set by bench/main.ml
   before dispatching each experiment) and the manifest rows collected
   this invocation: (experiment id, csv file, header columns). *)
let manifest_experiment = ref ""
let manifest : (string * string * string list) list ref = ref []

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* compress runs of dashes and trim to something filename-sized *)
  let b = Buffer.create (String.length s) in
  let last_dash = ref false in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char b '-';
        last_dash := true
      end
      else begin
        Buffer.add_char b c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents b in
  if String.length s > 48 then String.sub s 0 48 else s

let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n" bar title bar;
  section_slug := slugify title;
  table_counter := 0

let subheading title = Printf.printf "\n--- %s ---\n" title

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    incr table_counter;
    let path =
      Filename.concat dir
        (Printf.sprintf "%s-%d.csv" !section_slug !table_counter)
    in
    let oc = open_out path in
    let emit row =
      output_string oc (String.concat "," (List.map csv_escape row));
      output_char oc '\n'
    in
    emit header;
    List.iter emit rows;
    close_out oc;
    manifest :=
      (!manifest_experiment, Filename.basename path, header) :: !manifest

(* Write (or merge into) DIR/MANIFEST.csv: one row per emitted CSV —
   experiment id, file name, and the file's columns joined with ';'.
   Rows from a previous manifest survive unless their experiment ran
   again this invocation or their file was rewritten, so partial runs
   (`main.exe -- --csv DIR E11`) refresh their own rows without
   forgetting everyone else's. *)
let write_manifest () =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir "MANIFEST.csv" in
    let fresh =
      List.rev_map
        (fun (id, file, header) ->
          Printf.sprintf "%s,%s,%s" id file
            (csv_escape (String.concat ";" header)))
        !manifest
    in
    let new_ids = List.rev_map (fun (id, _, _) -> id) !manifest in
    let new_files = List.rev_map (fun (_, f, _) -> f) !manifest in
    let kept =
      if not (Sys.file_exists path) then []
      else begin
        let ic = open_in path in
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> close_in ic);
        List.rev !lines
        |> List.filteri (fun i _ -> i > 0) (* drop the header row *)
        |> List.filter (fun line ->
               (* ids and file names are slug-safe: the first two fields
                  never need quoting, so a prefix split is sound even
                  though the columns field may be quoted *)
               match String.split_on_char ',' line with
               | id :: file :: _ ->
                 (not (List.mem id new_ids)) && not (List.mem file new_files)
               | _ -> false)
      end
    in
    let rows = List.sort compare (kept @ fresh) in
    let oc = open_out path in
    output_string oc "experiment,file,columns\n";
    List.iter
      (fun row ->
        output_string oc row;
        output_char oc '\n')
      rows;
    close_out oc;
    Printf.printf "wrote %s (%d table(s))\n" path (List.length rows)

(* Print an aligned table: the column widths adapt to the contents. *)
let table ~header rows =
  write_csv ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols && String.length cell > width.(i) then
            width.(i) <- String.length cell)
        row)
    all;
  let print_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf "%-*s" width.(i) cell)
        row
    in
    Printf.printf "  %s\n" (String.concat "  " cells)
  in
  print_row header;
  print_row (List.init cols (fun i -> String.make width.(i) '-'));
  List.iter print_row rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int
let b = string_of_bool

let pass_fail ok = if ok then "PASS" else "FAIL"

(* Standard n sweep for the measured experiments. *)
let n_sweep = [ 100; 1_000; 10_000; 100_000 ]

let tree_families n seed =
  [
    ("random", Tl_graph.Gen.random_tree ~n ~seed);
    ("balanced-d8", Tl_graph.Gen.balanced_regular_tree ~delta:8 ~n);
    ("path", Tl_graph.Gen.path n);
  ]

let ids_for g seed =
  Tl_local.Ids.permuted ~n:(Tl_graph.Graph.n_nodes g) ~seed
