(* Shared helpers for the experiment harness: aligned table printing
   (optionally mirrored to CSV artifacts) and the standard instance
   families. *)

(* When set (via `bench/main.exe -- --csv DIR`), every printed table is
   also written as a CSV file under DIR, numbered within the current
   section — the raw series behind each "figure". *)
let csv_dir : string option ref = ref None
let section_slug = ref "preamble"
let table_counter = ref 0

let slugify title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> fun s ->
  (* compress runs of dashes and trim to something filename-sized *)
  let b = Buffer.create (String.length s) in
  let last_dash = ref false in
  String.iter
    (fun c ->
      if c = '-' then begin
        if not !last_dash then Buffer.add_char b '-';
        last_dash := true
      end
      else begin
        Buffer.add_char b c;
        last_dash := false
      end)
    s;
  let s = Buffer.contents b in
  if String.length s > 48 then String.sub s 0 48 else s

let heading title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n| %s |\n%s\n" bar title bar;
  section_slug := slugify title;
  table_counter := 0

let subheading title = Printf.printf "\n--- %s ---\n" title

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    incr table_counter;
    let path =
      Filename.concat dir
        (Printf.sprintf "%s-%d.csv" !section_slug !table_counter)
    in
    let oc = open_out path in
    let emit row =
      output_string oc (String.concat "," (List.map csv_escape row));
      output_char oc '\n'
    in
    emit header;
    List.iter emit rows;
    close_out oc

(* Print an aligned table: the column widths adapt to the contents. *)
let table ~header rows =
  write_csv ~header rows;
  let all = header :: rows in
  let cols = List.length header in
  let width = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols && String.length cell > width.(i) then
            width.(i) <- String.length cell)
        row)
    all;
  let print_row row =
    let cells =
      List.mapi
        (fun i cell -> Printf.sprintf "%-*s" width.(i) cell)
        row
    in
    Printf.printf "  %s\n" (String.concat "  " cells)
  in
  print_row header;
  print_row (List.init cols (fun i -> String.make width.(i) '-'));
  List.iter print_row rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int
let b = string_of_bool

let pass_fail ok = if ok then "PASS" else "FAIL"

(* Standard n sweep for the measured experiments. *)
let n_sweep = [ 100; 1_000; 10_000; 100_000 ]

let tree_families n seed =
  [
    ("random", Tl_graph.Gen.random_tree ~n ~seed);
    ("balanced-d8", Tl_graph.Gen.balanced_regular_tree ~delta:8 ~n);
    ("path", Tl_graph.Gen.path n);
  ]

let ids_for g seed =
  Tl_local.Ids.permuted ~n:(Tl_graph.Graph.n_nodes g) ~seed
