(* tree-local: command-line front end.

   Subcommands:
     generate   build an instance and print its statistics
     solve      run a problem through the paper's transformation (or the
                direct truly local baseline) and report rounds + validity
     decompose  run rake-and-compress / Algorithm 3 and print certificates
     predict    evaluate g(n) and the predicted round counts for a model f
     client     send one request to a running tree-local-serve daemon
*)

open Cmdliner

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Ids = Tl_local.Ids
module Pipeline = Tl_core.Pipeline
module Complexity = Tl_core.Complexity
module Round_cost = Tl_local.Round_cost
module Engine = Tl_engine.Engine
module Trace = Tl_engine.Trace
module Span = Tl_obs.Span
module Report = Tl_obs.Report

(* ---------- shared arguments ---------- *)

let family_arg =
  let doc =
    "Instance family: random-tree, balanced-tree, path, star, caterpillar, \
     power-law, forest-union, planar, grid."
  in
  Arg.(value & opt string "random-tree" & info [ "family" ] ~docv:"FAMILY" ~doc)

let n_arg =
  Arg.(value & opt int 1000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let a_arg =
  Arg.(
    value & opt int 1
    & info [ "a"; "arboricity" ] ~docv:"A" ~doc:"Arboricity bound (forest-union, planar).")

let delta_arg =
  Arg.(
    value & opt int 8
    & info [ "delta" ] ~docv:"D" ~doc:"Degree for balanced-tree.")

(* ---------- engine selection and tracing ---------- *)

(* Kept as a (validated) string until [solve] runs: "shard" without a
   count resolves against Engine.default_shards, which --shards sets
   after argument parsing. *)
let engine_arg =
  let doc =
    "Execution engine: naive (the legacy full-scan reference stepper), \
     seq (compiled topology + active-set scheduler, the default), \
     par:N (the same stepper with the per-round compute spread over N \
     OCaml domains), shard / shard:S (sharded halo-exchange backend; \
     the shard count comes from $(b,--shards) unless given inline), or \
     proc / proc:S (one worker process per shard, halos over the tlp \
     binary wire protocol; run proc work before any par/shard run — \
     OCaml forbids forking after domains exist). All modes are \
     deterministic and bit-identical."
  in
  let mode =
    let parse s =
      match Engine.mode_of_string s with
      | _ -> Ok s
      | exception Invalid_argument _ ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid engine %S (expected naive, seq, par:N, shard, \
                shard:S, proc or proc:S)"
               s))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  Arg.(value & opt mode "seq" & info [ "engine" ] ~docv:"MODE" ~doc)

let shards_arg =
  let doc =
    "Shard count for $(b,--engine) shard: partition the compiled \
     topology into $(docv) contiguous shards with ghost (halo) \
     vertices, each round running as local step / batched boundary \
     exchange / barrier. Results are bit-identical for any shard count; \
     composes with $(b,--pool) (shards fan over the domain pool)."
  in
  let shards =
    let parse s =
      match int_of_string_opt s with
      | Some c when c >= 1 -> Ok c
      | _ ->
        Error
          (`Msg (Printf.sprintf "invalid shard count %S (expected S >= 1)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt shards 4 & info [ "shards" ] ~docv:"S" ~doc)

let pool_arg =
  let doc =
    "Component-solve pool width: fan the per-component gather-solve of \
     Theorem 12 and the per-star solving of Theorem 15 over $(docv) \
     OCaml domains (deterministic fixed chunking; results are \
     bit-identical to --pool 1)."
  in
  let workers =
    let parse s =
      match int_of_string_opt s with
      | Some p when p >= 1 -> Ok p
      | _ -> Error (`Msg (Printf.sprintf "invalid pool size %S (expected N >= 1)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt workers 1 & info [ "pool" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Profile every engine-backed execution: write the per-round traces \
     as a JSON array to $(docv) and print a metrics summary alongside \
     the round ledger."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE.json" ~doc)

let collected_traces : Trace.t list ref = ref []

(* ---------- unified exit flush ----------

   --trace and --profile both write at process exit (so their outputs
   survive the [exit 1] of a failed validity check). They used to each
   register their own [at_exit] callback; a crash inside one writer
   could then truncate or interleave the other's output depending on
   registration order. Instead, one [at_exit] runs every registered
   flusher in a fixed order — most recently registered first, matching
   the old LIFO at_exit behavior — each behind its own exception guard:
   a flusher that raises is reported and the remaining flushers still
   run to completion. *)
let exit_flushers : (string * (unit -> unit)) list ref = ref []
let exit_flush_installed = ref false

let at_exit_flush name f =
  exit_flushers := (name, f) :: !exit_flushers;
  if not !exit_flush_installed then begin
    exit_flush_installed := true;
    at_exit (fun () ->
        List.iter
          (fun (name, f) ->
            try f ()
            with e ->
              Printf.eprintf "%s: exit flush failed (%s)\n" name
                (Printexc.to_string e))
          !exit_flushers)
  end

let setup_engine mode trace_file =
  Engine.default_mode := mode;
  match trace_file with
  | None -> ()
  | Some file ->
    Engine.trace_sink :=
      Some (fun t -> collected_traces := t :: !collected_traces);
    (* write on exit so traces survive the [exit 1] of a failed report *)
    at_exit_flush "trace" (fun () ->
        let ts = List.rev !collected_traces in
        match Trace.write_json ~file ts with
        | () ->
          Printf.printf "trace:       %d engine run(s) -> %s\n"
            (List.length ts) file
        | exception Sys_error msg ->
          Printf.eprintf "trace:       cannot write %s (%s)\n" file msg)

(* ---------- whole-run profiling (tl_obs span reports) ---------- *)

let profile_arg =
  let doc =
    "Profile the whole run as a hierarchical span report (phases, round \
     charges, engine runs) and write it as JSON to $(docv). The \
     enclosing directory must exist; a write failure at exit degrades \
     to a warning."
  in
  let writable_path =
    let parse s =
      let dir = Filename.dirname s in
      if Sys.file_exists dir && Sys.is_directory dir then Ok s
      else
        Error
          (`Msg
             (Printf.sprintf "invalid --profile %S: directory %S does not exist"
                s dir))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  Arg.(
    value
    & opt (some writable_path) None
    & info [ "profile" ] ~docv:"FILE.json" ~doc)

let report_fmt_arg =
  let doc =
    "Print the span report on stdout after the run: $(b,tree) (indented \
     human view), $(b,json) (the report object) or $(b,csv) (flat \
     per-span rows)."
  in
  Arg.(
    value
    & opt (some (enum [ ("tree", `Tree); ("json", `Json); ("csv", `Csv) ])) None
    & info [ "report" ] ~docv:"FMT" ~doc)

(* The report is finished and written through the unified exit flush so
   it survives the [exit 1] of a failed validity check, mirroring
   --trace (and cannot interleave with it). *)
let setup_profile profile report_fmt =
  if profile <> None || report_fmt <> None then begin
    let root = Span.create "solve" in
    Span.install_root root;
    at_exit_flush "profile" (fun () ->
        Span.finish root;
        (match report_fmt with
        | None -> ()
        | Some `Tree -> Format.printf "%a" Report.pp_tree root
        | Some `Json -> print_string (Report.json_string root)
        | Some `Csv -> print_string (Report.to_csv root));
        match profile with
        | None -> ()
        | Some file -> (
          match Report.write_json ~file root with
          | () -> Printf.printf "profile:     span report -> %s\n" file
          | exception Sys_error msg ->
            Printf.eprintf "profile:     cannot write %s (%s)\n" file msg))
  end

(* Engine metrics merged into a round ledger and printed with the report.
   The measured engine rounds live in their own ledger: the report's own
   ledger counts the rounds the paper's accounting charges, and the
   engine rows show where the simulator actually spent its executions. *)
let print_trace_summary () =
  match List.rev !collected_traces with
  | [] -> ()
  | ts ->
    let ledger = Round_cost.create () in
    List.iter (fun t -> Tl_local.Runtime.charge_trace ledger t) ts;
    Printf.printf "engine:      %d run(s), %d measured rounds\n"
      (List.length ts) (Round_cost.total ledger);
    List.iter
      (fun (phase, rounds) -> Printf.printf "  %-24s %6d\n" phase rounds)
      (Round_cost.phases ledger);
    List.iteri
      (fun i t ->
        if i < 8 then Format.printf "  %a@." Trace.pp_summary t
        else if i = 8 then Printf.printf "  ...\n")
      ts

let build_instance family n seed a delta =
  match family with
  | "random-tree" -> Gen.random_tree ~n ~seed
  | "balanced-tree" -> Gen.balanced_regular_tree ~delta ~n
  | "path" -> Gen.path n
  | "star" -> Gen.star n
  | "caterpillar" -> Gen.caterpillar ~spine:(max 1 (n / 4)) ~legs:3
  | "power-law" -> Gen.power_law_tree ~n ~seed
  | "forest-union" -> Gen.forest_union ~n ~arboricity:a ~seed
  | "planar" ->
    Gen.triangulated_grid (max 2 (int_of_float (Float.sqrt (float_of_int n))))
  | "grid" ->
    let side = max 1 (int_of_float (Float.sqrt (float_of_int n))) in
    Gen.grid side side
  | other -> failwith (Printf.sprintf "unknown family %s" other)

(* ---------- generate ---------- *)

let generate family n seed a delta =
  let g = build_instance family n seed a delta in
  let lo, hi = Props.arboricity_interval g in
  Printf.printf "family:      %s\n" family;
  Printf.printf "nodes:       %d\n" (Graph.n_nodes g);
  Printf.printf "edges:       %d\n" (Graph.n_edges g);
  Printf.printf "max degree:  %d\n" (Graph.max_degree g);
  Printf.printf "max e-deg:   %d\n" (Props.max_edge_degree g);
  Printf.printf "arboricity:  in [%d, %d]\n" lo hi;
  Printf.printf "forest:      %b\n" (Props.is_forest g);
  if Props.is_tree g then
    Printf.printf "diameter:    %d\n" (Tl_graph.Tree.tree_diameter g)

let generate_cmd =
  let doc = "Build an instance and print its statistics." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const generate $ family_arg $ n_arg $ seed_arg $ a_arg $ delta_arg)

(* ---------- solve ---------- *)

let problem_arg =
  let doc = "Problem: mis, coloring, matching, edge-coloring." in
  Arg.(value & opt string "mis" & info [ "problem" ] ~docv:"P" ~doc)

let method_arg =
  let doc = "Method: transform (the paper's pipeline), direct (run the \
             truly local base algorithm on the whole graph), or baseline \
             (the [BE13]-style O(log n) forest-split algorithm; matching \
             and edge-coloring on trees only)."
  in
  Arg.(value & opt string "transform" & info [ "method" ] ~docv:"M" ~doc)

let k_arg =
  Arg.(
    value & opt (some int) None
    & info [ "k"; "param-k" ] ~docv:"K" ~doc:"Decomposition parameter (default g(n)).")

let report_raw name problem g labeling cost =
  Printf.printf "problem:     %s\n" name;
  Printf.printf "rounds:      %d\n" (Round_cost.total cost);
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-24s %6d\n" phase rounds)
    (Round_cost.phases cost);
  print_trace_summary ();
  let valid = Tl_problems.Nec.is_valid problem g labeling in
  Printf.printf "valid:       %b\n" valid;
  if not valid then exit 1

let report name (r : _ Pipeline.report) =
  Printf.printf "problem:     %s\n" name;
  Printf.printf "rounds:      %d\n" r.Pipeline.total_rounds;
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-24s %6d\n" phase rounds)
    (Round_cost.phases r.Pipeline.cost);
  if r.Pipeline.k > 0 then Printf.printf "k:           %d\n" r.Pipeline.k;
  print_trace_summary ();
  Printf.printf "valid:       %b\n" r.Pipeline.valid;
  if not r.Pipeline.valid then begin
    List.iteri
      (fun i v ->
        if i < 5 then
          Format.printf "  violation: %a@." Tl_problems.Nec.pp_violation v)
      r.Pipeline.violations;
    exit 1
  end

let solve problem method_ family n seed a delta k engine shards pool trace
    profile report_fmt =
  Engine.default_shards := shards;
  let engine = Engine.mode_of_string engine in
  setup_engine engine trace;
  Tl_engine.Pool.default_workers := pool;
  setup_profile profile report_fmt;
  Span.set_attr "problem" problem;
  Span.set_attr "method" method_;
  Span.set_attr "family" family;
  Span.set_attr "n" (string_of_int n);
  Span.set_attr "seed" (string_of_int seed);
  Span.set_attr "engine" (Engine.mode_to_string engine);
  Span.set_attr "shards" (string_of_int shards);
  Span.set_attr "pool" (string_of_int pool);
  let g = Span.with_span "instance" (fun () -> build_instance family n seed a delta) in
  let ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 1) in
  let must_tree name =
    if not (Props.is_tree g) then
      failwith (name ^ " via Theorem 12 needs a tree instance")
  in
  match (problem, method_) with
  | "mis", "transform" ->
    must_tree "mis";
    report "MIS (Theorem 12)" (Pipeline.mis_on_tree ?k ~tree:g ~ids ())
  | "coloring", "transform" ->
    must_tree "coloring";
    report "(deg+1)-coloring (Theorem 12)"
      (Pipeline.coloring_on_tree ?k ~tree:g ~ids ())
  | "matching", "transform" ->
    report "maximal matching (Theorem 15)"
      (Pipeline.matching_on_graph ?k ~graph:g ~a ~ids ())
  | "edge-coloring", "transform" ->
    report "(edge-degree+1)-edge coloring (Theorem 15)"
      (Pipeline.edge_coloring_on_graph ?k ~graph:g ~a ~ids ())
  | "mis", "direct" -> report "MIS (direct)" (Pipeline.mis_direct ~graph:g ~ids)
  | "coloring", "direct" ->
    report "(deg+1)-coloring (direct)" (Pipeline.coloring_direct ~graph:g ~ids)
  | "matching", "direct" ->
    report "maximal matching (direct)" (Pipeline.matching_direct ~graph:g ~ids)
  | "edge-coloring", "direct" ->
    report "(edge-degree+1)-edge coloring (direct)"
      (Pipeline.edge_coloring_direct ~graph:g ~ids)
  | "matching", "baseline" ->
    must_tree "baseline matching";
    let labeling, cost = Tl_core.Baseline.matching_on_tree ~tree:g ~ids in
    report_raw "maximal matching (BE13-style baseline)"
      Tl_problems.Matching.problem g labeling cost
  | "edge-coloring", "baseline" ->
    must_tree "baseline edge-coloring";
    let labeling, cost = Tl_core.Baseline.edge_coloring_on_tree ~tree:g ~ids in
    report_raw "(edge-degree+1)-edge coloring (BE13-style baseline)"
      Tl_problems.Edge_coloring.problem g labeling cost
  | p, m -> failwith (Printf.sprintf "unknown problem/method %s/%s" p m)

(* Cross-argument validation the per-argument convs cannot express
   (shard count vs instance size, shard backend availability, pool
   bounds) — shared with the serving daemon's admission check so the
   CLI and the daemon reject exactly the same knob combinations. *)
let solve_checked problem method_ family n seed a delta k engine shards pool
    trace profile report_fmt =
  match Tl_serve.Protocol.resolve_knobs ~engine ~shards ~pool ~n with
  | Error msg -> `Error (false, msg)
  | Ok _mode ->
    `Ok
      (solve problem method_ family n seed a delta k engine shards pool trace
         profile report_fmt)

let solve_cmd =
  let doc = "Solve a problem with the paper's transformation." in
  Cmd.v (Cmd.info "solve" ~doc)
    Term.(
      ret
        (const solve_checked $ problem_arg $ method_arg $ family_arg $ n_arg
       $ seed_arg $ a_arg $ delta_arg $ k_arg $ engine_arg $ shards_arg
       $ pool_arg $ trace_arg $ profile_arg $ report_fmt_arg))

(* ---------- decompose ---------- *)

let decompose which family n seed a delta k =
  let g = build_instance family n seed a delta in
  let real_n = Graph.n_nodes g in
  let ids = Ids.permuted ~n:real_n ~seed:(seed + 1) in
  match which with
  | "rake-compress" ->
    let k = Option.value k ~default:4 in
    let rc = Tl_decompose.Rake_compress.run g ~k ~ids in
    let module RC = Tl_decompose.Rake_compress in
    Printf.printf "iterations:        %d (Lemma 9: %b)\n" (RC.iterations rc)
      (RC.check_lemma9 rc);
    Printf.printf "compressed nodes:  %d\n"
      (List.length (RC.compressed_nodes rc));
    Printf.printf "raked nodes:       %d\n" (List.length (RC.raked_nodes rc));
    Printf.printf "maxdeg(E_C):       %d <= k = %d (Lemma 10: %b)\n"
      (RC.compress_part_max_degree rc)
      k (RC.check_lemma10 rc);
    Printf.printf "max rake diameter: %d <= %d (Lemma 11: %b)\n"
      (List.fold_left max 0 (RC.rake_component_diameters rc))
      (RC.lemma11_bound rc) (RC.check_lemma11 rc)
  | "arboricity" ->
    let k = Option.value k ~default:(5 * a) in
    let d = Tl_decompose.Arb_decompose.run g ~a ~k ~ids in
    let module AD = Tl_decompose.Arb_decompose in
    Printf.printf "iterations:      %d (Lemma 13: %b)\n" (AD.iterations d)
      (AD.check_lemma13 d);
    Printf.printf "typical edges:   %d (maxdeg %d <= k = %d, Lemma 14: %b)\n"
      (List.length (AD.typical_edges d))
      (AD.typical_max_degree d) k (AD.check_lemma14 d);
    Printf.printf "atypical edges:  %d (max/node %d <= b = %d)\n"
      (List.length (AD.atypical_edges d))
      (AD.max_atypical_per_node d) (AD.b d);
    Printf.printf "forest coloring: %d rounds; stars intact: %b\n"
      (AD.cv_rounds d) (AD.check_stars d)
  | other -> failwith (Printf.sprintf "unknown decomposition %s" other)

let which_arg =
  let doc = "Decomposition: rake-compress or arboricity." in
  Arg.(value & opt string "rake-compress" & info [ "kind" ] ~docv:"KIND" ~doc)

let decompose_cmd =
  let doc = "Run a decomposition and print its certificates." in
  Cmd.v (Cmd.info "decompose" ~doc)
    Term.(
      const decompose $ which_arg $ family_arg $ n_arg $ seed_arg $ a_arg
      $ delta_arg $ k_arg)

(* ---------- chaos ---------- *)

let faults_arg =
  let doc =
    "Fault schedule: a JSON file path, inline JSON, or the compact \
     grammar (e.g. \
     $(b,seed=7;crash@4:0,9;recover@9:0;churn@2-20:rate=0.001)). \
     Omitted: an empty schedule (armed hooks, no faults)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"FILE|SPEC" ~doc)

let chaos_problem_arg =
  let doc = "Chaos workload: flood or mis." in
  Arg.(value & opt string "flood" & info [ "problem" ] ~docv:"P" ~doc)

let chaos problem family n seed a delta engine shards pool faults trace
    profile report_fmt =
  let module Chaos = Tl_fault.Chaos in
  let module Injector = Tl_fault.Injector in
  Engine.default_shards := shards;
  let engine = Engine.mode_of_string engine in
  setup_engine engine trace;
  Tl_engine.Pool.default_workers := pool;
  setup_profile profile report_fmt;
  let schedule =
    match faults with
    | None -> Tl_fault.Schedule.empty
    | Some s -> (
      match Tl_fault.Schedule.of_arg s with
      | Ok sc -> sc
      | Error msg -> failwith (Printf.sprintf "bad --faults: %s" msg))
  in
  let g = build_instance family n seed a delta in
  let real_n = Graph.n_nodes g in
  let workload =
    match problem with
    | "flood" -> Chaos.Flood { source = 0 }
    | "mis" -> Chaos.Mis { ids = Ids.permuted ~n:real_n ~seed:(seed + 1) }
    | other -> failwith (Printf.sprintf "unknown chaos workload %s" other)
  in
  let r = Chaos.run ~mode:engine ~graph:g ~problem:workload ~schedule () in
  Printf.printf "problem:     %s under faults\n" r.Chaos.problem;
  Printf.printf "engine:      %s\n" r.Chaos.mode;
  Printf.printf "nodes:       %d (%d surviving)\n" r.Chaos.n r.Chaos.survivors;
  Printf.printf "epochs:      %d (%d proc retries)\n" r.Chaos.epochs
    r.Chaos.retries;
  Printf.printf "rounds:      %d executed, horizon %d\n" r.Chaos.rounds
    r.Chaos.horizon;
  Printf.printf "events:      %d crash, %d recover, %d drop, %d kill\n"
    r.Chaos.crashes r.Chaos.recoveries r.Chaos.drops r.Chaos.kills;
  List.iteri
    (fun i (round, a) ->
      if i < 40 then
        Printf.printf "  @%-5d %s\n" round (Injector.applied_to_string a)
      else if i = 40 then Printf.printf "  ...\n")
    r.Chaos.log;
  Printf.printf "repairs:     %d (%d labels rewritten, %d-node regions, \
                 %.6f s)\n"
    r.Chaos.repairs r.Chaos.relabeled r.Chaos.repair_region r.Chaos.repair_s;
  Printf.printf "digest:      %016Lx\n" r.Chaos.digest;
  print_trace_summary ();
  Printf.printf "valid:       %b\n" r.Chaos.valid;
  if not r.Chaos.valid then exit 1

let chaos_cmd =
  let doc =
    "Run a workload under a deterministic fault schedule and repair the \
     damage incrementally."
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos $ chaos_problem_arg $ family_arg $ n_arg $ seed_arg $ a_arg
      $ delta_arg $ engine_arg $ shards_arg $ pool_arg $ faults_arg
      $ trace_arg $ profile_arg $ report_fmt_arg)

(* ---------- predict ---------- *)

let f_of_name = function
  | "linear" -> Complexity.f_linear
  | "sqrt-log" -> Complexity.f_sqrt_log
  | "exp-sqrt-log" -> Complexity.f_exp_sqrt_log
  | "log12" -> Complexity.f_polylog ~exponent:12.0
  | "log5" -> Complexity.f_polylog ~exponent:5.0
  | "linial" -> Complexity.f_linial_reduction
  | other -> failwith (Printf.sprintf "unknown f %s" other)

let predict fname n a rho =
  let f = f_of_name fname in
  let g = Complexity.solve_g ~f ~n:(float_of_int n) in
  Printf.printf "f:                   %s\n" fname;
  Printf.printf "g(n):                %.3f\n" g;
  Printf.printf "f(g(n)):             %.3f\n" (f g);
  Printf.printf "Theorem 1 rounds:    %.1f\n"
    (Complexity.theorem1_rounds ~f ~n);
  Printf.printf "Theorem 2 rounds:    %.1f  (a = %d, rho = %d)\n"
    (Complexity.theorem2_rounds ~f ~n ~a ~rho)
    a rho;
  Printf.printf "MIS barrier curve:   %.1f\n" (Complexity.mis_lower_bound ~n)

let f_arg =
  let doc =
    "Model f: linear, sqrt-log, exp-sqrt-log, log5, log12, linial."
  in
  Arg.(value & opt string "linear" & info [ "f"; "model" ] ~docv:"F" ~doc)

let rho_arg =
  Arg.(value & opt int 2 & info [ "rho" ] ~docv:"R" ~doc:"Theorem 15's rho.")

let predict_cmd =
  let doc = "Evaluate g(n) and the predicted round counts." in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(const predict $ f_arg $ n_arg $ a_arg $ rho_arg)

(* ---------- client ---------- *)

let socket_arg =
  let doc = "Unix-domain socket of a running tree-local-serve daemon." in
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc)

let cmd_arg =
  let doc =
    "Send a control message instead of a solve request: $(b,ping), \
     $(b,stats), $(b,metrics) (live registry snapshot), $(b,tail) \
     (flight-recorder events) or $(b,shutdown)."
  in
  let module P = Tl_serve.Protocol in
  Arg.(
    value
    & opt
        (some
           (enum
              [ ("ping", P.Ping); ("stats", P.Stats); ("metrics", P.Metrics);
                ("tail", P.Tail); ("shutdown", P.Shutdown) ]))
        None
    & info [ "cmd" ] ~docv:"CMD" ~doc)

let format_arg =
  let doc =
    "Rendering for $(b,--cmd metrics): $(b,json) prints the daemon's \
     response line verbatim, $(b,prom) re-renders the snapshot as \
     Prometheus text exposition."
  in
  Arg.(
    value
    & opt (enum [ ("json", `Json); ("prom", `Prom) ]) `Json
    & info [ "format" ] ~docv:"FMT" ~doc)

let span_arg =
  let doc = "Ask the daemon for the per-request span report." in
  Arg.(value & flag & info [ "span" ] ~doc)

let retries_arg =
  let doc =
    "Retry a refused connection up to $(docv) times with bounded \
     exponential backoff (50 ms doubling, capped at 1 s) before giving \
     up — for clients racing a daemon that is still binding its socket."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

(* One request per invocation: connect, send a single ndjson line, print
   the daemon's response line, exit 0 on ok:true / 1 on an error
   outcome. The connection is closed after the response, so the daemon
   (one connection at a time) is immediately free for the next client. *)
let client socket cmd format problem method_ family n seed a delta k engine
    shards pool span retries faults =
  let module P = Tl_serve.Protocol in
  let module Json = Tl_obs.Json in
  let module Metrics = Tl_obs.Metrics in
  (* --faults may name a file; the daemon only takes inline forms, so
     normalize client-side (read + parse here, ship canonical JSON) *)
  let faults =
    match faults with
    | None -> None
    | Some s -> (
      match Tl_fault.Schedule.of_arg s with
      | Ok sched -> Some (Json.to_string (Tl_fault.Schedule.to_json sched))
      | Error msg ->
        Printf.eprintf "client: bad --faults (%s)\n" msg;
        exit 1)
  in
  let req =
    match cmd with
    | Some c -> P.control_to_json ~id:"cli" c
    | None ->
      let spec = P.Family { family; n; seed; a; delta } in
      P.request_to_json
        (P.request ~id:"cli" ~problem ~method_ ~spec ?k ~engine ~shards ~pool
           ~want_span:span ?faults ())
  in
  let rec connect_with attempt =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () ->
      if attempt > 0 then
        Printf.eprintf "client: connected after %d retr%s\n" attempt
          (if attempt = 1 then "y" else "ies");
      fd
    | exception Unix.Unix_error (e, _, _) ->
      Unix.close fd;
      if attempt >= retries then begin
        Printf.eprintf "client: cannot connect to %s (%s%s)\n" socket
          (Unix.error_message e)
          (if retries > 0 then
             Printf.sprintf ", after %d retries" retries
           else "");
        exit 1
      end
      else begin
        Unix.sleepf (Float.min 1.0 (0.05 *. Float.pow 2.0 (float_of_int attempt)));
        connect_with (attempt + 1)
      end
  in
  let fd = connect_with 0 in
    let module T = Tl_proc.Transport in
    (* transport loops: the request survives partial writes, the
       response read restarts on EINTR *)
    T.write_string fd (Json.to_line req);
    let read_line () =
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        let n = T.read_some fd chunk 0 (Bytes.length chunk) in
        if n = 0 then
          if Buffer.length buf = 0 then raise End_of_file
          else Buffer.contents buf
        else
          match Bytes.index_opt (Bytes.sub chunk 0 n) '\n' with
          | Some i ->
            Buffer.add_subbytes buf chunk 0 i;
            Buffer.contents buf
          | None ->
            Buffer.add_subbytes buf chunk 0 n;
            go ()
      in
      go ()
    in
    (match read_line () with
    | exception End_of_file ->
      Printf.eprintf "client: daemon closed the connection\n";
      exit 1
    | line ->
      let parsed =
        match P.response_of_json (Json.parse line) with
        | Ok r -> Some r
        | Error _ | (exception Json.Parse_error _) -> None
      in
      (match (format, parsed) with
      | `Prom, Some { P.outcome = P.Metrics_report snap; _ } -> (
        match Metrics.snapshot_of_json snap with
        | Ok s -> print_string (Metrics.to_prometheus s)
        | Error msg ->
          print_endline line;
          Printf.eprintf "client: cannot render prometheus text (%s)\n" msg)
      | _ -> print_endline line);
      let ok =
        match parsed with
        | Some { P.outcome = P.Error _; _ } -> false
        | Some _ -> true
        | None -> false
      in
      Unix.close fd;
      if not ok then exit 1)

let client_cmd =
  let doc = "Send one request to a running tree-local-serve daemon." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const client $ socket_arg $ cmd_arg $ format_arg $ problem_arg
      $ method_arg $ family_arg $ n_arg $ seed_arg $ a_arg $ delta_arg $ k_arg
      $ engine_arg $ shards_arg $ pool_arg $ span_arg $ retries_arg
      $ faults_arg)

(* ---------- main ---------- *)

let () =
  let doc =
    "Deterministic LOCAL algorithms on trees and bounded-arboricity graphs \
     (PODC 2025 reproduction)."
  in
  let info = Cmd.info "tree-local" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            solve_cmd;
            decompose_cmd;
            predict_cmd;
            chaos_cmd;
            client_cmd;
          ]))
