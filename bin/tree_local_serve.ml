(* tree-local-serve: the long-running serving daemon.

   Reads ndjson run requests (lib/serve/protocol.mli documents the wire
   schema) and writes one ndjson response per request, either over
   stdin/stdout (the default, pipe-friendly mode) or over a Unix-domain
   socket with --socket. *)

open Cmdliner
module Server = Tl_serve.Server

let socket_arg =
  let doc =
    "Listen on a Unix-domain socket at $(docv) (serving one connection \
     at a time) instead of stdin/stdout. A stale socket file at the \
     path is replaced, but a path a running daemon answers on (or any \
     non-socket file) is refused; the file is removed on shutdown."
  in
  Arg.(
    value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let depth_arg =
  let doc =
    "Job-queue depth: a request arriving while $(docv) jobs are already \
     queued in the cycle is rejected with a structured error instead of \
     waiting (backpressure)."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some d when d >= 1 -> Ok d
      | _ -> Error (`Msg (Printf.sprintf "invalid depth %S (expected >= 1)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt pos_int Server.default_config.Server.depth
    & info [ "depth" ] ~docv:"D" ~doc)

let cache_arg =
  let doc =
    "Instance-cache capacity: keep up to $(docv) generated instances \
     (graph, ID assignment, compiled-topology handle) keyed by graph \
     spec, so same-topology requests skip regeneration. 0 disables \
     caching."
  in
  let nonneg =
    let parse s =
      match int_of_string_opt s with
      | Some c when c >= 0 -> Ok c
      | _ ->
        Error (`Msg (Printf.sprintf "invalid cache size %S (expected >= 0)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt nonneg Server.default_config.Server.cache_slots
    & info [ "cache-slots" ] ~docv:"C" ~doc)

let max_n_arg =
  let doc = "Admission guard: reject requests for instances above $(docv) nodes." in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some m when m >= 1 -> Ok m
      | _ -> Error (`Msg (Printf.sprintf "invalid max-n %S (expected >= 1)" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt pos_int Server.default_config.Server.max_n
    & info [ "max-n" ] ~docv:"N" ~doc)

let serve socket depth cache_slots max_n =
  let config = { Server.depth; cache_slots; max_n } in
  let t = Server.create ~config () in
  match socket with
  | None -> Server.serve_stdio t
  | Some path -> (
    Printf.eprintf "tree-local-serve: listening on %s\n%!" path;
    (* a refused socket path (live daemon, non-socket file) is a usage
       problem, not a crash: report it without a backtrace *)
    try Server.listen_unix t ~path
    with Failure msg ->
      Printf.eprintf "tree-local-serve: %s\n%!" msg;
      exit 1)

let () =
  let doc =
    "Serve tree-local run requests as ndjson over stdin/stdout or a \
     Unix-domain socket."
  in
  let info = Cmd.info "tree-local-serve" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const serve $ socket_arg $ depth_arg $ cache_arg $ max_n_arg)))
