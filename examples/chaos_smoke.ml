(* Chaos smoke: seeded fault schedules driven end-to-end through
   Tl_fault.Chaos — crash-stop, crash-recover (churn), link-drop and a
   proc-backend worker kill — asserting on every scenario that

   - the surviving graph's final labeling passes the full validity
     checker, and
   - the run is deterministic: an identical replay produces the same
     applied-event log, repair counts and labeling digest (and for the
     cross-mode scenarios, the same digest across engine backends).

   Exercised by `make chaos-smoke` and CI.

   Run with:  dune exec examples/chaos_smoke.exe

   IMPORTANT ordering: the proc scenario runs first — OCaml 5 forbids
   fork once a domain has ever been spawned, and the shard/par
   scenarios below spawn the domain team. *)

module Gen = Tl_graph.Gen
module Ids = Tl_local.Ids
module Engine = Tl_engine.Engine
module Schedule = Tl_fault.Schedule
module Chaos = Tl_fault.Chaos

let pass name ok =
  Printf.printf "%-52s %s\n%!" name (if ok then "ok" else "FAIL");
  if not ok then exit 1

let sched spec =
  match Schedule.of_spec spec with
  | Ok s -> s
  | Error e -> failwith (Printf.sprintf "bad spec %S: %s" spec e)

let chaos ~mode ~graph ~problem spec =
  Chaos.run ~mode ~graph ~problem ~schedule:(sched spec) ()

(* determinism = identical applied log, repair counts and digest *)
let same (a : Chaos.report) (b : Chaos.report) =
  a.log = b.log && a.crashes = b.crashes && a.recoveries = b.recoveries
  && a.drops = b.drops && a.kills = b.kills && a.repairs = b.repairs
  && a.relabeled = b.relabeled && a.survivors = b.survivors
  && a.digest = b.digest

let () =
  let n = 20_000 in
  let tree = Gen.random_tree ~n ~seed:42 in
  let ids = Ids.permuted ~n ~seed:7 in
  let flood = Chaos.Flood { source = 0 } in
  let mis = Chaos.Mis { ids } in
  Printf.printf "instance: random tree, n = %d\n%!" n;

  (* -- proc first: worker kill, epoch retry, digest equal to seq -- *)
  let kill_spec = "seed=7;kill@2:1;crash@5:9;crash@7:23" in
  let p = chaos ~mode:(Engine.Proc 3) ~graph:tree ~problem:flood kill_spec in
  let p2 = chaos ~mode:(Engine.Proc 3) ~graph:tree ~problem:flood kill_spec in
  let s = chaos ~mode:Engine.Seq ~graph:tree ~problem:flood kill_spec in
  pass "proc kill: valid" (p.valid && s.valid);
  pass "proc kill: worker killed, epoch retried"
    (p.kills = 1 && p.retries >= 1);
  pass "proc kill: replay deterministic" (same p p2);
  pass "proc kill: digest matches seq" (p.digest = s.digest);

  (* -- crash-stop: seeded random crashes, seq vs shard:4; the rounds
     sit past convergence (the chaos clock fast-forwards), so the
     crashes orphan reached subtrees and force actual repairs -- *)
  let crash_spec = "seed=11;crash_random@10000:50;crash_random@10005:50" in
  let a = chaos ~mode:Engine.Seq ~graph:tree ~problem:flood crash_spec in
  let a2 = chaos ~mode:Engine.Seq ~graph:tree ~problem:flood crash_spec in
  let a_sh = chaos ~mode:(Engine.Shard 4) ~graph:tree ~problem:flood crash_spec in
  pass "crash-stop: valid on surviving graph" (a.valid && a_sh.valid);
  pass "crash-stop: 100 crashes applied, repairs ran"
    (a.crashes = 100 && a.repairs >= 1);
  pass "crash-stop: replay deterministic" (same a a2);
  pass "crash-stop: digest matches across seq/shard:4" (same a a_sh);

  (* -- crash-recover churn on MIS: nodes leave and rejoin -- *)
  let churn_spec = "seed=13;churn@3-40:rate=0.0005,kind=crash-recover,ttl=6" in
  let c = chaos ~mode:Engine.Seq ~graph:tree ~problem:mis churn_spec in
  let c2 = chaos ~mode:Engine.Seq ~graph:tree ~problem:mis churn_spec in
  pass "crash-recover: valid MIS on surviving graph" c.valid;
  pass "crash-recover: churn crashed and recovered nodes"
    (c.crashes >= 1 && c.recoveries >= 1);
  pass "crash-recover: replay deterministic" (same c c2);

  (* -- link drops: suppressed halo traffic, healed at the end -- *)
  let drop_spec = "seed=17;drop@3:0-1,1-2;drop@5:0-3" in
  let d = chaos ~mode:(Engine.Shard 4) ~graph:tree ~problem:flood drop_spec in
  let d2 = chaos ~mode:(Engine.Shard 4) ~graph:tree ~problem:flood drop_spec in
  let d_clean = chaos ~mode:(Engine.Shard 4) ~graph:tree ~problem:flood "seed=17" in
  pass "link-drop: valid after final heal" d.valid;
  pass "link-drop: halo traffic suppressed" (d.drops >= 1);
  pass "link-drop: replay deterministic" (same d d2);
  pass "link-drop: digest matches undropped run" (d.digest = d_clean.digest);

  Printf.printf "chaos smoke: all scenarios PASS\n"
