(* Bring your own problem: define a new node-edge-checkable problem and
   push it through the paper's transformation.

   Run with:  dune exec examples/custom_problem.exe

   The problem: DOMINATING SET WITH POINTER CERTIFICATES — a set S of
   nodes such that every node is in S or adjacent to S (like MIS, but
   members of S may be adjacent). Encoding on half-edges:

     M  = "I am in S"                       (written on all half-edges)
     P  = "not in S; the node across this edge is my dominator"
     O  = "not in S; dominated via some other edge"

   Node constraint: all M, or exactly one P with the rest O.
   Edge constraint: P must face M; everything else except a dangling P is
   fine ({M,M} IS allowed — that is the difference from MIS).

   This problem is in the paper's class P1: the greedy sequential solver
   ("join S unless a neighbor already did; otherwise point at a joined
   neighbor") completes any valid partial solution using 1-hop
   information, which is exactly what Theorem 12 needs for the rake
   components. The base truly local algorithm can simply be the MIS
   algorithm: every valid MIS labeling is a valid labeling here (its
   configurations are a subset). *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling
module Nec = Tl_problems.Nec
module Theorem1 = Tl_core.Theorem1

type label = M | P | O

let problem : label Nec.t =
  {
    Nec.name = "pointer-dominating-set";
    equal_label = ( = );
    pp_label =
      (fun ppf l ->
        Format.pp_print_string ppf (match l with M -> "M" | P -> "P" | O -> "O"));
    node_ok =
      (fun labels ->
        let ms = List.length (List.filter (( = ) M) labels) in
        let ps = List.length (List.filter (( = ) P) labels) in
        if ms = List.length labels then true else ms = 0 && ps = 1);
    edge_ok =
      (function
      | [] | [ M ] | [ O ] -> true
      | [ P ] -> false
      | [ a; b ] -> (
        match (a, b) with
        | P, M | M, P -> true
        | P, _ | _, P -> false
        | _ -> true (* M-M, M-O, O-O all fine: members may be adjacent *))
      | _ -> false);
  }

(* The Π× completion for Theorem 12: greedy domination in any order. *)
let solve_edge_list g labeling ~nodes =
  List.iter
    (fun v ->
      let hs = Graph.half_edges_of g v in
      let opposite_m h =
        Labeling.get labeling (Graph.opposite_half_edge h) = Some M
      in
      if not (List.exists opposite_m hs) then
        List.iter (fun h -> Labeling.set labeling h M) hs
      else begin
        let pointed = ref false in
        List.iter
          (fun h ->
            if opposite_m h && not !pointed then begin
              pointed := true;
              Labeling.set labeling h P
            end
            else Labeling.set labeling h O)
          hs
      end)
    nodes

(* The base algorithm A: reuse the truly local MIS algorithm — an MIS is
   in particular a pointer-certified dominating set. *)
let base_algorithm sg ~ids labeling =
  let scratch = Labeling.create (Tl_graph.Semi_graph.base sg) in
  let rounds = Tl_symmetry.Algos.mis sg ~ids scratch in
  (* translate the MIS labels into ours *)
  List.iter
    (fun v ->
      List.iter
        (fun h ->
          match Labeling.get scratch h with
          | Some Tl_problems.Mis.M -> Labeling.set labeling h M
          | Some Tl_problems.Mis.P -> Labeling.set labeling h P
          | Some Tl_problems.Mis.O -> Labeling.set labeling h O
          | None -> ())
        (Tl_graph.Semi_graph.half_edges_of sg v))
    (Tl_graph.Semi_graph.nodes sg);
  rounds

let () =
  let n = 20_000 in
  let tree = Gen.random_tree ~n ~seed:2026 in
  let ids = Ids.permuted ~n ~seed:3 in
  let spec = { Theorem1.problem; base_algorithm; solve_edge_list } in
  let r =
    Theorem1.run ~check_invariants:true ~spec ~tree ~ids
      ~f:Tl_core.Complexity.f_linear ()
  in
  Printf.printf "custom problem through Theorem 12: k = %d, rounds = %d\n"
    r.Theorem1.k
    (Tl_local.Round_cost.total r.Theorem1.cost);
  let violations = Nec.validate problem tree r.Theorem1.labeling in
  Printf.printf "node-edge-checkable validation: %s\n"
    (if violations = [] then "valid" else "INVALID");
  assert (violations = []);
  (* referee check: decode S and verify domination *)
  let in_s =
    Array.init n (fun v ->
        List.for_all (( = ) M) (Labeling.labels_at_node r.Theorem1.labeling v))
  in
  let dominated v =
    in_s.(v) || Array.exists (fun u -> in_s.(u)) (Graph.neighbors tree v)
  in
  assert (List.for_all dominated (List.init n Fun.id));
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_s in
  Printf.printf "dominating set of size %d / %d, every node dominated\n" size n;
  Printf.printf
    "defining a new problem took ~60 lines: constraints, a greedy 1-hop\n\
     completion, and a base algorithm — the transformation is generic.\n"
