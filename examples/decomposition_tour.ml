(* A guided tour of the two decompositions at the heart of the paper.

   Run with:  dune exec examples/decomposition_tour.exe

   Part 1 walks through rake-and-compress (Algorithm 1, [CHL+19]) on a
   small tree and shows the layers, the T_C / T_R split, and the
   Lemma 10/11 quantities. Part 2 runs the new Decomposition process
   (Algorithm 3) on a planar graph and shows the typical/atypical edge
   split and the F_{i,j} star families. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module RC = Tl_decompose.Rake_compress
module AD = Tl_decompose.Arb_decompose

let () =
  Printf.printf "== Part 1: rake-and-compress on a caterpillar ==\n";
  let tree = Gen.caterpillar ~spine:8 ~legs:2 in
  let n = Graph.n_nodes tree in
  let ids = Ids.identity n in
  let k = 3 in
  let rc = RC.run tree ~k ~ids in
  Printf.printf "n = %d, k = %d, iterations = %d (Lemma 9 bound %s)\n" n k
    (RC.iterations rc)
    (if RC.check_lemma9 rc then "holds" else "VIOLATED");
  List.iter
    (fun v ->
      let where =
        match RC.mark rc v with
        | RC.Compressed i -> Printf.sprintf "C_%d" i
        | RC.Raked i -> Printf.sprintf "R_%d" i
      in
      if v < 10 then Printf.printf "  node %d (degree %d) -> layer %s\n" v (Graph.degree tree v) where)
    (List.init n Fun.id);
  Printf.printf "  ... (%d nodes total)\n" n;
  let t_c = RC.t_c rc and t_r = RC.t_r rc in
  Printf.printf "T_C: %d nodes, underlying degree %d (Lemma 10: <= k = %d)\n"
    (Semi_graph.n_present_nodes t_c)
    (Semi_graph.max_underlying_degree t_c)
    k;
  let diameters = RC.rake_component_diameters rc in
  Printf.printf "T_R: %d nodes in %d components, max diameter %d (Lemma 11: <= %d)\n"
    (Semi_graph.n_present_nodes t_r)
    (List.length diameters)
    (List.fold_left max 0 diameters)
    (RC.lemma11_bound rc);

  Printf.printf "\n== Part 2: Algorithm 3 on a hub-heavy bounded-arboricity graph ==\n";
  (* a union of preferential-attachment trees: arboricity <= 3 but with
     high-degree hubs, so the decomposition produces atypical edges *)
  let g = Gen.power_law_union ~n:2000 ~arboricity:3 ~seed:9 in
  let n = Graph.n_nodes g in
  let a = 3 in
  let k = 15 in
  let ids = Ids.permuted ~n ~seed:5 in
  let d = AD.run g ~a ~k ~ids in
  Printf.printf "n = %d, m = %d, a = %d, b = 2a = %d, k = %d\n" n
    (Graph.n_edges g) a (AD.b d) k;
  Printf.printf "iterations = %d (Lemma 13 bound %d)\n" (AD.iterations d)
    (AD.lemma13_bound d);
  let typical = List.length (AD.typical_edges d) in
  let atypical = List.length (AD.atypical_edges d) in
  Printf.printf "typical edges: %d (degree <= %d by Lemma 14: %d), atypical: %d\n"
    typical k (AD.typical_max_degree d) atypical;
  Printf.printf "atypical edges per node: at most %d (bound b = %d)\n"
    (AD.max_atypical_per_node d) (AD.b d);
  Printf.printf "forest 3-coloring took %d rounds; star families F_ij:\n"
    (AD.cv_rounds d);
  for i = 1 to AD.b d do
    for j = 1 to 3 do
      let stars = AD.stars d ~i ~j in
      if stars <> [] then begin
        let edges = List.fold_left (fun acc (_, es) -> acc + List.length es) 0 stars in
        Printf.printf "  F_%d,%d: %d stars, %d edges\n" i j (List.length stars) edges
      end
    done
  done;
  Printf.printf "star shape certificate: %s\n"
    (if AD.check_stars d then "every component is a star" else "VIOLATED")
