(* Live-metrics smoke: scrape the daemon's registry over the wire.

   Run with:  dune exec examples/metrics_smoke.exe   (or `make metrics-smoke`)

   Spawns tree-local-serve in stdio mode, fires a burst of solve
   requests (cold and warm), then exercises the two observability
   controls:

   - `metrics` returns the tl_metrics = 1 registry snapshot; we decode
     it with Tl_obs.Metrics.snapshot_of_json and check the core
     accounting invariant — the serve_request_seconds histogram holds
     exactly one observation per served request, so its count must
     equal the serve_served_total counter (which must equal the burst
     size);
   - the same snapshot re-renders as Prometheus text exposition
     (what `tree-local client --cmd metrics --format prom` prints) and
     every line must be well-formed: a `# TYPE` comment or a
     `name{labels} value` sample;
   - `tail` returns the flight recorder's recent events; every request
     in the burst must appear.

   Each check prints a PASS/FAIL line — `make metrics-smoke` greps for
   the PASS lines and for the absence of FAIL. *)

module Json = Tl_obs.Json
module Metrics = Tl_obs.Metrics
module P = Tl_serve.Protocol

let daemon_path () =
  let candidates =
    [
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/tree_local_serve.exe";
      "_build/default/bin/tree_local_serve.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "tree_local_serve.exe not found; run `dune build` first"

let check name ok =
  Printf.printf "%s %s\n" (if ok then "PASS" else "FAIL") name;
  ok

let spec ~seed = P.Family { family = "random-tree"; n = 2000; seed; a = 1; delta = 8 }

let burst = 6

let requests =
  List.init burst (fun i ->
      (* three distinct seeds then three repeats: cold misses + warm hits *)
      P.request_to_json
        (P.request
           ~id:(Printf.sprintf "r%d" i)
           ~problem:"mis"
           ~spec:(spec ~seed:(1 + (i mod 3)))
           ~want_span:false ()))
  @ [
      P.control_to_json ~id:"m" P.Metrics;
      P.control_to_json ~id:"t" P.Tail;
      P.control_to_json ~id:"bye" P.Shutdown;
    ]

(* One Prometheus text-exposition line: a `# TYPE name kind` comment or
   a `name[{labels}] value` sample with a metric-identifier name and a
   float-parseable value. *)
let prom_line_ok line =
  let ident_ok s =
    s <> ""
    && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
         s
  in
  if line = "" then true
  else if line.[0] = '#' then
    match String.split_on_char ' ' line with
    | "#" :: "TYPE" :: name :: [ kind ] ->
      ident_ok name && List.mem kind [ "counter"; "gauge"; "histogram" ]
    | _ -> false
  else
    match String.rindex_opt line ' ' with
    | None -> false
    | Some i ->
      let series = String.sub line 0 i in
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      let name =
        match String.index_opt series '{' with
        | Some b ->
          if series.[String.length series - 1] = '}' then String.sub series 0 b
          else ""
        | None -> series
      in
      ident_ok name && Option.is_some (float_of_string_opt value)

let () =
  let daemon = daemon_path () in
  Printf.printf "spawning %s\n" daemon;
  let inc, out = Unix.open_process daemon in
  List.iter (fun j -> output_string out (Json.to_line j)) requests;
  flush out;
  let served = ref 0
  and snapshot = ref None
  and tail_events = ref [] in
  (try
     while true do
       match P.response_of_json (Json.parse (input_line inc)) with
       | Ok { P.outcome = P.Solved _; _ } -> incr served
       | Ok { P.outcome = P.Metrics_report j; _ } -> (
         match Metrics.snapshot_of_json j with
         | Ok s -> snapshot := Some s
         | Error msg -> Printf.printf "FAIL snapshot decode: %s\n" msg)
       | Ok { P.outcome = P.Tail_report js; _ } ->
         tail_events := List.filter_map Metrics.Recorder.event_of_json js
       | Ok { P.outcome = P.Pong; _ } -> ()
       | Ok { P.outcome = P.Stats_report _; _ } -> ()
       | Ok { P.outcome = P.Error (_, msg); _ } ->
         Printf.printf "FAIL request errored: %s\n" msg
       | Error msg -> Printf.printf "FAIL bad response line: %s\n" msg
     done
   with End_of_file -> ());
  let all_ok = ref (check (Printf.sprintf "all %d requests served" burst) (!served = burst)) in
  let guard ok = all_ok := ok && !all_ok in
  (match !snapshot with
  | None -> guard (check "metrics control returned a snapshot" false)
  | Some s ->
    let served_ctr = List.assoc_opt "serve_served_total" s.Metrics.counters in
    let latency = List.assoc_opt "serve_request_seconds" s.Metrics.histograms in
    (match (served_ctr, latency) with
    | Some c, Some h ->
      Printf.printf "  serve_served_total=%d latency_count=%d latency_sum=%.6fs\n"
        c h.Metrics.h_count h.Metrics.h_sum;
      guard (check "histogram count == served counter" (h.Metrics.h_count = c && c = burst))
    | _ ->
      guard (check "histogram count == served counter" false));
    let prom = Metrics.to_prometheus s in
    let lines = String.split_on_char '\n' prom in
    let bad = List.filter (fun l -> not (prom_line_ok l)) lines in
    List.iter (Printf.printf "  bad prom line: %S\n") bad;
    guard
      (check "prometheus exposition well-formed"
         (bad = [] && List.exists (fun l -> l <> "" && l.[0] <> '#') lines)));
  let req_events =
    List.filter (fun e -> e.Metrics.Recorder.kind = "request") !tail_events
  in
  guard
    (check "flight recorder covers the burst"
       (List.length req_events >= burst
       && List.for_all
            (fun e -> e.Metrics.Recorder.outcome = "ok")
            req_events));
  (match Unix.close_process (inc, out) with
  | Unix.WEXITED 0 -> print_endline "daemon exited cleanly"
  | _ -> guard (check "daemon exited cleanly" false));
  if not !all_ok then exit 1
