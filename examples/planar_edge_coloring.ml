(* Theorem 3 on planar graphs: (edge-degree + 1)-edge coloring of a
   triangulated grid (arboricity <= 3) in strongly sublogarithmic rounds.

   Run with:  dune exec examples/planar_edge_coloring.exe

   This is the paper's headline application beyond trees: planar graphs
   have constant arboricity, so Theorem 3's O(a + log^{12/13} n) bound
   applies. The pipeline is Theorem 15 / Algorithm 4: decompose with
   Compress(G, 2a, k), color the typical part with a truly local
   algorithm, then finish the 6a star families with the Lemma 16
   sequential labeling process. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Ids = Tl_local.Ids
module Pipeline = Tl_core.Pipeline
module Round_cost = Tl_local.Round_cost
module Edge_coloring = Tl_problems.Edge_coloring

let () =
  (* a 100x100 triangulated grid: planar, lots of triangles, a <= 3 *)
  let g = Gen.triangulated_grid 100 in
  let n = Graph.n_nodes g in
  let lo, hi = Props.arboricity_interval g in
  Printf.printf "instance: triangulated grid, n = %d, m = %d\n" n
    (Graph.n_edges g);
  Printf.printf "arboricity certificate: between %d and %d (using a = 3)\n" lo hi;

  let ids = Ids.permuted ~n ~seed:11 in
  let result = Pipeline.edge_coloring_on_graph ~graph:g ~a:3 ~ids () in
  Printf.printf "k = g(n)^2 = %d, LOCAL rounds = %d\n" result.Pipeline.k
    result.Pipeline.total_rounds;
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-22s %5d rounds\n" phase rounds)
    (Round_cost.phases result.Pipeline.cost);
  Printf.printf "validation: %s\n"
    (if result.Pipeline.valid then "valid" else "INVALID");

  (* decode to a plain edge coloring and inspect the palette *)
  let colors = Edge_coloring.decode g result.Pipeline.labeling in
  assert (Props.is_proper_edge_coloring g colors);
  let used = List.sort_uniq compare (Array.to_list colors) in
  let max_allowed = Props.max_edge_degree g + 1 in
  Printf.printf "proper edge coloring with %d distinct colors " (List.length used);
  Printf.printf "(max color %d, edge-degree+1 = %d)\n"
    (List.fold_left max 0 used) max_allowed;

  (* every edge individually respects its own edge-degree + 1 palette *)
  Graph.iter_edges
    (fun e _ -> assert (colors.(e) <= Props.edge_degree g e + 1))
    g;
  Printf.printf "per-edge palette bound edge-degree(e)+1: confirmed\n";

  (* the same labeling is automatically a (2 Delta - 1)-edge coloring *)
  let delta = Graph.max_degree g in
  let two_delta = Edge_coloring.problem_two_delta ~delta in
  assert (Tl_problems.Nec.validate two_delta g result.Pipeline.labeling = []);
  Printf.printf "also valid as a (2*%d - 1)-edge coloring\n" delta
