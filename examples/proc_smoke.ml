(* Process-backend smoke: digest equality against the sequential
   reference, plus worker-cleanup checks. Exercised by `make proc-smoke`
   and CI.

   Run with:  dune exec examples/proc_smoke.exe

   IMPORTANT ordering: every proc-mode run happens before any par/shard
   run in this program — OCaml 5 forbids fork once a domain has ever
   been spawned, and the coordinator refuses (Proc_failure) rather than
   crash. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Theorem1 = Tl_core.Theorem1
module Proc = Tl_proc.Coordinator

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let pass name ok =
  Printf.printf "%-46s %s\n%!" name (if ok then "ok" else "FAIL");
  if not ok then exit 1

let () =
  let n = 20_000 in
  let tree = Gen.random_tree ~n ~seed:42 in
  let ids = Ids.permuted ~n ~seed:7 in
  let sg = Tl_graph.Semi_graph.of_graph tree in
  let topo = Topology.compile sg in
  Printf.printf "instance: random tree, n = %d\n%!" n;

  (* 1. flood fixpoint, proc:{1,2,4} — all runs before any domain work *)
  let flood mode =
    let o =
      Engine.run_until_stable ~mode ~topo
        ~init:(fun v -> v = 0)
        ~step:(fun ~round:_ ~node:_ s ~neighbors ->
          s || List.exists (fun (_, _, su) -> su) neighbors)
        ~equal:Bool.equal ~max_rounds:(n + 1) ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  let p1 = flood (Engine.Proc 1) in
  let p2 = flood (Engine.Proc 2) in
  let p4 = flood (Engine.Proc 4) in

  (* 2. Theorem 12 MIS through the full pipeline under proc:4 *)
  let proc_mis =
    Theorem1.run ~engine:(Engine.Proc 4) ~spec:mis_spec ~tree ~ids
      ~f:Tl_core.Complexity.f_linear ()
  in

  (* 3. crash containment: a step function that throws on a mid-run
     round must surface as Failure with no worker left behind *)
  let crash_ok =
    match
      Engine.run_rounds ~mode:(Engine.Proc 4) ~topo
        ~init:(fun v -> v)
        ~step:(fun ~round ~node s ~neighbors:_ ->
          if round = 2 && node = n / 2 then failwith "boom";
          s + 1)
        ~rounds:4 ()
    with
    | _ -> false
    | exception Failure msg -> msg = "boom"
  in
  pass "worker exception surfaces as Failure" crash_ok;
  let reaped =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> true
    | 0, _ -> false (* a live child is still out there *)
    | _ -> false (* an unreaped zombie was left behind *)
  in
  pass "no zombie workers after a crashed run" reaped;

  (* 4. now the in-process references (these may spawn domains) *)
  let s1 = flood Engine.Seq in
  pass "flood digest proc:1 = seq" (p1 = s1);
  pass "flood digest proc:2 = seq" (p2 = s1);
  pass "flood digest proc:4 = seq" (p4 = s1);

  let seq_mis =
    Theorem1.run ~engine:Engine.Seq ~spec:mis_spec ~tree ~ids
      ~f:Tl_core.Complexity.f_linear ()
  in
  let labels r =
    List.init (Graph.n_half_edges tree) (Labeling.get r.Theorem1.labeling)
  in
  pass "Theorem 12 MIS labeling proc:4 = seq"
    (labels proc_mis = labels seq_mis);
  pass "Theorem 12 MIS ledger proc:4 = seq"
    (Round_cost.phases proc_mis.Theorem1.cost
    = Round_cost.phases seq_mis.Theorem1.cost);

  (* 5. the fork-after-domain guard refuses cleanly (domains may or may
     not have spawned above depending on core count — only assert when
     they did) *)
  if Tl_engine.Team.spawns () > 0 then begin
    let refused =
      match flood (Engine.Proc 2) with
      | _ -> false
      | exception Tl_proc.Wire.Proc_failure _ -> true
    in
    pass "fork-after-domain guard refuses cleanly" refused
  end;
  print_endline "proc smoke: all checks passed"
