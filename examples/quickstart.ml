(* Quickstart: solve MIS on a tree with the paper's transformation.

   Run with:  dune exec examples/quickstart.exe

   The pipeline (Theorem 12 / Algorithm 2):
   1. rake-and-compress the tree with k = g(n);
   2. run a truly local MIS algorithm on the low-degree part T_C;
   3. gather-and-solve the edge-list variant on each rake component.
*)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Ids = Tl_local.Ids
module Pipeline = Tl_core.Pipeline
module Round_cost = Tl_local.Round_cost

let () =
  (* 1. build an instance: a uniformly random labelled tree *)
  let n = 5_000 in
  let tree = Gen.random_tree ~n ~seed:42 in
  Printf.printf "instance: random tree, n = %d, max degree = %d\n" n
    (Graph.max_degree tree);

  (* 2. assign the LOCAL model's unique identifiers *)
  let ids = Ids.permuted ~n ~seed:7 in

  (* 3. run the transformed algorithm *)
  let result = Pipeline.mis_on_tree ~tree ~ids () in
  Printf.printf "decomposition parameter k = g(n) = %d\n" result.Pipeline.k;
  Printf.printf "LOCAL rounds used: %d\n" result.Pipeline.total_rounds;
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-22s %5d rounds\n" phase rounds)
    (Round_cost.phases result.Pipeline.cost);

  (* 4. the solution is a half-edge labeling; decode and verify it *)
  Printf.printf "node-edge-checkable validation: %s\n"
    (if result.Pipeline.valid then "valid" else "INVALID");
  let in_mis = Tl_problems.Mis.decode tree result.Pipeline.labeling in
  let size = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in
  Printf.printf "MIS size: %d of %d nodes\n" (size in_mis) n;
  assert (Props.is_maximal_independent_set tree in_mis);
  Printf.printf "independent + maximal: confirmed by the referee checker\n";

  (* 5. compare with running the truly local algorithm directly *)
  let direct = Pipeline.mis_direct ~graph:tree ~ids in
  Printf.printf "direct O(f(Delta) + log* n) run: %d rounds (transformed: %d)\n"
    direct.Pipeline.total_rounds result.Pipeline.total_rounds
