(* Serving quickstart: talk to the tree-local-serve daemon over pipes.

   Run with:  dune exec examples/serve_client.exe

   Spawns the daemon in stdio mode, sends a small ndjson workload —
   a cold request, its warm same-topology repeat (served from the
   instance cache), a control message — and prints what came back.
   The same bytes work over a Unix-domain socket:

     tree-local-serve --socket /tmp/tl.sock &
     tree-local client --socket /tmp/tl.sock --problem mis --n 2000
*)

module Json = Tl_obs.Json
module P = Tl_serve.Protocol

(* the daemon binary lives next to this example's dune build output *)
let daemon_path () =
  let candidates =
    [
      Filename.concat
        (Filename.dirname Sys.executable_name)
        "../bin/tree_local_serve.exe";
      "_build/default/bin/tree_local_serve.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> failwith "tree_local_serve.exe not found; run `dune build` first"

let spec = P.Family { family = "random-tree"; n = 2000; seed = 42; a = 1; delta = 8 }

(* pooled requests: pool:4 parks a 4-wide domain team in the daemon; the
   two metrics scrapes bracketing them assert the team spawns once and
   is reused for every later job (no per-request domain churn) *)
let requests =
  [
    P.request_to_json
      (P.request ~id:"cold" ~problem:"mis" ~spec ~want_span:false ());
    P.request_to_json
      (P.request ~id:"warm" ~problem:"mis" ~spec ~want_span:false ());
    P.request_to_json
      (P.request ~id:"sharded" ~problem:"flood" ~spec ~engine:"shard:4"
         ~shards:4 ~pool:4 ~want_span:false ());
    P.control_to_json ~id:"m1" P.Metrics;
    (* fresh seeds: cache misses, so these really run pooled shard solves *)
    P.request_to_json
      (P.request ~id:"pool-a" ~problem:"flood"
         ~spec:
           (P.Family
              { family = "random-tree"; n = 2500; seed = 7; a = 1; delta = 8 })
         ~engine:"shard:4" ~shards:4 ~pool:4 ~want_span:false ());
    P.request_to_json
      (P.request ~id:"pool-b" ~problem:"mis"
         ~spec:
           (P.Family
              { family = "random-tree"; n = 2500; seed = 9; a = 1; delta = 8 })
         ~engine:"shard:2" ~shards:2 ~pool:4 ~want_span:false ());
    P.control_to_json ~id:"m2" P.Metrics;
    P.control_to_json ~id:"st" P.Stats;
    P.control_to_json ~id:"bye" P.Shutdown;
  ]

(* pool_spawns_total per metrics scrape, in arrival order *)
let spawn_scrapes : (string * int) list ref = ref []

let describe line =
  match P.response_of_json (Json.parse line) with
  | Error msg -> Printf.printf "  unparseable response (%s)\n" msg
  | Ok { P.rid; outcome } -> (
    match outcome with
    | P.Solved s ->
      Printf.printf
        "  %-8s digest=%s rounds=%4d engine_rounds=%4d valid=%b cache_hit=%b\n"
        rid s.P.digest s.P.total_rounds s.P.engine_rounds s.P.valid
        s.P.cache_hit
    | P.Pong -> Printf.printf "  %-8s pong\n" rid
    | P.Stats_report kvs ->
      Printf.printf "  %-8s stats:" rid;
      List.iter
        (fun key ->
          match List.assoc_opt key kvs with
          | Some v -> Printf.printf " %s=%d" key v
          | None -> ())
        [ "received"; "served"; "serve:cache_hit"; "topo:cache_hit" ];
      print_newline ()
    | P.Metrics_report snap_json -> (
      match Tl_obs.Metrics.snapshot_of_json snap_json with
      | Error msg ->
        Printf.printf "  %-8s metrics snapshot unparseable (%s)\n" rid msg
      | Ok snap ->
        let spawns =
          match
            List.assoc_opt "pool_spawns_total" snap.Tl_obs.Metrics.counters
          with
          | Some v -> v
          | None -> 0
        in
        spawn_scrapes := !spawn_scrapes @ [ (rid, spawns) ];
        Printf.printf "  %-8s metrics pool_spawns_total=%d\n" rid spawns)
    | P.Tail_report events ->
      Printf.printf "  %-8s flight-recorder tail: %d event(s)\n" rid
        (List.length events)
    | P.Error (kind, msg) ->
      Printf.printf "  %-8s error (%s): %s\n" rid
        (match kind with
        | P.Rejected -> "rejected"
        | P.Bad_request -> "bad_request"
        | P.Failed -> "failed")
        msg)

let () =
  let daemon = daemon_path () in
  Printf.printf "spawning %s\n" daemon;
  let inc, out = Unix.open_process daemon in
  List.iter (fun j -> output_string out (Json.to_line j)) requests;
  flush out;
  Printf.printf "sent %d ndjson lines, responses:\n" (List.length requests);
  (try
     while true do
       describe (input_line inc)
     done
   with End_of_file -> ());
  (* the pooled jobs between the scrapes must ride the already-parked
     team: the spawn counter is non-zero after the first pool:4 job and
     identical across both scrapes *)
  (match !spawn_scrapes with
  | [ (_, first); (_, second) ] ->
    Printf.printf "pool-spawns first=%d second=%d stable=%b\n" first second
      (first > 0 && first = second)
  | scrapes ->
    Printf.printf "pool-spawns stable=false (got %d scrape(s))\n"
      (List.length scrapes));
  match Unix.close_process (inc, out) with
  | Unix.WEXITED 0 -> print_endline "daemon exited cleanly"
  | Unix.WEXITED c -> Printf.printf "daemon exited with %d\n" c
  | _ -> print_endline "daemon killed"
