(* Sharded execution: the same Theorem 12 MIS pipeline, bit-identical
   under the sequential stepper and the sharded halo-exchange backend.

   Run with:  dune exec examples/sharded_mis.exe

   The shard backend (lib/shard) partitions a compiled topology into S
   contiguous shards with ghost (halo) vertices; every LOCAL round is
   local step -> batched boundary exchange -> barrier. The CLI exposes
   the same knob as `solve ... --engine shard --shards S`.
*)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Ids = Tl_local.Ids
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Engine = Tl_engine.Engine
module Theorem1 = Tl_core.Theorem1
module Shard = Tl_shard.Shard

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let () =
  let n = 20_000 in
  let tree = Gen.random_tree ~n ~seed:42 in
  let ids = Ids.permuted ~n ~seed:7 in
  Printf.printf "instance: random tree, n = %d\n" n;

  (* 1. the reference: Theorem 12 MIS under the sequential stepper *)
  let seq =
    Theorem1.run ~engine:Engine.Seq ~spec:mis_spec ~tree ~ids
      ~f:Tl_core.Complexity.f_linear ()
  in

  (* 2. the same pipeline on the sharded backend, S = 4 *)
  let sharded =
    Theorem1.run ~engine:(Engine.Shard 4) ~spec:mis_spec ~tree ~ids
      ~f:Tl_core.Complexity.f_linear ()
  in

  (* 3. parity: labelings and round ledgers must be bit-identical *)
  let labels r =
    List.init (Graph.n_half_edges tree) (Labeling.get r.Theorem1.labeling)
  in
  let same_labels = labels seq = labels sharded in
  let same_ledger =
    Round_cost.phases seq.Theorem1.cost
    = Round_cost.phases sharded.Theorem1.cost
  in
  Printf.printf "labelings identical:     %b\n" same_labels;
  Printf.printf "round ledgers identical: %b\n" same_ledger;
  List.iter
    (fun (phase, rounds) -> Printf.printf "  %-22s %5d rounds\n" phase rounds)
    (Round_cost.phases sharded.Theorem1.cost);
  assert (same_labels && same_ledger);

  (* 4. the backend is also callable directly, composing with the pool *)
  let sg = Tl_graph.Semi_graph.of_graph tree in
  let topo = Tl_engine.Topology.compile sg in
  let flood shards =
    let o =
      Shard.run_until_stable ~shards ~pool:1 ~topo
        ~init:(fun v -> v = 0)
        ~step:(fun ~round:_ ~node:_ s ~neighbors ->
          s || List.exists (fun (_, _, su) -> su) neighbors)
        ~equal:Bool.equal ~max_rounds:(n + 1) ()
    in
    (o.Engine.states, o.Engine.rounds)
  in
  let states2, rounds2 = flood 2 in
  let states8, rounds8 = flood 8 in
  Printf.printf "flood from node 0: %d rounds (shards=2) = %d rounds (shards=8)\n"
    rounds2 rounds8;
  assert (states2 = states8 && rounds2 = rounds8);
  Printf.printf "shard counts agree bit-for-bit: confirmed\n"
