(* Section 5.2: maximal matching on trees in O(log n / log log n) rounds,
   reproving the optimal [BE13] bound via Theorem 15 with f(Delta) =
   Theta(Delta).

   Run with:  dune exec examples/tree_matching.exe

   This example also digs one level deeper than the quickstart: it shows
   the M/P/O/D half-edge encoding of Section 5.2 and the decomposition
   that the transformation used. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Ids = Tl_local.Ids
module Pipeline = Tl_core.Pipeline
module Matching = Tl_problems.Matching
module Labeling = Tl_problems.Labeling
module Complexity = Tl_core.Complexity

let () =
  List.iter
    (fun n ->
      let tree = Gen.random_tree ~n ~seed:(n + 5) in
      let ids = Ids.permuted ~n ~seed:3 in
      let r = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
      let curve = Complexity.mis_lower_bound ~n in
      Printf.printf
        "n = %7d: %5d rounds (log n / log log n = %5.1f, ratio %.1f) %s\n" n
        r.Pipeline.total_rounds curve
        (float_of_int r.Pipeline.total_rounds /. curve)
        (if r.Pipeline.valid then "valid" else "INVALID"))
    [ 1_000; 10_000; 100_000 ];

  (* a small instance, spelled out label by label *)
  Printf.printf "\nthe Section 5.2 encoding on a 6-node path:\n";
  let tree = Gen.path 6 in
  let ids = Ids.identity 6 in
  let r = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
  let matched = Matching.decode tree r.Pipeline.labeling in
  Graph.iter_edges
    (fun e (u, v) ->
      let label node =
        match
          Labeling.get r.Pipeline.labeling (Graph.half_edge tree ~edge:e ~node)
        with
        | Some Matching.M -> "M"
        | Some Matching.P -> "P"
        | Some Matching.O -> "O"
        | Some Matching.D -> "D"
        | None -> "?"
      in
      Printf.printf "  edge %d-%d: half-edges (%s, %s)%s\n" u v (label u)
        (label v)
        (if matched.(e) then "   <- in the matching" else ""))
    tree;
  assert (Props.is_maximal_matching tree matched);
  Printf.printf "maximal matching confirmed; constraint recap:\n";
  Printf.printf "  M = matched via this edge (must meet M)\n";
  Printf.printf "  P = matched elsewhere, O = unmatched; {O,O} forbidden\n";
  Printf.printf "  (that forbidden {O,O} configuration IS maximality)\n"
