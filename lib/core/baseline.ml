module Graph = Tl_graph.Graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Rake_compress = Tl_decompose.Rake_compress
module Span = Tl_obs.Span

(* Split the tree's edges into two forests by owner (= lower endpoint in
   the rake-and-compress total order with k = 2; every node has at most 2
   higher neighbors), 3-color each forest and return the 6 star families
   in schedule order together with the rounds spent. *)
let star_schedule tree ~ids =
  let cost = Round_cost.create () in
  let rc =
    Span.with_span "decompose" (fun () ->
        let rc = Rake_compress.run tree ~k:2 ~ids in
        Round_cost.charge cost "decompose"
          (Rake_compress.decomposition_rounds rc);
        rc)
  in
  let n = Graph.n_nodes tree in
  let m = Graph.n_edges tree in
  let f_index = Array.make m 0 in
  let next = Array.make n 1 in
  Graph.iter_edges
    (fun e _ ->
      let lo = Rake_compress.lower_endpoint rc e in
      f_index.(e) <- next.(lo);
      next.(lo) <- next.(lo) + 1;
      (* k = 2 guarantees at most two higher neighbors per node *)
      assert (f_index.(e) <= 2))
    tree;
  let star_j = Array.make m 0 in
  let cv_rounds = ref 0 in
  Span.with_span "forest-coloring" (fun () ->
  for c = 1 to 2 do
    let parent = Array.make n (-1) in
    let in_forest = Array.make n false in
    Graph.iter_edges
      (fun e _ ->
        if f_index.(e) = c then begin
          let lo = Rake_compress.lower_endpoint rc e in
          let hi = Rake_compress.higher_endpoint rc e in
          parent.(lo) <- hi;
          in_forest.(lo) <- true;
          in_forest.(hi) <- true
        end)
      tree;
    let nodes = ref [] in
    for v = n - 1 downto 0 do
      if in_forest.(v) then nodes := v :: !nodes
    done;
    if !nodes <> [] then begin
      let colors, rounds =
        Tl_symmetry.Cole_vishkin.color3 ~nodes:!nodes ~parent ~ids
      in
      if rounds > !cv_rounds then cv_rounds := rounds;
      Graph.iter_edges
        (fun e _ ->
          if f_index.(e) = c then
            star_j.(e) <- colors.(Rake_compress.higher_endpoint rc e) + 1)
        tree
    end
  done;
  Round_cost.charge cost "forest-3-coloring" !cv_rounds);
  (* group the edges of each (c, j) family in schedule order *)
  let families = ref [] in
  for c = 2 downto 1 do
    for j = 3 downto 1 do
      let edges = ref [] in
      for e = m - 1 downto 0 do
        if f_index.(e) = c && star_j.(e) = j then edges := e :: !edges
      done;
      families := !edges :: !families
    done
  done;
  (cost, !families)

let solve_with_stars solve_node_list ~tree ~ids =
  let cost, families = star_schedule tree ~ids in
  let labeling = Labeling.create tree in
  Span.with_span "stars" (fun () ->
      Span.add_counter "families" (List.length families);
      List.iter
        (fun edges ->
          solve_node_list tree labeling ~edges;
          (* each family's stars are node-disjoint and solved in parallel:
             gather + redistribute at distance 1 *)
          Round_cost.charge cost "gather-solve(stars)" 2)
        families);
  (labeling, cost)

let edge_coloring_on_tree ~tree ~ids =
  solve_with_stars Tl_problems.Edge_coloring.solve_node_list ~tree ~ids

let matching_on_tree ~tree ~ids =
  solve_with_stars Tl_problems.Matching.solve_node_list ~tree ~ids
