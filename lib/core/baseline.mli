(** Prior-art baselines in the style of [BE10, BE13] — the upper bounds
    the paper's Theorem 3 improves upon.

    Before this paper, the best bounds for (edge-degree+1)- and
    (2Δ-1)-edge coloring on trees were `O(log n / log log n)`, and
    `O(a + log n)` on arboricity-a graphs [BE13], obtained from
    Nash-Williams-style forest decompositions. This module reconstructs
    that approach on trees:

    + run rake-and-compress with [k = 2]: every node ends up with at most
      2 higher neighbors (a raked node has at most 1 alive neighbor at
      removal, a compressed one at most 2), in [O(log n)] rounds;
    + the edges, owned by their lower endpoints and split by owner into
      two classes, form two forests; 3-color each with Cole-Vishkin and
      split into six star families exactly as in Section 4;
    + solve the star families sequentially with the Lemma 16/17 labeling
      processes.

    Total: [O(log n + log* n)] rounds — the [BE13]-flavoured baseline that
    experiment E9 compares against the transformation. (The sharper
    [O(log n / log log n)] of [BE13] needs degree-[log n] bucketing; the
    paper reproves that bound generically via Theorem 15, see experiment
    E10.) *)

val edge_coloring_on_tree :
  tree:Tl_graph.Graph.t ->
  ids:int array ->
  Tl_problems.Edge_coloring.label Tl_problems.Labeling.t
  * Tl_local.Round_cost.t
(** (edge-degree+1)-edge coloring of a tree in [O(log n)] rounds. *)

val matching_on_tree :
  tree:Tl_graph.Graph.t ->
  ids:int array ->
  Tl_problems.Matching.label Tl_problems.Labeling.t * Tl_local.Round_cost.t
(** Maximal matching of a tree in [O(log n)] rounds via the same star
    schedule with the Lemma 17 process. *)
