type f = float -> float

let log2 x = Float.log x /. Float.log 2.0

let f_linear x = x
let f_sqrt_log x = if x <= 1.0 then 0.0 else Float.sqrt (x *. log2 x)
let f_exp_sqrt_log x = if x <= 1.0 then 0.0 else Float.pow 2.0 (Float.sqrt (log2 x))

let f_polylog ~exponent x =
  if x <= 1.0 then 0.0 else Float.pow (log2 x) exponent

let f_linial_reduction x =
  if x <= 0.0 then 0.0
  else
    let l = log2 (x +. 1.0) in
    x *. x *. l *. l

let log_star = Tl_symmetry.Cole_vishkin.log_star

let solve_g_target ~f ~target =
  let value g = f g *. Float.log g in
  (* [value] is monotone non-decreasing for g > 1 and tends to infinity;
     find an upper bracket then bisect. *)
  let rec bracket hi =
    if value hi >= target || hi > 1e300 then hi else bracket (hi *. 2.0)
  in
  let hi = bracket 2.0 in
  let lo = 1.0 in
  let rec bisect lo hi i =
    if i = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if value mid >= target then bisect lo mid (i - 1)
      else bisect mid hi (i - 1)
    end
  in
  bisect lo hi 200

let solve_g ~f ~n =
  if n < 2.0 then invalid_arg "Complexity.solve_g: n < 2";
  solve_g_target ~f ~target:(Float.log n)

let solve_g_log ~f ~log2_n =
  if log2_n < 1.0 then invalid_arg "Complexity.solve_g_log: log2_n < 1";
  solve_g_target ~f ~target:(log2_n *. Float.log 2.0)

let theorem1_rounds_log ~f ~log2_n = f (solve_g_log ~f ~log2_n)

let mis_lower_bound_log ~log2_n =
  if log2_n <= 2.0 then log2_n else log2_n /. log2 log2_n

let theorem1_rounds ~f ~n =
  if n < 2 then 0.0
  else
    let g = solve_g ~f ~n:(float_of_int n) in
    f g +. float_of_int (log_star n)

let theorem2_rounds ~f ~n ~a ~rho =
  if n < 2 then 0.0
  else begin
    let g = solve_g ~f ~n:(float_of_int n) in
    let k = Float.pow g (float_of_int rho) in
    if float_of_int a > k /. 5.0 then Float.nan
    else begin
      let rho_f = float_of_int rho in
      let log_g_a = Float.log (float_of_int a) /. Float.log g in
      float_of_int a
      +. (rho_f *. f k /. (rho_f -. log_g_a))
      +. float_of_int (log_star n)
    end
  end

let theorem3_tree_rounds ~n = theorem1_rounds ~f:(f_polylog ~exponent:12.0) ~n

let mis_lower_bound ~n =
  if n < 4 then 0.0
  else
    let l = log2 (float_of_int n) in
    l /. log2 l

let lift_lower_bound ~h ~n =
  if n < 2 then 0.0 else h (solve_g ~f:h ~n:(float_of_int n))

let choose_k ~f ~n =
  if n < 2 then 2
  else max 2 (int_of_float (Float.round (solve_g ~f ~n:(float_of_int n))))

let choose_k_arb ~f ~n ~a ~rho =
  let k_g =
    if n < 2 then 2
    else
      let g = solve_g ~f ~n:(float_of_int n) in
      int_of_float (Float.round (Float.pow g (float_of_int rho)))
  in
  max (5 * a) (max 2 k_g)
