(** Complexity-function algebra for the paper's transformation.

    A truly local complexity is a monotonically non-decreasing, non-zero
    function [f] (Section 1, footnote 6); the transformed complexity on
    trees is [O(f(g(n)) + log* n)] where [g] is the unique solution of
    [g(n)^{f(g(n))} = n]. This module provides the standard [f]s from the
    paper, a numeric solver for [g], and the predicted round counts of
    Theorems 12, 15 and 3 used by the experiments. *)

type f = float -> float
(** A complexity function on the maximum degree (continuous, monotone
    non-decreasing, [f 0 = 0]). *)

(** {1 Complexity functions from the paper} *)

val f_linear : f
(** [f(Δ) = Δ] — MIS and maximal matching ([BEK14, PR01, BBKO22a,
    BBH+21]: tight). *)

val f_sqrt_log : f
(** [f(Δ) = √(Δ log Δ)] — best known for (Δ+1)- and (deg+1)-coloring
    [MT20]. *)

val f_exp_sqrt_log : f
(** [f(Δ) = 2^{√(log Δ)}] — hypothetical improvement discussed in
    Section 1.1. *)

val f_polylog : exponent:float -> f
(** [f(Δ) = log^e Δ] — with [e = 12] the bound of [BBKO22b] for
    (edge-degree+1)-edge coloring, giving Theorem 3. *)

val f_linial_reduction : f
(** [f(Δ) = Δ² log² (Δ + 1)] — the truly local complexity of the
    executable base algorithms shipped in [Tl_symmetry.Algos]. *)

(** {1 The function g} *)

val solve_g : f:f -> n:float -> float
(** The unique [g > 1] with [f(g)·ln g = ln n] (i.e. [g^{f(g)} = n]),
    by bisection. Requires [n >= 2]. *)

val log_star : int -> int

(** {1 Predicted round counts} *)

val theorem1_rounds : f:f -> n:int -> float
(** [f(g(n)) + log* n] — the Theorem 12 prediction on trees. *)

val theorem2_rounds : f:f -> n:int -> a:int -> rho:int -> float
(** [a + ρ·f(g(n)^ρ)/(ρ − log_{g(n)} a) + log* n] — the Theorem 15
    prediction on arboricity-[a] graphs. Requires [a <= g(n)^ρ / 5]
    (returns [nan] otherwise, mirroring the theorem's applicability
    condition). *)

val theorem3_tree_rounds : n:int -> float
(** The Theorem 3 headline: [f = log^12] plugged into {!theorem1_rounds};
    grows as [Θ(log^{12/13} n)]. *)

val mis_lower_bound : n:int -> float
(** The [Ω(log n / log log n)] barrier of [BBH+21, BBKO22a] for MIS and
    maximal matching on trees (plotted as [log n / log log n]). *)

(** {2 Log-scale evaluation}

    Both Theorem 3's upper bound [log^{12/13} n] and the MIS barrier
    [log n / log log n] depend on [n] only through [L = log₂ n], and their
    asymptotic crossover happens at astronomically large [n]
    ([L ≈ e^{52}]). The [log2_n]-parameterized variants below evaluate the
    predictions directly from [L], letting experiments exhibit the
    asymptotic separation honestly. *)

val solve_g_log : f:f -> log2_n:float -> float
(** The solution of [f(g)·ln g = L·ln 2]; {!solve_g} with [n = 2^L]. *)

val theorem1_rounds_log : f:f -> log2_n:float -> float
(** [f(g)] evaluated at [g = solve_g_log f L] (no additive [log*] term —
    it is a constant-like additive term irrelevant on this scale). *)

val mis_lower_bound_log : log2_n:float -> float
(** [L / log₂ L]. *)

val lift_lower_bound : h:f -> n:int -> float
(** The "mechanical lifting" of Section 1.1's tightness discussion: a
    lower bound [Ω(h(Δ))] on the truly local complexity (on balanced
    regular trees) lifts to [Ω(min(h(Δ), log_Δ n))] for every [Δ] and,
    balancing the two terms by solving [Δ^{h(Δ)} = n], to [Ω(h(g(n)))] as
    a function of [n] alone — the same [g] as in the upper-bound
    transformation, which is exactly why matching truly local bounds give
    matching bounds on trees (conditional optimality). This evaluates
    [h(g(n))]. *)

val choose_k : f:f -> n:int -> int
(** [max 2 (round (g(n)))] — the parameter fed to rake-and-compress by
    Theorem 12's proof ([k := g(n)]). *)

val choose_k_arb : f:f -> n:int -> a:int -> rho:int -> int
(** [max (5a) (round (g(n)^ρ))] — the parameter of Theorem 15's proof
    ([k := g(n)^ρ], subject to the [5a <= k] requirement). *)
