module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Span = Tl_obs.Span

type 'l report = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  total_rounds : int;
  valid : bool;
  k : int;
  violations : Tl_problems.Nec.violation list;
}

let finish problem graph labeling cost k =
  (* referee check: Definition 6 validation of the produced labeling *)
  let violations =
    Span.with_span "validate" (fun () ->
        let v = Tl_problems.Nec.validate problem graph labeling in
        Span.add_counter "violations" (List.length v);
        v)
  in
  {
    labeling;
    cost;
    total_rounds = Round_cost.total cost;
    valid = violations = [];
    k;
    violations;
  }

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let coloring_spec =
  {
    Theorem1.problem = Tl_problems.Coloring.problem_deg_plus_one;
    base_algorithm = Tl_symmetry.Algos.deg_plus_one_coloring;
    solve_edge_list = Tl_problems.Coloring.solve_edge_list;
  }

let matching_spec =
  {
    Theorem2.problem = Tl_problems.Matching.problem;
    base_algorithm = Tl_symmetry.Algos.maximal_matching;
    solve_node_list = Tl_problems.Matching.solve_node_list;
  }

let edge_coloring_spec =
  {
    Theorem2.problem = Tl_problems.Edge_coloring.problem;
    base_algorithm = Tl_symmetry.Algos.edge_coloring;
    solve_node_list = Tl_problems.Edge_coloring.solve_node_list;
  }

let mis_on_tree ?k ~tree ~ids () =
  let r =
    Theorem1.run ?k ~spec:mis_spec ~tree ~ids ~f:Complexity.f_linear ()
  in
  finish Tl_problems.Mis.problem tree r.labeling r.cost r.k

let coloring_on_tree ?k ~tree ~ids () =
  let r =
    Theorem1.run ?k ~spec:coloring_spec ~tree ~ids ~f:Complexity.f_linear ()
  in
  finish Tl_problems.Coloring.problem_deg_plus_one tree r.labeling r.cost r.k

let delta_coloring_on_tree ?k ~tree ~ids () =
  let r =
    Theorem1.run ?k ~spec:coloring_spec ~tree ~ids ~f:Complexity.f_linear ()
  in
  let delta = Graph.max_degree tree in
  finish
    (Tl_problems.Coloring.problem_delta_plus_one ~delta)
    tree r.labeling r.cost r.k

let sinkless_orientation_on_tree ~tree ~ids () =
  let labeling, cost = Sinkless.solve_on_tree tree ~ids in
  finish Tl_problems.Orientation.problem tree labeling cost 2

let matching_on_graph ?rho ?k ~graph ~a ~ids () =
  let r =
    Theorem2.run ?rho ?k ~spec:matching_spec ~graph ~a ~ids
      ~f:Complexity.f_linear ()
  in
  finish Tl_problems.Matching.problem graph r.labeling r.cost r.k

let edge_coloring_on_graph ?rho ?k ~graph ~a ~ids () =
  let r =
    Theorem2.run ?rho ?k ~spec:edge_coloring_spec ~graph ~a ~ids
      ~f:(Complexity.f_polylog ~exponent:12.0) ()
  in
  finish Tl_problems.Edge_coloring.problem graph r.labeling r.cost r.k

let two_delta_edge_coloring_on_graph ?rho ?k ~graph ~a ~ids () =
  let r =
    Theorem2.run ?rho ?k ~spec:edge_coloring_spec ~graph ~a ~ids
      ~f:(Complexity.f_polylog ~exponent:12.0) ()
  in
  let delta = Graph.max_degree graph in
  finish
    (Tl_problems.Edge_coloring.problem_two_delta ~delta)
    graph r.labeling r.cost r.k

let direct problem algo ~graph ~ids =
  let labeling = Labeling.create graph in
  let sg = Semi_graph.of_graph graph in
  let cost = Round_cost.create () in
  Span.with_span "base" (fun () ->
      Round_cost.charge cost "base:A(G)" (algo sg ~ids labeling));
  finish problem graph labeling cost 0

let mis_direct ~graph ~ids =
  direct Tl_problems.Mis.problem Tl_symmetry.Algos.mis ~graph ~ids

let coloring_direct ~graph ~ids =
  direct Tl_problems.Coloring.problem_deg_plus_one
    Tl_symmetry.Algos.deg_plus_one_coloring ~graph ~ids

let matching_direct ~graph ~ids =
  direct Tl_problems.Matching.problem Tl_symmetry.Algos.maximal_matching ~graph
    ~ids

let edge_coloring_direct ~graph ~ids =
  direct Tl_problems.Edge_coloring.problem Tl_symmetry.Algos.edge_coloring
    ~graph ~ids
