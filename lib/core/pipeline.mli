(** Ready-made end-to-end pipelines: each of the four flagship problems
    wired to its base algorithm, list-variant solver and default
    complexity model. These are the entry points used by the examples,
    the CLI and the experiments. *)

type 'l report = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  total_rounds : int;
  valid : bool;  (** Definition 6 validation on the input graph. *)
  k : int;  (** decomposition parameter actually used *)
  violations : Tl_problems.Nec.violation list;
}

(** {1 Theorem 12 pipelines (trees)} *)

val mis_on_tree :
  ?k:int -> tree:Tl_graph.Graph.t -> ids:int array -> unit ->
  Tl_problems.Mis.label report
(** MIS on a tree via Theorem 12. Default [k] from the paper's
    [f(Δ) = Θ(Δ)] model (the tight truly local complexity of MIS), i.e.
    [k·ln k = ln n] giving the [O(log n / log log n)] bound of [BE10]. *)

val coloring_on_tree :
  ?k:int -> tree:Tl_graph.Graph.t -> ids:int array -> unit ->
  Tl_problems.Coloring.label report
(** (deg+1)-vertex coloring on a tree via Theorem 12. *)

val delta_coloring_on_tree :
  ?k:int -> tree:Tl_graph.Graph.t -> ids:int array -> unit ->
  Tl_problems.Coloring.label report
(** (Δ+1)-vertex coloring on a tree: the (deg+1) pipeline validated
    against the (Δ+1) constraints (a (deg+1) solution always is one). *)

val sinkless_orientation_on_tree :
  tree:Tl_graph.Graph.t -> ids:int array -> unit ->
  Tl_problems.Orientation.label report
(** Sinkless orientation on trees in Θ(log n) rounds ({!Sinkless}) —
    the paper's example of a problem with a nontrivial tight bound. *)

(** {1 Theorem 15 pipelines (bounded arboricity; trees are [a = 1])} *)

val matching_on_graph :
  ?rho:int -> ?k:int -> graph:Tl_graph.Graph.t -> a:int -> ids:int array ->
  unit -> Tl_problems.Matching.label report
(** Maximal matching via Theorem 15 with the Section 5.2 encoding;
    reproves the [O(log n / log log n)] bound on trees ([a = 1]). *)

val edge_coloring_on_graph :
  ?rho:int -> ?k:int -> graph:Tl_graph.Graph.t -> a:int -> ids:int array ->
  unit -> Tl_problems.Edge_coloring.label report
(** (edge-degree+1)-edge coloring via Theorem 15 with the Section 5.1
    encoding — the executable counterpart of Theorem 3. *)

val two_delta_edge_coloring_on_graph :
  ?rho:int -> ?k:int -> graph:Tl_graph.Graph.t -> a:int -> ids:int array ->
  unit -> Tl_problems.Edge_coloring.label report
(** (2Δ-1)-edge coloring: the (edge-degree+1) pipeline validated against
    the explicit (2Δ-1) palette (Theorem 3 covers both). *)

(** {1 Direct baselines}

    The base algorithms run directly on the whole graph — the
    [O(f(Δ) + log* n)] upper bound the transformation improves upon when
    [Δ] is large. *)

val mis_direct :
  graph:Tl_graph.Graph.t -> ids:int array -> Tl_problems.Mis.label report

val coloring_direct :
  graph:Tl_graph.Graph.t -> ids:int array -> Tl_problems.Coloring.label report

val matching_direct :
  graph:Tl_graph.Graph.t -> ids:int array -> Tl_problems.Matching.label report

val edge_coloring_direct :
  graph:Tl_graph.Graph.t -> ids:int array -> Tl_problems.Edge_coloring.label report
