module Graph = Tl_graph.Graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Rake_compress = Tl_decompose.Rake_compress
module Orientation = Tl_problems.Orientation

let solve_on_tree tree ~ids =
  let cost = Round_cost.create () in
  let rc =
    Tl_obs.Span.with_span "decompose" (fun () ->
        let rc = Rake_compress.run tree ~k:2 ~ids in
        Round_cost.charge cost "decompose"
          (Rake_compress.decomposition_rounds rc);
        rc)
  in
  let labeling = Labeling.create tree in
  (* orient each edge from its higher endpoint toward its lower endpoint *)
  Tl_obs.Span.with_span "orient" (fun () ->
      Graph.iter_edges
        (fun e _ ->
          let hi = Rake_compress.higher_endpoint rc e in
          let lo = Rake_compress.lower_endpoint rc e in
          Labeling.set labeling (Graph.half_edge tree ~edge:e ~node:hi)
            Orientation.Out;
          Labeling.set labeling (Graph.half_edge tree ~edge:e ~node:lo)
            Orientation.In)
        tree;
      Round_cost.charge cost "orient" 1);
  (labeling, cost)
