(** Sinkless orientation on trees in [Θ(log n)] LOCAL rounds.

    Sinkless orientation — orient every edge so that no node of degree at
    least 3 is a sink — is one of the paper's two flagship examples of a
    problem with known nontrivial tight bounds: [Θ(log n)] deterministic
    [GS17, CKP19], with the lower bound coming from the round-elimination
    fixed point exhibited in [Tl_roundelim] (experiment E13).

    The upper bound implemented here runs rake-and-compress with [k = 2]
    and orients every edge from its higher endpoint toward its lower
    endpoint (in the Section 3 total order). Correctness: a node [v] of
    degree at least 3 was removed while at most 2 of its neighbors were
    still alive (rake requires current degree [<= 1], compress with
    [k = 2] requires current degree [<= 2]), so at least one neighbor lies
    in a strictly earlier layer and the corresponding edge leaves [v].
    The cost is the [O(log n)] decomposition plus one round. *)

val solve_on_tree :
  Tl_graph.Graph.t ->
  ids:int array ->
  Tl_problems.Orientation.label Tl_problems.Labeling.t * Tl_local.Round_cost.t
(** Raises [Invalid_argument] if the graph is not a forest (each
    component is handled independently). The returned labeling satisfies
    {!Tl_problems.Orientation.problem}. *)
