module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Rake_compress = Tl_decompose.Rake_compress
module Span = Tl_obs.Span
module Pool = Tl_engine.Pool

type 'l spec = {
  problem : 'l Tl_problems.Nec.t;
  base_algorithm :
    Tl_graph.Semi_graph.t -> ids:int array -> 'l Tl_problems.Labeling.t -> int;
  solve_edge_list :
    Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> nodes:int list -> unit;
}

type 'l result = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  rc : Tl_decompose.Rake_compress.t;
  k : int;
}

(* Debug-mode owner check for the pooled gather-solve: every half-edge a
   component's solver may write is claimed by exactly one component
   (components are node-disjoint and a node's half-edges belong to it
   alone), so concurrent [solve_edge_list] calls never collide. Verifies
   that claim explicitly before fanning out. *)
let assert_disjoint_owners tree components =
  let owner = Array.make (Graph.n_half_edges tree) (-1) in
  Array.iteri
    (fun c component ->
      List.iter
        (fun v ->
          List.iter
            (fun h ->
              if owner.(h) >= 0 then
                failwith
                  (Printf.sprintf
                     "Theorem1: half-edge %d owned by components %d and %d" h
                     owner.(h) c);
              owner.(h) <- c)
            (Graph.half_edges_of tree v))
        component)
    components

(* Scoped engine-mode override: the theorem phases drive many engine
   runs (base algorithm, color reductions) through call chains that do
   not thread a mode, so the backend knob retargets the process default
   for the duration of the run and restores it even on raise. *)
let with_engine engine f =
  match engine with
  | None -> f ()
  | Some m ->
    let saved = !Tl_engine.Engine.default_mode in
    Tl_engine.Engine.default_mode := m;
    Fun.protect
      ~finally:(fun () -> Tl_engine.Engine.default_mode := saved)
      f

let run_inner ?(check_invariants = false) ?workers ?k ~spec ~tree ~ids ~f () =
  let n = Graph.n_nodes tree in
  let pool = Pool.create ?workers () in
  let k =
    match k with Some k -> k | None -> Complexity.choose_k ~f ~n
  in
  let assert_partial labeling phase =
    if check_invariants then
      match Tl_problems.Nec.validate_partial spec.problem tree labeling with
      | [] -> ()
      | v :: _ ->
        failwith
          (Format.asprintf "Theorem1.run: invariant broken after %s: %a"
             phase Tl_problems.Nec.pp_violation v)
  in
  Span.set_attr "k" (string_of_int k);
  let cost = Round_cost.create () in
  (* Phase 1: rake-and-compress decomposition (Algorithm 1). *)
  let rc =
    Span.with_span "decompose" (fun () ->
        let rc = Rake_compress.run tree ~k ~ids in
        Round_cost.charge cost "decompose"
          (Rake_compress.decomposition_rounds rc);
        rc)
  in
  let labeling = Labeling.create tree in
  (* Phase 2: the base algorithm A on T_C (Algorithm 2, line 1). *)
  let t_c = Rake_compress.t_c rc in
  Span.with_span "base" (fun () ->
      Round_cost.charge cost "base:A(T_C)" (spec.base_algorithm t_c ~ids labeling));
  assert_partial labeling "base:A(T_C)";
  (* Phase 3: gather-and-solve Π× on each component of T_R (line 2). All
     components are processed in parallel; the LOCAL cost is the largest
     gather+redistribute distance, i.e. twice the eccentricity of the
     collecting (highest) node. With [workers > 1] the components are
     fanned over a deterministic domain pool (they are node-disjoint, so
     the labeling writes never collide); the sequential commit order
     keeps the charged maximum and any failure bit-identical to the
     sequential path. *)
  let t_r = Rake_compress.t_r rc in
  let components = Semi_graph.underlying_components t_r in
  (* Flat per-component solve: T_R is compiled once into a CSR snapshot
     (memoized — repeated runs over an unchanged view reuse it) and the
     restricted BFS runs on preallocated int-array scratch: a distance
     slab and a flat ring-free queue per worker, reset via the queue
     prefix after each component. No per-node lists, no Queue cells —
     the BFS that dominated the gather phase at n=1e6 is allocation-free
     after setup. Eccentricity is order-independent, so the value is
     bit-identical to the old list-based BFS. *)
  let topo_r = Tl_engine.Topology.compile_cached t_r in
  let ecc_within dist queue src =
    let off = topo_r.Tl_engine.Topology.off
    and adj = topo_r.Tl_engine.Topology.adj in
    dist.(src) <- 0;
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    let far = ref 0 in
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      let du = dist.(v) + 1 in
      for j = off.(v) to off.(v + 1) - 1 do
        let u = adj.(j) in
        if dist.(u) < 0 then begin
          dist.(u) <- du;
          if du > !far then far := du;
          queue.(!tail) <- u;
          incr tail
        end
      done
    done;
    for i = 0 to !tail - 1 do
      dist.(queue.(i)) <- -1
    done;
    !far
  in
  (* Gather charge + solve of one component; returns 2 * eccentricity. *)
  let solve_component dist queue component =
    match component with
    | [] -> 0
    | first :: _ ->
      let highest =
        List.fold_left
          (fun acc v -> if Rake_compress.is_higher rc v acc then v else acc)
          first component
      in
      let ecc = ecc_within dist queue highest in
      spec.solve_edge_list tree labeling ~nodes:component;
      2 * ecc
  in
  Span.with_span "gather-solve" (fun () ->
      Span.add_counter "components" (Array.length components);
      Span.add_counter "pool:workers" (Pool.workers pool);
      Span.add_counter "pool:tasks" (Array.length components);
      let max_gather = ref 0 in
      if Pool.workers pool <= 1 || Array.length components < 2 then begin
        let dist = Array.make n (-1) in
        let queue = Array.make n 0 in
        Array.iter
          (fun component ->
            if component <> [] then begin
              let g = solve_component dist queue component in
              if g > !max_gather then max_gather := g;
              assert_partial labeling "gather-solve(T_R) component"
            end)
          components
      end
      else begin
        if check_invariants then assert_disjoint_owners tree components;
        let dists =
          Array.init (Pool.workers pool) (fun _ -> Array.make n (-1))
        in
        let queues =
          Array.init (Pool.workers pool) (fun _ -> Array.make n 0)
        in
        (* Workers write only their own scratch and the half-edges of
           their own components; spans are untouched off the coordinating
           domain. The commit fold runs in task order, and the workers
           are parked team members — no domains are spawned here. *)
        Pool.prewarm pool;
        Pool.map_commit pool ~tasks:components
          ~work:(fun ~worker ~index:_ component ->
            solve_component dists.(worker) queues.(worker) component)
          ~commit:(fun ~index:_ g -> if g > !max_gather then max_gather := g);
        (* Under pooling the proof invariant is checked once after the
           whole phase: mid-phase checks would observe other components'
           concurrent progress. *)
        assert_partial labeling "gather-solve(T_R)"
      end;
      Round_cost.charge cost "gather-solve(T_R)" !max_gather);
  { labeling; cost; rc; k }

let run ?check_invariants ?workers ?engine ?k ~spec ~tree ~ids ~f () =
  with_engine engine (fun () ->
      run_inner ?check_invariants ?workers ?k ~spec ~tree ~ids ~f ())
