(** The tree transformation — Theorem 12 (the formal Theorem 1) and its
    Algorithm 2.

    Given a node-edge-checkable problem [Π] together with (a) a truly
    local base algorithm [A] solving [Π] on semi-graphs in
    [O(f(Δ) + log* n)] rounds and (b) a sequential solver for the
    edge-list variant [Π×], the transformation solves [Π] on any tree in
    [O(f(g(n)) + log* n)] rounds:

    + run rake-and-compress (Algorithm 1) with [k = g(n)];
    + run [A] on the semi-graph [T_C] of compressed nodes, whose
      underlying degree is at most [k] by Lemma 10;
    + in parallel for every connected component of [T_R] (each of diameter
      [O(log_k n)] by Lemma 11), let its highest node gather the
      component, solve [Π×] against the already-fixed boundary labels,
      and redistribute.

    Every phase charges its exact LOCAL cost to the returned ledger. *)

type 'l spec = {
  problem : 'l Tl_problems.Nec.t;
  base_algorithm :
    Tl_graph.Semi_graph.t -> ids:int array -> 'l Tl_problems.Labeling.t -> int;
      (** The algorithm [A]: labels all half-edges of the semi-graph,
          returns the LOCAL rounds used. *)
  solve_edge_list :
    Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> nodes:int list -> unit;
      (** The [Π×] solver: sequentially labels all half-edges at [nodes],
          reading already-fixed labels as the lists [h_in]. *)
}

type 'l result = {
  labeling : 'l Tl_problems.Labeling.t;  (** complete solution on the tree *)
  cost : Tl_local.Round_cost.t;
  rc : Tl_decompose.Rake_compress.t;  (** the decomposition used *)
  k : int;
}

val run :
  ?check_invariants:bool ->
  ?workers:int ->
  ?engine:Tl_engine.Engine.mode ->
  ?k:int ->
  spec:'l spec ->
  tree:Tl_graph.Graph.t ->
  ids:int array ->
  f:Complexity.f ->
  unit ->
  'l result
(** Transform and execute. [k] defaults to [g(n)] computed from [f]
    ({!Complexity.choose_k}); [f] should be (an upper bound on) the truly
    local complexity of [base_algorithm]. Forests are accepted (every
    phase operates per component); non-forests raise.
    With [~check_invariants:true] (default false), the inductive
    invariant of Theorem 12's proof — every configuration completed so
    far is valid — is asserted after the base phase and after every
    component completion ({!Tl_problems.Nec.validate_partial}).

    [workers] (default {!Tl_engine.Pool.default_workers}, i.e. the CLI's
    [--pool N]) fans the phase-3 gather-solve over that many OCaml 5
    domains via {!Tl_engine.Pool}: each worker owns its own BFS scratch
    and writes only the half-edges of its own (node-disjoint) components,
    and the eccentricity maximum is committed in component order — the
    labeling and the ledger are bit-identical to the sequential run for
    any worker count. Under pooling with [~check_invariants:true], the
    component ownership is asserted disjoint before fan-out and the
    proof invariant is checked once after the phase instead of after
    every component.

    [engine] scopes {!Tl_engine.Engine.default_mode} to the run: every
    engine-backed step inside (the base algorithm's color reductions,
    any runtime simulation) executes on that backend — e.g.
    [~engine:(Shard 8)] runs the whole theorem end-to-end on the
    sharded halo-exchange backend. Results are bit-identical across
    backends (the engine's determinism guarantee), so the knob only
    selects the execution substrate.

    Phases charged to the ledger: ["decompose"], ["base:A(T_C)"],
    ["gather-solve(T_R)"]. Span counters under ["gather-solve"]:
    [components], [pool:workers], [pool:tasks]. *)
