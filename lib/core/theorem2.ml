module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Arb_decompose = Tl_decompose.Arb_decompose
module Span = Tl_obs.Span
module Pool = Tl_engine.Pool

type 'l spec = {
  problem : 'l Tl_problems.Nec.t;
  base_algorithm :
    Tl_graph.Semi_graph.t -> ids:int array -> 'l Tl_problems.Labeling.t -> int;
  solve_node_list :
    Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> edges:int list -> unit;
}

type 'l result = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  decomposition : Tl_decompose.Arb_decompose.t;
  k : int;
  rho : int;
}

(* Debug-mode owner check for the pooled star solving: within one class
   [F_{i,j}] the stars are node-disjoint (the star property of the
   decomposition), so each node — hence each half-edge a solver may read
   or write — belongs to exactly one star of the class. *)
let assert_disjoint_stars graph stars =
  let owner = Array.make (Graph.n_nodes graph) (-1) in
  Array.iteri
    (fun s (center, edges) ->
      let claim v =
        if owner.(v) >= 0 && owner.(v) <> s then
          failwith
            (Printf.sprintf "Theorem2: node %d shared by stars %d and %d" v
               owner.(v) s);
        owner.(v) <- s
      in
      claim center;
      List.iter
        (fun e ->
          let u, v = Graph.edge_endpoints graph e in
          claim u;
          claim v)
        edges)
    stars

(* Same scoped engine-mode override as Theorem1.with_engine. *)
let with_engine engine f =
  match engine with
  | None -> f ()
  | Some m ->
    let saved = !Tl_engine.Engine.default_mode in
    Tl_engine.Engine.default_mode := m;
    Fun.protect
      ~finally:(fun () -> Tl_engine.Engine.default_mode := saved)
      f

let run_inner ?(check_invariants = false) ?workers ?(rho = 2) ?k ~spec ~graph
    ~a ~ids ~f () =
  if a < 1 then invalid_arg "Theorem2.run: a < 1";
  let pool = Pool.create ?workers () in
  let n = Graph.n_nodes graph in
  let k =
    match k with
    | Some k -> k
    | None -> Complexity.choose_k_arb ~f ~n ~a ~rho
  in
  let assert_partial labeling phase =
    if check_invariants then
      match Tl_problems.Nec.validate_partial spec.problem graph labeling with
      | [] -> ()
      | v :: _ ->
        failwith
          (Format.asprintf "Theorem2.run: invariant broken after %s: %a"
             phase Tl_problems.Nec.pp_violation v)
  in
  Span.set_attr "k" (string_of_int k);
  Span.set_attr "a" (string_of_int a);
  let cost = Round_cost.create () in
  (* Phase 1: Decomposition (Algorithm 3) with b = 2a, plus the F_i split
     and the 3-coloring of the forests. The coloring work happens inside
     Arb_decompose.run (its "cv3-forests" sub-span); its LOCAL rounds are
     accounted to the "forest-coloring" phase span below. *)
  let d =
    Span.with_span "decompose" (fun () ->
        let d = Arb_decompose.run graph ~a ~k ~ids in
        Round_cost.charge cost "decompose"
          (Arb_decompose.decomposition_rounds d);
        d)
  in
  Span.with_span "forest-coloring" (fun () ->
      Round_cost.charge cost "forest-3-coloring" (Arb_decompose.cv_rounds d));
  let labeling = Labeling.create graph in
  (* Phase 2: the base algorithm A on G[E₂] (Algorithm 4, line 1). *)
  let g_e2 = Arb_decompose.g_e2 d in
  Span.with_span "base" (fun () ->
      Round_cost.charge cost "base:A(G[E2])"
        (spec.base_algorithm g_e2 ~ids labeling));
  assert_partial labeling "base:A(G[E2])";
  (* Phase 3: Π* on the star families F_{i,j}, sequentially over the 6a
     classes; within a class the stars are node-disjoint and each is
     solved in 2 rounds (gather + redistribute at distance 1). The
     node-disjointness is exactly what lets a class's stars fan over the
     domain pool: no two stars of a class touch the same half-edge, and
     classes stay ordered (later classes read earlier classes' labels). *)
  let b = Arb_decompose.b d in
  Span.with_span "stars" (fun () ->
      Span.add_counter "classes" (3 * b);
      Span.add_counter "pool:workers" (Pool.workers pool);
      (* park the team members before the 6a per-class fan-outs: the
         many small maps below then never pay a domain spawn (the old
         per-map spawn discipline cost one spawn+join per class) *)
      if Pool.workers pool > 1 then Pool.prewarm pool;
      for i = 1 to b do
        for j = 1 to 3 do
          let stars = Array.of_list (Arb_decompose.stars d ~i ~j) in
          Span.add_counter "pool:tasks" (Array.length stars);
          if Pool.workers pool <= 1 || Array.length stars < 2 then
            Array.iter
              (fun (_center, edges) ->
                spec.solve_node_list graph labeling ~edges)
              stars
          else begin
            if check_invariants then assert_disjoint_stars graph stars;
            Pool.map_commit pool ~tasks:stars
              ~work:(fun ~worker:_ ~index:_ (_center, edges) ->
                spec.solve_node_list graph labeling ~edges)
              ~commit:(fun ~index:_ () -> ())
          end;
          assert_partial labeling (Printf.sprintf "stars F_%d,%d" i j);
          Round_cost.charge cost "gather-solve(stars)" 2
        done
      done);
  { labeling; cost; decomposition = d; k; rho }

let run ?check_invariants ?workers ?engine ?rho ?k ~spec ~graph ~a ~ids ~f () =
  with_engine engine (fun () ->
      run_inner ?check_invariants ?workers ?rho ?k ~spec ~graph ~a ~ids ~f ())
