module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling
module Round_cost = Tl_local.Round_cost
module Arb_decompose = Tl_decompose.Arb_decompose
module Span = Tl_obs.Span

type 'l spec = {
  problem : 'l Tl_problems.Nec.t;
  base_algorithm :
    Tl_graph.Semi_graph.t -> ids:int array -> 'l Tl_problems.Labeling.t -> int;
  solve_node_list :
    Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> edges:int list -> unit;
}

type 'l result = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  decomposition : Tl_decompose.Arb_decompose.t;
  k : int;
  rho : int;
}

let run ?(check_invariants = false) ?(rho = 2) ?k ~spec ~graph ~a ~ids ~f () =
  if a < 1 then invalid_arg "Theorem2.run: a < 1";
  let n = Graph.n_nodes graph in
  let k =
    match k with
    | Some k -> k
    | None -> Complexity.choose_k_arb ~f ~n ~a ~rho
  in
  let assert_partial labeling phase =
    if check_invariants then
      match Tl_problems.Nec.validate_partial spec.problem graph labeling with
      | [] -> ()
      | v :: _ ->
        failwith
          (Format.asprintf "Theorem2.run: invariant broken after %s: %a"
             phase Tl_problems.Nec.pp_violation v)
  in
  Span.set_attr "k" (string_of_int k);
  Span.set_attr "a" (string_of_int a);
  let cost = Round_cost.create () in
  (* Phase 1: Decomposition (Algorithm 3) with b = 2a, plus the F_i split
     and the 3-coloring of the forests. The coloring work happens inside
     Arb_decompose.run (its "cv3-forests" sub-span); its LOCAL rounds are
     accounted to the "forest-coloring" phase span below. *)
  let d =
    Span.with_span "decompose" (fun () ->
        let d = Arb_decompose.run graph ~a ~k ~ids in
        Round_cost.charge cost "decompose"
          (Arb_decompose.decomposition_rounds d);
        d)
  in
  Span.with_span "forest-coloring" (fun () ->
      Round_cost.charge cost "forest-3-coloring" (Arb_decompose.cv_rounds d));
  let labeling = Labeling.create graph in
  (* Phase 2: the base algorithm A on G[E₂] (Algorithm 4, line 1). *)
  let g_e2 = Arb_decompose.g_e2 d in
  Span.with_span "base" (fun () ->
      Round_cost.charge cost "base:A(G[E2])"
        (spec.base_algorithm g_e2 ~ids labeling));
  assert_partial labeling "base:A(G[E2])";
  (* Phase 3: Π* on the star families F_{i,j}, sequentially over the 6a
     classes; within a class the stars are node-disjoint and each is
     solved in 2 rounds (gather + redistribute at distance 1). *)
  let b = Arb_decompose.b d in
  Span.with_span "stars" (fun () ->
      Span.add_counter "classes" (3 * b);
      for i = 1 to b do
        for j = 1 to 3 do
          List.iter
            (fun (_center, edges) -> spec.solve_node_list graph labeling ~edges)
            (Arb_decompose.stars d ~i ~j);
          assert_partial labeling (Printf.sprintf "stars F_%d,%d" i j);
          Round_cost.charge cost "gather-solve(stars)" 2
        done
      done);
  { labeling; cost; decomposition = d; k; rho }
