(** The bounded-arboricity transformation — Theorem 15 (the formal
    Theorem 2) and its Algorithm 4.

    Given a node-edge-checkable problem [Π] with (a) a truly local base
    algorithm [A] and (b) a sequential solver for the node-list variant
    [Π*], the transformation solves [Π] on any graph of arboricity at
    most [a <= k/5] in [O(a + ρ·f(g(n)^ρ)/(ρ − log_{g(n)} a) + log* n)]
    rounds:

    + run the Decomposition process (Algorithm 3) with [b = 2a] and
      [k = g(n)^ρ];
    + run [A] on the semi-graph [G[E₂]] of typical edges, whose degree is
      at most [k] by Lemma 14;
    + split the atypical edges into [2a] forests [F_i], 3-color each in
      [O(log* n)] rounds, and for each of the [6a] classes [F_{i,j}] (in
      order) solve [Π*] on its star components in O(1) rounds each —
      the star center gathers, solves against the fixed labels, and
      redistributes. *)

type 'l spec = {
  problem : 'l Tl_problems.Nec.t;
  base_algorithm :
    Tl_graph.Semi_graph.t -> ids:int array -> 'l Tl_problems.Labeling.t -> int;
  solve_node_list :
    Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> edges:int list -> unit;
      (** The [Π*] solver: sequentially labels both half-edges of each
          edge, reading already-fixed labels at the endpoints as the lists
          [h_in]. *)
}

type 'l result = {
  labeling : 'l Tl_problems.Labeling.t;
  cost : Tl_local.Round_cost.t;
  decomposition : Tl_decompose.Arb_decompose.t;
  k : int;
  rho : int;
}

val run :
  ?check_invariants:bool ->
  ?workers:int ->
  ?engine:Tl_engine.Engine.mode ->
  ?rho:int ->
  ?k:int ->
  spec:'l spec ->
  graph:Tl_graph.Graph.t ->
  a:int ->
  ids:int array ->
  f:Complexity.f ->
  unit ->
  'l result
(** Transform and execute on a graph of arboricity at most [a]. [rho]
    defaults to 2 (the value used to derive Theorem 3); [k] defaults to
    [max (5a) g(n)^ρ] ({!Complexity.choose_k_arb}). With
    [~check_invariants:true], the Theorem 15 proof's inductive invariant
    is asserted after the base phase and after each star family
    ({!Tl_problems.Nec.validate_partial}).

    [workers] (default {!Tl_engine.Pool.default_workers}) fans each star
    class [F_{i,j}] over that many OCaml 5 domains via
    {!Tl_engine.Pool}: stars of a class are node-disjoint (asserted
    under [check_invariants] before fan-out), classes stay strictly
    ordered, and results are bit-identical to the sequential run for any
    worker count.

    [engine] scopes {!Tl_engine.Engine.default_mode} to the run, exactly
    like {!Tl_core.Theorem1.run}: [~engine:(Shard 8)] executes every
    engine-backed step on the sharded halo-exchange backend with
    bit-identical results.

    Phases charged: ["decompose"], ["forest-3-coloring"], ["base:A(G[E2])"],
    ["gather-solve(stars)"] (2 rounds per [F_{i,j}] slot, [6a] slots).
    Span counters under ["stars"]: [classes], [pool:workers],
    [pool:tasks] (accumulated over the classes). *)
