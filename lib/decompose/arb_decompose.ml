module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Semi_graph = Tl_graph.Semi_graph

type t = {
  graph : Graph.t;
  a : int;
  b : int;
  k : int;
  ids : int array;
  layer_of : int array; (* 1-based marking iteration *)
  iterations : int;
  atypical_of : bool array; (* per edge *)
  f_index_of : int array; (* per edge: 1..2a for atypical, 0 otherwise *)
  star_j : int array; (* per edge: 1..3 for atypical (color of higher end), 0 otherwise *)
  cv_rounds : int;
}

let lemma13_bound_of ~a ~k ~n =
  (* ⌈10 log_{k/a} n⌉ + 1 *)
  if n <= 1 then 1
  else
    let r = 10.0 *. log (float_of_int n) /. log (float_of_int k /. float_of_int a) in
    int_of_float (Float.ceil (r -. 1e-9)) + 1

let run graph ~a ~k ~ids =
  if a < 1 then invalid_arg "Arb_decompose.run: a < 1";
  if k < 5 * a then invalid_arg "Arb_decompose.run: k < 5a";
  let n = Graph.n_nodes graph in
  if Array.length ids <> n then invalid_arg "Arb_decompose.run: bad ids";
  Tl_obs.Span.with_span "arb-decompose"
    ~attrs:
      [ ("a", string_of_int a); ("k", string_of_int k); ("n", string_of_int n) ]
  @@ fun () ->
  let b = 2 * a in
  let m = Graph.n_edges graph in
  let layer_of = Array.make n 0 in
  let alive = Array.make n true in
  let deg = Array.init n (Graph.degree graph) in
  let atypical_of = Array.make m false in
  let remaining = ref n in
  let iteration = ref 0 in
  let bound = lemma13_bound_of ~a ~k ~n in
  Tl_obs.Span.with_span "peel" (fun () ->
  while !remaining > 0 do
    incr iteration;
    if !iteration > bound then
      failwith
        "Arb_decompose.run: Lemma 13 bound exceeded (arboricity larger than a?)";
    let i = !iteration in
    (* Compress(G[V_{i-1}], b, k), decided against the iteration-start
       state and applied simultaneously. *)
    let marked =
      List.filter
        (fun v ->
          alive.(v)
          && deg.(v) <= k
          &&
          let high = ref 0 in
          Array.iter
            (fun u -> if alive.(u) && deg.(u) > k then incr high)
            (Graph.neighbors graph v);
          !high <= b)
        (List.init n Fun.id)
    in
    (* record atypical edges: for each marked u, edges to still-alive
       neighbors of degree > k (those neighbors are necessarily higher) *)
    List.iter
      (fun u ->
        let adj = Graph.neighbors graph u in
        let inc = Graph.incident graph u in
        Array.iteri
          (fun idx v ->
            if alive.(v) && deg.(v) > k then atypical_of.(inc.(idx)) <- true)
          adj)
      marked;
    List.iter
      (fun v ->
        layer_of.(v) <- i;
        alive.(v) <- false;
        decr remaining)
      marked;
    List.iter
      (fun v ->
        Array.iter
          (fun u -> if alive.(u) then deg.(u) <- deg.(u) - 1)
          (Graph.neighbors graph v))
      marked
  done;
  Tl_obs.Span.add_counter "iterations" !iteration);
  let iterations = !iteration in
  (* total order helpers on the freshly computed layers *)
  let is_higher u v =
    if layer_of.(u) <> layer_of.(v) then layer_of.(u) > layer_of.(v)
    else ids.(u) > ids.(v)
  in
  let higher_of e =
    let u, v = Graph.edge_endpoints graph e in
    if is_higher u v then u else v
  in
  let lower_of e =
    let u, v = Graph.edge_endpoints graph e in
    if is_higher u v then v else u
  in
  (* F_i split: each lower endpoint colors its atypical edges 1..2a *)
  let f_index_of = Array.make m 0 in
  let next_color = Array.make n 1 in
  for e = 0 to m - 1 do
    if atypical_of.(e) then begin
      let lo = lower_of e in
      f_index_of.(e) <- next_color.(lo);
      next_color.(lo) <- next_color.(lo) + 1;
      (* the compress condition guarantees at most b atypical edges per
         lower endpoint *)
      assert (f_index_of.(e) <= b)
    end
  done;
  (* 3-color each forest F_i with Cole-Vishkin; forests are node-disjoint
     per i only in their edge sets, so colors are per (node, i). *)
  let star_j = Array.make m 0 in
  let cv_rounds = ref 0 in
  Tl_obs.Span.with_span "cv3-forests" (fun () ->
  for i = 1 to b do
    (* parent pointer in F_i: lower endpoint -> higher endpoint *)
    let parent = Array.make n (-1) in
    let in_forest = Array.make n false in
    for e = 0 to m - 1 do
      if f_index_of.(e) = i then begin
        let lo = lower_of e and hi = higher_of e in
        parent.(lo) <- hi;
        in_forest.(lo) <- true;
        in_forest.(hi) <- true
      end
    done;
    let nodes = ref [] in
    for v = n - 1 downto 0 do
      if in_forest.(v) then nodes := v :: !nodes
    done;
    if !nodes <> [] then begin
      let colors, rounds =
        Tl_symmetry.Cole_vishkin.color3 ~nodes:!nodes ~parent ~ids
      in
      if rounds > !cv_rounds then cv_rounds := rounds;
      for e = 0 to m - 1 do
        if f_index_of.(e) = i then star_j.(e) <- colors.(higher_of e) + 1
      done
    end
  done;
  Tl_obs.Span.add_counter "cv_rounds" !cv_rounds);
  {
    graph;
    a;
    b;
    k;
    ids;
    layer_of;
    iterations;
    atypical_of;
    f_index_of;
    star_j;
    cv_rounds = !cv_rounds;
  }

let layer t v = t.layer_of.(v)
let iterations t = t.iterations
let a t = t.a
let b t = t.b
let k t = t.k

let is_higher t u v =
  if t.layer_of.(u) <> t.layer_of.(v) then t.layer_of.(u) > t.layer_of.(v)
  else t.ids.(u) > t.ids.(v)

let higher_endpoint t e =
  let u, v = Graph.edge_endpoints t.graph e in
  if is_higher t u v then u else v

let lower_endpoint t e =
  let u, v = Graph.edge_endpoints t.graph e in
  if is_higher t u v then v else u

let decomposition_rounds t = 2 * t.iterations
let cv_rounds t = t.cv_rounds
let atypical t e = t.atypical_of.(e)

let typical_edges t =
  let acc = ref [] in
  for e = Graph.n_edges t.graph - 1 downto 0 do
    if not t.atypical_of.(e) then acc := e :: !acc
  done;
  !acc

let atypical_edges t =
  let acc = ref [] in
  for e = Graph.n_edges t.graph - 1 downto 0 do
    if t.atypical_of.(e) then acc := e :: !acc
  done;
  !acc

let g_e2 t =
  Semi_graph.of_edge_subset t.graph (Array.map not t.atypical_of)

let f_index t e = t.f_index_of.(e)
let star_class t e = (t.f_index_of.(e), t.star_j.(e))

let stars t ~i ~j =
  let by_center = Hashtbl.create 16 in
  Graph.iter_edges
    (fun e _ ->
      if t.f_index_of.(e) = i && t.star_j.(e) = j then begin
        let center = higher_endpoint t e in
        let old = try Hashtbl.find by_center center with Not_found -> [] in
        Hashtbl.replace by_center center (e :: old)
      end)
    t.graph;
  Hashtbl.fold (fun center edges acc -> (center, List.rev edges) :: acc) by_center []
  |> List.sort compare

let out_degree_orientation t =
  Array.init (Graph.n_edges t.graph) (fun e ->
      let u, _v = Graph.edge_endpoints t.graph e in
      (* true iff oriented smaller -> larger, i.e. the smaller endpoint is
         the lower one *)
      lower_endpoint t e = u)

let max_out_degree t =
  let n = Graph.n_nodes t.graph in
  let out = Array.make n 0 in
  Graph.iter_edges
    (fun e _ ->
      let lo = lower_endpoint t e in
      out.(lo) <- out.(lo) + 1)
    t.graph;
  Array.fold_left max 0 out

let check_acyclic_orientation t =
  (* acyclicity: the orientation follows a total order (layer, id), so a
     directed cycle would need a strictly increasing cycle in that order;
     verify directly by checking every edge goes strictly "up" *)
  let strictly_up =
    Graph.fold_edges
      (fun e _ acc ->
        let lo = lower_endpoint t e and hi = higher_endpoint t e in
        acc && is_higher t hi lo && not (is_higher t lo hi))
      t.graph true
  in
  strictly_up && max_out_degree t <= t.k

let lemma13_bound t =
  lemma13_bound_of ~a:t.a ~k:t.k ~n:(Graph.n_nodes t.graph)

let check_lemma13 t = t.iterations <= lemma13_bound t

let typical_max_degree t =
  let n = Graph.n_nodes t.graph in
  let deg = Array.make n 0 in
  Graph.iter_edges
    (fun e (u, v) ->
      if not t.atypical_of.(e) then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    t.graph;
  Array.fold_left max 0 deg

let check_lemma14 t = typical_max_degree t <= t.k

let max_atypical_per_node t =
  let n = Graph.n_nodes t.graph in
  let cnt = Array.make n 0 in
  Graph.iter_edges
    (fun e _ ->
      if t.atypical_of.(e) then begin
        let lo = lower_endpoint t e in
        cnt.(lo) <- cnt.(lo) + 1
      end)
    t.graph;
  Array.fold_left max 0 cnt

let check_atypical_bound t = max_atypical_per_node t <= t.b

let check_forests t =
  let ok = ref true in
  for i = 1 to t.b do
    let edges = ref [] in
    Graph.iter_edges
      (fun e (u, v) -> if t.f_index_of.(e) = i then edges := (u, v) :: !edges)
      t.graph;
    if !edges <> [] then begin
      let nodes = List.concat_map (fun (u, v) -> [ u; v ]) !edges in
      let remap = Hashtbl.create 16 in
      let count = ref 0 in
      List.iter
        (fun v ->
          if not (Hashtbl.mem remap v) then begin
            Hashtbl.add remap v !count;
            incr count
          end)
        nodes;
      let sub =
        Graph.of_edges ~n:!count
          (List.map
             (fun (u, v) -> (Hashtbl.find remap u, Hashtbl.find remap v))
             !edges)
      in
      if not (Props.is_forest sub) then ok := false;
      (* at most one higher neighbor per node within F_i *)
      let higher_count = Array.make (Graph.n_nodes t.graph) 0 in
      Graph.iter_edges
        (fun e _ ->
          if t.f_index_of.(e) = i then begin
            let lo = lower_endpoint t e in
            higher_count.(lo) <- higher_count.(lo) + 1
          end)
        t.graph;
      if Array.exists (fun c -> c > 1) higher_count then ok := false
    end
  done;
  !ok

let check_stars t =
  let ok = ref true in
  for i = 1 to t.b do
    for j = 1 to 3 do
      let sts = stars t ~i ~j in
      let centers = List.map fst sts in
      List.iter
        (fun (center, edges) ->
          (* all edges share [center] as higher endpoint, and no lower
             endpoint is itself a center of this (i, j) class *)
          List.iter
            (fun e ->
              if higher_endpoint t e <> center then ok := false;
              if List.mem (lower_endpoint t e) centers then ok := false)
            edges)
        sts
    done
  done;
  !ok
