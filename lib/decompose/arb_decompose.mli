(** The paper's new decomposition process for bounded-arboricity graphs
    (Section 4, Algorithm 3), with the typical/atypical edge split, the
    [F_i] forests and the [F_{i,j}] star partition used by Theorem 15.

    Parameters: arboricity bound [a], [b = 2a], and [k >= 5a]. The single
    {b Compress(G, b, k)} operation marks a node if its degree is at most
    [k] and at most [b] of its neighbors have degree exceeding [k] —
    unlike [CHL+19], a node may be removed while it still has high-degree
    neighbors, and no rake step is needed. Lemma 13: all nodes are marked
    within [⌈10 log_{k/a} n⌉ + 1] iterations.

    An edge is {e atypical} if, at the time its lower endpoint [u] was
    marked, its higher endpoint still had degree exceeding [k] in the
    remaining graph; each node has at most [b = 2a] atypical edges. The
    typical edges [E₂] induce a graph of maximum degree at most [k]
    (Lemma 14). The atypical edges are split into [2a] forests [F_i] (each
    lower endpoint colors its atypical edges distinctly), each forest is
    3-colored in [O(log* n)] rounds, and [F_{i,j}] (edges of [F_i] whose
    higher endpoint got color [j]) has star components centered at higher
    endpoints. *)

type t

val run : Tl_graph.Graph.t -> a:int -> k:int -> ids:int array -> t
(** Raises [Invalid_argument] if [a < 1] or [k < 5a]; raises [Failure] if
    the Lemma 13 iteration bound is exceeded (e.g. the graph's arboricity
    actually exceeds [a]). *)

(** {1 Layers and order} *)

val layer : t -> int -> int
(** 1-based marking iteration of a node. *)

val iterations : t -> int
val a : t -> int
val b : t -> int
val k : t -> int

val is_higher : t -> int -> int -> bool
val higher_endpoint : t -> int -> int
val lower_endpoint : t -> int -> int

val decomposition_rounds : t -> int
(** LOCAL rounds to compute the layers: 2 per iteration. *)

val cv_rounds : t -> int
(** Rounds of the Cole-Vishkin 3-coloring of the [F_i] forests (they run
    in parallel; the maximum is charged). *)

(** {1 Edge classification} *)

val atypical : t -> int -> bool
val typical_edges : t -> int list
val atypical_edges : t -> int list

val g_e2 : t -> Tl_graph.Semi_graph.t
(** The semi-graph induced by the typical edges (all ranks 2). *)

val f_index : t -> int -> int
(** For an atypical edge, its forest index in [1 .. 2a]; [0] for typical
    edges. *)

val star_class : t -> int -> int * int
(** For an atypical edge, its [(i, j)] with [i ∈ 1..2a], [j ∈ 1..3];
    [(0, 0)] for typical edges. *)

val stars : t -> i:int -> j:int -> (int * int list) list
(** Star components of [G[F_{i,j}]] as [(center, edges)] pairs — the
    center is the common higher endpoint. *)

(** {1 Certificates (Lemmas 13, 14 and the star property)} *)

val lemma13_bound : t -> int
val check_lemma13 : t -> bool

val typical_max_degree : t -> int
val check_lemma14 : t -> bool
(** [typical_max_degree <= k]. *)

val max_atypical_per_node : t -> int
val check_atypical_bound : t -> bool
(** Every node has at most [b = 2a] atypical edges for which it is the
    lower endpoint. *)

val check_forests : t -> bool
(** Every [G[F_i]] is a forest in which each node has at most one higher
    neighbor. *)

val check_stars : t -> bool
(** Every component of every [G[F_{i,j}]] is a star centered at its
    highest node. *)

(** {1 Corollary: bounded-out-degree acyclic orientation}

    Orienting every edge from its lower to its higher endpoint gives an
    acyclic orientation with out-degree at most [k]: when a node was
    marked its remaining degree was at most [k], and all its higher
    neighbors were still alive. This is the Nash-Williams-flavoured
    orientation primitive (compare [BE10]) that the decomposition yields
    for free in [O(log_{k/a} n)] rounds. *)

val out_degree_orientation : t -> bool array
(** Per edge id: [true] if oriented from the smaller endpoint to the
    larger one; the orientation is "lower endpoint points at higher". *)

val max_out_degree : t -> int
(** Maximum out-degree of {!out_degree_orientation} (at most [k]). *)

val check_acyclic_orientation : t -> bool
(** The orientation has no directed cycle and out-degree at most [k]. *)
