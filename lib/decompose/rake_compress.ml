module Graph = Tl_graph.Graph
module Props = Tl_graph.Props
module Semi_graph = Tl_graph.Semi_graph

type mark = Compressed of int | Raked of int

type t = {
  tree : Graph.t;
  k : int;
  ids : int array;
  marks : mark array;
  iterations : int;
}

let ceil_log ~base x =
  (* smallest integer i with base^i >= x *)
  let rec go acc p = if p >= x then acc else go (acc + 1) (p * base) in
  go 0 1

let lemma9_bound ~k ~n = ceil_log ~base:k n + 1

let run tree ~k ~ids =
  if k < 2 then invalid_arg "Rake_compress.run: k < 2";
  if not (Props.is_forest tree) then
    invalid_arg "Rake_compress.run: not a forest";
  let n = Graph.n_nodes tree in
  if Array.length ids <> n then invalid_arg "Rake_compress.run: bad ids";
  Tl_obs.Span.with_span "rake-compress"
    ~attrs:[ ("k", string_of_int k); ("n", string_of_int n) ]
  @@ fun () ->
  let marks = Array.make n (Raked 0) in
  let alive = Array.make n true in
  let deg = Array.init n (Graph.degree tree) in
  let remaining = ref n in
  let iteration = ref 0 in
  let bound = lemma9_bound ~k ~n in
  let remove v =
    alive.(v) <- false;
    Array.iter (fun u -> if alive.(u) then deg.(u) <- deg.(u) - 1) (Graph.neighbors tree v);
    decr remaining
  in
  while !remaining > 0 do
    incr iteration;
    if !iteration > bound then
      failwith "Rake_compress.run: Lemma 9 bound exceeded (input not a tree?)";
    let i = !iteration in
    (* Compress step: decided against the state at the start of the
       iteration, then applied simultaneously. *)
    let compress =
      List.filter
        (fun v ->
          alive.(v)
          && deg.(v) <= k
          && Array.for_all
               (fun u -> (not alive.(u)) || deg.(u) <= k)
               (Graph.neighbors tree v))
        (List.init n Fun.id)
    in
    List.iter
      (fun v ->
        marks.(v) <- Compressed i;
        remove v)
      compress;
    (* Rake step on the remaining nodes. *)
    let rake = List.filter (fun v -> alive.(v) && deg.(v) <= 1) (List.init n Fun.id) in
    List.iter
      (fun v ->
        marks.(v) <- Raked i;
        remove v)
      rake
  done;
  Tl_obs.Span.add_counter "iterations" !iteration;
  { tree; k; ids; marks; iterations = !iteration }

let mark t v = t.marks.(v)
let iterations t = t.iterations

let layer_index t v =
  match t.marks.(v) with
  | Compressed i -> 2 * (i - 1)
  | Raked i -> (2 * (i - 1)) + 1

let is_higher t u v =
  let lu = layer_index t u and lv = layer_index t v in
  if lu <> lv then lu > lv else t.ids.(u) > t.ids.(v)

let higher_endpoint t e =
  let u, v = Graph.edge_endpoints t.tree e in
  if is_higher t u v then u else v

let lower_endpoint t e =
  let u, v = Graph.edge_endpoints t.tree e in
  if is_higher t u v then v else u

let decomposition_rounds t = 3 * t.iterations

let compressed_nodes t =
  let acc = ref [] in
  for v = Graph.n_nodes t.tree - 1 downto 0 do
    match t.marks.(v) with Compressed _ -> acc := v :: !acc | Raked _ -> ()
  done;
  !acc

let raked_nodes t =
  let acc = ref [] in
  for v = Graph.n_nodes t.tree - 1 downto 0 do
    match t.marks.(v) with Raked _ -> acc := v :: !acc | Compressed _ -> ()
  done;
  !acc

let node_mask t pred =
  Array.init (Graph.n_nodes t.tree) (fun v ->
      match t.marks.(v) with
      | Compressed _ -> pred `C
      | Raked _ -> pred `R)

let t_c t = Semi_graph.of_node_subset t.tree (node_mask t (fun m -> m = `C))
let t_r t = Semi_graph.of_node_subset t.tree (node_mask t (fun m -> m = `R))

let check_lemma9 t =
  t.iterations <= lemma9_bound ~k:t.k ~n:(Graph.n_nodes t.tree)

let compress_part_max_degree t =
  (* degree in the graph induced by edges whose lower endpoint is in a
     compress layer *)
  let n = Graph.n_nodes t.tree in
  let deg = Array.make n 0 in
  Graph.iter_edges
    (fun e _ ->
      let lo = lower_endpoint t e in
      match t.marks.(lo) with
      | Compressed _ ->
        let u, v = Graph.edge_endpoints t.tree e in
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      | Raked _ -> ())
    t.tree;
  Array.fold_left max 0 deg

let check_lemma10 t = compress_part_max_degree t <= t.k

let rake_component_diameters t =
  (* the raked subgraph is a forest (subgraph of a tree), so each
     component's diameter is exact via a double BFS *)
  let raked = raked_nodes t in
  let sub, _ = Graph.induced t.tree raked in
  let n = Graph.n_nodes sub in
  let dist = Array.make n (-1) in
  let bfs src =
    (* returns (farthest node, distance); resets [dist] afterwards *)
    let queue = Queue.create () in
    let touched = ref [ src ] in
    let far = ref src in
    dist.(src) <- 0;
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            if dist.(u) > dist.(!far) then far := u;
            touched := u :: !touched;
            Queue.push u queue
          end)
        (Graph.neighbors sub v)
    done;
    let d = dist.(!far) in
    List.iter (fun v -> dist.(v) <- -1) !touched;
    (!far, d)
  in
  let seen = Array.make n false in
  let mark_component src =
    let queue = Queue.create () in
    seen.(src) <- true;
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Array.iter
        (fun u ->
          if not seen.(u) then begin
            seen.(u) <- true;
            Queue.push u queue
          end)
        (Graph.neighbors sub v)
    done
  in
  let diameters = ref [] in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      mark_component v;
      let far, _ = bfs v in
      let _, d = bfs far in
      diameters := d :: !diameters
    end
  done;
  !diameters

let lemma11_bound t =
  let n = Graph.n_nodes t.tree in
  (* 4 (log_k n + 1) + 2, with log_k n rounded up *)
  (4 * (ceil_log ~base:t.k n + 1)) + 2

let check_lemma11 t =
  let bound = lemma11_bound t in
  List.for_all (fun d -> d <= bound) (rake_component_diameters t)
