(** The rake-and-compress process of [CHL+19] (the paper's Algorithm 1).

    On a tree and for a parameter [k >= 2], iterate:
    - {b Compress}: mark every node whose degree and all of whose
      neighbors' degrees (in the current remaining subtree) are at most
      [k];
    - {b Rake}: mark every remaining node of degree at most 1 (after the
      compress-marked nodes of this iteration are removed).

    Lemma 9 guarantees all nodes are marked within
    [⌈log_k n⌉ + 1] iterations. The process induces the total order on
    nodes used throughout Section 3: layers ordered by marking time
    (compress of iteration [i] below rake of iteration [i]), ties within a
    layer broken by ID (higher ID = higher node). *)

type t

val run : Tl_graph.Graph.t -> k:int -> ids:int array -> t
(** Raises [Invalid_argument] if the graph is not a forest (the process
    and all certificates apply per component, so forests are accepted)
    or [k < 2]; raises [Failure] if the iteration bound of Lemma 9 is
    exceeded (impossible on forests — a built-in certificate). *)

(** {1 Layers and order} *)

type mark = Compressed of int | Raked of int
(** The layer of a node: [Compressed i] = layer [C_i], [Raked i] = layer
    [R_i] (iterations are 1-based). *)

val mark : t -> int -> mark
val iterations : t -> int

val layer_index : t -> int -> int
(** Position of a node's layer in the total order of layers
    ([C_1 < R_1 < C_2 < ...]). *)

val is_higher : t -> int -> int -> bool
(** [is_higher t u v]: [u] is higher than [v] in the total order on nodes
    (layer order, ties by ID). *)

val higher_endpoint : t -> int -> int
val lower_endpoint : t -> int -> int

val decomposition_rounds : t -> int
(** LOCAL rounds to compute the decomposition: 3 per iteration (degree
    exchange, compress marks, rake marks). *)

(** {1 The two parts} *)

val compressed_nodes : t -> int list
val raked_nodes : t -> int list

val t_c : t -> Tl_graph.Semi_graph.t
(** The semi-graph [T_C] of Theorem 12: compressed nodes plus all incident
    edges (edges to raked nodes have rank 1). *)

val t_r : t -> Tl_graph.Semi_graph.t
(** The semi-graph [T_R]: raked nodes plus all incident edges. *)

(** {1 Certificates (Lemmas 9-11)} *)

val check_lemma9 : t -> bool
(** All nodes marked within [⌈log_k n⌉ + 1] iterations. *)

val compress_part_max_degree : t -> int
(** Maximum degree of the graph induced by the edges whose lower endpoint
    lies in a compress layer (the quantity of Lemma 10). *)

val check_lemma10 : t -> bool
(** [compress_part_max_degree <= k]. *)

val rake_component_diameters : t -> int list
(** Diameters of the connected components of the graph induced by the
    raked nodes (Lemma 11). *)

val lemma11_bound : t -> int
(** [4 (log_k n + 1) + 2], rounded up. *)

val check_lemma11 : t -> bool
