module Semi_graph = Tl_graph.Semi_graph

type mode = Naive | Seq | Par of int | Shard of int | Proc of int
type scheduling = Active_set | Full_scan

let default_shards = ref 4
let default_procs = ref 4

let mode_to_string = function
  | Naive -> "naive"
  | Seq -> "seq"
  | Par p -> "par:" ^ string_of_int p
  | Shard s -> "shard:" ^ string_of_int s
  | Proc p -> "proc:" ^ string_of_int p

let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let count_suffix s prefix =
  let k = String.length prefix in
  if String.length s >= k && String.sub s 0 k = prefix then begin
    let rest = String.sub s k (String.length s - k) in
    if not (is_digits rest) then
      invalid_arg
        (Printf.sprintf
           "Engine.mode_of_string: %S — expected %s<count> where <count> is a \
            decimal integer"
           s prefix)
    else
      match int_of_string_opt rest with
      | Some p when p >= 1 -> Some p
      | Some _ ->
        invalid_arg
          (Printf.sprintf "Engine.mode_of_string: %S — count must be >= 1" s)
      | None ->
        invalid_arg
          (Printf.sprintf "Engine.mode_of_string: %S — count out of range" s)
  end
  else None

let mode_of_string s =
  if String.trim s <> s then
    invalid_arg
      (Printf.sprintf
         "Engine.mode_of_string: %S has surrounding whitespace (expected e.g. \
          \"seq\" or \"par:4\")"
         s);
  match s with
  | "naive" -> Naive
  | "seq" -> Seq
  | "shard" -> Shard (max 1 !default_shards)
  | "proc" -> Proc (max 1 !default_procs)
  | _ -> (
    match count_suffix s "par:" with
    | Some p -> Par p
    | None -> (
      match count_suffix s "shard:" with
      | Some c -> Shard c
      | None -> (
        match count_suffix s "proc:" with
        | Some c -> Proc c
        | None ->
          invalid_arg
            (Printf.sprintf
               "Engine.mode_of_string: %S — expected naive | seq | par:<n> | \
                shard[:<n>] | proc[:<n>]"
               s))))

let sched_to_string = function
  | Active_set -> "active-set"
  | Full_scan -> "full-scan"

let default_mode = ref Seq
let trace_sink : (Trace.t -> unit) option ref = ref None

(* Second per-run delivery hook, owned by Tl_obs.Metrics (which sits
   above this library in the DAG and cannot be called directly from
   here). Kept separate from [trace_sink] so the CLI's --trace and the
   metrics registry can coexist without chaining through each other. *)
let metrics_sink : (Trace.t -> unit) option ref = ref None

(* Fault-injection gate, owned by Tl_fault.Injector (above this library
   in the DAG, like the sinks). Consulted once per committed round;
   [false] interrupts the run at that round boundary — the stepper
   returns the states as committed, [rounds] counting only the executed
   rounds, and skips the max_rounds failure. Disarmed runs pay one ref
   read per round and nothing per node. *)
let fault_gate : (round:int -> bool) option ref = ref None

let gate_open ~round =
  match !fault_gate with None -> true | Some g -> g ~round

type 'state outcome = { states : 'state array; rounds : int }

type 'state step_fn =
  round:int ->
  node:int ->
  'state ->
  neighbors:(int * int * 'state) list ->
  'state

(* The Shard mode's implementation lives in tl_shard (which depends on
   this library) and registers itself here at load time. *)
type shard_backend = {
  sb_run :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    halted:('state -> bool) ->
    max_rounds:int ->
    'state outcome;
  sb_run_until_stable :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    max_rounds:int ->
    'state outcome;
  sb_run_rounds :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    rounds:int ->
    'state outcome;
}

let shard_backend : shard_backend option ref = ref None

let get_shard_backend () =
  match !shard_backend with
  | Some b -> b
  | None ->
    failwith
      "Engine: shard mode requested but the tl_shard backend is not linked"

(* The Proc mode's implementation lives in tl_proc (one shard per Unix
   process, halos over socketpairs) and registers itself here the same
   way the shard backend does. Same rank-2 field shapes. *)
type proc_backend = {
  pb_run :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    halted:('state -> bool) ->
    max_rounds:int ->
    'state outcome;
  pb_run_until_stable :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    max_rounds:int ->
    'state outcome;
  pb_run_rounds :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    rounds:int ->
    'state outcome;
}

let proc_backend : proc_backend option ref = ref None

let get_proc_backend () =
  match !proc_backend with
  | Some b -> b
  | None ->
    failwith
      "Engine: proc mode requested but the tl_proc backend is not linked"

let now = Unix.gettimeofday

(* ---------- trace plumbing ---------- *)

let begin_trace ?trace ~label ~mode ~sched ~compile_s ~compile_cached topo =
  let t =
    match trace with
    | Some t -> Some t
    | None ->
      if !trace_sink <> None || !metrics_sink <> None then
        Some (Trace.create ~label ())
      else None
  in
  Option.iter
    (fun t ->
      Trace.set_meta t ~mode:(mode_to_string mode)
        ~scheduling:(sched_to_string sched)
        ~n_base:(Topology.n_base topo)
        ~n_present:(Topology.n_present topo);
      Trace.set_compile_s t compile_s;
      Trace.set_compile_cached t compile_cached)
    t;
  t

(* Runs [f], then finishes and delivers the trace even if [f] raised
   (so --trace still shows where a diverging run spent its rounds). *)
let with_trace tr f =
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      Option.iter
        (fun t ->
          Trace.finish t ~total_s:(now () -. t0);
          Option.iter (fun sink -> sink t) !trace_sink;
          Option.iter (fun sink -> sink t) !metrics_sink)
        tr)
    f

let record tr ~round ~active ~changed ~unhalted ~t0 =
  Option.iter
    (fun t ->
      Trace.record t
        { Trace.round; active; changed; unhalted; wall_s = now () -. t0 })
    tr

(* ---------- the naive reference stepper (legacy port) ---------- *)

(* Exact port of the pre-engine Tl_local.Runtime internals: full scan of
   every present node per round, neighbor gathering through
   Semi_graph.rank2_neighbors, and Array.copy + Array.blit state movement.
   Kept verbatim as the differential-testing reference and the benchmark
   baseline — do not "optimize". *)

let gather_neighbors sg states v =
  List.map
    (fun (u, e) -> (u, e, states.(u)))
    (Semi_graph.rank2_neighbors sg v)

let naive_run ~tr ~topo ~init ~step ~halted ~max_rounds =
  let sg = topo.Topology.sg in
  let n = topo.Topology.n_base in
  let present = topo.Topology.present in
  let states = Array.init n (fun v -> init v) in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if present.(v) && not (halted states.(v)) then ok := false
    done;
    !ok
  in
  let rounds = ref 0 in
  let interrupted = ref false in
  while (not !interrupted) && (not (all_halted ())) && !rounds < max_rounds do
    let t0 = now () in
    incr rounds;
    let next = Array.copy states in
    for v = 0 to n - 1 do
      if present.(v) then
        next.(v) <-
          step ~round:!rounds ~node:v states.(v)
            ~neighbors:(gather_neighbors sg states v)
    done;
    Array.blit next 0 states 0 n;
    record tr ~round:!rounds ~active:topo.Topology.n_present ~changed:(-1)
      ~unhalted:(-1) ~t0;
    if not (gate_open ~round:!rounds) then interrupted := true
  done;
  if (not !interrupted) && not (all_halted ()) then
    failwith (Printf.sprintf "Engine.run: max_rounds=%d exceeded" max_rounds);
  { states; rounds = !rounds }

let naive_run_until_stable ~tr ~topo ~init ~step ~equal ~max_rounds =
  let sg = topo.Topology.sg in
  let n = topo.Topology.n_base in
  let present = topo.Topology.present in
  let states = Array.init n (fun v -> init v) in
  let rounds = ref 0 in
  let stable = ref false in
  let interrupted = ref false in
  while (not !interrupted) && (not !stable) && !rounds < max_rounds do
    let t0 = now () in
    let next = Array.copy states in
    let changed = ref 0 in
    for v = 0 to n - 1 do
      if present.(v) then begin
        let s =
          step ~round:(!rounds + 1) ~node:v states.(v)
            ~neighbors:(gather_neighbors sg states v)
        in
        if not (equal s states.(v)) then incr changed;
        next.(v) <- s
      end
    done;
    record tr ~round:(!rounds + 1) ~active:topo.Topology.n_present
      ~changed:!changed ~unhalted:(-1) ~t0;
    if !changed > 0 then begin
      incr rounds;
      Array.blit next 0 states 0 n;
      if not (gate_open ~round:!rounds) then interrupted := true
    end
    else stable := true
  done;
  if (not !interrupted) && not !stable then
    failwith
      (Printf.sprintf "Engine.run_until_stable: max_rounds=%d exceeded"
         max_rounds);
  { states; rounds = !rounds }

let naive_run_rounds ~tr ~topo ~init ~step ~rounds:total =
  let sg = topo.Topology.sg in
  let n = topo.Topology.n_base in
  let present = topo.Topology.present in
  let states = Array.init n (fun v -> init v) in
  let executed = ref 0 in
  let r = ref 1 in
  let interrupted = ref false in
  while (not !interrupted) && !r <= total do
    let t0 = now () in
    let next = Array.copy states in
    for v = 0 to n - 1 do
      if present.(v) then
        next.(v) <-
          step ~round:!r ~node:v states.(v)
            ~neighbors:(gather_neighbors sg states v)
    done;
    Array.blit next 0 states 0 n;
    record tr ~round:!r ~active:topo.Topology.n_present ~changed:(-1)
      ~unhalted:(-1) ~t0;
    executed := !r;
    if not (gate_open ~round:!r) then interrupted := true;
    incr r
  done;
  { states; rounds = (if !interrupted then !executed else total) }

(* ---------- the engine stepper (Seq / Par) ---------- *)

type 'state core = {
  topo : Topology.t;
  cur : 'state array;  (* published states; committed in place *)
  scratch : 'state array;  (* round buffer: next state per active node *)
  mutable active : int array;  (* active node ids, [0 .. n_active) *)
  mutable n_active : int;
  mutable spare : int array;  (* swap partner of [active] *)
  dirty : bool array;  (* membership in the next active set *)
  equal : 'state -> 'state -> bool;
  sched : scheduling;
}

let make_core ~topo ~sched ~equal ~init =
  let n = Topology.n_base topo in
  let cur = Array.init n (fun v -> init v) in
  let np = Topology.n_present topo in
  let active = Array.sub topo.Topology.present_nodes 0 np in
  {
    topo;
    cur;
    scratch = Array.copy cur;
    active;
    n_active = np;
    spare = Array.make (max 1 np) 0;
    dirty = Array.make n false;
    equal;
    sched;
  }

let compute_range core step round lo hi =
  let cur = core.cur in
  let active = core.active and scratch = core.scratch in
  let off = core.topo.Topology.off
  and adj = core.topo.Topology.adj
  and eid = core.topo.Topology.eid in
  for i = lo to hi - 1 do
    let v = active.(i) in
    (* Neighbor triples in ascending incident order — identical contents
       and order to the legacy gather, built from the CSR rows. Iterative
       reverse build: hub nodes would overflow the stack under naive
       recursion. *)
    let acc = ref [] in
    for j = off.(v + 1) - 1 downto off.(v) do
      let u = adj.(j) in
      acc := (u, eid.(j), cur.(u)) :: !acc
    done;
    scratch.(v) <- step ~round ~node:v cur.(v) ~neighbors:!acc
  done

(* Below this many active nodes *per chunk* a round computes inline even
   in Par mode (i.e. the team is woken only when count > grain * p):
   waking the team costs a barrier handshake plus scheduler latency,
   which dwarfs the step work unless every worker gets a sizable chunk
   (active-set runs spend most rounds on small frontiers). Chunking is
   unaffected — inline vs. team never changes which state a node
   computes, only which domain computes it — so the
   bit-identical-to-Seq guarantee is preserved for every grain value.
   Exposed for tests, which pin it to 0 to force the team on. *)
let par_grain = ref 2048

(* Compute phase. In Par mode the active array is cut into [p] fixed
   contiguous chunks, one worker each: every active node is written by
   exactly one domain, all reads go to [cur] which no one writes during
   the phase, and the team barrier orders the writes before the commit
   below — so the result is bit-identical to Seq for any [p]. Workers
   are parked team members (spawned once per process), not per-round
   Domain.spawn. *)
let compute core step round par =
  let count = core.n_active in
  let p = max 1 (min par (min count Team.max_workers)) in
  if p = 1 || count <= !par_grain * p then compute_range core step round 0 count
  else begin
    let chunk = (count + p - 1) / p in
    Team.run ~workers:p (fun w ->
        let lo = w * chunk and hi = min count ((w + 1) * chunk) in
        if lo < hi then compute_range core step round lo hi)
  end

(* Commit phase (always sequential, O(active + changed * deg)): publish
   changed states into [cur], invoke [on_change], and under Active_set
   rebuild the active set as {changed} ∪ N({changed}) via the dirty
   flags. Unchanged nodes keep their state without any copying — this is
   the buffer swap replacing the legacy copy + blit. *)
let commit core ~on_change =
  let changed = ref 0 in
  let cur = core.cur and scratch = core.scratch in
  let active = core.active and equal = core.equal in
  (match core.sched with
  | Full_scan ->
    for i = 0 to core.n_active - 1 do
      let v = active.(i) in
      let s' = scratch.(v) in
      if not (equal s' cur.(v)) then begin
        incr changed;
        cur.(v) <- s';
        on_change v
      end
    done
  | Active_set ->
    let next = core.spare in
    let k = ref 0 in
    let dirty = core.dirty in
    let off = core.topo.Topology.off and adj = core.topo.Topology.adj in
    for i = 0 to core.n_active - 1 do
      let v = active.(i) in
      let s' = scratch.(v) in
      if not (equal s' cur.(v)) then begin
        incr changed;
        cur.(v) <- s';
        on_change v;
        if not dirty.(v) then begin
          dirty.(v) <- true;
          next.(!k) <- v;
          incr k
        end;
        for j = off.(v) to off.(v + 1) - 1 do
          let u = adj.(j) in
          if not dirty.(u) then begin
            dirty.(u) <- true;
            next.(!k) <- u;
            incr k
          end
        done
      end
    done;
    (* The collect loop above emits the frontier in a jumbled order; for a
       dense next set that order wrecks cache locality in the following
       compute phase, so rebuild it ascending from the dirty bitmap (the
       O(n) scan is negligible when the set is a constant fraction of n).
       Sparse frontiers keep the unordered list — a full scan per round
       would erase the active-set savings. Node order never affects the
       computed states, only memory-access locality. *)
    if !k * 8 >= core.topo.Topology.n_present then begin
      let idx = ref 0 in
      for v = 0 to Array.length dirty - 1 do
        if dirty.(v) then begin
          dirty.(v) <- false;
          next.(!idx) <- v;
          incr idx
        end
      done
    end
    else
      for i = 0 to !k - 1 do
        dirty.(next.(i)) <- false
      done;
    let old = core.active in
    core.active <- next;
    core.spare <- old;
    core.n_active <- !k);
  !changed

let engine_run ~par ~sched ~equal ~tr ~topo ~init ~step ~halted ~max_rounds =
  let core = make_core ~topo ~sched ~equal ~init in
  let halted_f = Array.make (Topology.n_base topo) true in
  let n_unhalted = ref 0 in
  Array.iter
    (fun v ->
      let h = halted core.cur.(v) in
      halted_f.(v) <- h;
      if not h then incr n_unhalted)
    topo.Topology.present_nodes;
  let rounds = ref 0 in
  let stalled = ref false in
  let interrupted = ref false in
  while
    !n_unhalted > 0 && !rounds < max_rounds && (not !stalled)
    && not !interrupted
  do
    if core.n_active = 0 then
      (* No node can ever change again (stationarity), so no node can
         ever halt: the naive stepper would spin to max_rounds and raise;
         we raise the same failure without the spin. *)
      stalled := true
    else begin
      let t0 = now () in
      let active_now = core.n_active in
      incr rounds;
      compute core step !rounds par;
      let changed =
        commit core ~on_change:(fun v ->
            let h = halted core.cur.(v) in
            if h <> halted_f.(v) then begin
              halted_f.(v) <- h;
              if h then decr n_unhalted else incr n_unhalted
            end)
      in
      record tr ~round:!rounds ~active:active_now ~changed
        ~unhalted:!n_unhalted ~t0;
      if not (gate_open ~round:!rounds) then interrupted := true
    end
  done;
  if (not !interrupted) && !n_unhalted > 0 then
    failwith (Printf.sprintf "Engine.run: max_rounds=%d exceeded" max_rounds);
  { states = core.cur; rounds = !rounds }

let engine_run_until_stable ~par ~sched ~equal ~tr ~topo ~init ~step
    ~max_rounds =
  let core = make_core ~topo ~sched ~equal ~init in
  let rounds = ref 0 in
  let stable = ref false in
  let interrupted = ref false in
  while (not !interrupted) && (not !stable) && !rounds < max_rounds do
    if core.n_active = 0 then stable := true
    else begin
      let t0 = now () in
      let active_now = core.n_active in
      compute core step (!rounds + 1) par;
      let changed = commit core ~on_change:ignore in
      record tr ~round:(!rounds + 1) ~active:active_now ~changed
        ~unhalted:(-1) ~t0;
      if changed > 0 then begin
        incr rounds;
        if not (gate_open ~round:!rounds) then interrupted := true
      end
      else stable := true
    end
  done;
  if (not !interrupted) && not !stable then
    failwith
      (Printf.sprintf "Engine.run_until_stable: max_rounds=%d exceeded"
         max_rounds);
  { states = core.cur; rounds = !rounds }

let engine_run_rounds ~par ~sched ~equal ~tr ~topo ~init ~step ~rounds:total =
  let core = make_core ~topo ~sched ~equal ~init in
  let executed = ref 0 in
  let r = ref 1 in
  let interrupted = ref false in
  while (not !interrupted) && !r <= total do
    (* an empty active set means the remaining scheduled rounds are
       no-ops (stationarity); skip the work but keep the round count *)
    if core.n_active > 0 then begin
      let t0 = now () in
      let active_now = core.n_active in
      compute core step !r par;
      let changed = commit core ~on_change:ignore in
      record tr ~round:!r ~active:active_now ~changed ~unhalted:(-1) ~t0;
      executed := !r;
      if not (gate_open ~round:!r) then interrupted := true
    end;
    incr r
  done;
  { states = core.cur; rounds = (if !interrupted then !executed else total) }

(* ---------- public API ---------- *)

let par_of = function
  | Naive | Seq | Shard _ | Proc _ -> 1
  | Par p -> max 1 p

let run ?mode ?(sched = Active_set) ?(equal = Stdlib.( = )) ?trace
    ?(label = "engine.run") ?(compile_s = 0.) ?(compile_cached = false) ~topo
    ~init ~step ~halted ~max_rounds () =
  let mode = match mode with Some m -> m | None -> !default_mode in
  let tr = begin_trace ?trace ~label ~mode ~sched ~compile_s ~compile_cached topo in
  with_trace tr (fun () ->
      match mode with
      | Naive -> naive_run ~tr ~topo ~init ~step ~halted ~max_rounds
      | Shard s ->
        (get_shard_backend ()).sb_run ~shards:s ~sched ~equal ~trace:tr ~topo
          ~init ~step ~halted ~max_rounds
      | Proc p ->
        (get_proc_backend ()).pb_run ~procs:p ~sched ~equal ~trace:tr ~topo
          ~init ~step ~halted ~max_rounds
      | Seq | Par _ ->
        engine_run ~par:(par_of mode) ~sched ~equal ~tr ~topo ~init ~step
          ~halted ~max_rounds)

let run_until_stable ?mode ?(sched = Active_set) ?trace
    ?(label = "engine.run_until_stable") ?(compile_s = 0.)
    ?(compile_cached = false) ~topo ~init ~step ~equal ~max_rounds () =
  let mode = match mode with Some m -> m | None -> !default_mode in
  let tr = begin_trace ?trace ~label ~mode ~sched ~compile_s ~compile_cached topo in
  with_trace tr (fun () ->
      match mode with
      | Naive -> naive_run_until_stable ~tr ~topo ~init ~step ~equal ~max_rounds
      | Shard s ->
        (get_shard_backend ()).sb_run_until_stable ~shards:s ~sched ~equal
          ~trace:tr ~topo ~init ~step ~max_rounds
      | Proc p ->
        (get_proc_backend ()).pb_run_until_stable ~procs:p ~sched ~equal
          ~trace:tr ~topo ~init ~step ~max_rounds
      | Seq | Par _ ->
        engine_run_until_stable ~par:(par_of mode) ~sched ~equal ~tr ~topo
          ~init ~step ~max_rounds)

let run_rounds ?mode ?(sched = Active_set) ?(equal = Stdlib.( = )) ?trace
    ?(label = "engine.run_rounds") ?(compile_s = 0.) ?(compile_cached = false)
    ~topo ~init ~step ~rounds () =
  let mode = match mode with Some m -> m | None -> !default_mode in
  let tr = begin_trace ?trace ~label ~mode ~sched ~compile_s ~compile_cached topo in
  with_trace tr (fun () ->
      match mode with
      | Naive -> naive_run_rounds ~tr ~topo ~init ~step ~rounds
      | Shard s ->
        (get_shard_backend ()).sb_run_rounds ~shards:s ~sched ~equal ~trace:tr
          ~topo ~init ~step ~rounds
      | Proc p ->
        (get_proc_backend ()).pb_run_rounds ~procs:p ~sched ~equal ~trace:tr
          ~topo ~init ~step ~rounds
      | Seq | Par _ ->
        engine_run_rounds ~par:(par_of mode) ~sched ~equal ~tr ~topo ~init
          ~step ~rounds)
