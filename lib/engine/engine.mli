(** Deterministic high-performance execution engine for the LOCAL model.

    This is the execution backend behind {!Tl_local.Runtime}: the same
    synchronous state-reading semantics (Definition 5), run over a
    compiled {!Topology} snapshot with three interchangeable steppers:

    - [Naive] — a faithful port of the original stepper: every present
      node re-steps every round, neighbor lists are gathered through
      {!Tl_graph.Semi_graph.rank2_neighbors}, and states are moved with
      two full array copies per round. Kept as the bit-exact reference
      for differential tests and as the benchmark baseline.
    - [Seq] — single-threaded over the CSR snapshot, double-buffered with
      an O(changed)-cost commit (no full copies) and, under
      [Active_set] scheduling, a frontier queue: only nodes whose 1-hop
      neighborhood changed in the previous round are re-stepped, so
      converged regions cost zero.
    - [Par p] — the [Seq] stepper with the per-round compute fanned out
      over [p] workers of the persistent domain {!Team} (spawned once
      per process, parked on a barrier between rounds) in fixed
      deterministic contiguous chunks of the active array. Reads go to
      the current buffer only and every active node is written by
      exactly one domain, so results are bit-identical to [Seq]
      regardless of [p], the {!par_grain} inline threshold, or thread
      interleaving.
    - [Shard s] — the sharded halo-exchange backend ({!Tl_shard.Shard}):
      the snapshot is partitioned into [s] contiguous shards with ghost
      (halo) copies of remote neighbors, and each round runs as
      {e local step → batched boundary exchange → barrier}. The
      implementation lives in the [tl_shard] library and registers
      itself through {!shard_backend}; running in [Shard] mode without
      that library linked raises [Failure]. Bit-identical to [Seq] under
      the same stationarity contract.
    - [Proc p] — the process-parallel distributed backend
      ([Tl_proc.Coordinator]): the same shard [Plan] geometry, but one
      Unix process per shard, halos exchanged over socketpairs in a
      length-prefixed binary wire format and termination decided by a
      [changed]-count allreduce over a collective tree. Registers
      through {!proc_backend}; running in [Proc] mode without [tl_proc]
      linked raises [Failure]. Bit-identical to [Seq] under the same
      stationarity contract.

    {2 Determinism guarantee}

    For a fixed topology, [init], [step] and ID assignment, all modes and
    schedulings produce bit-identical final states and round counts,
    {e provided} [step] is stationary: its output depends only on the
    node's state and its neighbors' states — not on [~round] — whenever
    those inputs are unchanged from the previous round. (Between rounds
    with different inputs, [step] may use [~round] freely; schedules that
    fire on specific round numbers independently of state, like Linial's
    palette schedule, must use [Full_scan].) Under [Active_set] a node
    with an unchanged closed neighborhood is not re-stepped; stationarity
    is exactly the condition making that skip unobservable.

    All modes raise [Failure] when [max_rounds] is exhausted, like the
    legacy runtime; the active-set stepper additionally fails fast when
    the active set drains while unhalted nodes remain (a stationary
    machine can then never halt — the naive stepper would spin to
    [max_rounds] and raise the same way). *)

type mode = Naive | Seq | Par of int | Shard of int | Proc of int

type scheduling =
  | Active_set  (** re-step only nodes with a changed 1-hop neighborhood *)
  | Full_scan  (** re-step every present node every round *)

val mode_to_string : mode -> string
val sched_to_string : scheduling -> string

val mode_of_string : string -> mode
(** Parses ["naive"], ["seq"], ["par:N"], ["shard:N"], ["proc:N"]
    (N >= 1), ["shard"] (shard count taken from {!default_shards} at
    parse time) and ["proc"] (process count from {!default_procs}).
    Raises [Invalid_argument] with a message naming the offending input
    otherwise — including ["par:0"]/["shard:0"]/["proc:0"] (count must
    be >= 1), non-digit or out-of-range counts, and strings with
    surrounding whitespace (callers splitting config lines forget to
    trim; a silent accept here would mask that). *)

val par_grain : int ref
(** Minimum active-set size {e per chunk} for a [Par] round to fan out
    to the domain team: a round fans out only when
    [count > par_grain * p], otherwise it computes inline on the calling
    domain (the barrier handshake costs more than the step work unless
    every worker gets a sizable chunk). Chunk assignment is a pure
    function of the active count, so the grain never changes results —
    only which domain computes them. Default [2048]; tests pin it to
    [0] to force the team on. *)

val default_mode : mode ref
(** Mode used when a run does not specify one. [Seq] initially; the CLI's
    [--engine] flag retargets every engine-backed execution in the
    process by setting this. *)

val default_shards : int ref
(** Shard count used when a mode string says just ["shard"] — the CLI's
    [--shards N] flag sets this once at startup. Defaults to [4]. *)

val default_procs : int ref
(** Worker-process count used when a mode string says just ["proc"].
    Defaults to [4]. *)

val trace_sink : (Trace.t -> unit) option ref
(** When set, every engine run reports its trace here (creating an
    internal trace if the caller did not supply one) — the hook behind
    the CLI's [--trace]. Traces are delivered even when the run raises. *)

val metrics_sink : (Trace.t -> unit) option ref
(** Second per-run delivery hook with the same contract as
    {!trace_sink} (internal trace creation, delivery on raise), invoked
    after it. Owned by [Tl_obs.Metrics.enable], which sits above this
    library in the DAG and feeds the [engine_*] registry metrics from
    each finished trace. Independent of [trace_sink]: either, both or
    neither may be set. *)

val fault_gate : (round:int -> bool) option ref
(** Fault-injection round gate, owned by [Tl_fault.Injector] (above this
    library in the DAG, like the sinks). When set, every in-process
    stepper consults it once per {e committed} round — [g ~round:r]
    fires after round [r]'s states are published. Returning [false]
    interrupts the run at that round boundary: the stepper returns the
    states exactly as committed, [rounds] counts only the executed
    rounds, and the usual [max_rounds] [Failure] is suppressed (an
    interrupted run is not a diverged run). The caller that armed the
    gate is expected to know it fired (the injector records the trip)
    and resume with a fresh run over the repaired topology. Disarmed
    ([None], the default) the gate costs one ref read per round and
    nothing per node — the same discipline as [Tl_obs.Metrics.enable].
    The shard backend checks the gate in its own drivers; the proc
    backend checks it between coordinator rounds. *)

val gate_open : round:int -> bool
(** [true] when no gate is armed or the armed gate allows continuing
    past committed round [round]. Exported for the out-of-library
    backends (shard, proc), whose drivers must consult the same gate as
    the in-process steppers. *)

type 'state outcome = { states : 'state array; rounds : int }

type 'state step_fn =
  round:int ->
  node:int ->
  'state ->
  neighbors:(int * int * 'state) list ->
  'state
(** Same contract as the legacy runtime: [neighbors] lists
    [(neighbor, edge, neighbor_state)] over present rank-2 edges in
    ascending incident order. *)

(** {2 Shard backend hook}

    The [Shard] mode is implemented outside this library (in [tl_shard],
    which depends on [tl_engine]); it plugs in through this record of
    rank-2-polymorphic entry points. The engine keeps ownership of trace
    creation and delivery: the backend receives the already-created
    [trace] (if any) and records its rounds into it. [Tl_shard.Shard]
    installs itself here at module initialization, and
    {!Tl_local.Runtime} references it explicitly so every binary built
    on the runtime links the backend. *)

type shard_backend = {
  sb_run :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    halted:('state -> bool) ->
    max_rounds:int ->
    'state outcome;
  sb_run_until_stable :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    max_rounds:int ->
    'state outcome;
  sb_run_rounds :
    'state.
    shards:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    rounds:int ->
    'state outcome;
}

val shard_backend : shard_backend option ref
(** Set by [Tl_shard.Shard] at load time. [Shard]-mode runs raise
    [Failure] while this is [None]. *)

(** {2 Proc backend hook}

    Same plug-in shape as {!shard_backend}, for the process-parallel
    backend in [tl_proc]. Field names are prefixed [pb_] and the count
    argument is [procs] (one worker process per shard). *)

type proc_backend = {
  pb_run :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    halted:('state -> bool) ->
    max_rounds:int ->
    'state outcome;
  pb_run_until_stable :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    max_rounds:int ->
    'state outcome;
  pb_run_rounds :
    'state.
    procs:int ->
    sched:scheduling ->
    equal:('state -> 'state -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> 'state) ->
    step:'state step_fn ->
    rounds:int ->
    'state outcome;
}

val proc_backend : proc_backend option ref
(** Set by [Tl_proc.Coordinator] at load time. [Proc]-mode runs raise
    [Failure] while this is [None]. *)

val run :
  ?mode:mode ->
  ?sched:scheduling ->
  ?equal:('state -> 'state -> bool) ->
  ?trace:Trace.t ->
  ?label:string ->
  ?compile_s:float ->
  ?compile_cached:bool ->
  topo:Topology.t ->
  init:(int -> 'state) ->
  step:'state step_fn ->
  halted:('state -> bool) ->
  max_rounds:int ->
  unit ->
  'state outcome
(** Engine counterpart of {!Tl_local.Runtime.run}: rounds execute while
    some present node is unhalted, every executed round is counted, the
    halting check happens before the first round. [equal] (default
    structural equality) is used only for change detection — it never
    affects results under the stationarity contract, only which nodes
    are re-stepped and the [changed] trace counts. *)

val run_until_stable :
  ?mode:mode ->
  ?sched:scheduling ->
  ?trace:Trace.t ->
  ?label:string ->
  ?compile_s:float ->
  ?compile_cached:bool ->
  topo:Topology.t ->
  init:(int -> 'state) ->
  step:'state step_fn ->
  equal:('state -> 'state -> bool) ->
  max_rounds:int ->
  unit ->
  'state outcome
(** Engine counterpart of {!Tl_local.Runtime.run_until_stable}: stops at
    a global fixed point; the detection round is not charged. *)

val run_rounds :
  ?mode:mode ->
  ?sched:scheduling ->
  ?equal:('state -> 'state -> bool) ->
  ?trace:Trace.t ->
  ?label:string ->
  ?compile_s:float ->
  ?compile_cached:bool ->
  topo:Topology.t ->
  init:(int -> 'state) ->
  step:'state step_fn ->
  rounds:int ->
  unit ->
  'state outcome
(** Execute exactly [rounds] synchronous rounds of a fixed a-priori
    schedule (no halting predicate). Round-number-driven schedules must
    pass [~sched:Full_scan]. *)
