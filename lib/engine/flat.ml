(* Flat execution path: the engine's Seq/Par stepper specialized to
   int-slab states. Structure (double buffer, active set, dirty flags,
   dense-rebuild heuristic, chunked parallel compute, sequential commit)
   mirrors engine.ml line for line — keep the two in sync; the
   differential battery in test/test_engine.ml holds them together.

   Allocation discipline for the hot path (the whole point of this
   module): no closures in the round loop (helpers that scan CSR rows
   are top-level recursive functions, fully applied — a local [let rec]
   with free variables allocates a closure per call), no [ref] cells
   per round (loop-carried counters live in mutable [core] fields), no
   [Option.iter f] on the trace option (the closure is allocated even
   for [None]; we [match] instead), and no wall-clock reads unless a
   trace is attached ([Unix.gettimeofday] boxes a float — the stamp is
   parked in a preallocated float array, where stores are unboxed).

   Bounds discipline: the step/commit loops use [Array.unsafe_get]/
   [unsafe_set]. Every index is covered by a compiled-topology
   invariant — active/spare hold present nodes [< n_base], CSR rows
   [off.(v) .. off.(v+1)) index [adj], and [adj] entries are present
   nodes — so the checks the safe accessors would re-run per word are
   provably dead. Slab indices are [node * slots + slot] with
   [slot < slots] by construction. *)

type ctx = {
  n_base : int;
  n_present : int;
  off : int array;
  adj : int array;
  eid : int array;
  slots : int;
  cur : int array;
  nxt : int array;
}

type kernel = {
  name : string;
  slots : int;
  scratch_words : int;
  init : node:int -> slot:int -> int;
  step : ctx -> scratch:int array -> round:int -> node:int -> unit;
  halted : (ctx -> node:int -> bool) option;
}

type outcome = { slab : int array; slots : int; rounds : int }

let read o ~node ~slot = o.slab.((node * o.slots) + slot)

let column o ~slot =
  Array.init (Array.length o.slab / o.slots) (fun v ->
      o.slab.((v * o.slots) + slot))

let now = Unix.gettimeofday

(* ---------- core ---------- *)

type core = {
  ctx : ctx;
  step : ctx -> scratch:int array -> round:int -> node:int -> unit;
  halt : (ctx -> node:int -> bool) option;
  scratch : int array array;  (* one slab per worker *)
  par : int;
  sched : Engine.scheduling;
  mutable active : int array;
  mutable n_active : int;
  mutable spare : int array;
  dirty : bool array;
  halted_f : bool array;
  mutable n_unhalted : int;
  mutable n_changed : int;  (* commit result (no per-round ref cells) *)
  mutable fk : int;  (* frontier build cursor *)
  mutable fi : int;  (* dense-rebuild cursor *)
}

let make_core ~topo ~sched ~par ~use_halted (k : kernel) =
  if k.slots < 1 then
    invalid_arg
      (Printf.sprintf "Flat: kernel %S declares slots=%d (must be >= 1)" k.name
         k.slots);
  let n = Topology.n_base topo in
  let slots = k.slots in
  let init = k.init in
  let cur =
    Array.init (n * slots) (fun i -> init ~node:(i / slots) ~slot:(i mod slots))
  in
  let ctx =
    {
      n_base = n;
      n_present = Topology.n_present topo;
      off = topo.Topology.off;
      adj = topo.Topology.adj;
      eid = topo.Topology.eid;
      slots;
      cur;
      nxt = Array.copy cur;
    }
  in
  let p = max 1 (min par Team.max_workers) in
  let np = Topology.n_present topo in
  let core =
    {
      ctx;
      step = k.step;
      halt = (if use_halted then k.halted else None);
      scratch = Array.init p (fun _ -> Array.make (max 1 k.scratch_words) 0);
      par = p;
      sched;
      active = Array.sub topo.Topology.present_nodes 0 np;
      n_active = np;
      spare = Array.make (max 1 np) 0;
      dirty = Array.make n false;
      halted_f = Array.make n true;
      n_unhalted = 0;
      n_changed = 0;
      fk = 0;
      fi = 0;
    }
  in
  (match core.halt with
  | None -> ()
  | Some h ->
    Array.iter
      (fun v ->
        let hv = h ctx ~node:v in
        core.halted_f.(v) <- hv;
        if not hv then core.n_unhalted <- core.n_unhalted + 1)
      topo.Topology.present_nodes);
  core

let compute_range core round w lo hi =
  let active = core.active and step = core.step and ctx = core.ctx in
  let scratch = core.scratch.(w) in
  for i = lo to hi - 1 do
    step ctx ~scratch ~round ~node:(Array.unsafe_get active i)
  done

(* Same chunking and grain rule as Engine.compute: inline unless every
   chunk clears the grain, otherwise p fixed contiguous chunks on the
   persistent team. Never changes which state a node computes, only
   which domain. *)
let compute core round =
  let count = core.n_active in
  let p = max 1 (min core.par count) in
  if p = 1 || count <= !Engine.par_grain * p then
    compute_range core round 0 0 count
  else begin
    let chunk = (count + p - 1) / p in
    Team.run ~workers:p (fun w ->
        let lo = w * chunk and hi = min count ((w + 1) * chunk) in
        if lo < hi then compute_range core round w lo hi)
  end

(* any word of node [base/slots]'s slots differs? (tail recursive, top
   level: called per active node per round) *)
let rec words_differ cur nxt base i slots =
  i < slots
  && (Array.unsafe_get nxt (base + i) <> Array.unsafe_get cur (base + i)
     || words_differ cur nxt base (i + 1) slots)

let on_change core v =
  match core.halt with
  | None -> ()
  | Some h ->
    let hv = h core.ctx ~node:v in
    if hv <> core.halted_f.(v) then begin
      core.halted_f.(v) <- hv;
      core.n_unhalted <- (core.n_unhalted + if hv then -1 else 1)
    end

(* Commit phase: identical discipline to Engine.commit (sequential,
   publish changed slots, rebuild the frontier under Active_set with the
   same dense-rebuild heuristic) so flat and boxed runs agree round for
   round on active/changed counts, not just on final states. *)
let commit core =
  let ctx = core.ctx in
  let cur = ctx.cur and nxt = ctx.nxt and slots = ctx.slots in
  let active = core.active in
  core.n_changed <- 0;
  match core.sched with
  | Engine.Full_scan ->
    for i = 0 to core.n_active - 1 do
      let v = Array.unsafe_get active i in
      let base = v * slots in
      if words_differ cur nxt base 0 slots then begin
        core.n_changed <- core.n_changed + 1;
        Array.blit nxt base cur base slots;
        on_change core v
      end
    done
  | Engine.Active_set ->
    let next = core.spare in
    let dirty = core.dirty in
    let off = ctx.off and adj = ctx.adj in
    core.fk <- 0;
    for i = 0 to core.n_active - 1 do
      let v = Array.unsafe_get active i in
      let base = v * slots in
      if words_differ cur nxt base 0 slots then begin
        core.n_changed <- core.n_changed + 1;
        Array.blit nxt base cur base slots;
        on_change core v;
        if not (Array.unsafe_get dirty v) then begin
          Array.unsafe_set dirty v true;
          Array.unsafe_set next core.fk v;
          core.fk <- core.fk + 1
        end;
        for j = Array.unsafe_get off v to Array.unsafe_get off (v + 1) - 1 do
          let u = Array.unsafe_get adj j in
          if not (Array.unsafe_get dirty u) then begin
            Array.unsafe_set dirty u true;
            Array.unsafe_set next core.fk u;
            core.fk <- core.fk + 1
          end
        done
      end
    done;
    (* dense next set: rebuild ascending from the dirty bitmap for cache
       locality (same threshold as the boxed engine) *)
    if core.fk * 8 >= ctx.n_present then begin
      core.fi <- 0;
      for v = 0 to Array.length dirty - 1 do
        if dirty.(v) then begin
          dirty.(v) <- false;
          next.(core.fi) <- v;
          core.fi <- core.fi + 1
        end
      done
    end
    else
      for i = 0 to core.fk - 1 do
        dirty.(next.(i)) <- false
      done;
    let old = core.active in
    core.active <- next;
    core.spare <- old;
    core.n_active <- core.fk

(* ---------- trace plumbing (flat flavour of Engine.begin_trace) ---------- *)

let mode_string par =
  if par <= 1 then "flat:seq" else "flat:par:" ^ string_of_int par

let begin_trace ?trace ~label ~par ~sched topo =
  let t =
    match trace with
    | Some t -> Some t
    | None ->
      if !Engine.trace_sink <> None || !Engine.metrics_sink <> None then
        Some (Trace.create ~label ())
      else None
  in
  (match t with
  | None -> ()
  | Some t ->
    Trace.set_meta t ~mode:(mode_string par)
      ~scheduling:(Engine.sched_to_string sched)
      ~n_base:(Topology.n_base topo)
      ~n_present:(Topology.n_present topo);
    Trace.set_layout t "flat");
  t

let with_trace tr f =
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      match tr with
      | None -> ()
      | Some t ->
        Trace.finish t ~total_s:(now () -. t0);
        (match !Engine.trace_sink with Some sink -> sink t | None -> ());
        (match !Engine.metrics_sink with Some sink -> sink t | None -> ()))
    f

(* ---------- entry points ---------- *)

(* Failure messages are byte-identical to engine.ml on purpose: failure
   parity is part of the flat-vs-boxed differential contract. *)

let run_halted core tr max_rounds =
  let rounds = ref 0 in
  let stalled = ref false in
  let tw = [| 0. |] in
  while core.n_unhalted > 0 && !rounds < max_rounds && not !stalled do
    if core.n_active = 0 then stalled := true
    else begin
      (match tr with None -> () | Some _ -> tw.(0) <- now ());
      let active_now = core.n_active in
      incr rounds;
      compute core !rounds;
      commit core;
      match tr with
      | None -> ()
      | Some t ->
        Trace.record t
          {
            Trace.round = !rounds;
            active = active_now;
            changed = core.n_changed;
            unhalted = core.n_unhalted;
            wall_s = now () -. tw.(0);
          }
    end
  done;
  if core.n_unhalted > 0 then
    failwith (Printf.sprintf "Engine.run: max_rounds=%d exceeded" max_rounds);
  { slab = core.ctx.cur; slots = core.ctx.slots; rounds = !rounds }

let run_stable core tr max_rounds =
  let rounds = ref 0 in
  let stable = ref false in
  let tw = [| 0. |] in
  while (not !stable) && !rounds < max_rounds do
    if core.n_active = 0 then stable := true
    else begin
      (match tr with None -> () | Some _ -> tw.(0) <- now ());
      let active_now = core.n_active in
      compute core (!rounds + 1);
      commit core;
      (match tr with
      | None -> ()
      | Some t ->
        Trace.record t
          {
            Trace.round = !rounds + 1;
            active = active_now;
            changed = core.n_changed;
            unhalted = -1;
            wall_s = now () -. tw.(0);
          });
      if core.n_changed > 0 then incr rounds else stable := true
    end
  done;
  if not !stable then
    failwith
      (Printf.sprintf "Engine.run_until_stable: max_rounds=%d exceeded"
         max_rounds);
  { slab = core.ctx.cur; slots = core.ctx.slots; rounds = !rounds }

let run_fixed core tr total =
  let tw = [| 0. |] in
  for r = 1 to total do
    if core.n_active > 0 then begin
      (match tr with None -> () | Some _ -> tw.(0) <- now ());
      let active_now = core.n_active in
      compute core r;
      commit core;
      match tr with
      | None -> ()
      | Some t ->
        Trace.record t
          {
            Trace.round = r;
            active = active_now;
            changed = core.n_changed;
            unhalted = -1;
            wall_s = now () -. tw.(0);
          }
    end
  done;
  { slab = core.ctx.cur; slots = core.ctx.slots; rounds = total }

let run ?(par = 1) ?(sched = Engine.Active_set) ?trace ?label ~topo ~kernel
    ~max_rounds () =
  if kernel.halted = None then
    invalid_arg
      (Printf.sprintf "Flat.run: kernel %S has no halted predicate" kernel.name);
  let label = match label with Some l -> l | None -> "flat." ^ kernel.name in
  let tr = begin_trace ?trace ~label ~par ~sched topo in
  with_trace tr (fun () ->
      let core = make_core ~topo ~sched ~par ~use_halted:true kernel in
      run_halted core tr max_rounds)

let run_until_stable ?(par = 1) ?(sched = Engine.Active_set) ?trace ?label
    ~topo ~kernel ~max_rounds () =
  let label = match label with Some l -> l | None -> "flat." ^ kernel.name in
  let tr = begin_trace ?trace ~label ~par ~sched topo in
  with_trace tr (fun () ->
      let core = make_core ~topo ~sched ~par ~use_halted:false kernel in
      run_stable core tr max_rounds)

let run_rounds ?(par = 1) ?(sched = Engine.Active_set) ?trace ?label ~topo
    ~kernel ~rounds () =
  let label = match label with Some l -> l | None -> "flat." ^ kernel.name in
  let tr = begin_trace ?trace ~label ~par ~sched topo in
  with_trace tr (fun () ->
      let core = make_core ~topo ~sched ~par ~use_halted:false kernel in
      run_fixed core tr rounds)

(* ---------- ported kernels ---------- *)

(* CSR row scans as top-level tail-recursive helpers: fully applied, so
   no closure is allocated per step (the whole zero-alloc claim rides on
   this — see the Gc.minor_words budget test). The [||] / [&&] right
   operands are tail positions, so hub rows cannot overflow the stack. *)

let rec row_any_reached cur adj j hi =
  j < hi
  && (Array.unsafe_get cur (Array.unsafe_get adj j) = 1
     || row_any_reached cur adj (j + 1) hi)

let rec row_any_in cur adj j hi =
  j < hi
  && (Array.unsafe_get cur (Array.unsafe_get adj j) = 1
     || row_any_in cur adj (j + 1) hi)

(* [ids] is caller-supplied, not topology-derived, so it keeps its
   bounds check (it is only consulted for undecided neighbors). *)
let rec row_local_max cur adj ids my j hi =
  j >= hi
  || (let u = Array.unsafe_get adj j in
      Array.unsafe_get cur u <> 0 || ids.(u) < my)
     && row_local_max cur adj ids my (j + 1) hi

module Kernels = struct
  let flood ?(source = 0) () =
    {
      name = "flood";
      slots = 1;
      scratch_words = 0;
      init = (fun ~node ~slot:_ -> if node = source then 1 else 0);
      step =
        (fun ctx ~scratch:_ ~round:_ ~node:v ->
          let cur = ctx.cur in
          Array.unsafe_set ctx.nxt v
            (if
               Array.unsafe_get cur v = 1
               || row_any_reached cur ctx.adj
                    (Array.unsafe_get ctx.off v)
                    (Array.unsafe_get ctx.off (v + 1))
             then 1
             else 0));
      halted = Some (fun ctx ~node -> ctx.cur.(node) = 1);
    }

  let mis_local_max ~ids =
    {
      name = "mis-local-max";
      slots = 1;
      scratch_words = 0;
      init = (fun ~node:_ ~slot:_ -> 0);
      step =
        (fun ctx ~scratch:_ ~round:_ ~node:v ->
          let cur = ctx.cur in
          let s = Array.unsafe_get cur v in
          let lo = Array.unsafe_get ctx.off v
          and hi = Array.unsafe_get ctx.off (v + 1) in
          Array.unsafe_set ctx.nxt v
            (if s <> 0 then s
             else if row_any_in cur ctx.adj lo hi then 2
             else if row_local_max cur ctx.adj ids ids.(v) lo hi then 1
             else 0));
      halted = Some (fun ctx ~node -> ctx.cur.(node) <> 0);
    }
end
