(** Flat (unboxed) execution path: int-slab node states, closure-free
    stepping, zero minor-heap allocation per step.

    The boxed steppers in {!Engine} pay, per step, a fresh
    [(neighbor, edge, state)] list (≈ 6 words per neighbor) plus a
    polymorphic [step] call — on a million-node instance that is
    hundreds of MB of short-lived garbage per round, and it is why
    `par:{2,4}` lost to `seq` in BENCH_engine.json. This module is the
    same engine discipline (double buffer, active-set scheduling,
    deterministic chunked parallel compute, sequential commit) with the
    state held in preallocated [int array] slabs indexed by node slot:
    a kernel's [step] reads neighbor states straight out of the CSR
    arrays and writes its node's slots in place. The hot loop allocates
    {e nothing} on the minor heap — no neighbor lists, no closures, no
    boxed floats (round timing is only taken when a trace is attached).

    The boxed path stays untouched as the bit-exact reference: the
    differential battery in [test/test_engine.ml] checks labelings,
    round counts, traces and failure behaviour of every flat kernel
    against its boxed twin, and [bench] B11 measures the gap.

    {2 Determinism and parity}

    Scheduling, change detection (word comparison over a node's slots),
    frontier maintenance and the parallel chunking are structurally
    identical to {!Engine}'s [Seq]/[Par] stepper, so a flat run produces
    the same states, the same round count, and the same per-round
    [active]/[changed]/[unhalted] trace records as the boxed engine
    running an equivalent kernel — for any [par] and any
    {!Engine.par_grain}. On [max_rounds] exhaustion (or an active-set
    stall) the raised [Failure] messages are {e byte-identical} to the
    engine's ("Engine.run: ..."), deliberately: failure parity is part
    of the differential contract. Parallel rounds fan out over the
    persistent domain {!Team} in fixed contiguous chunks. *)

type ctx = {
  n_base : int;
  n_present : int;
  off : int array;  (** CSR row offsets (see {!Topology}) *)
  adj : int array;  (** neighbor node id per CSR slot *)
  eid : int array;  (** connecting edge id per CSR slot *)
  slots : int;  (** state words per node *)
  cur : int array;  (** published states, [node * slots + slot]; read-only in [step] *)
  nxt : int array;  (** round buffer; [step ~node:v] must write all of [v]'s slots *)
}
(** The preallocated view a kernel steps over. A [step] call for node
    [v] may read any [cur] entry (its own and its neighbors' slots, via
    [off]/[adj]) and must write {e exactly} the [slots] words
    [nxt.(v * slots) .. nxt.(v * slots + slots - 1)] — writing any other
    node's slots breaks the ownership discipline that makes parallel
    rounds deterministic. *)

type kernel = {
  name : string;
  slots : int;  (** state words per node, >= 1 *)
  scratch_words : int;
  (** per-worker scratch slab size ([scratch] argument of [step]);
          0 for kernels that need none *)
  init : node:int -> slot:int -> int;  (** initial slab contents *)
  step : ctx -> scratch:int array -> round:int -> node:int -> unit;
  (** one node step; must not allocate on its hot path — neighbor
          scans belong in top-level recursive helpers, not local
          closures *)
  halted : (ctx -> node:int -> bool) option;
      (** halting predicate on the {e published} state, for {!run};
          [None] restricts the kernel to {!run_until_stable} /
          {!run_rounds} *)
}

type outcome = { slab : int array; slots : int; rounds : int }

val words_differ : int array -> int array -> int -> int -> int -> bool
(** [words_differ cur nxt base i slots]: do the two slabs disagree
    anywhere in [base+i .. base+slots)? The commit primitive — exposed
    for out-of-process executors that replay the flat commit
    discipline over a shard-local slab. *)

val read : outcome -> node:int -> slot:int -> int
(** [slab.(node * slots + slot)]. *)

val column : outcome -> slot:int -> int array
(** One state word per node (length [n_base]) — the flat counterpart of
    the boxed engine's [states] array, for differential comparison. *)

val run :
  ?par:int ->
  ?sched:Engine.scheduling ->
  ?trace:Trace.t ->
  ?label:string ->
  topo:Topology.t ->
  kernel:kernel ->
  max_rounds:int ->
  unit ->
  outcome
(** Flat counterpart of {!Engine.run} (requires [kernel.halted]; raises
    [Invalid_argument] otherwise). [par] defaults to 1 (pure sequential,
    the zero-allocation reference path); [par > 1] fans rounds with more
    than {!Engine.par_grain} active nodes per chunk out to the domain
    team. Traces
    are stamped [mode = "flat:seq" | "flat:par:N"], [layout = "flat"]
    and delivered to {!Engine.trace_sink} / {!Engine.metrics_sink}
    exactly like boxed runs. *)

val run_until_stable :
  ?par:int ->
  ?sched:Engine.scheduling ->
  ?trace:Trace.t ->
  ?label:string ->
  topo:Topology.t ->
  kernel:kernel ->
  max_rounds:int ->
  unit ->
  outcome
(** Flat counterpart of {!Engine.run_until_stable} ([kernel.halted] is
    ignored): stops at a global fixed point; the detection round is not
    charged. *)

val run_rounds :
  ?par:int ->
  ?sched:Engine.scheduling ->
  ?trace:Trace.t ->
  ?label:string ->
  topo:Topology.t ->
  kernel:kernel ->
  rounds:int ->
  unit ->
  outcome
(** Flat counterpart of {!Engine.run_rounds}: exactly [rounds] rounds of
    a fixed schedule (use [~sched:Full_scan] for round-number-driven
    kernels). *)

(** Ported kernels, bit-compatible with the boxed machines used across
    tests and benchmarks. *)
module Kernels : sig
  val flood : ?source:int -> unit -> kernel
  (** Reachability flood from [source] (default 0): slot 0 is 0/1.
      Boxed twin: [s || exists neighbor reached] over [bool] states
      (state [b] encodes as [Bool.to_int b]). [halted] is "reached" —
      use {!run_until_stable} on graphs where not every node is
      reachable. *)

  val mis_local_max : ids:int array -> kernel
  (** Greedy MIS by local id maximum, slot 0 in {0 undecided; 1 in;
      2 out}: an undecided node joins when every undecided neighbor has
      a smaller id, leaves when a neighbor joined. Bit-compatible with
      the [mis_step] machine in test/test_engine.ml and bench B6.
      [halted] is "decided". *)
end
