type t = { workers : int }

let default_workers = ref 1

(* Observation hook, owned by Tl_obs.Metrics (above this library in the
   DAG): called once per map on the coordinating domain, before any
   worker runs. *)
let tap : (tasks:int -> workers:int -> unit) option ref = ref None

let create ?workers () =
  let w = match workers with Some w -> w | None -> !default_workers in
  if w < 1 then
    invalid_arg (Printf.sprintf "Pool.create: workers must be >= 1 (got %d)" w);
  if w > Team.max_workers then
    invalid_arg
      (Printf.sprintf "Pool.create: workers must be <= %d (got %d)"
         Team.max_workers w);
  { workers = w }

let workers t = t.workers
let prewarm t = Team.prewarm t.workers

(* One slot per task, written by exactly one domain (fixed chunking) and
   read only after the team barrier — the barrier's mutex handshake is
   the happens-before edge publishing both the slots and any task-owned
   shared writes. *)
type 'b slot = Pending | Done of 'b | Raised of exn

let map t ~tasks ~f =
  let n = Array.length tasks in
  let p = min t.workers n in
  (match !tap with Some obs -> obs ~tasks:n ~workers:(max 1 p) | None -> ());
  if p <= 1 then Array.mapi (fun i x -> f ~worker:0 ~index:i x) tasks
  else begin
    let slots = Array.make n Pending in
    let chunk = (n + p - 1) / p in
    Team.run ~workers:p (fun w ->
        let lo = w * chunk and hi = min n ((w + 1) * chunk) in
        for i = lo to hi - 1 do
          slots.(i) <-
            (match f ~worker:w ~index:i tasks.(i) with
            | r -> Done r
            | exception e -> Raised e)
        done);
    Array.mapi
      (fun i slot ->
        match slot with
        | Done r -> r
        | Raised e -> raise e
        | Pending ->
          failwith (Printf.sprintf "Pool.map: task %d never executed" i))
      slots
  end

let map_commit t ~tasks ~work ~commit =
  let results = map t ~tasks ~f:work in
  Array.iteri (fun i r -> commit ~index:i r) results
