(** Deterministic, work-stealing-free domain pool.

    The paper's Algorithms 2 and 4 solve the list variants "in parallel"
    over all rake components / star families (Theorems 12 and 15). This
    pool is the execution substrate for that parallelism: a fixed number
    of workers, {e fixed contiguous chunking} of the task array (the same
    discipline as the engine's [Par p] stepper — no work stealing, no
    queues), and a {e sequential commit order}, so a pooled run is
    bit-identical to the sequential one for any worker count.

    Determinism contract:
    - task [i] is executed by worker [i / ⌈n/p⌉] — a pure function of
      [(n, p, i)], never of runtime timing;
    - [f] receives its worker index so callers can hand each worker its
      own scratch (BFS arrays, buffers) — workers must only write to
      worker-indexed scratch and to task-owned regions of shared state
      (disjoint by construction; see {!Tl_core.Theorem1} for the
      owner-check discipline);
    - results (and exceptions) are collected per task and delivered in
      task-index order after all workers joined: the first failing task
      in {e index} order re-raises, regardless of which worker hit an
      exception first on the wall clock.

    Spans ({!Tl_obs.Span}) are per-process and must not be touched from
    worker callbacks; record pool counters from the coordinating domain
    (the callers do: [pool:workers], [pool:tasks]). *)

type t

val tap : (tasks:int -> workers:int -> unit) option ref
(** Observation hook: when set, every {!map} reports its task count and
    effective worker count once, from the coordinating domain, before
    any worker spawns. Owned by [Tl_obs.Metrics.enable] (the registry
    sits above this library in the DAG); the callback must not raise. *)

val default_workers : int ref
(** Worker count used when {!create} gets no explicit [workers] — the
    CLI's [--pool N] sets this once at startup. Defaults to [1]
    (sequential everywhere unless opted in). *)

val create : ?workers:int -> unit -> t
(** [create ?workers ()] — a pool descriptor (the domains themselves are
    owned by the process-wide {!Team} and shared between pools).
    [workers] defaults to [!default_workers]. Raises [Invalid_argument]
    with an explicit message when [workers] is outside [[1, 64]] — the
    bound used to be a silent clamp, which hid typo'd [--pool 640] runs
    behind plausible timings. *)

val workers : t -> int

val prewarm : t -> unit
(** Spawn and park the team members {!map} would use, without running
    any task — callers that benchmark or serve pay the one-time domain
    spawn cost here instead of inside the first timed map. *)

val map : t -> tasks:'a array -> f:(worker:int -> index:int -> 'a -> 'b) -> 'b array
(** [map t ~tasks ~f] applies [f] to every task and returns the results
    in task order. With [workers t = 1] (or fewer than 2 tasks) this is
    exactly [Array.mapi] on the current domain — the sequential
    reference path. Otherwise the task array is cut into
    [min (workers t) n] fixed contiguous chunks, chunk 0 runs on the
    calling domain and each remaining chunk on a parked {!Team} member
    (spawned once per process, reused across maps); the team barrier
    completes before any result is observed. If one or more
    tasks raised, the exception of the {e lowest-index} failing task is
    re-raised after the join (side effects of other tasks, including
    later-index ones, have already happened — callers that need
    all-or-nothing must not rely on partial failure). *)

val map_commit :
  t ->
  tasks:'a array ->
  work:(worker:int -> index:int -> 'a -> 'b) ->
  commit:(index:int -> 'b -> unit) ->
  unit
(** {!map} followed by a sequential commit pass in task-index order on
    the calling domain — the shape used by the theorem phases: compute
    in parallel, publish/accumulate deterministically. *)
