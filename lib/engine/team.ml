let max_workers = 64

(* All mutable team state lives under [mu]. Members park in
   [member_loop], waiting for [epoch] to move past the last epoch they
   completed; the coordinator publishes a job by installing [job]/[width]
   and bumping [epoch] under the lock, then broadcasting. Every spawned
   member decrements [remaining] exactly once per epoch (members whose
   index is >= the job width wake, skip the work and decrement), so the
   coordinator's wait for [remaining = 0] is a full barrier. *)
let mu = Mutex.create ()
let work_cv = Condition.create ()
let done_cv = Condition.create ()
let epoch = ref 0
let job : (int -> unit) ref = ref (fun _ -> ())
let width = ref 0
let remaining = ref 0
let stop = ref false
let members = ref 0 (* parked member count; member indices are 1-based *)
let doms : unit Domain.t list ref = ref []
let errors : (int * exn) list ref = ref []
let spawns_total = ref 0
let tap : (spawned:int -> unit) option ref = ref None
let exit_hooked = ref false

(* Reentrancy / concurrency guard: the team serves one coordinator at a
   time. [run] take-locks [busy]; if it is already held (a job's own code
   called back into [run], or another domain raced us) the nested call
   runs inline instead of parking on a barrier it would deadlock. *)
let busy = Mutex.create ()

let rec member_loop w last_epoch =
  Mutex.lock mu;
  while !epoch = last_epoch && not !stop do
    Condition.wait work_cv mu
  done;
  if !stop then Mutex.unlock mu
  else begin
    let e = !epoch in
    let f = !job and wd = !width in
    Mutex.unlock mu;
    let err = if w < wd then (try f w; None with ex -> Some ex) else None in
    Mutex.lock mu;
    (match err with Some ex -> errors := (w, ex) :: !errors | None -> ());
    decr remaining;
    if !remaining = 0 then Condition.broadcast done_cv;
    Mutex.unlock mu;
    member_loop w e
  end

let shutdown () =
  Mutex.lock mu;
  let ds = !doms in
  doms := [];
  members := 0;
  if ds <> [] then begin
    stop := true;
    Condition.broadcast work_cv
  end;
  Mutex.unlock mu;
  if ds <> [] then begin
    List.iter Domain.join ds;
    Mutex.lock mu;
    stop := false;
    Mutex.unlock mu
  end

(* Called with [mu] held. Spawns members [members+1 .. need]; each new
   member is handed the current epoch so it parks until the next bump. *)
let ensure_members need =
  if !members < need then begin
    let added = need - !members in
    while !members < need do
      let w = !members + 1 in
      let e0 = !epoch in
      doms := Domain.spawn (fun () -> member_loop w e0) :: !doms;
      incr members;
      incr spawns_total
    done;
    if not !exit_hooked then begin
      exit_hooked := true;
      at_exit shutdown
    end;
    match !tap with Some obs -> obs ~spawned:added | None -> ()
  end

let run_inline workers f =
  for w = 0 to workers - 1 do
    f w
  done

let run ~workers f =
  let workers = min workers max_workers in
  if workers <= 1 then f 0
  else if not (Mutex.try_lock busy) then run_inline workers f
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock busy)
      (fun () ->
        Mutex.lock mu;
        ensure_members (workers - 1);
        job := f;
        width := workers;
        errors := [];
        remaining := !members;
        incr epoch;
        Condition.broadcast work_cv;
        Mutex.unlock mu;
        let mine = try f 0; None with ex -> Some ex in
        Mutex.lock mu;
        while !remaining > 0 do
          Condition.wait done_cv mu
        done;
        let errs = !errors in
        errors := [];
        job := (fun _ -> ());
        Mutex.unlock mu;
        let all = match mine with Some ex -> (0, ex) :: errs | None -> errs in
        match List.sort (fun (a, _) (b, _) -> compare a b) all with
        | [] -> ()
        | (_, ex) :: _ -> raise ex)

let prewarm w =
  let w = min w max_workers in
  if w > 1 && Mutex.try_lock busy then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock busy)
      (fun () ->
        Mutex.lock mu;
        ensure_members (w - 1);
        Mutex.unlock mu)

let spawns () =
  Mutex.lock mu;
  let s = !spawns_total in
  Mutex.unlock mu;
  s
