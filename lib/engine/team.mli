(** Persistent domain team: spawn once, park on a barrier, reuse.

    OCaml 5 domains are heavyweight (each carries its own minor heap and
    registers with the stop-the-world machinery), so the original
    spawn-per-{!Pool.map} / spawn-per-round discipline paid a full domain
    startup+teardown on every parallel phase — measurable as `par:{2,4}`
    losing to `seq` outright in BENCH_engine.json. This module keeps the
    workers alive between phases: members are spawned on first use, park
    on a condition-variable barrier between jobs, and are woken per job
    by an epoch bump under the team mutex.

    Determinism contract (same as {!Pool}): a job is an array of worker
    indices [0 .. workers-1]; which index runs which work item is decided
    by the {e caller's} fixed chunking, never by timing. Index 0 always
    runs on the calling domain. The mutex handshake (members observe the
    epoch bump under the lock, the coordinator observes the last
    decrement under the lock) is the happens-before edge publishing every
    member write before {!run} returns — callers need no further
    synchronization for worker-indexed scratch or disjoint slices.

    Exception contract: if one or more indices raise, every member still
    finishes its index (no member is left mid-job), and the exception of
    the {e lowest} worker index is re-raised from {!run} — a pure
    function of the job, not of scheduling order.

    Reentrancy: {!run} from inside a running job (e.g. a pooled task that
    itself asks for a parallel stepper) detects the live team via a
    try-lock and runs all indices inline on the current domain instead of
    deadlocking on the barrier. Nested parallelism therefore degrades to
    sequential, deterministically. *)

val max_workers : int
(** Hard cap on [workers] accepted by {!run}: [64] (63 parked members +
    the calling domain). Mirrors the {!Pool.create} bound. *)

val run : workers:int -> (int -> unit) -> unit
(** [run ~workers f] executes [f 0 .. f (workers-1)], index 0 on the
    calling domain and the rest on parked team members (spawned on first
    need, reused afterwards). Returns after {e every} index finished;
    re-raises the lowest-index exception if any. [workers <= 1] calls
    [f 0] directly with no synchronization at all. [workers] above
    {!max_workers} is clamped. *)

val prewarm : int -> unit
(** [prewarm w] spawns and parks the members a [run ~workers:w] would
    need, without running a job — callers that care about first-round
    latency (benchmarks, the serving daemon) pay the spawn cost here
    instead of inside the first timed region. *)

val spawns : unit -> int
(** Total domains ever spawned by the team in this process — the whole
    point of the team is that this stays flat under load. Exposed to
    metrics as [pool_spawns_total]. *)

val tap : (spawned:int -> unit) option ref
(** Observation hook: called (from the coordinating domain, under no
    user-visible lock ordering guarantees) each time the team spawns new
    member domains, with the number spawned. Owned by
    [Tl_obs.Metrics.enable]; the callback must not raise. *)

val shutdown : unit -> unit
(** Stop and join every parked member (idempotent; a later {!run}
    respawns on demand). Registered via [at_exit] on first spawn so a
    process never hangs on parked domains. *)
