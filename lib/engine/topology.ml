module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph

type t = {
  sg : Semi_graph.t;
  n_base : int;
  n_present : int;
  present : bool array;
  present_nodes : int array;
  off : int array;
  adj : int array;
  eid : int array;
  hid : int array;
}

let compile sg =
  let base = Semi_graph.base sg in
  let n = Graph.n_nodes base in
  let present = Array.init n (Semi_graph.node_present sg) in
  let n_present = ref 0 in
  Array.iter (fun p -> if p then incr n_present) present;
  let present_nodes = Array.make !n_present 0 in
  let j = ref 0 in
  for v = 0 to n - 1 do
    if present.(v) then begin
      present_nodes.(!j) <- v;
      incr j
    end
  done;
  (* first pass: rank-2 degrees; second pass: fill the CSR rows *)
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    if present.(v) then begin
      let inc = Graph.incident base v and adjv = Graph.neighbors base v in
      let d = ref 0 in
      for i = 0 to Array.length inc - 1 do
        if Semi_graph.edge_present sg inc.(i) && present.(adjv.(i)) then
          incr d
      done;
      off.(v + 1) <- !d
    end
  done;
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + off.(v + 1)
  done;
  let m2 = off.(n) in
  let adj = Array.make m2 0 in
  let eid = Array.make m2 0 in
  let hid = Array.make m2 0 in
  for v = 0 to n - 1 do
    if present.(v) then begin
      let inc = Graph.incident base v and adjv = Graph.neighbors base v in
      let pos = ref off.(v) in
      for i = 0 to Array.length inc - 1 do
        let e = inc.(i) and u = adjv.(i) in
        if Semi_graph.edge_present sg e && present.(u) then begin
          adj.(!pos) <- u;
          eid.(!pos) <- e;
          hid.(!pos) <- Graph.half_edge base ~edge:e ~node:v;
          incr pos
        end
      done
    end
  done;
  { sg; n_base = n; n_present = !n_present; present; present_nodes;
    off; adj; eid; hid }

(* ---------- compile cache ----------

   Keyed by view identity: (Semi_graph.stamp, Semi_graph.generation).
   The stamp is unique per view and the generation bumps on every mask
   mutation, so a stale snapshot can never be served — mutation simply
   makes the old key unreachable. Bounded FIFO eviction (a snapshot pins
   its semi-graph, so an unbounded cache would pin every view ever
   compiled). The mutex makes the cache safe to reach from pool workers;
   the counters are atomics so hit/miss accounting stays exact under
   concurrent compiles. *)

let cache : (int * int, t) Hashtbl.t = Hashtbl.create 64
let cache_order : (int * int) Queue.t = Queue.create ()
let cache_limit = ref 64
let cache_mutex = Mutex.create ()
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

let cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

let clear_cache () =
  Mutex.protect cache_mutex (fun () ->
      Hashtbl.reset cache;
      Queue.clear cache_order)

let set_cache_limit n =
  if n < 0 then invalid_arg "Topology.set_cache_limit: negative limit";
  Mutex.protect cache_mutex (fun () -> cache_limit := n);
  if n = 0 then clear_cache ()

let compile_cached_stat sg =
  let key = (Semi_graph.stamp sg, Semi_graph.generation sg) in
  let cached =
    Mutex.protect cache_mutex (fun () -> Hashtbl.find_opt cache key)
  in
  match cached with
  | Some t ->
    Atomic.incr cache_hits;
    (t, true)
  | None ->
    Atomic.incr cache_misses;
    let t = compile sg in
    Mutex.protect cache_mutex (fun () ->
        if !cache_limit > 0 && not (Hashtbl.mem cache key) then begin
          while Queue.length cache_order >= !cache_limit do
            Hashtbl.remove cache (Queue.pop cache_order)
          done;
          Hashtbl.add cache key t;
          Queue.push key cache_order
        end);
    (t, false)

let compile_cached sg = fst (compile_cached_stat sg)

let n_base t = t.n_base
let n_present t = t.n_present
let present t v = t.present.(v)
let degree t v = t.off.(v + 1) - t.off.(v)

let max_degree t =
  Array.fold_left (fun acc v -> max acc (degree t v)) 0 t.present_nodes

(* Iterative reverse builds: hub nodes can have ~n neighbors, so recursion
   over the row would overflow the stack. *)
let neighbor_nodes t v =
  let acc = ref [] in
  for i = t.off.(v + 1) - 1 downto t.off.(v) do
    acc := t.adj.(i) :: !acc
  done;
  !acc

let neighbor_pairs t v =
  let acc = ref [] in
  for i = t.off.(v + 1) - 1 downto t.off.(v) do
    acc := (t.adj.(i), t.eid.(i)) :: !acc
  done;
  !acc
