(** Compiled topology snapshot of a semi-graph.

    A {!Tl_graph.Semi_graph.t} answers {!Tl_graph.Semi_graph.rank2_neighbors}
    by scanning the base incidence arrays and re-checking node/edge presence
    on every call, allocating a fresh list each time — which the legacy
    stepper did once per node per round. A topology compiles that view once
    into CSR (compressed sparse row) arrays over the {e rank-2} adjacency:
    for each present node, the present rank-2 neighbors, the connecting edge
    ids and the local half-edge ids, in the same ascending incident order as
    [rank2_neighbors]. The engine's hot loop then runs over flat [int]
    arrays with no presence checks.

    The snapshot is immutable; the exposed arrays must not be mutated. *)

type t = private {
  sg : Tl_graph.Semi_graph.t;  (** the view this was compiled from *)
  n_base : int;  (** nodes of the base graph (array extents) *)
  n_present : int;
  present : bool array;
  present_nodes : int array;  (** present node ids, ascending *)
  off : int array;  (** CSR row offsets, length [n_base + 1] *)
  adj : int array;  (** neighbor node id per CSR slot *)
  eid : int array;  (** connecting edge id per CSR slot *)
  hid : int array;  (** half-edge id {e at the row node} per CSR slot *)
}

val compile : Tl_graph.Semi_graph.t -> t
(** Flatten the rank-2 adjacency of a semi-graph. [O(n + m)]. Always
    compiles afresh; see {!compile_cached} for the memoizing variant. *)

val compile_cached : Tl_graph.Semi_graph.t -> t
(** {!compile} memoized on the view's identity
    [(Semi_graph.stamp, Semi_graph.generation)]: repeated runtime phases
    over the same view ([T_C], [G[E_2]], the [G[F_{i,j}]] families, the
    color-reduction loops) reuse one CSR snapshot instead of recompiling
    per phase. Any {!Tl_graph.Semi_graph.hide_node} /
    [hide_edge] bumps the generation and thereby invalidates the cached
    snapshot. The cache is bounded (FIFO, default 64 snapshots — a
    snapshot pins its semi-graph) and safe to call from multiple
    domains. *)

val compile_cached_stat : Tl_graph.Semi_graph.t -> t * bool
(** {!compile_cached} plus whether this call was a cache hit — for
    callers that surface per-compile hit/miss observability
    ({!Tl_local.Runtime}'s span counters and trace fields). *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!compile_cached} since start (or the last
    process-wide reset — the counters are never cleared by
    {!clear_cache}). *)

val clear_cache : unit -> unit
(** Drop every cached snapshot (counters are kept). *)

val set_cache_limit : int -> unit
(** Maximum number of cached snapshots; [0] disables caching
    ({!compile_cached} degrades to {!compile} plus a miss count).
    Raises [Invalid_argument] on a negative limit. *)

val n_base : t -> int
val n_present : t -> int
val present : t -> int -> bool

val degree : t -> int -> int
(** Rank-2 (underlying) degree of a node; [0] for absent nodes. *)

val max_degree : t -> int
(** Maximum rank-2 degree over present nodes. *)

val neighbor_nodes : t -> int -> int list
(** Present rank-2 neighbor ids of a node, ascending incident order —
    the CSR equivalent of
    [List.map fst (Semi_graph.rank2_neighbors sg v)]. *)

val neighbor_pairs : t -> int -> (int * int) list
(** [(neighbor, edge)] pairs, identical order and contents to
    [Semi_graph.rank2_neighbors sg v]. *)
