type round_record = {
  round : int;
  active : int;
  changed : int;
  unhalted : int;
  wall_s : float;
}

type metrics = {
  rounds : int;
  steps : int;
  naive_steps : int;
  max_active : int;
  compile_s : float;
  total_s : float;
}

type t = {
  lbl : string;
  mutable mode : string;
  mutable scheduling : string;
  mutable layout : string;
  mutable n_base : int;
  mutable n_present : int;
  mutable compile_s : float;
  mutable compile_cached : bool;
  mutable total_s : float;
  mutable rev_records : round_record list;
}

let create ?(label = "engine") () =
  {
    lbl = label;
    mode = "?";
    scheduling = "?";
    layout = "boxed";
    n_base = 0;
    n_present = 0;
    compile_s = 0.;
    compile_cached = false;
    total_s = 0.;
    rev_records = [];
  }

let label t = t.lbl
let mode t = t.mode
let scheduling t = t.scheduling
let n_base t = t.n_base
let n_present t = t.n_present

let set_meta t ~mode ~scheduling ~n_base ~n_present =
  t.mode <- mode;
  t.scheduling <- scheduling;
  t.n_base <- n_base;
  t.n_present <- n_present

let layout t = t.layout
let set_layout t l = t.layout <- l
let set_compile_s t s = t.compile_s <- s
let set_compile_cached t b = t.compile_cached <- b
let compile_cached t = t.compile_cached
let record t r = t.rev_records <- r :: t.rev_records
let finish t ~total_s = t.total_s <- total_s
let records t = List.rev t.rev_records

let metrics t =
  let rounds = List.length t.rev_records in
  let steps, max_active =
    List.fold_left
      (fun (s, m) r -> (s + r.active, max m r.active))
      (0, 0) t.rev_records
  in
  {
    rounds;
    steps;
    naive_steps = rounds * t.n_present;
    max_active;
    compile_s = t.compile_s;
    total_s = t.total_s;
  }

let step_savings m =
  if m.naive_steps = 0 then 0.
  else 1. -. (float_of_int m.steps /. float_of_int m.naive_steps)

(* Hand-rolled JSON: the repo deliberately has no JSON dependency. *)
let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let buf_json b t =
  let m = metrics t in
  Printf.bprintf b
    "{\"label\":\"%s\",\"mode\":\"%s\",\"scheduling\":\"%s\",\
     \"layout\":\"%s\",\"n_base\":%d,\
     \"n_present\":%d,\"compile_s\":%.6f,\"compile_cached\":%b,\
     \"total_s\":%.6f,"
    (json_escape t.lbl) (json_escape t.mode) (json_escape t.scheduling)
    (json_escape t.layout) t.n_base t.n_present t.compile_s t.compile_cached
    t.total_s;
  Printf.bprintf b
    "\"metrics\":{\"rounds\":%d,\"steps\":%d,\"naive_steps\":%d,\
     \"step_savings\":%.4f,\"max_active\":%d},"
    m.rounds m.steps m.naive_steps (step_savings m) m.max_active;
  Buffer.add_string b "\"rounds_detail\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      (* untracked quantities (-1) are omitted rather than serialized as
         sentinel numbers *)
      Printf.bprintf b "{\"round\":%d,\"active\":%d," r.round r.active;
      if r.changed >= 0 then Printf.bprintf b "\"changed\":%d," r.changed;
      if r.unhalted >= 0 then Printf.bprintf b "\"unhalted\":%d," r.unhalted;
      Printf.bprintf b "\"wall_s\":%.6f}" r.wall_s)
    (records t);
  Buffer.add_string b "]}"

let to_json t =
  let b = Buffer.create 1024 in
  buf_json b t;
  Buffer.contents b

let list_to_json ts =
  let b = Buffer.create 4096 in
  Buffer.add_char b '[';
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_string b ",\n ";
      buf_json b t)
    ts;
  Buffer.add_string b "]\n";
  Buffer.contents b

let write_json ~file ts =
  let oc = open_out file in
  output_string oc (list_to_json ts);
  close_out oc

let pp_summary ppf t =
  let m = metrics t in
  Format.fprintf ppf
    "%-18s %-6s %-10s rounds %4d  steps %9d/%9d (saved %4.1f%%)  %8.4fs"
    t.lbl t.mode t.scheduling m.rounds m.steps m.naive_steps
    (100. *. step_savings m)
    m.total_s
