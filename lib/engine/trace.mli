(** Instrumentation for engine runs: per-round event records, aggregate
    metrics and JSON export.

    A trace is a mutable collector handed to (or created by) an engine
    run. Every executed round appends one {!round_record}; the engine
    stamps the run's metadata (mode, scheduling, instance size) and the
    compile / total wall-clock when it finishes.

    {2 JSON schema}

    {!to_json} serializes one run as:
    {v
    { "label": "runtime.run", "mode": "seq", "scheduling": "active-set",
      "layout": "boxed",
      "n_base": 100000, "n_present": 100000,
      "compile_s": 0.0021, "compile_cached": false, "total_s": 0.1432,
      "metrics": { "rounds": 17, "steps": 634211, "naive_steps": 1700000,
                   "step_savings": 0.627, "max_active": 100000 },
      "rounds_detail": [
        { "round": 1, "active": 100000, "changed": 99872,
          "unhalted": 100000, "wall_s": 0.0061 }, ... ] }
    v}
    [unhalted] is present only for runs with a halting predicate: for
    {!Engine.run_until_stable} / {!Engine.run_rounds} the field is
    omitted entirely (in-memory records keep [-1] for untracked).
    Likewise [changed] is omitted when untracked (the naive stepper does
    no change detection). [step_savings] is [1 - steps/naive_steps] where
    [naive_steps] is what a full re-step of every present node each round
    would have executed. *)

type round_record = {
  round : int;  (** 1-based round index *)
  active : int;  (** nodes scheduled (= step calls executed) *)
  changed : int;  (** nodes whose state changed this round *)
  unhalted : int;  (** unhalted nodes after the round; [-1] if untracked *)
  wall_s : float;  (** wall-clock of the round (compute + commit) *)
}

type metrics = {
  rounds : int;
  steps : int;  (** total step calls across all rounds *)
  naive_steps : int;  (** [rounds * n_present]: full-scan equivalent *)
  max_active : int;
  compile_s : float;
  total_s : float;
}

type t

val create : ?label:string -> unit -> t
(** Fresh empty collector. The label tags the run in JSON output and
    summaries (e.g. the wrapping API entry point or a kernel name). *)

val label : t -> string

val mode : t -> string
(** Stepper mode as stamped by {!set_meta} (["?"] before the run). *)

val scheduling : t -> string

val layout : t -> string
(** State representation of the run: ["boxed"] (the default — states are
    ordinary OCaml values) or ["flat"] (int-slab states, {!Flat}).
    Serialized as ["layout"]. *)

val n_base : t -> int
val n_present : t -> int

(** {1 Engine-side recording} *)

val set_meta :
  t -> mode:string -> scheduling:string -> n_base:int -> n_present:int -> unit

val set_layout : t -> string -> unit
val set_compile_s : t -> float -> unit

val set_compile_cached : t -> bool -> unit
(** Whether the run's topology came out of the
    {!Topology.compile_cached} cache ([compile_s] is then the lookup
    cost, not a compile). Serialized as ["compile_cached"]. *)

val compile_cached : t -> bool

val record : t -> round_record -> unit
val finish : t -> total_s:float -> unit

(** {1 Consumption} *)

val records : t -> round_record list
(** Rounds in execution order. *)

val metrics : t -> metrics

val to_json : t -> string
(** One run as a JSON object (schema above). *)

val list_to_json : t list -> string
(** Several runs as a JSON array, in the given order. *)

val write_json : file:string -> t list -> unit

val pp_summary : Format.formatter -> t -> unit
(** One-line human summary: label, mode, rounds, steps, savings, time. *)
