module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Span = Tl_obs.Span
module Metrics = Tl_obs.Metrics
module Json = Tl_obs.Json

type problem = Flood of { source : int } | Mis of { ids : int array }

let problem_name = function Flood _ -> "flood" | Mis _ -> "mis"

type report = {
  problem : string;
  mode : string;
  n : int;
  epochs : int;
  retries : int;
  rounds : int;
  horizon : int;
  crashes : int;
  recoveries : int;
  drops : int;
  kills : int;
  repairs : int;
  relabeled : int;
  repair_region : int;
  repair_s : float;
  valid : bool;
  survivors : int;
  digest : int64;
  log : (int * Injector.applied) list;
  labels : int array;
}

(* FNV-1a over (node, label) pairs of the surviving nodes *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_int h x =
  let h = ref h and x = ref x in
  for _ = 0 to 7 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (!x land 0xff))) fnv_prime;
    x := !x asr 8
  done;
  !h

let digest_labels ~present ~labels =
  let h = ref fnv_offset in
  Array.iteri
    (fun v p -> if p then h := fnv_int (fnv_int !h v) labels.(v))
    present;
  !h

(* staleness: mid-run damage that continued rounds cannot undo *)

let stale_flood ~sg ~source ~labels =
  let n = Graph.n_nodes (Semi_graph.base sg) in
  let stale = ref false in
  if not (Semi_graph.node_present sg source) then
    for v = 0 to n - 1 do
      if Semi_graph.node_present sg v && labels.(v) = 1 then stale := true
    done
  else begin
    let dist = Semi_graph.underlying_distances sg source in
    for v = 0 to n - 1 do
      if Semi_graph.node_present sg v && labels.(v) = 1 && dist.(v) < 0 then
        stale := true
    done
  end;
  !stale

let stale_mis ~sg ~labels =
  List.exists
    (fun v ->
      let s = labels.(v) in
      if s <> 1 && s <> 2 then false
      else
        let has_in =
          List.exists
            (fun (u, _) -> labels.(u) = 1)
            (Semi_graph.rank2_neighbors sg v)
        in
        if s = 1 then has_in else not has_in)
    (Semi_graph.nodes sg)

let m_deaths = lazy (Metrics.counter "fault_deaths_total")
let m_recoveries = lazy (Metrics.counter "fault_recoveries_total")
let m_repairs = lazy (Metrics.counter "fault_repairs_total")
let m_relabeled = lazy (Metrics.counter "fault_relabeled_total")
let m_repair_hist = lazy (Metrics.histogram "fault_repair_seconds")

let run ?mode ?(sched = Engine.Active_set) ?max_rounds ~graph ~problem
    ~schedule () =
  let mode = match mode with Some m -> m | None -> !Engine.default_mode in
  let n = Graph.n_nodes graph in
  let max_rounds =
    match max_rounds with Some m -> m | None -> (4 * n) + 64
  in
  let init0 =
    match problem with
    | Flood { source } ->
      if source < 0 || source >= n then
        invalid_arg "Chaos.run: flood source out of range";
      Repair.flood_init ~source
    | Mis { ids } ->
      if Array.length ids <> n then
        invalid_arg "Chaos.run: ids length mismatch";
      Repair.mis_init
  in
  let inj = Injector.arm schedule ~n in
  Fun.protect ~finally:(fun () -> Injector.disarm inj) @@ fun () ->
  let present = Array.make n true in
  let sg = ref (Semi_graph.of_node_subset graph present) in
  let labels = Array.init n init0 in
  let base = ref 0 in
  let epochs = ref 0 in
  let retries = ref 0 in
  let rounds = ref 0 in
  let repairs = ref 0 in
  let relabeled = ref 0 in
  let repair_region = ref 0 in
  let repair_s = ref 0.0 in
  let run_epoch topo =
    match problem with
    | Flood _ ->
      Engine.run_until_stable ~mode ~sched ~label:"chaos" ~topo
        ~init:(fun v -> labels.(v))
        ~step:Repair.flood_step ~equal:Int.equal ~max_rounds ()
    | Mis { ids } ->
      Engine.run ~mode ~sched ~label:"chaos" ~topo
        ~init:(fun v -> labels.(v))
        ~step:(Repair.mis_step ~ids) ~halted:Repair.mis_halted ~max_rounds ()
  in
  let run_epoch_retrying topo =
    let rec attempt k =
      try run_epoch topo
      with Tl_proc.Wire.Proc_failure _ when k < 8 ->
        incr retries;
        attempt (k + 1)
    in
    attempt 0
  in
  let is_stale () =
    match problem with
    | Flood { source } -> stale_flood ~sg:!sg ~source ~labels
    | Mis _ -> stale_mis ~sg:!sg ~labels
  in
  let timed_repair ~suspects =
    let t0 = Unix.gettimeofday () in
    let st =
      match problem with
      | Flood { source } ->
        Repair.repair_flood ~sg:!sg ~source ~labels ~suspects
      | Mis { ids } -> Repair.repair_mis ~graph ~sg:!sg ~ids ~labels
    in
    let dt = Unix.gettimeofday () -. t0 in
    incr repairs;
    relabeled := !relabeled + st.Repair.relabeled;
    repair_region := !repair_region + st.Repair.region;
    repair_s := !repair_s +. dt;
    if Metrics.enabled () then begin
      Metrics.incr (Lazy.force m_repairs) 1;
      Metrics.incr (Lazy.force m_relabeled) st.Repair.relabeled;
      Metrics.observe (Lazy.force m_repair_hist) dt
    end;
    Span.with_span "fault:repair" (fun () ->
        Span.add_counter "relabeled" st.Repair.relabeled;
        Span.add_counter "region" st.Repair.region);
    st
  in
  let apply_events events =
    let suspects = ref [] in
    let any_recover = ref false in
    let deaths = ref 0 in
    let recovered = ref 0 in
    List.iter
      (fun ev ->
        match ev with
        | Schedule.Crash v ->
          if present.(v) then begin
            present.(v) <- false;
            Semi_graph.hide_node !sg v;
            incr deaths;
            Array.iter
              (fun u -> if present.(u) then suspects := u :: !suspects)
              (Graph.neighbors graph v)
          end
        | Schedule.Recover v ->
          if not present.(v) then begin
            present.(v) <- true;
            labels.(v) <- init0 v;
            any_recover := true;
            incr recovered;
            suspects := v :: !suspects
          end
        | Schedule.Drop _ | Schedule.Kill _ -> ())
      events;
    if !any_recover then sg := Semi_graph.of_node_subset graph present;
    if Metrics.enabled () then begin
      if !deaths > 0 then Metrics.incr (Lazy.force m_deaths) !deaths;
      if !recovered > 0 then Metrics.incr (Lazy.force m_recoveries) !recovered
    end;
    List.rev !suspects
  in
  let finished = ref false in
  Span.with_span "fault:chaos"
    ~attrs:
      [
        ("problem", problem_name problem);
        ("mode", Engine.mode_to_string mode);
      ]
  @@ fun () ->
  while not !finished do
    incr epochs;
    Injector.set_base inj !base;
    let topo = Topology.compile_cached !sg in
    let outcome = run_epoch_retrying topo in
    Array.iter
      (fun v -> labels.(v) <- outcome.Engine.states.(v))
      topo.Topology.present_nodes;
    base := !base + outcome.Engine.rounds;
    rounds := !rounds + outcome.Engine.rounds;
    match Injector.next_topo_round inj with
    | None -> finished := true
    | Some r ->
      (* converged before the event round: the schedule clock keeps
         ticking through no-op rounds *)
      if !base < r then base := r;
      let events = Injector.take_topo_due inj ~round:!base in
      let suspects = apply_events events in
      if is_stale () then begin
        let _ = timed_repair ~suspects in
        if is_stale () then
          failwith "Chaos.run: repair left stale labels behind"
      end
  done;
  (* final validity on the surviving graph; link drops can leave stale
     ghosts that only show up here — heal and re-check once *)
  let full_check () =
    match problem with
    | Flood { source } -> Repair.check_flood ~sg:!sg ~source ~labels
    | Mis { ids = _ } -> Repair.check_mis ~sg:!sg ~labels
  in
  let valid =
    if full_check () then true
    else begin
      let everyone =
        match problem with
        | Flood _ -> Semi_graph.nodes !sg
        | Mis _ -> []
      in
      let _ = timed_repair ~suspects:everyone in
      full_check ()
    end
  in
  let survivors = Semi_graph.n_present_nodes !sg in
  let crashes, recoveries, drops, kills = Injector.counts inj in
  {
    problem = problem_name problem;
    mode = Engine.mode_to_string mode;
    n;
    epochs = !epochs;
    retries = !retries;
    rounds = !rounds;
    horizon = !base;
    crashes;
    recoveries;
    drops;
    kills;
    repairs = !repairs;
    relabeled = !relabeled;
    repair_region = !repair_region;
    repair_s = !repair_s;
    valid;
    survivors;
    digest = digest_labels ~present ~labels;
    log = Injector.log inj;
    labels;
  }

let report_to_json r =
  Json.Obj
    [
      ("problem", Json.Str r.problem);
      ("mode", Json.Str r.mode);
      ("n", Json.Num (float_of_int r.n));
      ("epochs", Json.Num (float_of_int r.epochs));
      ("retries", Json.Num (float_of_int r.retries));
      ("rounds", Json.Num (float_of_int r.rounds));
      ("horizon", Json.Num (float_of_int r.horizon));
      ("crashes", Json.Num (float_of_int r.crashes));
      ("recoveries", Json.Num (float_of_int r.recoveries));
      ("drops", Json.Num (float_of_int r.drops));
      ("kills", Json.Num (float_of_int r.kills));
      ("repairs", Json.Num (float_of_int r.repairs));
      ("relabeled", Json.Num (float_of_int r.relabeled));
      ("repair_region", Json.Num (float_of_int r.repair_region));
      ("repair_s", Json.Num r.repair_s);
      ("valid", Json.Bool r.valid);
      ("survivors", Json.Num (float_of_int r.survivors));
      ("digest", Json.Str (Printf.sprintf "%016Lx" r.digest));
      ( "log",
        Json.Arr
          (List.map
             (fun (round, a) ->
               Json.Obj
                 [
                   ("round", Json.Num (float_of_int round));
                   ("event", Json.Str (Injector.applied_to_string a));
                 ])
             r.log) );
    ]
