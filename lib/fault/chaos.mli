(** Chaos runs: drive a workload under an armed fault schedule, repair
    the damage, and prove the surviving graph valid.

    A chaos run is an {e epoch loop}. Each epoch compiles the current
    surviving view ({!Tl_engine.Topology.compile_cached} — repeated
    epochs over an unchanged view reuse one snapshot) and runs the
    workload kernel in the chosen engine mode from the current labels.
    The armed {!Injector} gate interrupts the run at the round boundary
    before the next crash / recover event; the orchestrator then applies
    the topology surgery ([hide_node] for crashes — a generation bump
    that invalidates every cached artifact; a fresh
    [Semi_graph.of_node_subset] for recoveries, since views only
    shrink), repairs any staleness the surgery created, and loops. When
    a run converges {e before} the next scheduled event, the clock
    fast-forwards to the event's round — converged rounds are no-ops, so
    the schedule's absolute rounds stay meaningful.

    Staleness, not completeness, is what fault-time repair restores: a
    mid-run labeling is allowed to be unconverged (flooding still
    spreading, MIS nodes still undecided) but never {e wrong} (a
    reached flag outside the source's component, an MIS [out] without a
    witness). The full validity predicate of {!Repair} is asserted once,
    after the final epoch converges — with one last repair pass if link
    drops left stale ghosts behind.

    Proc-backend kills surface as [Tl_proc.Wire.Proc_failure]; the
    orchestrator catches them, counts a retry, and re-runs the epoch
    from its starting labels — the injector has already consumed the
    kill, so the retry completes. The socketpair topology cannot be
    rebuilt per-worker, so recovery granularity is the epoch, not the
    round.

    Everything is deterministic: same (graph, problem, schedule, mode) —
    identical applied log, repair counts and final labeling digest,
    across all engine modes. *)

module Graph = Tl_graph.Graph

type problem =
  | Flood of { source : int }
  | Mis of { ids : int array }  (** per-node comparison keys, length n *)

val problem_name : problem -> string

type report = {
  problem : string;
  mode : string;
  n : int;
  epochs : int;  (** engine runs (excluding proc retries) *)
  retries : int;  (** proc epochs re-run after a kill / timeout *)
  rounds : int;  (** executed rounds, summed over epochs *)
  horizon : int;  (** last absolute schedule round reached *)
  crashes : int;
  recoveries : int;
  drops : int;  (** link-drop events that actually suppressed traffic *)
  kills : int;
  repairs : int;  (** repair invocations that found damage *)
  relabeled : int;  (** total labels rewritten / reset by repairs *)
  repair_region : int;  (** total nodes of re-solved regions *)
  repair_s : float;  (** total wall-clock spent repairing *)
  valid : bool;  (** final full validity on the surviving graph *)
  survivors : int;  (** present nodes at the end *)
  digest : int64;  (** FNV-1a of (node, label) over survivors *)
  log : (int * Injector.applied) list;  (** applied events, firing order *)
  labels : int array;  (** final labeling, indexed by base node id *)
}

val run :
  ?mode:Tl_engine.Engine.mode ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?max_rounds:int ->
  graph:Graph.t ->
  problem:problem ->
  schedule:Schedule.t ->
  unit ->
  report
(** Arm the schedule, drive the epoch loop, disarm (also on raise).
    [max_rounds] bounds each single epoch (default [4 * n + 64]).
    Raises [Invalid_argument] if an injector is already armed or the
    schedule names out-of-range ids, [Failure] if a fault-time repair
    fails to clear the staleness it targets. The final [valid] flag is
    reported, not raised on — callers (the CLI [chaos] command, the
    smoke test) decide the exit code. *)

val digest_labels : present:bool array -> labels:int array -> int64
(** The report's digest function, exposed for differential tests. *)

val report_to_json : report -> Tl_obs.Json.t
(** Everything except [labels] (the digest stands in for them). *)
