module Engine = Tl_engine.Engine
module Shard = Tl_shard.Shard
module Coordinator = Tl_proc.Coordinator

type applied =
  | Crashed of int
  | Recovered of int
  | Dropped of { src : int; dst : int; msgs : int }
  | Killed of int

let applied_to_string = function
  | Crashed v -> Printf.sprintf "crash:%d" v
  | Recovered v -> Printf.sprintf "recover:%d" v
  | Dropped { src; dst; msgs } ->
    Printf.sprintf "drop:%d-%d(%d msgs)" src dst msgs
  | Killed r -> Printf.sprintf "kill:%d" r

(* Drop entries aggregate in place while one round's exchange drains —
   the cell is created on the first suppressed message of a
   (round, src, dst) triple and its count bumped on the rest. *)
type drop_cell = { d_round : int; d_src : int; d_dst : int; mutable d_msgs : int }

type cell =
  | C_crash of int * int
  | C_recover of int * int
  | C_drop of drop_cell
  | C_kill of int * int

type t = {
  mutable base : int;
  (* crash / recover events, round-sorted (stable); consumed by cursor *)
  topo : (int * Schedule.event) array;
  mutable cursor : int;
  (* (round, src, dst) -> pending link cut; removed once logged *)
  drops : (int * int * int, unit) Hashtbl.t;
  fired_drops : (int * int * int, drop_cell) Hashtbl.t;
  (* round -> ranks still to kill at that round *)
  kills : (int, int list) Hashtbl.t;
  mutable log_rev : cell list;
  mutable active : bool;
}

let armed : t option ref = ref None

let set_base t b = t.base <- b
let base t = t.base

let next_topo_round t =
  if t.cursor < Array.length t.topo then Some (fst t.topo.(t.cursor))
  else None

let take_topo_due t ~round =
  let out = ref [] in
  let continue = ref true in
  while !continue && t.cursor < Array.length t.topo do
    let r, e = t.topo.(t.cursor) in
    if r = round then begin
      t.cursor <- t.cursor + 1;
      (match e with
      | Schedule.Crash v -> t.log_rev <- C_crash (r, v) :: t.log_rev
      | Schedule.Recover v -> t.log_rev <- C_recover (r, v) :: t.log_rev
      | Schedule.Drop _ | Schedule.Kill _ -> assert false);
      out := e :: !out
    end
    else continue := false
  done;
  List.rev !out

let log t =
  List.rev_map
    (function
      | C_crash (r, v) -> (r, Crashed v)
      | C_recover (r, v) -> (r, Recovered v)
      | C_drop d -> (d.d_round, Dropped { src = d.d_src; dst = d.d_dst; msgs = d.d_msgs })
      | C_kill (r, k) -> (r, Killed k))
    t.log_rev

let counts t =
  List.fold_left
    (fun (c, rv, d, k) cell ->
      match cell with
      | C_crash _ -> (c + 1, rv, d, k)
      | C_recover _ -> (c, rv + 1, d, k)
      | C_drop _ -> (c, rv, d + 1, k)
      | C_kill _ -> (c, rv, d, k + 1))
    (0, 0, 0, 0) t.log_rev

let gate t ~round =
  match next_topo_round t with
  | None -> true
  | Some r -> t.base + round < r

let drop_hook t ~round ~src ~dst =
  let abs = t.base + round in
  let key = (abs, min src dst, max src dst) in
  if Hashtbl.mem t.drops key then begin
    (match Hashtbl.find_opt t.fired_drops key with
    | Some cell -> cell.d_msgs <- cell.d_msgs + 1
    | None ->
      let _, a, b = key in
      let cell = { d_round = abs; d_src = a; d_dst = b; d_msgs = 1 } in
      Hashtbl.replace t.fired_drops key cell;
      t.log_rev <- C_drop cell :: t.log_rev);
    true
  end
  else false

let kill_hook t ~round =
  let abs = t.base + round in
  match Hashtbl.find_opt t.kills abs with
  | None -> []
  | Some ranks ->
    Hashtbl.remove t.kills abs;
    List.iter (fun k -> t.log_rev <- C_kill (abs, k) :: t.log_rev) ranks;
    ranks

let disarm t =
  if t.active then begin
    t.active <- false;
    armed := None;
    Engine.fault_gate := None;
    Shard.fault_drop_hook := None;
    Coordinator.fault_kill_hook := None
  end

let arm sched ~n =
  (match !armed with
  | Some _ ->
    invalid_arg "Injector.arm: another fault schedule is already armed"
  | None -> ());
  let events = Schedule.instantiate sched ~n in
  let topo =
    Array.of_list
      (List.filter
         (fun (_, e) ->
           match e with
           | Schedule.Crash _ | Schedule.Recover _ -> true
           | Schedule.Drop _ | Schedule.Kill _ -> false)
         events)
  in
  let drops = Hashtbl.create 16 in
  let kills = Hashtbl.create 16 in
  List.iter
    (fun (r, e) ->
      match e with
      | Schedule.Drop (a, b) -> Hashtbl.replace drops (r, min a b, max a b) ()
      | Schedule.Kill k ->
        let cur = try Hashtbl.find kills r with Not_found -> [] in
        Hashtbl.replace kills r (cur @ [ k ])
      | Schedule.Crash _ | Schedule.Recover _ -> ())
    events;
  let t =
    {
      base = 0;
      topo;
      cursor = 0;
      drops;
      fired_drops = Hashtbl.create 16;
      kills;
      log_rev = [];
      active = true;
    }
  in
  armed := Some t;
  Engine.fault_gate := Some (fun ~round -> gate t ~round);
  Shard.fault_drop_hook := Some (fun ~round ~src ~dst -> drop_hook t ~round ~src ~dst);
  Coordinator.fault_kill_hook := Some (fun ~round -> kill_hook t ~round);
  t

let with_armed sched ~n f =
  let t = arm sched ~n in
  Fun.protect ~finally:(fun () -> disarm t) (fun () -> f t)
