(** Hook installation: arms a {!Schedule} against the execution stack's
    fault seams.

    Arming instantiates the schedule and installs three hooks:

    - {!Tl_engine.Engine.fault_gate} — interrupts any engine-backed run
      at the round boundary {e before} the next pending crash / recover
      event takes effect, so topology surgery happens between rounds,
      never inside one;
    - {!Tl_shard.Shard.fault_drop_hook} — suppresses halo deliveries
      matching a [Drop] event's (src, dst) shard pair in its round;
    - [Tl_proc.Coordinator.fault_kill_hook] — SIGKILLs the ranks of a
      [Kill] event before that round's decision broadcast.

    Rounds in the schedule are {e absolute} chaos-run rounds; engine
    runs report relative rounds, so the driver (typically {!Chaos})
    tells the injector each run's base offset with {!set_base}. Only one
    injector may be armed per process at a time ([arm] raises
    [Invalid_argument] otherwise); {!with_armed} is the exception-safe
    wrapper. Disarming restores all three hooks to [None] — the
    zero-overhead state. Every fault that actually fires is recorded in
    the injector's {e applied log}, in firing order; the log is a
    deterministic function of (schedule, instance, workload), which is
    what the differential chaos tests assert. *)

type t

type applied =
  | Crashed of int
  | Recovered of int
  | Dropped of { src : int; dst : int; msgs : int }
      (** one (round, src, dst) link cut; [msgs] halo messages lost *)
  | Killed of int

val applied_to_string : applied -> string

val arm : Schedule.t -> n:int -> t
(** Instantiate the schedule against an [n]-node instance and install
    the hooks. Raises [Invalid_argument] if an injector is already
    armed, or on out-of-range node ids (see {!Schedule.instantiate}). *)

val disarm : t -> unit
(** Restore all hooks to [None]. Idempotent. *)

val with_armed : Schedule.t -> n:int -> (t -> 'a) -> 'a
(** [arm], run, always [disarm] (even on raise). *)

val set_base : t -> int -> unit
(** Absolute round already executed before the next engine run: a
    relative round [r] inside that run is absolute round [base + r]. *)

val base : t -> int

val next_topo_round : t -> int option
(** Earliest absolute round with a pending crash / recover event (the
    rounds at which the gate will interrupt). [None] when none remain. *)

val take_topo_due : t -> round:int -> Schedule.event list
(** Consume and return the pending crash / recover events at exactly
    absolute round [round] (schedule order), recording them in the
    applied log. *)

val log : t -> (int * applied) list
(** Applied events so far, in firing order, with absolute rounds.
    [Dropped] entries aggregate one round's losses per (src, dst). *)

val counts : t -> int * int * int * int
(** [(crashes, recoveries, drops, kills)] over the applied log; a
    [Dropped] entry counts once regardless of [msgs]. *)
