module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology

(* ---- kernels ---- *)

let flood_init ~source v = if v = source then 1 else 0

let flood_step ~round:_ ~node:_ s ~neighbors =
  if s = 1 then 1
  else if List.exists (fun (_, _, ns) -> ns = 1) neighbors then 1
  else 0

let mis_init _ = 0

let mis_step ~ids ~round:_ ~node s ~neighbors =
  if s <> 0 then s
  else if List.exists (fun (_, _, ns) -> ns = 1) neighbors then 2
  else
    let my = ids.(node) in
    let beaten =
      List.exists (fun (u, _, ns) -> ns = 0 && ids.(u) > my) neighbors
    in
    if beaten then 0 else 1

let mis_halted s = s <> 0

(* ---- checkers ---- *)

let check_flood ~sg ~source ~labels =
  let n = Graph.n_nodes (Semi_graph.base sg) in
  if not (Semi_graph.node_present sg source) then begin
    let ok = ref true in
    for v = 0 to n - 1 do
      if Semi_graph.node_present sg v && labels.(v) <> 0 then ok := false
    done;
    !ok
  end
  else begin
    let dist = Semi_graph.underlying_distances sg source in
    let ok = ref true in
    for v = 0 to n - 1 do
      if Semi_graph.node_present sg v then begin
        let want = if dist.(v) >= 0 then 1 else 0 in
        if labels.(v) <> want then ok := false
      end
    done;
    !ok
  end

let check_mis ~sg ~labels =
  let ok = ref true in
  List.iter
    (fun v ->
      let s = labels.(v) in
      if s <> 1 && s <> 2 then ok := false
      else begin
        let nbrs = Semi_graph.rank2_neighbors sg v in
        if s = 1 then begin
          if List.exists (fun (u, _) -> labels.(u) = 1) nbrs then ok := false
        end
        else if not (List.exists (fun (u, _) -> labels.(u) = 1) nbrs) then
          ok := false
      end)
    (Semi_graph.nodes sg);
  !ok

(* ---- repair ---- *)

type stats = { relabeled : int; region : int; rounds : int }

let no_repair = { relabeled = 0; region = 0; rounds = 0 }

let repair_flood ~sg ~source ~labels ~suspects =
  let n = Graph.n_nodes (Semi_graph.base sg) in
  let visited = Array.make n false in
  let relabeled = ref 0 in
  (* flat int queue: a suspect component can be most of the instance, so
     the BFS constant decides whether repair beats a recompute at all —
     the queue slice [start, tail) doubles as the member list *)
  let queue = Array.make n 0 in
  let tail = ref 0 in
  let region = ref 0 in
  let flood_component seed =
    let start = !tail in
    let head = ref start in
    let has_source = ref false in
    queue.(!tail) <- seed;
    incr tail;
    visited.(seed) <- true;
    while !head < !tail do
      let v = queue.(!head) in
      incr head;
      if v = source then has_source := true;
      Semi_graph.iter_rank2_neighbors sg v (fun u _e ->
          if not visited.(u) then begin
            visited.(u) <- true;
            queue.(!tail) <- u;
            incr tail
          end)
    done;
    let want = if !has_source then 1 else 0 in
    for i = start to !tail - 1 do
      let v = queue.(i) in
      if labels.(v) <> want then begin
        labels.(v) <- want;
        incr relabeled
      end
    done;
    region := !region + (!tail - start)
  in
  List.iter
    (fun s ->
      if s >= 0 && s < n && Semi_graph.node_present sg s && not visited.(s)
      then flood_component s)
    suspects;
  { relabeled = !relabeled; region = !region; rounds = 0 }

let repair_mis ~graph ~sg ~ids ~labels =
  let n = Graph.n_nodes graph in
  (* 1. violation scan: undecided nodes, in-in edges, unwitnessed outs *)
  let reset = Array.make n false in
  let n_reset = ref 0 in
  let mark v =
    if not reset.(v) then begin
      reset.(v) <- true;
      incr n_reset
    end
  in
  for v = 0 to n - 1 do
    if Semi_graph.node_present sg v then begin
      let s = labels.(v) in
      if s <> 1 && s <> 2 then mark v
      else begin
        let has_in = ref false in
        Semi_graph.iter_rank2_neighbors sg v (fun u _e ->
            if labels.(u) = 1 then has_in := true);
        if s = 1 && !has_in then mark v
        else if s = 2 && not !has_in then mark v
      end
    end
  done;
  if !n_reset = 0 then no_repair
  else begin
    (* 2. region = reset nodes + their present 1-hop boundary; decided
       boundary nodes enter the view frozen (the kernel keeps them) so
       the region re-run sees the surrounding MIS *)
    let in_region = Array.make n false in
    let region_size = ref 0 in
    let add v =
      if not in_region.(v) then begin
        in_region.(v) <- true;
        incr region_size
      end
    in
    for v = 0 to n - 1 do
      if reset.(v) then begin
        add v;
        Semi_graph.iter_rank2_neighbors sg v (fun u _e -> add u)
      end
    done;
    for v = 0 to n - 1 do
      if reset.(v) then labels.(v) <- 0
    done;
    (* 3. re-run the greedy kernel on the region view only *)
    let view = Semi_graph.of_node_subset graph in_region in
    (* a node can sit in the region without being present in [sg]
       (of_node_subset takes the mask verbatim) — the mask above only
       ever adds present nodes, so the view equals region ∩ sg *)
    let topo = Topology.compile view in
    let outcome =
      Engine.run ~mode:Seq ~topo
        ~init:(fun v -> labels.(v))
        ~step:(mis_step ~ids) ~halted:mis_halted
        ~max_rounds:(!region_size + 2) ()
    in
    (* 4. splice the recomputed region back *)
    for v = 0 to n - 1 do
      if in_region.(v) then labels.(v) <- outcome.states.(v)
    done;
    { relabeled = !n_reset; region = !region_size; rounds = outcome.rounds }
  end
