(** Validity checking and incremental recovery for the chaos workloads.

    Faults leave a run's labeling stale in ways a plain engine re-run
    cannot fix: flooding is monotone (a node disconnected from the
    source keeps its [1] forever), and an MIS [out] node whose last
    [in]-neighbor crashed is unwitnessed but locally stable. Repair
    therefore works {e structurally} — it finds the damaged region and
    re-solves only that region, instead of recomputing the whole
    instance from scratch:

    - {!repair_flood} re-derives the component indicator for every
      component containing a {e suspect} node (a neighbor of a crashed
      node, or a recovered node) by one BFS per suspect component —
      [O(size of touched components)], not [O(n)].
    - {!repair_mis} scans for violations ([O(n + m)] over the surviving
      view), resets the violated nodes (undecided / unwitnessed-out) to
      undecided, and re-runs the greedy kernel on the reset region plus
      its 1-hop boundary as a fresh {!Tl_graph.Semi_graph.of_node_subset}
      view — the kernel freezes decided nodes, so the surrounding MIS
      acts as a fixed boundary condition and only the damaged region
      recomputes.

    Both repairs are deterministic (BFS and engine order are fixed) and
    both are validated by re-running the corresponding checker, which is
    what [make chaos-smoke] asserts. *)

module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph

(** {1 Kernels}

    The two chaos workloads as engine step functions over [int] states.
    Flooding: [0] idle, [1] reached — a node catches [1] from any
    neighbor; the source is seeded [1] by its init. MIS (greedy by ids):
    [0] undecided, [1] in, [2] out — decided nodes never change, an
    undecided node joins when its id beats every undecided neighbor and
    leaves when any neighbor joined. *)

val flood_init : source:int -> int -> int
val flood_step : int Tl_engine.Engine.step_fn

val mis_init : int -> int
val mis_step : ids:int array -> int Tl_engine.Engine.step_fn
val mis_halted : int -> bool

(** {1 Validity checkers} — [O(n + m)] over the surviving view. *)

val check_flood : sg:Semi_graph.t -> source:int -> labels:int array -> bool
(** [labels.(v)] must be [1] exactly when [v] lies in the source's
    rank-2 component of [sg]; when the source itself is absent, every
    present label must be [0]. Absent nodes are ignored. *)

val check_mis : sg:Semi_graph.t -> labels:int array -> bool
(** Every present node decided; no two adjacent [in]s; every [out] has
    an [in]-neighbor (all over present rank-2 edges). *)

(** {1 Repair} *)

type stats = {
  relabeled : int;  (** labels rewritten (flood) or reset (MIS) *)
  region : int;  (** nodes of the re-solved region (incl. boundary) *)
  rounds : int;  (** engine rounds of the region re-run (MIS only) *)
}

val no_repair : stats
(** [{ relabeled = 0; region = 0; rounds = 0 }] — what a repair returns
    when the checker already passes. *)

val repair_flood :
  sg:Semi_graph.t -> source:int -> labels:int array -> suspects:int list ->
  stats
(** Recompute the source-component indicator on every component of [sg]
    containing a suspect node, writing [labels] in place. Suspects
    outside [sg] are skipped. *)

val repair_mis :
  graph:Graph.t -> sg:Semi_graph.t -> ids:int array -> labels:int array ->
  stats
(** Violation scan, reset, region re-run (in-process [Seq] engine over
    an uncached {!Tl_engine.Topology.compile} — repair views are
    one-shot and must not evict the main run's cached snapshots),
    splice back into [labels]. Raises [Failure] only if the region
    re-run exceeds its round budget, which a finite region cannot. *)
