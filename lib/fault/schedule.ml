module Json = Tl_obs.Json

type item =
  | Crash_nodes of int list
  | Crash_random of int
  | Recover_nodes of int list
  | Drop_links of (int * int) list
  | Kill_ranks of int list

type clause = { round : int; item : item }

type churn_kind = Crash_stop | Crash_recover

type churn = {
  from_round : int;
  to_round : int;
  rate : float;
  kind : churn_kind;
  ttl : int;
}

type t = { seed : int; clauses : clause list; churn : churn option }

let empty = { seed = 0; clauses = []; churn = None }

(* ---------- deterministic PRNG (splitmix64) ----------

   Hand-rolled so schedules never depend on Stdlib.Random's algorithm or
   global state: the event stream is a pure function of (seed, n). *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let sm_next s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  (s, mix64 s)

(* Independent per-(round, node) coin for churn: inserting or removing
   explicit clauses never shifts the churn pattern, because this never
   touches the sequential stream. *)
let hash3 seed r v =
  mix64
    (Int64.add
       (mix64 (Int64.add (mix64 (Int64.of_int seed)) (Int64.of_int r)))
       (Int64.of_int v))

(* top 53 bits as a float in [0, 1) *)
let u01 h = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.

(* ---------- events ---------- *)

type event = Crash of int | Recover of int | Drop of int * int | Kill of int

let event_to_string = function
  | Crash v -> Printf.sprintf "crash:%d" v
  | Recover v -> Printf.sprintf "recover:%d" v
  | Drop (a, b) -> Printf.sprintf "drop:%d-%d" a b
  | Kill r -> Printf.sprintf "kill:%d" r

let pp_event fmt e = Format.pp_print_string fmt (event_to_string e)

(* ---------- validation ---------- *)

let check t =
  let bad fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec clauses = function
    | [] -> (
      match t.churn with
      | None -> Ok t
      | Some c ->
        if c.from_round < 1 then bad "churn window starts before round 1"
        else if c.to_round < c.from_round then
          bad "churn window %d-%d is empty" c.from_round c.to_round
        else if not (Float.is_finite c.rate && c.rate >= 0. && c.rate <= 1.)
        then bad "churn rate %g outside [0, 1]" c.rate
        else if c.ttl < 1 then bad "churn ttl %d < 1" c.ttl
        else Ok t)
    | { round; item } :: rest ->
      if round < 1 then bad "event at round %d (rounds are 1-based)" round
      else begin
        match item with
        | Crash_random k when k < 1 -> bad "crash_random %d < 1" k
        | Crash_nodes [] | Recover_nodes [] | Drop_links [] | Kill_ranks [] ->
          bad "empty event list at round %d" round
        | _ -> clauses rest
      end
  in
  clauses t.clauses

(* ---------- JSON grammar ---------- *)

let kind_to_string = function
  | Crash_stop -> "crash-stop"
  | Crash_recover -> "crash-recover"

let kind_of_string = function
  | "crash-stop" -> Ok Crash_stop
  | "crash-recover" -> Ok Crash_recover
  | s -> Error (Printf.sprintf "unknown churn kind %S" s)

let pair_to_string (a, b) = Printf.sprintf "%d-%d" a b

let pair_of_string s =
  match String.index_opt s '-' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some a, Some b when a >= 0 && b >= 0 && a <> b ->
      Ok (min a b, max a b)
    | _ -> Error (Printf.sprintf "invalid pair %S (expected a-b)" s))
  | _ -> Error (Printf.sprintf "invalid pair %S (expected a-b)" s)

(* unlike shard pairs, a window is ordered: "4-2" is an error the
   validator must see, not a pair to normalize *)
let window_of_string s =
  match String.index_opt s '-' with
  | Some i when i > 0 && i < String.length s - 1 -> (
    match
      ( int_of_string_opt (String.sub s 0 i),
        int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
    with
    | Some a, Some b -> Ok (a, b)
    | _ -> Error (Printf.sprintf "invalid round window %S" s))
  | _ -> (
    (* a single round "r" means the window [r, r] *)
    match int_of_string_opt s with
    | Some r -> Ok (r, r)
    | None -> Error (Printf.sprintf "invalid round window %S" s))

let to_json t =
  let clause c =
    let ints l = Json.Arr (List.map (fun v -> Json.Num (float_of_int v)) l) in
    let item =
      match c.item with
      | Crash_nodes l -> ("crash", ints l)
      | Crash_random k -> ("crash_random", Json.Num (float_of_int k))
      | Recover_nodes l -> ("recover", ints l)
      | Drop_links l ->
        ("drop", Json.Arr (List.map (fun p -> Json.Str (pair_to_string p)) l))
      | Kill_ranks l -> ("kill", ints l)
    in
    Json.Obj [ ("round", Json.Num (float_of_int c.round)); item ]
  in
  let base =
    [
      ("seed", Json.Num (float_of_int t.seed));
      ("events", Json.Arr (List.map clause t.clauses));
    ]
  in
  let churn =
    match t.churn with
    | None -> []
    | Some c ->
      [
        ( "churn",
          Json.Obj
            [
              ("rounds", Json.Str (pair_to_string (c.from_round, c.to_round)));
              ("rate", Json.Num c.rate);
              ("kind", Json.Str (kind_to_string c.kind));
              ("ttl", Json.Num (float_of_int c.ttl));
            ] );
      ]
  in
  Json.Obj (base @ churn)

let ( let* ) = Result.bind

let int_field ?default name j =
  match Json.member name j with
  | Some v -> (
    match Json.to_int v with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "field %S is not an integer" name))
  | None -> (
    match default with
    | Some d -> Ok d
    | None -> Error (Printf.sprintf "missing field %S" name))

let int_list_of name j =
  match Json.to_list j with
  | None -> Error (Printf.sprintf "field %S is not an array" name)
  | Some l ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest -> (
        match Json.to_int v with
        | Some i -> go (i :: acc) rest
        | None -> Error (Printf.sprintf "field %S has a non-integer entry" name))
    in
    go [] l

let clause_of_json j =
  let* round = int_field "round" j in
  let item =
    match
      ( Json.member "crash" j,
        Json.member "crash_random" j,
        Json.member "recover" j,
        Json.member "drop" j,
        Json.member "kill" j )
    with
    | Some v, None, None, None, None ->
      let* l = int_list_of "crash" v in
      Ok (Crash_nodes l)
    | None, Some v, None, None, None -> (
      match Json.to_int v with
      | Some k -> Ok (Crash_random k)
      | None -> Error "field \"crash_random\" is not an integer")
    | None, None, Some v, None, None ->
      let* l = int_list_of "recover" v in
      Ok (Recover_nodes l)
    | None, None, None, Some v, None -> (
      match Json.to_list v with
      | None -> Error "field \"drop\" is not an array"
      | Some l ->
        let rec go acc = function
          | [] -> Ok (Drop_links (List.rev acc))
          | s :: rest -> (
            match Json.to_str s with
            | None -> Error "field \"drop\" has a non-string entry"
            | Some s ->
              let* p = pair_of_string s in
              go (p :: acc) rest)
        in
        go [] l)
    | None, None, None, None, Some v ->
      let* l = int_list_of "kill" v in
      Ok (Kill_ranks l)
    | _ ->
      Error
        "event must carry exactly one of crash / crash_random / recover / \
         drop / kill"
  in
  let* item = item in
  Ok { round; item }

let churn_of_json j =
  let* rounds =
    match Option.bind (Json.member "rounds" j) Json.to_str with
    | Some s -> window_of_string s
    | None -> Error "churn is missing field \"rounds\""
  in
  let* rate =
    match Option.bind (Json.member "rate" j) Json.to_float with
    | Some r -> Ok r
    | None -> Error "churn is missing numeric field \"rate\""
  in
  let* kind =
    match Json.member "kind" j with
    | None -> Ok Crash_stop
    | Some v -> (
      match Json.to_str v with
      | Some s -> kind_of_string s
      | None -> Error "churn field \"kind\" is not a string")
  in
  let* ttl = int_field ~default:1 "ttl" j in
  let from_round, to_round = rounds in
  Ok { from_round; to_round; rate; kind; ttl }

let of_json j =
  match j with
  | Json.Obj _ ->
    let* seed = int_field ~default:0 "seed" j in
    let* clauses =
      match Json.member "events" j with
      | None -> Ok []
      | Some v -> (
        match Json.to_list v with
        | None -> Error "field \"events\" is not an array"
        | Some l ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest ->
              let* c = clause_of_json e in
              go (c :: acc) rest
          in
          go [] l)
    in
    let* churn =
      match Json.member "churn" j with
      | None -> Ok None
      | Some c ->
        let* c = churn_of_json c in
        Ok (Some c)
    in
    check { seed; clauses; churn }
  | _ -> Error "fault schedule must be a JSON object"

(* ---------- compact one-liner grammar ---------- *)

let split c s = String.split_on_char c s |> List.filter (fun x -> x <> "")

let ints_of_csv name s =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest -> (
      match int_of_string_opt x with
      | Some i -> go (i :: acc) rest
      | None -> Error (Printf.sprintf "%s: invalid integer %S" name x))
  in
  go [] (split ',' s)

let churn_of_spec window args =
  let* from_round, to_round = window_of_string window in
  let fields = split ',' args in
  let rec go acc = function
    | [] -> Ok acc
    | f :: rest -> (
      match String.index_opt f '=' with
      | None -> Error (Printf.sprintf "churn: expected key=value, got %S" f)
      | Some i ->
        let k = String.sub f 0 i
        and v = String.sub f (i + 1) (String.length f - i - 1) in
        let* acc =
          match k with
          | "rate" -> (
            match float_of_string_opt v with
            | Some r -> Ok { acc with rate = r }
            | None -> Error (Printf.sprintf "churn: invalid rate %S" v))
          | "kind" ->
            let* kind = kind_of_string v in
            Ok { acc with kind }
          | "ttl" -> (
            match int_of_string_opt v with
            | Some t -> Ok { acc with ttl = t }
            | None -> Error (Printf.sprintf "churn: invalid ttl %S" v))
          | _ -> Error (Printf.sprintf "churn: unknown key %S" k)
        in
        go acc rest)
  in
  go { from_round; to_round; rate = 0.; kind = Crash_stop; ttl = 1 } fields

let of_spec s =
  let parts = split ';' (String.trim s) in
  let rec go seed clauses churn = function
    | [] -> check { seed; clauses = List.rev clauses; churn }
    | p :: rest ->
      let p = String.trim p in
      if String.length p >= 5 && String.sub p 0 5 = "seed=" then
        match int_of_string_opt (String.sub p 5 (String.length p - 5)) with
        | Some sd -> go sd clauses churn rest
        | None -> Error (Printf.sprintf "invalid seed %S" p)
      else begin
        match String.index_opt p '@' with
        | None -> Error (Printf.sprintf "unrecognized spec item %S" p)
        | Some i -> (
          let name = String.sub p 0 i in
          let tail = String.sub p (i + 1) (String.length p - i - 1) in
          match String.index_opt tail ':' with
          | None -> Error (Printf.sprintf "%s: expected %s@ROUND:ARGS" name p)
          | Some j -> (
            let rs = String.sub tail 0 j in
            let args = String.sub tail (j + 1) (String.length tail - j - 1) in
            if name = "churn" then
              let* c = churn_of_spec rs args in
              go seed clauses (Some c) rest
            else
              match int_of_string_opt rs with
              | None -> Error (Printf.sprintf "%s: invalid round %S" name rs)
              | Some round ->
                let* item =
                  match name with
                  | "crash" ->
                    let* l = ints_of_csv "crash" args in
                    Ok (Crash_nodes l)
                  | "crash_random" -> (
                    match int_of_string_opt args with
                    | Some k -> Ok (Crash_random k)
                    | None ->
                      Error
                        (Printf.sprintf "crash_random: invalid count %S" args))
                  | "recover" ->
                    let* l = ints_of_csv "recover" args in
                    Ok (Recover_nodes l)
                  | "drop" ->
                    let rec pairs acc = function
                      | [] -> Ok (Drop_links (List.rev acc))
                      | x :: r ->
                        let* pr = pair_of_string x in
                        pairs (pr :: acc) r
                    in
                    pairs [] (split ',' args)
                  | "kill" ->
                    let* l = ints_of_csv "kill" args in
                    Ok (Kill_ranks l)
                  | _ -> Error (Printf.sprintf "unknown event kind %S" name)
                in
                go seed ({ round; item } :: clauses) churn rest))
      end
  in
  if parts = [] then Error "empty fault spec"
  else go 0 [] None parts

let of_arg s =
  if Sys.file_exists s && not (Sys.is_directory s) then begin
    match Json.parse_file s with
    | j -> of_json j
    | exception Json.Parse_error m ->
      Error (Printf.sprintf "%s: %s" s m)
    | exception Sys_error m -> Error m
  end
  else if String.length s > 0 && s.[0] = '{' then begin
    match Json.parse s with
    | j -> of_json j
    | exception Json.Parse_error m -> Error m
  end
  else of_spec s

(* ---------- instantiation ---------- *)

let instantiate t ~n =
  (match check t with
  | Ok _ -> ()
  | Error m -> invalid_arg ("Schedule.instantiate: " ^ m));
  List.iter
    (fun c ->
      let chk l =
        List.iter
          (fun v ->
            if v < 0 || v >= n then
              invalid_arg
                (Printf.sprintf "Schedule.instantiate: node %d outside [0, %d)"
                   v n))
          l
      in
      match c.item with
      | Crash_nodes l | Recover_nodes l -> chk l
      | Crash_random _ | Drop_links _ | Kill_ranks _ -> ())
    t.clauses;
  let alive = Array.make n true in
  let n_alive = ref n in
  let rng = ref (mix64 (Int64.of_int t.seed)) in
  let draw () =
    let s, v = sm_next !rng in
    rng := s;
    v
  in
  let by_round = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let cur = try Hashtbl.find by_round c.round with Not_found -> [] in
      Hashtbl.replace by_round c.round (c.item :: cur))
    t.clauses;
  Hashtbl.iter (fun r l -> Hashtbl.replace by_round r (List.rev l)) by_round;
  let pending_recover : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let max_round =
    let clause_max =
      List.fold_left (fun acc c -> max acc c.round) 0 t.clauses
    in
    match t.churn with
    | None -> clause_max
    | Some c ->
      max clause_max
        (c.to_round + match c.kind with Crash_stop -> 0 | Crash_recover -> c.ttl)
  in
  let out = ref [] in
  let emit r e = out := (r, e) :: !out in
  let crash r v =
    if alive.(v) then begin
      alive.(v) <- false;
      decr n_alive;
      emit r (Crash v)
    end
  in
  let recover r v =
    if not alive.(v) then begin
      alive.(v) <- true;
      incr n_alive;
      emit r (Recover v)
    end
  in
  for r = 1 to max_round do
    (* ttl recoveries first: a churn casualty rejoins before new faults *)
    (match Hashtbl.find_opt pending_recover r with
    | Some vs -> List.iter (recover r) (List.sort compare vs)
    | None -> ());
    (match Hashtbl.find_opt by_round r with
    | None -> ()
    | Some items ->
      List.iter
        (fun item ->
          match item with
          | Crash_nodes l -> List.iter (crash r) l
          | Recover_nodes l -> List.iter (recover r) l
          | Drop_links l -> List.iter (fun (a, b) -> emit r (Drop (a, b))) l
          | Kill_ranks l -> List.iter (fun k -> emit r (Kill k)) l
          | Crash_random k ->
            let want = min k !n_alive in
            let got = ref 0 in
            while !got < want do
              let h = draw () in
              let v =
                Int64.to_int (Int64.rem (Int64.shift_right_logical h 1)
                                (Int64.of_int n))
              in
              if alive.(v) then begin
                crash r v;
                incr got
              end
            done)
        items);
    (match t.churn with
    | Some c when r >= c.from_round && r <= c.to_round ->
      for v = 0 to n - 1 do
        if alive.(v) && u01 (hash3 t.seed r v) < c.rate then begin
          crash r v;
          match c.kind with
          | Crash_stop -> ()
          | Crash_recover ->
            let due = r + c.ttl in
            let cur =
              try Hashtbl.find pending_recover due with Not_found -> []
            in
            Hashtbl.replace pending_recover due (v :: cur)
        end
      done
    | _ -> ())
  done;
  List.rev !out
