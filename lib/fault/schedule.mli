(** Deterministic fault schedules: seeded, reproducible plans of
    crash-stop, crash-recover, halo link-drop and worker-kill events,
    keyed on (round, node / shard pair / rank).

    A schedule is a {e plan}, not a log: it may name nodes explicitly
    ([crash@8:5,17]), draw them from a seeded PRNG ([crash_random@8:50]),
    or describe background churn (a per-(round, node) crash probability
    over a round window, optionally recovering each casualty [ttl]
    rounds later). {!instantiate} expands the plan against an instance
    size into a flat, round-sorted event list — a pure function of
    [(schedule, n)], so the same spec and seed always produce the
    identical event sequence, which is what makes every chaos run
    replayable.

    {2 Spec grammar}

    JSON (parsed with {!Tl_obs.Json}, the CLI accepts a file path):

    {v
    { "seed": 42,
      "events": [ { "round": 8,  "crash": [5, 17] },
                  { "round": 8,  "crash_random": 50 },
                  { "round": 12, "recover": [5] },
                  { "round": 6,  "drop": ["0-1", "2-3"] },
                  { "round": 3,  "kill": [1] } ],
      "churn": { "rounds": "4-16", "rate": 0.001,
                 "kind": "crash-recover", "ttl": 4 } }
    v}

    or the equivalent compact one-liner (the CLI accepts it inline):

    {v
    seed=42;crash@8:5,17;crash_random@8:50;recover@12:5;drop@6:0-1,2-3;\
    kill@3:1;churn@4-16:rate=0.001,kind=crash-recover,ttl=4
    v}

    [crash]/[recover] name {e node} ids; [drop] names undirected
    {e shard} pairs ([a-b] drops every halo message between shards [a]
    and [b] in that round, both directions); [kill] names worker
    {e ranks} of the proc backend. Rounds are absolute 1-based rounds of
    the whole chaos run: an event at round [r] takes effect {e after}
    round [r] commits. *)

type item =
  | Crash_nodes of int list
  | Crash_random of int  (** crash this many distinct alive nodes, seeded *)
  | Recover_nodes of int list
  | Drop_links of (int * int) list  (** undirected shard pairs *)
  | Kill_ranks of int list

type clause = { round : int; item : item }

type churn_kind = Crash_stop | Crash_recover

type churn = {
  from_round : int;
  to_round : int;
  rate : float;  (** per-(round, node) crash probability, in [0, 1] *)
  kind : churn_kind;
  ttl : int;  (** crash-recover: rounds until the casualty recovers *)
}

type t = { seed : int; clauses : clause list; churn : churn option }

val empty : t
(** [{ seed = 0; clauses = []; churn = None }] — a valid schedule with
    no faults; arming it measures pure hook overhead. *)

(** {1 Parsing} *)

val of_json : Tl_obs.Json.t -> (t, string) result
val to_json : t -> Tl_obs.Json.t
(** [of_json (to_json t) = Ok t] for every schedule this module builds. *)

val of_spec : string -> (t, string) result
(** Parse the compact one-liner grammar. *)

val of_arg : string -> (t, string) result
(** CLI entry point: if the argument names an existing file, parse its
    contents as JSON; otherwise parse the argument itself (as the
    compact grammar, or as inline JSON when it starts with ['{']). *)

(** {1 Instantiation} *)

type event =
  | Crash of int  (** node leaves the surviving graph *)
  | Recover of int  (** node rejoins with a fresh initial state *)
  | Drop of int * int  (** one round of (src shard, dst shard) halo loss *)
  | Kill of int  (** SIGKILL worker rank (proc backend) *)

val pp_event : Format.formatter -> event -> unit
val event_to_string : event -> string

val instantiate : t -> n:int -> (int * event) list
(** Expand the plan against an [n]-node instance into a flat event list,
    sorted by round (stable within a round: ttl-recoveries first, then
    explicit clauses in spec order, then churn crashes by ascending node
    id). Deterministic: a pure function of [(t, n)]. [Crash_random]
    draws distinct {e alive} nodes (never crashes the same node twice
    without an intervening recovery) by rejection-sampling a splitmix64
    stream seeded from [seed]; churn decides each (round, node) pair
    from an independent hash of [(seed, round, node)], so inserting or
    removing explicit clauses never shifts the churn pattern. Events
    that cannot apply (crashing an already-dead node, recovering an
    alive one) are elided. Out-of-range node ids raise
    [Invalid_argument]. *)
