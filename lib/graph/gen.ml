module Prng = struct
  type t = { mutable state : int64 }

  let create seed = { state = Int64.of_int seed }

  (* splitmix64: fast, high-quality, trivially seedable. *)
  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
    let mask = Int64.shift_right_logical (bits64 t) 1 in
    Int64.to_int (Int64.rem mask (Int64.of_int bound))

  let float t =
    let mask = Int64.shift_right_logical (bits64 t) 11 in
    Int64.to_float mask /. 9007199254740992.0

  let shuffle t a =
    for i = Array.length a - 1 downto 1 do
      let j = int t (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
end

let path n =
  if n < 1 then invalid_arg "Gen.path";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let double_star a b =
  let n = a + b + 2 in
  let left = List.init a (fun i -> (0, 2 + i)) in
  let right = List.init b (fun i -> (1, 2 + a + i)) in
  Graph.of_edges ~n ((0, 1) :: (left @ right))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let kary_tree ~arity ~depth =
  if arity < 1 || depth < 0 then invalid_arg "Gen.kary_tree";
  (* nodes numbered breadth-first; children of i are arity*i+1 .. arity*i+arity *)
  let rec layer_size d = if d = 0 then 1 else arity * layer_size (d - 1) in
  let n = ref 0 in
  for d = 0 to depth do
    n := !n + layer_size d
  done;
  let n = !n in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / arity, v) :: !edges
  done;
  Graph.of_edges ~n !edges

let balanced_regular_tree ~delta ~n =
  if delta < 2 then invalid_arg "Gen.balanced_regular_tree: delta < 2";
  if n < 1 then invalid_arg "Gen.balanced_regular_tree: n < 1";
  (* Breadth-first: root (node 0) gets up to [delta] children; every other
     node gets up to [delta - 1] children; stop at [n] nodes. *)
  let edges = ref [] in
  let next = ref 1 in
  let queue = Queue.create () in
  Queue.push 0 queue;
  while !next < n do
    let v = Queue.pop queue in
    let cap = if v = 0 then delta else delta - 1 in
    let children = min cap (n - !next) in
    for _ = 1 to children do
      edges := (v, !next) :: !edges;
      Queue.push !next queue;
      incr next
    done
  done;
  Graph.of_edges ~n !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar";
  let n = spine + (spine * legs) in
  let spine_edges = List.init (spine - 1) (fun i -> (i, i + 1)) in
  let leg_edges = ref [] in
  for s = 0 to spine - 1 do
    for l = 0 to legs - 1 do
      leg_edges := (s, spine + (s * legs) + l) :: !leg_edges
    done
  done;
  Graph.of_edges ~n (spine_edges @ !leg_edges)

let spider ~legs ~leg_length =
  if legs < 0 || leg_length < 1 then invalid_arg "Gen.spider";
  let n = 1 + (legs * leg_length) in
  let edges = ref [] in
  for l = 0 to legs - 1 do
    let base = 1 + (l * leg_length) in
    edges := (0, base) :: !edges;
    for i = 0 to leg_length - 2 do
      edges := (base + i, base + i + 1) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let broom ~handle ~bristles =
  if handle < 1 || bristles < 0 then invalid_arg "Gen.broom";
  let n = handle + bristles in
  let h = List.init (handle - 1) (fun i -> (i, i + 1)) in
  let b = List.init bristles (fun i -> (handle - 1, handle + i)) in
  Graph.of_edges ~n (h @ b)

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let triangulated_grid k =
  if k < 1 then invalid_arg "Gen.triangulated_grid";
  let id r c = (r * k) + c in
  let edges = ref [] in
  for r = 0 to k - 1 do
    for c = 0 to k - 1 do
      if c + 1 < k then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < k then edges := (id r c, id (r + 1) c) :: !edges;
      if c + 1 < k && r + 1 < k then edges := (id r c, id (r + 1) (c + 1)) :: !edges
    done
  done;
  Graph.of_edges ~n:(k * k) !edges

(* Pruefer sequence decoding in O(n log n) via counting + a pointer sweep. *)
let tree_of_pruefer seq =
  let n = Array.length seq + 2 in
  let count = Array.make n 0 in
  Array.iter (fun v -> count.(v) <- count.(v) + 1) seq;
  let edges = ref [] in
  (* leaf pointer sweep *)
  let ptr = ref 0 in
  let leaf = ref (-1) in
  let find_next_leaf () =
    while !ptr < n && count.(!ptr) > 0 do
      incr ptr
    done;
    leaf := !ptr
  in
  find_next_leaf ();
  let current_leaf = ref !leaf in
  Array.iter
    (fun v ->
      edges := (!current_leaf, v) :: !edges;
      count.(v) <- count.(v) - 1;
      if count.(v) = 0 && v < !ptr then current_leaf := v
      else begin
        incr ptr;
        find_next_leaf ();
        current_leaf := !leaf
      end)
    seq;
  (* final edge between the remaining leaf and node n-1 *)
  edges := (!current_leaf, n - 1) :: !edges;
  !edges

let random_tree ~n ~seed =
  if n < 1 then invalid_arg "Gen.random_tree";
  if n = 1 then Graph.empty 1
  else if n = 2 then Graph.of_edges ~n [ (0, 1) ]
  else begin
    let rng = Prng.create seed in
    let seq = Array.init (n - 2) (fun _ -> Prng.int rng n) in
    Graph.of_edges ~n (tree_of_pruefer seq)
  end

let random_forest ~n ~trees ~seed =
  if trees < 1 || trees > n then invalid_arg "Gen.random_forest";
  let rng = Prng.create seed in
  (* random tree, then delete trees-1 random edges *)
  let t = random_tree ~n ~seed:(seed lxor 0x5eed) in
  let edges = Array.of_list (Graph.edge_list t) in
  Prng.shuffle rng edges;
  let keep = Array.sub edges 0 (Array.length edges - (trees - 1)) in
  Graph.of_edges ~n (Array.to_list keep)

let union_of_trees ~n ~arboricity ~seed ~tree_gen =
  if arboricity < 1 then invalid_arg "Gen.union_of_trees";
  let seen = Hashtbl.create (n * arboricity) in
  let edges = ref [] in
  for i = 0 to arboricity - 1 do
    let t = tree_gen ~n ~seed:(seed + (i * 7919)) in
    List.iter
      (fun (u, v) ->
        let p = if u < v then (u, v) else (v, u) in
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          edges := p :: !edges
        end)
      (Graph.edge_list t)
  done;
  Graph.of_edges ~n !edges

let forest_union ~n ~arboricity ~seed =
  union_of_trees ~n ~arboricity ~seed ~tree_gen:random_tree

let random_bounded_degree ~n ~max_degree ~edges ~seed =
  if n < 2 || max_degree < 1 || edges < 0 then
    invalid_arg "Gen.random_bounded_degree";
  let rng = Prng.create seed in
  let deg = Array.make n 0 in
  let seen = Hashtbl.create edges in
  let acc = ref [] in
  let added = ref 0 in
  let attempts = ref 0 in
  let max_attempts = 20 * (edges + 1) in
  while !added < edges && !attempts < max_attempts do
    incr attempts;
    let u = Prng.int rng n in
    let v = Prng.int rng n in
    if u <> v && deg.(u) < max_degree && deg.(v) < max_degree then begin
      let p = if u < v then (u, v) else (v, u) in
      if not (Hashtbl.mem seen p) then begin
        Hashtbl.add seen p ();
        acc := p :: !acc;
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1;
        incr added
      end
    end
  done;
  Graph.of_edges ~n !acc

let power_law_tree ~n ~seed =
  if n < 1 then invalid_arg "Gen.power_law_tree";
  if n = 1 then Graph.empty 1
  else begin
    let rng = Prng.create seed in
    (* endpoints array doubles as the degree-proportional sampling pool *)
    let pool = Array.make (2 * (n - 1)) 0 in
    let edges = ref [ (0, 1) ] in
    pool.(0) <- 0;
    pool.(1) <- 1;
    let filled = ref 2 in
    for v = 2 to n - 1 do
      let target = pool.(Prng.int rng !filled) in
      edges := (target, v) :: !edges;
      pool.(!filled) <- target;
      pool.(!filled + 1) <- v;
      filled := !filled + 2
    done;
    Graph.of_edges ~n !edges
  end

let power_law_union ~n ~arboricity ~seed =
  union_of_trees ~n ~arboricity ~seed ~tree_gen:power_law_tree
