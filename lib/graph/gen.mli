(** Deterministic instance generators.

    Every randomized generator takes an explicit [seed] and is fully
    deterministic, so experiments are reproducible bit-for-bit. *)

(** {1 Pseudo-random numbers} *)

module Prng : sig
  type t

  val create : int -> t
  (** Seeded splitmix64 generator. *)

  val int : t -> int -> int
  (** [int t bound] is uniform in [0 .. bound-1]; [bound >= 1]. *)

  val bits64 : t -> int64
  val float : t -> float
  (** Uniform in [0, 1). *)

  val shuffle : t -> 'a array -> unit
  (** In-place Fisher-Yates shuffle. *)
end

(** {1 Deterministic families} *)

val path : int -> Graph.t
(** Path on [n >= 1] nodes [0-1-2-...]. *)

val cycle : int -> Graph.t
(** Cycle on [n >= 3] nodes. *)

val star : int -> Graph.t
(** Star with center [0] and [n-1] leaves. *)

val double_star : int -> int -> Graph.t
(** Two adjacent centers with [a] and [b] leaves respectively. *)

val complete : int -> Graph.t

val kary_tree : arity:int -> depth:int -> Graph.t
(** Complete rooted [arity]-ary tree of the given depth (root at node 0;
    depth 0 is a single node). *)

val balanced_regular_tree : delta:int -> n:int -> Graph.t
(** The paper's lower-bound instances (footnote 11): a rooted tree in which
    every internal node has degree exactly [delta] (the root has [delta]
    children, other internal nodes [delta - 1]) built breadth-first and
    truncated to exactly [n] nodes, so nodes in the deepest partial layer
    may have fewer children. Requires [delta >= 2] and [n >= 1]. *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** Path of [spine] nodes, each with [legs] pendant leaves. *)

val spider : legs:int -> leg_length:int -> Graph.t
(** [legs] paths of length [leg_length] glued at a common center. *)

val broom : handle:int -> bristles:int -> Graph.t
(** Path of [handle] nodes with [bristles] leaves attached to its end. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: planar grid graph (arboricity at most 2). *)

val triangulated_grid : int -> Graph.t
(** [triangulated_grid k]: [k × k] grid with one diagonal per cell — a
    planar graph of arboricity at most 3 with many triangles. *)

(** {1 Random families} *)

val random_tree : n:int -> seed:int -> Graph.t
(** Uniformly random labelled tree on [n >= 1] nodes (Pruefer decoding). *)

val random_forest : n:int -> trees:int -> seed:int -> Graph.t
(** Random forest on [n] nodes with exactly [trees] components. *)

val forest_union : n:int -> arboricity:int -> seed:int -> Graph.t
(** Union of [arboricity] edge-disjoint uniformly random spanning trees on
    the same node set (duplicate edges dropped and re-drawn greedily where
    possible). The result has arboricity at most [arboricity]; for
    [n >> arboricity] the Nash-Williams bound certifies it is close to
    exactly [arboricity]. *)

val random_bounded_degree : n:int -> max_degree:int -> edges:int -> seed:int -> Graph.t
(** Random simple graph with at most [edges] edges, rejecting any edge that
    would push an endpoint above [max_degree]. *)

val power_law_tree : n:int -> seed:int -> Graph.t
(** Preferential-attachment tree: node [i] attaches to an endpoint of a
    uniformly random earlier edge (high-degree hubs, small diameter). *)

val power_law_union : n:int -> arboricity:int -> seed:int -> Graph.t
(** Union of [arboricity] edge-disjoint preferential-attachment trees on
    the same node set (duplicates dropped): a bounded-arboricity graph
    with high-degree hubs — the instances on which Algorithm 3 actually
    produces atypical edges. *)
