type t = {
  n : int;
  edges : (int * int) array;
  adj : int array array;
  inc : int array array;
}

let order_pair u v = if u < v then (u, v) else (v, u)

let of_edges ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let seen = Hashtbl.create (List.length edges) in
  let check (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then
      invalid_arg
        (Printf.sprintf "Graph.of_edges: endpoint out of range (%d,%d), n=%d"
           u v n);
    if u = v then invalid_arg "Graph.of_edges: self-loop";
    let p = order_pair u v in
    if Hashtbl.mem seen p then invalid_arg "Graph.of_edges: duplicate edge";
    Hashtbl.add seen p ();
    p
  in
  let edges = Array.of_list (List.map check edges) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let inc = Array.init n (fun v -> Array.make deg.(v) (-1)) in
  let pos = Array.make n 0 in
  Array.iteri
    (fun e (u, v) ->
      adj.(u).(pos.(u)) <- v;
      inc.(u).(pos.(u)) <- e;
      pos.(u) <- pos.(u) + 1;
      adj.(v).(pos.(v)) <- u;
      inc.(v).(pos.(v)) <- e;
      pos.(v) <- pos.(v) + 1)
    edges;
  { n; edges; adj; inc }

let empty n = of_edges ~n []
let n_nodes g = g.n
let n_edges g = Array.length g.edges
let degree g v = Array.length g.adj.(v)

let max_degree g =
  let d = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !d then d := degree g v
  done;
  !d

let neighbors g v = g.adj.(v)
let incident g v = g.inc.(v)
let edge_endpoints g e = g.edges.(e)

let other_endpoint g e v =
  let u, w = g.edges.(e) in
  if v = u then w
  else if v = w then u
  else invalid_arg "Graph.other_endpoint: node not an endpoint"

let find_edge g u v =
  let rec scan i =
    if i >= Array.length g.adj.(u) then None
    else if g.adj.(u).(i) = v then Some g.inc.(u).(i)
    else scan (i + 1)
  in
  (* scan from the smaller adjacency list *)
  if Array.length g.adj.(u) <= Array.length g.adj.(v) then scan 0
  else
    let rec scan_v i =
      if i >= Array.length g.adj.(v) then None
      else if g.adj.(v).(i) = u then Some g.inc.(v).(i)
      else scan_v (i + 1)
    in
    scan_v 0

let has_edge g u v = Option.is_some (find_edge g u v)
let n_half_edges g = 2 * n_edges g

let half_edge g ~edge ~node =
  let u, v = g.edges.(edge) in
  if node = u then 2 * edge
  else if node = v then (2 * edge) + 1
  else invalid_arg "Graph.half_edge: node not an endpoint"

let half_edge_node g h =
  let u, v = g.edges.(h / 2) in
  if h land 1 = 0 then u else v

let half_edge_edge h = h / 2
let opposite_half_edge h = h lxor 1

let half_edges_of g v =
  Array.to_list (Array.map (fun e -> half_edge g ~edge:e ~node:v) g.inc.(v))

let fold_edges f g acc =
  let acc = ref acc in
  Array.iteri (fun e uv -> acc := f e uv !acc) g.edges;
  !acc

let iter_edges f g = Array.iteri f g.edges
let edge_list g = Array.to_list g.edges

let line_graph g =
  let m = n_edges g in
  let pairs = Hashtbl.create (4 * m) in
  let add e1 e2 =
    if e1 <> e2 then begin
      let p = order_pair e1 e2 in
      if not (Hashtbl.mem pairs p) then Hashtbl.add pairs p ()
    end
  in
  for v = 0 to g.n - 1 do
    let ivec = g.inc.(v) in
    let d = Array.length ivec in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        add ivec.(i) ivec.(j)
      done
    done
  done;
  let edges = Hashtbl.fold (fun p () acc -> p :: acc) pairs [] in
  (of_edges ~n:m edges, fun e -> e)

let induced g nodes =
  let keep = Array.make g.n (-1) in
  let count = ref 0 in
  List.iter
    (fun v ->
      if keep.(v) < 0 then begin
        keep.(v) <- !count;
        incr count
      end)
    nodes;
  let old_of_new = Array.make !count (-1) in
  Array.iteri (fun v idx -> if idx >= 0 then old_of_new.(idx) <- v) keep;
  let edges =
    fold_edges
      (fun _ (u, v) acc ->
        if keep.(u) >= 0 && keep.(v) >= 0 then (keep.(u), keep.(v)) :: acc
        else acc)
      g []
  in
  (of_edges ~n:!count edges, old_of_new)

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (n_edges g);
  let shown = min 40 (n_edges g) in
  for e = 0 to shown - 1 do
    let u, v = g.edges.(e) in
    Format.fprintf ppf "  e%d: %d-%d@," e u v
  done;
  if shown < n_edges g then Format.fprintf ppf "  ...@,";
  Format.fprintf ppf "@]"
