(** Simple undirected graphs with stable edge and half-edge indexing.

    Nodes are integers [0 .. n-1]. Edges are stored once, as ordered pairs
    [(u, v)] with [u < v], and carry a stable identifier [0 .. m-1]. A
    {e half-edge} is a pair (node, incident edge); half-edge [(e, side)] has
    the stable identifier [2*e + side], where side [0] is the smaller
    endpoint of [e] and side [1] the larger. All half-edge labelings in this
    repository are arrays indexed by these identifiers.

    Graphs are immutable after construction. *)

type t

(** {1 Construction} *)

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph on nodes [0..n-1]. Raises
    [Invalid_argument] on out-of-range endpoints, self-loops, or duplicate
    edges (in either orientation). *)

val empty : int -> t
(** [empty n] is the edgeless graph on [n] nodes. *)

(** {1 Basic accessors} *)

val n_nodes : t -> int
val n_edges : t -> int

val degree : t -> int -> int

val max_degree : t -> int
(** Maximum degree [Δ]; [0] for an edgeless graph. *)

val neighbors : t -> int -> int array
(** Neighbor node ids of a node. The returned array is owned by the graph
    and must not be mutated. Aligned with {!incident}. *)

val incident : t -> int -> int array
(** Edge ids incident to a node, aligned with {!neighbors}: the [i]-th
    incident edge connects to the [i]-th neighbor. Not to be mutated. *)

val edge_endpoints : t -> int -> int * int
(** Endpoints [(u, v)] with [u < v] of an edge id. *)

val other_endpoint : t -> int -> int -> int
(** [other_endpoint g e v] is the endpoint of [e] distinct from [v]. Raises
    [Invalid_argument] if [v] is not an endpoint of [e]. *)

val has_edge : t -> int -> int -> bool
(** Whether two nodes are adjacent (logarithmic in degree). *)

val find_edge : t -> int -> int -> int option
(** Edge id connecting two nodes, if any. *)

(** {1 Half-edges} *)

val n_half_edges : t -> int
(** [2 * n_edges]. *)

val half_edge : t -> edge:int -> node:int -> int
(** Identifier of the half-edge of [edge] at [node]. Raises
    [Invalid_argument] if [node] is not an endpoint. *)

val half_edge_node : t -> int -> int
(** The node of a half-edge id. *)

val half_edge_edge : int -> int
(** The edge of a half-edge id (that is, [h / 2]). *)

val opposite_half_edge : int -> int
(** The half-edge on the other side of the same edge ([h lxor 1]). *)

val half_edges_of : t -> int -> int list
(** All half-edge ids at a node (one per incident edge). *)

(** {1 Iteration} *)

val fold_edges : (int -> int * int -> 'a -> 'a) -> t -> 'a -> 'a
(** [fold_edges f g acc] folds [f eid (u, v)] over all edges. *)

val iter_edges : (int -> int * int -> unit) -> t -> unit

val edge_list : t -> (int * int) list
(** All edges as ordered pairs, in edge-id order. *)

(** {1 Derived graphs} *)

val line_graph : t -> t * (int -> int)
(** [line_graph g] is the line graph [l] of [g] — one node per edge of [g],
    adjacent iff the edges share an endpoint — together with the identity
    mapping from [l]-nodes to [g]-edge ids. *)

val induced : t -> int list -> t * int array
(** [induced g nodes] is the subgraph induced by [nodes] (node-induced),
    with nodes renumbered [0..]; the returned array maps new ids to the
    original ids. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: node/edge counts and the edge list (truncated). *)
