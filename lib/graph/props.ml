let bfs_distances g src =
  let n = Graph.n_nodes g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun u ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u queue
        end)
      (Graph.neighbors g v)
  done;
  dist

let components g =
  let n = Graph.n_nodes g in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      comp.(s) <- !count;
      Queue.push s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Array.iter
          (fun u ->
            if comp.(u) < 0 then begin
              comp.(u) <- !count;
              Queue.push u queue
            end)
          (Graph.neighbors g v)
      done;
      incr count
    end
  done;
  (comp, !count)

let component_members g =
  let comp, count = components g in
  let members = Array.make count [] in
  for v = Graph.n_nodes g - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members

let is_connected g =
  let _, count = components g in
  count <= 1

let eccentricity g v =
  let dist = bfs_distances g v in
  Array.fold_left max 0 dist

let diameter g =
  let d = ref 0 in
  for v = 0 to Graph.n_nodes g - 1 do
    let e = eccentricity g v in
    if e > !d then d := e
  done;
  !d

let component_diameters g =
  let comp, count = components g in
  let diam = Array.make count 0 in
  for v = 0 to Graph.n_nodes g - 1 do
    let e = eccentricity g v in
    if e > diam.(comp.(v)) then diam.(comp.(v)) <- e
  done;
  diam

let is_forest g =
  let _, count = components g in
  Graph.n_edges g = Graph.n_nodes g - count

let is_tree g = is_connected g && Graph.n_edges g = Graph.n_nodes g - 1

let is_star g =
  let n = Graph.n_nodes g in
  if not (is_tree g) then false
  else if n <= 2 then true
  else begin
    let centers = ref 0 in
    for v = 0 to n - 1 do
      if Graph.degree g v = n - 1 then incr centers
    done;
    !centers = 1
  end

let degeneracy_order_and_value g =
  let n = Graph.n_nodes g in
  let deg = Array.init n (Graph.degree g) in
  let removed = Array.make n false in
  (* bucket queue on degrees *)
  let maxd = Array.fold_left max 0 deg in
  let buckets = Array.make (maxd + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) deg;
  let order = Array.make n (-1) in
  let k = ref 0 in
  let cur = ref 0 in
  for i = 0 to n - 1 do
    (* find the next non-removed node of minimum current degree *)
    if !cur > 0 then decr cur;
    let v = ref (-1) in
    while !v < 0 do
      match buckets.(!cur) with
      | [] -> incr cur
      | u :: rest ->
        buckets.(!cur) <- rest;
        if (not removed.(u)) && deg.(u) = !cur then v := u
    done;
    let v = !v in
    removed.(v) <- true;
    order.(i) <- v;
    if deg.(v) > !k then k := deg.(v);
    Array.iter
      (fun u ->
        if not removed.(u) then begin
          deg.(u) <- deg.(u) - 1;
          buckets.(deg.(u)) <- u :: buckets.(deg.(u))
        end)
      (Graph.neighbors g v)
  done;
  (order, !k)

let degeneracy g =
  if Graph.n_nodes g = 0 then 0 else snd (degeneracy_order_and_value g)

let degeneracy_order g =
  if Graph.n_nodes g = 0 then [||] else fst (degeneracy_order_and_value g)

let nash_williams_lower_bound g =
  let members = component_members g in
  let comp, _ = components g in
  let comp_edges = Array.make (Array.length members) 0 in
  Graph.iter_edges (fun _ (u, _) -> comp_edges.(comp.(u)) <- comp_edges.(comp.(u)) + 1) g;
  let best = ref 0 in
  Array.iteri
    (fun c nodes ->
      let size = List.length nodes in
      if size >= 2 then begin
        let bound = (comp_edges.(c) + size - 2) / (size - 1) in
        if bound > !best then best := bound
      end)
    members;
  !best

let arboricity_interval g = (nash_williams_lower_bound g, degeneracy g)

let is_independent_set g in_set =
  Graph.fold_edges (fun _ (u, v) ok -> ok && not (in_set.(u) && in_set.(v))) g true

let is_maximal_independent_set g in_set =
  is_independent_set g in_set
  &&
  let n = Graph.n_nodes g in
  let rec check v =
    if v >= n then true
    else if in_set.(v) then check (v + 1)
    else if Array.exists (fun u -> in_set.(u)) (Graph.neighbors g v) then check (v + 1)
    else false
  in
  check 0

let is_matching g in_matching =
  let n = Graph.n_nodes g in
  let hit = Array.make n 0 in
  Graph.iter_edges
    (fun e (u, v) ->
      if in_matching.(e) then begin
        hit.(u) <- hit.(u) + 1;
        hit.(v) <- hit.(v) + 1
      end)
    g;
  Array.for_all (fun c -> c <= 1) hit

let is_maximal_matching g in_matching =
  let n = Graph.n_nodes g in
  let hit = Array.make n 0 in
  Graph.iter_edges
    (fun e (u, v) ->
      if in_matching.(e) then begin
        hit.(u) <- hit.(u) + 1;
        hit.(v) <- hit.(v) + 1
      end)
    g;
  Array.for_all (fun c -> c <= 1) hit
  && Graph.fold_edges
       (fun e (u, v) ok -> ok && (in_matching.(e) || hit.(u) > 0 || hit.(v) > 0))
       g true

let is_proper_coloring g colors =
  Graph.fold_edges (fun _ (u, v) ok -> ok && colors.(u) <> colors.(v)) g true

let is_proper_edge_coloring g colors =
  let ok = ref true in
  for v = 0 to Graph.n_nodes g - 1 do
    let inc = Graph.incident g v in
    let d = Array.length inc in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if colors.(inc.(i)) = colors.(inc.(j)) then ok := false
      done
    done
  done;
  !ok

let edge_degree g e =
  let u, v = Graph.edge_endpoints g e in
  Graph.degree g u + Graph.degree g v - 2

let max_edge_degree g =
  Graph.fold_edges (fun e _ acc -> max acc (edge_degree g e)) g 0
