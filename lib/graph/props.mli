(** Structural graph properties: traversal, components, distances, sparsity
    measures, and solution validators used throughout the test suites. *)

(** {1 Traversal and connectivity} *)

val bfs_distances : Graph.t -> int -> int array
(** Distances from a source; [-1] marks unreachable nodes. *)

val components : Graph.t -> int array * int
(** [(comp, count)]: [comp.(v)] is the component index of [v], indices are
    [0 .. count-1]. *)

val component_members : Graph.t -> int list array
(** Nodes of each component. *)

val is_connected : Graph.t -> bool

val eccentricity : Graph.t -> int -> int
(** Maximum finite distance from a node to any node in its component. *)

val diameter : Graph.t -> int
(** Exact diameter of the largest-eccentricity component: max over all
    nodes of {!eccentricity} (O(n·m); intended for experiment-sized
    instances). [0] for an edgeless graph. *)

val component_diameters : Graph.t -> int array
(** Exact diameter of each component (indexed like {!components}). *)

(** {1 Shape tests} *)

val is_forest : Graph.t -> bool
val is_tree : Graph.t -> bool

val is_star : Graph.t -> bool
(** A (possibly trivial) star: one center adjacent to all other nodes and
    no other edges. Single nodes and single edges count as stars. *)

(** {1 Sparsity} *)

val degeneracy : Graph.t -> int
(** Degeneracy (smallest [d] such that repeatedly removing a min-degree
    node never sees degree > [d]); an upper bound on arboricity is
    [degeneracy] and a lower bound is {!nash_williams_lower_bound}. *)

val degeneracy_order : Graph.t -> int array
(** A node ordering realizing the degeneracy (each node has at most
    [degeneracy g] neighbors later in the order). *)

val nash_williams_lower_bound : Graph.t -> int
(** [ceil (m / (n - 1))] maximized over components with at least 2 nodes —
    a cheap certified lower bound on arboricity; [0] for edgeless graphs. *)

val arboricity_interval : Graph.t -> int * int
(** [(lower, upper)] bounds on the arboricity: Nash-Williams density lower
    bound and degeneracy upper bound. *)

(** {1 Solution validators}

    These are independent "referee" implementations used to cross-check the
    node-edge-checkable validators of [Tl_problems]. *)

val is_independent_set : Graph.t -> bool array -> bool
val is_maximal_independent_set : Graph.t -> bool array -> bool

val is_matching : Graph.t -> bool array -> bool
(** [in_matching] indexed by edge id. *)

val is_maximal_matching : Graph.t -> bool array -> bool

val is_proper_coloring : Graph.t -> int array -> bool
(** Colors indexed by node; any integers allowed. *)

val is_proper_edge_coloring : Graph.t -> int array -> bool
(** Colors indexed by edge id; adjacent edges must differ. *)

val edge_degree : Graph.t -> int -> int
(** Number of edges adjacent to an edge: [deg u + deg v - 2]. *)

val max_edge_degree : Graph.t -> int
