type t = {
  base : Graph.t;
  node_in : bool array;
  edge_in : bool array;
  stamp : int;  (* unique per view — identity key for compiled snapshots *)
  mutable generation : int;  (* bumped by every mask mutation *)
}

(* Views can be constructed from any domain (the pool's workers build
   sub-views); the stamp counter is the only cross-view shared state. *)
let next_stamp = Atomic.make 0
let fresh_stamp () = Atomic.fetch_and_add next_stamp 1

let of_node_subset base node_in =
  if Array.length node_in <> Graph.n_nodes base then
    invalid_arg "Semi_graph.of_node_subset: wrong node mask length";
  let edge_in = Array.make (Graph.n_edges base) false in
  Graph.iter_edges
    (fun e (u, v) -> if node_in.(u) || node_in.(v) then edge_in.(e) <- true)
    base;
  { base; node_in = Array.copy node_in; edge_in;
    stamp = fresh_stamp (); generation = 0 }

let of_edge_subset base edge_in =
  if Array.length edge_in <> Graph.n_edges base then
    invalid_arg "Semi_graph.of_edge_subset: wrong edge mask length";
  let node_in = Array.make (Graph.n_nodes base) false in
  Graph.iter_edges
    (fun e (u, v) ->
      if edge_in.(e) then begin
        node_in.(u) <- true;
        node_in.(v) <- true
      end)
    base;
  { base; node_in; edge_in = Array.copy edge_in;
    stamp = fresh_stamp (); generation = 0 }

let of_graph base =
  {
    base;
    node_in = Array.make (Graph.n_nodes base) true;
    edge_in = Array.make (Graph.n_edges base) true;
    stamp = fresh_stamp ();
    generation = 0;
  }

let base t = t.base
let stamp t = t.stamp
let generation t = t.generation
let node_present t v = t.node_in.(v)
let edge_present t e = t.edge_in.(e)

let hide_node t v =
  if t.node_in.(v) then begin
    t.node_in.(v) <- false;
    t.generation <- t.generation + 1
  end

let hide_edge t e =
  if t.edge_in.(e) then begin
    t.edge_in.(e) <- false;
    t.generation <- t.generation + 1
  end

let half_edge_present t h =
  t.edge_in.(Graph.half_edge_edge h) && t.node_in.(Graph.half_edge_node t.base h)

let nodes t =
  let acc = ref [] in
  for v = Array.length t.node_in - 1 downto 0 do
    if t.node_in.(v) then acc := v :: !acc
  done;
  !acc

let edges t =
  let acc = ref [] in
  for e = Array.length t.edge_in - 1 downto 0 do
    if t.edge_in.(e) then acc := e :: !acc
  done;
  !acc

let n_present_nodes t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.node_in

let rank t e =
  if not t.edge_in.(e) then invalid_arg "Semi_graph.rank: absent edge";
  let u, v = Graph.edge_endpoints t.base e in
  (if t.node_in.(u) then 1 else 0) + if t.node_in.(v) then 1 else 0

let sdeg t v =
  if not t.node_in.(v) then invalid_arg "Semi_graph.sdeg: absent node";
  Array.fold_left
    (fun acc e -> if t.edge_in.(e) then acc + 1 else acc)
    0 (Graph.incident t.base v)

let underlying_degree t v =
  if not t.node_in.(v) then invalid_arg "Semi_graph.underlying_degree: absent node";
  let inc = Graph.incident t.base v in
  let adj = Graph.neighbors t.base v in
  let d = ref 0 in
  Array.iteri
    (fun i e -> if t.edge_in.(e) && t.node_in.(adj.(i)) then incr d)
    inc;
  !d

let max_underlying_degree t =
  let d = ref 0 in
  Array.iteri
    (fun v present ->
      if present then begin
        let dv = underlying_degree t v in
        if dv > !d then d := dv
      end)
    t.node_in;
  !d

let half_edges_of t v =
  if not t.node_in.(v) then invalid_arg "Semi_graph.half_edges_of: absent node";
  List.filter
    (fun h -> t.edge_in.(Graph.half_edge_edge h))
    (Graph.half_edges_of t.base v)

let rank2_neighbors t v =
  if not t.node_in.(v) then invalid_arg "Semi_graph.rank2_neighbors: absent node";
  let inc = Graph.incident t.base v in
  let adj = Graph.neighbors t.base v in
  let acc = ref [] in
  for i = Array.length inc - 1 downto 0 do
    if t.edge_in.(inc.(i)) && t.node_in.(adj.(i)) then
      acc := (adj.(i), inc.(i)) :: !acc
  done;
  !acc

let iter_rank2_neighbors t v f =
  if not t.node_in.(v) then
    invalid_arg "Semi_graph.iter_rank2_neighbors: absent node";
  let inc = Graph.incident t.base v in
  let adj = Graph.neighbors t.base v in
  for i = 0 to Array.length inc - 1 do
    if t.edge_in.(inc.(i)) && t.node_in.(adj.(i)) then f adj.(i) inc.(i)
  done

let underlying_components t =
  let n = Graph.n_nodes t.base in
  let comp = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if t.node_in.(s) && comp.(s) < 0 then begin
      comp.(s) <- !count;
      Queue.push s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun (u, _e) ->
            if comp.(u) < 0 then begin
              comp.(u) <- !count;
              Queue.push u queue
            end)
          (rank2_neighbors t v)
      done;
      incr count
    end
  done;
  let members = Array.make !count [] in
  for v = n - 1 downto 0 do
    if comp.(v) >= 0 then members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members

let component_of t v =
  if not (node_present t v) then invalid_arg "Semi_graph.component_of: absent node";
  let dist = ref [ v ] in
  let seen = Hashtbl.create 16 in
  Hashtbl.add seen v ();
  let queue = Queue.create () in
  Queue.push v queue;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    List.iter
      (fun (u, _e) ->
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.add seen u ();
          dist := u :: !dist;
          Queue.push u queue
        end)
      (rank2_neighbors t w)
  done;
  List.sort compare !dist

let underlying_distances t src =
  if not (node_present t src) then
    invalid_arg "Semi_graph.underlying_distances: absent node";
  let n = Graph.n_nodes t.base in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.push src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (u, _e) ->
        if dist.(u) < 0 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.push u queue
        end)
      (rank2_neighbors t v)
  done;
  dist

let underlying_eccentricity t v =
  Array.fold_left max 0 (underlying_distances t v)
