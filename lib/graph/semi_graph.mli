(** Semi-graphs (Definition 4 of the paper): graphs whose edges may have 0,
    1 or 2 endpoints.

    A semi-graph here is always a {e view} over a base graph: a subset of
    the base nodes and a subset of the base edges. A present edge has rank
    equal to its number of {e present} endpoints — this is exactly how
    semi-graphs arise in the paper ([T_C], [T_R] keep all edges incident to
    a node subset; [G[E_2]] and [G[F_{i,j}]] keep an edge subset).

    A half-edge of the base graph belongs to the semi-graph iff both its
    edge and its node are present. Degrees in the semi-graph count present
    incident edges of {e any} rank, while the {e underlying graph} (and its
    degree, the quantity bounded by Lemmas 10 and 14) only keeps rank-2
    edges. *)

type t

(** {1 Construction} *)

val of_node_subset : Graph.t -> bool array -> t
(** Present nodes as given; present edges = base edges with at least one
    present endpoint. This is the paper's [T_C] / [T_R] construction. *)

val of_edge_subset : Graph.t -> bool array -> t
(** Present edges as given; present nodes = their endpoints. All present
    edges have rank 2. This is the paper's [G[E_2]] / [G[F_{i,j}]]
    construction. *)

val of_graph : Graph.t -> t
(** The whole base graph viewed as a semi-graph (all ranks 2). *)

(** {1 Accessors} *)

val base : t -> Graph.t

val stamp : t -> int
(** Unique id of this view, assigned at construction — together with
    {!generation} it identifies the view's exact current contents, so
    compiled snapshots ({!Tl_engine.Topology}) can be cached and reused
    across repeated runtime phases over the same view. *)

val generation : t -> int
(** Mutation counter: [0] at construction, bumped by every effective
    {!hide_node} / {!hide_edge}. A cached artifact keyed by
    [(stamp, generation)] is automatically invalidated by mutation. *)

val node_present : t -> int -> bool
val edge_present : t -> int -> bool

(** {1 In-place restriction}

    Views are mutable only in the shrinking direction: a node or edge
    can be masked out of an existing view (cheaper than rebuilding the
    view when peeling layers off a decomposition). Both operations bump
    {!generation}; hiding an already-absent node/edge is a no-op. *)

val hide_node : t -> int -> unit
val hide_edge : t -> int -> unit

val half_edge_present : t -> int -> bool
(** Whether a base half-edge id belongs to the semi-graph. *)

val nodes : t -> int list
(** Present nodes, ascending. *)

val edges : t -> int list
(** Present edge ids, ascending. *)

val n_present_nodes : t -> int

val rank : t -> int -> int
(** Rank of a present edge (0, 1 or 2). Raises [Invalid_argument] on an
    absent edge. *)

val sdeg : t -> int -> int
(** Degree of a present node in the semi-graph: number of present incident
    edges of any rank. Raises [Invalid_argument] on an absent node. *)

val underlying_degree : t -> int -> int
(** Number of present incident rank-2 edges. *)

val max_underlying_degree : t -> int
(** Maximum of {!underlying_degree} over present nodes — the [Δ] handed to
    a truly local algorithm running on this semi-graph. *)

val half_edges_of : t -> int -> int list
(** Present half-edges at a present node (one per present incident edge of
    any rank — these are the half-edges the node must label). *)

val rank2_neighbors : t -> int -> (int * int) list
(** [(neighbor, edge)] pairs over present rank-2 edges at a present node —
    the communication links available in the LOCAL model (Definition 5
    restricts messages to rank-2 edges). *)

val iter_rank2_neighbors : t -> int -> (int -> int -> unit) -> unit
(** [iter_rank2_neighbors t v f] calls [f neighbor edge] for each present
    rank-2 edge at present node [v] — same pairs as {!rank2_neighbors},
    without materialising the list (the repair BFS walks millions of
    nodes; a list per visit is the dominant cost). *)

(** {1 Underlying-graph structure} *)

val underlying_components : t -> int list array
(** Connected components of the underlying graph: partition of the present
    nodes, connectivity via present rank-2 edges. *)

val component_of : t -> int -> int list
(** Component (as above) containing a given present node. *)

val underlying_distances : t -> int -> int array
(** BFS distances from a present node through present rank-2 edges; [-1]
    for unreachable or absent nodes. *)

val underlying_eccentricity : t -> int -> int
