type rooted = {
  root : int;
  parent : int array;
  depth : int array;
  order : int array;
}

let root_at g root =
  let n = Graph.n_nodes g in
  let parent = Array.make n (-1) in
  let depth = Array.make n (-1) in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  depth.(root) <- 0;
  Queue.push root queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr count;
    Array.iter
      (fun u ->
        if depth.(u) < 0 then begin
          depth.(u) <- depth.(v) + 1;
          parent.(u) <- v;
          Queue.push u queue
        end)
      (Graph.neighbors g v)
  done;
  let order_arr = Array.make !count (-1) in
  List.iteri (fun i v -> order_arr.(!count - 1 - i) <- v) !order;
  { root; parent; depth; order = order_arr }

let root_forest g =
  let comp, count = Props.components g in
  let roots = Array.make count (-1) in
  for v = Graph.n_nodes g - 1 downto 0 do
    roots.(comp.(v)) <- v
  done;
  Array.map (root_at g) roots

let parents_forest g =
  if not (Props.is_forest g) then invalid_arg "Tree.parents_forest: not a forest";
  let n = Graph.n_nodes g in
  let parent = Array.make n (-1) in
  Array.iter
    (fun r -> Array.iteri (fun v p -> if p >= 0 then parent.(v) <- p) r.parent)
    (root_forest g);
  parent

let subtree_sizes _g rooted =
  let n = Array.length rooted.parent in
  let size = Array.make n 1 in
  (* reverse BFS order: children before parents *)
  for i = Array.length rooted.order - 1 downto 0 do
    let v = rooted.order.(i) in
    let p = rooted.parent.(v) in
    if p >= 0 then size.(p) <- size.(p) + size.(v)
  done;
  size

let tree_diameter g =
  if not (Props.is_tree g) then invalid_arg "Tree.tree_diameter: not a tree";
  let d0 = Props.bfs_distances g 0 in
  let far = ref 0 in
  Array.iteri (fun v d -> if d > d0.(!far) then far := v) d0;
  let d1 = Props.bfs_distances g !far in
  Array.fold_left max 0 d1

let centroid g =
  if not (Props.is_tree g) then invalid_arg "Tree.centroid: not a tree";
  let n = Graph.n_nodes g in
  let r = root_at g 0 in
  let size = subtree_sizes g r in
  let best = ref 0 in
  let best_weight = ref max_int in
  for v = 0 to n - 1 do
    (* weight of v = size of largest component of g - v *)
    let w = ref (n - size.(v)) in
    Array.iter
      (fun u -> if r.parent.(u) = v && size.(u) > !w then w := size.(u))
      (Graph.neighbors g v);
    if !w < !best_weight then begin
      best_weight := !w;
      best := v
    end
  done;
  !best

let height r = Array.fold_left max 0 r.depth
