(** Rooted-tree utilities over {!Graph.t} values that are trees/forests. *)

type rooted = {
  root : int;
  parent : int array;  (** [-1] at the root (and at roots of other components) *)
  depth : int array;  (** depth from the root; [-1] if unreachable *)
  order : int array;  (** nodes in BFS order from the root *)
}

val root_at : Graph.t -> int -> rooted
(** BFS-root the component of the given node. Other components keep
    [parent = -1], [depth = -1] and are absent from [order]. *)

val root_forest : Graph.t -> rooted array
(** One {!rooted} per component, rooted at its smallest node id. *)

val parents_forest : Graph.t -> int array
(** Single parent array for a whole forest (each component rooted at its
    smallest node id, roots have parent [-1]). Raises [Invalid_argument]
    if the graph is not a forest. *)

val subtree_sizes : Graph.t -> rooted -> int array

val tree_diameter : Graph.t -> int
(** Diameter of a tree in O(n) (double BFS). Raises [Invalid_argument] if
    the graph is not a tree. *)

val centroid : Graph.t -> int
(** A centroid of a tree (node minimizing the largest remaining component
    when removed). Raises [Invalid_argument] if not a tree. *)

val height : rooted -> int
(** Maximum depth. *)
