module Semi_graph = Tl_graph.Semi_graph
module Iset = Set.Make (Int)

let knowledge_rounds sg ~center =
  if not (Semi_graph.node_present sg center) then
    invalid_arg "Gather.knowledge_rounds: absent center";
  let component = Iset.of_list (Semi_graph.component_of sg center) in
  let target = Iset.cardinal component in
  let base = Semi_graph.base sg in
  let n = Tl_graph.Graph.n_nodes base in
  (* state per node: the set of component nodes it has heard of; one
     synchronous round unions in every neighbor's knowledge *)
  let states = Array.make n Iset.empty in
  Iset.iter (fun v -> states.(v) <- Iset.singleton v) component;
  let rounds = ref 0 in
  while Iset.cardinal states.(center) < target do
    if !rounds > target then
      failwith "Gather.knowledge_rounds: flooding failed to converge";
    incr rounds;
    let next = Array.copy states in
    Iset.iter
      (fun v ->
        next.(v) <-
          List.fold_left
            (fun acc (u, _) -> Iset.union acc states.(u))
            states.(v)
            (Semi_graph.rank2_neighbors sg v))
      component;
    Iset.iter (fun v -> states.(v) <- next.(v)) component
  done;
  !rounds

let round_trip_cost sg ~center = 2 * knowledge_rounds sg ~center
