module Semi_graph = Tl_graph.Semi_graph
module Iset = Set.Make (Int)

let knowledge_rounds sg ~center =
  if not (Semi_graph.node_present sg center) then
    invalid_arg "Gather.knowledge_rounds: absent center";
  let component = Semi_graph.component_of sg center in
  let target = List.length component in
  (* state per component node: the set of component nodes it has heard
     of; one synchronous round unions in every neighbor's knowledge.
     The scratch is indexed by a compact renumbering of the component —
     never by the base graph — so flooding a small component of a large
     semi-graph costs O(|component| * rounds), and a sweep over many
     small components stays linear instead of quadratic in n. *)
  let index = Hashtbl.create target in
  List.iteri (fun i v -> Hashtbl.add index v i) component;
  let nodes = Array.of_list component in
  let states = Array.map Iset.singleton nodes in
  let next = Array.make target Iset.empty in
  let center_i = Hashtbl.find index center in
  let rounds = ref 0 in
  while Iset.cardinal states.(center_i) < target do
    if !rounds > target then
      failwith "Gather.knowledge_rounds: flooding failed to converge";
    incr rounds;
    Array.iteri
      (fun i v ->
        next.(i) <-
          List.fold_left
            (fun acc (u, _) -> Iset.union acc states.(Hashtbl.find index u))
            states.(i)
            (Semi_graph.rank2_neighbors sg v))
      nodes;
    Array.blit next 0 states 0 target
  done;
  !rounds

let round_trip_cost sg ~center = 2 * knowledge_rounds sg ~center
