(** Full-information gathering — the primitive behind the
    "collect the component at its highest node" steps of Algorithms 2
    and 4.

    In the LOCAL model messages are unbounded, so a node gathers its
    entire connected component by flooding: every round, every node
    forwards everything it knows. After [r] rounds a node knows exactly
    its radius-[r] ball; the component is fully known after its
    eccentricity many rounds, and a computed solution is redistributed in
    the same number of rounds — hence the [2 × eccentricity] charge used
    by the transformations. This module actually runs the flooding on the
    simulator, as an executable cross-check of that charge. *)

val knowledge_rounds : Tl_graph.Semi_graph.t -> center:int -> int
(** Simulate full-information flooding on the semi-graph (communication
    over present rank-2 edges) and return the number of rounds until
    [center] knows every node of its underlying component. Equals
    [Semi_graph.underlying_eccentricity] — verified by the test suite. *)

val round_trip_cost : Tl_graph.Semi_graph.t -> center:int -> int
(** [2 * knowledge_rounds]: collect plus redistribute. *)
