module Prng = Tl_graph.Gen.Prng

let identity n = Array.init n (fun v -> v + 1)
let reversed n = Array.init n (fun v -> n - v)

let permuted ~n ~seed =
  let ids = identity n in
  Prng.shuffle (Prng.create seed) ids;
  ids

let spread ~n ~c ~seed =
  if c < 1 then invalid_arg "Ids.spread: c < 1";
  let bound =
    let rec pow acc i = if i = 0 then acc else pow (acc * n) (i - 1) in
    max n (pow 1 (min c 4))
  in
  let rng = Prng.create seed in
  let seen = Hashtbl.create n in
  Array.init n (fun _ ->
      let rec draw () =
        let id = 1 + Prng.int rng bound in
        if Hashtbl.mem seen id then draw ()
        else begin
          Hashtbl.add seen id ();
          id
        end
      in
      draw ())

let check_unique ids =
  let seen = Hashtbl.create (Array.length ids) in
  Array.for_all
    (fun id ->
      if id <= 0 || Hashtbl.mem seen id then false
      else begin
        Hashtbl.add seen id ();
        true
      end)
    ids

let max_id ids = Array.fold_left max 0 ids
