(** Unique-identifier assignments for LOCAL algorithms.

    The LOCAL model gives every node a globally unique identifier from
    [{1, ..., n^c}]. Deterministic algorithms may behave differently under
    different assignments, so the generators here produce several
    deterministic and seeded assignments for robustness testing. *)

val identity : int -> int array
(** [identity n] assigns node [v] the id [v + 1]. *)

val reversed : int -> int array
(** Node [v] gets [n - v]. *)

val permuted : n:int -> seed:int -> int array
(** Seeded uniformly random permutation of [{1..n}]. *)

val spread : n:int -> c:int -> seed:int -> int array
(** Distinct ids sampled from [{1 .. n^c}] (for [c >= 1]); exercises the
    polynomial id-space assumption (ids much larger than [n]). *)

val check_unique : int array -> bool
(** All ids pairwise distinct and positive. *)

val max_id : int array -> int
