type t = { mutable entries : (string * int) list (* reverse first-charge order *) }

let create () = { entries = [] }

let charge t phase rounds =
  if rounds < 0 then invalid_arg "Round_cost.charge: negative rounds";
  (* observability bridge: every charge also lands on the ambient span
     (no-op when no collector is active) *)
  Tl_obs.Span.add_rounds ~phase rounds;
  let rec bump = function
    | [] -> None
    | (name, r) :: rest when name = phase -> Some ((name, r + rounds) :: rest)
    | entry :: rest -> Option.map (fun rest' -> entry :: rest') (bump rest)
  in
  match bump t.entries with
  | Some entries -> t.entries <- entries
  | None -> t.entries <- (phase, rounds) :: t.entries

let total t = List.fold_left (fun acc (_, r) -> acc + r) 0 t.entries
let phases t = List.rev t.entries

let get t phase =
  match List.assoc_opt phase t.entries with Some r -> r | None -> 0

let merge_into ~dst ~src =
  List.iter (fun (name, r) -> charge dst name r) (phases src)

let pp ppf t =
  Format.fprintf ppf "@[<v>total %d rounds@," (total t);
  List.iter
    (fun (name, r) -> Format.fprintf ppf "  %-28s %6d@," name r)
    (phases t);
  Format.fprintf ppf "@]"
