(** Round-cost ledger for multi-phase LOCAL algorithms.

    The transformations of Theorems 12 and 15 run several phases
    (decomposition, base algorithm, gather-and-solve, ...). Each phase
    charges the number of LOCAL rounds it would take on a real network; the
    ledger keeps a named per-phase breakdown so experiments can report both
    totals and the contribution of each phase. *)

type t

val create : unit -> t

val charge : t -> string -> int -> unit
(** [charge ledger phase rounds] adds [rounds] (>= 0) under [phase].
    Charging the same phase name twice accumulates. When a
    {!Tl_obs.Span} is ambient, the charge is also forwarded to the
    current span ({!Tl_obs.Span.add_rounds}) so run reports and ledgers
    always agree — this includes re-charges via {!merge_into}. *)

val total : t -> int

val phases : t -> (string * int) list
(** Phases in first-charge order with their accumulated rounds. *)

val get : t -> string -> int
(** Rounds charged to a phase ([0] if never charged). *)

val merge_into : dst:t -> src:t -> unit
(** Accumulate all of [src]'s phases into [dst]. *)

val pp : Format.formatter -> t -> unit
