(* Thin compatibility wrappers over Tl_engine: the legacy full-scan
   stepper with its two full array copies per round lives on only as the
   engine's Naive reference mode. *)

module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Span = Tl_obs.Span

(* Force-link the sharded halo-exchange backend: Tl_shard registers
   itself into Engine.shard_backend at module initialization, but the
   linker drops unreferenced archive modules, so the runtime references
   it explicitly — every binary built on the runtime can run
   [Shard] mode. *)
let () = Tl_shard.Shard.register ()

(* Same force-link for the process backend: Tl_proc registers itself
   into Engine.proc_backend at module initialization. *)
let () = Tl_proc.Coordinator.register ()

type 'state outcome = { states : 'state array; rounds : int }

(* Compiles through the topology cache: repeated phases over the same
   semi-graph view (color-reduction loops, the star families) reuse one
   CSR snapshot. Each compile records a [topo:cache_hit]/[topo:cache_miss]
   span counter (no-op without an ambient span) and the hit flag is
   stamped on the engine trace. *)
let compile sg =
  let t0 = Unix.gettimeofday () in
  let topo, hit = Topology.compile_cached_stat sg in
  Span.add_counter (if hit then "topo:cache_hit" else "topo:cache_miss") 1;
  (topo, Unix.gettimeofday () -. t0, hit)

(* Observability bridge: when a span is ambient, make sure the engine run
   is traced (creating a collector if the caller did not supply one) and
   attach the trace to the current span as an "engine:<label>" child —
   even when the run raises, so a diverging run still shows up in the
   report. *)
let with_engine_span ?trace ~label f =
  if not (Span.active ()) then f trace
  else
    let tr =
      match trace with Some t -> t | None -> Tl_engine.Trace.create ~label ()
    in
    Fun.protect ~finally:(fun () -> Span.add_trace tr) (fun () -> f (Some tr))

let run_with ?mode ?sched ?equal ?trace ~sg ~init ~step ~halted ~max_rounds ()
    =
  let topo, compile_s, compile_cached = compile sg in
  let o =
    with_engine_span ?trace ~label:"runtime.run" (fun trace ->
        Engine.run ?mode ?sched ?equal ?trace ~label:"runtime.run" ~compile_s
          ~compile_cached ~topo ~init ~step ~halted ~max_rounds ())
  in
  { states = o.Engine.states; rounds = o.Engine.rounds }

let run_until_stable_with ?mode ?sched ?trace ~sg ~init ~step ~equal
    ~max_rounds () =
  let topo, compile_s, compile_cached = compile sg in
  let o =
    with_engine_span ?trace ~label:"runtime.stable" (fun trace ->
        Engine.run_until_stable ?mode ?sched ?trace ~label:"runtime.stable"
          ~compile_s ~compile_cached ~topo ~init ~step ~equal ~max_rounds ())
  in
  { states = o.Engine.states; rounds = o.Engine.rounds }

let run ~sg ~init ~step ~halted ~max_rounds =
  run_with ~sg ~init ~step ~halted ~max_rounds ()

let run_until_stable ~sg ~init ~step ~equal ~max_rounds =
  run_until_stable_with ~sg ~init ~step ~equal ~max_rounds ()

let charge_trace cost trace =
  let m = Tl_engine.Trace.metrics trace in
  Round_cost.charge cost
    ("engine:" ^ Tl_engine.Trace.label trace)
    m.Tl_engine.Trace.rounds
