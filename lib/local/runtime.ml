module Semi_graph = Tl_graph.Semi_graph

type 'state outcome = { states : 'state array; rounds : int }

let gather_neighbors sg states v =
  List.map
    (fun (u, e) -> (u, e, states.(u)))
    (Semi_graph.rank2_neighbors sg v)

let run ~sg ~init ~step ~halted ~max_rounds =
  let base = Semi_graph.base sg in
  let n = Tl_graph.Graph.n_nodes base in
  let present = Array.init n (Semi_graph.node_present sg) in
  let states = Array.init n (fun v -> init v) in
  let all_halted () =
    let ok = ref true in
    for v = 0 to n - 1 do
      if present.(v) && not (halted states.(v)) then ok := false
    done;
    !ok
  in
  let rounds = ref 0 in
  while (not (all_halted ())) && !rounds < max_rounds do
    incr rounds;
    let next = Array.copy states in
    for v = 0 to n - 1 do
      if present.(v) then
        next.(v) <-
          step ~round:!rounds ~node:v states.(v)
            ~neighbors:(gather_neighbors sg states v)
    done;
    Array.blit next 0 states 0 n
  done;
  if not (all_halted ()) then
    failwith
      (Printf.sprintf "Runtime.run: max_rounds=%d exceeded" max_rounds);
  { states; rounds = !rounds }

let run_until_stable ~sg ~init ~step ~equal ~max_rounds =
  let base = Semi_graph.base sg in
  let n = Tl_graph.Graph.n_nodes base in
  let present = Array.init n (Semi_graph.node_present sg) in
  let states = Array.init n (fun v -> init v) in
  let rounds = ref 0 in
  let stable = ref false in
  while (not !stable) && !rounds < max_rounds do
    let next = Array.copy states in
    let changed = ref false in
    for v = 0 to n - 1 do
      if present.(v) then begin
        let s =
          step ~round:(!rounds + 1) ~node:v states.(v)
            ~neighbors:(gather_neighbors sg states v)
        in
        if not (equal s states.(v)) then changed := true;
        next.(v) <- s
      end
    done;
    if !changed then begin
      incr rounds;
      Array.blit next 0 states 0 n
    end
    else stable := true
  done;
  if not !stable then
    failwith
      (Printf.sprintf "Runtime.run_until_stable: max_rounds=%d exceeded"
         max_rounds);
  { states; rounds = !rounds }
