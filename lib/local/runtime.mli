(** Deterministic synchronous simulator for the LOCAL model (Definition 5).

    The simulation uses the standard state-reading formulation, equivalent
    to LOCAL with unbounded messages: in every round each node atomically
    reads the current published state of all neighbors reachable over
    rank-2 edges of the semi-graph, then computes its next state. The
    number of executed rounds is returned; algorithms built on top record
    their cost in a {!Round_cost.t} ledger.

    Since the engine subsystem landed, these entry points are thin
    compatibility wrappers over {!Tl_engine.Engine}: the semi-graph is
    compiled once into a CSR {!Tl_engine.Topology} snapshot and stepped
    with the double-buffered active-set scheduler (no per-round full
    copies; converged regions cost zero). The optional [mode] selects the
    stepper — [Naive] (the original full-scan reference), [Seq] (default,
    via {!Tl_engine.Engine.default_mode}), [Par p] (OCaml 5 domains,
    deterministic chunking) or [Shard s] (the sharded halo-exchange
    backend {!Tl_shard.Shard}, which the runtime force-links so it is
    available in every binary built on it) — all bit-identical under the
    engine's stationarity contract (see {!Tl_engine.Engine}).

    Determinism: given the semi-graph, the ID assignment and a
    deterministic [step], runs are bit-for-bit reproducible across all
    modes and schedulings.

    Observability: when a {!Tl_obs.Span} is ambient, every entry point
    traces its engine run (creating a {!Tl_engine.Trace} if the caller
    supplied none) and attaches it to the current span as an
    ["engine:<label>"] child, so phase spans opened by the callers show
    where the simulator actually spent its work. *)

type 'state outcome = {
  states : 'state array;
      (** Final state per base node (only present nodes are meaningful). *)
  rounds : int;  (** Number of synchronous rounds executed. *)
}

val run :
  sg:Tl_graph.Semi_graph.t ->
  init:(int -> 'state) ->
  step:
    (round:int ->
    node:int ->
    'state ->
    neighbors:(int * int * 'state) list ->
    'state) ->
  halted:('state -> bool) ->
  max_rounds:int ->
  'state outcome
(** [run ~sg ~init ~step ~halted ~max_rounds] initializes every present
    node with [init node] and then executes synchronous rounds: in round
    [r] (starting from 1) each present node [v] receives
    [step ~round:r ~node:v state ~neighbors] where [neighbors] lists
    [(neighbor, edge, neighbor_state)] over present rank-2 edges. The run
    stops as soon as every present node's state satisfies [halted] —
    checked {e before} the first round, so an already-halted configuration
    costs 0 rounds — or when [max_rounds] is reached, whichever comes
    first. Raises [Failure] if [max_rounds] is exceeded with non-halted
    nodes, as a guard against non-terminating algorithms. The stepper is
    selected by {!Tl_engine.Engine.default_mode}; active-set change
    detection uses structural equality. *)

val run_until_stable :
  sg:Tl_graph.Semi_graph.t ->
  init:(int -> 'state) ->
  step:
    (round:int ->
    node:int ->
    'state ->
    neighbors:(int * int * 'state) list ->
    'state) ->
  equal:('state -> 'state -> bool) ->
  max_rounds:int ->
  'state outcome
(** Like {!run}, but stops when a global fixed point is reached (no state
    changed during a round). The fixed-point detection round itself is not
    charged. *)

val run_with :
  ?mode:Tl_engine.Engine.mode ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?equal:('state -> 'state -> bool) ->
  ?trace:Tl_engine.Trace.t ->
  sg:Tl_graph.Semi_graph.t ->
  init:(int -> 'state) ->
  step:
    (round:int ->
    node:int ->
    'state ->
    neighbors:(int * int * 'state) list ->
    'state) ->
  halted:('state -> bool) ->
  max_rounds:int ->
  unit ->
  'state outcome
(** {!run} with explicit engine controls: stepper [mode] ([Naive] /
    [Seq] / [Par p]), [sched]uling, active-set [equal] and a [trace]
    collector. *)

val run_until_stable_with :
  ?mode:Tl_engine.Engine.mode ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?trace:Tl_engine.Trace.t ->
  sg:Tl_graph.Semi_graph.t ->
  init:(int -> 'state) ->
  step:
    (round:int ->
    node:int ->
    'state ->
    neighbors:(int * int * 'state) list ->
    'state) ->
  equal:('state -> 'state -> bool) ->
  max_rounds:int ->
  unit ->
  'state outcome
(** {!run_until_stable} with explicit engine controls. *)

val charge_trace : Round_cost.t -> Tl_engine.Trace.t -> unit
(** Merge an engine trace into a round ledger: charges the measured
    engine rounds under the phase ["engine:<label>"]. Used by the CLI to
    surface [--trace] metrics in the standard ledger report. *)
