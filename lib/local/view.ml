module Semi_graph = Tl_graph.Semi_graph

let ball sg ~center ~radius =
  let dist = Semi_graph.underlying_distances sg center in
  let acc = ref [] in
  Array.iteri
    (fun v d -> if d >= 0 && d <= radius then acc := v :: !acc)
    dist;
  List.rev !acc

let gather_cost sg ~center = 2 * Semi_graph.underlying_eccentricity sg center

let radius_needed sg ~component ~center =
  let dist = Semi_graph.underlying_distances sg center in
  List.fold_left (fun acc v -> max acc dist.(v)) 0 component
