(** r-hop views.

    In the LOCAL model a T-round algorithm is equivalent to a function of
    each node's radius-T view. These helpers extract balls and views for
    testing that equivalence and for the gather-and-solve phases of the
    transformations (a node collecting its component at distance d has a
    LOCAL cost of d rounds to collect plus d rounds to redistribute). *)

val ball : Tl_graph.Semi_graph.t -> center:int -> radius:int -> int list
(** Present nodes within the given distance of [center], through present
    rank-2 edges, ascending. *)

val gather_cost : Tl_graph.Semi_graph.t -> center:int -> int
(** LOCAL rounds for [center] to collect its whole underlying component and
    redistribute a solution: twice its eccentricity in the component. *)

val radius_needed : Tl_graph.Semi_graph.t -> component:int list -> center:int -> int
(** Eccentricity of [center] within its component (must equal the BFS
    eccentricity; exposed for certificate checking). *)
