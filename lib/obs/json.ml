type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail pos msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg pos))

(* ---------- parser ---------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail c.pos (Printf.sprintf "expected %C" ch)

let literal c word value =
  let l = String.length word in
  if c.pos + l <= String.length c.s && String.sub c.s c.pos l = word then begin
    c.pos <- c.pos + l;
    value
  end
  else fail c.pos (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar value as UTF-8. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail c.pos "unterminated string"
    else
      match c.s.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
        c.pos <- c.pos + 1;
        (if c.pos >= String.length c.s then fail c.pos "unterminated escape"
         else
           match c.s.[c.pos] with
           | '"' -> Buffer.add_char b '"'; c.pos <- c.pos + 1
           | '\\' -> Buffer.add_char b '\\'; c.pos <- c.pos + 1
           | '/' -> Buffer.add_char b '/'; c.pos <- c.pos + 1
           | 'b' -> Buffer.add_char b '\b'; c.pos <- c.pos + 1
           | 'f' -> Buffer.add_char b '\012'; c.pos <- c.pos + 1
           | 'n' -> Buffer.add_char b '\n'; c.pos <- c.pos + 1
           | 'r' -> Buffer.add_char b '\r'; c.pos <- c.pos + 1
           | 't' -> Buffer.add_char b '\t'; c.pos <- c.pos + 1
           | 'u' ->
             (* [pos] is the first of four hex digits. *)
             let hex4 pos =
               if pos + 4 > String.length c.s then
                 fail pos "truncated \\u escape";
               let v = ref 0 in
               for i = pos to pos + 3 do
                 let d =
                   match c.s.[i] with
                   | '0' .. '9' as ch -> Char.code ch - Char.code '0'
                   | 'a' .. 'f' as ch -> Char.code ch - Char.code 'a' + 10
                   | 'A' .. 'F' as ch -> Char.code ch - Char.code 'A' + 10
                   | _ -> fail pos "bad \\u escape"
                 in
                 v := (!v lsl 4) lor d
               done;
               !v
             in
             let u = hex4 (c.pos + 1) in
             c.pos <- c.pos + 5;
             if u >= 0xd800 && u <= 0xdbff then
               (* A high surrogate is only meaningful as the first half
                  of a \uXXXX\uXXXX pair; anything else is malformed. *)
               if
                 c.pos + 1 < String.length c.s
                 && c.s.[c.pos] = '\\'
                 && c.s.[c.pos + 1] = 'u'
               then begin
                 let lo = hex4 (c.pos + 2) in
                 if lo >= 0xdc00 && lo <= 0xdfff then begin
                   c.pos <- c.pos + 6;
                   add_utf8 b
                     (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
                 end
                 else fail (c.pos - 6) "unpaired surrogate in \\u escape"
               end
               else fail (c.pos - 6) "unpaired surrogate in \\u escape"
             else if u >= 0xdc00 && u <= 0xdfff then
               fail (c.pos - 6) "unpaired surrogate in \\u escape"
             else add_utf8 b u
           | ch -> fail c.pos (Printf.sprintf "bad escape \\%C" ch));
        go ()
      | ch when Char.code ch < 0x20 -> fail c.pos "control char in string"
      | ch ->
        Buffer.add_char b ch;
        c.pos <- c.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    c.pos < String.length c.s && is_num_char c.s.[c.pos]
  do
    c.pos <- c.pos + 1
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail start (Printf.sprintf "bad number %S" tok)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c.pos "unexpected end of input"
  | Some '{' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some '}' then begin
      c.pos <- c.pos + 1;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          fields ((key, v) :: acc)
        | Some '}' ->
          c.pos <- c.pos + 1;
          Obj (List.rev ((key, v) :: acc))
        | _ -> fail c.pos "expected ',' or '}'"
      in
      fields []
  | Some '[' ->
    c.pos <- c.pos + 1;
    skip_ws c;
    if peek c = Some ']' then begin
      c.pos <- c.pos + 1;
      Arr []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          c.pos <- c.pos + 1;
          items (v :: acc)
        | Some ']' ->
          c.pos <- c.pos + 1;
          Arr (List.rev (v :: acc))
        | _ -> fail c.pos "expected ',' or ']'"
      in
      items []
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> Num (parse_number c)
  | Some ch -> fail c.pos (Printf.sprintf "unexpected %C" ch)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c.pos "trailing garbage";
  v

let parse_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* ---------- printer ---------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let add_num b f =
  if not (Float.is_finite f) then
    (* nan/infinity have no JSON representation; degrade to null rather
       than emit a token no parser (including ours) accepts *)
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.bprintf b "%.0f" f
  else Printf.bprintf b "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (string_of_bool x)
    | Num f -> add_num b f
    | Str s -> Printf.bprintf b "\"%s\"" (escape s)
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        items;
      Buffer.add_char b ']'
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Printf.bprintf b "\"%s\":" (escape k);
          go v)
        fields;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* ---------- accessors ---------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
let to_assoc = function Obj fields -> Some fields | _ -> None

(* ---------- ndjson ---------- *)

let to_line v = to_string v ^ "\n"

module Ndjson = struct
  (* A growing byte buffer with a consumption cursor. Consumed bytes are
     dropped lazily: when the cursor passes half of a large buffer the
     live tail is shifted down, so a long-running stream stays O(longest
     line), not O(stream). *)
  type reader = { buf : Buffer.t; mutable start : int }

  let reader () = { buf = Buffer.create 256; start = 0 }

  let feed r ?(pos = 0) ?len s =
    let len = Option.value len ~default:(String.length s - pos) in
    if pos < 0 || len < 0 || pos + len > String.length s then
      invalid_arg "Ndjson.feed";
    Buffer.add_substring r.buf s pos len

  let compact r =
    if r.start > 4096 && r.start * 2 > Buffer.length r.buf then begin
      let tail = Buffer.sub r.buf r.start (Buffer.length r.buf - r.start) in
      Buffer.clear r.buf;
      Buffer.add_string r.buf tail;
      r.start <- 0
    end

  let is_blank line =
    String.for_all
      (fun ch -> ch = ' ' || ch = '\t' || ch = '\r' || ch = '\n')
      line

  (* Next complete line (newline consumed, not included), advancing the
     cursor — or None when no newline is buffered. *)
  let rec next_line r =
    let len = Buffer.length r.buf in
    let rec find i = if i >= len then None else
      if Buffer.nth r.buf i = '\n' then Some i else find (i + 1)
    in
    match find r.start with
    | None -> None
    | Some nl ->
      let line = Buffer.sub r.buf r.start (nl - r.start) in
      r.start <- nl + 1;
      compact r;
      if is_blank line then next_line r else Some line

  let next r =
    match next_line r with
    | None -> None
    | Some line -> Some (parse line)

  let pending r = Buffer.sub r.buf r.start (Buffer.length r.buf - r.start)
end

let read_ndjson s =
  let r = Ndjson.reader () in
  Ndjson.feed r s;
  if String.length s > 0 && s.[String.length s - 1] <> '\n' then
    (* terminate a final unterminated line so it is not silently lost *)
    Ndjson.feed r "\n";
  let rec go acc =
    match Ndjson.next r with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
