(** Minimal JSON value type, parser and printer.

    The repo deliberately carries no third-party JSON dependency; every
    producer (engine traces, bench emitters, span reports) hand-rolls its
    output. This module is the matching {e consumer}: a small
    recursive-descent parser plus a printer, enough for the regression
    comparator ([bench/regress.exe]) and the schema-checking tests to read
    back what the repo writes.

    Numbers are represented as [float] (like every mainstream OCaml JSON
    AST); integer-valued numbers print without a decimal point, other
    floats print with ["%.17g"] so [parse (to_string v) = v] for finite
    values. Non-finite numbers (nan, infinities) have no JSON
    representation and print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} / {!parse_file} with a message containing the
    0-based byte offset of the offending input. *)

val parse : string -> t
(** Parse one JSON value (trailing whitespace allowed, trailing garbage
    rejected). The standard backslash escapes and [\uXXXX] are decoded to
    UTF-8; a [\uXXXX\uXXXX] surrogate pair decodes to the astral scalar
    it encodes, and a lone surrogate ([\uD800]–[\uDFFF] not forming a
    pair) is a {!Parse_error}. *)

val parse_file : string -> t
(** [parse] on a whole file. Raises [Sys_error] on IO failure. *)

val to_string : t -> string
(** Compact single-line rendering. [Num nan] and [Num infinity] render
    as [null]. *)

(** {1 Accessors} — total lookups returning [option]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value only. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_assoc : t -> (string * t) list option
