(** Minimal JSON value type, parser and printer.

    The repo deliberately carries no third-party JSON dependency; every
    producer (engine traces, bench emitters, span reports) hand-rolls its
    output. This module is the matching {e consumer}: a small
    recursive-descent parser plus a printer, enough for the regression
    comparator ([bench/regress.exe]) and the schema-checking tests to read
    back what the repo writes.

    Numbers are represented as [float] (like every mainstream OCaml JSON
    AST); integer-valued numbers print without a decimal point, other
    floats print with ["%.17g"] so [parse (to_string v) = v] for finite
    values. Non-finite numbers (nan, infinities) have no JSON
    representation and print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!parse} / {!parse_file} with a message containing the
    0-based byte offset of the offending input. *)

val parse : string -> t
(** Parse one JSON value (trailing whitespace allowed, trailing garbage
    rejected). The standard backslash escapes and [\uXXXX] are decoded to
    UTF-8; a [\uXXXX\uXXXX] surrogate pair decodes to the astral scalar
    it encodes, and a lone surrogate ([\uD800]–[\uDFFF] not forming a
    pair) is a {!Parse_error}. *)

val parse_file : string -> t
(** [parse] on a whole file. Raises [Sys_error] on IO failure. *)

val to_string : t -> string
(** Compact single-line rendering. [Num nan] and [Num infinity] render
    as [null]. *)

(** {1 Accessors} — total lookups returning [option]. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
(** [Num] with an integral value only. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_assoc : t -> (string * t) list option

(** {1 Ndjson} — newline-delimited JSON, one value per line.

    The serve protocol (and any future wire format) frames values as
    single lines: {!to_line} is the emitter, {!Ndjson} the incremental
    consumer. {!to_string} already never emits a raw newline (control
    characters are escaped), so every value round-trips through one
    line. *)

val to_line : t -> string
(** [to_string v ^ "\n"] — one compact, newline-terminated line. *)

module Ndjson : sig
  type reader
  (** Incremental line-splitting reader: feed arbitrary byte chunks
      (network reads, pipe reads, whole files), pull one parsed value
      per complete input line. Blank (whitespace-only) lines are
      skipped. *)

  val reader : unit -> reader

  val feed : reader -> ?pos:int -> ?len:int -> string -> unit
  (** Append a chunk (default the whole string) to the reader's
      buffer. Raises [Invalid_argument] on an out-of-bounds
      [pos]/[len]. *)

  val next : reader -> t option
  (** The next complete line's value, or [None] when no complete line
      is buffered (feed more, or the stream ended mid-line). A
      malformed line raises {!Parse_error} — the line is consumed, so
      a caller may report the error and keep pulling. *)

  val pending : reader -> string
  (** Bytes buffered after the last complete line (the partial tail),
      e.g. to diagnose a stream that ended mid-value. *)
end

val read_ndjson : string -> t list
(** Parse a whole ndjson string (blank lines skipped). Raises
    {!Parse_error} on the first malformed line. *)
