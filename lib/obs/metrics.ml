module Engine = Tl_engine.Engine
module Pool = Tl_engine.Pool
module Trace = Tl_engine.Trace

let version = 1

(* ---------- bucket layout ----------

   One fixed log-spaced layout shared by every histogram: boundaries
   grow by 2^(1/4) per bucket from 1e-6 s, the last bucket is +Inf. 126
   finite boundaries reach ~3000 s — beyond any latency this repo can
   produce without the run failing on max_rounds first. *)

let n_buckets = 128

let les =
  Array.init n_buckets (fun i ->
      if i = n_buckets - 1 then infinity
      else 1e-6 *. Float.pow 2. (float_of_int i /. 4.))

let bucket_le i = les.(i)

(* Smallest i with x <= les.(i): total (NaN compares false everywhere
   and lands in bucket 0), monotone, and exact on the boundary table —
   a 7-step binary search, no floats boxed, no allocation. *)
let bucket_index x =
  if not (x > les.(0)) then 0
  else begin
    (* invariant: x > les.(lo), x <= les.(hi) *)
    let lo = ref 0 and hi = ref (n_buckets - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if x <= Array.unsafe_get les mid then hi := mid else lo := mid
    done;
    !hi
  end

(* ---------- metric cells ----------

   Every counter/histogram is an array of per-domain cells: slot =
   domain id mod [slots]. Two domains can share a slot (fetch_and_add
   keeps that correct); sharding only serves to keep the common case —
   few domains, distinct low ids — contention-free. *)

let slots = 8
let slot () = (Domain.self () :> int) land (slots - 1)

type counter = int Atomic.t array
type gauge = int Atomic.t

type histogram = {
  cells : int Atomic.t array;  (* slots * n_buckets bucket counts *)
  sums : int Atomic.t array;  (* per-slot sample sums, nanoseconds *)
}

let incr (c : counter) n =
  ignore (Atomic.fetch_and_add (Array.unsafe_get c (slot ())) n)

let counter_value (c : counter) =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c

let set_gauge (g : gauge) v = Atomic.set g v

let rec gauge_max (g : gauge) v =
  let cur = Atomic.get g in
  if v > cur && not (Atomic.compare_and_set g cur v) then gauge_max g v

let gauge_value (g : gauge) = Atomic.get g

let observe (h : histogram) x =
  let s = slot () in
  let i = bucket_index x in
  ignore
    (Atomic.fetch_and_add (Array.unsafe_get h.cells ((s * n_buckets) + i)) 1);
  let ns = if x > 0. then int_of_float (x *. 1e9) else 0 in
  ignore (Atomic.fetch_and_add (Array.unsafe_get h.sums s) ns)

(* ---------- registry ---------- *)

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let key name labels =
  match labels with
  | [] -> name
  | l ->
    name ^ "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) l)
    ^ "}"

let register name labels make cast =
  let k = key name labels in
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match Hashtbl.find_opt registry k with
      | Some m -> cast k m
      | None ->
        let m = make () in
        Hashtbl.add registry k m;
        cast k m)

let counter ?(labels = []) name =
  register name labels
    (fun () -> C (Array.init slots (fun _ -> Atomic.make 0)))
    (fun k m ->
      match m with C c -> c | _ -> invalid_arg ("Metrics: " ^ k ^ " is not a counter"))

let gauge ?(labels = []) name =
  register name labels
    (fun () -> G (Atomic.make 0))
    (fun k m ->
      match m with G g -> g | _ -> invalid_arg ("Metrics: " ^ k ^ " is not a gauge"))

let histogram ?(labels = []) name =
  register name labels
    (fun () ->
      H
        {
          cells = Array.init (slots * n_buckets) (fun _ -> Atomic.make 0);
          sums = Array.init slots (fun _ -> Atomic.make 0);
        })
    (fun k m ->
      match m with
      | H h -> h
      | _ -> invalid_arg ("Metrics: " ^ k ^ " is not a histogram"))

(* ---------- snapshots ---------- *)

type hsnap = { h_count : int; h_sum : float; h_buckets : (float * int) list }

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hsnap) list;
}

let histogram_snapshot (h : histogram) =
  (* merge the per-domain cells on the scraping domain; concurrent
     observes may straddle the reads — each sample is still counted in
     exactly one bucket of some later scrape *)
  let count = ref 0 in
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let per_bucket = ref 0 in
    for s = 0 to slots - 1 do
      per_bucket := !per_bucket + Atomic.get h.cells.((s * n_buckets) + i)
    done;
    count := !count + !per_bucket;
    if !per_bucket > 0 && i < n_buckets - 1 then
      (* cumulative count over buckets <= i is filled below *)
      buckets := (les.(i), !per_bucket) :: !buckets
  done;
  let _, cumulative =
    List.fold_left_map (fun acc (le, d) -> (acc + d, (le, acc + d))) 0 !buckets
  in
  let sum_ns = Array.fold_left (fun acc s -> acc + Atomic.get s) 0 h.sums in
  { h_count = !count; h_sum = float_of_int sum_ns *. 1e-9;
    h_buckets = cumulative }

(* The downward scan above accumulates +Inf-bucket deltas into h_count
   but records per-bucket deltas; fold_left_map turns the ascending
   delta list into cumulative counts. *)

let snapshot () =
  Mutex.lock registry_mu;
  let entries =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mu)
      (fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
  in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (k, m) ->
      match m with
      | C c -> counters := (k, counter_value c) :: !counters
      | G g -> gauges := (k, gauge_value g) :: !gauges
      | H h -> histograms := (k, histogram_snapshot h) :: !histograms)
    entries;
  {
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !histograms;
  }

(* Pointwise sum of two scrapes: deltas are merged by boundary (both
   sides carry boundaries from the one shared layout, so float equality
   is exact), then re-accumulated. *)
let merge_hsnap a b =
  let deltas l =
    let _, ds =
      List.fold_left_map (fun prev (le, cum) -> (cum, (le, cum - prev))) 0 l
    in
    ds
  in
  let rec merge xs ys =
    match (xs, ys) with
    | [], l | l, [] -> l
    | (lx, dx) :: tx, (ly, dy) :: ty ->
      if lx = ly then (lx, dx + dy) :: merge tx ty
      else if lx < ly then (lx, dx) :: merge tx ys
      else (ly, dy) :: merge xs ty
  in
  let merged = merge (deltas a.h_buckets) (deltas b.h_buckets) in
  let _, cumulative =
    List.fold_left_map (fun acc (le, d) -> (acc + d, (le, acc + d))) 0 merged
  in
  {
    h_count = a.h_count + b.h_count;
    h_sum = a.h_sum +. b.h_sum;
    h_buckets = cumulative;
  }

let quantile h q =
  if h.h_count = 0 then 0.
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.h_count))) in
    let rec find = function
      | [] -> infinity (* rank falls in the +Inf bucket *)
      | (le, cum) :: rest -> if cum >= rank then le else find rest
    in
    find h.h_buckets
  end

(* ---------- JSON round-trip (tl_metrics = 1) ---------- *)

let hsnap_to_json h =
  Json.Obj
    [
      ("count", Json.Num (float_of_int h.h_count));
      ("sum", Json.Num h.h_sum);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (le, cum) ->
               Json.Arr [ Json.Num le; Json.Num (float_of_int cum) ])
             h.h_buckets) );
    ]

let snapshot_to_json s =
  let ints kvs =
    Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) kvs)
  in
  Json.Obj
    [
      ("tl_metrics", Json.Num (float_of_int version));
      ("counters", ints s.counters);
      ("gauges", ints s.gauges);
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hsnap_to_json h)) s.histograms)
      );
    ]

let hsnap_of_json j =
  match
    ( Option.bind (Json.member "count" j) Json.to_int,
      Option.bind (Json.member "sum" j) Json.to_float,
      Option.bind (Json.member "buckets" j) Json.to_list )
  with
  | Some h_count, Some h_sum, Some buckets ->
    let bucket = function
      | Json.Arr [ le; cum ] -> (
        match (Json.to_float le, Json.to_int cum) with
        | Some le, Some cum -> Some (le, cum)
        | _ -> None)
      | _ -> None
    in
    let decoded = List.filter_map bucket buckets in
    if List.length decoded <> List.length buckets then None
    else Some { h_count; h_sum; h_buckets = decoded }
  | _ -> None

let snapshot_of_json j =
  match Option.bind (Json.member "tl_metrics" j) Json.to_int with
  | None -> Error "not a tl_metrics snapshot (missing tl_metrics field)"
  | Some v when v <> version ->
    Error (Printf.sprintf "unsupported tl_metrics version %d" v)
  | Some _ -> (
    let ints field =
      Option.bind (Json.member field j) Json.to_assoc
      |> Option.map
           (List.filter_map (fun (k, v) ->
                Option.map (fun i -> (k, i)) (Json.to_int v)))
    in
    let hists =
      Option.bind (Json.member "histograms" j) Json.to_assoc
      |> Option.map
           (List.filter_map (fun (k, v) ->
                Option.map (fun h -> (k, h)) (hsnap_of_json v)))
    in
    match (ints "counters", ints "gauges", hists) with
    | Some counters, Some gauges, Some histograms ->
      Ok { counters; gauges; histograms }
    | _ -> Error "malformed tl_metrics snapshot")

(* ---------- Prometheus text exposition ---------- *)

(* Registry keys are already [name] or [name{k="v",...}]; split them
   back apart so histogram series can splice in the [le] label. *)
let split_key k =
  match String.index_opt k '{' with
  | None -> (k, "")
  | Some i ->
    (String.sub k 0 i, String.sub k (i + 1) (String.length k - i - 2))

let prom_num x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let to_prometheus s =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.add typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  let sample name labels value =
    let series = if labels = "" then name else name ^ "{" ^ labels ^ "}" in
    Buffer.add_string buf (Printf.sprintf "%s %s\n" series value)
  in
  let with_le labels le =
    let le_label = Printf.sprintf "le=\"%s\"" le in
    if labels = "" then le_label else labels ^ "," ^ le_label
  in
  List.iter
    (fun (k, v) ->
      let name, labels = split_key k in
      type_line name "counter";
      sample name labels (string_of_int v))
    s.counters;
  List.iter
    (fun (k, v) ->
      let name, labels = split_key k in
      type_line name "gauge";
      sample name labels (string_of_int v))
    s.gauges;
  List.iter
    (fun (k, h) ->
      let name, labels = split_key k in
      type_line name "histogram";
      List.iter
        (fun (le, cum) ->
          sample (name ^ "_bucket") (with_le labels (prom_num le))
            (string_of_int cum))
        h.h_buckets;
      sample (name ^ "_bucket") (with_le labels "+Inf")
        (string_of_int h.h_count);
      sample (name ^ "_sum") labels (Printf.sprintf "%g" h.h_sum);
      sample (name ^ "_count") labels (string_of_int h.h_count))
    s.histograms;
  Buffer.contents buf

(* ---------- flight recorder ---------- *)

module Recorder = struct
  type event = {
    ts : float;
    kind : string;
    key : string;
    detail : string;
    outcome : string;
    latency_s : float;
  }

  let capacity = 512
  let ring : event option array = Array.make capacity None
  let next = ref 0 (* total events ever recorded *)
  let mu = Mutex.create ()

  let record ev =
    Mutex.lock mu;
    ring.(!next mod capacity) <- Some ev;
    next := !next + 1;
    Mutex.unlock mu

  let clear () =
    Mutex.lock mu;
    Array.fill ring 0 capacity None;
    next := 0;
    Mutex.unlock mu

  let tail ?(limit = capacity) () =
    Mutex.lock mu;
    let total = !next in
    let retained = min total capacity in
    let take = min (max 0 limit) retained in
    let events =
      List.init take (fun i ->
          Option.get (ring.((total - take + i) mod capacity)))
    in
    Mutex.unlock mu;
    events

  let event_to_json ev =
    Json.Obj
      [
        ("ts", Json.Num ev.ts);
        ("kind", Json.Str ev.kind);
        ("key", Json.Str ev.key);
        ("detail", Json.Str ev.detail);
        ("outcome", Json.Str ev.outcome);
        ("latency_s", Json.Num ev.latency_s);
      ]

  let event_of_json j =
    match
      ( Option.bind (Json.member "ts" j) Json.to_float,
        Option.bind (Json.member "kind" j) Json.to_str,
        Option.bind (Json.member "key" j) Json.to_str,
        Option.bind (Json.member "outcome" j) Json.to_str )
    with
    | Some ts, Some kind, Some key, Some outcome ->
      Some
        {
          ts;
          kind;
          key;
          detail =
            Option.value ~default:""
              (Option.bind (Json.member "detail" j) Json.to_str);
          outcome;
          latency_s =
            Option.value ~default:0.
              (Option.bind (Json.member "latency_s" j) Json.to_float);
        }
    | _ -> None

  let dump ?(limit = 8) oc =
    let events = tail ~limit () in
    List.iter
      (fun ev ->
        Printf.fprintf oc "tl_metrics tail: %.6f %-8s %-7s %.6fs %s %s\n"
          ev.ts ev.kind ev.outcome ev.latency_s ev.key ev.detail)
      events
end

(* ---------- reset ---------- *)

let reset () =
  Mutex.lock registry_mu;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Array.iter (fun cell -> Atomic.set cell 0) c
      | G g -> Atomic.set g 0
      | H h ->
        Array.iter (fun cell -> Atomic.set cell 0) h.cells;
        Array.iter (fun s -> Atomic.set s 0) h.sums)
    registry;
  Mutex.unlock registry_mu;
  Recorder.clear ()

(* ---------- enabling and the engine bridge ---------- *)

let on = Atomic.make false
let enabled () = Atomic.get on

(* Engine-side metrics, fed per run from the finished trace: no per-step
   instrumentation in the engine at all, so the metrics-on hot path is
   the metrics-off hot path plus one sink call per run. *)
let install_engine_hooks () =
  let runs = counter "engine_runs_total" in
  let rounds = counter "engine_rounds_total" in
  let steps = counter "engine_steps_total" in
  let active_peak = gauge "engine_active_peak" in
  let run_seconds = histogram "engine_run_seconds" in
  Engine.metrics_sink :=
    Some
      (fun tr ->
        let m = Trace.metrics tr in
        incr runs 1;
        incr rounds m.Trace.rounds;
        incr steps m.Trace.steps;
        gauge_max active_peak m.Trace.max_active;
        observe run_seconds m.Trace.total_s);
  let maps = counter "pool_maps_total" in
  let tasks = counter "pool_tasks_total" in
  let width = gauge "pool_workers" in
  Pool.tap :=
    Some
      (fun ~tasks:n ~workers ->
        incr maps 1;
        incr tasks n;
        gauge_max width workers);
  (* Domain spawns are a liveness signal for the persistent team: under a
     long-running server this counter should plateau at the team width
     after warmup — a climbing value means per-job domain churn. *)
  let spawned = counter "pool_spawns_total" in
  Tl_engine.Team.tap := Some (fun ~spawned:n -> incr spawned n)

let enable () =
  if not (Atomic.get on) then begin
    install_engine_hooks ();
    Atomic.set on true
  end

let disable () =
  Engine.metrics_sink := None;
  Pool.tap := None;
  Tl_engine.Team.tap := None;
  Atomic.set on false
