(** Process-wide metrics registry: counters, gauges, log-bucket latency
    histograms, and a bounded flight recorder of recent events.

    The registry answers the serving daemon's "what is the process doing
    right now" question live, per scrape, without stopping the world:

    - {e Counters} and {e histograms} are sharded into per-domain cells
      ([Atomic.t] slots indexed by [Domain.self () mod slots]) so the
      hot-path {!incr}/{!observe} is a single [Atomic.fetch_and_add] on
      a (usually) uncontended cell — lock-free, allocation-free, safe
      from any domain. Cells are merged only at {!snapshot} time, on the
      scraping domain.
    - Registration ({!counter} / {!gauge} / {!histogram}) is memoized by
      name under a mutex; hot paths hoist the handle, so the mutex is
      touched once per metric per process.
    - Histograms use one fixed log-spaced bucket layout (see
      {!bucket_le}): boundaries grow by [2^(1/4)] per bucket from 1 µs,
      so any quantile read off the buckets ({!quantile}) overestimates
      the true sample quantile by at most a factor [2^(1/4) ≈ 1.19]
      (≤ ~19% relative error; below 1 µs the error is absolute, 1 µs).
      The bench harness and the live scrape report p50/p99 from this
      same layout, so their numbers are comparable by construction.

    {2 Snapshot schema (tl_metrics = 1)}

    {!snapshot_to_json} renders one scrape as:
    {v
    { "tl_metrics": 1,
      "counters":   { "serve_served_total": 12, ... },
      "gauges":     { "serve_jobq_depth": 0, ... },
      "histograms": {
        "serve_request_seconds": {
          "count": 12, "sum": 0.0042,
          "buckets": [[1.19e-06, 3], [4.76e-06, 12]] } } }
    v}
    Histogram buckets are [[le, cumulative_count]] pairs over finite
    upper bounds, ascending, with zero-delta buckets elided; the
    implicit [+Inf] bucket's cumulative count is ["count"].
    {!snapshot_of_json} decodes the same schema (the CLI client renders
    Prometheus text from a daemon's JSON snapshot without sharing
    memory).

    {2 Engine bridge}

    [tl_obs] sits {e above} [tl_engine] in the library DAG, so the
    engine cannot call this module directly. {!enable} installs the
    hooks the engine exposes for exactly this purpose
    ({!Tl_engine.Engine.metrics_sink}, {!Tl_engine.Pool.tap},
    {!Tl_engine.Team.tap}) and flips
    the global {!enabled} flag that guards the shard backend's direct
    instrumentation. Nothing is instrumented until some layer (the
    serving daemon, a bench) opts in — a one-shot CLI run pays zero. *)

type counter
type gauge
type histogram

(** {1 Registration} — memoized by name (and labels); safe from any
    domain, intended to be hoisted out of hot paths. *)

val counter : ?labels:(string * string) list -> string -> counter
val gauge : ?labels:(string * string) list -> string -> gauge
val histogram : ?labels:(string * string) list -> string -> histogram
(** [labels] extend the registry key to [name{k="v",...}] in the given
    order — the Prometheus convention; same name + same labels returns
    the same metric. Counter names should end in [_total], histogram
    names in [_seconds] (the exposition relies on convention only). *)

(** {1 Hot path} — lock-free, allocation-free, any domain. *)

val incr : counter -> int -> unit
val set_gauge : gauge -> int -> unit
val gauge_max : gauge -> int -> unit
(** Raise the gauge to at least the given value (CAS loop). *)

val observe : histogram -> float -> unit
(** Record one sample (seconds). Non-positive and NaN samples land in
    the lowest bucket; samples beyond the top finite boundary land in
    the implicit [+Inf] bucket. *)

(** {1 Reads} *)

val counter_value : counter -> int
val gauge_value : gauge -> int

(** {1 Bucket layout} — shared by every histogram. *)

val n_buckets : int

val bucket_le : int -> float
(** Upper bound of bucket [i]: [1e-6 * 2^(i/4)] for [i < n_buckets - 1],
    [infinity] for the last bucket. *)

val bucket_index : float -> int
(** Total on every float (NaN included) and monotone: the smallest [i]
    with [x <= bucket_le i]. Branch-free of allocation — a binary search
    over the boundary table. *)

(** {1 Snapshots} *)

type hsnap = {
  h_count : int;  (** total samples *)
  h_sum : float;  (** sum of samples, seconds *)
  h_buckets : (float * int) list;
      (** (finite le, cumulative count), ascending, zero-delta buckets
          elided; the [+Inf] cumulative count is [h_count] *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  histograms : (string * hsnap) list;
}
(** All three sections sorted by registry key. *)

val snapshot : unit -> snapshot
val histogram_snapshot : histogram -> hsnap

val merge_hsnap : hsnap -> hsnap -> hsnap
(** Pointwise sum — associative and commutative (the per-domain cell
    merge {!snapshot} performs, exposed for the property tests and for
    aggregating scrapes). *)

val quantile : hsnap -> float -> float
(** [quantile h q] for [q] in [(0, 1]]: the upper bound of the bucket
    holding the [ceil (q * count)]-th smallest sample — an
    overestimate by at most the bucket growth factor (~19%). [0.] on an
    empty histogram, [infinity] when the rank falls in the [+Inf]
    bucket. *)

val version : int
(** Snapshot schema version, [1]. *)

val snapshot_to_json : snapshot -> Json.t
val snapshot_of_json : Json.t -> (snapshot, string) result

val to_prometheus : snapshot -> string
(** Prometheus text exposition: [# TYPE] comments, one
    [name{labels} value] sample line per counter/gauge, and
    [_bucket]/[_sum]/[_count] series (with an explicit [+Inf] bucket)
    per histogram. *)

val reset : unit -> unit
(** Zero every registered metric and clear the flight recorder (the
    registry itself — names, handles — survives). Tests and the B10
    overhead bench only. *)

(** {1 Enabling and the engine bridge} *)

val enabled : unit -> bool
(** Cheap (one [Atomic.get]) — the guard for instrumentation sites that
    do extra work (wall-clocking shard exchanges, recording events). *)

val enable : unit -> unit
(** Flip {!enabled} on and install the engine-side hooks:
    {!Tl_engine.Engine.metrics_sink} (every engine run's trace feeds the
    [engine_*] counters and the run-time histogram) and
    {!Tl_engine.Pool.tap} (the [pool_maps_total] / [pool_tasks_total] /
    [pool_workers] metrics) and {!Tl_engine.Team.tap}
    ([pool_spawns_total] — domain spawns by the persistent team; under a
    warm server this plateaus at the team width, so a climbing value
    flags per-job domain churn). Idempotent; chains to no one — the
    hooks are owned by this module while enabled. *)

val disable : unit -> unit
(** Uninstall the hooks and flip {!enabled} off. *)

(** {1 Flight recorder} *)

module Recorder : sig
  (** A bounded ring of the most recent request / exchange events — the
      "what just happened" complement to the registry's aggregates.
      Recording is mutex-guarded (events are per-request / per-run, not
      per-step, so the lock is off every hot path). *)

  type event = {
    ts : float;  (** [Unix.gettimeofday] at completion *)
    kind : string;  (** ["request"] or ["exchange"] *)
    key : string;  (** spec_key digest / run label *)
    detail : string;  (** knobs: problem, engine, shards, pool... *)
    outcome : string;  (** ["ok"] or ["error:<kind>"] *)
    latency_s : float;
  }

  val capacity : int
  (** Ring size, [512]: recording past capacity overwrites oldest. *)

  val record : event -> unit

  val tail : ?limit:int -> unit -> event list
  (** Most recent events, oldest first, at most [limit] (default: all
      retained). *)

  val clear : unit -> unit

  val event_to_json : event -> Json.t
  val event_of_json : Json.t -> event option

  val dump : ?limit:int -> out_channel -> unit
  (** Human-readable tail (one line per event) — the automatic dump the
      daemon emits on a failed request. *)
end
