let schema_version = 1

let rec span_json s =
  let opt name fields = if fields = [] then [] else [ (name, Json.Obj fields) ] in
  let strs kvs = List.map (fun (k, v) -> (k, Json.Str v)) kvs in
  let nums kvs = List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) kvs in
  let children = Span.children s in
  Json.Obj
    ([
       ("name", Json.Str (Span.name s));
       ("elapsed_s", Json.Num (Span.elapsed_s s));
     ]
    @ opt "attrs" (strs (Span.attrs s))
    @ opt "counters" (nums (Span.counters s))
    @ opt "rounds" (nums (Span.rounds s))
    @ [
        ("rounds_self", Json.Num (float_of_int (Span.rounds_self s)));
        ("rounds_total", Json.Num (float_of_int (Span.rounds_total s)));
      ]
    @
    if children = [] then []
    else [ ("children", Json.Arr (List.map span_json children)) ])

let to_json s =
  Json.Obj
    [
      ("tl_obs_report", Json.Num (float_of_int schema_version));
      ("span", span_json s);
    ]

let json_string s = Json.to_string (to_json s) ^ "\n"

let write_json ~file s =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (json_string s))

let pp_tree ppf root =
  let rec pp depth s =
    let indent = String.make (2 * depth) ' ' in
    let label = indent ^ Span.name s in
    Format.fprintf ppf "%-40s %9.4fs" label (Span.elapsed_s s);
    let total = Span.rounds_total s in
    if total > 0 || Span.rounds s <> [] then
      Format.fprintf ppf "  rounds %-6d" total;
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %s=%d" k v)
      (Span.counters s);
    List.iter
      (fun (k, v) -> Format.fprintf ppf "  %s=%s" k v)
      (Span.attrs s);
    Format.pp_print_newline ppf ();
    List.iter (pp (depth + 1)) (Span.children s)
  in
  pp 0 root

let flatten root =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go prefix s =
    let path =
      if prefix = "" then Span.name s else prefix ^ "/" ^ Span.name s
    in
    let path =
      match Hashtbl.find_opt seen path with
      | None ->
        Hashtbl.add seen path 1;
        path
      | Some k ->
        Hashtbl.replace seen path (k + 1);
        Printf.sprintf "%s#%d" path k
    in
    acc := (path, s) :: !acc;
    List.iter (go path) (Span.children s)
  in
  go "" root;
  List.rev !acc

(* RFC 4180: a field containing the separator, a double quote or a line
   break is wrapped in double quotes with embedded quotes doubled. Span
   names and attr values are user-supplied (problem labels, file paths,
   engine strings), so [path] and [attrs] go through this; the numeric
   columns never can need it. *)
let csv_field s =
  if
    not
      (String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s)
  then s
  else begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b ch)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end

let to_csv root =
  let b = Buffer.create 256 in
  Buffer.add_string b "path,depth,elapsed_s,rounds_self,rounds_total,attrs\n";
  List.iter
    (fun (path, s) ->
      let depth =
        String.fold_left (fun n ch -> if ch = '/' then n + 1 else n) 0 path
      in
      let attrs =
        String.concat ";"
          (List.map (fun (k, v) -> k ^ "=" ^ v) (Span.attrs s))
      in
      Printf.bprintf b "%s,%d,%.6f,%d,%d,%s\n" (csv_field path) depth
        (Span.elapsed_s s) (Span.rounds_self s) (Span.rounds_total s)
        (csv_field attrs))
    (flatten root);
  Buffer.contents b
