(** Run reports: rendering a finished {!Span} tree for humans, files and
    the regression comparator.

    {2 JSON schema (version 1)}

    {v
    { "tl_obs_report": 1,
      "span": {
        "name": "solve",
        "elapsed_s": 0.1432,
        "attrs": { "problem": "mis", "engine": "seq" },      // if any
        "counters": { "violations": 0 },                     // if any
        "rounds": { "decompose": 6 },                        // if any
        "rounds_self": 6,
        "rounds_total": 93,
        "children": [ ... ]                                  // if any
      } }
    v}

    [rounds] holds the paper-accounted LOCAL round charges bridged from
    {!Tl_local.Round_cost}; [rounds_total] folds in all descendants.
    Engine runs appear as children named ["engine:<label>"] whose
    measured rounds/steps live in [counters] (see {!Span.add_trace}).
    [bench/regress.exe] aligns spans of two reports by their
    slash-joined path of names. *)

val schema_version : int

val to_json : Span.t -> Json.t

val json_string : Span.t -> string
(** [to_json] rendered compactly, newline-terminated. *)

val write_json : file:string -> Span.t -> unit
(** Raises [Sys_error] on IO failure (callers decide whether that is
    fatal; the CLI downgrades it to a warning). *)

val pp_tree : Format.formatter -> Span.t -> unit
(** Human-readable indented tree: name, elapsed seconds, round totals,
    counters and attrs per span. *)

val to_csv : Span.t -> string
(** Flat per-span rows
    [path,depth,elapsed_s,rounds_self,rounds_total,attrs] with a header
    line; [path] is the slash-joined span names from the root and
    [attrs] the span's [k=v] attr pairs joined by [;]. The [path] and
    [attrs] fields are RFC-4180 escaped: a value containing a comma,
    double quote or line break is quoted with embedded quotes doubled,
    so spreadsheet-grade parsers reassemble the exact original text. *)

val flatten : Span.t -> (string * Span.t) list
(** Pre-order [(path, span)] rows, the alignment key space used by the
    CSV output and the regression comparator. Duplicate paths (several
    engine runs inside one phase) get a ["#k"] suffix, k counting from 1
    for the second occurrence. *)
