module Trace = Tl_engine.Trace

type t = {
  name : string;
  mutable attrs : (string * string) list; (* reverse first-set order *)
  mutable counters : (string * int) list; (* reverse first-use order *)
  mutable rounds : (string * int) list; (* reverse first-charge order *)
  start_s : float;
  mutable elapsed_s : float; (* stamped by finish; -1 while open *)
  mutable children_rev : t list;
}

(* Wall-clock, clamped so elapsed times are never negative (the repo has
   no monotonic clock without a new dependency; gettimeofday matches the
   engine's own timing). *)
let now = Unix.gettimeofday
let elapsed_since t0 = Float.max 0. (now () -. t0)

let mk ?(attrs = []) name =
  {
    name;
    attrs = List.rev attrs;
    counters = [];
    rounds = [];
    start_s = now ();
    elapsed_s = -1.;
    children_rev = [];
  }

let create ?attrs name = mk ?attrs name

(* ---------- ambient stack ---------- *)

let stack : t list ref = ref []
let active () = !stack <> []
let current () = match !stack with [] -> None | s :: _ -> Some s

let install_root t =
  if active () then invalid_arg "Span.install_root: a span is already ambient";
  stack := [ t ]

let rec stamp t =
  if t.elapsed_s < 0. then begin
    t.elapsed_s <- elapsed_since t.start_s;
    List.iter stamp t.children_rev
  end

let finish t =
  stamp t;
  (* an ambient span that gets finished leaves the stack together with
     any still-stacked descendants (the stack is a root-to-current path,
     so everything above [t] belongs to its subtree) *)
  if List.memq t !stack then begin
    let rec drop = function
      | [] -> []
      | s :: rest -> if s == t then rest else drop rest
    in
    stack := drop !stack
  end

let push t = stack := t :: !stack

let pop () =
  match !stack with
  | [] -> ()
  | t :: rest ->
    stamp t;
    stack := rest

let run ?attrs name f =
  let t = mk ?attrs name in
  push t;
  let result = Fun.protect ~finally:pop f in
  (result, t)

let with_span ?attrs name f =
  match !stack with
  | [] -> f ()
  | parent :: _ ->
    let t = mk ?attrs name in
    parent.children_rev <- t :: parent.children_rev;
    push t;
    Fun.protect ~finally:pop f

(* ---------- recording ---------- *)

(* Accumulate under [key], preserving first-use order (same discipline as
   Round_cost). *)
let bump assoc key v =
  let rec go = function
    | [] -> None
    | (k, x) :: rest when k = key -> Some ((k, x + v) :: rest)
    | entry :: rest -> Option.map (fun r -> entry :: r) (go rest)
  in
  match go assoc with Some l -> l | None -> (key, v) :: assoc

let set_attr key value =
  match current () with
  | None -> ()
  | Some t ->
    t.attrs <-
      (if List.mem_assoc key t.attrs then
         List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) t.attrs
       else (key, value) :: t.attrs)

let add_counter key v =
  match current () with
  | None -> ()
  | Some t -> t.counters <- bump t.counters key v

let add_rounds ~phase v =
  match current () with
  | None -> ()
  | Some t -> t.rounds <- bump t.rounds phase v

let add_trace tr =
  match current () with
  | None -> ()
  | Some parent ->
    let m = Trace.metrics tr in
    let child = mk ("engine:" ^ Trace.label tr) in
    child.attrs <-
      List.rev
        [
          ("mode", Trace.mode tr);
          ("scheduling", Trace.scheduling tr);
          ("compile_s", Printf.sprintf "%.6f" m.Trace.compile_s);
        ];
    child.counters <-
      List.rev
        [
          ("rounds", m.Trace.rounds);
          ("steps", m.Trace.steps);
          ("naive_steps", m.Trace.naive_steps);
          ("max_active", m.Trace.max_active);
          ("n_present", Trace.n_present tr);
        ];
    child.elapsed_s <- m.Trace.total_s;
    parent.children_rev <- child :: parent.children_rev

(* ---------- accessors ---------- *)

let name t = t.name
let elapsed_s t = if t.elapsed_s >= 0. then t.elapsed_s else elapsed_since t.start_s
let attrs t = List.rev t.attrs
let counters t = List.rev t.counters
let rounds t = List.rev t.rounds
let children t = List.rev t.children_rev
let rounds_self t = List.fold_left (fun acc (_, r) -> acc + r) 0 t.rounds

let rec rounds_total t =
  List.fold_left (fun acc c -> acc + rounds_total c) (rounds_self t) t.children_rev
