(** Hierarchical phase spans: the run-wide observability substrate.

    A span is a named, wall-clocked node in a tree that mirrors the phase
    structure of a run — compile, decompose, base algorithm, gather/star
    phases, validation. Every span carries:

    - {b elapsed wall-clock} (monotonic in the sense that negative deltas
      are clamped to zero);
    - {b attrs} — string key/value metadata (problem, family, engine mode);
    - {b counters} — accumulating named integers (iterations, violations,
      engine steps);
    - {b rounds} — per-phase LOCAL round charges, the paper's own metric,
      bridged automatically from {!Tl_local.Round_cost.charge}.

    {2 Ambient context}

    Spans form an implicit stack per process. {!run} installs a root and
    makes it current; {!with_span} opens a child of the current span for
    the duration of a callback. When {e no} span is ambient, {!with_span}
    and every recording operation ({!set_attr}, {!add_counter},
    {!add_rounds}, {!add_trace}) are no-ops with negligible cost, so
    instrumented library code pays nothing unless a collector opted in
    (the CLI's [--profile] / [--report], a test, a bench harness).

    The stack is per-process, not per-domain: only the coordinating
    domain may touch spans (the engine's [Par] stepper never records
    spans from worker domains).

    {2 The two cost-stream bridges}

    - {!Tl_local.Round_cost.charge} forwards every charge to the current
      span via {!add_rounds}: phase ledgers and span trees always agree.
    - Engine runs attach their {!Tl_engine.Trace} as a {e child} span
      named ["engine:<label>"] carrying the measured rounds/steps as
      counters and [total_s] as elapsed time (see {!add_trace});
      {!Tl_local.Runtime} does this automatically whenever a span is
      ambient. Trace rounds are {e measured executions}, not the paper's
      accounted LOCAL rounds, so they live in counters and never pollute
      {!rounds_total}. *)

type t

(** {1 Creating and scoping spans} *)

val create : ?attrs:(string * string) list -> string -> t
(** Detached unfinished root span, clock started. Not installed as
    ambient; see {!install_root} / {!run}. *)

val run : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a * t
(** [run name f] creates a root span, makes it the ambient current span,
    runs [f], finishes the span (also on raise) and returns [f]'s result
    with the finished span. *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] opens a child of the current span around [f]
    (finished even if [f] raises). Without an ambient span it just runs
    [f]. *)

val install_root : t -> unit
(** Make a {!create}d span the ambient root imperatively — for collectors
    whose scope cannot be a callback (the CLI finishes and writes the
    report from [at_exit], surviving [exit 1] on a failed validity
    check). Raises [Invalid_argument] if some span is already ambient. *)

val finish : t -> unit
(** Stamp the elapsed time and close the span, recursively closing any
    still-open children (they get the same stamp instant) and removing
    the span — with any stacked descendants — from the ambient stack if
    it is installed. Idempotent: the first finish wins the stamp. *)

val active : unit -> bool
(** Whether some span is ambient. *)

val current : unit -> t option

(** {1 Recording on the current span} — all no-ops when none is ambient. *)

val set_attr : string -> string -> unit
(** Set/overwrite an attribute. *)

val add_counter : string -> int -> unit
(** Accumulate into a named counter (created at first use, first-use
    order preserved). *)

val add_rounds : phase:string -> int -> unit
(** Accumulate LOCAL round charges under a phase name. Called by
    {!Tl_local.Round_cost.charge} on every ledger charge. *)

val add_trace : Tl_engine.Trace.t -> unit
(** Attach a finished engine run as a child span ["engine:<label>"]:
    attrs [mode], [scheduling], [compile_s]; counters [rounds], [steps],
    [naive_steps], [max_active], [n_present]; elapsed = the trace's
    [total_s]. *)

(** {1 Accessors} (for report rendering and tests) *)

val name : t -> string
val elapsed_s : t -> float
(** Elapsed seconds; for a still-open span, the time since it started. *)

val attrs : t -> (string * string) list
(** In first-set order. *)

val counters : t -> (string * int) list
val rounds : t -> (string * int) list

val rounds_self : t -> int
(** Sum of this span's own round charges. *)

val rounds_total : t -> int
(** {!rounds_self} plus all descendants'. *)

val children : t -> t list
(** In creation order. *)
