module Graph = Tl_graph.Graph

type label = int

let pp_label = Format.pp_print_int

let all_same_positive labels =
  match labels with
  | [] -> Some 1
  | c :: rest -> if c >= 1 && List.for_all (( = ) c) rest then Some c else None

let node_ok_bounded bound labels =
  match all_same_positive labels with
  | None -> List.length labels = 0
  | Some c -> c <= bound (List.length labels)

let edge_ok = function
  | [] | [ _ ] -> true
  | [ c1; c2 ] -> c1 <> c2
  | _ -> false

let problem_deg_plus_one =
  {
    Nec.name = "deg+1-coloring";
    equal_label = ( = );
    pp_label;
    node_ok = node_ok_bounded (fun deg -> deg + 1);
    edge_ok;
  }

let problem_delta_plus_one ~delta =
  {
    Nec.name = Printf.sprintf "%d+1-coloring" delta;
    equal_label = ( = );
    pp_label;
    node_ok = node_ok_bounded (fun _ -> delta + 1);
    edge_ok;
  }

let decode g labeling =
  Array.init (Graph.n_nodes g) (fun v ->
      match Labeling.labels_at_node labeling v with [] -> 1 | c :: _ -> c)

let encode g colors =
  if not (Tl_graph.Props.is_proper_coloring g colors) then
    invalid_arg "Coloring.encode: not a proper coloring";
  let labeling = Labeling.create g in
  for v = 0 to Graph.n_nodes g - 1 do
    List.iter
      (fun h -> Labeling.set labeling h colors.(v))
      (Graph.half_edges_of g v)
  done;
  labeling

let solve_edge_list g labeling ~nodes =
  List.iter
    (fun v ->
      let hs = Graph.half_edges_of g v in
      List.iter
        (fun h ->
          if Labeling.is_labeled labeling h then
            invalid_arg "Coloring.solve_edge_list: node already partially labeled")
        hs;
      let deg = Graph.degree g v in
      let forbidden = Array.make (deg + 2) false in
      List.iter
        (fun h ->
          match Labeling.get labeling (Graph.opposite_half_edge h) with
          | Some c when c <= deg + 1 -> forbidden.(c) <- true
          | Some _ | None -> ())
        hs;
      let rec first c = if forbidden.(c) then first (c + 1) else c in
      let color = first 1 in
      List.iter (fun h -> Labeling.set labeling h color) hs)
    nodes

let solve_sequential g =
  let labeling = Labeling.create g in
  solve_edge_list g labeling ~nodes:(List.init (Graph.n_nodes g) Fun.id);
  labeling
