(** Proper vertex coloring problems, node-edge-checkable form.

    A node writes its color (a positive integer) on every incident
    half-edge; the edge constraint requires the two sides of a rank-2 edge
    to differ. The node constraint enforces the palette:
    [(deg + 1)]-coloring requires color at most (semi-graph degree + 1),
    [(Δ + 1)]-coloring requires color at most a fixed bound. *)

type label = int
(** A color, at least 1. *)

val problem_deg_plus_one : label Nec.t
(** (deg + 1)-coloring: color of a node at most its degree plus one. *)

val problem_delta_plus_one : delta:int -> label Nec.t
(** (Δ + 1)-coloring for a fixed maximum degree [delta] of the base
    instance. *)

val decode : Tl_graph.Graph.t -> label Labeling.t -> int array
(** Color per node, read off any labeled half-edge ([1] for isolated
    nodes). *)

val encode : Tl_graph.Graph.t -> int array -> label Labeling.t
(** Encode a proper coloring (colors written on all half-edges). Raises
    [Invalid_argument] if not proper. *)

val solve_edge_list :
  Tl_graph.Graph.t -> label Labeling.t -> nodes:int list -> unit
(** [Π×] completion (Theorem 12): nodes processed in the given order; each
    picks the smallest color at most (degree + 1) not visible on opposite
    half-edges and writes it on all its half-edges. *)

val solve_sequential : Tl_graph.Graph.t -> label Labeling.t
(** Greedy (deg + 1)-coloring from scratch. *)
