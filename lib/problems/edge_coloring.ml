module Graph = Tl_graph.Graph

type label = Pair of int * int | D

let pp_label ppf = function
  | Pair (a, b) -> Format.fprintf ppf "(%d,%d)" a b
  | D -> Format.pp_print_string ppf "D"

let node_ok labels =
  let pairs =
    List.filter_map (function Pair (a, b) -> Some (a, b) | D -> None) labels
  in
  let p = List.length pairs in
  let degree_parts_ok = List.for_all (fun (a, _) -> a >= 1 && a <= p) pairs in
  let colors = List.map snd pairs in
  let rec distinct = function
    | [] -> true
    | b :: rest -> (not (List.mem b rest)) && distinct rest
  in
  degree_parts_ok && distinct colors

let edge_ok_base = function
  | [] -> true
  | [ D ] -> true
  | [ Pair _ ] -> false
  | [ Pair (a1, b1); Pair (a2, b2) ] -> b1 = b2 && b1 >= 1 && a1 + a2 >= b1 + 1
  | [ _; _ ] -> false
  | _ -> false

let problem =
  {
    Nec.name = "edge-degree+1-edge-coloring";
    equal_label = ( = );
    pp_label;
    node_ok;
    edge_ok = edge_ok_base;
  }

let problem_two_delta ~delta =
  {
    Nec.name = Printf.sprintf "2*%d-1-edge-coloring" delta;
    equal_label = ( = );
    pp_label;
    node_ok;
    edge_ok =
      (fun labels ->
        edge_ok_base labels
        &&
        match labels with
        | [ Pair (_, b); Pair _ ] -> b <= (2 * delta) - 1
        | _ -> true);
  }

let decode g labeling =
  Array.init (Graph.n_edges g) (fun e ->
      match Labeling.labels_at_edge labeling e with
      | Pair (_, b) :: _ -> b
      | _ -> 0)

let encode g colors =
  if not (Tl_graph.Props.is_proper_edge_coloring g colors) then
    invalid_arg "Edge_coloring.encode: not proper";
  let labeling = Labeling.create g in
  Graph.iter_edges
    (fun e (u, v) ->
      let b = colors.(e) in
      if b < 1 || b > Tl_graph.Props.edge_degree g e + 1 then
        invalid_arg "Edge_coloring.encode: color out of palette";
      let a1 = min (Graph.degree g u) b in
      let a2 = max 1 (b + 1 - a1) in
      Labeling.set labeling (Graph.half_edge g ~edge:e ~node:u) (Pair (a1, b));
      Labeling.set labeling (Graph.half_edge g ~edge:e ~node:v) (Pair (a2, b)))
    g;
  labeling

let colored_count labeling v =
  Nec.count (function Pair _ -> true | D -> false) (Labeling.labels_at_node labeling v)

let colors_at labeling v =
  List.filter_map
    (function Pair (_, b) -> Some b | D -> None)
    (Labeling.labels_at_node labeling v)

let solve_node_list g labeling ~edges =
  List.iter
    (fun e ->
      let u, v = Graph.edge_endpoints g e in
      let hu = Graph.half_edge g ~edge:e ~node:u in
      let hv = Graph.half_edge g ~edge:e ~node:v in
      if Labeling.is_labeled labeling hu || Labeling.is_labeled labeling hv then
        invalid_arg "Edge_coloring.solve_node_list: edge already labeled";
      let cu = colored_count labeling u in
      let cv = colored_count labeling v in
      let forbidden = colors_at labeling u @ colors_at labeling v in
      let rec first c = if List.mem c forbidden then first (c + 1) else c in
      let color = first 1 in
      assert (color <= cu + cv + 1);
      Labeling.set labeling hu (Pair (cu + 1, color));
      Labeling.set labeling hv (Pair (cv + 1, color)))
    edges

let solve_sequential g =
  let labeling = Labeling.create g in
  solve_node_list g labeling ~edges:(List.init (Graph.n_edges g) Fun.id);
  labeling
