(** (Edge-degree + 1)-edge coloring, exactly the encoding of Section 5.1.

    Labels are pairs [(a, b)] — [a] the {e degree part}, [b] the {e color
    part} — plus [D] for dangling rank-1 edges. Node constraint: among the
    non-[D] labels [{(a_1,b_1), ..., (a_p,b_p)}], every [a_k <= p] and all
    color parts [b_k] pairwise distinct (properness). Edge constraints:
    [E⁰ = {∅}], [E¹ = {{D}}], and
    [E² = {{(a_1,b), (a_2,b)} | a_1 + a_2 >= b + 1}] — the two sides share
    the color [b], and the degree parts certify
    [b <= a_1 + a_2 - 1 <= edge-degree + 1]. *)

type label = Pair of int * int | D

val problem : label Nec.t
(** (edge-degree + 1)-edge coloring. *)

val problem_two_delta : delta:int -> label Nec.t
(** (2Δ - 1)-edge coloring for a fixed [delta]: same constraints plus the
    explicit palette bound [b <= 2Δ - 1]. Any valid (edge-degree + 1)
    solution is also valid here, as [edge-degree + 1 <= 2Δ - 1]. *)

val decode : Tl_graph.Graph.t -> label Labeling.t -> int array
(** Color part per edge id ([0] if unlabeled or dangling). *)

val encode : Tl_graph.Graph.t -> int array -> label Labeling.t
(** Encode a proper edge coloring with [color e <= edge_degree e + 1]
    (colors are positive). Raises [Invalid_argument] otherwise. *)

val solve_node_list :
  Tl_graph.Graph.t -> label Labeling.t -> edges:int list -> unit
(** The [Π*] completion used by Theorem 15's Algorithm 4 — the labeling
    process of Lemma 16. For each edge [{v1, v2}] (rank-2, both half-edges
    unlabeled) in order: let [c_i] be the number of non-[D] labels
    currently at [v_i]; choose the smallest color [c <= c_1 + c_2 + 1]
    absent from both endpoints and write [(c_1 + 1, c)], [(c_2 + 1, c)]. *)

val solve_sequential : Tl_graph.Graph.t -> label Labeling.t
(** Greedy (edge-degree + 1)-edge coloring from scratch. *)
