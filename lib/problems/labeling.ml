module Graph = Tl_graph.Graph

type 'l t = { graph : Graph.t; labels : 'l option array }

let create graph = { graph; labels = Array.make (Graph.n_half_edges graph) None }
let graph t = t.graph
let get t h = t.labels.(h)

let set t h l =
  match t.labels.(h) with
  | Some _ -> invalid_arg (Printf.sprintf "Labeling.set: half-edge %d already labeled" h)
  | None -> t.labels.(h) <- Some l

let set_exn_free t h l = t.labels.(h) <- Some l
let is_labeled t h = Option.is_some t.labels.(h)

let labels_at_node t v =
  List.filter_map (fun h -> t.labels.(h)) (Graph.half_edges_of t.graph v)

let labels_at_edge t e =
  List.filter_map (fun h -> t.labels.(h)) [ 2 * e; (2 * e) + 1 ]

let node_fully_labeled t v =
  List.for_all (fun h -> Option.is_some t.labels.(h)) (Graph.half_edges_of t.graph v)

let complete t = Array.for_all Option.is_some t.labels

let unlabeled_count t =
  Array.fold_left (fun acc l -> if Option.is_some l then acc else acc + 1) 0 t.labels

let copy t = { graph = t.graph; labels = Array.copy t.labels }
