(** Half-edge labelings — the single source of truth for solutions.

    A labeling assigns an optional label to every half-edge of a base
    graph, indexed by the stable half-edge ids of {!Tl_graph.Graph}. The
    multi-phase transformations of the paper write into one shared
    labeling: phase boundaries are visible as the already-[Some] entries
    (the [χ(e)] / [χ(u)] context of Algorithms 2 and 4). *)

type 'l t

val create : Tl_graph.Graph.t -> 'l t
(** All half-edges unlabeled. *)

val graph : 'l t -> Tl_graph.Graph.t

val get : 'l t -> int -> 'l option
val set : 'l t -> int -> 'l -> unit
(** Raises [Invalid_argument] if the half-edge is already labeled
    (phases must never overwrite each other). *)

val set_exn_free : 'l t -> int -> 'l -> unit
(** Unchecked assignment, for tests that need to build arbitrary
    (including invalid) labelings. *)

val is_labeled : 'l t -> int -> bool

val labels_at_node : 'l t -> int -> 'l list
(** Labels currently assigned to half-edges at a node (unlabeled ones
    skipped). *)

val labels_at_edge : 'l t -> int -> 'l list
(** Labels currently assigned to the (up to two) half-edges of an edge. *)

val node_fully_labeled : 'l t -> int -> bool
val complete : 'l t -> bool
(** Every half-edge of the base graph is labeled. *)

val unlabeled_count : 'l t -> int

val copy : 'l t -> 'l t
