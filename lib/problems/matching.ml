module Graph = Tl_graph.Graph

type label = M | P | O | D

let pp_label ppf l =
  Format.pp_print_string ppf
    (match l with M -> "M" | P -> "P" | O -> "O" | D -> "D")

let node_ok labels =
  match Nec.count (( = ) M) labels with
  | 1 -> true (* exactly one M; the rest are necessarily in {P, O, D} *)
  | 0 -> List.for_all (fun l -> l = O || l = D) labels
  | _ -> false

let edge_ok = function
  | [] -> true
  | [ D ] -> true
  | [ M ] | [ P ] | [ O ] -> false
  | [ a; b ] -> (
    match (a, b) with
    | P, O | O, P | M, M | P, P -> true
    | _ -> false)
  | _ -> false

let problem =
  { Nec.name = "maximal-matching"; equal_label = ( = ); pp_label; node_ok; edge_ok }

let decode g labeling =
  Array.init (Graph.n_edges g) (fun e ->
      match Labeling.labels_at_edge labeling e with
      | [ M; M ] -> true
      | _ -> false)

let encode g in_matching =
  if not (Tl_graph.Props.is_maximal_matching g in_matching) then
    invalid_arg "Matching.encode: not a maximal matching";
  let n = Graph.n_nodes g in
  let matched = Array.make n false in
  Graph.iter_edges
    (fun e (u, v) ->
      if in_matching.(e) then begin
        matched.(u) <- true;
        matched.(v) <- true
      end)
    g;
  let labeling = Labeling.create g in
  Graph.iter_edges
    (fun e (u, v) ->
      let hu = Graph.half_edge g ~edge:e ~node:u in
      let hv = Graph.half_edge g ~edge:e ~node:v in
      if in_matching.(e) then begin
        Labeling.set labeling hu M;
        Labeling.set labeling hv M
      end
      else begin
        Labeling.set labeling hu (if matched.(u) then P else O);
        Labeling.set labeling hv (if matched.(v) then P else O)
      end)
    g;
  labeling

let has_m labeling v =
  List.exists (( = ) M) (Labeling.labels_at_node labeling v)

let solve_node_list g labeling ~edges =
  List.iter
    (fun e ->
      let u, v = Graph.edge_endpoints g e in
      let hu = Graph.half_edge g ~edge:e ~node:u in
      let hv = Graph.half_edge g ~edge:e ~node:v in
      if Labeling.is_labeled labeling hu || Labeling.is_labeled labeling hv then
        invalid_arg "Matching.solve_node_list: edge already labeled";
      match (has_m labeling u, has_m labeling v) with
      | false, false ->
        Labeling.set labeling hu M;
        Labeling.set labeling hv M
      | false, true ->
        Labeling.set labeling hu O;
        Labeling.set labeling hv P
      | true, false ->
        Labeling.set labeling hu P;
        Labeling.set labeling hv O
      | true, true ->
        Labeling.set labeling hu P;
        Labeling.set labeling hv P)
    edges

let solve_sequential g =
  let labeling = Labeling.create g in
  solve_node_list g labeling ~edges:(List.init (Graph.n_edges g) Fun.id);
  labeling
