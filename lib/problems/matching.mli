(** Maximal matching, exactly the encoding of Section 5.2 of the paper.

    Labels: [M] (matched via this edge), [P] (this node is matched, via
    some other edge), [O] (this node is unmatched), [D] (dangling rank-1
    edge). Node constraint [N^i]: either exactly one [M] and the rest in
    [{P,O,D}], or no [M] and everything in [{O,D}]. Edge constraints:
    [E⁰ = {∅}], [E¹ = {{D}}], [E² = {{P,O}, {M,M}, {P,P}}] — note
    [{O,O} ∉ E²] is what encodes maximality. *)

type label = M | P | O | D

val problem : label Nec.t

val decode : Tl_graph.Graph.t -> label Labeling.t -> bool array
(** [in_matching] per edge id: both half-edges labeled [M]. *)

val encode : Tl_graph.Graph.t -> bool array -> label Labeling.t
(** Encode a maximal matching per Section 5.2. Raises [Invalid_argument]
    if the edge set is not a maximal matching. *)

val solve_node_list :
  Tl_graph.Graph.t -> label Labeling.t -> edges:int list -> unit
(** The [Π*] completion used by Theorem 15's Algorithm 4 — the labeling
    process of Lemma 17. Processes [edges] (which must be rank-2 and have
    both half-edges unlabeled) in the given order; for edge [{v1, v2}]
    writes [M,M] if neither endpoint currently carries an [M], [P] on an
    endpoint that does and [O]/[P] accordingly otherwise. *)

val solve_sequential : Tl_graph.Graph.t -> label Labeling.t
(** Greedy maximal matching from scratch (edges in ascending id order). *)
