module Graph = Tl_graph.Graph

type label = M | P | O

let pp_label ppf = function
  | M -> Format.pp_print_string ppf "M"
  | P -> Format.pp_print_string ppf "P"
  | O -> Format.pp_print_string ppf "O"

let node_ok labels =
  let ms = Nec.count (( = ) M) labels in
  let ps = Nec.count (( = ) P) labels in
  if ms = List.length labels then true (* in MIS (vacuous for isolated nodes) *)
  else ms = 0 && ps = 1 (* out of MIS: one pointer, rest O *)

let edge_ok = function
  | [] -> true
  | [ M ] | [ O ] -> true (* a rank-1 boundary label must not be a pointer *)
  | [ P ] -> false
  | [ a; b ] -> (
    match (a, b) with
    | M, P | P, M | M, O | O, M | O, O -> true
    | M, M | P, P | P, O | O, P -> false)
  | _ -> false

let problem =
  {
    Nec.name = "mis";
    equal_label = ( = );
    pp_label;
    node_ok;
    edge_ok;
  }

let decode g labeling =
  Array.init (Graph.n_nodes g) (fun v ->
      List.for_all (( = ) M) (Labeling.labels_at_node labeling v))

let encode g in_mis =
  if not (Tl_graph.Props.is_maximal_independent_set g in_mis) then
    invalid_arg "Mis.encode: not a maximal independent set";
  let labeling = Labeling.create g in
  for v = 0 to Graph.n_nodes g - 1 do
    if in_mis.(v) then
      List.iter (fun h -> Labeling.set labeling h M) (Graph.half_edges_of g v)
    else begin
      (* point at the first MIS neighbor; O on the rest *)
      let pointed = ref false in
      Array.iteri
        (fun i e ->
          let u = (Graph.neighbors g v).(i) in
          let h = Graph.half_edge g ~edge:e ~node:v in
          if in_mis.(u) && not !pointed then begin
            pointed := true;
            Labeling.set labeling h P
          end
          else Labeling.set labeling h O)
        (Graph.incident g v)
    end
  done;
  labeling

let label_all_halfedges g labeling v l =
  List.iter (fun h -> Labeling.set labeling h l) (Graph.half_edges_of g v)

let solve_edge_list g labeling ~nodes =
  List.iter
    (fun v ->
      List.iter
        (fun h ->
          if Labeling.is_labeled labeling h then
            invalid_arg "Mis.solve_edge_list: node already partially labeled")
        (Graph.half_edges_of g v);
      let opposite_m h =
        Labeling.get labeling (Graph.opposite_half_edge h) = Some M
      in
      let hs = Graph.half_edges_of g v in
      if not (List.exists opposite_m hs) then label_all_halfedges g labeling v M
      else begin
        let pointed = ref false in
        List.iter
          (fun h ->
            if opposite_m h && not !pointed then begin
              pointed := true;
              Labeling.set labeling h P
            end
            else Labeling.set labeling h O)
          hs
      end)
    nodes

let solve_sequential g =
  let labeling = Labeling.create g in
  solve_edge_list g labeling ~nodes:(List.init (Graph.n_nodes g) Fun.id);
  labeling
