(** Maximal independent set in the node-edge-checkability formalism.

    Encoding (derived, as the paper suggests in Section 5, from the round
    elimination literature): a node in the MIS outputs [M] on all its
    half-edges; a node not in the MIS outputs exactly one [P] — a pointer
    that must land on an [M] half-edge, certifying maximality — and [O]
    everywhere else. Edge constraints: [{M,M}] is forbidden (independence),
    [{P,P}] and [{P,O}] are forbidden (pointers must hit MIS nodes), so
    [E² = {{M,P}, {M,O}, {O,O}}]. Rank-1 edges may carry [M] or [O] but
    {e not} [P]: this is what makes the edge-list variant [Π×] always
    completable (Theorem 12's hypothesis) — a boundary label never forces
    the unseen endpoint {e into} the MIS, it can only exclude it. *)

type label = M | P | O

val problem : label Nec.t

val decode : Tl_graph.Graph.t -> label Labeling.t -> bool array
(** [in_mis] per node: all half-edges labeled [M] (vacuously true for
    isolated nodes). *)

val encode : Tl_graph.Graph.t -> bool array -> label Labeling.t
(** Encode a maximal independent set as a valid labeling (1-round
    transformation of Section 5). Raises [Invalid_argument] if the set is
    not a maximal independent set. *)

val solve_edge_list :
  Tl_graph.Graph.t -> label Labeling.t -> nodes:int list -> unit
(** The [Π×] completion used by Theorem 12's Algorithm 2: processes [nodes]
    sequentially (in the given, adversarial, order); each node reads the
    labels already present on the opposite half-edges of its incident edges
    and labels {e all} of its own half-edges — [M] everywhere if no
    opposite [M] is visible, otherwise one [P] towards a visible [M] and
    [O] elsewhere. All half-edges of [nodes] must be unlabeled. *)

val solve_sequential : Tl_graph.Graph.t -> label Labeling.t
(** Greedy solution from scratch (all nodes, ascending) — a referee
    solver for tests. *)
