module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph

type 'l t = {
  name : string;
  equal_label : 'l -> 'l -> bool;
  pp_label : Format.formatter -> 'l -> unit;
  node_ok : 'l list -> bool;
  edge_ok : 'l list -> bool;
}

type violation =
  | Node_violation of int * string
  | Edge_violation of int * string
  | Missing_half_edge of int

let render_config pp_label labels =
  Format.asprintf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_label)
    labels

let validate_semi problem sg labeling =
  let g = Semi_graph.base sg in
  let violations = ref [] in
  (* half-edge completeness *)
  for h = Graph.n_half_edges g - 1 downto 0 do
    if Semi_graph.half_edge_present sg h && not (Labeling.is_labeled labeling h)
    then violations := Missing_half_edge h :: !violations
  done;
  (* node constraints *)
  List.iter
    (fun v ->
      let labels =
        List.filter_map (Labeling.get labeling) (Semi_graph.half_edges_of sg v)
      in
      if List.length labels = Semi_graph.sdeg sg v && not (problem.node_ok labels)
      then
        violations :=
          Node_violation (v, render_config problem.pp_label labels) :: !violations)
    (Semi_graph.nodes sg);
  (* edge constraints *)
  List.iter
    (fun e ->
      let u, w = Graph.edge_endpoints g e in
      let labels =
        List.filter_map
          (fun node ->
            if Semi_graph.node_present sg node then
              Labeling.get labeling (Graph.half_edge g ~edge:e ~node)
            else None)
          [ u; w ]
      in
      if List.length labels = Semi_graph.rank sg e && not (problem.edge_ok labels)
      then
        violations :=
          Edge_violation (e, render_config problem.pp_label labels) :: !violations)
    (Semi_graph.edges sg);
  List.rev !violations

let validate problem g labeling =
  validate_semi problem (Semi_graph.of_graph g) labeling

let validate_partial problem g labeling =
  let violations = ref [] in
  for v = Graph.n_nodes g - 1 downto 0 do
    let hs = Graph.half_edges_of g v in
    let labels = List.filter_map (Labeling.get labeling) hs in
    if List.length labels = List.length hs && not (problem.node_ok labels)
    then
      violations :=
        Node_violation (v, render_config problem.pp_label labels) :: !violations
  done;
  Graph.iter_edges
    (fun e _ ->
      match Labeling.labels_at_edge labeling e with
      | [ _; _ ] as labels ->
        if not (problem.edge_ok labels) then
          violations :=
            Edge_violation (e, render_config problem.pp_label labels)
            :: !violations
      | _ -> ())
    g;
  !violations

let is_valid problem g labeling = validate problem g labeling = []

let pp_violation ppf = function
  | Node_violation (v, config) ->
    Format.fprintf ppf "node %d has invalid configuration %s" v config
  | Edge_violation (e, config) ->
    Format.fprintf ppf "edge %d has invalid configuration %s" e config
  | Missing_half_edge h -> Format.fprintf ppf "half-edge %d is unlabeled" h

let multiset_equal equal xs ys =
  let rec remove_one x = function
    | [] -> None
    | y :: rest when equal x y -> Some rest
    | y :: rest -> Option.map (fun r -> y :: r) (remove_one x rest)
  in
  let rec go xs ys =
    match xs with
    | [] -> ys = []
    | x :: rest -> (
      match remove_one x ys with
      | None -> false
      | Some ys' -> go rest ys')
  in
  go xs ys

let count p labels = List.length (List.filter p labels)
