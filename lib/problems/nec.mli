(** Node-edge-checkable problems (Definition 6) as first-class values.

    A problem is given by predicates on the multisets of labels around
    nodes and edges, instead of materialized collections [N_Π] / [E_Π]
    (which are infinite for problems like (edge-degree + 1)-edge coloring).
    The node predicate receives the full multiset of labels on the node's
    incident half-edges (its cardinality is the node's degree in the
    semi-graph); the edge predicate receives the labels on the edge's
    incident half-edges (cardinality = rank).

    The list variants Π{^ *} (Definition 7) and Π{^ ×} (Definition 8) are
    represented {e operationally} by the [solve_node_list] /
    [solve_edge_list] completion procedures each concrete problem module
    provides: given a partial labeling in which, respectively, every
    {e node} (resp. {e edge}) outside the target part is either fully
    labeled or fully unlabeled, they extend the labeling over the part.
    This matches how the paper uses the list variants inside Algorithms 2
    and 4, where the input lists [h_in] are exactly "the configurations
    still compatible with the fixed context [χ]". *)

type 'l t = {
  name : string;
  equal_label : 'l -> 'l -> bool;
  pp_label : Format.formatter -> 'l -> unit;
  node_ok : 'l list -> bool;
      (** Whether a multiset is in [N_Π{^ deg}]. Receives all labels on the
          node's present half-edges. *)
  edge_ok : 'l list -> bool;
      (** Whether a multiset is in [E_Π{^ rank}]. *)
}

(** {1 Validation} *)

type violation =
  | Node_violation of int * string  (** node id, rendered configuration *)
  | Edge_violation of int * string  (** edge id, rendered configuration *)
  | Missing_half_edge of int  (** half-edge id with no label *)

val validate_semi :
  'l t -> Tl_graph.Semi_graph.t -> 'l Labeling.t -> violation list
(** Check a labeling against the problem on a semi-graph: every present
    half-edge must be labeled, every present node's configuration must be
    in [N_Π] and every present edge's (rank-sized) configuration in
    [E_Π]. Labels on absent half-edges are ignored. Returns all
    violations ([[]] means valid). *)

val validate : 'l t -> Tl_graph.Graph.t -> 'l Labeling.t -> violation list
(** {!validate_semi} on the whole graph. *)

val validate_partial : 'l t -> Tl_graph.Graph.t -> 'l Labeling.t -> violation list
(** The inductive invariant of the Theorem 12/15 correctness proofs:
    check only the {e fully labeled} nodes and edges against [N_Π] /
    [E_Π], ignoring everything still unlabeled. Phase boundaries of the
    transformations must satisfy this (every configuration completed so
    far is already correct); the transformations assert it when run with
    [~check_invariants:true]. *)

val is_valid : 'l t -> Tl_graph.Graph.t -> 'l Labeling.t -> bool

val pp_violation : Format.formatter -> violation -> unit

(** {1 Helpers for defining problems} *)

val multiset_equal : ('l -> 'l -> bool) -> 'l list -> 'l list -> bool
(** Equality of multisets under a label equality. *)

val count : ('l -> bool) -> 'l list -> int
