module Graph = Tl_graph.Graph
module Props = Tl_graph.Props

type label = In | Out

let pp_label ppf l =
  Format.pp_print_string ppf (match l with In -> "In" | Out -> "Out")

let node_ok labels =
  List.length labels < 3 || List.exists (( = ) Out) labels

let edge_ok = function
  | [] | [ In ] | [ Out ] -> true
  | [ In; Out ] | [ Out; In ] -> true
  | _ -> false

let problem =
  { Nec.name = "sinkless-orientation"; equal_label = ( = ); pp_label; node_ok; edge_ok }

let decode g labeling =
  Array.init (Graph.n_edges g) (fun e ->
      Labeling.get labeling (2 * e) = Some Out)

(* Orient edge e away from node v. *)
let orient g labeling e ~from =
  let to_ = Graph.other_endpoint g e from in
  Labeling.set labeling (Graph.half_edge g ~edge:e ~node:from) Out;
  Labeling.set labeling (Graph.half_edge g ~edge:e ~node:to_) In

(* Find a cycle in the component of [start] (assumes one exists); returns
   the cycle as a list of (node, edge-to-next) pairs. *)
let find_cycle g start =
  let n = Graph.n_nodes g in
  let parent_edge = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let state = Array.make n 0 (* 0 unseen, 1 on stack, 2 done *) in
  let exception Found of int * int * int in
  (* (ancestor, descendant, closing edge) *)
  let rec dfs v =
    state.(v) <- 1;
    let adj = Graph.neighbors g v in
    let inc = Graph.incident g v in
    Array.iteri
      (fun i u ->
        let e = inc.(i) in
        if e <> parent_edge.(v) then
          if state.(u) = 1 then raise (Found (u, v, e))
          else if state.(u) = 0 then begin
            parent.(u) <- v;
            parent_edge.(u) <- e;
            dfs u
          end)
      adj;
    state.(v) <- 2
  in
  match dfs start with
  | () -> invalid_arg "Orientation.find_cycle: acyclic component"
  | exception Found (anc, desc, closing) ->
    (* walk up from desc to anc collecting tree edges *)
    let rec walk v acc =
      if v = anc then acc
      else walk parent.(v) ((parent.(v), parent_edge.(v)) :: acc)
    in
    (* cycle: anc -> ... -> desc -> (closing) -> anc *)
    walk desc [ (desc, closing) ]

let solve_sequential g =
  let labeling = Labeling.create g in
  let n = Graph.n_nodes g in
  let members = Props.component_members g in
  Array.iter
    (fun nodes ->
      match nodes with
      | [] -> ()
      | first :: _ ->
        let low_degree =
          List.find_opt (fun v -> Graph.degree g v <= 2) nodes
        in
        let sources, oriented_cycle =
          match low_degree with
          | Some root -> ([ root ], [])
          | None ->
            (* min degree >= 3: a cycle exists; orient it cyclically *)
            let cycle = find_cycle g first in
            List.iter (fun (v, e) -> orient g labeling e ~from:v) cycle;
            (List.map fst cycle, List.map snd cycle)
        in
        ignore oriented_cycle;
        (* BFS from the sources; orient each tree edge child -> parent *)
        let seen = Array.make n false in
        let queue = Queue.create () in
        List.iter
          (fun s ->
            seen.(s) <- true;
            Queue.push s queue)
          sources;
        while not (Queue.is_empty queue) do
          let v = Queue.pop queue in
          let adj = Graph.neighbors g v in
          let inc = Graph.incident g v in
          Array.iteri
            (fun i u ->
              if not seen.(u) then begin
                seen.(u) <- true;
                orient g labeling inc.(i) ~from:u;
                Queue.push u queue
              end)
            adj
        done)
    members;
  (* any remaining (non-tree, non-cycle) edges: orient small -> large *)
  Graph.iter_edges
    (fun e (u, _) ->
      if not (Labeling.is_labeled labeling (2 * e)) then
        orient g labeling e ~from:u)
    g;
  labeling
