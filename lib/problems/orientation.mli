(** Sinkless orientation: orient every edge so that no node of degree at
    least 3 has all edges incoming. One of only two natural problems with
    known nontrivial tight bounds ([Θ(log n)] deterministic), and the
    classic example of a round-elimination fixed point — included as the
    demo problem for [Tl_roundelim]. *)

type label = In | Out
(** The label on half-edge [(v, e)]: [Out] means [e] is oriented away from
    [v]. A consistently oriented rank-2 edge carries [{In, Out}]. *)

val problem : label Nec.t

val decode : Tl_graph.Graph.t -> label Labeling.t -> bool array
(** Per edge: [true] if oriented from the smaller to the larger endpoint. *)

val solve_sequential : Tl_graph.Graph.t -> label Labeling.t
(** Centralized referee solver: orient along an Euler-style walk /
    low-degree peeling so that every degree >= 3 node gets an out-edge.
    Works on any graph in which every component with a degree >= 3 node
    contains a cycle or a leaf-path to escape into; on trees it orients
    edges toward a root, giving every non-root an out-edge (roots of
    degree >= 3 never arise rootward... see implementation notes). *)
