type shape = Nary of int | Binomial

let shape_of_env () =
  match Sys.getenv_opt "TL_PROC_FANOUT" with
  | None | Some "" | Some "binomial" -> Binomial
  | Some s -> (
    match int_of_string_opt s with
    | Some f when f >= 1 -> Nary f
    | _ ->
      invalid_arg
        (Printf.sprintf
           "TL_PROC_FANOUT=%S — expected a fanout >= 1 or \"binomial\"" s))

let shape_to_string = function
  | Binomial -> "binomial"
  | Nary f -> Printf.sprintf "nary:%d" f

let code_of_shape = function Binomial -> 0 | Nary f -> f

let shape_of_code = function
  | 0 -> Binomial
  | f when f >= 1 -> Nary f
  | c -> invalid_arg (Printf.sprintf "Collective.shape_of_code: %d" c)

let parent shape r =
  if r <= 0 then -1
  else
    match shape with
    | Nary f -> (r - 1) / f
    | Binomial -> r land (r - 1)

let children shape ~size r =
  match shape with
  | Nary f ->
    let rec go k acc =
      if k < 1 then acc
      else
        let c = (f * r) + k in
        go (k - 1) (if c < size then c :: acc else acc)
    in
    go f []
  | Binomial ->
    (* children are r + 2^k for 2^k below r's lowest set bit (every
       power of two for the root), ascending *)
    let lim = if r = 0 then size else r land -r in
    let rec go bit acc =
      if bit >= lim || r + bit >= size then List.rev acc
      else go (bit * 2) ((r + bit) :: acc)
    in
    go 1 []
