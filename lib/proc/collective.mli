(** Collective-tree geometry for the process backend's barrier/allreduce.

    Pure arithmetic over worker ranks [0 .. size), rooted at rank 0 —
    the GASNet-style fanout-parameterized tree family: the stats
    allreduce flows leaves → root along [parent] edges and the
    coordinator's decision broadcast flows root → leaves along
    [children] edges. Both shapes give every rank exactly one parent
    (except 0) and visit every rank exactly once, for any [size]. *)

type shape =
  | Nary of int  (** children of [r] are [f*r+1 .. f*r+f]; [f >= 1] *)
  | Binomial
      (** parent of [r] clears its lowest set bit; children of [r] are
          [r + 2^k] below the lowest set bit — latency-optimal
          log2-depth dissemination *)

val shape_of_env : unit -> shape
(** [TL_PROC_FANOUT]: an integer [f >= 1] selects [Nary f],
    ["binomial"] (or unset) selects [Binomial]. Anything else raises
    [Invalid_argument]. *)

val shape_to_string : shape -> string

val code_of_shape : shape -> int
(** Wire code: [0] for [Binomial], [f] for [Nary f]. *)

val shape_of_code : int -> shape

val parent : shape -> int -> int
(** [-1] for the root. *)

val children : shape -> size:int -> int -> int list
(** Ascending. *)
