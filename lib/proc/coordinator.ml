(* The coordinator side of the process backend.

   Forks one worker process per shard, ships each its Plan sub-CSR once
   via the prologue frame, then drives rounds from the stats totals the
   collective tree delivers: decision down (step / stop), local step +
   halo exchange in the workers, stats allreduce up. The decision loops
   replicate shard.ml's sb_* drivers (themselves mirrors of the Seq
   stepper) so labelings, round counts, trace records and failure
   messages are bit-identical for any (procs, shards).

   Worker lifecycle is owned here: a Fun.protect finally reaps every
   child on every exit path — orderly completion, max_rounds failure,
   worker crash, coordinator exception — so no run leaves zombies, and
   an abnormal worker exit surfaces as Proc_failure with the wait
   status. *)

module Engine = Tl_engine.Engine
module Flat = Tl_engine.Flat
module Topology = Tl_engine.Topology
module Trace = Tl_engine.Trace
module Team = Tl_engine.Team
module Plan = Tl_shard.Plan
module Span = Tl_obs.Span
module Metrics = Tl_obs.Metrics

let now = Unix.gettimeofday

let m_halo_words = lazy (Metrics.counter "proc_halo_words_total")
let m_runs = lazy (Metrics.counter "proc_runs_total")

let record tr ~round ~active ~changed ~unhalted ~t0 =
  Option.iter
    (fun t ->
      Trace.record t
        { Trace.round; active; changed; unhalted; wall_s = now () -. t0 })
    tr

(* ---------- cluster plumbing ---------- *)

type stats = { s_active : int; s_changed : int; s_unhalted : int }

type ops = {
  plan : Plan.t;
  size : int;
  stats0 : stats;
  step : round:int -> stats;
  stop : ship:bool -> bytes option array;
      (* per-rank owned-state images (ascending) when [ship] *)
}

let wait_status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exited with status %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, st -> st
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* A worker raised: [Failure] from the user's step function is re-raised
   as [Failure] (parity with the in-process backends); everything else —
   wire violations, worker bugs — becomes [Proc_failure]. *)
exception Worker_failure of string

let select_read ?(timeout = -1.) fds =
  match Unix.select fds [] [] timeout with
  | r, _, _ -> r
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> []

(* Per-wait receive timeout (the keepalive half of contact tracking): a
   hung worker — stuck step function, deadlocked exchange — surfaces as
   a clear [Proc_failure "timeout ..."] instead of blocking the
   coordinator forever. Configured by TL_PROC_TIMEOUT_MS (milliseconds,
   > 0); unset, non-numeric or non-positive values keep the legacy
   block-forever behavior. The deadline is re-derived per frame wait and
   enforced across select wakeups, so EINTR's empty ready set (which
   [select_read] returns) never counts as a timeout by itself. *)
let timeout_s () =
  match Sys.getenv_opt "TL_PROC_TIMEOUT_MS" with
  | None -> None
  | Some s -> (
    match float_of_string_opt s with
    | Some ms when ms > 0. && Float.is_finite ms -> Some (ms /. 1000.)
    | _ -> None)

(* Fault-injection worker-kill hook, owned by Tl_fault.Injector.
   Consulted at the top of every [step ~round] while armed: the listed
   ranks are SIGKILLed before the round's decision is broadcast, so the
   round can never complete and the crash surfaces through the normal
   worker-death path ([Proc_failure "... killed by signal 9 ..."]).
   Disarmed ([None], the default) a step pays one ref match. *)
let fault_kill_hook : (round:int -> int list) option ref = ref None

(* Fork the workers. Every socketpair is created before the first fork,
   so each child inherits the full set and closes what is not its own:
   the coordinator ends, the other workers' direct ends, and both ends
   of every peer pair it is not a member of. *)
let spawn_workers ~size ~direct ~pairs ~body =
  flush stdout;
  flush stderr;
  let pids = Array.make size (-1) in
  for rank = 0 to size - 1 do
    match Unix.fork () with
    | 0 ->
      (try
         Array.iteri
           (fun i (c, w) ->
             Unix.close c;
             if i <> rank then Unix.close w)
           direct;
         let chans = ref [] in
         List.iter
           (fun ((a, b), (fa, fb)) ->
             if rank = a then begin
               Unix.close fb;
               chans := (b, fa) :: !chans
             end
             else if rank = b then begin
               Unix.close fa;
               chans := (a, fb) :: !chans
             end
             else begin
               Unix.close fa;
               Unix.close fb
             end)
           pairs;
         Worker.serve ~rank
           ~coord:(snd direct.(rank))
           ~chans:(Array.of_list !chans) ~body
       with _ -> Unix._exit 125)
    | pid -> pids.(rank) <- pid
  done;
  Array.iter (fun (_, w) -> Unix.close w) direct;
  List.iter
    (fun (_, (fa, fb)) ->
      Unix.close fa;
      Unix.close fb)
    pairs;
  pids

let with_cluster ~procs ~topo ~entry ~sched ~slots ~body ~drive =
  if Team.spawns () > 0 then
    Wire.fail
      "proc backend cannot fork: this process already spawned domains \
       (OCaml 5 forbids fork after domain creation); run proc-mode work \
       before any par/shard runs";
  let shape = Collective.shape_of_env () in
  let plan, plan_hit = Plan.build_cached ~topo ~shards:(max 1 procs) in
  let shards = plan.Plan.shards in
  let size = Array.length shards in
  (* halo adjacency between shards, from the exchange route tables *)
  let mat = Array.make_matrix size size false in
  Array.iteri
    (fun a sh ->
      Array.iter (fun b -> if b <> a then mat.(a).(b) <- true) sh.Plan.xshard)
    shards;
  let ranks_where pred =
    let acc = ref [] in
    for r = size - 1 downto 0 do
      if pred r then acc := r :: !acc
    done;
    Array.of_list !acc
  in
  let out_peers = Array.init size (fun a -> ranks_where (fun b -> mat.(a).(b))) in
  let in_peers = Array.init size (fun b -> ranks_where (fun a -> mat.(a).(b))) in
  (* one socketpair per unordered worker pair that needs any channel:
     halo traffic in either direction, or a collective-tree edge *)
  let need = Array.make_matrix size size false in
  for a = 0 to size - 1 do
    for b = 0 to size - 1 do
      if mat.(a).(b) then begin
        need.(min a b).(max a b) <- true
      end
    done
  done;
  for r = 1 to size - 1 do
    let p = Collective.parent shape r in
    need.(min p r).(max p r) <- true
  done;
  let direct =
    Array.init size (fun _ -> Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0)
  in
  let pairs = ref [] in
  for a = size - 1 downto 0 do
    for b = size - 1 downto a + 1 do
      if need.(a).(b) then
        pairs :=
          ((a, b), Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0) :: !pairs
    done
  done;
  let pids = spawn_workers ~size ~direct ~pairs:!pairs ~body in
  let cfd = Array.map fst direct in
  let bufs = Array.init size (fun _ -> Transport.Buf.create 4096) in
  let reaped = Array.make size false in
  let dead = Array.make size false in
  let closed = ref false in
  let epi_halo = Array.make size 0 in
  let epi_exch = Array.make size 0 in
  let have_epi = Array.make size false in
  let t_start = now () in
  let cleanup () =
    if not !closed then begin
      closed := true;
      Array.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) cfd
    end;
    Array.iteri
      (fun rank pid ->
        if not reaped.(rank) then begin
          (try Unix.kill pid Sys.sigkill
           with Unix.Unix_error _ -> ());
          ignore (waitpid_retry pid);
          reaped.(rank) <- true
        end)
      pids
  in
  let emit_spans () =
    if Span.active () then begin
      let np = topo.Topology.n_present in
      Span.add_counter "proc:procs" size;
      Span.add_counter "proc:shape"
        (match shape with Collective.Binomial -> 0 | Collective.Nary f -> f);
      Span.add_counter "proc:cut_edges" (Plan.cut_edges_total plan);
      Span.add_counter "proc:imbalance" (Plan.imbalance_permille plan);
      Span.add_counter
        (if plan_hit then "proc:plan_hit" else "proc:plan_miss")
        1;
      Span.add_counter "proc:halo_words"
        (Array.fold_left ( + ) 0 epi_halo);
      Array.iteri
        (fun rank sh ->
          if have_epi.(rank) then
            Span.with_span (Printf.sprintf "proc:%d" rank) (fun () ->
                Span.add_counter "proc:owned" sh.Plan.n_owned;
                Span.add_counter "proc:halo"
                  (sh.Plan.n_local - sh.Plan.n_owned);
                Span.add_counter "proc:cut_edges" sh.Plan.cut_edges;
                Span.add_counter "proc:halo_words" epi_halo.(rank);
                Span.add_counter "proc:imbalance"
                  (if np = 0 then 1000
                   else sh.Plan.n_owned * size * 1000 / np);
                Span.add_counter "proc:exchange_rounds" epi_exch.(rank)))
        shards
    end
  in
  let emit_metrics () =
    if Metrics.enabled () then begin
      let halo = Array.fold_left ( + ) 0 epi_halo in
      Metrics.incr (Lazy.force m_halo_words) halo;
      Metrics.incr (Lazy.force m_runs) 1;
      Metrics.Recorder.record
        {
          Metrics.Recorder.ts = now ();
          kind = "exchange";
          key = Printf.sprintf "procs:%d" size;
          detail =
            Printf.sprintf "halo_words=%d cut_edges=%d" halo
              (Plan.cut_edges_total plan);
          outcome = "ok";
          latency_s = now () -. t_start;
        }
    end
  in
  let worker_died rank =
    let st = waitpid_retry pids.(rank) in
    reaped.(rank) <- true;
    Wire.Proc_failure
      (Printf.sprintf "tlp: worker %d (pid %d) %s before completing the run"
         rank pids.(rank) (wait_status_string st))
  in
  let secondary src msg =
    let msg =
      if String.length msg >= 5 && String.sub msg 0 5 = "tlp: " then
        String.sub msg 5 (String.length msg - 5)
      else msg
    in
    Wire.Proc_failure (Printf.sprintf "tlp: worker %d failed: %s" src msg)
  in
  let rank_of_fd fd =
    let r = ref (-1) in
    Array.iteri (fun i f -> if f == fd then r := i) cfd;
    !r
  in
  (* Once one worker dies, its exchange peers die with it (connection
     reset / EOF mid-exchange), and the secondary error frames race the
     primary one to the coordinator. Before reporting a casualty, drain
     the remaining channels briefly: if any worker shipped a real
     [Failure] (the user's exception), parity demands that it wins over
     the connection resets it caused. *)
  let postmortem first =
    let deadline = Unix.gettimeofday () +. 2.0 in
    let live () =
      Array.to_list
        (Array.of_seq
           (Seq.filter_map
              (fun r -> if dead.(r) then None else Some cfd.(r))
              (Seq.init size Fun.id)))
    in
    let finished = ref false in
    while not !finished do
      match live () with
      | [] -> finished := true
      | fds ->
        let timeout = deadline -. Unix.gettimeofday () in
        if timeout <= 0. then finished := true
        else
          List.iter
            (fun fd ->
              let rank = rank_of_fd fd in
              match Transport.recv_typed cfd.(rank) bufs.(rank) with
              | Wire.Error_frame e when e.failure ->
                raise (Worker_failure e.message)
              | Wire.Error_frame _ -> dead.(rank) <- true
              | _ -> () (* late traffic of a doomed run *)
              | exception End_of_file ->
                dead.(rank) <- true;
                ignore (worker_died rank)
              | exception Wire.Proc_failure _ -> dead.(rank) <- true)
            (select_read ~timeout fds)
    done;
    raise first
  in
  let read_frame rank =
    match Transport.recv_typed cfd.(rank) bufs.(rank) with
    | Wire.Error_frame e when e.failure -> raise (Worker_failure e.message)
    | Wire.Error_frame e ->
      dead.(rank) <- true;
      postmortem (secondary e.src e.message)
    | f -> f
    | exception End_of_file ->
      dead.(rank) <- true;
      postmortem (worker_died rank)
  in
  (* Wait for one frame satisfying [accept], watching every worker
     channel so a crash anywhere (error frame or EOF) surfaces instead
     of hanging the run. *)
  let recv_timeout = timeout_s () in
  let await ~accept ~what =
    let deadline =
      match recv_timeout with None -> None | Some t -> Some (now () +. t)
    in
    let result = ref None in
    while !result = None do
      let tmo =
        match deadline with
        | None -> -1.
        | Some d ->
          let left = d -. now () in
          if left <= 0. then
            Wire.fail
              "timeout after %.0f ms awaiting %s (TL_PROC_TIMEOUT_MS)"
              (Option.get recv_timeout *. 1000.)
              what
          else left
      in
      let ready = select_read ~timeout:tmo (Array.to_list cfd) in
      List.iter
        (fun fd ->
          if !result = None then begin
            let rank = rank_of_fd fd in
            match accept rank (read_frame rank) with
            | Some v -> result := Some v
            | None ->
              Wire.fail "unexpected frame from worker %d while awaiting %s"
                rank what
          end)
        ready
    done;
    Option.get !result
  in
  let await_stats ~round =
    await ~what:(Printf.sprintf "stats (round %d)" round)
      ~accept:(fun rank f ->
        match f with
        | Wire.Stats s when rank = 0 && s.round = round ->
          Some
            {
              s_active = s.active;
              s_changed = s.changed;
              s_unhalted = s.unhalted;
            }
        | _ -> None)
  in
  let send_decision ~action ~round =
    let img = Wire.encode (Wire.Decision { action; round }) in
    Transport.send_frame cfd.(0) img (Bytes.length img)
  in
  let step ~round =
    (match !fault_kill_hook with
    | None -> ()
    | Some kills ->
      List.iter
        (fun rank ->
          if rank >= 0 && rank < size && not reaped.(rank) then
            try Unix.kill pids.(rank) Sys.sigkill
            with Unix.Unix_error _ -> ())
        (kills ~round));
    send_decision ~action:Wire.a_step ~round;
    await_stats ~round
  in
  let stop ~ship =
    send_decision
      ~action:(if ship then Wire.a_stop_result else Wire.a_stop)
      ~round:0;
    let states = Array.make size None in
    let n_got = ref 0 in
    let deadline =
      match recv_timeout with None -> None | Some t -> Some (now () +. t)
    in
    while !n_got < size do
      let pend =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun rank ->
                  if have_epi.(rank) then None else Some cfd.(rank))
                (Seq.init size Fun.id)))
      in
      let tmo =
        match deadline with
        | None -> -1.
        | Some d ->
          let left = d -. now () in
          if left <= 0. then
            Wire.fail
              "timeout after %.0f ms awaiting epilogue (TL_PROC_TIMEOUT_MS)"
              (Option.get recv_timeout *. 1000.)
          else left
      in
      let ready = select_read ~timeout:tmo pend in
      List.iter
        (fun fd ->
          let rank = rank_of_fd fd in
          if not have_epi.(rank) then begin
            match read_frame rank with
            | Wire.Epilogue e when e.src = rank ->
              have_epi.(rank) <- true;
              incr n_got;
              epi_halo.(rank) <- e.halo_words;
              epi_exch.(rank) <- e.exchange_rounds;
              states.(rank) <- e.states
            | _ ->
              Wire.fail "unexpected frame from worker %d while awaiting \
                         epilogue" rank
          end)
        ready
    done;
    (* orderly reap: every worker exits right after its epilogue *)
    Array.iteri
      (fun rank pid ->
        if not reaped.(rank) then begin
          let st = waitpid_retry pid in
          reaped.(rank) <- true;
          match st with
          | Unix.WEXITED 0 -> ()
          | st ->
            Wire.fail "worker %d (pid %d) %s after an orderly stop" rank pid
              (wait_status_string st)
        end)
      pids;
    states
  in
  match
    Fun.protect
      ~finally:(fun () ->
        cleanup ();
        emit_spans ();
        emit_metrics ())
      (fun () ->
        (* prologues: identity, run configuration, halo-neighbor sets,
           tree shape and the shard image — once per worker *)
        Array.iteri
          (fun rank sh ->
            let img =
              Wire.encode
                (Wire.Prologue
                   {
                     rank;
                     size;
                     entry = Worker.entry_code entry;
                     sched = Worker.sched_code sched;
                     shape = Collective.code_of_shape shape;
                     slots;
                     in_peers = in_peers.(rank);
                     out_peers = out_peers.(rank);
                     shard = Plan.encode_shard sh;
                   })
            in
            Transport.send_frame cfd.(rank) img (Bytes.length img))
          shards;
        let stats0 = await_stats ~round:0 in
        drive { plan; size; stats0; step; stop })
  with
  | v -> v
  | exception Worker_failure msg -> failwith msg

(* ---------- decision loops (sb_run / sb_run_until_stable /
   sb_run_rounds, driven from stats totals) ---------- *)

let drive_halted ~tr ~max_rounds ops =
  let active = ref ops.stats0.s_active in
  let unhalted = ref ops.stats0.s_unhalted in
  let rounds = ref 0 in
  let stalled = ref false in
  let interrupted = ref false in
  while
    !unhalted > 0 && !rounds < max_rounds && (not !stalled)
    && not !interrupted
  do
    if !active = 0 then stalled := true
    else begin
      let t0 = now () in
      incr rounds;
      let s = ops.step ~round:!rounds in
      record tr ~round:!rounds ~active:!active ~changed:s.s_changed
        ~unhalted:s.s_unhalted ~t0;
      active := s.s_active;
      unhalted := s.s_unhalted;
      if not (Engine.gate_open ~round:!rounds) then interrupted := true
    end
  done;
  if (not !interrupted) && !unhalted > 0 then begin
    ignore (ops.stop ~ship:false);
    failwith (Printf.sprintf "Engine.run: max_rounds=%d exceeded" max_rounds)
  end;
  (ops.stop ~ship:true, !rounds)

let drive_stable ~tr ~max_rounds ops =
  let active = ref ops.stats0.s_active in
  let rounds = ref 0 in
  let stable = ref false in
  let interrupted = ref false in
  while (not !interrupted) && (not !stable) && !rounds < max_rounds do
    if !active = 0 then stable := true
    else begin
      let t0 = now () in
      let s = ops.step ~round:(!rounds + 1) in
      record tr ~round:(!rounds + 1) ~active:!active ~changed:s.s_changed
        ~unhalted:(-1) ~t0;
      if s.s_changed > 0 then begin
        incr rounds;
        if not (Engine.gate_open ~round:!rounds) then interrupted := true
      end
      else stable := true;
      active := s.s_active
    end
  done;
  if (not !interrupted) && not !stable then begin
    ignore (ops.stop ~ship:false);
    failwith
      (Printf.sprintf "Engine.run_until_stable: max_rounds=%d exceeded"
         max_rounds)
  end;
  (ops.stop ~ship:true, !rounds)

let drive_fixed ~tr ~total ops =
  let active = ref ops.stats0.s_active in
  let executed = ref 0 in
  let r = ref 1 in
  let interrupted = ref false in
  while (not !interrupted) && !r <= total do
    if !active > 0 then begin
      let t0 = now () in
      let s = ops.step ~round:!r in
      record tr ~round:!r ~active:!active ~changed:s.s_changed ~unhalted:(-1)
        ~t0;
      active := s.s_active;
      executed := !r;
      if not (Engine.gate_open ~round:!r) then interrupted := true
    end;
    incr r
  done;
  (ops.stop ~ship:true, if !interrupted then !executed else total)

(* ---------- boxed entry points (the Engine.Proc hook) ---------- *)

let apply_boxed_states (type a) (states : a array) sh b =
  let n_owned = sh.Plan.n_owned and l2g = sh.Plan.l2g in
  let blen = Bytes.length b in
  let pos = ref 0 in
  for l = 0 to n_owned - 1 do
    if !pos >= blen then Wire.fail "truncated epilogue states";
    match Bytes.get b !pos with
    | '\000' ->
      if !pos + 9 > blen then Wire.fail "truncated epilogue states";
      states.(l2g.(l)) <- (Obj.magic (Wire.get_i64 b (!pos + 1)) : a);
      pos := !pos + 9
    | '\001' ->
      if !pos + 5 > blen then Wire.fail "truncated epilogue states";
      let ml = Wire.get_u32 b (!pos + 1) in
      if !pos + 5 + ml > blen then Wire.fail "truncated epilogue states";
      states.(l2g.(l)) <- Marshal.from_bytes (Bytes.sub b (!pos + 5) ml) 0;
      pos := !pos + 5 + ml
    | c -> Wire.fail "bad epilogue state tag %d" (Char.code c)
  done;
  if !pos <> blen then Wire.fail "trailing epilogue state bytes"

let assemble_boxed (type a) ~topo ~(init : int -> a) ~plan images :
    a array =
  let states = Array.init topo.Topology.n_base init in
  Array.iteri
    (fun rank img ->
      match img with
      | None -> Wire.fail "worker %d shipped no states" rank
      | Some b -> apply_boxed_states states plan.Plan.shards.(rank) b)
    images;
  states

let pb_run :
    type a.
    procs:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    halted:(a -> bool) ->
    max_rounds:int ->
    a Engine.outcome =
 fun ~procs ~sched ~equal ~trace:tr ~topo ~init ~step ~halted ~max_rounds ->
  with_cluster ~procs ~topo ~entry:Worker.Run ~sched ~slots:0
    ~body:(fun env ->
      Worker.run_boxed env ~init ~step ~equal ~halted:(Some halted))
    ~drive:(fun ops ->
      let images, rounds = drive_halted ~tr ~max_rounds ops in
      let states = assemble_boxed ~topo ~init ~plan:ops.plan images in
      { Engine.states; rounds })

let pb_run_until_stable :
    type a.
    procs:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    max_rounds:int ->
    a Engine.outcome =
 fun ~procs ~sched ~equal ~trace:tr ~topo ~init ~step ~max_rounds ->
  with_cluster ~procs ~topo ~entry:Worker.Stable ~sched ~slots:0
    ~body:(fun env -> Worker.run_boxed env ~init ~step ~equal ~halted:None)
    ~drive:(fun ops ->
      let images, rounds = drive_stable ~tr ~max_rounds ops in
      let states = assemble_boxed ~topo ~init ~plan:ops.plan images in
      { Engine.states; rounds })

let pb_run_rounds :
    type a.
    procs:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    rounds:int ->
    a Engine.outcome =
 fun ~procs ~sched ~equal ~trace:tr ~topo ~init ~step ~rounds:total ->
  with_cluster ~procs ~topo ~entry:Worker.Rounds ~sched ~slots:0
    ~body:(fun env -> Worker.run_boxed env ~init ~step ~equal ~halted:None)
    ~drive:(fun ops ->
      let images, rounds = drive_fixed ~tr ~total ops in
      let states = assemble_boxed ~topo ~init ~plan:ops.plan images in
      { Engine.states; rounds })

let () =
  Engine.proc_backend := Some { Engine.pb_run; pb_run_until_stable; pb_run_rounds }

let register () = ()

(* ---------- flat entry points (the B12 fast path) ---------- *)

let apply_flat_states slab ~slots sh b =
  let n_owned = sh.Plan.n_owned and l2g = sh.Plan.l2g in
  if Bytes.length b <> n_owned * slots * 8 then
    Wire.fail "flat epilogue states: %d bytes for %d words" (Bytes.length b)
      (n_owned * slots);
  for l = 0 to n_owned - 1 do
    let gbase = l2g.(l) * slots in
    for k = 0 to slots - 1 do
      slab.(gbase + k) <- Wire.get_i64 b (((l * slots) + k) * 8)
    done
  done

let assemble_flat ~topo ~(kernel : Flat.kernel) ~plan images =
  let slots = kernel.Flat.slots in
  let init = kernel.Flat.init in
  let n = topo.Topology.n_base in
  let slab =
    Array.init (n * slots) (fun i ->
        init ~node:(i / slots) ~slot:(i mod slots))
  in
  Array.iteri
    (fun rank img ->
      match img with
      | None -> Wire.fail "worker %d shipped no states" rank
      | Some b -> apply_flat_states slab ~slots plan.Plan.shards.(rank) b)
    images;
  fun rounds -> { Flat.slab; slots; rounds }

let flat_global ~topo ~kernel_for =
  kernel_for ~l2g:(Array.init topo.Topology.n_base Fun.id)

let run_flat ?procs ?(sched = Engine.Active_set) ~topo ~kernel_for
    ~max_rounds () =
  let procs =
    match procs with Some p -> p | None -> max 1 !Engine.default_procs
  in
  let kernel = flat_global ~topo ~kernel_for in
  if kernel.Flat.halted = None then
    invalid_arg
      (Printf.sprintf "Proc.run_flat: kernel %s has no halted predicate"
         kernel.Flat.name);
  with_cluster ~procs ~topo ~entry:Worker.Run ~sched ~slots:kernel.Flat.slots
    ~body:(fun env -> Worker.run_flat env ~kernel_for)
    ~drive:(fun ops ->
      let images, rounds = drive_halted ~tr:None ~max_rounds ops in
      assemble_flat ~topo ~kernel ~plan:ops.plan images rounds)

let run_flat_until_stable ?procs ?(sched = Engine.Active_set) ~topo
    ~kernel_for ~max_rounds () =
  let procs =
    match procs with Some p -> p | None -> max 1 !Engine.default_procs
  in
  let kernel : Flat.kernel = flat_global ~topo ~kernel_for in
  with_cluster ~procs ~topo ~entry:Worker.Stable ~sched
    ~slots:kernel.Flat.slots
    ~body:(fun env -> Worker.run_flat env ~kernel_for)
    ~drive:(fun ops ->
      let images, rounds = drive_stable ~tr:None ~max_rounds ops in
      assemble_flat ~topo ~kernel ~plan:ops.plan images rounds)

(* Shard-local builders for the stock flat kernels: the worker calls
   [kernel_for ~l2g:shard.l2g] so node-indexed inputs are remapped into
   local space (ghosts included); the coordinator's identity-l2g call
   recovers the global kernel for slab initialization. *)
module Kernels = struct
  let flood ?(source = 0) () ~l2g =
    let k = Flat.Kernels.flood ~source () in
    {
      k with
      Flat.init = (fun ~node ~slot:_ -> if l2g.(node) = source then 1 else 0);
    }

  let mis_local_max ~ids ~l2g =
    Flat.Kernels.mis_local_max ~ids:(Array.map (fun g -> ids.(g)) l2g)
end

(* ---------- direct boxed API (mirrors Shard.run / Par.run) ---------- *)

let proc_count = function
  | Some p -> p
  | None -> max 1 !Engine.default_procs

let run ?procs ?sched ?equal ?trace ?label ~topo ~init ~step ~halted
    ~max_rounds () =
  Engine.run ~mode:(Engine.Proc (proc_count procs)) ?sched ?equal ?trace
    ?label ~topo ~init ~step ~halted ~max_rounds ()

let run_until_stable ?procs ?sched ?trace ?label ~topo ~init ~step ~equal
    ~max_rounds () =
  Engine.run_until_stable ~mode:(Engine.Proc (proc_count procs)) ?sched
    ?trace ?label ~topo ~init ~step ~equal ~max_rounds ()

let run_rounds ?procs ?sched ?equal ?trace ?label ~topo ~init ~step ~rounds
    () =
  Engine.run_rounds ~mode:(Engine.Proc (proc_count procs)) ?sched ?equal
    ?trace ?label ~topo ~init ~step ~rounds ()
