(* EINTR/partial-I/O-safe transport. See transport.mli. *)

let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> (* no SIGPIPE on this platform *) ())

let wait_readable fd = ignore (Unix.select [ fd ] [] [] (-1.))
let wait_writable fd = ignore (Unix.select [] [ fd ] [] (-1.))

let rec write_all fd b pos len =
  if len > 0 then begin
    Lazy.force ignore_sigpipe;
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (try wait_writable fd
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      write_all fd b pos len
  end

let write_string fd s = write_all fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec read_some fd b pos len =
  match Unix.read fd b pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_some fd b pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (try wait_readable fd
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    read_some fd b pos len

let rec read_exact fd b pos len =
  if len > 0 then begin
    let n = read_some fd b pos len in
    if n = 0 then raise End_of_file;
    read_exact fd b (pos + n) (len - n)
  end

module Buf = struct
  type t = { mutable b : Bytes.t; mutable len : int }

  let create cap = { b = Bytes.create (max 16 cap); len = 0 }

  let ensure t cap =
    if cap > Bytes.length t.b then begin
      let c = ref (max 16 (2 * Bytes.length t.b)) in
      while !c < cap do
        c := !c * 2
      done;
      let nb = Bytes.create !c in
      Bytes.blit t.b 0 nb 0 t.len;
      t.b <- nb
    end
end

let send_frame fd image total = write_all fd image 0 total

let recv_frame fd (buf : Buf.t) =
  Buf.ensure buf 4;
  (* a clean EOF before any header byte is a frame-boundary close *)
  let n0 = read_some fd buf.b 0 4 in
  if n0 = 0 then raise End_of_file;
  (try read_exact fd buf.b n0 (4 - n0)
   with End_of_file -> Wire.fail "peer closed mid-frame header");
  let len = Wire.get_u32 buf.b 0 in
  if len > Wire.max_frame_bytes then Wire.fail "oversized frame (%d bytes)" len;
  Buf.ensure buf len;
  (try read_exact fd buf.b 0 len
   with End_of_file -> Wire.fail "peer closed mid-frame (%d byte body)" len);
  buf.len <- len;
  len

let recv_typed fd buf =
  let len = recv_frame fd buf in
  Wire.decode_payload buf.b ~pos:0 ~len

(* ---------- the halo exchange pump ---------- *)

type xfer_out = {
  ofd : Unix.file_descr;
  obuf : Bytes.t;
  olen : int;
  mutable opos : int;
}

type xfer_in = {
  ifd : Unix.file_descr;
  ibuf : Buf.t;
  ihdr : Bytes.t;  (* 4-byte length prefix accumulator *)
  mutable hgot : int;
  mutable plen : int;  (* payload length, -1 until the prefix is whole *)
  mutable ppos : int;
}

let make_out ofd obuf olen = { ofd; obuf; olen; opos = 0 }

let make_in ifd ibuf =
  { ifd; ibuf; ihdr = Bytes.create 4; hgot = 0; plen = -1; ppos = 0 }

let in_payload_len xi = xi.plen
let in_done xi = xi.plen >= 0 && xi.ppos >= xi.plen

let pump_read xi =
  if xi.plen < 0 then begin
    match Unix.read xi.ifd xi.ihdr xi.hgot (4 - xi.hgot) with
    | 0 ->
      if xi.hgot = 0 then Wire.fail "peer closed before exchange frame"
      else Wire.fail "peer closed mid-frame header"
    | n ->
      xi.hgot <- xi.hgot + n;
      if xi.hgot = 4 then begin
        let len = Wire.get_u32 xi.ihdr 0 in
        if len > Wire.max_frame_bytes then
          Wire.fail "oversized frame (%d bytes)" len;
        Buf.ensure xi.ibuf len;
        xi.plen <- len;
        xi.ibuf.len <- len
      end
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  end
  else
    match Unix.read xi.ifd xi.ibuf.b xi.ppos (xi.plen - xi.ppos) with
    | 0 -> Wire.fail "peer closed mid-frame (%d byte body)" xi.plen
    | n -> xi.ppos <- xi.ppos + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let pump_write xo =
  match Unix.write xo.ofd xo.obuf xo.opos (xo.olen - xo.opos) with
  | n -> xo.opos <- xo.opos + n
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let exchange ~outs ~ins =
  Lazy.force ignore_sigpipe;
  (* an empty-body frame still has a 4-byte prefix + 19-byte header, so
     "done" for an input means the whole frame arrived *)
  let remaining () =
    Array.exists (fun xo -> xo.opos < xo.olen) outs
    || Array.exists (fun xi -> not (in_done xi)) ins
  in
  while remaining () do
    let rd =
      Array.fold_left
        (fun acc xi -> if in_done xi then acc else xi.ifd :: acc)
        [] ins
    and wr =
      Array.fold_left
        (fun acc xo -> if xo.opos >= xo.olen then acc else xo.ofd :: acc)
        [] outs
    in
    match Unix.select rd wr [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      Array.iter
        (fun xo ->
          if xo.opos < xo.olen && List.memq xo.ofd writable then
            try pump_write xo
            with Unix.Unix_error (Unix.EINTR, _, _) -> ())
        outs;
      Array.iter
        (fun xi ->
          if (not (in_done xi)) && List.memq xi.ifd readable then
            try pump_read xi
            with Unix.Unix_error (Unix.EINTR, _, _) -> ())
        ins
  done
