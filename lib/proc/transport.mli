(** EINTR- and partial-I/O-safe socket transport.

    Every loop here restarts on [EINTR], finishes partial reads/writes,
    and — when a descriptor is in non-blocking mode — parks in
    [Unix.select] on [EAGAIN]/[EWOULDBLOCK] instead of spinning. The
    serving layer reuses {!read_some}/{!write_all} for its daemon and
    client sockets; the process backend adds framed send/receive and the
    bidirectional {!exchange} pump on top.

    [SIGPIPE] is set to ignore (once, lazily) before any write: a dying
    peer must surface as [EPIPE] — an exception the callers handle — and
    not kill the process. *)

val write_all : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [write_all fd b pos len] writes exactly [len] bytes. *)

val write_string : Unix.file_descr -> string -> unit

val read_exact : Unix.file_descr -> Bytes.t -> int -> int -> unit
(** [read_exact fd b pos len] reads exactly [len] bytes; raises
    [End_of_file] on a clean close before [len] bytes arrived. *)

val read_some : Unix.file_descr -> Bytes.t -> int -> int -> int
(** One [Unix.read], restarted on [EINTR] (and parked on [EAGAIN] for
    non-blocking descriptors): returns [0] only on end of stream —
    drop-in for the serving layer's request reader. *)

(** A reusable growable byte buffer. [b] holds [len] valid bytes;
    {!ensure} grows geometrically so steady-state rounds never
    reallocate. *)
module Buf : sig
  type t = { mutable b : Bytes.t; mutable len : int }

  val create : int -> t
  val ensure : t -> int -> unit
  (** [ensure t cap] makes room for at least [cap] total bytes. *)
end

val send_frame : Unix.file_descr -> Bytes.t -> int -> unit
(** [send_frame fd image total] writes a finished frame image
    ([Wire.end_frame] already applied). *)

val recv_frame : Unix.file_descr -> Buf.t -> int
(** Read one frame into [buf.b] ([0 .. ret)) and return the payload
    length. Validates the length prefix against
    {!Wire.max_frame_bytes}. Raises [End_of_file] on a clean close at a
    frame boundary, {!Wire.Proc_failure} on a close mid-frame. *)

val recv_typed : Unix.file_descr -> Buf.t -> Wire.frame
(** {!recv_frame} + {!Wire.decode_payload}. *)

(** {2 The halo exchange pump}

    All sends and receives of one exchange phase progress together
    under a single [select] loop, with single-shot reads/writes on
    non-blocking descriptors: simultaneous large halos in both
    directions of one socketpair cannot deadlock on kernel buffer
    limits, which a write-then-read schedule would. *)

type xfer_out
type xfer_in

val make_out : Unix.file_descr -> Bytes.t -> int -> xfer_out
(** A frame image of [total] bytes to push to a peer. *)

val make_in : Unix.file_descr -> Buf.t -> xfer_in
(** A slot for exactly one incoming frame from a peer. *)

val in_payload_len : xfer_in -> int
(** Payload length of the received frame (after {!exchange}). *)

val exchange : outs:xfer_out array -> ins:xfer_in array -> unit
(** Drive every transfer to completion. Raises {!Wire.Proc_failure} if
    a peer closes mid-exchange. *)
