(* The tlp binary wire format. See wire.mli for the grammar. *)

exception Proc_failure of string

let fail fmt = Printf.ksprintf (fun s -> raise (Proc_failure ("tlp: " ^ s))) fmt
let version = 1

(* 1 GiB: far above any legal frame (the prologue of a 1e6-node shard is
   ~16 MB), small enough that a corrupted length prefix fails loudly
   instead of triggering a giant allocation. *)
let max_frame_bytes = 1 lsl 30
let k_prologue = 1
let k_halo = 2
let k_stats = 3
let k_decision = 4
let k_epilogue = 5
let k_error = 6

(* ---------- zero-allocation scalar codec ----------

   Manual byte stores: Bytes.set_int64_le takes a boxed Int64, which
   without flambda allocates on every call — exactly what the halo path
   must not do. unsafe accessors are safe here because every caller
   sizes its buffer before packing (see Transport.Buf.ensure). *)

let put_i64 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set b (pos + 4) (Char.unsafe_chr ((v lsr 32) land 0xff));
  Bytes.unsafe_set b (pos + 5) (Char.unsafe_chr ((v lsr 40) land 0xff));
  Bytes.unsafe_set b (pos + 6) (Char.unsafe_chr ((v lsr 48) land 0xff));
  Bytes.unsafe_set b (pos + 7) (Char.unsafe_chr ((v asr 56) land 0xff))

(* no local [c i] closure in the getters: without flambda a closure is
   a minor-heap allocation per call, and these run once per state word
   on the halo path (the budget test in test_proc.ml counts words) *)
let get_i64 b pos =
  let low =
    Char.code (Bytes.unsafe_get b pos)
    lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)
    lor (Char.code (Bytes.unsafe_get b (pos + 4)) lsl 32)
    lor (Char.code (Bytes.unsafe_get b (pos + 5)) lsl 40)
    lor (Char.code (Bytes.unsafe_get b (pos + 6)) lsl 48)
  in
  (* sign-extend the top byte: OCaml ints are 63-bit, so byte 7 carries
     bits 56.. plus the sign and round-trips exactly *)
  low lor (((Char.code (Bytes.unsafe_get b (pos + 7)) lxor 0x80) - 0x80) lsl 56)

let put_u32 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set b (pos + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set b (pos + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let get_u32 b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get b (pos + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get b (pos + 3)) lsl 24)

let put_u16 b pos v =
  Bytes.unsafe_set b pos (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set b (pos + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))

let get_u16 b pos =
  Char.code (Bytes.unsafe_get b pos)
  lor (Char.code (Bytes.unsafe_get b (pos + 1)) lsl 8)

(* ---------- hot-path frame assembly ---------- *)

let frame_overhead = 9

let begin_frame b kind =
  Bytes.unsafe_set b 4 'T';
  Bytes.unsafe_set b 5 'L';
  Bytes.unsafe_set b 6 'P';
  Bytes.unsafe_set b 7 (Char.unsafe_chr version);
  Bytes.unsafe_set b 8 (Char.unsafe_chr kind);
  frame_overhead

let end_frame b pos =
  put_u32 b 0 (pos - 4);
  pos

let check_payload b ~pos ~len =
  if len < 5 then fail "short payload (%d bytes)" len;
  if Bytes.get b pos <> 'T' || Bytes.get b (pos + 1) <> 'L'
     || Bytes.get b (pos + 2) <> 'P'
  then fail "bad magic";
  let ver = Char.code (Bytes.get b (pos + 3)) in
  if ver <> version then fail "version mismatch (got %d, expected %d)" ver version;
  Char.code (Bytes.get b (pos + 4))

(* ---------- typed frames ---------- *)

type frame =
  | Prologue of {
      rank : int;
      size : int;
      entry : int;
      sched : int;
      shape : int;
      slots : int;
      in_peers : int array;
      out_peers : int array;
      shard : bytes;
    }
  | Halo of { round : int; src : int; n : int; payload : bytes }
  | Stats of {
      round : int;
      src : int;
      active : int;
      changed : int;
      unhalted : int;
      halo_words : int;
    }
  | Decision of { action : int; round : int }
  | Epilogue of {
      src : int;
      halo_words : int;
      exchange_rounds : int;
      states : bytes option;
    }
  | Error_frame of { src : int; failure : bool; message : string }

let a_step = 1
let a_stop_result = 2
let a_stop = 3

(* Control frames are built through a Buffer — none of them is on the
   per-round halo path (stats/decision frames are 9-38 bytes and only
   O(procs) of them flow per round; the tiny buffer churn is noise). *)

let buf_i64 buf v =
  let b = Bytes.create 8 in
  put_i64 b 0 v;
  Buffer.add_bytes buf b

let buf_u32 buf v =
  let b = Bytes.create 4 in
  put_u32 b 0 v;
  Buffer.add_bytes buf b

let buf_u16 buf v =
  let b = Bytes.create 2 in
  put_u16 b 0 v;
  Buffer.add_bytes buf b

let encode fr =
  let body = Buffer.create 64 in
  let kind =
    match fr with
    | Prologue p ->
      buf_u16 body p.rank;
      buf_u16 body p.size;
      Buffer.add_char body (Char.chr p.entry);
      Buffer.add_char body (Char.chr p.sched);
      buf_u16 body p.shape;
      buf_u16 body p.slots;
      buf_u16 body (Array.length p.in_peers);
      Array.iter (buf_u16 body) p.in_peers;
      buf_u16 body (Array.length p.out_peers);
      Array.iter (buf_u16 body) p.out_peers;
      buf_u32 body (Bytes.length p.shard);
      Buffer.add_bytes body p.shard;
      k_prologue
    | Halo h ->
      buf_u32 body h.round;
      buf_u16 body h.src;
      buf_u32 body h.n;
      Buffer.add_bytes body h.payload;
      k_halo
    | Stats s ->
      buf_u32 body s.round;
      buf_u16 body s.src;
      buf_i64 body s.active;
      buf_i64 body s.changed;
      buf_i64 body s.unhalted;
      buf_i64 body s.halo_words;
      k_stats
    | Decision d ->
      Buffer.add_char body (Char.chr d.action);
      buf_u32 body d.round;
      k_decision
    | Epilogue e ->
      buf_u16 body e.src;
      buf_i64 body e.halo_words;
      buf_i64 body e.exchange_rounds;
      (match e.states with
      | None -> Buffer.add_char body '\000'
      | Some st ->
        Buffer.add_char body '\001';
        buf_u32 body (Bytes.length st);
        Buffer.add_bytes body st);
      k_epilogue
    | Error_frame e ->
      buf_u16 body e.src;
      Buffer.add_char body (if e.failure then '\001' else '\000');
      buf_u32 body (String.length e.message);
      Buffer.add_string body e.message;
      k_error
  in
  let blen = Buffer.length body in
  let total = frame_overhead + blen in
  let b = Bytes.create total in
  let pos = begin_frame b kind in
  Buffer.blit body 0 b pos blen;
  ignore (end_frame b total);
  b

(* A bounds-checked reader over one payload. *)
type rd = { rb : Bytes.t; mutable rpos : int; rend : int }

let need r n =
  if r.rpos + n > r.rend then
    fail "truncated frame body (at %d, want %d, have %d)" r.rpos n
      (r.rend - r.rpos)

let r_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.rb r.rpos) in
  r.rpos <- r.rpos + 1;
  v

let r_u16 r =
  need r 2;
  let v = get_u16 r.rb r.rpos in
  r.rpos <- r.rpos + 2;
  v

let r_u32 r =
  need r 4;
  let v = get_u32 r.rb r.rpos in
  r.rpos <- r.rpos + 4;
  v

let r_i64 r =
  need r 8;
  let v = get_i64 r.rb r.rpos in
  r.rpos <- r.rpos + 8;
  v

let r_bytes r n =
  need r n;
  let b = Bytes.sub r.rb r.rpos n in
  r.rpos <- r.rpos + n;
  b

let r_done r =
  if r.rpos <> r.rend then fail "trailing frame bytes (%d)" (r.rend - r.rpos)

let decode_payload b ~pos ~len =
  let kind = check_payload b ~pos ~len in
  let r = { rb = b; rpos = pos + 5; rend = pos + len } in
  let fr =
    if kind = k_prologue then begin
      let rank = r_u16 r in
      let size = r_u16 r in
      let entry = r_u8 r in
      let sched = r_u8 r in
      let shape = r_u16 r in
      let slots = r_u16 r in
      let n_in = r_u16 r in
      let in_peers = Array.init n_in (fun _ -> r_u16 r) in
      let n_out = r_u16 r in
      let out_peers = Array.init n_out (fun _ -> r_u16 r) in
      let shard = r_bytes r (r_u32 r) in
      Prologue { rank; size; entry; sched; shape; slots; in_peers; out_peers; shard }
    end
    else if kind = k_halo then begin
      let round = r_u32 r in
      let src = r_u16 r in
      let n = r_u32 r in
      let payload = r_bytes r (r.rend - r.rpos) in
      Halo { round; src; n; payload }
    end
    else if kind = k_stats then begin
      let round = r_u32 r in
      let src = r_u16 r in
      let active = r_i64 r in
      let changed = r_i64 r in
      let unhalted = r_i64 r in
      let halo_words = r_i64 r in
      Stats { round; src; active; changed; unhalted; halo_words }
    end
    else if kind = k_decision then begin
      let action = r_u8 r in
      let round = r_u32 r in
      if action < a_step || action > a_stop then
        fail "unknown decision action %d" action;
      Decision { action; round }
    end
    else if kind = k_epilogue then begin
      let src = r_u16 r in
      let halo_words = r_i64 r in
      let exchange_rounds = r_i64 r in
      let states =
        match r_u8 r with
        | 0 -> None
        | 1 -> Some (r_bytes r (r_u32 r))
        | k -> fail "bad epilogue states flag %d" k
      in
      Epilogue { src; halo_words; exchange_rounds; states }
    end
    else if kind = k_error then begin
      let src = r_u16 r in
      let failure = r_u8 r <> 0 in
      let message = Bytes.to_string (r_bytes r (r_u32 r)) in
      Error_frame { src; failure; message }
    end
    else fail "unknown frame kind %d" kind
  in
  r_done r;
  fr

let decode b =
  let total = Bytes.length b in
  if total < 4 then fail "short frame (%d bytes)" total;
  let len = get_u32 b 0 in
  if len > max_frame_bytes then fail "oversized frame (%d bytes)" len;
  if total <> 4 + len then
    fail "length prefix %d disagrees with image size %d" len total;
  decode_payload b ~pos:4 ~len

module Reassembler = struct
  type t = { mutable buf : Bytes.t; mutable len : int }

  let create () = { buf = Bytes.create 256; len = 0 }
  let pending t = t.len

  let ensure t extra =
    let want = t.len + extra in
    if want > Bytes.length t.buf then begin
      let cap = ref (max 256 (2 * Bytes.length t.buf)) in
      while !cap < want do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit t.buf 0 nb 0 t.len;
      t.buf <- nb
    end

  let feed t chunk ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length chunk then
      invalid_arg "Wire.Reassembler.feed: bad slice";
    ensure t len;
    Bytes.blit chunk pos t.buf t.len len;
    t.len <- t.len + len;
    let out = ref [] in
    let consumed = ref 0 in
    let continue = ref true in
    while !continue do
      let avail = t.len - !consumed in
      if avail < 4 then continue := false
      else begin
        let flen = get_u32 t.buf !consumed in
        if flen > max_frame_bytes then fail "oversized frame (%d bytes)" flen;
        (* a visible header is validated even before the body arrives,
           so bad magic / bad version fail at first contact *)
        if avail >= 9 then
          ignore (check_payload t.buf ~pos:(!consumed + 4) ~len:(min flen (avail - 4)));
        if avail < 4 + flen then continue := false
        else begin
          out := decode_payload t.buf ~pos:(!consumed + 4) ~len:flen :: !out;
          consumed := !consumed + 4 + flen
        end
      end
    done;
    if !consumed > 0 then begin
      Bytes.blit t.buf !consumed t.buf 0 (t.len - !consumed);
      t.len <- t.len - !consumed
    end;
    List.rev !out
end
