(** The [tlp] binary wire format of the process backend.

    Every message on a coordinator↔worker or worker↔worker channel is a
    {e frame}:

    {v
      frame    := len:u32le payload
      payload  := magic:"TLP" version:u8(=1) kind:u8 body
    v}

    [len] counts the payload bytes (magic included), so a reader can
    always consume exactly one frame without understanding its kind.
    Frame kinds and body grammars ([u16]/[u32] little-endian, [i64] a
    sign-extended 8-byte little-endian OCaml int):

    - {b prologue} (coordinator → worker, once): [rank:u16 size:u16
      entry:u8 sched:u8 shape:u16 slots:u16 n_in:u16 in_peer:u16...
      n_out:u16 out_peer:u16... shard_len:u32 shard_bytes] — the
      worker's identity, run configuration, halo-neighbor sets, the
      collective-tree shape code, and its {!Tl_shard.Plan.shard} image
      ({!Tl_shard.Plan.encode_shard}).
    - {b halo} (worker → worker, once per round per out-neighbor):
      [round:u32 src:u16 n:u32 entry...] where each of the [n] entries
      is [slot:u32 word...] — the target's ghost slot and the node's
      new state as [slots] {e state words}. A state word is [tag:u8]
      followed by [i64] (tag 0, an immediate OCaml value — the
      zero-allocation path) or [mlen:u32 marshal_bytes] (tag 1, a boxed
      state shipped via [Marshal]).
    - {b stats} (allreduce up the collective tree): [round:u32 src:u16
      active:i64 changed:i64 unhalted:i64 halo_words:i64] — summed
      component-wise at each tree node; the root's totals drive the
      coordinator's termination decision.
    - {b decision} (broadcast down the tree): [action:u8 round:u32]
      with action 1 = step that round, 2 = stop and ship states,
      3 = stop without states (failure path).
    - {b epilogue} (worker → coordinator, once): [src:u16
      halo_words:i64 exchange_rounds:i64 has_states:u8
      [slen:u32 word...]] — per-worker counters for span reporting
      plus, when requested, the [n_owned * slots] dense state words.
    - {b error} (worker → coordinator, at most once): [src:u16
      failure:u8 mlen:u32 message] — a worker-side exception;
      [failure=1] means [Failure msg] (re-raised verbatim for parity
      with in-process backends), otherwise it becomes {!Proc_failure}.

    Malformed input (bad magic, unknown version, truncated or oversized
    frames) raises {!Proc_failure} with a [tlp:] message — never a crash
    or a silent misparse. *)

exception Proc_failure of string
(** Process-backend failure: wire-format violations, peer disconnects,
    and abnormal worker exits. Carries a human-readable message
    (including the worker's exit status where applicable). *)

val version : int
val max_frame_bytes : int

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Proc_failure} with a [tlp:]-prefixed formatted message. *)

(** {2 Frame kind codes} *)

val k_prologue : int
val k_halo : int
val k_stats : int
val k_decision : int
val k_epilogue : int
val k_error : int

(** {2 Zero-allocation scalar codec}

    Byte-by-byte little-endian stores/loads of unboxed [int]s —
    deliberately not [Bytes.set_int64_le], which boxes an [Int64] on
    every call without flambda. These are the only functions the
    steady-state halo path touches. *)

val put_i64 : Bytes.t -> int -> int -> unit
val get_i64 : Bytes.t -> int -> int
(** Exact round-trip for every OCaml [int] (63-bit, sign-extended). *)

val put_u32 : Bytes.t -> int -> int -> unit
val get_u32 : Bytes.t -> int -> int
val put_u16 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int

(** {2 Hot-path frame assembly}

    A frame image is built in place in a preallocated [Bytes.t]:
    [begin_frame] writes the header and returns the body offset;
    the caller appends body bytes with the scalar codec; [end_frame]
    backpatches the length prefix and returns the total image size. *)

val frame_overhead : int
(** Bytes before the body: 4 (length) + 3 (magic) + 1 (version) +
    1 (kind). *)

val begin_frame : Bytes.t -> int -> int
(** [begin_frame b kind] writes the payload header at offset 4 and
    returns {!frame_overhead}. *)

val end_frame : Bytes.t -> int -> int
(** [end_frame b pos] backpatches the length prefix for a frame whose
    image ends at [pos]; returns [pos]. *)

val check_payload : Bytes.t -> pos:int -> len:int -> int
(** Validate magic and version of a payload (starting at its magic) and
    return the kind byte. Raises {!Proc_failure} on violation. *)

(** {2 Typed frames}

    The structured view used by control channels, tests and the
    reassembler. [Halo] keeps its entry list as opaque payload bytes —
    the executor reads entries in place with the scalar codec. *)

type frame =
  | Prologue of {
      rank : int;
      size : int;
      entry : int;
      sched : int;
      shape : int;
      slots : int;
      in_peers : int array;
      out_peers : int array;
      shard : bytes;
    }
  | Halo of { round : int; src : int; n : int; payload : bytes }
  | Stats of {
      round : int;
      src : int;
      active : int;
      changed : int;
      unhalted : int;
      halo_words : int;
    }
  | Decision of { action : int; round : int }
  | Epilogue of {
      src : int;
      halo_words : int;
      exchange_rounds : int;
      states : bytes option;
    }
  | Error_frame of { src : int; failure : bool; message : string }

val a_step : int
val a_stop_result : int
val a_stop : int
(** Decision action codes: step the given round / stop and ship owned
    states / stop without states. *)

val encode : frame -> bytes
(** Full wire image (length prefix included). *)

val decode_payload : Bytes.t -> pos:int -> len:int -> frame
(** Decode one payload (starting at its magic, [len] bytes). Raises
    {!Proc_failure} on any malformation. *)

val decode : bytes -> frame
(** Decode a full wire image as produced by {!encode}, checking that
    the length prefix matches the buffer. *)

(** Incremental frame extraction from an arbitrarily-chunked byte
    stream — the reader side of the wire contract, also used directly
    by the chunked-reassembly tests. *)
module Reassembler : sig
  type t

  val create : unit -> t

  val feed : t -> Bytes.t -> pos:int -> len:int -> frame list
  (** Append a chunk and return every frame completed by it, in stream
      order. Raises {!Proc_failure} as soon as a malformed header or an
      oversized length prefix is visible. *)

  val pending : t -> int
  (** Bytes buffered awaiting a frame boundary. *)
end
