(* The worker side of the process backend: one forked process per shard.

   A worker inherits the run's closures (init/step/equal/halted, or the
   flat kernel builder) through fork — closures never cross the wire —
   but its shard sub-CSR arrives as a Plan.encode_shard image inside the
   prologue frame and is decoded here, so the data path a real multi-host
   deployment would need is the one actually exercised.

   Per round (decision "step r" from the collective tree):

     local step over the active set  →  commit (shard.ml discipline:
     publish changed states, dirty owned neighbors, append exchange
     routes)  →  halo exchange (one frame per out-neighbor, pumped
     bidirectionally under select; received frames applied in ascending
     source rank, exactly the in-process exchange order)  →  advance
     →  stats allreduce up the tree (active/changed/unhalted/halo_words
     summed component-wise).

   The executor bodies mirror shard.ml (boxed) and flat.ml (slab) line
   for line — the differential battery holds proc, shard and seq
   together bit for bit. *)

module Engine = Tl_engine.Engine
module Flat = Tl_engine.Flat
module Plan = Tl_shard.Plan

type entry_kind = Run | Stable | Rounds

let entry_code = function Run -> 1 | Stable -> 2 | Rounds -> 3

let entry_of_code = function
  | 1 -> Run
  | 2 -> Stable
  | 3 -> Rounds
  | c -> Wire.fail "unknown entry code %d" c

let sched_code = function Engine.Active_set -> 0 | Engine.Full_scan -> 1

let sched_of_code = function
  | 0 -> Engine.Active_set
  | 1 -> Engine.Full_scan
  | c -> Wire.fail "unknown sched code %d" c

type env = {
  rank : int;
  size : int;
  entry : entry_kind;
  sched : Engine.scheduling;
  slots : int;
  sh : Plan.shard;
  coord : Unix.file_descr;
  parent_fd : Unix.file_descr option;  (* None at the tree root *)
  child_fds : Unix.file_descr array;  (* ascending child rank *)
  out_fds : (int * Unix.file_descr) array;  (* halo out-peers, ascending *)
  in_fds : (int * Unix.file_descr) array;  (* halo in-peers, ascending *)
  cbuf : Transport.Buf.t;  (* control-frame receive buffer *)
  ibufs : Transport.Buf.t array;  (* one halo receive buffer per in-peer *)
}

(* ---------- control-plane helpers ---------- *)

(* Sum the subtree's stats (children first, one frame each), add our own,
   forward to the parent (the coordinator when we are the root). *)
let send_stats env ~round ~active ~changed ~unhalted ~halo_words =
  let a = ref active
  and c = ref changed
  and u = ref unhalted
  and hw = ref halo_words in
  Array.iter
    (fun fd ->
      match Transport.recv_typed fd env.cbuf with
      | Wire.Stats s ->
        a := !a + s.active;
        c := !c + s.changed;
        u := !u + s.unhalted;
        hw := !hw + s.halo_words
      | _ -> Wire.fail "worker %d: expected stats from child" env.rank)
    env.child_fds;
  let img =
    Wire.encode
      (Wire.Stats
         {
           round;
           src = env.rank;
           active = !a;
           changed = !c;
           unhalted = !u;
           halo_words = !hw;
         })
  in
  let dst = match env.parent_fd with Some fd -> fd | None -> env.coord in
  Transport.send_frame dst img (Bytes.length img)

(* Receive the next decision (from the coordinator at the root, from the
   tree parent otherwise) and forward it down before doing any work, so
   the whole subtree starts its round without waiting on our compute. *)
let recv_decision env =
  let src = match env.parent_fd with Some fd -> fd | None -> env.coord in
  match Transport.recv_typed src env.cbuf with
  | Wire.Decision { action; round } ->
    if Array.length env.child_fds > 0 then begin
      let img = Wire.encode (Wire.Decision { action; round }) in
      Array.iter
        (fun fd -> Transport.send_frame fd img (Bytes.length img))
        env.child_fds
    end;
    (action, round)
  | _ -> Wire.fail "worker %d: expected decision" env.rank

let send_epilogue env ~halo_words ~exchange_rounds ~states =
  let img =
    Wire.encode
      (Wire.Epilogue { src = env.rank; halo_words; exchange_rounds; states })
  in
  Transport.send_frame env.coord img (Bytes.length img)

(* ---------- halo plumbing shared by both executors ---------- *)

(* Start a halo frame image in [buf]; body entries follow at the
   returned offset. *)
let halo_body_start = Wire.frame_overhead + 10

let begin_halo buf =
  buf.Transport.Buf.len <- 0;
  Transport.Buf.ensure buf halo_body_start;
  ignore (Wire.begin_frame buf.Transport.Buf.b Wire.k_halo);
  buf.Transport.Buf.len <- halo_body_start;
  halo_body_start

let finish_halo buf ~round ~src ~n pos =
  let b = buf.Transport.Buf.b in
  Wire.put_u32 b Wire.frame_overhead round;
  Wire.put_u16 b (Wire.frame_overhead + 4) src;
  Wire.put_u32 b (Wire.frame_overhead + 6) n;
  ignore (Wire.end_frame b pos);
  buf.Transport.Buf.len <- pos

(* Validate a received halo payload and return the offset of its first
   entry; [n] entries follow. *)
let open_halo env ~expect_src ~round buf =
  let b = buf.Transport.Buf.b and len = buf.Transport.Buf.len in
  let kind = Wire.check_payload b ~pos:0 ~len in
  if kind <> Wire.k_halo then
    Wire.fail "worker %d: expected halo frame, got kind %d" env.rank kind;
  if len < 15 then Wire.fail "worker %d: short halo frame" env.rank;
  let r = Wire.get_u32 b 5 in
  let src = Wire.get_u16 b 9 in
  if r <> round then
    Wire.fail "worker %d: halo round skew (got %d, at %d)" env.rank r round;
  if src <> expect_src then
    Wire.fail "worker %d: halo from rank %d on rank %d's channel" env.rank src
      expect_src;
  (Wire.get_u32 b 11, 15)

(* ---------- the boxed executor (shard.ml's sctx, one shard) ---------- *)

let run_boxed (type a) env ~(init : int -> a) ~(step : a Engine.step_fn)
    ~(equal : a -> a -> bool) ~(halted : (a -> bool) option) =
  let sh = env.sh in
  let n_owned = sh.Plan.n_owned and n_local = sh.Plan.n_local in
  let l2g = sh.Plan.l2g in
  let off = sh.Plan.off and adj = sh.Plan.adj and eid = sh.Plan.eid in
  let xoff = sh.Plan.xoff
  and xshard = sh.Plan.xshard
  and xslot = sh.Plan.xslot in
  let st : a array = Array.init n_local (fun l -> init l2g.(l)) in
  let nx = Array.sub st 0 n_owned in
  let routes = xoff.(n_owned) in
  let active = ref (Array.init n_owned (fun l -> l)) in
  let n_active = ref n_owned in
  let pending = ref (Array.make (max 1 n_owned) 0) in
  let n_pending = ref 0 in
  let dirty = Array.make (max 1 n_owned) false in
  let out_dst = Array.make (max 1 routes) 0
  and out_slot = Array.make (max 1 routes) 0
  and out_src = Array.make (max 1 routes) 0 in
  let n_out = ref 0 in
  let halo_words = ref 0 and exchange_rounds = ref 0 in
  let halted_f = Array.make (max 1 n_owned) true in
  let unhalted = ref 0 in
  (match halted with
  | None -> ()
  | Some h ->
    for l = 0 to n_owned - 1 do
      let hv = h st.(l) in
      halted_f.(l) <- hv;
      if not hv then incr unhalted
    done);
  let mark l =
    if not (Array.unsafe_get dirty l) then begin
      Array.unsafe_set dirty l true;
      Array.unsafe_set !pending !n_pending l;
      incr n_pending
    end
  in
  let compute round =
    let act = !active in
    for i = 0 to !n_active - 1 do
      let l = Array.unsafe_get act i in
      let acc = ref [] in
      let lo = Array.unsafe_get off l in
      let j = ref (Array.unsafe_get off (l + 1) - 1) in
      while !j >= lo do
        let u = Array.unsafe_get adj !j in
        acc :=
          ( Array.unsafe_get l2g u,
            Array.unsafe_get eid !j,
            Array.unsafe_get st u )
          :: !acc;
        decr j
      done;
      Array.unsafe_set nx l
        (step ~round ~node:(Array.unsafe_get l2g l) (Array.unsafe_get st l)
           ~neighbors:!acc)
    done
  in
  let commit () =
    let changed = ref 0 in
    let act = !active in
    for i = 0 to !n_active - 1 do
      let l = Array.unsafe_get act i in
      let s' = Array.unsafe_get nx l in
      if not (equal s' (Array.unsafe_get st l)) then begin
        incr changed;
        Array.unsafe_set st l s';
        (match halted with
        | None -> ()
        | Some h ->
          let hv = h s' in
          if hv <> Array.unsafe_get halted_f l then begin
            Array.unsafe_set halted_f l hv;
            if hv then decr unhalted else incr unhalted
          end);
        (match env.sched with
        | Engine.Full_scan -> ()
        | Engine.Active_set ->
          mark l;
          for j = Array.unsafe_get off l to Array.unsafe_get off (l + 1) - 1 do
            let u = Array.unsafe_get adj j in
            if u < n_owned then mark u
          done);
        for x = Array.unsafe_get xoff l to Array.unsafe_get xoff (l + 1) - 1 do
          let k = !n_out in
          Array.unsafe_set out_dst k (Array.unsafe_get xshard x);
          Array.unsafe_set out_slot k (Array.unsafe_get xslot x);
          Array.unsafe_set out_src k l;
          n_out := k + 1
        done
      end
    done;
    !changed
  in
  let advance () =
    let k = !n_pending in
    let pnd = !pending in
    if k * 8 >= n_owned then begin
      let idx = ref 0 in
      for l = 0 to n_owned - 1 do
        if Array.unsafe_get dirty l then begin
          Array.unsafe_set dirty l false;
          Array.unsafe_set pnd !idx l;
          incr idx
        end
      done
    end
    else
      for i = 0 to k - 1 do
        Array.unsafe_set dirty (Array.unsafe_get pnd i) false
      done;
    let old = !active in
    active := pnd;
    pending := old;
    n_active := k;
    n_pending := 0
  in
  (* halo out: one reusable frame buffer per out-peer; [peer_of] maps a
     route's target rank to its buffer *)
  let n_outp = Array.length env.out_fds in
  let peer_of = Array.make (max 1 env.size) (-1) in
  Array.iteri (fun i (r, _) -> peer_of.(r) <- i) env.out_fds;
  let obufs = Array.init n_outp (fun _ -> Transport.Buf.create 4096) in
  let opos = Array.make (max 1 n_outp) 0 in
  let ocnt = Array.make (max 1 n_outp) 0 in
  let exchange round =
    for p = 0 to n_outp - 1 do
      opos.(p) <- begin_halo obufs.(p);
      ocnt.(p) <- 0
    done;
    for b = 0 to !n_out - 1 do
      let p = peer_of.(Array.unsafe_get out_dst b) in
      let buf = obufs.(p) in
      let pos = opos.(p) in
      let s = Array.unsafe_get st (Array.unsafe_get out_src b) in
      let r = Obj.repr s in
      buf.Transport.Buf.len <- pos;
      if Obj.is_int r then begin
        Transport.Buf.ensure buf (pos + 13);
        let bb = buf.Transport.Buf.b in
        Wire.put_u32 bb pos (Array.unsafe_get out_slot b);
        Bytes.unsafe_set bb (pos + 4) '\000';
        Wire.put_i64 bb (pos + 5) (Obj.obj r : int);
        opos.(p) <- pos + 13
      end
      else begin
        let m = Marshal.to_bytes s [] in
        let ml = Bytes.length m in
        Transport.Buf.ensure buf (pos + 9 + ml);
        let bb = buf.Transport.Buf.b in
        Wire.put_u32 bb pos (Array.unsafe_get out_slot b);
        Bytes.unsafe_set bb (pos + 4) '\001';
        Wire.put_u32 bb (pos + 5) ml;
        Bytes.blit m 0 bb (pos + 9) ml;
        opos.(p) <- pos + 9 + ml
      end;
      ocnt.(p) <- ocnt.(p) + 1
    done;
    let outs =
      Array.init n_outp (fun p ->
          finish_halo obufs.(p) ~round ~src:env.rank ~n:ocnt.(p) opos.(p);
          Transport.make_out (snd env.out_fds.(p)) obufs.(p).Transport.Buf.b
            opos.(p))
    in
    let ins =
      Array.mapi
        (fun i (_, fd) -> Transport.make_in fd env.ibufs.(i))
        env.in_fds
    in
    Transport.exchange ~outs ~ins;
    (* apply in ascending source rank — the in-process exchange order *)
    Array.iteri
      (fun i (src, _) ->
        let buf = env.ibufs.(i) in
        let n, ent0 = open_halo env ~expect_src:src ~round buf in
        let b = buf.Transport.Buf.b and blen = buf.Transport.Buf.len in
        let pos = ref ent0 in
        for _ = 1 to n do
          if !pos + 5 > blen then Wire.fail "worker %d: truncated halo" env.rank;
          let slot = Wire.get_u32 b !pos in
          if slot < n_owned || slot >= n_local then
            Wire.fail "worker %d: halo slot %d out of range" env.rank slot;
          let v : a =
            match Bytes.unsafe_get b (!pos + 4) with
            | '\000' ->
              if !pos + 13 > blen then
                Wire.fail "worker %d: truncated halo entry" env.rank;
              let w = Wire.get_i64 b (!pos + 5) in
              pos := !pos + 13;
              (Obj.magic w : a)
            | '\001' ->
              if !pos + 9 > blen then
                Wire.fail "worker %d: truncated halo entry" env.rank;
              let ml = Wire.get_u32 b (!pos + 5) in
              if !pos + 9 + ml > blen then
                Wire.fail "worker %d: truncated halo marshal" env.rank;
              let v = Marshal.from_bytes (Bytes.sub b (!pos + 9) ml) 0 in
              pos := !pos + 9 + ml;
              v
            | c -> Wire.fail "worker %d: bad state tag %d" env.rank (Char.code c)
          in
          Array.unsafe_set st slot v;
          match env.sched with
          | Engine.Full_scan -> ()
          | Engine.Active_set ->
            let h = slot - n_owned in
            for j = sh.Plan.halo_off.(h) to sh.Plan.halo_off.(h + 1) - 1 do
              mark (Array.unsafe_get sh.Plan.halo_adj j)
            done
        done;
        if !pos <> blen then
          Wire.fail "worker %d: trailing halo bytes" env.rank)
      env.in_fds;
    if !n_out > 0 then begin
      halo_words := !halo_words + !n_out;
      incr exchange_rounds
    end;
    n_out := 0
  in
  (* initial stats: the pre-round totals the coordinator's decision loop
     starts from *)
  send_stats env ~round:0 ~active:!n_active ~changed:0 ~unhalted:!unhalted
    ~halo_words:0;
  let stop = ref None in
  while !stop = None do
    let action, round = recv_decision env in
    if action = Wire.a_step then begin
      compute round;
      let changed = commit () in
      exchange round;
      (match env.sched with
      | Engine.Full_scan -> ()
      | Engine.Active_set -> advance ());
      send_stats env ~round ~active:!n_active ~changed ~unhalted:!unhalted
        ~halo_words:!halo_words
    end
    else stop := Some (action = Wire.a_stop_result)
  done;
  let states =
    if !stop = Some true then begin
      let buf = Buffer.create (n_owned * 13) in
      for l = 0 to n_owned - 1 do
        let r = Obj.repr st.(l) in
        if Obj.is_int r then begin
          let w = Bytes.create 9 in
          Bytes.set w 0 '\000';
          Wire.put_i64 w 1 (Obj.obj r : int);
          Buffer.add_bytes buf w
        end
        else begin
          let m = Marshal.to_bytes st.(l) [] in
          let w = Bytes.create 5 in
          Bytes.set w 0 '\001';
          Wire.put_u32 w 1 (Bytes.length m);
          Buffer.add_bytes buf w;
          Buffer.add_bytes buf m
        end
      done;
      Some (Buffer.to_bytes buf)
    end
    else None
  in
  send_epilogue env ~halo_words:!halo_words ~exchange_rounds:!exchange_rounds
    ~states

(* ---------- the flat executor (flat.ml's core over the sub-CSR) ---------- *)

(* The kernel builder receives the shard's l2g so node-indexed inputs
   (source ids, priority arrays) can be remapped into local space; the
   kernel then runs against a ctx whose CSR is the shard's sub-CSR —
   valid because adj entries are local indices into the local slab. *)
let run_flat env ~(kernel_for : l2g:int array -> Flat.kernel) =
  let sh = env.sh in
  let n_owned = sh.Plan.n_owned and n_local = sh.Plan.n_local in
  let k = kernel_for ~l2g:sh.Plan.l2g in
  let slots = k.Flat.slots in
  if slots <> env.slots then
    Wire.fail "worker %d: kernel slots %d disagree with prologue %d" env.rank
      slots env.slots;
  let init = k.Flat.init in
  let cur =
    Array.init (n_local * slots) (fun i ->
        init ~node:(i / slots) ~slot:(i mod slots))
  in
  let nxt = Array.sub cur 0 (n_owned * slots) in
  let ctx =
    {
      Flat.n_base = n_local;
      n_present = n_owned;
      off = sh.Plan.off;
      adj = sh.Plan.adj;
      eid = sh.Plan.eid;
      slots;
      cur;
      nxt;
    }
  in
  let scratch = Array.make (max 1 k.Flat.scratch_words) 0 in
  let xoff = sh.Plan.xoff
  and xshard = sh.Plan.xshard
  and xslot = sh.Plan.xslot in
  let routes = xoff.(n_owned) in
  let active = ref (Array.init n_owned (fun l -> l)) in
  let n_active = ref n_owned in
  let pending = ref (Array.make (max 1 n_owned) 0) in
  let n_pending = ref 0 in
  let dirty = Array.make (max 1 n_owned) false in
  let out_dst = Array.make (max 1 routes) 0
  and out_slot = Array.make (max 1 routes) 0
  and out_src = Array.make (max 1 routes) 0 in
  let n_out = ref 0 in
  let halo_words = ref 0 and exchange_rounds = ref 0 in
  let halt = if env.entry = Run then k.Flat.halted else None in
  let halted_f = Array.make (max 1 n_owned) true in
  let unhalted = ref 0 in
  (match halt with
  | None -> ()
  | Some h ->
    for l = 0 to n_owned - 1 do
      let hv = h ctx ~node:l in
      halted_f.(l) <- hv;
      if not hv then incr unhalted
    done);
  let mark l =
    if not (Array.unsafe_get dirty l) then begin
      Array.unsafe_set dirty l true;
      Array.unsafe_set !pending !n_pending l;
      incr n_pending
    end
  in
  let step = k.Flat.step in
  let compute round =
    let act = !active in
    for i = 0 to !n_active - 1 do
      step ctx ~scratch ~round ~node:(Array.unsafe_get act i)
    done
  in
  let commit () =
    let changed = ref 0 in
    let act = !active in
    let off = sh.Plan.off and adj = sh.Plan.adj in
    for i = 0 to !n_active - 1 do
      let l = Array.unsafe_get act i in
      let base = l * slots in
      if Flat.words_differ cur nxt base 0 slots then begin
        incr changed;
        Array.blit nxt base cur base slots;
        (match halt with
        | None -> ()
        | Some h ->
          let hv = h ctx ~node:l in
          if hv <> Array.unsafe_get halted_f l then begin
            Array.unsafe_set halted_f l hv;
            if hv then decr unhalted else incr unhalted
          end);
        (match env.sched with
        | Engine.Full_scan -> ()
        | Engine.Active_set ->
          mark l;
          for j = Array.unsafe_get off l to Array.unsafe_get off (l + 1) - 1 do
            let u = Array.unsafe_get adj j in
            if u < n_owned then mark u
          done);
        for x = Array.unsafe_get xoff l to Array.unsafe_get xoff (l + 1) - 1 do
          let kk = !n_out in
          Array.unsafe_set out_dst kk (Array.unsafe_get xshard x);
          Array.unsafe_set out_slot kk (Array.unsafe_get xslot x);
          Array.unsafe_set out_src kk l;
          n_out := kk + 1
        done
      end
    done;
    !changed
  in
  let advance () =
    let kk = !n_pending in
    let pnd = !pending in
    if kk * 8 >= n_owned then begin
      let idx = ref 0 in
      for l = 0 to n_owned - 1 do
        if Array.unsafe_get dirty l then begin
          Array.unsafe_set dirty l false;
          Array.unsafe_set pnd !idx l;
          incr idx
        end
      done
    end
    else
      for i = 0 to kk - 1 do
        Array.unsafe_set dirty (Array.unsafe_get pnd i) false
      done;
    let old = !active in
    active := pnd;
    pending := old;
    n_active := kk;
    n_pending := 0
  in
  let n_outp = Array.length env.out_fds in
  let peer_of = Array.make (max 1 env.size) (-1) in
  Array.iteri (fun i (r, _) -> peer_of.(r) <- i) env.out_fds;
  let obufs = Array.init n_outp (fun _ -> Transport.Buf.create 4096) in
  let opos = Array.make (max 1 n_outp) 0 in
  let ocnt = Array.make (max 1 n_outp) 0 in
  let entry_bytes = 4 + (slots * 9) in
  let exchange round =
    for p = 0 to n_outp - 1 do
      opos.(p) <- begin_halo obufs.(p);
      ocnt.(p) <- 0
    done;
    for b = 0 to !n_out - 1 do
      let p = peer_of.(Array.unsafe_get out_dst b) in
      let buf = obufs.(p) in
      let pos = opos.(p) in
      buf.Transport.Buf.len <- pos;
      Transport.Buf.ensure buf (pos + entry_bytes);
      let bb = buf.Transport.Buf.b in
      Wire.put_u32 bb pos (Array.unsafe_get out_slot b);
      let src = Array.unsafe_get out_src b * slots in
      for kk = 0 to slots - 1 do
        let wpos = pos + 4 + (kk * 9) in
        Bytes.unsafe_set bb wpos '\000';
        Wire.put_i64 bb (wpos + 1) (Array.unsafe_get cur (src + kk))
      done;
      opos.(p) <- pos + entry_bytes;
      ocnt.(p) <- ocnt.(p) + 1
    done;
    let outs =
      Array.init n_outp (fun p ->
          finish_halo obufs.(p) ~round ~src:env.rank ~n:ocnt.(p) opos.(p);
          Transport.make_out (snd env.out_fds.(p)) obufs.(p).Transport.Buf.b
            opos.(p))
    in
    let ins =
      Array.mapi
        (fun i (_, fd) -> Transport.make_in fd env.ibufs.(i))
        env.in_fds
    in
    Transport.exchange ~outs ~ins;
    Array.iteri
      (fun i (src, _) ->
        let buf = env.ibufs.(i) in
        let n, ent0 = open_halo env ~expect_src:src ~round buf in
        let b = buf.Transport.Buf.b and blen = buf.Transport.Buf.len in
        if ent0 + (n * entry_bytes) <> blen then
          Wire.fail "worker %d: halo size mismatch" env.rank;
        let pos = ref ent0 in
        for _ = 1 to n do
          let slot = Wire.get_u32 b !pos in
          if slot < n_owned || slot >= n_local then
            Wire.fail "worker %d: halo slot %d out of range" env.rank slot;
          let base = slot * slots in
          for kk = 0 to slots - 1 do
            let wpos = !pos + 4 + (kk * 9) in
            (match Bytes.unsafe_get b wpos with
            | '\000' -> ()
            | c ->
              Wire.fail "worker %d: bad flat state tag %d" env.rank
                (Char.code c));
            Array.unsafe_set cur (base + kk) (Wire.get_i64 b (wpos + 1))
          done;
          pos := !pos + entry_bytes;
          match env.sched with
          | Engine.Full_scan -> ()
          | Engine.Active_set ->
            let h = slot - n_owned in
            for j = sh.Plan.halo_off.(h) to sh.Plan.halo_off.(h + 1) - 1 do
              mark (Array.unsafe_get sh.Plan.halo_adj j)
            done
        done)
      env.in_fds;
    if !n_out > 0 then begin
      halo_words := !halo_words + !n_out;
      incr exchange_rounds
    end;
    n_out := 0
  in
  send_stats env ~round:0 ~active:!n_active ~changed:0 ~unhalted:!unhalted
    ~halo_words:0;
  let stop = ref None in
  while !stop = None do
    let action, round = recv_decision env in
    if action = Wire.a_step then begin
      compute round;
      let changed = commit () in
      exchange round;
      (match env.sched with
      | Engine.Full_scan -> ()
      | Engine.Active_set -> advance ());
      send_stats env ~round ~active:!n_active ~changed ~unhalted:!unhalted
        ~halo_words:!halo_words
    end
    else stop := Some (action = Wire.a_stop_result)
  done;
  let states =
    if !stop = Some true then begin
      let nb = n_owned * slots * 8 in
      let b = Bytes.create nb in
      for i = 0 to (n_owned * slots) - 1 do
        Wire.put_i64 b (i * 8) cur.(i)
      done;
      Some b
    end
    else None
  in
  send_epilogue env ~halo_words:!halo_words ~exchange_rounds:!exchange_rounds
    ~states

(* ---------- process entry ---------- *)

(* Child-side main: receive the prologue, decode the shard, wire up the
   collective tree and halo channels, run [body], report any exception
   as an error frame. Never returns — the caller is a freshly forked
   child and must not unwind into the parent's code. *)
let serve ~rank ~coord ~chans ~(body : env -> unit) =
  let code =
    try
      let cbuf = Transport.Buf.create 4096 in
      (match Transport.recv_typed coord cbuf with
      | Wire.Prologue p ->
        if p.rank <> rank then
          Wire.fail "worker %d: prologue addressed to rank %d" rank p.rank;
        let sh = Plan.decode_shard p.shard in
        if sh.Plan.id <> rank then
          Wire.fail "worker %d: shard %d in prologue" rank sh.Plan.id;
        let shape = Collective.shape_of_code p.shape in
        let fd_of r =
          match
            Array.find_opt (fun (pr, _) -> pr = r) chans
          with
          | Some (_, fd) -> fd
          | None -> Wire.fail "worker %d: no channel to rank %d" rank r
        in
        (* every peer channel goes non-blocking: the exchange pump needs
           single-shot reads/writes, and the blocking-style transport
           helpers park in select on EAGAIN *)
        Array.iter (fun (_, fd) -> Unix.set_nonblock fd) chans;
        let parent = Collective.parent shape rank in
        let env =
          {
            rank;
            size = p.size;
            entry = entry_of_code p.entry;
            sched = sched_of_code p.sched;
            slots = p.slots;
            sh;
            coord;
            parent_fd = (if parent < 0 then None else Some (fd_of parent));
            child_fds =
              Array.of_list
                (List.map fd_of (Collective.children shape ~size:p.size rank));
            out_fds = Array.map (fun r -> (r, fd_of r)) p.out_peers;
            in_fds = Array.map (fun r -> (r, fd_of r)) p.in_peers;
            cbuf;
            ibufs =
              Array.map (fun _ -> Transport.Buf.create 4096) p.in_peers;
          }
        in
        body env
      | _ -> Wire.fail "worker %d: expected prologue" rank);
      0
    with e ->
      let failure, message =
        match e with
        | Failure m -> (true, m)
        | Wire.Proc_failure m -> (false, m)
        | e -> (false, Printexc.to_string e)
      in
      (try
         let img =
           Wire.encode (Wire.Error_frame { src = rank; failure; message })
         in
         Transport.send_frame coord img (Bytes.length img)
       with _ -> ());
      2
  in
  (try
     flush stdout;
     flush stderr
   with _ -> ());
  Unix._exit code
