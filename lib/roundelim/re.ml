type problem = {
  name : string;
  alphabet : string array;
  node_arity : int;
  edge_arity : int;
  node : int list list;
  edge : int list list;
}

let normalize_configs configs =
  List.sort_uniq compare (List.map (List.sort compare) configs)

let make ~name ~alphabet ~node_arity ~edge_arity ~node ~edge =
  let alpha = Array.of_list alphabet in
  let index l =
    let rec find i =
      if i >= Array.length alpha then
        invalid_arg (Printf.sprintf "Re.make: unknown label %s" l)
      else if alpha.(i) = l then i
      else find (i + 1)
    in
    find 0
  in
  let convert arity configs =
    List.map
      (fun c ->
        if List.length c <> arity then invalid_arg "Re.make: wrong arity";
        List.map index c)
      configs
  in
  {
    name;
    alphabet = alpha;
    node_arity;
    edge_arity;
    node = normalize_configs (convert node_arity node);
    edge = normalize_configs (convert edge_arity edge);
  }

(* --- multiset enumeration ----------------------------------------------- *)

(* all sorted multisets of the given size over the (sorted) candidates *)
let rec multisets size candidates =
  if size = 0 then [ [] ]
  else
    match candidates with
    | [] -> []
    | x :: rest ->
      let with_x = List.map (fun m -> x :: m) (multisets (size - 1) candidates) in
      with_x @ multisets size rest

(* all transversals of a list of label sets (as int lists) *)
let rec transversals = function
  | [] -> [ [] ]
  | s :: rest ->
    let tails = transversals rest in
    List.concat_map (fun x -> List.map (fun t -> x :: t) tails) s

(* --- subset labels as bitmasks ------------------------------------------ *)

let bits_of_mask mask =
  let rec go i acc =
    if 1 lsl i > mask then List.rev acc
    else go (i + 1) (if mask land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let subset_leq a b = a land b = a

(* configuration [c1] is dominated by [c2] (both sorted lists of masks of
   equal length) if some pairing maps each element of [c1] into a superset
   element of [c2] *)
let dominated c1 c2 =
  let rec match_all c1 c2 =
    match c1 with
    | [] -> true
    | x :: rest ->
      let rec try_partner before = function
        | [] -> false
        | y :: after ->
          (subset_leq x y && match_all rest (List.rev_append before after))
          || try_partner (y :: before) after
      in
      try_partner [] c2
  in
  match_all c1 c2

let maximal_only configs =
  List.filter
    (fun c ->
      not (List.exists (fun c' -> c <> c' && dominated c c') configs))
    configs

(* --- the operator -------------------------------------------------------- *)

(* One elimination step: the [forall] constraint (arity fa) is rebuilt over
   subset labels with universal quantification and maximality; the
   [exists] constraint (arity fe) over the used subset labels with
   existential quantification. Returns (new alphabet, forall', exists'). *)
let step ~alphabet ~forall_arity ~forall ~exists_arity ~exists =
  let sigma = Array.length alphabet in
  if sigma > 14 then
    invalid_arg "Re.step: alphabet too large for subset enumeration";
  let forall_set = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace forall_set c ()) forall;
  let exists_set = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace exists_set c ()) exists;
  let all_masks = List.init ((1 lsl sigma) - 1) (fun i -> i + 1) in
  (* forall side *)
  let candidates = multisets forall_arity all_masks in
  let ok_forall masks =
    List.for_all
      (fun t -> Hashtbl.mem forall_set (List.sort compare t))
      (transversals (List.map bits_of_mask masks))
  in
  let forall' = maximal_only (List.filter ok_forall candidates) in
  (* labels used by the maximal forall configurations *)
  let used = List.sort_uniq compare (List.concat forall') in
  (* exists side over used labels *)
  let ok_exists masks =
    List.exists
      (fun t -> Hashtbl.mem exists_set (List.sort compare t))
      (transversals (List.map bits_of_mask masks))
  in
  let exists' = List.filter ok_exists (multisets exists_arity used) in
  (* rename masks to dense ids *)
  let id_of_mask = Hashtbl.create 16 in
  List.iteri (fun i m -> Hashtbl.add id_of_mask m i) used;
  let rename c = List.sort compare (List.map (Hashtbl.find id_of_mask) c) in
  let name_of_mask m =
    Printf.sprintf "{%s}"
      (String.concat "," (List.map (fun b -> alphabet.(b)) (bits_of_mask m)))
  in
  let alphabet' = Array.of_list (List.map name_of_mask used) in
  ( alphabet',
    normalize_configs (List.map rename forall'),
    normalize_configs (List.map rename exists') )

let re p =
  let alphabet, edge', node' =
    step ~alphabet:p.alphabet ~forall_arity:p.edge_arity ~forall:p.edge
      ~exists_arity:p.node_arity ~exists:p.node
  in
  {
    name = Printf.sprintf "R(%s)" p.name;
    alphabet;
    node_arity = p.node_arity;
    edge_arity = p.edge_arity;
    node = node';
    edge = edge';
  }

let re_dual p =
  let alphabet, node', edge' =
    step ~alphabet:p.alphabet ~forall_arity:p.node_arity ~forall:p.node
      ~exists_arity:p.edge_arity ~exists:p.edge
  in
  {
    name = Printf.sprintf "R~(%s)" p.name;
    alphabet;
    node_arity = p.node_arity;
    edge_arity = p.edge_arity;
    node = node';
    edge = edge';
  }

(* --- equivalence --------------------------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let equivalent p1 p2 =
  p1.node_arity = p2.node_arity
  && p1.edge_arity = p2.edge_arity
  && Array.length p1.alphabet = Array.length p2.alphabet
  &&
  let k = Array.length p1.alphabet in
  let apply perm configs =
    normalize_configs (List.map (List.map (fun l -> List.nth perm l)) configs)
  in
  List.exists
    (fun perm -> apply perm p1.node = p2.node && apply perm p1.edge = p2.edge)
    (permutations (List.init k Fun.id))

let is_fixed_point p = equivalent p (re p)

(* --- stock problems ------------------------------------------------------ *)

let sinkless_orientation ~delta =
  let node =
    (* multisets of size delta over {I, O} with at least one O *)
    List.init delta (fun outs ->
        List.init (delta - outs - 1) (fun _ -> "I")
        @ List.init (outs + 1) (fun _ -> "O"))
  in
  make ~name:"sinkless-orientation" ~alphabet:[ "I"; "O" ] ~node_arity:delta
    ~edge_arity:2 ~node ~edge:[ [ "I"; "O" ] ]

let perfect_matching ~delta =
  let node = [ "M" :: List.init (delta - 1) (fun _ -> "U") ] in
  make ~name:"perfect-matching" ~alphabet:[ "M"; "U" ] ~node_arity:delta
    ~edge_arity:2 ~node
    ~edge:[ [ "M"; "M" ]; [ "U"; "U" ] ]

let mis ~delta =
  let node =
    List.init delta (fun _ -> "M")
    :: [ "P" :: List.init (delta - 1) (fun _ -> "O") ]
  in
  make ~name:"mis" ~alphabet:[ "M"; "P"; "O" ] ~node_arity:delta ~edge_arity:2
    ~node
    ~edge:[ [ "M"; "P" ]; [ "M"; "O" ]; [ "O"; "O" ] ]

let weak_2coloring ~delta =
  make ~name:"2-coloring" ~alphabet:[ "A"; "B" ] ~node_arity:delta
    ~edge_arity:2
    ~node:
      [ List.init delta (fun _ -> "A"); List.init delta (fun _ -> "B") ]
    ~edge:[ [ "A"; "B" ] ]

let pp ppf p =
  Format.fprintf ppf "@[<v>problem %s (node arity %d, edge arity %d)@," p.name
    p.node_arity p.edge_arity;
  Format.fprintf ppf "  labels: %s@,"
    (String.concat " " (Array.to_list p.alphabet));
  let render c = String.concat " " (List.map (fun l -> p.alphabet.(l)) c) in
  Format.fprintf ppf "  node: %s@,"
    (String.concat " | " (List.map render p.node));
  Format.fprintf ppf "  edge: %s@]"
    (String.concat " | " (List.map render p.edge))

let zero_round_solvable p =
  let edge_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace edge_set c ()) p.edge;
  let pair_ok x y = Hashtbl.mem edge_set (List.sort compare [ x; y ]) in
  List.exists
    (fun config ->
      let labels = List.sort_uniq compare config in
      List.for_all
        (fun x -> List.for_all (fun y -> pair_ok x y) labels)
        labels)
    p.node

type lower_bound_outcome =
  | Zero_round_after of int
  | Fixed_point_at of int
  | Still_growing of int

let lower_bound_loop ?(max_pairs = 4) ?(max_alphabet = 8) p =
  (* the subset construction is exponential in the alphabet, so refuse to
     even *apply* an operator to a problem beyond the cap *)
  let rec go p pairs =
    if zero_round_solvable p then Zero_round_after pairs
    else if pairs >= max_pairs then Still_growing pairs
    else if Array.length p.alphabet > max_alphabet then Still_growing pairs
    else begin
      let p' = re p in
      if Array.length p'.alphabet > max_alphabet then Still_growing pairs
      else begin
        let p'' = re_dual p' in
        if Array.length p''.alphabet > max_alphabet then Still_growing pairs
        else if equivalent p p'' then Fixed_point_at pairs
        else go p'' (pairs + 1)
      end
    end
  in
  go p 0

let trajectory ?(steps = 5) p =
  (* Alternate R and R̄ — one application of each eliminates one round. *)
  let rec go p i acc =
    let entry =
      (Array.length p.alphabet, List.length p.node, List.length p.edge)
    in
    if i >= steps then List.rev (entry :: acc)
    else begin
      let p' = (if i mod 2 = 0 then re else re_dual) p in
      if Array.length p'.alphabet <= 8 && equivalent p p' then
        List.rev (entry :: acc)
      else go p' (i + 1) (entry :: acc)
    end
  in
  go p 0 []
