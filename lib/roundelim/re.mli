(** Round elimination for finite node-edge-checkable problems on regular
    trees.

    The paper's lower-bound context (Section 1) rests on the round
    elimination technique [Bra19, BFH+16]: for a problem [Π] on
    [Δ]-regular trees given by a finite node constraint (multisets of
    size [Δ]) and edge constraint (multisets of size 2), the operator
    [R(Π)] produces a problem exactly one round easier, and problems that
    are {e fixed points} of (the suitably composed) operator admit the
    [Ω(log n)]-style lower bounds cited by the paper. This module
    implements the operator for finite label alphabets:

    - [R]: new labels are non-empty subsets of the old alphabet; the new
      {e edge} constraint keeps the maximal multisets [{S₁, S₂}] such that
      {e every} transversal [(s₁, s₂) ∈ S₁ × S₂] satisfies the old edge
      constraint; the new {e node} constraint keeps the multisets (over
      labels used by the new edge constraint) such that {e some}
      transversal satisfies the old node constraint.
    - [R̄ (re_dual)]: the same with the roles of nodes and edges swapped.

    The classic demo: sinkless orientation is a fixed point ([R(Π) ≅ Π]
    after renaming), the mechanism behind its [Ω(log n)] bound [BFH+16,
    CKP19]. *)

type problem = {
  name : string;
  alphabet : string array;  (** label names, indexed by label id *)
  node_arity : int;  (** [Δ] — the degree of the regular tree *)
  edge_arity : int;  (** 2 for graphs *)
  node : int list list;  (** allowed node configurations (sorted multisets) *)
  edge : int list list;  (** allowed edge configurations (sorted multisets) *)
}

val make :
  name:string ->
  alphabet:string list ->
  node_arity:int ->
  edge_arity:int ->
  node:string list list ->
  edge:string list list ->
  problem
(** Build a problem from label names; configurations are normalized
    (sorted, deduplicated). Raises [Invalid_argument] on unknown labels or
    configurations of the wrong arity. *)

val re : problem -> problem
(** One round-elimination step [R(Π)] (∀ on edges, ∃ on nodes). The new
    alphabet consists of the subset-labels used by the new edge
    constraint, rendered as ["{a,b,...}"] strings. *)

val re_dual : problem -> problem
(** The dual step [R̄(Π)] (∀ on nodes, ∃ on edges). *)

val equivalent : problem -> problem -> bool
(** Equality up to a bijective renaming of labels (exhaustive search —
    intended for the small alphabets of round-elimination experiments). *)

val is_fixed_point : problem -> bool
(** [equivalent Π (re Π)] — the one-step fixed-point test satisfied by
    sinkless orientation. *)

val sinkless_orientation : delta:int -> problem
(** Sinkless orientation on [Δ]-regular trees: labels [{I, O}], edge
    constraint [{I, O}], node constraint "at least one [O]". *)

val perfect_matching : delta:int -> problem
(** Perfect matching on [Δ]-regular trees: labels [{M, U}], edge
    constraint [{M, M}] or [{U, U}], node constraint "exactly one [M]". *)

val mis : delta:int -> problem
(** MIS on [Δ]-regular trees with the pointer encoding ([M]/[P]/[O], as in
    Section 5 of the paper's framework): a problem whose round-elimination
    trajectory {e grows}, as in the [Ω(log n / log log n)] lower-bound
    proofs [BBH+21]. *)

val weak_2coloring : delta:int -> problem
(** Proper 2-coloring encoded on half-edges, a problem that round
    elimination collapses quickly (useful as a non-fixed-point test
    case). *)

val pp : Format.formatter -> problem -> unit

val trajectory : ?steps:int -> problem -> (int * int * int) list
(** Sizes [(alphabet, node configs, edge configs)] along repeated
    application of [re]; stops early at a fixed point. Used by the
    round-elimination experiment. *)

(** {1 The lower-bound loop}

    The round elimination recipe for lower bounds (the machinery behind
    every state-of-the-art bound cited in Section 1): a problem solvable
    in [T] rounds yields, after one [R] (or [R̄]) application, a problem
    solvable in [T - 1/2] rounds (one full round per [R̄∘R] pair). If
    after [t] pairs the problem is still not zero-round solvable, the
    original problem needs more than [t] rounds. If the problem is a
    fixed point, no finite number of applications ever reaches
    zero-round solvability — the [Ω(log n)]-type bounds. *)

val zero_round_solvable : problem -> bool
(** Whether the problem can be solved with no communication on
    [Δ]-regular trees with adversarial port numbers: some node
    configuration [{x₁, ..., x_Δ} ∈ N] has every pair [{x_i, x_j}]
    (including [i = j], for two adjacent nodes making the same choice)
    in the edge constraint. *)

type lower_bound_outcome =
  | Zero_round_after of int
      (** zero-round solvable after this many [R̄∘R] pairs: the problem's
          deterministic complexity is at most that many rounds (and the
          loop proves a matching "needs more than t-1" statement). *)
  | Fixed_point_at of int
      (** the sequence became periodic without reaching zero-round
          solvability: an unbounded-[T] lower bound of the
          sinkless-orientation kind. *)
  | Still_growing of int
      (** gave up after this many pairs with the alphabet growing — the
          MIS-like regime where bounds require quantitative potential
          arguments. *)

val lower_bound_loop : ?max_pairs:int -> ?max_alphabet:int -> problem -> lower_bound_outcome
(** Run the loop (defaults: 4 pairs, alphabet cap 12 — the subset
    construction is exponential). *)
