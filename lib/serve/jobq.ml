type 'a t = {
  depth : int;
  q : 'a Queue.t;
  mutable admitted : int;
  mutable rejected : int;
}

let create ~depth =
  if depth < 1 then invalid_arg "Jobq.create: depth must be >= 1";
  { depth; q = Queue.create (); admitted = 0; rejected = 0 }

let depth t = t.depth
let length t = Queue.length t.q
let is_empty t = Queue.is_empty t.q

let admit t x =
  if Queue.length t.q >= t.depth then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    Queue.push x t.q;
    t.admitted <- t.admitted + 1;
    true
  end

let drain t =
  let rec go acc =
    match Queue.take_opt t.q with
    | None -> List.rev acc
    | Some x -> go (x :: acc)
  in
  go []

let admitted t = t.admitted
let rejected t = t.rejected
