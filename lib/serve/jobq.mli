(** Bounded FIFO job queue with an explicit admission policy.

    The serving daemon's backpressure primitive: a queue of fixed depth
    that {e rejects} (rather than blocks or drops) when full. Admission
    and drain are deterministic — jobs come out in exactly the order
    they were admitted, and the admitted/rejected counters depend only
    on the call sequence, never on timing. Single-domain use only (the
    server loop is single-threaded by design; parallelism lives below,
    in the engine's domain pool). *)

type 'a t

val create : depth:int -> 'a t
(** Raises [Invalid_argument] when [depth < 1]. *)

val depth : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val admit : 'a t -> 'a -> bool
(** Enqueue, or return [false] (and count a rejection) when the queue
    already holds [depth] jobs. *)

val drain : 'a t -> 'a list
(** All queued jobs in admission order; the queue is empty afterwards. *)

val admitted : 'a t -> int
(** Total jobs ever admitted. *)

val rejected : 'a t -> int
(** Total admissions refused on a full queue. *)
