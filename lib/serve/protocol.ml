module Json = Tl_obs.Json
module Graph = Tl_graph.Graph
module Labeling = Tl_problems.Labeling
module Engine = Tl_engine.Engine

let version = 1

(* FNV-1a, 64-bit: the digest primitive shared by the solution digests
   below and the Edges spec key (which must fold every endpoint —
   Hashtbl.hash only looks at a bounded prefix of a list). *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_fold h x = Int64.mul (Int64.logxor h (Int64.of_int x)) fnv_prime

(* ---------- requests ---------- *)

type graph_spec =
  | Family of { family : string; n : int; seed : int; a : int; delta : int }
  | Edges of { n : int; edges : (int * int) list; seed : int }

let spec_key = function
  | Family { family; n; seed; a; delta } ->
    Printf.sprintf "family:%s:%d:%d:%d:%d" family n seed a delta
  | Edges { n; edges; seed } ->
    (* explicit edge lists are digested, not inlined, to keep keys
       short: FNV-1a over every endpoint plus the edge count, so lists
       sharing a prefix (or a proper prefix of another) key apart *)
    let h =
      List.fold_left (fun h (u, v) -> fnv_fold (fnv_fold h u) v) fnv_offset
        edges
    in
    Printf.sprintf "edges:%d:%d:%d:%016Lx" n seed (List.length edges) h

let spec_n = function Family { n; _ } | Edges { n; _ } -> n

type request = {
  id : string;
  problem : string;
  method_ : string;
  spec : graph_spec;
  k : int option;
  engine : string;
  shards : int;
  pool : int;
  want_span : bool;
  faults : string option;
}

let default_spec =
  Family { family = "random-tree"; n = 1000; seed = 1; a = 1; delta = 8 }

let request ?(id = "") ?(problem = "mis") ?(method_ = "transform")
    ?(spec = default_spec) ?k ?(engine = "seq") ?(shards = 4) ?(pool = 1)
    ?(want_span = true) ?faults () =
  { id; problem; method_; spec; k; engine; shards; pool; want_span; faults }

type control = Ping | Stats | Shutdown | Metrics | Tail

type incoming = Request of request | Control of string * control

(* ---------- json helpers ---------- *)

let str_of key ~default j =
  Option.value ~default (Option.bind (Json.member key j) Json.to_str)

let int_of key ~default j =
  Option.value ~default (Option.bind (Json.member key j) Json.to_int)

let bool_of key ~default j =
  match Json.member key j with Some (Json.Bool b) -> b | _ -> default

let spec_of_json j =
  match Json.member "edges" j with
  | Some edges_j -> (
    let n = int_of "n" ~default:0 j and seed = int_of "seed" ~default:1 j in
    let base_error () = Error "graph.edges must be an array of [u,v] pairs" in
    let pair = function
      | Json.Arr [ u; v ] -> (
        match (Json.to_int u, Json.to_int v) with
        | Some u, Some v -> Ok (u, v)
        | _ -> base_error ())
      | _ -> base_error ()
    in
    match Json.to_list edges_j with
    | None -> Error "graph.edges must be an array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (Edges { n; edges = List.rev acc; seed })
        | e :: rest -> (
          match pair e with Ok p -> go (p :: acc) rest | Error _ as err -> err)
      in
      go [] items)
  | None ->
    Ok
      (Family
         {
           family = str_of "family" ~default:"random-tree" j;
           n = int_of "n" ~default:1000 j;
           seed = int_of "seed" ~default:1 j;
           a = int_of "a" ~default:1 j;
           delta = int_of "delta" ~default:8 j;
         })

let incoming_of_json j =
  match j with
  | Json.Obj _ -> (
    let v = int_of "v" ~default:(-1) j in
    if v <> version then
      Error
        (Printf.sprintf "unsupported protocol version %d (this daemon speaks v%d)"
           v version)
    else
      let id = str_of "id" ~default:"" j in
      match Option.bind (Json.member "cmd" j) Json.to_str with
      | Some "ping" -> Ok (Control (id, Ping))
      | Some "stats" -> Ok (Control (id, Stats))
      | Some "shutdown" -> Ok (Control (id, Shutdown))
      | Some "metrics" -> Ok (Control (id, Metrics))
      | Some "tail" -> Ok (Control (id, Tail))
      | Some other -> Error (Printf.sprintf "unknown cmd %S" other)
      | None -> (
        let spec_j =
          Option.value ~default:(Json.Obj []) (Json.member "graph" j)
        in
        match spec_of_json spec_j with
        | Error msg -> Error msg
        | Ok spec ->
          Ok
            (Request
               {
                 id;
                 problem = str_of "problem" ~default:"mis" j;
                 method_ = str_of "method" ~default:"transform" j;
                 spec;
                 k = Option.bind (Json.member "k" j) Json.to_int;
                 engine = str_of "engine" ~default:"seq" j;
                 shards = int_of "shards" ~default:4 j;
                 pool = int_of "pool" ~default:1 j;
                 want_span = bool_of "span" ~default:true j;
                 faults = Option.bind (Json.member "faults" j) Json.to_str;
               })))
  | _ -> Error "a request must be a JSON object"

let spec_to_json = function
  | Family { family; n; seed; a; delta } ->
    Json.Obj
      [
        ("family", Json.Str family);
        ("n", Json.Num (float_of_int n));
        ("seed", Json.Num (float_of_int seed));
        ("a", Json.Num (float_of_int a));
        ("delta", Json.Num (float_of_int delta));
      ]
  | Edges { n; edges; seed } ->
    Json.Obj
      [
        ("n", Json.Num (float_of_int n));
        ( "edges",
          Json.Arr
            (List.map
               (fun (u, v) ->
                 Json.Arr
                   [ Json.Num (float_of_int u); Json.Num (float_of_int v) ])
               edges) );
        ("seed", Json.Num (float_of_int seed));
      ]

let request_to_json r =
  Json.Obj
    ([
       ("v", Json.Num (float_of_int version));
       ("id", Json.Str r.id);
       ("problem", Json.Str r.problem);
       ("method", Json.Str r.method_);
       ("graph", spec_to_json r.spec);
       ("engine", Json.Str r.engine);
       ("shards", Json.Num (float_of_int r.shards));
       ("pool", Json.Num (float_of_int r.pool));
     ]
    @ (match r.k with
      | None -> []
      | Some k -> [ ("k", Json.Num (float_of_int k)) ])
    @ [ ("span", Json.Bool r.want_span) ]
    @
    match r.faults with
    | None -> []
    | Some f -> [ ("faults", Json.Str f) ])

let control_to_json ?(id = "") c =
  Json.Obj
    [
      ("v", Json.Num (float_of_int version));
      ("id", Json.Str id);
      ( "cmd",
        Json.Str
          (match c with
          | Ping -> "ping"
          | Stats -> "stats"
          | Shutdown -> "shutdown"
          | Metrics -> "metrics"
          | Tail -> "tail") );
    ]

(* ---------- responses ---------- *)

type error_kind = Rejected | Bad_request | Failed

let error_kind_to_string = function
  | Rejected -> "rejected"
  | Bad_request -> "bad_request"
  | Failed -> "failed"

let error_kind_of_string = function
  | "rejected" -> Some Rejected
  | "bad_request" -> Some Bad_request
  | "failed" -> Some Failed
  | _ -> None

type solved = {
  digest : string;
  total_rounds : int;
  ledger : (string * int) list;
  valid : bool;
  engine_rounds : int;
  cache_hit : bool;
  span : Json.t option;
}

type outcome =
  | Solved of solved
  | Pong
  | Stats_report of (string * int) list
  | Metrics_report of Json.t  (** tl_metrics=1 snapshot, passed verbatim *)
  | Tail_report of Json.t list  (** flight-recorder events, oldest first *)
  | Error of error_kind * string

type response = { rid : string; outcome : outcome }

let response_to_json { rid; outcome } =
  let base ok = [ ("v", Json.Num (float_of_int version));
                  ("id", Json.Str rid); ("ok", Json.Bool ok) ] in
  match outcome with
  | Solved s ->
    Json.Obj
      (base true
      @ [
          ("digest", Json.Str s.digest);
          ("rounds", Json.Num (float_of_int s.total_rounds));
          ("valid", Json.Bool s.valid);
          ("engine_rounds", Json.Num (float_of_int s.engine_rounds));
          ("cache_hit", Json.Bool s.cache_hit);
          ( "ledger",
            Json.Obj
              (List.map
                 (fun (phase, r) -> (phase, Json.Num (float_of_int r)))
                 s.ledger) );
        ]
      @ match s.span with None -> [] | Some sp -> [ ("span", sp) ])
  | Pong -> Json.Obj (base true @ [ ("pong", Json.Bool true) ])
  | Stats_report kvs ->
    Json.Obj
      (base true
      @ [
          ( "stats",
            Json.Obj
              (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) kvs) );
        ])
  | Metrics_report snap -> Json.Obj (base true @ [ ("metrics", snap) ])
  | Tail_report events ->
    Json.Obj (base true @ [ ("tail", Json.Arr events) ])
  | Error (kind, msg) ->
    Json.Obj
      (base false
      @ [
          ( "error",
            Json.Obj
              [
                ("kind", Json.Str (error_kind_to_string kind));
                ("msg", Json.Str msg);
              ] );
        ])

let response_of_json j =
  match j with
  | Json.Obj _ -> (
    let v = int_of "v" ~default:(-1) j in
    if v <> version then
      Stdlib.Error (Printf.sprintf "unsupported version %d" v)
    else
      let rid = str_of "id" ~default:"" j in
      match Json.member "ok" j with
      | Some (Json.Bool false) -> (
        match Json.member "error" j with
        | Some err -> (
          let kind_s = str_of "kind" ~default:"failed" err in
          let msg = str_of "msg" ~default:"" err in
          match error_kind_of_string kind_s with
          | Some kind -> Ok { rid; outcome = Error (kind, msg) }
          | None ->
            Stdlib.Error (Printf.sprintf "unknown error kind %S" kind_s))
        | None -> Stdlib.Error "ok=false response without an error object")
      | Some (Json.Bool true) ->
        if bool_of "pong" ~default:false j then Ok { rid; outcome = Pong }
        else (
          match Json.member "stats" j with
          | Some stats_j -> (
            match Json.to_assoc stats_j with
            | None -> Stdlib.Error "stats must be an object"
            | Some kvs ->
              let ints =
                List.filter_map
                  (fun (k, v) ->
                    Option.map (fun i -> (k, i)) (Json.to_int v))
                  kvs
              in
              Ok { rid; outcome = Stats_report ints })
          | None ->
          match Json.member "metrics" j with
          | Some snap -> Ok { rid; outcome = Metrics_report snap }
          | None -> (
          match Json.member "tail" j with
          | Some tail_j -> (
            match Json.to_list tail_j with
            | None -> Stdlib.Error "tail must be an array"
            | Some events -> Ok { rid; outcome = Tail_report events })
          | None -> (
            match
              ( Option.bind (Json.member "digest" j) Json.to_str,
                Option.bind (Json.member "rounds" j) Json.to_int )
            with
            | Some digest, Some total_rounds ->
              let ledger =
                Option.bind (Json.member "ledger" j) Json.to_assoc
                |> Option.value ~default:[]
                |> List.filter_map (fun (k, v) ->
                       Option.map (fun i -> (k, i)) (Json.to_int v))
              in
              Ok
                {
                  rid;
                  outcome =
                    Solved
                      {
                        digest;
                        total_rounds;
                        ledger;
                        valid = bool_of "valid" ~default:false j;
                        engine_rounds = int_of "engine_rounds" ~default:0 j;
                        cache_hit = bool_of "cache_hit" ~default:false j;
                        span = Json.member "span" j;
                      };
                }
            | _ -> Stdlib.Error "solved response missing digest/rounds")))
      | _ -> Stdlib.Error "response missing ok field")
  | _ -> Stdlib.Error "a response must be a JSON object"

(* ---------- digests ---------- *)

let digest_array f arr =
  Printf.sprintf "%016Lx"
    (Array.fold_left (fun h x -> fnv_fold h (f x)) fnv_offset arr)

let digest_labeling ~graph l =
  let h = ref fnv_offset in
  for he = 0 to Graph.n_half_edges graph - 1 do
    h := fnv_fold !h (Hashtbl.hash (Labeling.get l he))
  done;
  Printf.sprintf "%016Lx" !h

(* ---------- knob validation ---------- *)

let resolve_knobs ~engine ~shards ~pool ~n =
  if n < 1 then
    Stdlib.Error (Printf.sprintf "instance size %d is not positive" n)
  else if shards < 1 then
    Stdlib.Error
      (Printf.sprintf "invalid shard count %d (expected S >= 1)" shards)
  else if pool < 1 || pool > 64 then
    Stdlib.Error
      (Printf.sprintf "invalid pool size %d (expected 1 <= N <= 64)" pool)
  else
    (* "shard"/"proc" without an inline count resolve against the
       request's shards knob; scope both refs so the caller's globals
       are untouched *)
    let saved = !Engine.default_shards in
    let saved_p = !Engine.default_procs in
    Engine.default_shards := shards;
    Engine.default_procs := shards;
    let mode =
      Fun.protect
        ~finally:(fun () ->
          Engine.default_shards := saved;
          Engine.default_procs := saved_p)
        (fun () ->
          match Engine.mode_of_string engine with
          | m -> Ok m
          | exception Invalid_argument _ ->
            Stdlib.Error
              (Printf.sprintf
                 "invalid engine %S (expected naive, seq, par:N, shard, \
                  shard:S, proc or proc:S)"
                 engine))
    in
    match mode with
    | Stdlib.Error _ as e -> e
    | Ok (Engine.Shard s) when s > n ->
      Stdlib.Error
        (Printf.sprintf
           "shard count %d exceeds the instance size n = %d (each shard \
            needs at least one node)"
           s n)
    | Ok (Engine.Shard _) when !Engine.shard_backend = None ->
      Stdlib.Error
        "engine shard requested but no shard backend is linked (build \
         against tl_shard)"
    | Ok (Engine.Proc p) when p > n ->
      Stdlib.Error
        (Printf.sprintf
           "proc count %d exceeds the instance size n = %d (each worker \
            needs at least one node)"
           p n)
    | Ok (Engine.Proc _) when !Engine.proc_backend = None ->
      Stdlib.Error
        "engine proc requested but no process backend is linked (build \
         against tl_proc)"
    | Ok m -> Ok m
