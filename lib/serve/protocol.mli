(** tl_serve wire protocol: ndjson requests and responses (schema v1).

    Every value on the wire is one JSON object per line
    ({!Tl_obs.Json.to_line} / {!Tl_obs.Json.Ndjson}) carrying a ["v"]
    schema-version field. A {e request} names a problem, a graph spec
    (generator family + seed, or an explicit edge list) and engine knobs;
    the matching {e response} echoes the request id and reports the
    labeling digest, the round ledger, the measured engine rounds and
    (optionally) a per-request tl_obs span report. {e Control} messages
    ([ping] / [stats] / [shutdown] / [metrics] / [tail]) bypass the job
    queue: [metrics] answers with a versioned {!Tl_obs.Metrics} registry
    snapshot ([tl_metrics = 1]) under a ["metrics"] member, [tail] with
    the flight recorder's recent events under a ["tail"] array.

    {2 Request schema}

    {v
    { "v": 1, "id": "r1",
      "problem": "mis",                  // mis|coloring|matching|edge-coloring|flood
      "method": "transform",             // transform|direct|baseline (flood ignores it)
      "graph": { "family": "random-tree", "n": 1000, "seed": 7,
                 "a": 1, "delta": 8 },
      // or: "graph": { "n": 4, "edges": [[0,1],[1,2],[2,3]], "seed": 1 }
      "engine": "seq",                   // naive|seq|par:N|shard|shard:S
      "shards": 4, "pool": 1,
      "k": null,                         // decomposition parameter override
      "span": true }                     // include the span report in the response
    v}

    {2 Response schema}

    {v
    { "v": 1, "id": "r1", "ok": true,
      "digest": "f01dab1ecafe4242",      // FNV-1a over the solution
      "rounds": 93,                      // accounted LOCAL rounds (ledger total)
      "valid": true,
      "engine_rounds": 181,              // measured engine executions
      "cache_hit": false,                // served from the instance cache
      "ledger": { "decompose": 6, ... },
      "span": { "tl_obs_report": 1, ... } }          // when requested
    { "v": 1, "id": "r2", "ok": false,
      "error": { "kind": "rejected", "msg": "queue full (depth 64)" } }
    v}

    Rejections ([kind = "rejected"]) are the backpressure story: a
    request that arrives while the job queue is full is answered
    immediately with a structured error, never dropped or blocked on. *)

val version : int
(** Wire schema version, [1]. Requests carrying a different ["v"] are
    answered with a [bad_request] error naming both versions. *)

(** {1 Requests} *)

type graph_spec =
  | Family of { family : string; n : int; seed : int; a : int; delta : int }
  | Edges of { n : int; edges : (int * int) list; seed : int }
      (** [seed] feeds the ID assignment only. *)

val spec_key : graph_spec -> string
(** Canonical batching / instance-cache key: equal specs produce equal
    keys, distinct specs distinct keys. [Family] specs key on every
    field verbatim; [Edges] specs key on [n], [seed], the edge count
    and a 64-bit FNV-1a digest folded over {e every} endpoint (lists
    differing anywhere — including past the bounded prefix
    [Hashtbl.hash] would inspect — key apart). *)

val spec_n : graph_spec -> int

type request = {
  id : string;
  problem : string;
  method_ : string;
  spec : graph_spec;
  k : int option;
  engine : string;
  shards : int;
  pool : int;
  want_span : bool;
  faults : string option;
      (** fault-schedule spec ({!Tl_fault.Schedule.of_arg} grammar,
          without the file-path form — the daemon never opens
          client-named paths); only honored by [chaos]-method
          requests. *)
}

val default_spec : graph_spec
(** [Family {family = "random-tree"; n = 1000; seed = 1; a = 1; delta = 8}]
    — the CLI's defaults. *)

val request : ?id:string -> ?problem:string -> ?method_:string ->
  ?spec:graph_spec -> ?k:int -> ?engine:string -> ?shards:int ->
  ?pool:int -> ?want_span:bool -> ?faults:string -> unit -> request
(** Request with the same defaults as the CLI's [solve]
    ([mis]/[transform]/[seq], shards 4, pool 1, span included, no
    faults). *)

type control = Ping | Stats | Shutdown | Metrics | Tail

type incoming = Request of request | Control of string * control
(** One parsed input line; the [string] is the echoed id. *)

val incoming_of_json : Tl_obs.Json.t -> (incoming, string) result
val request_to_json : request -> Tl_obs.Json.t
val control_to_json : ?id:string -> control -> Tl_obs.Json.t

(** {1 Responses} *)

type error_kind = Rejected | Bad_request | Failed

val error_kind_to_string : error_kind -> string

type solved = {
  digest : string;
  total_rounds : int;  (** accounted LOCAL rounds, the ledger total *)
  ledger : (string * int) list;
  valid : bool;
  engine_rounds : int;  (** measured executions over all engine runs *)
  cache_hit : bool;  (** instance served from the serve-layer cache *)
  span : Tl_obs.Json.t option;
}

type outcome =
  | Solved of solved
  | Pong
  | Stats_report of (string * int) list
  | Metrics_report of Tl_obs.Json.t
      (** the daemon's [tl_metrics = 1] snapshot, verbatim (decode with
          {!Tl_obs.Metrics.snapshot_of_json}) *)
  | Tail_report of Tl_obs.Json.t list
      (** flight-recorder events, oldest first (decode each with
          {!Tl_obs.Metrics.Recorder.event_of_json}) *)
  | Error of error_kind * string

type response = { rid : string; outcome : outcome }

val response_to_json : response -> Tl_obs.Json.t
val response_of_json : Tl_obs.Json.t -> (response, string) result
(** Client-side decoding (the CLI client mode, the smoke client, the
    differential tests). *)

(** {1 Solution digests}

    FNV-1a (64-bit) over the per-element structural hashes of a
    solution, rendered as 16 hex digits. Deterministic across processes
    for a fixed OCaml version — the serving differential property
    compares daemon digests against one-shot digests computed in another
    process. *)

val digest_array : ('a -> int) -> 'a array -> string

val digest_labeling : graph:Tl_graph.Graph.t -> 'l Tl_problems.Labeling.t -> string
(** Digest over the labels of every half-edge id in order. *)

(** {1 Knob validation} *)

val resolve_knobs :
  engine:string -> shards:int -> pool:int -> n:int ->
  (Tl_engine.Engine.mode, string) result
(** Validate an (engine, shards, pool) combination against an instance
    of [n] nodes and resolve the engine string to a mode (["shard"]
    picks up [shards]). Errors — friendly, one-line — cover: unknown
    engine strings, [shards < 1], [shards > n], [pool] outside [1, 64],
    [n < 1], and shard mode requested while no shard backend is linked
    ({!Tl_engine.Engine.shard_backend} is [None]). Shared by the daemon
    (per-request admission) and the CLI (argument cross-validation). *)
