module Json = Tl_obs.Json
module Span = Tl_obs.Span
module Report = Tl_obs.Report
module Metrics = Tl_obs.Metrics
module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Trace = Tl_engine.Trace
module Pool = Tl_engine.Pool
module Plan = Tl_shard.Plan
module Pipeline = Tl_core.Pipeline
module P = Protocol

type config = { depth : int; cache_slots : int; max_n : int }

let default_config = { depth = 64; cache_slots = 32; max_n = 2_000_000 }

let now = Unix.gettimeofday

(* Serving counters live in the process-wide metrics registry (the
   [metrics] control scrapes them); each server value remembers the
   registry values at creation and reports deltas, so the [stats]
   control keeps its per-server semantics (and its exact JSON shape)
   while every increment feeds the registry. *)
let m_received = Metrics.counter "serve_received_total"
let m_served = Metrics.counter "serve_served_total"
let m_rejected = Metrics.counter "serve_rejected_total"
let m_errors = Metrics.counter "serve_errors_total"
let m_batches = Metrics.counter "serve_batches_total"
let m_cache_hits = Metrics.counter "serve_cache_hits_total"
let m_cache_misses = Metrics.counter "serve_cache_misses_total"
let g_jobq = Metrics.gauge "serve_jobq_depth"
let g_max_batch = Metrics.gauge "serve_max_batch"
let h_latency = Metrics.histogram "serve_request_seconds"
let h_batch = Metrics.histogram "serve_batch_size"

type base = {
  b_received : int;
  b_served : int;
  b_rejected : int;
  b_errors : int;
  b_batches : int;
  b_cache_hits : int;
  b_cache_misses : int;
}

(* One cached instance per spec key. The semi-graph is lazy so pipeline
   problems (which build their own internal views) never pay for it;
   engine kernels (flood) force it once per instance, which is what
   makes warm same-topology requests hit Topology.compile_cached and
   Plan.build_cached instead of recompiling. *)
type instance = {
  graph : Graph.t;
  ids : int array;
  sg : Semi_graph.t Lazy.t;
}

type t = {
  cfg : config;
  queue : (int * P.request) Jobq.t;
  cache : (string, instance) Hashtbl.t;
  cache_order : string Queue.t;
  base : base;
  mutable max_batch : int;  (* a maximum, not a counter: kept per server *)
  mutable shutdown : bool;
}

let create ?(config = default_config) () =
  if config.cache_slots < 0 then invalid_arg "Server.create: cache_slots < 0";
  if config.max_n < 1 then invalid_arg "Server.create: max_n < 1";
  (* every daemon turns the registry (and the engine bridge) on: the
     metrics control must see live engine/shard/pool counters too *)
  Metrics.enable ();
  {
    cfg = config;
    queue = Jobq.create ~depth:config.depth;
    cache = Hashtbl.create 64;
    cache_order = Queue.create ();
    base =
      {
        b_received = Metrics.counter_value m_received;
        b_served = Metrics.counter_value m_served;
        b_rejected = Metrics.counter_value m_rejected;
        b_errors = Metrics.counter_value m_errors;
        b_batches = Metrics.counter_value m_batches;
        b_cache_hits = Metrics.counter_value m_cache_hits;
        b_cache_misses = Metrics.counter_value m_cache_misses;
      };
    max_batch = 0;
    shutdown = false;
  }

let config t = t.cfg
let shutdown_requested t = t.shutdown

let stats t =
  let topo_h, topo_m = Topology.cache_stats () in
  let plan_h, plan_m = Plan.cache_stats () in
  [
    ("received", Metrics.counter_value m_received - t.base.b_received);
    ("served", Metrics.counter_value m_served - t.base.b_served);
    ("rejected", Metrics.counter_value m_rejected - t.base.b_rejected);
    ("errors", Metrics.counter_value m_errors - t.base.b_errors);
    ("batches", Metrics.counter_value m_batches - t.base.b_batches);
    ("max_batch", t.max_batch);
    ("queue_depth", t.cfg.depth);
    ("serve:cache_hit", Metrics.counter_value m_cache_hits - t.base.b_cache_hits);
    ( "serve:cache_miss",
      Metrics.counter_value m_cache_misses - t.base.b_cache_misses );
    ("topo:cache_hit", topo_h);
    ("topo:cache_miss", topo_m);
    ("plan:cache_hit", plan_h);
    ("plan:cache_miss", plan_m);
  ]

(* ---------- instances ---------- *)

(* Same family dispatch as the CLI's build_instance, so a daemon request
   and a one-shot CLI run over the same spec see the same graph. *)
let build_graph = function
  | P.Edges { n; edges; _ } -> Graph.of_edges ~n edges
  | P.Family { family; n; seed; a; delta } -> (
    match family with
    | "random-tree" -> Gen.random_tree ~n ~seed
    | "balanced-tree" -> Gen.balanced_regular_tree ~delta ~n
    | "path" -> Gen.path n
    | "star" -> Gen.star n
    | "caterpillar" -> Gen.caterpillar ~spine:(max 1 (n / 4)) ~legs:3
    | "power-law" -> Gen.power_law_tree ~n ~seed
    | "forest-union" -> Gen.forest_union ~n ~arboricity:a ~seed
    | "planar" ->
      Gen.triangulated_grid (max 2 (int_of_float (Float.sqrt (float_of_int n))))
    | "grid" ->
      let side = max 1 (int_of_float (Float.sqrt (float_of_int n))) in
      Gen.grid side side
    | other -> failwith (Printf.sprintf "unknown family %s" other))

let build_instance spec =
  let graph = build_graph spec in
  let seed =
    match spec with P.Family { seed; _ } | P.Edges { seed; _ } -> seed
  in
  (* same ID derivation as the CLI: permuted on seed + 1 *)
  let ids = Ids.permuted ~n:(Graph.n_nodes graph) ~seed:(seed + 1) in
  { graph; ids; sg = lazy (Semi_graph.of_graph graph) }

(* FIFO-bounded lookup; counts a hit/miss in the server stats and
   returns whether this call was served from cache. *)
let instance t spec =
  let key = P.spec_key spec in
  match Hashtbl.find_opt t.cache key with
  | Some inst ->
    Metrics.incr m_cache_hits 1;
    (inst, true)
  | None ->
    Metrics.incr m_cache_misses 1;
    let inst = build_instance spec in
    if t.cfg.cache_slots > 0 then begin
      while Queue.length t.cache_order >= t.cfg.cache_slots do
        Hashtbl.remove t.cache (Queue.pop t.cache_order)
      done;
      Hashtbl.add t.cache key inst;
      Queue.push key t.cache_order
    end;
    (inst, false)

(* ---------- validation ---------- *)

let known_problems =
  [
    ("flood", [ "transform"; "direct"; "baseline"; "chaos" ]);
    ("mis", [ "transform"; "direct"; "chaos" ]);
    ("coloring", [ "transform"; "direct" ]);
    ("matching", [ "transform"; "direct"; "baseline" ]);
    ("edge-coloring", [ "transform"; "direct"; "baseline" ]);
  ]

(* The daemon accepts the inline fault-spec forms only (compact grammar
   or inline JSON) — never a client-named file path. *)
let parse_faults = function
  | None -> Ok Tl_fault.Schedule.empty
  | Some s ->
    if String.length s > 0 && s.[0] = '{' then (
      match Json.parse s with
      | j -> Tl_fault.Schedule.of_json j
      | exception Json.Parse_error msg -> Error ("faults: " ^ msg))
    else Tl_fault.Schedule.of_spec s

let validate t (r : P.request) =
  let n = P.spec_n r.spec in
  match List.assoc_opt r.problem known_problems with
  | None -> Error (Printf.sprintf "unknown problem %S" r.problem)
  | Some methods when not (List.mem r.method_ methods) ->
    Error
      (Printf.sprintf "problem %S has no method %S" r.problem r.method_)
  | Some _ -> (
    if n > t.cfg.max_n then
      Error
        (Printf.sprintf "instance size %d exceeds the admission limit %d" n
           t.cfg.max_n)
    else
      match
        if r.method_ = "chaos" then Result.map ignore (parse_faults r.faults)
        else Ok ()
      with
      | Error msg -> Error msg
      | Ok () ->
        P.resolve_knobs ~engine:r.engine ~shards:r.shards ~pool:r.pool ~n)

(* ---------- execution ---------- *)

let with_knobs ~mode ~shards ~pool f =
  let sm = !Engine.default_mode
  and ss = !Engine.default_shards
  and sp = !Pool.default_workers in
  Engine.default_mode := mode;
  Engine.default_shards := shards;
  Pool.default_workers := pool;
  Fun.protect
    ~finally:(fun () ->
      Engine.default_mode := sm;
      Engine.default_shards := ss;
      Pool.default_workers := sp)
    f

(* Collect every engine trace of [f] (chaining to any outer sink) to
   report the measured engine rounds per request. *)
let with_trace_collector f =
  let traces = ref [] in
  let saved = !Engine.trace_sink in
  Engine.trace_sink :=
    Some
      (fun tr ->
        traces := tr :: !traces;
        match saved with Some outer -> outer tr | None -> ());
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      let result = f () in
      (result, List.rev !traces))

let must_tree name g =
  if not (Props.is_tree g) then
    failwith (name ^ " via Theorem 12 needs a tree instance")

type partial = {
  p_digest : string;
  p_rounds : int;
  p_ledger : (string * int) list;
  p_valid : bool;
}

let of_report ~graph (r : _ Pipeline.report) =
  {
    p_digest = P.digest_labeling ~graph r.Pipeline.labeling;
    p_rounds = r.Pipeline.total_rounds;
    p_ledger = Round_cost.phases r.Pipeline.cost;
    p_valid = r.Pipeline.valid;
  }

let of_raw ~graph ~problem labeling cost =
  {
    p_digest = P.digest_labeling ~graph labeling;
    p_rounds = Round_cost.total cost;
    p_ledger = Round_cost.phases cost;
    p_valid = Tl_problems.Nec.is_valid problem graph labeling;
  }

(* Flooding to a fixed point from node 0 — the repo's engine-kernel
   workhorse, served straight off the cached semi-graph: warm requests
   hit Topology.compile_cached (and Plan.build_cached in shard mode). *)
let flood inst =
  let sg = Lazy.force inst.sg in
  let topo = Topology.compile_cached sg in
  let n = Graph.n_nodes inst.graph in
  let tr = Trace.create ~label:"serve:flood" () in
  let o =
    Engine.run_until_stable ~trace:tr ~topo
      ~init:(fun v -> v = 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors ->
        s || List.exists (fun (_, _, su) -> su) neighbors)
      ~equal:Bool.equal ~max_rounds:(n + 1) ()
  in
  Span.add_trace tr;
  let cost = Round_cost.create () in
  Round_cost.charge cost "flood" o.Engine.rounds;
  {
    p_digest = P.digest_array (fun b -> if b then 1 else 0) o.Engine.states;
    p_rounds = o.Engine.rounds;
    p_ledger = Round_cost.phases cost;
    p_valid = true;
  }

(* A chaos run builds its own presence-masked views over the instance
   graph (crashes shrink them in place), so it must never touch the
   cached [inst.sg] — warm non-chaos requests keep their snapshot. *)
let chaos (r : P.request) inst =
  let schedule =
    match parse_faults r.faults with
    | Ok s -> s
    | Error msg -> failwith msg
  in
  let problem =
    match r.problem with
    | "flood" -> Tl_fault.Chaos.Flood { source = 0 }
    | _ -> Tl_fault.Chaos.Mis { ids = inst.ids }
  in
  let rep = Tl_fault.Chaos.run ~graph:inst.graph ~problem ~schedule () in
  Span.add_counter "fault:crashes" rep.Tl_fault.Chaos.crashes;
  Span.add_counter "fault:recoveries" rep.Tl_fault.Chaos.recoveries;
  Span.add_counter "fault:drops" rep.Tl_fault.Chaos.drops;
  Span.add_counter "fault:repairs" rep.Tl_fault.Chaos.repairs;
  Span.add_counter "fault:relabeled" rep.Tl_fault.Chaos.relabeled;
  {
    p_digest = Printf.sprintf "%016Lx" rep.Tl_fault.Chaos.digest;
    p_rounds = rep.Tl_fault.Chaos.rounds;
    p_ledger =
      [
        ("chaos", rep.Tl_fault.Chaos.rounds);
        ("repair", rep.Tl_fault.Chaos.repairs);
      ];
    p_valid = rep.Tl_fault.Chaos.valid;
  }

let dispatch (r : P.request) inst =
  let g = inst.graph and ids = inst.ids in
  let a = match r.spec with P.Family { a; _ } -> a | P.Edges _ -> 1 in
  let k = r.k in
  match (r.problem, r.method_) with
  | ("flood" | "mis"), "chaos" -> chaos r inst
  | "flood", _ -> flood inst
  | "mis", "transform" ->
    must_tree "mis" g;
    of_report ~graph:g (Pipeline.mis_on_tree ?k ~tree:g ~ids ())
  | "coloring", "transform" ->
    must_tree "coloring" g;
    of_report ~graph:g (Pipeline.coloring_on_tree ?k ~tree:g ~ids ())
  | "matching", "transform" ->
    of_report ~graph:g (Pipeline.matching_on_graph ?k ~graph:g ~a ~ids ())
  | "edge-coloring", "transform" ->
    of_report ~graph:g (Pipeline.edge_coloring_on_graph ?k ~graph:g ~a ~ids ())
  | "mis", "direct" -> of_report ~graph:g (Pipeline.mis_direct ~graph:g ~ids)
  | "coloring", "direct" ->
    of_report ~graph:g (Pipeline.coloring_direct ~graph:g ~ids)
  | "matching", "direct" ->
    of_report ~graph:g (Pipeline.matching_direct ~graph:g ~ids)
  | "edge-coloring", "direct" ->
    of_report ~graph:g (Pipeline.edge_coloring_direct ~graph:g ~ids)
  | "matching", "baseline" ->
    must_tree "baseline matching" g;
    let labeling, cost = Tl_core.Baseline.matching_on_tree ~tree:g ~ids in
    of_raw ~graph:g ~problem:Tl_problems.Matching.problem labeling cost
  | "edge-coloring", "baseline" ->
    must_tree "baseline edge-coloring" g;
    let labeling, cost = Tl_core.Baseline.edge_coloring_on_tree ~tree:g ~ids in
    of_raw ~graph:g ~problem:Tl_problems.Edge_coloring.problem labeling cost
  | p, m -> failwith (Printf.sprintf "unknown problem/method %s/%s" p m)

let error_message = function
  | Failure msg -> msg
  | Invalid_argument msg -> msg
  | e -> Printexc.to_string e

(* Raised by exec when a post-build admission check fails; answered as
   a bad_request, not a generic failure. *)
exception Inadmissible of string

(* Execute one validated request under its knobs, inside a per-request
   span whose report (phases, round charges, engine child spans) goes
   back to the client on demand. *)
let exec t (r : P.request) ~mode =
  let inst, cache_hit = instance t r.spec in
  (* grid/planar/caterpillar build close to — not exactly — the spec's
     n, so the shard bound admitted against the declared n must be
     re-checked against the graph that was actually built *)
  (match mode with
  | Engine.Shard s when s > Graph.n_nodes inst.graph ->
    raise
      (Inadmissible
         (Printf.sprintf
            "shard count %d exceeds the built instance size %d (the spec's \
             n = %d is approximate for this family)"
            s (Graph.n_nodes inst.graph) (P.spec_n r.spec)))
  | Engine.Proc p when p > Graph.n_nodes inst.graph ->
    raise
      (Inadmissible
         (Printf.sprintf
            "proc count %d exceeds the built instance size %d (the spec's \
             n = %d is approximate for this family)"
            p (Graph.n_nodes inst.graph) (P.spec_n r.spec)))
  | _ -> ());
  let (partial, traces), span =
    Span.run "serve:request" (fun () ->
        Span.set_attr "problem" r.problem;
        Span.set_attr "method" r.method_;
        Span.set_attr "engine" (Engine.mode_to_string mode);
        Span.set_attr "pool" (string_of_int r.pool);
        Span.set_attr "spec" (P.spec_key r.spec);
        Span.add_counter "serve:cache_hit" (if cache_hit then 1 else 0);
        Span.add_counter "serve:cache_miss" (if cache_hit then 0 else 1);
        with_knobs ~mode ~shards:r.shards ~pool:r.pool (fun () ->
            with_trace_collector (fun () -> dispatch r inst)))
  in
  let engine_rounds =
    List.fold_left (fun acc tr -> acc + (Trace.metrics tr).Trace.rounds) 0
      traces
  in
  {
    P.digest = partial.p_digest;
    total_rounds = partial.p_rounds;
    ledger = partial.p_ledger;
    valid = partial.p_valid;
    engine_rounds;
    cache_hit;
    span = (if r.want_span then Some (Report.to_json span) else None);
  }

let knobs_of (r : P.request) =
  Printf.sprintf "%s/%s engine=%s shards=%d pool=%d" r.problem r.method_
    r.engine r.shards r.pool

let record_request (r : P.request) ~outcome ~latency_s =
  Metrics.Recorder.record
    {
      Metrics.Recorder.ts = now ();
      kind = "request";
      key = P.spec_key r.spec;
      detail = knobs_of r;
      outcome;
      latency_s;
    }

(* Error accounting: count, flight-record, and dump the recorder's
   recent past to stderr — a failed request carries its own context out
   of the daemon instead of leaving "it was slow" unanswerable. *)
let fail (r : P.request) ~t0 ~kind msg =
  Metrics.incr m_errors 1;
  record_request r
    ~outcome:("error:" ^ P.error_kind_to_string kind)
    ~latency_s:(now () -. t0);
  Metrics.Recorder.dump ~limit:4 stderr;
  { P.rid = r.id; outcome = P.Error (kind, msg) }

(* Validate and execute an already-admitted job (the request was
   validated at admission, so a validation error here is impossible in
   practice — still handled, for safety). Never raises. *)
let exec_admitted t (r : P.request) =
  let t0 = now () in
  match validate t r with
  | Error msg -> fail r ~t0 ~kind:P.Bad_request msg
  | Ok mode -> (
    match exec t r ~mode with
    | solved ->
      let dt = now () -. t0 in
      Metrics.incr m_served 1;
      (* the aggregate histogram counts exactly the served requests
         (the metrics-smoke invariant); the labeled one splits the
         distribution per (kernel, engine) *)
      Metrics.observe h_latency dt;
      Metrics.observe
        (Metrics.histogram
           ~labels:
             [
               ("problem", r.problem);
               ("engine", Engine.mode_to_string mode);
             ]
           "serve_request_seconds")
        dt;
      record_request r ~outcome:"ok" ~latency_s:dt;
      { P.rid = r.id; outcome = P.Solved solved }
    | exception Inadmissible msg -> fail r ~t0 ~kind:P.Bad_request msg
    | exception e -> fail r ~t0 ~kind:P.Failed (error_message e))

let handle_request t (r : P.request) =
  Metrics.incr m_received 1;
  exec_admitted t r

(* ---------- the admission / batching / drain cycle ---------- *)

let control_response t id = function
  | P.Ping -> { P.rid = id; outcome = P.Pong }
  | P.Stats -> { P.rid = id; outcome = P.Stats_report (stats t) }
  | P.Metrics ->
    {
      P.rid = id;
      outcome = P.Metrics_report (Metrics.snapshot_to_json (Metrics.snapshot ()));
    }
  | P.Tail ->
    {
      P.rid = id;
      outcome =
        P.Tail_report
          (List.map Metrics.Recorder.event_to_json (Metrics.Recorder.tail ()));
    }
  | P.Shutdown ->
    t.shutdown <- true;
    { P.rid = id; outcome = P.Pong }

let handle_lines t lines =
  let lines = Array.of_list lines in
  let n = Array.length lines in
  let slots : P.response option array = Array.make n None in
  let controls = ref [] in
  (* admission *)
  Array.iteri
    (fun i line ->
      match Json.parse line with
      | exception Json.Parse_error msg ->
        slots.(i) <-
          Some { P.rid = ""; outcome = P.Error (P.Bad_request, msg) }
      | j -> (
        match P.incoming_of_json j with
        | Error msg ->
          let rid =
            Option.value ~default:""
              (Option.bind (Json.member "id" j) Json.to_str)
          in
          slots.(i) <- Some { P.rid; outcome = P.Error (P.Bad_request, msg) }
        | Ok (P.Control (id, c)) -> controls := (i, id, c) :: !controls
        | Ok (P.Request r) -> (
          Metrics.incr m_received 1;
          match validate t r with
          | Error msg ->
            Metrics.incr m_errors 1;
            slots.(i) <-
              Some { P.rid = r.id; outcome = P.Error (P.Bad_request, msg) }
          | Ok _mode ->
            if not (Jobq.admit t.queue (i, r)) then begin
              Metrics.incr m_rejected 1;
              slots.(i) <-
                Some
                  {
                    P.rid = r.id;
                    outcome =
                      P.Error
                        ( P.Rejected,
                          Printf.sprintf "queue full (depth %d)"
                            (Jobq.depth t.queue) );
                  }
            end)))
    lines;
  (* drain, batching same-topology jobs back to back *)
  Metrics.set_gauge g_jobq (Jobq.length t.queue);
  let batch = Jobq.drain t.queue in
  if batch <> [] then begin
    let len = List.length batch in
    Metrics.incr m_batches 1;
    t.max_batch <- max t.max_batch len;
    Metrics.gauge_max g_max_batch len;
    Metrics.observe h_batch (float_of_int len)
  end;
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (i, r) ->
      let key = P.spec_key r.P.spec in
      Hashtbl.replace by_key key
        ((i, r) :: Option.value ~default:[] (Hashtbl.find_opt by_key key)))
    batch;
  let done_keys = Hashtbl.create 16 in
  List.iter
    (fun (_, r) ->
      let key = P.spec_key r.P.spec in
      if not (Hashtbl.mem done_keys key) then begin
        Hashtbl.add done_keys key ();
        let group = List.rev (Hashtbl.find by_key key) in
        List.iter (fun (i, r) -> slots.(i) <- Some (exec_admitted t r)) group
      end)
    batch;
  Metrics.set_gauge g_jobq (Jobq.length t.queue);
  (* controls observe the cycle's post-batch state *)
  List.iter
    (fun (i, id, c) -> slots.(i) <- Some (control_response t id c))
    (List.rev !controls);
  Array.to_list slots
  |> List.filter_map (Option.map (fun r -> Json.to_line (P.response_to_json r)))

(* ---------- IO loops ---------- *)

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* Socket I/O rides the process backend's transport loops: reads restart
   on EINTR and park in select on EAGAIN, writes survive partial
   delivery — one hardened implementation for daemon, client and worker
   channels alike. *)
let run_fd t fd_in fd_out =
  let chunk = Bytes.create 65536 in
  let tail = Buffer.create 4096 in
  let eof = ref false in
  let read_once () =
    let n = Tl_proc.Transport.read_some fd_in chunk 0 (Bytes.length chunk) in
    if n = 0 then eof := true else Buffer.add_subbytes tail chunk 0 n
  in
  let readable_now () =
    match restart_on_eintr (fun () -> Unix.select [ fd_in ] [] [] 0.0) with
    | [ _ ], _, _ -> true
    | _ -> false
  in
  (* complete lines out of [tail], the partial last line kept buffered *)
  let split_lines () =
    let s = Buffer.contents tail in
    let rec go start acc =
      match String.index_from_opt s start '\n' with
      | None ->
        Buffer.clear tail;
        Buffer.add_substring tail s start (String.length s - start);
        List.rev acc
      | Some nl -> go (nl + 1) (String.sub s start (nl - start) :: acc)
    in
    go 0 []
  in
  while not (!eof || t.shutdown) do
    (* block for input, then greedily take everything already available
       — that burst is one admission/batching cycle *)
    ignore (restart_on_eintr (fun () -> Unix.select [ fd_in ] [] [] (-1.0)));
    read_once ();
    while (not !eof) && readable_now () do
      read_once ()
    done;
    let lines = split_lines () in
    let lines =
      if !eof && Buffer.length tail > 0 then begin
        let last = Buffer.contents tail in
        Buffer.clear tail;
        lines @ [ last ]
      end
      else lines
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    if lines <> [] then
      List.iter
        (fun resp -> Tl_proc.Transport.write_string fd_out resp)
        (handle_lines t lines)
  done

let serve_stdio t = run_fd t Unix.stdin Unix.stdout

(* Only replace what is provably a stale socket file: probing with a
   connect distinguishes an abandoned socket (ECONNREFUSED) from a live
   daemon, which must not have its socket unlinked out from under it. *)
let claim_socket_path path =
  match Unix.lstat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | { Unix.st_kind = Unix.S_SOCK; _ } ->
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close probe with Unix.Unix_error _ -> ())
        (fun () ->
          match Unix.connect probe (Unix.ADDR_UNIX path) with
          | () -> true
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> false)
    in
    if live then
      failwith
        (Printf.sprintf
           "socket %s is in use by a running daemon (shut it down or pick \
            another --socket path)"
           path)
    else Unix.unlink path
  | _ ->
    failwith
      (Printf.sprintf
         "refusing to replace %s: it exists and is not a socket" path)

let listen_unix t ~path =
  claim_socket_path path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      while not t.shutdown do
        let client, _ = restart_on_eintr (fun () -> Unix.accept sock) in
        (* a dying client must not kill the daemon *)
        (try run_fd t client client
         with Unix.Unix_error _ | Sys_error _ -> ());
        try Unix.close client with Unix.Unix_error _ -> ()
      done)
