(** The tl_serve daemon: admission, batching, execution, IO loops.

    One server value owns a bounded {!Jobq} (the backpressure boundary)
    and a bounded instance cache (graph + ID assignment + lazily-built
    semi-graph per {!Protocol.spec_key}). Running statistics live in the
    process-wide {!Tl_obs.Metrics} registry (enabled by {!create}, which
    also bridges the engine/pool hooks): the [stats] control reports
    per-server deltas against the registry values captured at creation,
    the [metrics] control scrapes the whole registry as a
    [tl_metrics = 1] snapshot, and the [tail] control returns the flight
    recorder's recent request/exchange events (also dumped to stderr
    automatically when a request fails). The
    daemon is {e single-threaded by design}: requests are admitted and
    executed on one domain, and parallelism lives below, in the engine's
    domain pool and shard backend — exactly the knobs a request names.

    {2 Cycle semantics}

    The IO loops ({!run_fd}, {!listen_unix}) work in {e cycles}: block
    until input is available, greedily read every complete line already
    buffered, then hand the burst to {!handle_lines}. A cycle

    + parses each line; malformed JSON or an unknown/invalid request is
      answered immediately with a [bad_request] error;
    + admits valid requests to the job queue — a request arriving on a
      full queue is answered immediately with a structured [rejected]
      error (the backpressure contract: never a hang, never a drop);
    + drains the queue, {e batching} jobs by {!Protocol.spec_key}:
      groups run in first-seen order, members in admission order, so
      same-topology requests reuse one cached instance (and, through
      it, {!Tl_engine.Topology.compile_cached} snapshots and shard
      {!Tl_shard.Plan}s) back to back;
    + answers control messages ([ping]/[stats]/[shutdown] — evaluated
      after the cycle's jobs; [shutdown] acks with a pong and stops the
      loop after the cycle);
    + emits every response in arrival order of its request.

    Results are bit-identical to direct one-shot runs for every
    (engine, shards, pool) knob: execution scopes the engine defaults to
    the request and runs the very same pipelines, and cache reuse only
    skips instance construction, never changes inputs. *)

type config = {
  depth : int;  (** job-queue depth (backpressure threshold) *)
  cache_slots : int;  (** instance-cache capacity, [0] disables caching *)
  max_n : int;  (** admission guard: largest accepted instance size *)
}

val default_config : config
(** depth 64, cache_slots 32, max_n 2_000_000. *)

type t

val create : ?config:config -> unit -> t
(** Raises [Invalid_argument] on [depth < 1], [cache_slots < 0] or
    [max_n < 1]. *)

val config : t -> config
val shutdown_requested : t -> bool

val stats : t -> (string * int) list
(** Running counters: [received] (solve requests), [served], [rejected],
    [errors], [batches], [max_batch], [queue_depth], [serve:cache_hit],
    [serve:cache_miss], plus the process-wide engine cache counters
    [topo:cache_hit]/[topo:cache_miss] ({!Tl_engine.Topology.cache_stats})
    and [plan:cache_hit]/[plan:cache_miss] ({!Tl_shard.Plan.cache_stats}). *)

val handle_request : t -> Protocol.request -> Protocol.response
(** Validate and execute one request directly (no queue, no batching) —
    the pure execution path behind every served job, exposed for the
    differential tests and the load generator's in-process mode. Never
    raises: failures come back as [Error] outcomes. *)

val handle_lines : t -> string list -> string list
(** One full admission / batching / drain cycle over a burst of input
    lines, returning the newline-terminated response lines in arrival
    order. This is exactly what the IO loops execute per cycle. *)

val run_fd : t -> Unix.file_descr -> Unix.file_descr -> unit
(** Serve one connection: read ndjson requests from the first
    descriptor, write responses to the second, until EOF or a shutdown
    request. A final unterminated line at EOF is processed as a line.
    Neither descriptor is closed. *)

val serve_stdio : t -> unit
(** [run_fd] over stdin/stdout — the pipe-friendly daemon mode. *)

val listen_unix : t -> path:string -> unit
(** Bind a Unix-domain socket at [path], then accept and serve one
    connection at a time until some client sends [shutdown]. The socket
    file is removed on exit. A client error/disconnect never kills the
    daemon. An existing file at [path] is probed with a connect: only a
    provably stale socket (nothing accepting) is replaced — raises
    [Failure] if a live daemon answers there, or if the path holds a
    non-socket file. *)
