module Semi_graph = Tl_graph.Semi_graph
module Topology = Tl_engine.Topology

type shard = {
  id : int;
  owned : int array;
  n_owned : int;
  n_local : int;
  l2g : int array;
  off : int array;
  adj : int array;
  eid : int array;
  halo_off : int array;
  halo_adj : int array;
  xoff : int array;
  xshard : int array;
  xslot : int array;
  cut_edges : int;
}

type t = {
  topo : Topology.t;
  shards : shard array;
  owner : int array;
}

(* Partitioning is the pool's fixed-contiguous-chunk discipline applied to
   [present_nodes]: shard [s] owns slice [s*chunk, min np ((s+1)*chunk)).
   Everything downstream (halo discovery order, route order) is a
   deterministic scan of that slice, so the plan is a pure function of
   (topology, shard count). *)
let build ~topo ~shards =
  let np = topo.Topology.n_present in
  let s_count = max 1 (min shards (max 1 np)) in
  let chunk = if np = 0 then 0 else (np + s_count - 1) / s_count in
  let n = topo.Topology.n_base in
  let owner = Array.make n (-1) in
  let slot = Array.make n (-1) in
  (* pass 0: ownership of every present node, before any shard is built *)
  for s = 0 to s_count - 1 do
    let lo = min np (s * chunk) and hi = min np ((s + 1) * chunk) in
    for i = lo to hi - 1 do
      let v = topo.Topology.present_nodes.(i) in
      owner.(v) <- s;
      slot.(v) <- i - lo
    done
  done;
  let g_off = topo.Topology.off
  and g_adj = topo.Topology.adj
  and g_eid = topo.Topology.eid in
  (* scratch: global id -> local index within the shard being built *)
  let g2l = Array.make n (-1) in
  let build_shard s =
    let lo = min np (s * chunk) and hi = min np ((s + 1) * chunk) in
    let n_owned = hi - lo in
    let owned = Array.sub topo.Topology.present_nodes lo n_owned in
    Array.iteri (fun l v -> g2l.(v) <- l) owned;
    (* pass 1 over owned rows: degrees, halo discovery, cut edges *)
    let halo = ref [] and n_halo = ref 0 and cut = ref 0 in
    let off = Array.make (n_owned + 1) 0 in
    for l = 0 to n_owned - 1 do
      let v = owned.(l) in
      off.(l + 1) <- g_off.(v + 1) - g_off.(v);
      for j = g_off.(v) to g_off.(v + 1) - 1 do
        let u = g_adj.(j) in
        if owner.(u) <> s then begin
          incr cut;
          if g2l.(u) < 0 then begin
            g2l.(u) <- n_owned + !n_halo;
            incr n_halo;
            halo := u :: !halo
          end
        end
      done
    done;
    for l = 0 to n_owned - 1 do
      off.(l + 1) <- off.(l) + off.(l + 1)
    done;
    let n_local = n_owned + !n_halo in
    let l2g = Array.make n_local 0 in
    Array.blit owned 0 l2g 0 n_owned;
    List.iter
      (fun u ->
        l2g.(g2l.(u)) <- u)
      !halo;
    (* pass 2: fill the compact CSR and count halo-row degrees *)
    let m = off.(n_owned) in
    let adj = Array.make m 0 and eid = Array.make m 0 in
    let halo_off = Array.make (!n_halo + 1) 0 in
    for l = 0 to n_owned - 1 do
      let v = owned.(l) in
      let pos = ref off.(l) in
      for j = g_off.(v) to g_off.(v + 1) - 1 do
        let lu = g2l.(g_adj.(j)) in
        adj.(!pos) <- lu;
        eid.(!pos) <- g_eid.(j);
        if lu >= n_owned then
          halo_off.(lu - n_owned + 1) <- halo_off.(lu - n_owned + 1) + 1;
        incr pos
      done
    done;
    for h = 0 to !n_halo - 1 do
      halo_off.(h + 1) <- halo_off.(h) + halo_off.(h + 1)
    done;
    let halo_adj = Array.make halo_off.(!n_halo) 0 in
    let halo_fill = Array.copy halo_off in
    for l = 0 to n_owned - 1 do
      for j = off.(l) to off.(l + 1) - 1 do
        let lu = adj.(j) in
        if lu >= n_owned then begin
          let h = lu - n_owned in
          halo_adj.(halo_fill.(h)) <- l;
          halo_fill.(h) <- halo_fill.(h) + 1
        end
      done
    done;
    (* reset scratch for the next shard *)
    Array.iter (fun v -> g2l.(v) <- -1) owned;
    List.iter (fun u -> g2l.(u) <- -1) !halo;
    {
      id = s;
      owned;
      n_owned;
      n_local;
      l2g;
      off;
      adj;
      eid;
      halo_off;
      halo_adj;
      xoff = [||];
      xshard = [||];
      xslot = [||];
      cut_edges = !cut;
    }
  in
  let shards_arr = Array.init s_count build_shard in
  (* Exchange routes: walk target shards in ascending order, their halo
     slots in ascending order, and append each (target, slot) to the
     owner's route list for the source node. A stable counting sort by
     source local then turns the per-shard append lists into CSR routes
     whose per-node order is ascending (target, slot) — the order the
     executor uses, making the exchange schedule deterministic. *)
  let route_src = Array.make s_count [||]
  and route_dst = Array.make s_count [||]
  and route_slot = Array.make s_count [||]
  and route_n = Array.make s_count 0 in
  (* capacity: total halo references to each owner shard *)
  let route_cap = Array.make s_count 0 in
  for t = 0 to s_count - 1 do
    let sh = shards_arr.(t) in
    for h = sh.n_owned to sh.n_local - 1 do
      let s = owner.(sh.l2g.(h)) in
      route_cap.(s) <- route_cap.(s) + 1
    done
  done;
  for s = 0 to s_count - 1 do
    route_src.(s) <- Array.make (max 1 route_cap.(s)) 0;
    route_dst.(s) <- Array.make (max 1 route_cap.(s)) 0;
    route_slot.(s) <- Array.make (max 1 route_cap.(s)) 0
  done;
  for t = 0 to s_count - 1 do
    let sh = shards_arr.(t) in
    for h = sh.n_owned to sh.n_local - 1 do
      let v = sh.l2g.(h) in
      let s = owner.(v) in
      let k = route_n.(s) in
      route_src.(s).(k) <- slot.(v);
      route_dst.(s).(k) <- t;
      route_slot.(s).(k) <- h;
      route_n.(s) <- k + 1
    done
  done;
  let shards_arr =
    Array.map
      (fun sh ->
        let s = sh.id in
        let nr = route_n.(s) in
        let xoff = Array.make (sh.n_owned + 1) 0 in
        for k = 0 to nr - 1 do
          xoff.(route_src.(s).(k) + 1) <- xoff.(route_src.(s).(k) + 1) + 1
        done;
        for l = 0 to sh.n_owned - 1 do
          xoff.(l + 1) <- xoff.(l) + xoff.(l + 1)
        done;
        let xshard = Array.make nr 0 and xslot = Array.make nr 0 in
        let fill = Array.copy xoff in
        for k = 0 to nr - 1 do
          let l = route_src.(s).(k) in
          xshard.(fill.(l)) <- route_dst.(s).(k);
          xslot.(fill.(l)) <- route_slot.(s).(k);
          fill.(l) <- fill.(l) + 1
        done;
        { sh with xoff; xshard; xslot })
      shards_arr
  in
  { topo; shards = shards_arr; owner }

(* ---------- plan cache ----------

   Same keying discipline as [Topology.compile_cached]: the semi-graph
   stamp identifies the view, the generation bumps on any mask mutation,
   and the shard count distinguishes plans over one snapshot. Unlike the
   topology cache this one is only ever reached from the coordinating
   domain (plans are built during run setup, never inside pool tasks),
   so no mutex is needed. *)

let cache : (int * int * int, t) Hashtbl.t = Hashtbl.create 16
let cache_order : (int * int * int) Queue.t = Queue.create ()
let cache_limit = 16

(* Process-wide hit/miss counters, same contract as
   [Topology.cache_stats]: never reset by [clear_cache], surfaced by the
   serving layer's stats report and the cache-coherence tests. *)
let cache_hits = ref 0
let cache_misses = ref 0
let cache_stats () = (!cache_hits, !cache_misses)

let clear_cache () =
  Hashtbl.reset cache;
  Queue.clear cache_order

let build_cached ~topo ~shards =
  let sg = topo.Topology.sg in
  let key = (Semi_graph.stamp sg, Semi_graph.generation sg, shards) in
  match Hashtbl.find_opt cache key with
  | Some p when p.topo == topo ->
    incr cache_hits;
    (p, true)
  | _ ->
    incr cache_misses;
    let p = build ~topo ~shards in
    if not (Hashtbl.mem cache key) then begin
      while Queue.length cache_order >= cache_limit do
        Hashtbl.remove cache (Queue.pop cache_order)
      done;
      Hashtbl.add cache key p;
      Queue.push key cache_order
    end
    else Hashtbl.replace cache key p;
    (p, false)

let n_shards t = Array.length t.shards

let cut_edges_total t =
  Array.fold_left (fun acc sh -> acc + sh.cut_edges) 0 t.shards

(* ---------- shard (de)serialization ----------

   Binary codec used by the tl_proc backend to ship each worker its
   sub-CSR once at startup (the prologue frame). Self-contained — tl_proc
   depends on this library, not the other way round — and versioned so a
   coordinator and worker built from different trees fail loudly instead
   of misparsing. Layout: magic "TLS", version byte, four u32 scalars
   (id, n_owned, n_local, cut_edges), then the nine int arrays each as
   u32 length + 8-byte little-endian entries. [owned] is not stored: it
   is always the first [n_owned] entries of [l2g]. *)

let shard_codec_version = 1

let enc_u32 b pos v =
  Bytes.set_int32_le b pos (Int32.of_int v)

let dec_u32 b pos = Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

let encode_shard sh =
  let arrays =
    [|
      sh.l2g; sh.off; sh.adj; sh.eid; sh.halo_off; sh.halo_adj; sh.xoff;
      sh.xshard; sh.xslot;
    |]
  in
  let size =
    4 + 16
    + Array.fold_left (fun acc a -> acc + 4 + (8 * Array.length a)) 0 arrays
  in
  let b = Bytes.create size in
  Bytes.set b 0 'T';
  Bytes.set b 1 'L';
  Bytes.set b 2 'S';
  Bytes.set b 3 (Char.chr shard_codec_version);
  enc_u32 b 4 sh.id;
  enc_u32 b 8 sh.n_owned;
  enc_u32 b 12 sh.n_local;
  enc_u32 b 16 sh.cut_edges;
  let pos = ref 20 in
  Array.iter
    (fun a ->
      enc_u32 b !pos (Array.length a);
      pos := !pos + 4;
      Array.iter
        (fun v ->
          Bytes.set_int64_le b !pos (Int64.of_int v);
          pos := !pos + 8)
        a)
    arrays;
  assert (!pos = size);
  b

let decode_shard b =
  let len = Bytes.length b in
  let bad fmt = Printf.ksprintf invalid_arg ("Plan.decode_shard: " ^^ fmt) in
  if len < 20 then bad "truncated header (%d bytes)" len;
  if Bytes.get b 0 <> 'T' || Bytes.get b 1 <> 'L' || Bytes.get b 2 <> 'S' then
    bad "bad magic";
  let ver = Char.code (Bytes.get b 3) in
  if ver <> shard_codec_version then
    bad "version mismatch (got %d, expected %d)" ver shard_codec_version;
  let id = dec_u32 b 4
  and n_owned = dec_u32 b 8
  and n_local = dec_u32 b 12
  and cut_edges = dec_u32 b 16 in
  let pos = ref 20 in
  let read_array () =
    if !pos + 4 > len then bad "truncated at array header (offset %d)" !pos;
    let k = dec_u32 b !pos in
    pos := !pos + 4;
    if !pos + (8 * k) > len then
      bad "truncated array body (offset %d, want %d entries)" !pos k;
    let a =
      Array.init k (fun i -> Int64.to_int (Bytes.get_int64_le b (!pos + (8 * i))))
    in
    pos := !pos + (8 * k);
    a
  in
  let l2g = read_array () in
  let off = read_array () in
  let adj = read_array () in
  let eid = read_array () in
  let halo_off = read_array () in
  let halo_adj = read_array () in
  let xoff = read_array () in
  let xshard = read_array () in
  let xslot = read_array () in
  if !pos <> len then bad "trailing garbage (%d bytes)" (len - !pos);
  if n_owned < 0 || n_local < n_owned then
    bad "inconsistent sizes (n_owned=%d n_local=%d)" n_owned n_local;
  if Array.length l2g <> n_local then bad "l2g length mismatch";
  if Array.length off <> n_owned + 1 then bad "off length mismatch";
  if Array.length adj <> Array.length eid then bad "adj/eid length mismatch";
  if Array.length adj <> off.(n_owned) then bad "adj length disagrees with off";
  if Array.length halo_off <> n_local - n_owned + 1 then
    bad "halo_off length mismatch";
  if Array.length halo_adj <> halo_off.(n_local - n_owned) then
    bad "halo_adj length disagrees with halo_off";
  if Array.length xoff <> n_owned + 1 then bad "xoff length mismatch";
  if Array.length xshard <> Array.length xslot then
    bad "xshard/xslot length mismatch";
  if Array.length xshard <> xoff.(n_owned) then
    bad "xshard length disagrees with xoff";
  {
    id;
    owned = Array.sub l2g 0 n_owned;
    n_owned;
    n_local;
    l2g;
    off;
    adj;
    eid;
    halo_off;
    halo_adj;
    xoff;
    xshard;
    xslot;
    cut_edges;
  }

let imbalance_permille t =
  let np = t.topo.Topology.n_present in
  if np = 0 then 1000
  else begin
    let s_count = Array.length t.shards in
    let mx = Array.fold_left (fun acc sh -> max acc sh.n_owned) 0 t.shards in
    mx * s_count * 1000 / np
  end
