(** Shard plans: a compiled {!Tl_engine.Topology} partitioned into [S]
    contiguous shards with ghost (halo) vertices and precomputed
    exchange routes.

    A plan is the static half of the sharded execution backend
    ({!Shard}): it is built once per (topology, shard count) pair and
    shared by every run over that snapshot. Partitioning slices the
    topology's [present_nodes] array into [S] fixed contiguous chunks —
    the same deterministic discipline as {!Tl_engine.Pool}'s chunking —
    so shard membership is a pure function of [(n_present, S, index)],
    never of runtime timing.

    Each shard gets a {e compact} view of its part of the graph:

    - a local index space [0 .. n_local): owned nodes first
      ([0 .. n_owned)), then the shard's {e halo} — one ghost slot per
      remote node adjacent to an owned node, in first-discovery order of
      the owned CSR rows;
    - a sub-CSR over the owned rows whose [adj] entries are {e local}
      indices (owned or halo), plus the global edge id per slot — the
      executor's hot loop therefore touches only shard-local arrays of
      size [O(n_owned + halo)], which is what makes a shard's working
      set cache-resident where the monolithic snapshot is not;
    - reverse {e halo rows}: for every halo slot, the owned locals
      adjacent to it — used to grow the shard's active set when a ghost
      value changes during an exchange;
    - {e exchange routes}: for every owned node, the (target shard,
      target halo slot) pairs that must receive its state when it
      changes, in ascending target order.

    The local index spaces deliberately mirror a distributed memory
    layout: nothing in a shard's arrays references another shard's
    address space except through the routes. *)

type shard = private {
  id : int;
  owned : int array;
      (** Global ids of the owned nodes, ascending — a contiguous slice
          of the topology's [present_nodes]. *)
  n_owned : int;
  n_local : int;  (** owned + halo *)
  l2g : int array;
      (** local index -> global node id, length [n_local]. Entries
          [0 .. n_owned) equal [owned]; the rest are the halo. *)
  off : int array;  (** sub-CSR row offsets over owned locals, length
                        [n_owned + 1] *)
  adj : int array;  (** neighbor {e local} index per slot *)
  eid : int array;  (** global edge id per slot *)
  halo_off : int array;
      (** halo-row offsets, length [n_local - n_owned + 1]; row [h]
          describes halo local [n_owned + h] *)
  halo_adj : int array;  (** owned locals adjacent to each halo slot *)
  xoff : int array;
      (** exchange-route offsets per owned local, length [n_owned + 1] *)
  xshard : int array;  (** route target shard id *)
  xslot : int array;  (** route target halo slot (local index there) *)
  cut_edges : int;
      (** CSR slots of owned rows whose neighbor is remote, i.e. edges
          leaving this shard (a cross edge is counted by both of its
          endpoint shards). *)
}

type t = private {
  topo : Tl_engine.Topology.t;
  shards : shard array;
  owner : int array;
      (** global node id -> owning shard, [-1] for absent nodes *)
}

val build : topo:Tl_engine.Topology.t -> shards:int -> t
(** Partition a snapshot into [max 1 (min shards n_present)] shards.
    [O(n + m)] time and memory. Deterministic: the same topology and
    shard count always produce the identical plan. *)

val build_cached : topo:Tl_engine.Topology.t -> shards:int -> t * bool
(** {!build} memoized on the view identity
    [(Semi_graph.stamp, Semi_graph.generation, shards)] — the same
    keying discipline as {!Tl_engine.Topology.compile_cached}, so
    repeated runtime phases over one snapshot (color-reduction loops,
    star families) reuse one plan. Returns the plan and whether it was
    a cache hit. Bounded FIFO (16 plans); must only be called from the
    coordinating domain. *)

val clear_cache : unit -> unit

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!build_cached} since process start — the same
    contract as {!Tl_engine.Topology.cache_stats}: the counters are
    never cleared by {!clear_cache}, so callers that need per-window
    deltas (the serving layer's per-request cache report) subtract
    snapshots. *)

val n_shards : t -> int
val cut_edges_total : t -> int

val encode_shard : shard -> bytes
(** Versioned binary image of one shard's sub-CSR (magic ["TLS"]), used
    by the process backend's topology prologue frame. [decode_shard] is
    its exact inverse. *)

val decode_shard : bytes -> shard
(** Inverse of {!encode_shard}. Raises [Invalid_argument] with a
    [Plan.decode_shard:] message on truncation, bad magic, version
    mismatch, trailing bytes, or inconsistent array lengths — never
    returns a structurally invalid shard. *)

val imbalance_permille : t -> int
(** [max_s n_owned(s) * shards * 1000 / n_present], i.e. 1000 for a
    perfectly balanced partition; 1000 when the plan is empty. *)
