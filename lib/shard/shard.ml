module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology
module Trace = Tl_engine.Trace
module Pool = Tl_engine.Pool
module Span = Tl_obs.Span
module Metrics = Tl_obs.Metrics

let now = Unix.gettimeofday

(* Registry metrics (lazy so an unused backend never registers). All
   observations happen on the coordinating domain, guarded by
   [Metrics.enabled] — a disabled registry costs one Atomic.get per
   round here. *)
let m_exchange_s = lazy (Metrics.histogram "shard_exchange_seconds")
let m_halo_words = lazy (Metrics.counter "shard_halo_words_total")
let m_runs = lazy (Metrics.counter "shard_runs_total")

let record tr ~round ~active ~changed ~unhalted ~t0 =
  Option.iter
    (fun t ->
      Trace.record t
        { Trace.round; active; changed; unhalted; wall_s = now () -. t0 })
    tr

(* Per-shard mutable run state. Everything the hot loop touches is local
   to the shard and indexed by local ids, so a shard's working set is
   O(n_owned + halo) — cache-resident where the monolithic stepper's
   global arrays are not. The out_* arrays are the flat preallocated
   halo buffer: (target shard, target ghost slot, source local) triples
   appended during commit and drained during the exchange. Capacity is
   the shard's total route count — each owned node appends its routes at
   most once per round. *)
type 'state sctx = {
  sh : Plan.shard;
  st : 'state array;  (* n_local: owned states, then ghost copies *)
  nx : 'state array;  (* n_owned scratch, written by the compute phase *)
  mutable active : int array;  (* active owned locals, [0 .. n_active) *)
  mutable n_active : int;
  mutable pending : int array;  (* next round's active set being built *)
  mutable n_pending : int;
  dirty : bool array;  (* membership bitmap for [pending] *)
  out_dst : int array;
  out_slot : int array;
  out_src : int array;
  mutable n_out : int;
  mutable halo_words : int;  (* total exchanged (slot, state) messages *)
  mutable exchange_rounds : int;  (* rounds in which this shard sent *)
}

let make_ctx sh states =
  let n_owned = sh.Plan.n_owned and n_local = sh.Plan.n_local in
  let st = Array.init n_local (fun l -> states.(sh.Plan.l2g.(l))) in
  let routes = sh.Plan.xoff.(n_owned) in
  {
    sh;
    st;
    nx = Array.sub st 0 n_owned;
    active = Array.init n_owned (fun l -> l);
    n_active = n_owned;
    pending = Array.make (max 1 n_owned) 0;
    n_pending = 0;
    dirty = Array.make (max 1 n_owned) false;
    out_dst = Array.make (max 1 routes) 0;
    out_slot = Array.make (max 1 routes) 0;
    out_src = Array.make (max 1 routes) 0;
    n_out = 0;
    halo_words = 0;
    exchange_rounds = 0;
  }

(* Local step over the shard's active set. Neighbor triples carry global
   node/edge ids in the same ascending incident order as the monolithic
   stepper (the plan preserves CSR row order), so [step] cannot tell the
   backends apart. Bounds are established by the plan invariants, hence
   the unsafe accesses in this loop only. *)
let compute_shard c step round =
  let sh = c.sh in
  let st = c.st and nx = c.nx and active = c.active in
  let off = sh.Plan.off
  and adj = sh.Plan.adj
  and eid = sh.Plan.eid
  and l2g = sh.Plan.l2g in
  for i = 0 to c.n_active - 1 do
    let l = Array.unsafe_get active i in
    let acc = ref [] in
    let lo = Array.unsafe_get off l in
    let j = ref (Array.unsafe_get off (l + 1) - 1) in
    while !j >= lo do
      let u = Array.unsafe_get adj !j in
      acc :=
        ( Array.unsafe_get l2g u,
          Array.unsafe_get eid !j,
          Array.unsafe_get st u )
        :: !acc;
      decr j
    done;
    Array.unsafe_set nx l
      (step ~round ~node:(Array.unsafe_get l2g l) (Array.unsafe_get st l)
         ~neighbors:!acc)
  done

let mark c l =
  if not (Array.unsafe_get c.dirty l) then begin
    Array.unsafe_set c.dirty l true;
    Array.unsafe_set c.pending c.n_pending l;
    c.n_pending <- c.n_pending + 1
  end

(* Commit phase for one shard: publish changed states, dirty the owned
   part of the frontier, and append exchange routes for changed boundary
   nodes. Runs on the coordinating domain in ascending shard order. *)
let commit c ~equal ~sched ~on_change =
  let changed = ref 0 in
  let sh = c.sh in
  let st = c.st and nx = c.nx and active = c.active in
  let off = sh.Plan.off and adj = sh.Plan.adj in
  let xoff = sh.Plan.xoff
  and xshard = sh.Plan.xshard
  and xslot = sh.Plan.xslot in
  let l2g = sh.Plan.l2g and n_owned = sh.Plan.n_owned in
  for i = 0 to c.n_active - 1 do
    let l = Array.unsafe_get active i in
    let s' = Array.unsafe_get nx l in
    if not (equal s' (Array.unsafe_get st l)) then begin
      incr changed;
      Array.unsafe_set st l s';
      on_change (Array.unsafe_get l2g l) s';
      (match sched with
      | Engine.Full_scan -> ()
      | Engine.Active_set ->
        mark c l;
        for j = Array.unsafe_get off l to Array.unsafe_get off (l + 1) - 1 do
          let u = Array.unsafe_get adj j in
          if u < n_owned then mark c u
        done);
      for x = Array.unsafe_get xoff l to Array.unsafe_get xoff (l + 1) - 1 do
        let k = c.n_out in
        Array.unsafe_set c.out_dst k (Array.unsafe_get xshard x);
        Array.unsafe_set c.out_slot k (Array.unsafe_get xslot x);
        Array.unsafe_set c.out_src k l;
        c.n_out <- k + 1
      done
    end
  done;
  !changed

(* Fault-injection link hook, owned by Tl_fault.Injector (above this
   library in the DAG). Consulted per halo message only while armed —
   [drop ~round ~src ~dst] returning [true] suppresses the delivery of
   one (src shard -> dst shard) boundary update that round: the target's
   ghost slot keeps its stale value and its pending set is not grown.
   Because exchange routes fire only on change, a dropped message is
   {e lost} (the owner re-sends only on its next change) — exactly the
   failure the repair layer exists to heal. Disarmed ([None], default)
   the exchange runs the original unchecked loop. *)
let fault_drop_hook : (round:int -> src:int -> dst:int -> bool) option ref =
  ref None

(* Batched boundary exchange, ascending shard order: drain each shard's
   out buffer into the target shards' ghost slots, growing their pending
   sets through the halo rows. Ghost slots are only written here —
   between the barrier and the next compute phase — so the compute phase
   always reads a consistent frontier. *)
let deliver ctxs c ~sched b =
  let ct = Array.unsafe_get ctxs (Array.unsafe_get c.out_dst b) in
  let slot = Array.unsafe_get c.out_slot b in
  Array.unsafe_set ct.st slot
    (Array.unsafe_get c.st (Array.unsafe_get c.out_src b));
  match sched with
  | Engine.Full_scan -> ()
  | Engine.Active_set ->
    let tsh = ct.sh in
    let h = slot - tsh.Plan.n_owned in
    for j = tsh.Plan.halo_off.(h) to tsh.Plan.halo_off.(h + 1) - 1 do
      mark ct (Array.unsafe_get tsh.Plan.halo_adj j)
    done

let exchange ctxs ~sched ~round =
  match !fault_drop_hook with
  | None ->
    for s = 0 to Array.length ctxs - 1 do
      let c = ctxs.(s) in
      let n = c.n_out in
      if n > 0 then begin
        c.halo_words <- c.halo_words + n;
        c.exchange_rounds <- c.exchange_rounds + 1;
        for b = 0 to n - 1 do
          deliver ctxs c ~sched b
        done;
        c.n_out <- 0
      end
    done
  | Some drop ->
    for s = 0 to Array.length ctxs - 1 do
      let c = ctxs.(s) in
      let n = c.n_out in
      if n > 0 then begin
        c.exchange_rounds <- c.exchange_rounds + 1;
        let delivered = ref 0 in
        for b = 0 to n - 1 do
          if not (drop ~round ~src:s ~dst:(Array.unsafe_get c.out_dst b))
          then begin
            incr delivered;
            deliver ctxs c ~sched b
          end
        done;
        (* halo_words counts messages actually delivered *)
        c.halo_words <- c.halo_words + !delivered;
        c.n_out <- 0
      end
    done

(* Swap in the pending set (Active_set only). Mirrors the engine's
   dense-frontier rebuild: when the set is a constant fraction of the
   shard, emit it ascending from the bitmap for compute locality —
   order never affects computed states. *)
let advance c =
  let k = c.n_pending in
  let n_owned = c.sh.Plan.n_owned in
  let dirty = c.dirty in
  if k * 8 >= n_owned then begin
    let idx = ref 0 in
    for l = 0 to n_owned - 1 do
      if Array.unsafe_get dirty l then begin
        Array.unsafe_set dirty l false;
        Array.unsafe_set c.pending !idx l;
        incr idx
      end
    done
  end
  else
    for i = 0 to k - 1 do
      Array.unsafe_set dirty (Array.unsafe_get c.pending i) false
    done;
  let old = c.active in
  c.active <- c.pending;
  c.pending <- old;
  c.n_active <- k;
  c.n_pending <- 0

let total_active ctxs =
  Array.fold_left (fun acc c -> acc + c.n_active) 0 ctxs

(* One full round: local step (optionally fanned over the pool),
   sequential commit, batched exchange, barrier, active-set advance.
   [exch_acc] accumulates the run's exchange wall-time for the flight
   recorder; the per-round time also feeds the exchange histogram. *)
let exec_round ctxs ~pool ~p_eff ~step ~round ~sched ~equal ~on_change
    ~exch_acc =
  if p_eff > 1 then
    ignore
      (Pool.map pool ~tasks:ctxs ~f:(fun ~worker:_ ~index:_ c ->
           compute_shard c step round))
  else
    Array.iter
      (fun c -> if c.n_active > 0 then compute_shard c step round)
      ctxs;
  let changed = ref 0 in
  Array.iter
    (fun c -> changed := !changed + commit c ~equal ~sched ~on_change)
    ctxs;
  (if Metrics.enabled () then begin
     let tx = now () in
     exchange ctxs ~sched ~round;
     let dt = now () -. tx in
     exch_acc := !exch_acc +. dt;
     Metrics.observe (Lazy.force m_exchange_s) dt
   end
   else exchange ctxs ~sched ~round);
  (match sched with
  | Engine.Full_scan -> ()
  | Engine.Active_set -> Array.iter advance ctxs);
  !changed

let writeback ctxs states =
  Array.iter
    (fun c ->
      let l2g = c.sh.Plan.l2g in
      for l = 0 to c.sh.Plan.n_owned - 1 do
        states.(l2g.(l)) <- c.st.(l)
      done)
    ctxs

(* Span emission — coordinating domain only, after the round loop (also
   on failure, mirroring trace delivery). One child span per shard with
   the partition/traffic counters, plus aggregates on the current span. *)
let emit_spans plan ctxs plan_hit =
  if Span.active () then begin
    let s_count = Array.length ctxs in
    let np = plan.Plan.topo.Topology.n_present in
    Span.add_counter "shard:shards" s_count;
    Span.add_counter "shard:cut_edges" (Plan.cut_edges_total plan);
    Span.add_counter "shard:imbalance" (Plan.imbalance_permille plan);
    Span.add_counter
      (if plan_hit then "shard:plan_hit" else "shard:plan_miss")
      1;
    Span.add_counter "shard:halo_words"
      (Array.fold_left (fun acc c -> acc + c.halo_words) 0 ctxs);
    Array.iter
      (fun c ->
        let sh = c.sh in
        Span.with_span (Printf.sprintf "shard:%d" sh.Plan.id) (fun () ->
            Span.add_counter "shard:owned" sh.Plan.n_owned;
            Span.add_counter "shard:halo" (sh.Plan.n_local - sh.Plan.n_owned);
            Span.add_counter "shard:cut_edges" sh.Plan.cut_edges;
            Span.add_counter "shard:halo_words" c.halo_words;
            Span.add_counter "shard:imbalance"
              (if np = 0 then 1000
               else sh.Plan.n_owned * s_count * 1000 / np);
            Span.add_counter "shard:exchange_rounds" c.exchange_rounds))
      ctxs
  end

(* Registry/recorder emission — coordinating domain, same finally as
   span emission: one halo-words increment and one "exchange" flight
   event per run, summarizing the run's boundary traffic. *)
let emit_metrics plan ctxs ~exch_s =
  if Metrics.enabled () then begin
    let halo = Array.fold_left (fun acc c -> acc + c.halo_words) 0 ctxs in
    Metrics.incr (Lazy.force m_halo_words) halo;
    Metrics.incr (Lazy.force m_runs) 1;
    Metrics.Recorder.record
      {
        Metrics.Recorder.ts = now ();
        kind = "exchange";
        key = Printf.sprintf "shards:%d" (Array.length ctxs);
        detail =
          Printf.sprintf "halo_words=%d cut_edges=%d" halo
            (Plan.cut_edges_total plan);
        outcome = "ok";
        latency_s = exch_s;
      }
  end

let prepare ~shards ~topo ~init =
  let plan, plan_hit = Plan.build_cached ~topo ~shards in
  let states = Array.init topo.Topology.n_base (fun v -> init v) in
  let ctxs = Array.map (fun sh -> make_ctx sh states) plan.Plan.shards in
  let pool = Pool.create () in
  let p_eff = min (Pool.workers pool) (Array.length ctxs) in
  (* the per-round shard maps ride the persistent domain team; park the
     members now so round 1 does not pay the one-time spawn *)
  if p_eff > 1 then Pool.prewarm pool;
  (plan, plan_hit, states, ctxs, pool, p_eff)

(* ---------- the three backend entry points ----------

   Control flow, trace records and failure messages deliberately mirror
   the engine's Seq stepper line by line — the differential suite checks
   all of it bit-for-bit. *)

let sb_run :
    type a.
    shards:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    halted:(a -> bool) ->
    max_rounds:int ->
    a Engine.outcome =
 fun ~shards ~sched ~equal ~trace:tr ~topo ~init ~step ~halted ~max_rounds ->
  let plan, plan_hit, states, ctxs, pool, p_eff =
    prepare ~shards ~topo ~init
  in
  let halted_f = Array.make topo.Topology.n_base true in
  let n_unhalted = ref 0 in
  Array.iter
    (fun v ->
      let h = halted states.(v) in
      halted_f.(v) <- h;
      if not h then incr n_unhalted)
    topo.Topology.present_nodes;
  let rounds = ref 0 in
  let stalled = ref false in
  let exch_acc = ref 0. in
  Fun.protect
    ~finally:(fun () ->
      emit_spans plan ctxs plan_hit;
      emit_metrics plan ctxs ~exch_s:!exch_acc)
    (fun () ->
      let interrupted = ref false in
      while
        !n_unhalted > 0 && !rounds < max_rounds && (not !stalled)
        && not !interrupted
      do
        let active_now = total_active ctxs in
        if active_now = 0 then stalled := true
        else begin
          let t0 = now () in
          incr rounds;
          let changed =
            exec_round ctxs ~pool ~p_eff ~step ~round:!rounds ~sched ~equal
              ~exch_acc
              ~on_change:(fun v s ->
                let h = halted s in
                if h <> halted_f.(v) then begin
                  halted_f.(v) <- h;
                  if h then decr n_unhalted else incr n_unhalted
                end)
          in
          record tr ~round:!rounds ~active:active_now ~changed
            ~unhalted:!n_unhalted ~t0;
          if not (Engine.gate_open ~round:!rounds) then interrupted := true
        end
      done;
      if (not !interrupted) && !n_unhalted > 0 then
        failwith
          (Printf.sprintf "Engine.run: max_rounds=%d exceeded" max_rounds);
      writeback ctxs states;
      { Engine.states; rounds = !rounds })

let sb_run_until_stable :
    type a.
    shards:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    max_rounds:int ->
    a Engine.outcome =
 fun ~shards ~sched ~equal ~trace:tr ~topo ~init ~step ~max_rounds ->
  let plan, plan_hit, states, ctxs, pool, p_eff =
    prepare ~shards ~topo ~init
  in
  let rounds = ref 0 in
  let stable = ref false in
  let exch_acc = ref 0. in
  Fun.protect
    ~finally:(fun () ->
      emit_spans plan ctxs plan_hit;
      emit_metrics plan ctxs ~exch_s:!exch_acc)
    (fun () ->
      let interrupted = ref false in
      while (not !interrupted) && (not !stable) && !rounds < max_rounds do
        let active_now = total_active ctxs in
        if active_now = 0 then stable := true
        else begin
          let t0 = now () in
          let changed =
            exec_round ctxs ~pool ~p_eff ~step ~round:(!rounds + 1) ~sched
              ~equal ~exch_acc
              ~on_change:(fun _ _ -> ())
          in
          record tr ~round:(!rounds + 1) ~active:active_now ~changed
            ~unhalted:(-1) ~t0;
          if changed > 0 then begin
            incr rounds;
            if not (Engine.gate_open ~round:!rounds) then interrupted := true
          end
          else stable := true
        end
      done;
      if (not !interrupted) && not !stable then
        failwith
          (Printf.sprintf "Engine.run_until_stable: max_rounds=%d exceeded"
             max_rounds);
      writeback ctxs states;
      { Engine.states; rounds = !rounds })

let sb_run_rounds :
    type a.
    shards:int ->
    sched:Engine.scheduling ->
    equal:(a -> a -> bool) ->
    trace:Trace.t option ->
    topo:Topology.t ->
    init:(int -> a) ->
    step:a Engine.step_fn ->
    rounds:int ->
    a Engine.outcome =
 fun ~shards ~sched ~equal ~trace:tr ~topo ~init ~step ~rounds:total ->
  let plan, plan_hit, states, ctxs, pool, p_eff =
    prepare ~shards ~topo ~init
  in
  let exch_acc = ref 0. in
  Fun.protect
    ~finally:(fun () ->
      emit_spans plan ctxs plan_hit;
      emit_metrics plan ctxs ~exch_s:!exch_acc)
    (fun () ->
      let executed = ref 0 in
      let r = ref 1 in
      let interrupted = ref false in
      while (not !interrupted) && !r <= total do
        let active_now = total_active ctxs in
        if active_now > 0 then begin
          let t0 = now () in
          let changed =
            exec_round ctxs ~pool ~p_eff ~step ~round:!r ~sched ~equal
              ~exch_acc
              ~on_change:(fun _ _ -> ())
          in
          record tr ~round:!r ~active:active_now ~changed ~unhalted:(-1) ~t0;
          executed := !r;
          if not (Engine.gate_open ~round:!r) then interrupted := true
        end;
        incr r
      done;
      writeback ctxs states;
      { Engine.states; rounds = (if !interrupted then !executed else total) })

let () =
  Engine.shard_backend :=
    Some { Engine.sb_run; sb_run_until_stable; sb_run_rounds }

let register () = ()

(* ---------- direct API ---------- *)

let with_pool_workers pool f =
  match pool with
  | None -> f ()
  | Some w ->
    let old = !Pool.default_workers in
    Pool.default_workers := w;
    Fun.protect ~finally:(fun () -> Pool.default_workers := old) f

let shard_count = function
  | Some s -> s
  | None -> max 1 !Engine.default_shards

let run ?shards ?pool ?sched ?equal ?trace ?label ~topo ~init ~step ~halted
    ~max_rounds () =
  with_pool_workers pool (fun () ->
      Engine.run ~mode:(Engine.Shard (shard_count shards)) ?sched ?equal
        ?trace ?label ~topo ~init ~step ~halted ~max_rounds ())

let run_until_stable ?shards ?pool ?sched ?trace ?label ~topo ~init ~step
    ~equal ~max_rounds () =
  with_pool_workers pool (fun () ->
      Engine.run_until_stable ~mode:(Engine.Shard (shard_count shards)) ?sched
        ?trace ?label ~topo ~init ~step ~equal ~max_rounds ())

let run_rounds ?shards ?pool ?sched ?equal ?trace ?label ~topo ~init ~step
    ~rounds () =
  with_pool_workers pool (fun () ->
      Engine.run_rounds ~mode:(Engine.Shard (shard_count shards)) ?sched
        ?equal ?trace ?label ~topo ~init ~step ~rounds ())
