(** Sharded halo-exchange execution backend for the LOCAL engine.

    This module implements {!Tl_engine.Engine}'s [Shard s] mode: the
    compiled topology is partitioned by {!Plan} into [s] contiguous
    shards with ghost (halo) copies of remote neighbors, and every
    synchronous round runs as

    {e local step → batched boundary exchange → barrier}:

    + {b local step} — each shard re-steps its active owned nodes
      against its compact local arrays (states, sub-CSR, ghosts). When
      the domain pool ({!Tl_engine.Pool}) is wider than one worker the
      shards are fanned over it in fixed contiguous chunks; each shard
      writes only its own scratch, so the fan-out is race-free and
      timing-independent.
    + {b batched boundary exchange} — changed states are published
      shard-by-shard in ascending shard order; each shard then drains
      its preallocated flat route buffer, copying boundary states into
      the target shards' ghost slots and growing their active sets
      through the plan's halo rows. Buffers are (target, slot, source)
      int triples — no per-message allocation.
    + {b barrier} — only after every shard has exchanged do the active
      sets advance and the round counter tick; the next round observes a
      globally consistent frontier, exactly like the monolithic stepper.

    {2 Determinism}

    For any shard count and any pool width, labelings, round counts,
    per-round trace records ([active]/[changed]/[unhalted]) and failure
    behavior are bit-identical to [Seq] (and hence [Par p]) under the
    engine's stationarity contract. The argument: the compute phase
    reads only states committed in the previous round (ghosts are only
    written between barriers); the commit and exchange phases run in
    ascending shard order on the coordinating domain; and the per-shard
    active sets are an exact partition of the engine's global active
    set, because a changed node dirties its owned neighbors locally and
    its remote neighbors through halo rows — the same
    [{changed} ∪ N({changed})] frontier, split by ownership.

    {2 Observability}

    When a {!Tl_obs.Span} is ambient, every run attaches one child span
    per shard (["shard:<id>"]) carrying [shard:cut_edges],
    [shard:halo_words], [shard:imbalance] and [shard:exchange_rounds]
    counters, plus aggregate counters on the current span; they are
    emitted even when the run raises, and merge into the run report like
    any other span. Engine traces work unchanged — the engine owns trace
    creation and delivery, this backend only records the rounds.

    Linking [tl_shard] installs the backend into
    {!Tl_engine.Engine.shard_backend} (see {!register});
    {!Tl_local.Runtime} force-links it, so every runtime-based binary
    can run [--engine shard]. *)

val register : unit -> unit
(** No-op whose call forces this module's initialization, which installs
    the backend into {!Tl_engine.Engine.shard_backend}. Call it (or
    reference anything in this module) from code that wants [Shard] mode
    available without depending on [Tl_local.Runtime]. *)

val fault_drop_hook : (round:int -> src:int -> dst:int -> bool) option ref
(** Fault-injection link hook, owned by [Tl_fault.Injector]. While
    armed, the boundary exchange asks it once per halo message —
    [drop ~round ~src ~dst] returning [true] suppresses the delivery of
    one (src shard → dst shard) ghost update in committed round [round]
    (stale ghost value kept, pending set not grown). Exchange routes
    fire only on change, so a dropped message is lost until the owner
    next changes — the repair layer's job to heal. Disarmed ([None],
    the default) the exchange runs the original unchecked drain loop;
    the hook costs one ref match per round. [halo_words] counts only
    delivered messages. The shard drivers also consult
    {!Tl_engine.Engine.gate_open} per committed round, so an armed
    fault gate interrupts shard runs at round boundaries exactly like
    the in-process steppers. *)

val run :
  ?shards:int ->
  ?pool:int ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?equal:('state -> 'state -> bool) ->
  ?trace:Tl_engine.Trace.t ->
  ?label:string ->
  topo:Tl_engine.Topology.t ->
  init:(int -> 'state) ->
  step:'state Tl_engine.Engine.step_fn ->
  halted:('state -> bool) ->
  max_rounds:int ->
  unit ->
  'state Tl_engine.Engine.outcome
(** [Engine.run ~mode:(Shard shards)] with the pool width scoped to
    [pool] for the duration of the call. [shards] defaults to
    {!Tl_engine.Engine.default_shards}; [pool] defaults to the ambient
    {!Tl_engine.Pool.default_workers}. *)

val run_until_stable :
  ?shards:int ->
  ?pool:int ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?trace:Tl_engine.Trace.t ->
  ?label:string ->
  topo:Tl_engine.Topology.t ->
  init:(int -> 'state) ->
  step:'state Tl_engine.Engine.step_fn ->
  equal:('state -> 'state -> bool) ->
  max_rounds:int ->
  unit ->
  'state Tl_engine.Engine.outcome

val run_rounds :
  ?shards:int ->
  ?pool:int ->
  ?sched:Tl_engine.Engine.scheduling ->
  ?equal:('state -> 'state -> bool) ->
  ?trace:Tl_engine.Trace.t ->
  ?label:string ->
  topo:Tl_engine.Topology.t ->
  init:(int -> 'state) ->
  step:'state Tl_engine.Engine.step_fn ->
  rounds:int ->
  unit ->
  'state Tl_engine.Engine.outcome
