module Graph = Tl_graph.Graph
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling

let underlying_neighbors sg v = List.map fst (Semi_graph.rank2_neighbors sg v)

let proper_coloring sg ~ids =
  let base = Semi_graph.base sg in
  let n = Graph.n_nodes base in
  if Array.length ids <> n then invalid_arg "Algos.proper_coloring: bad ids";
  let nodes = Semi_graph.nodes sg in
  (* One compiled snapshot serves the whole reduction chain: Linial runs
     on the engine, and the greedy reductions read adjacency through the
     CSR rows instead of re-deriving it from the semi-graph every call. *)
  let topo, cache_hit = Tl_engine.Topology.compile_cached_stat sg in
  Tl_obs.Span.add_counter
    (if cache_hit then "topo:cache_hit" else "topo:cache_miss")
    1;
  let max_degree = Tl_engine.Topology.max_degree topo in
  let colors = Array.make n (-1) in
  List.iter (fun v -> colors.(v) <- ids.(v)) nodes;
  let palette0 = 1 + List.fold_left (fun acc v -> max acc ids.(v)) 0 nodes in
  let neighbors v = Tl_engine.Topology.neighbor_nodes topo v in
  if max_degree = 0 then begin
    List.iter (fun v -> colors.(v) <- 0) nodes;
    (colors, 1, 0)
  end
  else begin
    let palette1, linial_rounds =
      Linial.reduce_topo ~topo ~nodes ~colors ~palette:palette0 ~max_degree
    in
    let palette2, kw_rounds =
      Reduce.kw_to_delta_plus_one ~neighbors ~nodes ~colors ~palette:palette1
        ~delta:max_degree
    in
    let bound v = Semi_graph.underlying_degree sg v + 1 in
    let reduce_rounds =
      Reduce.to_bound ~neighbors ~nodes ~colors ~palette:palette2 ~bound
    in
    (colors, max_degree + 1, linial_rounds + kw_rounds + reduce_rounds)
  end

let deg_plus_one_coloring sg ~ids labeling =
  let colors, _palette, rounds = proper_coloring sg ~ids in
  List.iter
    (fun v ->
      List.iter
        (fun h -> Labeling.set labeling h (colors.(v) + 1))
        (Semi_graph.half_edges_of sg v))
    (Semi_graph.nodes sg);
  rounds

(* Greedy MIS over the color classes of a proper coloring: class c joins in
   round c if no neighbor has joined yet. Costs [palette] rounds. *)
let mis_of_coloring sg colors palette =
  let base = Semi_graph.base sg in
  let in_mis = Array.make (Graph.n_nodes base) false in
  let nodes = Semi_graph.nodes sg in
  for c = 0 to palette - 1 do
    List.iter
      (fun v ->
        if
          colors.(v) = c
          && not (List.exists (fun u -> in_mis.(u)) (underlying_neighbors sg v))
        then in_mis.(v) <- true)
      nodes
  done;
  (in_mis, palette)

let mis sg ~ids labeling =
  let colors, palette, color_rounds = proper_coloring sg ~ids in
  let in_mis, class_rounds = mis_of_coloring sg colors palette in
  (* one round to learn which neighbors joined, then label *)
  List.iter
    (fun v ->
      if in_mis.(v) then
        List.iter
          (fun h -> Labeling.set labeling h Tl_problems.Mis.M)
          (Semi_graph.half_edges_of sg v)
      else begin
        let pointed = ref false in
        List.iter
          (fun h ->
            let e = Graph.half_edge_edge h in
            let u = Graph.other_endpoint (Semi_graph.base sg) e v in
            let opposite_in_mis = Semi_graph.node_present sg u && in_mis.(u) in
            if opposite_in_mis && not !pointed then begin
              pointed := true;
              Labeling.set labeling h Tl_problems.Mis.P
            end
            else Labeling.set labeling h Tl_problems.Mis.O)
          (Semi_graph.half_edges_of sg v)
      end)
    (Semi_graph.nodes sg);
  color_rounds + class_rounds + 1

let line_structure sg =
  let rank2 =
    List.filter (fun e -> Semi_graph.rank sg e = 2) (Semi_graph.edges sg)
  in
  let edge_of = Array.of_list rank2 in
  let lnode_of = Hashtbl.create (Array.length edge_of) in
  Array.iteri (fun i e -> Hashtbl.add lnode_of e i) edge_of;
  let ledges = ref [] in
  let seen = Hashtbl.create (4 * Array.length edge_of) in
  List.iter
    (fun v ->
      let inc =
        List.filter_map
          (fun (_, e) -> Hashtbl.find_opt lnode_of e)
          (Semi_graph.rank2_neighbors sg v)
      in
      let rec pairs = function
        | [] -> ()
        | x :: rest ->
          List.iter
            (fun y ->
              let p = if x < y then (x, y) else (y, x) in
              if not (Hashtbl.mem seen p) then begin
                Hashtbl.add seen p ();
                ledges := p :: !ledges
              end)
            rest;
          pairs rest
      in
      pairs inc)
    (Semi_graph.nodes sg);
  (Graph.of_edges ~n:(Array.length edge_of) !ledges, edge_of)

(* Unique positive ids for line-graph nodes derived from endpoint ids. *)
let line_ids sg edge_of ids =
  let base = Semi_graph.base sg in
  let width = 1 + Array.fold_left max 0 ids in
  Array.map
    (fun e ->
      let u, v = Graph.edge_endpoints base e in
      let a = min ids.(u) ids.(v) and b = max ids.(u) ids.(v) in
      (a * width) + b)
    edge_of

(* (deg+1)-coloring of the line graph; every line-graph round costs 2 base
   rounds, plus 1 base round for edges to learn their line-neighborhood. *)
let line_coloring sg ~ids =
  let lg, edge_of = line_structure sg in
  let lsg = Semi_graph.of_graph lg in
  let lids = line_ids sg edge_of ids in
  let colors, palette, lrounds = proper_coloring lsg ~ids:lids in
  (lg, edge_of, colors, palette, 1 + (2 * lrounds))

let maximal_matching sg ~ids labeling =
  let base = Semi_graph.base sg in
  let lg, edge_of, colors, palette, setup_rounds = line_coloring sg ~ids in
  let lsg = Semi_graph.of_graph lg in
  let in_mis, class_rounds = mis_of_coloring lsg colors palette in
  (* matched: per node, whether one of its present rank-2 edges is matched *)
  let matched = Array.make (Graph.n_nodes base) false in
  Array.iteri
    (fun i e ->
      if in_mis.(i) then begin
        let u, v = Graph.edge_endpoints base e in
        matched.(u) <- true;
        matched.(v) <- true
      end)
    edge_of;
  Array.iteri
    (fun i e ->
      let u, v = Graph.edge_endpoints base e in
      let hu = Graph.half_edge base ~edge:e ~node:u in
      let hv = Graph.half_edge base ~edge:e ~node:v in
      if in_mis.(i) then begin
        Labeling.set labeling hu Tl_problems.Matching.M;
        Labeling.set labeling hv Tl_problems.Matching.M
      end
      else begin
        Labeling.set labeling hu
          (if matched.(u) then Tl_problems.Matching.P else Tl_problems.Matching.O);
        Labeling.set labeling hv
          (if matched.(v) then Tl_problems.Matching.P else Tl_problems.Matching.O)
      end)
    edge_of;
  (* dangling rank-1 edges *)
  List.iter
    (fun e ->
      if Semi_graph.rank sg e = 1 then begin
        let u, v = Graph.edge_endpoints base e in
        let node = if Semi_graph.node_present sg u then u else v in
        Labeling.set labeling
          (Graph.half_edge base ~edge:e ~node)
          Tl_problems.Matching.D
      end)
    (Semi_graph.edges sg);
  setup_rounds + (2 * class_rounds) + 1

let edge_coloring sg ~ids labeling =
  let base = Semi_graph.base sg in
  let _lg, edge_of, colors, _palette, rounds = line_coloring sg ~ids in
  Array.iteri
    (fun i e ->
      let u, v = Graph.edge_endpoints base e in
      let b = colors.(i) + 1 in
      let du = Semi_graph.underlying_degree sg u in
      let a1 = min du b in
      let a2 = max 1 (b + 1 - a1) in
      Labeling.set labeling
        (Graph.half_edge base ~edge:e ~node:u)
        (Tl_problems.Edge_coloring.Pair (a1, b));
      Labeling.set labeling
        (Graph.half_edge base ~edge:e ~node:v)
        (Tl_problems.Edge_coloring.Pair (a2, b)))
    edge_of;
  List.iter
    (fun e ->
      if Semi_graph.rank sg e = 1 then begin
        let u, v = Graph.edge_endpoints base e in
        let node = if Semi_graph.node_present sg u then u else v in
        Labeling.set labeling
          (Graph.half_edge base ~edge:e ~node)
          Tl_problems.Edge_coloring.D
      end)
    (Semi_graph.edges sg);
  rounds + 1
