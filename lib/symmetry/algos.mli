(** Truly local base algorithms — the inputs [A] of the transformations.

    Each algorithm runs on a semi-graph, takes a globally unique ID
    assignment, writes a complete labeling of the semi-graph's half-edges
    in the corresponding node-edge-checkable encoding, and returns the
    exact number of synchronous LOCAL rounds it used. All have complexity
    [O(poly(Δ) + log* n)] where [Δ] is the {e underlying} degree of the
    semi-graph: Linial reduction ([log* n + O(1)] rounds) followed by
    one-class-per-round greedy reduction ([O(Δ² log² Δ)] rounds), with the
    edge problems simulated on the line graph at a 2× round overhead.

    The paper's Theorems 12/15 are black-box in [A]; these executable
    algorithms exercise the transformation end-to-end, while the
    state-of-the-art [f] of [BBKO22b] enters the experiments through the
    analytic model in [Tl_core.Complexity] (see DESIGN.md,
    "Substitutions"). *)

module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling

val proper_coloring :
  Semi_graph.t -> ids:int array -> int array * int * int
(** (deg+1)-coloring of the {e underlying} graph: returns
    [(colors, palette, rounds)] with [colors.(v) ∈ 0 .. udeg(v)] for
    present nodes ([-1] elsewhere) and [palette = Δ' + 1]. *)

val deg_plus_one_coloring :
  Semi_graph.t -> ids:int array -> Tl_problems.Coloring.label Labeling.t -> int
(** Base algorithm for (deg + 1)-vertex-coloring (labels are 1-based
    colors written on every present half-edge). Returns rounds. *)

val mis :
  Semi_graph.t -> ids:int array -> Tl_problems.Mis.label Labeling.t -> int
(** Base algorithm for MIS (color-class greedy over the proper coloring;
    [M] everywhere on MIS nodes, one [P] plus [O]s on the rest — [P] only
    across rank-2 edges). Returns rounds. *)

val maximal_matching :
  Semi_graph.t -> ids:int array -> Tl_problems.Matching.label Labeling.t -> int
(** Base algorithm for maximal matching via MIS on the line graph
    (Section 5.2 labels; rank-1 edges get [D]). Returns rounds. *)

val edge_coloring :
  Semi_graph.t -> ids:int array -> Tl_problems.Edge_coloring.label Labeling.t -> int
(** Base algorithm for (edge-degree + 1)-edge coloring via (deg+1)-coloring
    of the line graph (Section 5.1 labels; rank-1 edges get [D]).
    Returns rounds. *)

(** {1 Line-graph simulation} *)

val line_structure : Semi_graph.t -> Tl_graph.Graph.t * int array
(** [(lg, edge_of)] where [lg] has one node per present rank-2 edge
    (adjacent iff the edges share a present endpoint) and [edge_of]
    maps [lg]-nodes back to base edge ids. *)
