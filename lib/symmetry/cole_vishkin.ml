let log_star x =
  let rec go x acc =
    if x <= 1 then acc else go (int_of_float (Float.log2 (float_of_int x))) (acc + 1)
  in
  go x 0

(* Lowest bit position where a and b differ (a <> b). *)
let lowest_diff_bit a b =
  let x = a lxor b in
  let rec go i = if x land (1 lsl i) <> 0 then i else go (i + 1) in
  go 0

let bit a i = (a lsr i) land 1

(* One Cole-Vishkin reduction step for node v with parent color cp. *)
let cv_step cv cp =
  let i = lowest_diff_bit cv cp in
  (2 * i) + bit cv i

let bits_needed x =
  let rec go b p = if p > x then b else go (b + 1) (p * 2) in
  go 1 2

let cv_iterations ~max_id =
  (* worst-case bound on the palette after each bit-reduction round *)
  let rec go bound acc =
    if bound <= 5 then acc
    else go ((2 * (bits_needed bound - 1)) + 1) (acc + 1)
  in
  go max_id 0

let schedule_length ~max_id = cv_iterations ~max_id + 6

type runtime_state = { color : int; my_parent : int; steps : int }

let color3_runtime ~sg ~nodes ~parent ~ids =
  let in_forest = Hashtbl.create (List.length nodes) in
  List.iter (fun v -> Hashtbl.add in_forest v ()) nodes;
  let max_id = List.fold_left (fun acc v -> max acc ids.(v)) 1 nodes in
  let t_cv = cv_iterations ~max_id in
  let total = schedule_length ~max_id in
  let parent_state neighbors v =
    if parent.(v) < 0 then None
    else
      List.find_map
        (fun (u, _, s) -> if u = parent.(v) then Some s else None)
        neighbors
  in
  let children_colors neighbors v =
    List.filter_map
      (fun (u, _, s) ->
        if Hashtbl.mem in_forest u && s.my_parent = v then Some s.color
        else None)
      neighbors
  in
  let step ~round ~node:v state ~neighbors =
    let state = { state with steps = state.steps + 1 } in
    if not (Hashtbl.mem in_forest v) then state
    else if round <= t_cv then begin
      (* bit-reduction round *)
      let cp =
        match parent_state neighbors v with
        | Some s -> s.color
        | None -> if state.color = 0 then 1 else 0
      in
      { state with color = cv_step state.color cp }
    end
    else begin
      let offset = round - t_cv in
      let dropped = 5 - ((offset - 1) / 2) in
      if offset mod 2 = 1 then begin
        (* shift-down round *)
        match parent_state neighbors v with
        | Some s -> { state with color = s.color }
        | None -> { state with color = (state.color + 1) mod 3 }
      end
      else if state.color = dropped then begin
        (* recolor round for class [dropped] *)
        let used = Array.make 6 false in
        (match parent_state neighbors v with
        | Some s -> used.(s.color) <- true
        | None -> ());
        List.iter (fun c -> used.(c) <- true) (children_colors neighbors v);
        let rec first c = if used.(c) then first (c + 1) else c in
        { state with color = first 0 }
      end
      else state
    end
  in
  (* typed state equality: keeps the engine's change detection on the
     int-compare fast path instead of polymorphic compare *)
  let state_equal a b =
    a.color = b.color && a.my_parent = b.my_parent && a.steps = b.steps
  in
  let outcome =
    Tl_local.Runtime.run_with ~sg ~equal:state_equal
      ~init:(fun v ->
        if Hashtbl.mem in_forest v then
          { color = ids.(v); my_parent = parent.(v); steps = 0 }
        else { color = 0; my_parent = -1; steps = 0 })
      ~step
      ~halted:(fun s -> s.steps >= total)
      ~max_rounds:(total + 1) ()
  in
  let colors = Array.make (Array.length parent) (-1) in
  List.iter
    (fun v -> colors.(v) <- outcome.Tl_local.Runtime.states.(v).color)
    nodes;
  (colors, outcome.Tl_local.Runtime.rounds)

let color3 ~nodes ~parent ~ids =
  let n = Array.length parent in
  let color = Array.make n (-1) in
  let rounds = ref 0 in
  List.iter (fun v -> color.(v) <- ids.(v)) nodes;
  (* children lists, to let parents read their children in the 6->3 phase *)
  let children = Array.make n [] in
  List.iter
    (fun v -> if parent.(v) >= 0 then children.(parent.(v)) <- v :: children.(parent.(v)))
    nodes;
  (* Phase 1: iterate CV steps until every color is < 6. A root pretends
     its parent's color is a value differing from its own. *)
  let max_color () = List.fold_left (fun acc v -> max acc color.(v)) 0 nodes in
  while max_color () >= 6 do
    incr rounds;
    let next = Array.copy color in
    List.iter
      (fun v ->
        let cp =
          if parent.(v) >= 0 then color.(parent.(v))
          else if color.(v) = 0 then 1
          else 0
        in
        next.(v) <- cv_step color.(v) cp)
      nodes;
    List.iter (fun v -> color.(v) <- next.(v)) nodes
  done;
  (* Phase 2: remove colors 5, 4, 3 with a shift-down before each removal.
     After a shift-down every node's children share one color, so the
     neighborhood of a recoloring node spans at most 2 colors. *)
  for dropped = 5 downto 3 do
    (* shift-down: 1 round *)
    incr rounds;
    let next = Array.copy color in
    List.iter
      (fun v ->
        if parent.(v) >= 0 then next.(v) <- color.(parent.(v))
        else next.(v) <- (color.(v) + 1) mod 3)
      nodes;
    List.iter (fun v -> color.(v) <- next.(v)) nodes;
    (* recolor class [dropped]: 1 round *)
    incr rounds;
    let next = Array.copy color in
    List.iter
      (fun v ->
        if color.(v) = dropped then begin
          let used = Array.make 6 false in
          if parent.(v) >= 0 then used.(color.(parent.(v))) <- true;
          List.iter (fun c -> used.(color.(c)) <- true) children.(v);
          let rec first c = if used.(c) then first (c + 1) else c in
          next.(v) <- first 0
        end)
      nodes;
    List.iter (fun v -> color.(v) <- next.(v)) nodes
  done;
  (color, !rounds)
