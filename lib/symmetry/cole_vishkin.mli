(** Cole-Vishkin style 3-coloring of rooted forests in [O(log* n)] rounds
    ([GPS87]).

    The forest is given as a parent array over (a subset of) the nodes of a
    base graph; communication happens only along parent edges, so only the
    forest structure matters. The returned round count is the exact number
    of synchronous LOCAL rounds the algorithm takes: one per bit-reduction
    iteration, plus the shift-down / recolor rounds of the 6-to-3 phase. *)

val color3 : nodes:int list -> parent:int array -> ids:int array -> int array * int
(** [color3 ~nodes ~parent ~ids] 3-colors the forest on [nodes] in which
    [parent.(v)] is the parent of [v] ([-1] at roots; parents must be in
    [nodes]). [ids] are globally unique positive identifiers indexed by
    node. Returns [(colors, rounds)] where [colors.(v) ∈ {0,1,2}] for
    [v ∈ nodes] (and is [-1] elsewhere) and adjacent (parent-child) nodes
    receive different colors. *)

val log_star : int -> int
(** [log_star x]: number of times [log2] must be applied to reach a value
    at most 1. *)

val schedule_length : max_id:int -> int
(** Number of synchronous rounds of the fixed a-priori schedule used by
    {!color3_runtime}: the worst-case bit-reduction count from the ID
    space (computable by every node from the known ID bound, as the LOCAL
    model requires) plus the six shift-down/recolor rounds. *)

val color3_runtime :
  sg:Tl_graph.Semi_graph.t ->
  nodes:int list ->
  parent:int array ->
  ids:int array ->
  int array * int
(** The same 3-coloring executed as a message-passing state machine on
    {!Tl_local.Runtime} — every node reads its neighbors' published
    states over the semi-graph's rank-2 edges and follows the fixed
    schedule (data-independent, as a real LOCAL algorithm must be when
    termination cannot be detected locally). Parents must be rank-2
    neighbors in [sg]. Returns [(colors, rounds)] with
    [rounds = schedule_length]; colors are a proper 3-coloring of the
    forest. Used by the test-suite as a differential check against
    {!color3}. *)
