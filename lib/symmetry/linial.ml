let is_prime x =
  if x < 2 then false
  else begin
    let rec go d = if d * d > x then true else if x mod d = 0 then false else go (d + 1) in
    go 2
  end

let smallest_prime_geq x =
  let rec go p = if is_prime p then p else go (p + 1) in
  go (max 2 x)

(* Pick the cheapest usable parameters for one reduction step: the degree
   bound d >= 2 and the smallest prime q > Δ(d-1) such that q^d can encode
   the current palette. Larger d means lower-degree... no: polynomials have
   degree < d and d digits; growing d lets a smaller q encode the palette,
   at the price of more agreement points — the scan below finds the
   smallest resulting palette q². *)
let choose_parameters ~max_degree ~palette =
  let power_geq q d target =
    (* q^d >= target, overflow-safe for the sizes at hand *)
    let rec go acc i =
      if acc >= target then true else if i = 0 then false else go (acc * q) (i - 1)
    in
    go 1 d
  in
  let rec scan d best =
    if d > 64 then best
    else begin
      let q = smallest_prime_geq ((max_degree * (d - 1)) + 1) in
      let best =
        if power_geq q d palette then
          match best with
          | Some (qb, _) when qb <= q -> best
          | _ -> Some (q, d)
        else best
      in
      scan (d + 1) best
    end
  in
  match scan 2 None with
  | Some (q, d) -> (q, d)
  | None -> invalid_arg "Linial.choose_parameters: palette too large"

(* digits of c in base q, least significant first: the coefficients of the
   polynomial representing color c *)
let digits c q d =
  let coeffs = Array.make d 0 in
  let rec go c i =
    if i < d then begin
      coeffs.(i) <- c mod q;
      go (c / q) (i + 1)
    end
  in
  go c 0;
  coeffs

let eval_poly coeffs q x =
  (* Horner, mod q *)
  let acc = ref 0 in
  for i = Array.length coeffs - 1 downto 0 do
    acc := ((!acc * x) + coeffs.(i)) mod q
  done;
  !acc

let step ~neighbors ~nodes ~colors ~palette ~max_degree =
  let q, d = choose_parameters ~max_degree ~palette in
  let next = Array.copy colors in
  List.iter
    (fun v ->
      let own = digits colors.(v) q d in
      let neigh = List.map (fun u -> digits colors.(u) q d) (neighbors v) in
      let rec find_x x =
        if x >= q then
          (* cannot happen: at most Δ(d-1) < q bad points *)
          invalid_arg "Linial.step: no evaluation point (coloring not proper?)"
        else
          let mine = eval_poly own q x in
          if List.exists (fun c -> eval_poly c q x = mine) neigh then find_x (x + 1)
          else (x, mine)
      in
      let x, value = find_x 0 in
      next.(v) <- (x * q) + value)
    nodes;
  List.iter (fun v -> colors.(v) <- next.(v)) nodes;
  q * q

(* The (q, d) parameters of every reduction round are a function of the
   (globally known) initial palette alone, so the whole reduction is a
   fixed a-priori schedule — exactly what the engine's [run_rounds] wants. *)
let schedule ~palette ~max_degree =
  let rec go pal acc =
    let q, d = choose_parameters ~max_degree ~palette:pal in
    if q * q < pal then go (q * q) ((q, d) :: acc) else List.rev acc
  in
  Array.of_list (go palette [])

let reduce_topo ~topo ~nodes ~colors ~palette ~max_degree =
  let sched = schedule ~palette ~max_degree in
  let n_rounds = Array.length sched in
  if n_rounds = 0 then (palette, 0)
  else begin
    let step ~round ~node:_ c ~neighbors =
      let q, d = sched.(round - 1) in
      let own = digits c q d in
      let neigh = List.map (fun (_, _, cu) -> digits cu q d) neighbors in
      let rec find_x x =
        if x >= q then
          invalid_arg "Linial.step: no evaluation point (coloring not proper?)"
        else
          let mine = eval_poly own q x in
          if List.exists (fun cf -> eval_poly cf q x = mine) neigh then
            find_x (x + 1)
          else (x, mine)
      in
      let x, value = find_x 0 in
      (x * q) + value
    in
    (* Round-number-driven schedule: must re-step every node each round.
       Bypasses Runtime (the topology is caller-compiled), so bridge the
       trace into the ambient span here. *)
    let trace =
      if Tl_obs.Span.active () then
        Some (Tl_engine.Trace.create ~label:"linial.color" ())
      else None
    in
    let o =
      Tl_engine.Engine.run_rounds ?trace ~sched:Tl_engine.Engine.Full_scan
        ~topo
        ~init:(fun v -> colors.(v))
        ~step ~rounds:n_rounds ()
    in
    Option.iter Tl_obs.Span.add_trace trace;
    List.iter (fun v -> colors.(v) <- o.Tl_engine.Engine.states.(v)) nodes;
    let q_last, _ = sched.(n_rounds - 1) in
    (q_last * q_last, n_rounds)
  end

let reduce ~neighbors ~nodes ~colors ~palette ~max_degree =
  let rounds = ref 0 in
  let current = ref palette in
  let continue_ = ref true in
  while !continue_ do
    let q, _d = choose_parameters ~max_degree ~palette:!current in
    if q * q < !current then begin
      current := step ~neighbors ~nodes ~colors ~palette:!current ~max_degree;
      incr rounds
    end
    else continue_ := false
  done;
  (!current, !rounds)
