(** Linial-style color reduction on arbitrary (semi-)graphs.

    One reduction round maps a proper [K]-coloring to a proper
    [q²]-coloring where [q] is the smallest prime exceeding
    [Δ · ⌈log₂ K⌉]: each node encodes its color as the coefficient vector
    of a polynomial of degree [< ⌈log_q K⌉] over [F_q] and publishes the
    pair [(x, p(x))] for an evaluation point [x] at which it differs from
    all neighbors (which exists because two distinct low-degree
    polynomials agree in few points — the classic cover-free-family
    argument). Iterating reaches a fixed-point palette of
    [O(Δ² log² Δ)] colors after [log* n + O(1)] rounds. *)

val smallest_prime_geq : int -> int
(** Smallest prime [>= max 2 x]. *)

val step :
  neighbors:(int -> int list) ->
  nodes:int list ->
  colors:int array ->
  palette:int ->
  max_degree:int ->
  int
(** One reduction round, in place. [neighbors v] lists the nodes [v] can
    read (communication graph); [colors] is a proper coloring with values
    in [0, palette); returns the new palette [q²] (which may exceed the
    old one — callers should only invoke the step while it shrinks). *)

val reduce :
  neighbors:(int -> int list) ->
  nodes:int list ->
  colors:int array ->
  palette:int ->
  max_degree:int ->
  int * int
(** Iterate {!step} while it strictly shrinks the palette. Returns
    [(final_palette, rounds)]; [colors] is updated in place and remains a
    proper coloring with values in [0, final_palette). *)

val schedule : palette:int -> max_degree:int -> (int * int) array
(** The [(q, d)] parameters of each reduction round, derived from the
    globally known initial palette alone — the fixed a-priori schedule
    every node can compute locally. Empty when the first step would not
    shrink the palette. *)

val reduce_topo :
  topo:Tl_engine.Topology.t ->
  nodes:int list ->
  colors:int array ->
  palette:int ->
  max_degree:int ->
  int * int
(** {!reduce} executed on the engine over a compiled topology snapshot
    ({!Tl_engine.Engine.run_rounds}, full-scan scheduling since the
    schedule is round-number-driven). Bit-identical results and round
    counts to {!reduce} on the same communication graph; [nodes] must be
    the present nodes of [topo]. *)
