let kw_to_delta_plus_one ~neighbors ~nodes ~colors ~palette ~delta =
  let target = delta + 1 in
  let rounds = ref 0 in
  let pal = ref palette in
  let recolored = Array.make (Array.length colors) false in
  while !pal > target do
    let block = 2 * target in
    let nblocks = (!pal + block - 1) / block in
    (* One phase: offsets 0 .. block-1 scheduled one per round; all blocks
       work in parallel. A node's new color is (its block, a slot below
       target) — collisions are only possible with same-block neighbors
       that already recolored in this phase, because later nodes will in
       turn avoid it. *)
    List.iter (fun v -> recolored.(v) <- false) nodes;
    let block_of = Array.copy colors in
    List.iter (fun v -> block_of.(v) <- colors.(v) / block) nodes;
    for off = 0 to block - 1 do
      incr rounds;
      List.iter
        (fun v ->
          if (not recolored.(v)) && colors.(v) mod block = off then begin
            let used = Array.make target false in
            List.iter
              (fun u ->
                if recolored.(u) && block_of.(u) = block_of.(v) then
                  used.(colors.(u) mod target) <- true)
              (neighbors v);
            let rec first x =
              if x >= target then
                invalid_arg "Reduce.kw: delta below maximum degree"
              else if used.(x) then first (x + 1)
              else x
            in
            colors.(v) <- (block_of.(v) * target) + first 0;
            recolored.(v) <- true
          end)
        nodes
    done;
    pal := nblocks * target
  done;
  (!pal, !rounds)

let to_bound ~neighbors ~nodes ~colors ~palette ~bound =
  (* Bucket nodes by their current color: a node recolors at most once
     (always downward, below its bound), so each bucket is visited once.
     The LOCAL round count is still [palette] — one scheduled round per
     class — the bucketing only speeds up the simulation. *)
  let buckets = Array.make palette [] in
  List.iter
    (fun v ->
      let c = colors.(v) in
      if c < 0 || c >= palette then invalid_arg "Reduce.to_bound: color out of palette";
      buckets.(c) <- v :: buckets.(c))
    nodes;
  for c = palette - 1 downto 0 do
    List.iter
      (fun v ->
        if colors.(v) = c && c >= bound v then begin
          let b = bound v in
          let used = Array.make b false in
          List.iter
            (fun u -> if colors.(u) < b then used.(colors.(u)) <- true)
            (neighbors v);
          let rec first x =
            if x >= b then
              invalid_arg "Reduce.to_bound: bound smaller than degree + 1"
            else if used.(x) then first (x + 1)
            else x
          in
          colors.(v) <- first 0
        end)
      buckets.(c)
  done;
  palette
