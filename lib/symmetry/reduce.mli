(** Color-reduction schedules below the Linial fixed point.

    {!kw_to_delta_plus_one} is the Kuhn-Wattenhofer block-parallel
    reduction: the palette is cut into blocks of [2(Δ+1)] colors, every
    block is reduced to [Δ+1] colors in parallel by a one-class-per-round
    greedy pass, and the process repeats — halving the palette every
    [2(Δ+1)] rounds, for [O(Δ log (K / Δ))] rounds in total.

    {!to_bound} is the plain one-color-class-per-round greedy reduction
    ([K] rounds), used for the final pass to per-node bounds such as
    [deg + 1] (empty classes still occupy a slot in the schedule — nodes
    only know [K], not which classes are inhabited). *)

val kw_to_delta_plus_one :
  neighbors:(int -> int list) ->
  nodes:int list ->
  colors:int array ->
  palette:int ->
  delta:int ->
  int * int
(** Reduce a proper coloring to the palette [0 .. delta] in place;
    [delta] must be at least the maximum degree of the communication
    graph. Returns [(final_palette, rounds)] with
    [final_palette = delta + 1]. *)

val to_bound :
  neighbors:(int -> int list) ->
  nodes:int list ->
  colors:int array ->
  palette:int ->
  bound:(int -> int) ->
  int
(** Reduce in place so that each node [v]'s final color lies in
    [0 .. bound v - 1]; requires [bound v >= degree v + 1] (there is
    always a free color). Returns the number of rounds charged
    ([palette]). *)
