(* End-to-end CLI tests run as subprocesses: profiling/report flags,
   graceful degradation on unwritable output paths, clean usage errors,
   and the regression comparator's exit-code contract. *)

module Json = Tl_obs.Json

let cli = "../bin/tree_local_cli.exe"
let regress = "../bench/regress.exe"

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run a command, returning (exit_code, stdout, stderr). *)
let run_cmd cmd_line =
  let out_f = Filename.temp_file "tl_cli_out" ".txt" in
  let err_f = Filename.temp_file "tl_cli_err" ".txt" in
  let code =
    Sys.command (Printf.sprintf "%s >%s 2>%s" cmd_line (Filename.quote out_f)
        (Filename.quote err_f))
  in
  let slurp f =
    let ic = open_in_bin f in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove f;
    s
  in
  (code, slurp out_f, slurp err_f)

let solve_args = "solve --problem mis --family random-tree --n 60 --seed 7"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_profile_writes_report () =
  let out = Filename.temp_file "tl_profile" ".json" in
  let code, stdout, _ =
    run_cmd (Printf.sprintf "%s %s --profile %s" cli solve_args out)
  in
  check_int "exit 0" 0 code;
  check "solution reported valid" true (contains ~needle:"valid" stdout);
  let j = Json.parse_file out in
  Sys.remove out;
  check "schema marker" true
    (Option.bind (Json.member "tl_obs_report" j) Json.to_int = Some 1);
  let span = Option.get (Json.member "span" j) in
  check "root span is solve" true
    (Option.bind (Json.member "name" span) Json.to_str = Some "solve");
  let attrs =
    Option.value ~default:[]
      (Option.bind (Json.member "attrs" span) Json.to_assoc)
  in
  check "problem attr" true
    (List.assoc_opt "problem" attrs = Some (Json.Str "mis"));
  let child_names =
    Option.bind (Json.member "children" span) Json.to_list
    |> Option.value ~default:[]
    |> List.filter_map (fun c -> Option.bind (Json.member "name" c) Json.to_str)
  in
  List.iter
    (fun phase ->
      check (phase ^ " phase present") true (List.mem phase child_names))
    [ "instance"; "decompose"; "base"; "gather-solve"; "validate" ]

let test_report_tree_stdout () =
  let code, stdout, _ =
    run_cmd (Printf.sprintf "%s %s --report tree" cli solve_args)
  in
  check_int "exit 0" 0 code;
  check "tree lists decompose" true (contains ~needle:"decompose" stdout);
  check "tree lists rounds" true (contains ~needle:"rounds" stdout)

let test_profile_unwritable_dir_is_usage_error () =
  (* parse-time validation: parent directory must exist *)
  let code, _, stderr =
    run_cmd
      (Printf.sprintf "%s %s --profile /nonexistent-dir-xyz/p.json" cli
         solve_args)
  in
  check_int "cmdliner usage error" 124 code;
  check "mentions directory" true (contains ~needle:"nonexistent-dir-xyz" stderr)

let test_trace_unwritable_warns_not_fails () =
  (* --trace degrades to a warning when the file cannot be written *)
  let code, _, stderr =
    run_cmd
      (Printf.sprintf "%s %s --engine seq --trace /nonexistent-dir-xyz/t.json"
         cli solve_args)
  in
  check_int "still exit 0" 0 code;
  check "warns on stderr" true (contains ~needle:"cannot write" stderr)

(* --profile and --trace together flush through one unified at_exit: both
   files must come out complete, with the profile lines printed before
   the trace lines (the order the two separate at_exit callbacks used to
   produce, now fixed by construction). *)
let test_profile_and_trace_flush_together () =
  let prof = Filename.temp_file "tl_profile" ".json" in
  let trace = Filename.temp_file "tl_trace" ".json" in
  let code, stdout, _ =
    run_cmd
      (Printf.sprintf "%s %s --engine seq --profile %s --trace %s" cli
         solve_args prof trace)
  in
  check_int "exit 0" 0 code;
  let prof_j = Json.parse_file prof in
  Sys.remove prof;
  check "profile complete" true
    (Option.bind (Json.member "tl_obs_report" prof_j) Json.to_int = Some 1);
  let trace_j = Json.parse_file trace in
  Sys.remove trace;
  check "trace complete" true
    (match trace_j with Json.Arr (_ :: _) -> true | _ -> false);
  let find needle =
    let nl = String.length needle and hl = String.length stdout in
    let rec go i =
      if i + nl > hl then -1
      else if String.sub stdout i nl = needle then i
      else go (i + 1)
    in
    go 0
  in
  let p = find "profile:" and t = find "trace:" in
  check "profile line printed" true (p >= 0);
  check "trace line printed" true (t >= 0);
  check "profile flushes before trace" true (p < t)

(* One flusher failing must not truncate the other: with an unwritable
   trace path and a writable profile path, the trace warning appears on
   stderr and the profile still lands complete. *)
let test_failed_trace_flush_spares_profile () =
  let prof = Filename.temp_file "tl_profile" ".json" in
  let code, _, stderr =
    run_cmd
      (Printf.sprintf
         "%s %s --engine seq --profile %s --trace /nonexistent-dir-xyz/t.json"
         cli solve_args prof)
  in
  check_int "still exit 0" 0 code;
  check "trace warns on stderr" true (contains ~needle:"cannot write" stderr);
  let prof_j = Json.parse_file prof in
  Sys.remove prof;
  check "profile survives the failed trace flush" true
    (Option.bind (Json.member "tl_obs_report" prof_j) Json.to_int = Some 1)

let test_bad_engine_is_usage_error () =
  let code, _, stderr =
    run_cmd (Printf.sprintf "%s %s --engine warp" cli solve_args)
  in
  check_int "cmdliner usage error" 124 code;
  check "names the bad value" true (contains ~needle:"warp" stderr)

(* Cross-argument knob validation: rejected before any work starts, with
   a usage error naming the offending value — never an uncaught
   exception from deep inside a run. *)
let test_knob_validation_usage_errors () =
  let usage args needle =
    let code, _, stderr = run_cmd (Printf.sprintf "%s solve %s" cli args) in
    check_int (args ^ " exits 124") 124 code;
    check (args ^ " explains itself") true (contains ~needle stderr)
  in
  usage "--shards 0" "invalid shard count";
  usage "--pool 0" "invalid pool size";
  usage "--pool 100" "invalid pool size 100";
  (* mode-string edge cases: zero counts, junk counts and surrounding
     whitespace must all die as usage errors naming the input, not be
     clamped or half-parsed *)
  usage "--engine par:0" "invalid engine";
  usage "--engine shard:0" "invalid engine";
  usage "--engine par:+2" "invalid engine";
  usage "--engine ' seq'" "invalid engine";
  usage "--engine 'par: 2'" "invalid engine";
  usage "--engine shard --shards 50 --n 20"
    "shard count 50 exceeds the instance size n = 20";
  usage "--engine shard:50 --n 20" "shard count 50 exceeds";
  (* the same over-sharding is fine when the engine is not sharded *)
  let code, stdout, _ =
    run_cmd
      (Printf.sprintf "%s solve --engine seq --shards 50 --n 20 --family path"
         cli)
  in
  check_int "seq ignores the shard knob" 0 code;
  check "solved" true (contains ~needle:"valid:       true" stdout)

(* ---------- regress.exe ---------- *)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let bench_json_raw wall_token =
  Printf.sprintf
    {|{"bench":"engine","n":100,"seed":1,"cores":1,"kernels":[
 {"kernel":"cv3","deterministic":true,"modes":[
  {"mode":"naive","domains":1,"wall_s":%s,"rounds":5,"steps":10,"speedup_vs_naive":1.0}]}]}|}
    wall_token

let bench_json wall = bench_json_raw (Printf.sprintf "%f" wall)

let test_regress_identical_passes () =
  let f = Filename.temp_file "tl_bench" ".json" in
  write_file f (bench_json 0.5);
  let code, stdout, _ = run_cmd (Printf.sprintf "%s %s %s" regress f f) in
  Sys.remove f;
  check_int "exit 0 on identical" 0 code;
  check "prints PASS" true (contains ~needle:"PASS" stdout)

let test_regress_detects_regression () =
  let old_f = Filename.temp_file "tl_bench_old" ".json" in
  let new_f = Filename.temp_file "tl_bench_new" ".json" in
  write_file old_f (bench_json 0.5);
  write_file new_f (bench_json 5.0);
  let code, stdout, _ =
    run_cmd (Printf.sprintf "%s %s %s" regress old_f new_f)
  in
  check_int "exit 1 on regression" 1 code;
  check "prints FAIL" true (contains ~needle:"FAIL" stdout);
  (* a generous tolerance turns the same delta into a pass *)
  let code_ok, _, _ =
    run_cmd (Printf.sprintf "%s --tolerance 10.0 %s %s" regress old_f new_f)
  in
  Sys.remove old_f;
  Sys.remove new_f;
  check_int "tolerance rescues" 0 code_ok

let test_regress_zero_baseline () =
  (* a 0-second baseline must not fail on any positive measurement:
     sub-noise-floor times pass via the absolute tolerance, real times
     still fail *)
  let old_f = Filename.temp_file "tl_bench_old" ".json" in
  let new_f = Filename.temp_file "tl_bench_new" ".json" in
  write_file old_f (bench_json 0.0);
  write_file new_f (bench_json 0.003);
  let code, stdout, _ = run_cmd (Printf.sprintf "%s %s %s" regress old_f new_f) in
  check_int "noise above zero baseline passes" 0 code;
  check "delta printed in seconds" true (contains ~needle:"s  PASS" stdout);
  write_file new_f (bench_json 0.5);
  let code', _, _ = run_cmd (Printf.sprintf "%s %s %s" regress old_f new_f) in
  check_int "real time above zero baseline fails" 1 code';
  (* a raised absolute tolerance rescues it *)
  let code'', _, _ =
    run_cmd (Printf.sprintf "%s --abs-tolerance 1.0 %s %s" regress old_f new_f)
  in
  Sys.remove old_f;
  Sys.remove new_f;
  check_int "abs-tolerance rescues" 0 code''

let test_regress_nonfinite_fails () =
  (* the Json printer emits null for nan/inf metrics; a null metric must
     fail the gate (exit 1), not pass silently or die with exit 2 *)
  let old_f = Filename.temp_file "tl_bench_old" ".json" in
  let new_f = Filename.temp_file "tl_bench_new" ".json" in
  write_file old_f (bench_json 0.5);
  (* null is what the Json printer emits for a nan/inf metric *)
  write_file new_f (bench_json_raw "null");
  let code, stdout, _ = run_cmd (Printf.sprintf "%s %s %s" regress old_f new_f) in
  Sys.remove old_f;
  Sys.remove new_f;
  check_int "null metric exits 1" 1 code;
  check "row marked non-finite" true (contains ~needle:"FAIL(non-finite)" stdout)

let test_regress_usage_and_parse_errors () =
  let code, _, _ = run_cmd (Printf.sprintf "%s onlyone.json" regress) in
  check_int "usage error" 2 code;
  let bad = Filename.temp_file "tl_bad" ".json" in
  write_file bad "{not json";
  let code', _, stderr =
    run_cmd (Printf.sprintf "%s %s %s" regress bad bad)
  in
  Sys.remove bad;
  check_int "parse error exit 2" 2 code';
  check "reports parse failure" true (contains ~needle:"parse" stderr)

let () =
  Alcotest.run "tl_cli"
    [
      ( "profile",
        [
          Alcotest.test_case "--profile writes schema-valid report" `Quick
            test_profile_writes_report;
          Alcotest.test_case "--report tree prints phases" `Quick
            test_report_tree_stdout;
          Alcotest.test_case "--profile bad dir -> usage error" `Quick
            test_profile_unwritable_dir_is_usage_error;
          Alcotest.test_case "--trace bad dir -> warning only" `Quick
            test_trace_unwritable_warns_not_fails;
          Alcotest.test_case "--profile + --trace flush together" `Quick
            test_profile_and_trace_flush_together;
          Alcotest.test_case "failed trace flush spares profile" `Quick
            test_failed_trace_flush_spares_profile;
          Alcotest.test_case "--engine bad value -> usage error" `Quick
            test_bad_engine_is_usage_error;
          Alcotest.test_case "knob cross-validation -> usage errors" `Quick
            test_knob_validation_usage_errors;
        ] );
      ( "regress",
        [
          Alcotest.test_case "identical inputs pass" `Quick
            test_regress_identical_passes;
          Alcotest.test_case "slowdown fails, tolerance rescues" `Quick
            test_regress_detects_regression;
          Alcotest.test_case "zero baseline uses absolute tolerance" `Quick
            test_regress_zero_baseline;
          Alcotest.test_case "non-finite metric fails" `Quick
            test_regress_nonfinite_fails;
          Alcotest.test_case "usage and parse errors exit 2" `Quick
            test_regress_usage_and_parse_errors;
        ] );
    ]
