(* Tests for the core transformations: Complexity, Theorem1, Theorem2,
   Pipeline — the paper's Theorems 12 and 15 end to end. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Nec = Tl_problems.Nec
module Complexity = Tl_core.Complexity
module Theorem1 = Tl_core.Theorem1
module Theorem2 = Tl_core.Theorem2
module Pipeline = Tl_core.Pipeline

let check = Alcotest.(check bool)

(* ---------- Complexity ---------- *)

let test_solve_g_inverts () =
  (* g must satisfy g^{f(g)} = n *)
  List.iter
    (fun (f, n) ->
      let g = Complexity.solve_g ~f ~n in
      let lhs = f g *. Float.log g in
      check "g solves the equation" true (Float.abs (lhs -. Float.log n) < 1e-6))
    [
      (Complexity.f_linear, 1e6);
      (Complexity.f_linear, 64.0);
      (Complexity.f_sqrt_log, 1e9);
      (Complexity.f_polylog ~exponent:12.0, 1e30);
      (Complexity.f_exp_sqrt_log, 1e12);
    ]

let test_g_for_linear_f () =
  (* f = id: g(n)^g(n) = n, so g grows like log n / log log n *)
  let g1 = Complexity.solve_g ~f:Complexity.f_linear ~n:1e3 in
  let g2 = Complexity.solve_g ~f:Complexity.f_linear ~n:1e12 in
  check "monotone" true (g2 > g1);
  check "sublogarithmic" true (g2 < Float.log 1e12)

let test_theorem3_is_strongly_sublogarithmic () =
  (* The Theorem 3 bound grows strictly slower than log n / log log n, but
     the crossover sits at log n ≈ e^52 — evaluate on the log scale. *)
  let f12 = Complexity.f_polylog ~exponent:12.0 in
  let ratio log2_n =
    Complexity.theorem1_rounds_log ~f:f12 ~log2_n
    /. Complexity.mis_lower_bound_log ~log2_n
  in
  let r1 = ratio 1e23 in
  let r2 = ratio 1e26 in
  let r3 = ratio 1e30 in
  check "ratio decreasing asymptotically" true (r2 < r1 && r3 < r2);
  (* and the upper bound itself is Θ(L^{12/13}): doubling L scales it by
     ~2^{12/13} ≈ 1.90 *)
  let v1 = Complexity.theorem1_rounds_log ~f:f12 ~log2_n:1e8 in
  let v2 = Complexity.theorem1_rounds_log ~f:f12 ~log2_n:2e8 in
  let scale = v2 /. v1 in
  check "exponent 12/13" true
    (Float.abs (scale -. Float.pow 2.0 (12.0 /. 13.0)) < 0.05)

let test_theorem1_prediction_shapes () =
  (* f = id gives Theta(log n / log log n): check against the closed form *)
  List.iter
    (fun e ->
      let n = 1 lsl e in
      let predicted = Complexity.theorem1_rounds ~f:Complexity.f_linear ~n in
      let closed_form = Complexity.mis_lower_bound ~n in
      check "within constant factor" true
        (predicted >= closed_form /. 4.0 && predicted <= 4.0 *. closed_form))
    [ 10; 20; 30; 40; 50 ]

let test_theorem2_prediction () =
  let r = Complexity.theorem2_rounds ~f:Complexity.f_linear ~n:100000 ~a:2 ~rho:2 in
  check "finite" true (Float.is_finite r);
  (* the theorem requires a <= k/5 *)
  let bad = Complexity.theorem2_rounds ~f:Complexity.f_linear ~n:100 ~a:1000 ~rho:1 in
  check "out of range is nan" true (Float.is_nan bad)

let test_lift_lower_bound () =
  (* with h = f, the lifted lower bound and the Theorem 1 upper bound
     coincide up to the additive log* term *)
  List.iter
    (fun e ->
      let n = 1 lsl e in
      let lifted = Complexity.lift_lower_bound ~h:Complexity.f_linear ~n in
      let upper = Complexity.theorem1_rounds ~f:Complexity.f_linear ~n in
      check "UB = LB + log*" true
        (Float.abs (upper -. lifted -. float_of_int (Complexity.log_star n))
        < 1e-6))
    [ 10; 20; 40 ]

let test_choose_k () =
  check "k at least 2" true (Complexity.choose_k ~f:Complexity.f_linear ~n:2 >= 2);
  check "k grows" true
    (Complexity.choose_k ~f:Complexity.f_linear ~n:1000000
     > Complexity.choose_k ~f:Complexity.f_linear ~n:100);
  check "arb k respects 5a" true
    (Complexity.choose_k_arb ~f:Complexity.f_linear ~n:100 ~a:4 ~rho:2 >= 20)

(* ---------- Theorem 1 end-to-end ---------- *)

let tree_cases =
  [
    ("single", Gen.path 1);
    ("edge", Gen.path 2);
    ("path", Gen.path 64);
    ("star", Gen.star 40);
    ("broom", Gen.broom ~handle:10 ~bristles:12);
    ("caterpillar", Gen.caterpillar ~spine:12 ~legs:3);
    ("balanced", Gen.balanced_regular_tree ~delta:4 ~n:200);
    ("random300", Gen.random_tree ~n:300 ~seed:51);
    ("power-law", Gen.power_law_tree ~n:250 ~seed:52);
  ]

let test_theorem1_mis () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:53 in
      let r = Pipeline.mis_on_tree ~tree ~ids () in
      check (name ^ " valid") true r.Pipeline.valid;
      check (name ^ " maximal") true
        (Props.is_maximal_independent_set tree
           (Tl_problems.Mis.decode tree r.Pipeline.labeling)))
    tree_cases

let test_theorem1_coloring () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:54 in
      let r = Pipeline.coloring_on_tree ~tree ~ids () in
      check (name ^ " valid") true r.Pipeline.valid;
      check (name ^ " proper") true
        (Props.is_proper_coloring tree
           (Tl_problems.Coloring.decode tree r.Pipeline.labeling)))
    tree_cases

let test_theorem1_explicit_k () =
  (* the transformation is correct for any k >= 2, not just g(n) *)
  let tree = Gen.random_tree ~n:200 ~seed:55 in
  let ids = Ids.permuted ~n:200 ~seed:56 in
  List.iter
    (fun k ->
      let r = Pipeline.mis_on_tree ~k ~tree ~ids () in
      check (Printf.sprintf "k=%d valid" k) true r.Pipeline.valid)
    [ 2; 3; 5; 10; 100 ]

let test_theorem1_id_robustness () =
  let tree = Gen.random_tree ~n:150 ~seed:57 in
  List.iter
    (fun ids ->
      let r = Pipeline.mis_on_tree ~tree ~ids () in
      check "valid under id scheme" true r.Pipeline.valid)
    [
      Ids.identity 150;
      Ids.reversed 150;
      Ids.permuted ~n:150 ~seed:58;
      Ids.spread ~n:150 ~c:2 ~seed:59;
    ]

let test_theorem1_ledger () =
  let tree = Gen.random_tree ~n:400 ~seed:60 in
  let ids = Ids.permuted ~n:400 ~seed:61 in
  let r = Pipeline.mis_on_tree ~tree ~ids () in
  let phases = List.map fst (Round_cost.phases r.Pipeline.cost) in
  check "decompose phase" true (List.mem "decompose" phases);
  check "base phase" true (List.mem "base:A(T_C)" phases);
  check "gather phase" true (List.mem "gather-solve(T_R)" phases);
  check "total is sum" true
    (r.Pipeline.total_rounds = Round_cost.total r.Pipeline.cost)

(* ---------- Theorem 2 end-to-end ---------- *)

let arb_cases =
  [
    ("tree-a1", Gen.random_tree ~n:300 ~seed:62, 1);
    ("union-a2", Gen.forest_union ~n:300 ~arboricity:2 ~seed:63, 2);
    ("union-a3", Gen.forest_union ~n:400 ~arboricity:3 ~seed:64, 3);
    ("grid", Gen.grid 12 12, 2);
    ("planar", Gen.triangulated_grid 10, 3);
    ("edge", Gen.path 2, 1);
    ("star", Gen.star 50, 1);
  ]

let test_theorem2_matching () =
  List.iter
    (fun (name, graph, a) ->
      let n = Graph.n_nodes graph in
      let ids = Ids.permuted ~n ~seed:65 in
      let r = Pipeline.matching_on_graph ~graph ~a ~ids () in
      check (name ^ " valid") true r.Pipeline.valid;
      check (name ^ " maximal") true
        (Props.is_maximal_matching graph
           (Tl_problems.Matching.decode graph r.Pipeline.labeling)))
    arb_cases

let test_theorem2_edge_coloring () =
  List.iter
    (fun (name, graph, a) ->
      let n = Graph.n_nodes graph in
      let ids = Ids.permuted ~n ~seed:66 in
      let r = Pipeline.edge_coloring_on_graph ~graph ~a ~ids () in
      check (name ^ " valid") true r.Pipeline.valid;
      let colors = Tl_problems.Edge_coloring.decode graph r.Pipeline.labeling in
      check (name ^ " proper") true (Props.is_proper_edge_coloring graph colors);
      check (name ^ " palette") true
        (Graph.fold_edges
           (fun e _ acc -> acc && colors.(e) <= Props.edge_degree graph e + 1)
           graph true))
    arb_cases

let test_theorem2_rho () =
  let graph = Gen.forest_union ~n:250 ~arboricity:2 ~seed:67 in
  let ids = Ids.permuted ~n:250 ~seed:68 in
  List.iter
    (fun rho ->
      let r = Pipeline.matching_on_graph ~rho ~graph ~a:2 ~ids () in
      check (Printf.sprintf "rho=%d valid" rho) true r.Pipeline.valid)
    [ 1; 2; 3 ]

let test_theorem2_2delta_decoding () =
  (* the (edge-degree+1) output is also a valid (2Δ-1)-edge coloring *)
  let graph = Gen.random_tree ~n:200 ~seed:69 in
  let ids = Ids.permuted ~n:200 ~seed:70 in
  let r = Pipeline.edge_coloring_on_graph ~graph ~a:1 ~ids () in
  let delta = Graph.max_degree graph in
  let two_delta = Tl_problems.Edge_coloring.problem_two_delta ~delta in
  check "valid as 2Δ-1 coloring" true
    (Nec.validate two_delta graph r.Pipeline.labeling = [])

let test_transform_beats_direct_on_high_degree_tree () =
  (* on a broom (Δ ~ sqrt n) the transformed algorithm must use far fewer
     rounds than running A directly: this is the point of the paper *)
  let tree = Gen.broom ~handle:50 ~bristles:450 in
  let n = Graph.n_nodes tree in
  let ids = Ids.permuted ~n ~seed:71 in
  let transformed = Pipeline.mis_on_tree ~tree ~ids () in
  let direct = Pipeline.mis_direct ~graph:tree ~ids in
  check "both valid" true (transformed.Pipeline.valid && direct.Pipeline.valid);
  check "transform wins" true
    (transformed.Pipeline.total_rounds < direct.Pipeline.total_rounds)

let test_delta_coloring_pipeline () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:74 in
      let r = Pipeline.delta_coloring_on_tree ~tree ~ids () in
      check (name ^ " valid as delta+1") true r.Pipeline.valid)
    tree_cases

let test_two_delta_pipeline () =
  List.iter
    (fun (name, graph, a) ->
      let n = Graph.n_nodes graph in
      let ids = Ids.permuted ~n ~seed:75 in
      let r = Pipeline.two_delta_edge_coloring_on_graph ~graph ~a ~ids () in
      check (name ^ " valid as 2delta-1") true r.Pipeline.valid)
    arb_cases

let test_sinkless_on_trees () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:76 in
      let r = Pipeline.sinkless_orientation_on_tree ~tree ~ids () in
      check (name ^ " sinkless valid") true r.Pipeline.valid)
    tree_cases

let test_sinkless_log_rounds () =
  (* Theta(log n): rounds grow with log n, not with n *)
  let rounds n =
    let tree = Gen.balanced_regular_tree ~delta:5 ~n in
    let ids = Ids.permuted ~n ~seed:77 in
    (Pipeline.sinkless_orientation_on_tree ~tree ~ids ()).Pipeline.total_rounds
  in
  let r1 = rounds 1_000 in
  let r2 = rounds 100_000 in
  check "logarithmic growth" true (r2 <= r1 * 3);
  check "nontrivial" true (r2 > 1)

let prop_sinkless_random_trees =
  QCheck.Test.make ~name:"sinkless orientation valid on random trees"
    ~count:40
    QCheck.(pair (int_range 1 300) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      (Pipeline.sinkless_orientation_on_tree ~tree ~ids ()).Pipeline.valid)

let test_baseline_edge_coloring () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:78 in
      let l, _cost = Tl_core.Baseline.edge_coloring_on_tree ~tree ~ids in
      check (name ^ " baseline ec valid") true
        (Nec.is_valid Tl_problems.Edge_coloring.problem tree l);
      check (name ^ " baseline ec proper") true
        (Props.is_proper_edge_coloring tree
           (Tl_problems.Edge_coloring.decode tree l)))
    tree_cases

let test_baseline_matching () =
  List.iter
    (fun (name, tree) ->
      let n = Graph.n_nodes tree in
      let ids = Ids.permuted ~n ~seed:79 in
      let l, _cost = Tl_core.Baseline.matching_on_tree ~tree ~ids in
      check (name ^ " baseline matching valid") true
        (Nec.is_valid Tl_problems.Matching.problem tree l);
      check (name ^ " baseline matching maximal") true
        (Props.is_maximal_matching tree
           (Tl_problems.Matching.decode tree l)))
    tree_cases

let test_baseline_log_rounds () =
  (* the baseline is O(log n): rounds grow slowly with n *)
  let rounds n =
    let tree = Gen.balanced_regular_tree ~delta:6 ~n in
    let ids = Ids.permuted ~n ~seed:80 in
    let _, cost = Tl_core.Baseline.edge_coloring_on_tree ~tree ~ids in
    Round_cost.total cost
  in
  let r1 = rounds 1_000 in
  let r2 = rounds 100_000 in
  check "logarithmic growth" true (r2 <= r1 * 3 && r2 > r1)

let prop_baseline_random_trees =
  QCheck.Test.make ~name:"baselines valid on random trees" ~count:30
    QCheck.(pair (int_range 1 200) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let l1, _ = Tl_core.Baseline.edge_coloring_on_tree ~tree ~ids in
      let l2, _ = Tl_core.Baseline.matching_on_tree ~tree ~ids in
      Nec.is_valid Tl_problems.Edge_coloring.problem tree l1
      && Nec.is_valid Tl_problems.Matching.problem tree l2)

let test_direct_baselines () =
  let graph = Gen.random_tree ~n:150 ~seed:72 in
  let ids = Ids.permuted ~n:150 ~seed:73 in
  check "mis" true (Pipeline.mis_direct ~graph ~ids).Pipeline.valid;
  check "coloring" true (Pipeline.coloring_direct ~graph ~ids).Pipeline.valid;
  check "matching" true (Pipeline.matching_direct ~graph ~ids).Pipeline.valid;
  check "edge coloring" true
    (Pipeline.edge_coloring_direct ~graph ~ids).Pipeline.valid

(* ---------- qcheck properties ---------- *)

let prop_theorem1_random_trees =
  QCheck.Test.make ~name:"Theorem 12 pipelines valid on random trees" ~count:30
    QCheck.(pair (int_range 1 250) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let r1 = Pipeline.mis_on_tree ~tree ~ids () in
      let r2 = Pipeline.coloring_on_tree ~tree ~ids () in
      r1.Pipeline.valid && r2.Pipeline.valid
      && Props.is_maximal_independent_set tree
           (Tl_problems.Mis.decode tree r1.Pipeline.labeling)
      && Props.is_proper_coloring tree
           (Tl_problems.Coloring.decode tree r2.Pipeline.labeling))

let prop_theorem2_random_graphs =
  QCheck.Test.make ~name:"Theorem 15 pipelines valid on arboricity-a graphs"
    ~count:20
    QCheck.(triple (int_range 2 200) (int_range 1 3) (int_range 0 100000))
    (fun (n, a, seed) ->
      let graph = Gen.forest_union ~n ~arboricity:a ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let r1 = Pipeline.matching_on_graph ~graph ~a ~ids () in
      let r2 = Pipeline.edge_coloring_on_graph ~graph ~a ~ids () in
      r1.Pipeline.valid && r2.Pipeline.valid
      && Props.is_maximal_matching graph
           (Tl_problems.Matching.decode graph r1.Pipeline.labeling)
      && Props.is_proper_edge_coloring graph
           (Tl_problems.Edge_coloring.decode graph r2.Pipeline.labeling))

let prop_theorem2_hub_graphs =
  QCheck.Test.make
    ~name:"Theorem 15 pipelines valid on hub-heavy graphs (atypical path)"
    ~count:15
    QCheck.(triple (int_range 10 250) (int_range 1 3) (int_range 0 100000))
    (fun (n, a, seed) ->
      let graph = Gen.power_law_union ~n ~arboricity:a ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let r1 = Pipeline.matching_on_graph ~graph ~a ~ids () in
      let r2 = Pipeline.edge_coloring_on_graph ~graph ~a ~ids () in
      r1.Pipeline.valid && r2.Pipeline.valid)

let prop_theorem1_explicit_k =
  QCheck.Test.make ~name:"Theorem 12 valid for arbitrary k" ~count:25
    QCheck.(triple (int_range 2 150) (int_range 2 20) (int_range 0 100000))
    (fun (n, k, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      (Pipeline.coloring_on_tree ~k ~tree ~ids ()).Pipeline.valid)

let test_proof_invariants () =
  (* run both transformations with the inductive invariant of the
     correctness proofs asserted at every phase boundary *)
  let tree = Gen.random_tree ~n:600 ~seed:84 in
  let ids = Ids.permuted ~n:600 ~seed:85 in
  let r1 =
    Theorem1.run ~check_invariants:true
      ~spec:
        {
          Theorem1.problem = Tl_problems.Mis.problem;
          base_algorithm = Tl_symmetry.Algos.mis;
          solve_edge_list = Tl_problems.Mis.solve_edge_list;
        }
      ~tree ~ids ~f:Tl_core.Complexity.f_linear ()
  in
  check "theorem 1 invariants hold" true
    (Nec.is_valid Tl_problems.Mis.problem tree r1.Theorem1.labeling);
  let g = Gen.power_law_union ~n:600 ~arboricity:2 ~seed:86 in
  let ids = Ids.permuted ~n:600 ~seed:87 in
  let r2 =
    Theorem2.run ~check_invariants:true
      ~spec:
        {
          Theorem2.problem = Tl_problems.Matching.problem;
          base_algorithm = Tl_symmetry.Algos.maximal_matching;
          solve_node_list = Tl_problems.Matching.solve_node_list;
        }
      ~graph:g ~a:2 ~ids ~f:Tl_core.Complexity.f_linear ()
  in
  check "theorem 2 invariants hold" true
    (Nec.is_valid Tl_problems.Matching.problem g r2.Theorem2.labeling)

let prop_invariants_random =
  QCheck.Test.make ~name:"proof invariants hold on random instances" ~count:20
    QCheck.(pair (int_range 2 150) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let r =
        Theorem1.run ~check_invariants:true
          ~spec:
            {
              Theorem1.problem = Tl_problems.Coloring.problem_deg_plus_one;
              base_algorithm = Tl_symmetry.Algos.deg_plus_one_coloring;
              solve_edge_list = Tl_problems.Coloring.solve_edge_list;
            }
          ~tree ~ids ~f:Tl_core.Complexity.f_linear ()
      in
      let r2 =
        Theorem2.run ~check_invariants:true
          ~spec:
            {
              Theorem2.problem = Tl_problems.Edge_coloring.problem;
              base_algorithm = Tl_symmetry.Algos.edge_coloring;
              solve_node_list = Tl_problems.Edge_coloring.solve_node_list;
            }
          ~graph:tree ~a:1 ~ids ~f:Tl_core.Complexity.f_linear ()
      in
      Nec.is_valid Tl_problems.Coloring.problem_deg_plus_one tree
        r.Theorem1.labeling
      && Nec.is_valid Tl_problems.Edge_coloring.problem tree r2.Theorem2.labeling)

let test_pipelines_on_forests () =
  let forest = Gen.random_forest ~n:300 ~trees:7 ~seed:90 in
  let ids = Ids.permuted ~n:300 ~seed:91 in
  let r1 = Pipeline.mis_on_tree ~tree:forest ~ids () in
  check "forest MIS valid" true r1.Pipeline.valid;
  check "forest MIS maximal" true
    (Props.is_maximal_independent_set forest
       (Tl_problems.Mis.decode forest r1.Pipeline.labeling));
  let r2 = Pipeline.coloring_on_tree ~tree:forest ~ids () in
  check "forest coloring valid" true r2.Pipeline.valid;
  let r3 = Pipeline.sinkless_orientation_on_tree ~tree:forest ~ids () in
  check "forest sinkless valid" true r3.Pipeline.valid

let test_determinism () =
  (* identical inputs must give bit-identical labelings and ledgers *)
  let tree = Gen.random_tree ~n:500 ~seed:81 in
  let ids = Ids.permuted ~n:500 ~seed:82 in
  let run () = Pipeline.mis_on_tree ~tree ~ids () in
  let r1 = run () and r2 = run () in
  check "same rounds" true (r1.Pipeline.total_rounds = r2.Pipeline.total_rounds);
  check "same decode" true
    (Tl_problems.Mis.decode tree r1.Pipeline.labeling
    = Tl_problems.Mis.decode tree r2.Pipeline.labeling);
  let m1 = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
  let m2 = Pipeline.matching_on_graph ~graph:tree ~a:1 ~ids () in
  check "matching deterministic" true
    (Tl_problems.Matching.decode tree m1.Pipeline.labeling
    = Tl_problems.Matching.decode tree m2.Pipeline.labeling)

let test_ids_change_solution_not_validity () =
  (* different IDs may give different solutions, never invalid ones *)
  let tree = Gen.random_tree ~n:400 ~seed:83 in
  let r1 = Pipeline.mis_on_tree ~tree ~ids:(Ids.permuted ~n:400 ~seed:1) () in
  let r2 = Pipeline.mis_on_tree ~tree ~ids:(Ids.permuted ~n:400 ~seed:2) () in
  check "both valid" true (r1.Pipeline.valid && r2.Pipeline.valid)

(* ---------- pooled execution: differential against sequential ---------- *)

module Labeling = Tl_problems.Labeling
module Semi_graph = Tl_graph.Semi_graph
module Rake_compress = Tl_decompose.Rake_compress
module Gather = Tl_local.Gather

let mis_spec =
  {
    Theorem1.problem = Tl_problems.Mis.problem;
    base_algorithm = Tl_symmetry.Algos.mis;
    solve_edge_list = Tl_problems.Mis.solve_edge_list;
  }

let matching_spec =
  {
    Theorem2.problem = Tl_problems.Matching.problem;
    base_algorithm = Tl_symmetry.Algos.maximal_matching;
    solve_node_list = Tl_problems.Matching.solve_node_list;
  }

let labels_equal g l1 l2 =
  List.init (Graph.n_half_edges g) (fun h -> Labeling.get l1 h)
  = List.init (Graph.n_half_edges g) (fun h -> Labeling.get l2 h)

let prop_gather_charge_is_flooding_cost =
  (* The analytic charge for phase 3 must equal the cost of actually
     executing it: the max over T_R components of the full-information
     flooding round trip at the collecting (highest) node. *)
  QCheck.Test.make
    ~name:"charged gather-solve(T_R) = max component flooding round-trip"
    ~count:25
    QCheck.(pair (int_range 2 250) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let r = Theorem1.run ~spec:mis_spec ~tree ~ids ~f:Complexity.f_linear () in
      let rc = r.Theorem1.rc in
      let t_r = Rake_compress.t_r rc in
      let expected =
        Array.fold_left
          (fun acc component ->
            match component with
            | [] -> acc
            | first :: _ ->
              let highest =
                List.fold_left
                  (fun best v -> if Rake_compress.is_higher rc v best then v else best)
                  first component
              in
              max acc (Gather.round_trip_cost t_r ~center:highest))
          0
          (Semi_graph.underlying_components t_r)
      in
      List.assoc "gather-solve(T_R)" (Round_cost.phases r.Theorem1.cost)
      = expected)

let prop_pooled_theorem1_bit_identical =
  QCheck.Test.make ~name:"pooled Theorem 12 = sequential (labeling + ledger)"
    ~count:15
    QCheck.(pair (int_range 2 250) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let run workers =
        Theorem1.run ~workers ~spec:mis_spec ~tree ~ids
          ~f:Complexity.f_linear ()
      in
      let seq = run 1 and par = run 4 in
      labels_equal tree seq.Theorem1.labeling par.Theorem1.labeling
      && Round_cost.phases seq.Theorem1.cost
         = Round_cost.phases par.Theorem1.cost)

let prop_pooled_theorem2_bit_identical =
  QCheck.Test.make ~name:"pooled Theorem 15 = sequential (labeling + ledger)"
    ~count:10
    QCheck.(triple (int_range 2 200) (int_range 1 3) (int_range 0 100000))
    (fun (n, a, seed) ->
      let graph = Gen.forest_union ~n ~arboricity:a ~seed in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let run workers =
        Theorem2.run ~workers ~spec:matching_spec ~graph ~a ~ids
          ~f:Complexity.f_linear ()
      in
      let seq = run 1 and par = run 3 in
      labels_equal graph seq.Theorem2.labeling par.Theorem2.labeling
      && Round_cost.phases seq.Theorem2.cost
         = Round_cost.phases par.Theorem2.cost)

let test_pooled_forest_with_invariants () =
  (* a forest gives phase 3 many components to fan out; run the pooled
     path with the proof invariant and the owner-disjointness checks on *)
  let forest = Gen.random_forest ~n:600 ~trees:13 ~seed:92 in
  let ids = Ids.permuted ~n:600 ~seed:93 in
  let seq =
    Theorem1.run ~workers:1 ~spec:mis_spec ~tree:forest ~ids
      ~f:Complexity.f_linear ()
  in
  let par =
    Theorem1.run ~workers:4 ~check_invariants:true ~spec:mis_spec ~tree:forest
      ~ids ~f:Complexity.f_linear ()
  in
  check "pooled labeling identical" true
    (labels_equal forest seq.Theorem1.labeling par.Theorem1.labeling);
  check "pooled ledger identical" true
    (Round_cost.phases seq.Theorem1.cost = Round_cost.phases par.Theorem1.cost);
  check "pooled result valid" true
    (Nec.is_valid Tl_problems.Mis.problem forest par.Theorem1.labeling);
  let g = Gen.power_law_union ~n:500 ~arboricity:2 ~seed:94 in
  let ids = Ids.permuted ~n:500 ~seed:95 in
  let seq2 =
    Theorem2.run ~workers:1 ~spec:matching_spec ~graph:g ~a:2 ~ids
      ~f:Complexity.f_linear ()
  in
  let par2 =
    Theorem2.run ~workers:4 ~check_invariants:true ~spec:matching_spec ~graph:g
      ~a:2 ~ids ~f:Complexity.f_linear ()
  in
  check "pooled stars identical" true
    (labels_equal g seq2.Theorem2.labeling par2.Theorem2.labeling);
  check "pooled stars ledger identical" true
    (Round_cost.phases seq2.Theorem2.cost = Round_cost.phases par2.Theorem2.cost)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_theorem1_random_trees;
      prop_theorem2_random_graphs;
      prop_theorem2_hub_graphs;
      prop_theorem1_explicit_k;
      prop_sinkless_random_trees;
      prop_baseline_random_trees;
      prop_invariants_random;
      prop_gather_charge_is_flooding_cost;
      prop_pooled_theorem1_bit_identical;
      prop_pooled_theorem2_bit_identical;
    ]

let () =
  Alcotest.run "tl_core"
    [
      ( "complexity",
        [
          Alcotest.test_case "solve_g inverts" `Quick test_solve_g_inverts;
          Alcotest.test_case "g for f=id" `Quick test_g_for_linear_f;
          Alcotest.test_case "theorem 3 sublogarithmic" `Quick test_theorem3_is_strongly_sublogarithmic;
          Alcotest.test_case "theorem 1 prediction" `Quick test_theorem1_prediction_shapes;
          Alcotest.test_case "theorem 2 prediction" `Quick test_theorem2_prediction;
          Alcotest.test_case "lower-bound lifting" `Quick test_lift_lower_bound;
          Alcotest.test_case "choose_k" `Quick test_choose_k;
        ] );
      ( "theorem1",
        [
          Alcotest.test_case "MIS on tree families" `Quick test_theorem1_mis;
          Alcotest.test_case "coloring on tree families" `Quick test_theorem1_coloring;
          Alcotest.test_case "explicit k sweep" `Quick test_theorem1_explicit_k;
          Alcotest.test_case "id robustness" `Quick test_theorem1_id_robustness;
          Alcotest.test_case "cost ledger" `Quick test_theorem1_ledger;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "matching on graph families" `Quick test_theorem2_matching;
          Alcotest.test_case "edge coloring on graph families" `Quick test_theorem2_edge_coloring;
          Alcotest.test_case "rho sweep" `Quick test_theorem2_rho;
          Alcotest.test_case "doubles as 2Δ-1 coloring" `Quick test_theorem2_2delta_decoding;
          Alcotest.test_case "(Δ+1)-coloring pipeline" `Quick test_delta_coloring_pipeline;
          Alcotest.test_case "(2Δ-1) pipeline" `Quick test_two_delta_pipeline;
        ] );
      ( "sinkless",
        [
          Alcotest.test_case "valid on tree families" `Quick test_sinkless_on_trees;
          Alcotest.test_case "Θ(log n) rounds" `Quick test_sinkless_log_rounds;
        ] );
      ( "separation",
        [
          Alcotest.test_case "transform beats direct" `Quick test_transform_beats_direct_on_high_degree_tree;
          Alcotest.test_case "direct baselines valid" `Quick test_direct_baselines;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "proof invariants at phase boundaries" `Quick
            test_proof_invariants;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "pipelines on forests" `Quick test_pipelines_on_forests;
          Alcotest.test_case "bit-identical reruns" `Quick test_determinism;
          Alcotest.test_case "pooled runs with invariant checks" `Quick
            test_pooled_forest_with_invariants;
          Alcotest.test_case "id independence of validity" `Quick
            test_ids_change_solution_not_validity;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "BE13-style edge coloring" `Quick test_baseline_edge_coloring;
          Alcotest.test_case "BE13-style matching" `Quick test_baseline_matching;
          Alcotest.test_case "O(log n) rounds" `Quick test_baseline_log_rounds;
        ] );
      ("properties", qcheck_tests);
      ( "scale",
        [
          Alcotest.test_case "half-million-node pipeline" `Slow
            (fun () ->
              let n = 500_000 in
              let tree = Gen.random_tree ~n ~seed:88 in
              let ids = Ids.permuted ~n ~seed:89 in
              let r = Pipeline.mis_on_tree ~tree ~ids () in
              check "valid at scale" true r.Pipeline.valid;
              check "rounds stay small" true (r.Pipeline.total_rounds < 300));
        ] );
    ]
