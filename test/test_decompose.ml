(* Tests for the decompositions: Algorithm 1 (rake-and-compress) with the
   Lemma 9/10/11 certificates, and Algorithm 3 with the Lemma 13/14 and
   star certificates. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Semi_graph = Tl_graph.Semi_graph
module Ids = Tl_local.Ids
module RC = Tl_decompose.Rake_compress
module AD = Tl_decompose.Arb_decompose

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Rake-and-compress ---------- *)

let rc_of ?(k = 3) (n, seed) =
  let tree = Gen.random_tree ~n ~seed in
  (tree, RC.run tree ~k ~ids:(Ids.permuted ~n ~seed:(seed + 1)))

let test_rc_marks_everything () =
  List.iter
    (fun spec ->
      let tree, rc = rc_of spec in
      ignore tree;
      check "lemma 9" true (RC.check_lemma9 rc))
    [ (1, 0); (2, 1); (50, 2); (500, 3); (2000, 4) ]

let test_rc_path_is_all_compress () =
  (* on a path with k >= 2 every node is compressed in iteration 1 *)
  let tree = Gen.path 20 in
  let rc = RC.run tree ~k:3 ~ids:(Ids.identity 20) in
  check_int "one iteration" 1 (RC.iterations rc);
  List.iter
    (fun v ->
      check "compressed" true (RC.mark rc v = RC.Compressed 1))
    (List.init 20 Fun.id)

let test_rc_star_rakes_leaves () =
  (* star with high-degree center and k = 3: leaves rake, center follows *)
  let tree = Gen.star 20 in
  let rc = RC.run tree ~k:3 ~ids:(Ids.identity 20) in
  check "leaf raked" true (RC.mark rc 5 = RC.Raked 1);
  check "center in later layer" true (RC.layer_index rc 0 > RC.layer_index rc 5)

let test_rc_total_order () =
  let tree, rc = rc_of (100, 7) in
  (* the order is total and antisymmetric *)
  for u = 0 to 99 do
    for v = 0 to 99 do
      if u <> v then
        check "antisymmetry" true (RC.is_higher rc u v <> RC.is_higher rc v u)
    done
  done;
  Graph.iter_edges
    (fun e _ ->
      let hi = RC.higher_endpoint rc e and lo = RC.lower_endpoint rc e in
      check "endpoints differ" true (hi <> lo);
      check "hi is higher" true (RC.is_higher rc hi lo))
    tree

let test_rc_lemma10 () =
  List.iter
    (fun (spec, k) ->
      let tree, rc =
        let n, seed = spec in
        let tree = Gen.random_tree ~n ~seed in
        (tree, RC.run tree ~k ~ids:(Ids.permuted ~n ~seed:(seed + 1)))
      in
      ignore tree;
      check "lemma 10" true (RC.check_lemma10 rc);
      check "T_C underlying degree" true
        (Semi_graph.max_underlying_degree (RC.t_c rc) <= k))
    [ ((200, 8), 2); ((200, 9), 3); ((500, 10), 5); ((1000, 11), 8) ]

let test_rc_lemma11 () =
  List.iter
    (fun spec ->
      let _, rc = rc_of spec in
      check "lemma 11" true (RC.check_lemma11 rc))
    [ (50, 12); (300, 13); (1500, 14) ]

let test_rc_balanced_tree () =
  (* the lower-bound instances: balanced Δ-regular trees *)
  List.iter
    (fun (delta, n, k) ->
      let tree = Gen.balanced_regular_tree ~delta ~n in
      let rc = RC.run tree ~k ~ids:(Ids.identity n) in
      check "lemma 9" true (RC.check_lemma9 rc);
      check "lemma 10" true (RC.check_lemma10 rc);
      check "lemma 11" true (RC.check_lemma11 rc))
    [ (3, 100, 2); (4, 300, 3); (6, 500, 4) ]

let test_rc_partition () =
  let _, rc = rc_of (150, 15) in
  let c = List.length (RC.compressed_nodes rc) in
  let r = List.length (RC.raked_nodes rc) in
  check_int "partition" 150 (c + r)

let test_rc_tc_tr_structure () =
  let tree, rc = rc_of (80, 16) in
  let t_c = RC.t_c rc in
  let t_r = RC.t_r rc in
  (* every edge of the tree is present in T_C or T_R (or both) *)
  Graph.iter_edges
    (fun e _ ->
      check "edge present somewhere" true
        (Semi_graph.edge_present t_c e || Semi_graph.edge_present t_r e))
    tree;
  (* half-edges are partitioned between T_C and T_R *)
  for h = 0 to Graph.n_half_edges tree - 1 do
    let in_c = Semi_graph.half_edge_present t_c h in
    let in_r = Semi_graph.half_edge_present t_r h in
    check "half-edge in exactly one part" true (in_c <> in_r)
  done

let test_rc_rejects () =
  check "k < 2" true
    (try RC.run (Gen.path 3) ~k:1 ~ids:(Ids.identity 3) |> ignore; false
     with Invalid_argument _ -> true);
  check "non-forest" true
    (try RC.run (Gen.cycle 5) ~k:3 ~ids:(Ids.identity 5) |> ignore; false
     with Invalid_argument _ -> true)

let test_rc_on_forest () =
  let f = Gen.random_forest ~n:200 ~trees:6 ~seed:20 in
  let rc = RC.run f ~k:3 ~ids:(Ids.permuted ~n:200 ~seed:21) in
  check "lemma 9 on forest" true (RC.check_lemma9 rc);
  check "lemma 10 on forest" true (RC.check_lemma10 rc);
  check "lemma 11 on forest" true (RC.check_lemma11 rc)

(* ---------- Arboricity decomposition ---------- *)

let ad_of ~a ~k (n, seed) =
  let g =
    if a = 1 then Gen.random_tree ~n ~seed
    else Gen.forest_union ~n ~arboricity:a ~seed
  in
  (g, AD.run g ~a ~k ~ids:(Ids.permuted ~n ~seed:(seed + 1)))

let test_ad_marks_everything () =
  List.iter
    (fun (spec, a, k) ->
      let _, d = ad_of ~a ~k spec in
      check "lemma 13" true (AD.check_lemma13 d);
      check "all layers positive" true
        (List.for_all (fun v -> AD.layer d v >= 1)
           (List.init (fst spec) Fun.id)))
    [ ((1, 0), 1, 5); ((100, 1), 1, 5); ((200, 2), 2, 10); ((400, 3), 3, 15) ]

let test_ad_lemma14 () =
  List.iter
    (fun (spec, a, k) ->
      let _, d = ad_of ~a ~k spec in
      check "lemma 14" true (AD.check_lemma14 d);
      check "typical degree direct" true (AD.typical_max_degree d <= k))
    [ ((300, 4), 1, 5); ((300, 5), 2, 10); ((600, 6), 3, 20) ]

let test_ad_atypical_bound () =
  List.iter
    (fun (spec, a, k) ->
      let _, d = ad_of ~a ~k spec in
      check "atypical <= 2a" true (AD.check_atypical_bound d))
    [ ((300, 7), 2, 10); ((500, 8), 3, 15) ]

let test_ad_forests_and_stars () =
  List.iter
    (fun (spec, a, k) ->
      let _, d = ad_of ~a ~k spec in
      check "forests" true (AD.check_forests d);
      check "stars" true (AD.check_stars d))
    [ ((200, 9), 2, 10); ((400, 10), 3, 15); ((150, 11), 1, 5) ]

let test_ad_edge_partition () =
  let g, d = ad_of ~a:2 ~k:10 (250, 12) in
  let typical = List.length (AD.typical_edges d) in
  let atypical = List.length (AD.atypical_edges d) in
  check_int "partition of edges" (Graph.n_edges g) (typical + atypical);
  (* every atypical edge belongs to exactly one F_{i,j} class *)
  List.iter
    (fun e ->
      let i, j = AD.star_class d e in
      check "class assigned" true (i >= 1 && i <= AD.b d && j >= 1 && j <= 3))
    (AD.atypical_edges d);
  List.iter
    (fun e -> check "typical unassigned" true (AD.star_class d e = (0, 0)))
    (AD.typical_edges d)

let test_ad_stars_cover_atypical () =
  let _, d = ad_of ~a:2 ~k:10 (250, 13) in
  let covered = ref 0 in
  for i = 1 to AD.b d do
    for j = 1 to 3 do
      List.iter
        (fun (_, edges) -> covered := !covered + List.length edges)
        (AD.stars d ~i ~j)
    done
  done;
  check_int "stars cover atypical edges" (List.length (AD.atypical_edges d)) !covered

let test_ad_g_e2 () =
  let g, d = ad_of ~a:2 ~k:10 (250, 14) in
  ignore g;
  let sg = AD.g_e2 d in
  check "rank 2 everywhere" true
    (List.for_all (fun e -> Semi_graph.rank sg e = 2) (Semi_graph.edges sg));
  check "degree bound" true (Semi_graph.max_underlying_degree sg <= AD.k d)

let test_ad_planar () =
  let g = Gen.triangulated_grid 12 in
  let n = Graph.n_nodes g in
  let d = AD.run g ~a:3 ~k:15 ~ids:(Ids.permuted ~n ~seed:15) in
  check "lemma 13" true (AD.check_lemma13 d);
  check "lemma 14" true (AD.check_lemma14 d);
  check "stars" true (AD.check_stars d)

let test_ad_orientation_corollary () =
  List.iter
    (fun (spec, a, k) ->
      let g, d = ad_of ~a ~k spec in
      check "acyclic, out-degree <= k" true (AD.check_acyclic_orientation d);
      let orientation = AD.out_degree_orientation d in
      check_int "orientation covers all edges" (Graph.n_edges g)
        (Array.length orientation))
    [ ((200, 15), 2, 10); ((400, 16), 3, 15); ((150, 17), 1, 5) ];
  (* hub-heavy instance: the bound k is actually stressed *)
  let g = Gen.power_law_union ~n:2000 ~arboricity:2 ~seed:18 in
  let d = AD.run g ~a:2 ~k:10 ~ids:(Ids.permuted ~n:2000 ~seed:19) in
  check "hub orientation" true (AD.check_acyclic_orientation d);
  check "out degree positive" true (AD.max_out_degree d >= 1)

let test_ad_rejects () =
  check "a < 1" true
    (try AD.run (Gen.path 3) ~a:0 ~k:5 ~ids:(Ids.identity 3) |> ignore; false
     with Invalid_argument _ -> true);
  check "k < 5a" true
    (try AD.run (Gen.path 3) ~a:2 ~k:9 ~ids:(Ids.identity 3) |> ignore; false
     with Invalid_argument _ -> true)

let test_ad_dense_graph_fails_gracefully () =
  (* a clique has arboricity ~ n/2; claiming a = 1 must be caught by the
     Lemma 13 iteration guard rather than looping forever *)
  let g = Gen.complete 30 in
  check "guard fires" true
    (try AD.run g ~a:1 ~k:5 ~ids:(Ids.identity 30) |> ignore; false
     with Failure _ -> true)

(* ---------- qcheck properties ---------- *)

let prop_rc_certificates =
  QCheck.Test.make ~name:"rake-and-compress certificates on random trees"
    ~count:40
    QCheck.(triple (int_range 1 300) (int_range 2 10) (int_range 0 100000))
    (fun (n, k, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let rc = RC.run tree ~k ~ids:(Ids.permuted ~n ~seed:(seed + 1)) in
      RC.check_lemma9 rc && RC.check_lemma10 rc && RC.check_lemma11 rc)

let prop_rc_halfedge_partition =
  QCheck.Test.make ~name:"T_C/T_R half-edge partition" ~count:30
    QCheck.(pair (int_range 2 200) (int_range 0 100000))
    (fun (n, seed) ->
      let tree = Gen.random_tree ~n ~seed in
      let rc = RC.run tree ~k:3 ~ids:(Ids.permuted ~n ~seed:(seed + 1)) in
      let t_c = RC.t_c rc and t_r = RC.t_r rc in
      let ok = ref true in
      for h = 0 to Graph.n_half_edges tree - 1 do
        if Semi_graph.half_edge_present t_c h = Semi_graph.half_edge_present t_r h
        then ok := false
      done;
      !ok)

let prop_ad_certificates =
  QCheck.Test.make ~name:"Algorithm 3 certificates on arboricity-a graphs"
    ~count:30
    QCheck.(
      quad (int_range 2 200) (int_range 1 4) (int_range 0 3) (int_range 0 100000))
    (fun (n, a, kslack, seed) ->
      let g = Gen.forest_union ~n ~arboricity:a ~seed in
      let k = (5 * a) + (kslack * a) in
      let d = AD.run g ~a ~k ~ids:(Ids.permuted ~n ~seed:(seed + 1)) in
      AD.check_lemma13 d && AD.check_lemma14 d && AD.check_atypical_bound d
      && AD.check_forests d && AD.check_stars d)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rc_certificates; prop_rc_halfedge_partition; prop_ad_certificates ]

let () =
  Alcotest.run "tl_decompose"
    [
      ( "rake_compress",
        [
          Alcotest.test_case "lemma 9" `Quick test_rc_marks_everything;
          Alcotest.test_case "path compresses" `Quick test_rc_path_is_all_compress;
          Alcotest.test_case "star rakes" `Quick test_rc_star_rakes_leaves;
          Alcotest.test_case "total order" `Quick test_rc_total_order;
          Alcotest.test_case "lemma 10" `Quick test_rc_lemma10;
          Alcotest.test_case "lemma 11" `Quick test_rc_lemma11;
          Alcotest.test_case "balanced regular trees" `Quick test_rc_balanced_tree;
          Alcotest.test_case "partition" `Quick test_rc_partition;
          Alcotest.test_case "T_C / T_R structure" `Quick test_rc_tc_tr_structure;
          Alcotest.test_case "input validation" `Quick test_rc_rejects;
          Alcotest.test_case "forests accepted" `Quick test_rc_on_forest;
        ] );
      ( "arb_decompose",
        [
          Alcotest.test_case "lemma 13" `Quick test_ad_marks_everything;
          Alcotest.test_case "lemma 14" `Quick test_ad_lemma14;
          Alcotest.test_case "atypical bound" `Quick test_ad_atypical_bound;
          Alcotest.test_case "forests and stars" `Quick test_ad_forests_and_stars;
          Alcotest.test_case "edge partition" `Quick test_ad_edge_partition;
          Alcotest.test_case "stars cover atypical" `Quick test_ad_stars_cover_atypical;
          Alcotest.test_case "G[E2] structure" `Quick test_ad_g_e2;
          Alcotest.test_case "orientation corollary" `Quick test_ad_orientation_corollary;
          Alcotest.test_case "planar instance" `Quick test_ad_planar;
          Alcotest.test_case "input validation" `Quick test_ad_rejects;
          Alcotest.test_case "bad arboricity guard" `Quick test_ad_dense_graph_fails_gracefully;
        ] );
      ("properties", qcheck_tests);
    ]
