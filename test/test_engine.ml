(* Tests for the execution engine: Topology compilation, differential
   equivalence of the Naive / Seq / Par steppers across graph families
   and machines, failure semantics, tracing, and the Runtime wrappers. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Tree = Tl_graph.Tree
module Semi_graph = Tl_graph.Semi_graph
module Topology = Tl_engine.Topology
module Engine = Tl_engine.Engine
module Trace = Tl_engine.Trace
module Runtime = Tl_local.Runtime
module Round_cost = Tl_local.Round_cost
module Ids = Tl_local.Ids
module CV = Tl_symmetry.Cole_vishkin
module Linial = Tl_symmetry.Linial

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let modes = [ Engine.Naive; Engine.Seq; Engine.Par 2; Engine.Par 4 ]

(* Graph families exercised by the differential properties: random trees,
   forest unions (arboricity 2), stars (one huge hub) and
   preferential-attachment trees (skewed hubs). *)
let family ~n ~seed ~pick =
  let n = max 2 n in
  match pick mod 4 with
  | 0 -> Gen.random_tree ~n ~seed
  | 1 -> Gen.forest_union ~n ~arboricity:2 ~seed
  | 2 -> Gen.star n
  | _ -> Gen.power_law_tree ~n ~seed

(* ---------- machines ---------- *)

let flood_step ~round:_ ~node:_ s ~neighbors =
  s || List.exists (fun (_, _, su) -> su) neighbors

(* greedy MIS by local id maximum: 0 undecided / 1 in / 2 out *)
let mis_step ids ~round:_ ~node:v s ~neighbors =
  if s <> 0 then s
  else if List.exists (fun (_, _, su) -> su = 1) neighbors then 2
  else if List.for_all (fun (u, _, su) -> su <> 0 || ids.(u) < ids.(v)) neighbors
  then 1
  else 0

(* leaf peeling: a node peels once at most one neighbor is unpeeled *)
let peel_step ~round:_ ~node:_ s ~neighbors =
  s
  || List.length (List.filter (fun (_, _, su) -> not su) neighbors) <= 1

(* ---------- Topology vs Semi_graph ---------- *)

let topo_agrees sg =
  let topo = Topology.compile sg in
  Topology.n_present topo = Semi_graph.n_present_nodes sg
  && Topology.max_degree topo = Semi_graph.max_underlying_degree sg
  && List.for_all
       (fun v ->
         Topology.present topo v
         && Topology.neighbor_pairs topo v = Semi_graph.rank2_neighbors sg v
         && Topology.degree topo v
            = List.length (Semi_graph.rank2_neighbors sg v)
         && Topology.neighbor_nodes topo v
            = List.map fst (Semi_graph.rank2_neighbors sg v))
       (Semi_graph.nodes sg)

let prop_topology_matches_semigraph =
  QCheck.Test.make ~name:"Topology.compile agrees with rank2_neighbors"
    ~count:60
    QCheck.(triple (int_range 2 120) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      topo_agrees (Semi_graph.of_graph g))

let prop_topology_on_subsets =
  QCheck.Test.make ~name:"Topology.compile agrees on node subsets" ~count:40
    QCheck.(triple (int_range 3 120) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      (* drop every third node: absent nodes and their edges must vanish
         from the snapshot exactly like they do from the semi-graph *)
      let keep = Array.init (Graph.n_nodes g) (fun v -> v mod 3 <> 2) in
      topo_agrees (Semi_graph.of_node_subset g keep))

(* ---------- differential: all modes bit-identical ---------- *)

let outcomes_equal (a : 'a Engine.outcome) (b : 'a Engine.outcome) =
  a.Engine.rounds = b.Engine.rounds && a.Engine.states = b.Engine.states

let all_modes_agree run_in =
  let reference = run_in Engine.Naive in
  List.for_all (fun m -> outcomes_equal (run_in m) reference) modes

let prop_flood_differential =
  QCheck.Test.make ~name:"flood: modes and scheds bit-identical" ~count:50
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let run_in ?sched mode =
        Engine.run_until_stable ~mode ?sched ~topo
          ~init:(fun v -> v = 0)
          ~step:flood_step ~equal:Bool.equal
          ~max_rounds:(Graph.n_nodes g + 1)
          ()
      in
      all_modes_agree (fun m -> run_in m)
      && outcomes_equal
           (run_in ~sched:Engine.Full_scan Engine.Seq)
           (run_in Engine.Naive))

let prop_mis_differential =
  QCheck.Test.make ~name:"MIS machine: modes bit-identical" ~count:50
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let n = Graph.n_nodes g in
      let ids = Ids.permuted ~n ~seed:(seed + 3) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      all_modes_agree (fun mode ->
          Engine.run ~mode ~topo
            ~init:(fun _ -> 0)
            ~step:(mis_step ids)
            ~halted:(fun s -> s <> 0)
            ~max_rounds:(n + 1) ()))

let prop_peel_differential =
  QCheck.Test.make ~name:"leaf peeling: modes bit-identical" ~count:50
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      all_modes_agree (fun mode ->
          Engine.run_until_stable ~mode ~topo
            ~init:(fun _ -> false)
            ~step:peel_step ~equal:Bool.equal
            ~max_rounds:(Graph.n_nodes g + 1)
            ()))

let prop_cv_differential =
  (* end to end through Runtime: CV 3-coloring is the repo's main
     engine-backed state machine *)
  QCheck.Test.make ~name:"CV 3-coloring: modes bit-identical via Runtime"
    ~count:30
    QCheck.(pair (int_range 2 120) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n ~seed in
      let parent = Tree.parents_forest g in
      let ids = Ids.permuted ~n ~seed:(seed + 1) in
      let sg = Semi_graph.of_graph g in
      let nodes = List.init n Fun.id in
      let run_in mode =
        let saved = !Engine.default_mode in
        Engine.default_mode := mode;
        Fun.protect
          ~finally:(fun () -> Engine.default_mode := saved)
          (fun () -> CV.color3_runtime ~sg ~nodes ~parent ~ids)
      in
      let reference = run_in Engine.Naive in
      List.for_all (fun m -> run_in m = reference) modes)

let prop_run_rounds_differential =
  (* max-propagation for a fixed number of rounds; also checks that the
     engine keeps executing (and counting) after the machine goes quiet *)
  QCheck.Test.make ~name:"run_rounds: modes bit-identical, exact count"
    ~count:40
    QCheck.(triple (int_range 2 120) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 5) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let r = 3 + (seed mod 5) in
      let run_in mode =
        Engine.run_rounds ~mode ~topo
          ~init:(fun v -> ids.(v))
          ~step:(fun ~round:_ ~node:_ s ~neighbors ->
            List.fold_left (fun acc (_, _, su) -> max acc su) s neighbors)
          ~rounds:r ()
      in
      let reference = run_in Engine.Naive in
      reference.Engine.rounds = r
      && List.for_all (fun m -> outcomes_equal (run_in m) reference) modes)

(* ---------- Runtime wrappers (regression vs the naive reference) ---------- *)

let named_families =
  [
    ("path", Gen.path 40);
    ("star", Gen.star 30);
    ("double-star", Gen.double_star 8 9);
    ("caterpillar", Gen.caterpillar ~spine:10 ~legs:3);
    ("random-tree", Gen.random_tree ~n:80 ~seed:11);
    ("forest-union", Gen.forest_union ~n:60 ~arboricity:2 ~seed:13);
    ("power-law-tree", Gen.power_law_tree ~n:70 ~seed:17);
  ]

let test_runtime_matches_naive () =
  List.iter
    (fun (name, g) ->
      let sg = Semi_graph.of_graph g in
      let n = Graph.n_nodes g in
      let init v = v = 0 in
      let default =
        Runtime.run ~sg ~init ~step:flood_step
          ~halted:(fun s -> s)
          ~max_rounds:(n + 1)
      in
      let naive =
        Runtime.run_with ~mode:Engine.Naive ~sg ~init ~step:flood_step
          ~halted:(fun s -> s)
          ~max_rounds:(n + 1) ()
      in
      check (name ^ ": run states match naive") true
        (default.Runtime.states = naive.Runtime.states);
      check_int (name ^ ": run rounds match naive") naive.Runtime.rounds
        default.Runtime.rounds;
      let default_s =
        Runtime.run_until_stable ~sg ~init ~step:flood_step ~equal:Bool.equal
          ~max_rounds:(n + 1)
      in
      let naive_s =
        Runtime.run_until_stable_with ~mode:Engine.Naive ~sg ~init
          ~step:flood_step ~equal:Bool.equal
          ~max_rounds:(n + 1) ()
      in
      check (name ^ ": stable states match naive") true
        (default_s.Runtime.states = naive_s.Runtime.states);
      check_int
        (name ^ ": stable rounds match naive")
        naive_s.Runtime.rounds default_s.Runtime.rounds)
    named_families

(* ---------- Linial on the engine ---------- *)

let prop_linial_topo_equivalence =
  QCheck.Test.make ~name:"Linial.reduce_topo == Linial.reduce" ~count:30
    QCheck.(pair (int_range 2 120) (int_range 0 100000))
    (fun (n, seed) ->
      let g = family ~n ~seed ~pick:(seed mod 4) in
      let n = Graph.n_nodes g in
      let nodes = List.init n Fun.id in
      let ids = Ids.permuted ~n ~seed:(seed + 7) in
      let colors_a = Array.map (fun id -> id - 1) ids in
      let colors_b = Array.copy colors_a in
      let max_degree = Graph.max_degree g in
      let ra =
        Linial.reduce
          ~neighbors:(fun v -> Array.to_list (Graph.neighbors g v))
          ~nodes ~colors:colors_a ~palette:n ~max_degree
      in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let rb =
        Linial.reduce_topo ~topo ~nodes ~colors:colors_b ~palette:n ~max_degree
      in
      ra = rb && colors_a = colors_b)

(* ---------- failure semantics ---------- *)

let failure_message f =
  match f () with
  | exception Failure m -> Some m
  | _ -> None

let test_max_rounds_failure_parity () =
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path 5)) in
  (* never halts, never changes: naive spins to max_rounds, the
     active-set stepper stalls — both must raise the same Failure *)
  let frozen mode () =
    Engine.run ~mode ~topo
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
      ~halted:(fun _ -> false)
      ~max_rounds:10 ()
  in
  let m_naive = failure_message (frozen Engine.Naive) in
  check "naive raises" true (m_naive <> None);
  List.iter
    (fun mode ->
      Alcotest.(check (option string))
        ("stall parity: " ^ Engine.mode_to_string mode)
        m_naive
        (failure_message (frozen mode)))
    modes;
  (* never stabilizes: every mode must exhaust max_rounds identically *)
  let blinker mode () =
    Engine.run_until_stable ~mode ~topo
      ~init:(fun _ -> false)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> not s)
      ~equal:Bool.equal ~max_rounds:7 ()
  in
  let m_naive = failure_message (blinker Engine.Naive) in
  check "naive blinker raises" true (m_naive <> None);
  List.iter
    (fun mode ->
      Alcotest.(check (option string))
        ("blinker parity: " ^ Engine.mode_to_string mode)
        m_naive
        (failure_message (blinker mode)))
    modes

let test_empty_present_set () =
  let g = Gen.path 4 in
  let sg = Semi_graph.of_node_subset g (Array.make 4 false) in
  let topo = Topology.compile sg in
  List.iter
    (fun mode ->
      let o =
        Engine.run ~mode ~topo
          ~init:(fun _ -> 0)
          ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s + 1)
          ~halted:(fun _ -> false)
          ~max_rounds:5 ()
      in
      check_int
        ("no present nodes costs 0 rounds: " ^ Engine.mode_to_string mode)
        0 o.Engine.rounds)
    modes

(* ---------- tracing and the ledger bridge ---------- *)

let test_trace_metrics () =
  let n = 64 in
  let g = Gen.random_tree ~n ~seed:23 in
  let sg = Semi_graph.of_graph g in
  let trace = Trace.create ~label:"test-flood" () in
  let o =
    Runtime.run_with ~trace ~sg
      ~init:(fun v -> v = 0)
      ~step:flood_step
      ~halted:(fun s -> s)
      ~max_rounds:(n + 1) ()
  in
  let m = Trace.metrics trace in
  check_int "trace rounds = outcome rounds" o.Runtime.rounds m.Trace.rounds;
  check_int "naive_steps = rounds * n" (o.Runtime.rounds * n)
    m.Trace.naive_steps;
  check "active-set executed fewer steps" true (m.Trace.steps < m.Trace.naive_steps);
  check_int "steps = sum of per-round active"
    (List.fold_left (fun acc r -> acc + r.Trace.active) 0 (Trace.records trace))
    m.Trace.steps;
  check "max_active bounded by n" true (m.Trace.max_active <= n);
  let json = Trace.to_json trace in
  check "json carries the label" true
    (let needle = "\"label\":\"test-flood\"" in
     let rec find i =
       i + String.length needle <= String.length json
       && (String.sub json i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  (* ledger bridge: the measured engine rounds land in a named phase *)
  let ledger = Round_cost.create () in
  Runtime.charge_trace ledger trace;
  check_int "charge_trace adds engine:<label> phase" m.Trace.rounds
    (Round_cost.get ledger "engine:test-flood")

let test_trace_sink () =
  let got = ref [] in
  let saved = !Engine.trace_sink in
  Engine.trace_sink := Some (fun t -> got := t :: !got);
  Fun.protect
    ~finally:(fun () -> Engine.trace_sink := saved)
    (fun () ->
      let sg = Semi_graph.of_graph (Gen.path 12) in
      ignore
        (Runtime.run ~sg
           ~init:(fun v -> v = 0)
           ~step:flood_step
           ~halted:(fun s -> s)
           ~max_rounds:20));
  check_int "sink received exactly one trace" 1 (List.length !got);
  check "sink trace measured rounds" true
    ((Trace.metrics (List.hd !got)).Trace.rounds > 0)

let test_trace_zero_rounds () =
  (* a trace that never recorded a round: every metric must be defined,
     in particular naive_steps = 0 must not blow up step_savings in the
     JSON (it prints 0, not nan/inf) *)
  let tr = Trace.create ~label:"empty" () in
  Trace.set_meta tr ~mode:"seq" ~scheduling:"active-set" ~n_base:10
    ~n_present:0;
  Trace.finish tr ~total_s:0.0;
  let m = Trace.metrics tr in
  check_int "rounds" 0 m.Trace.rounds;
  check_int "steps" 0 m.Trace.steps;
  check_int "naive_steps" 0 m.Trace.naive_steps;
  check_int "max_active" 0 m.Trace.max_active;
  let j = Tl_obs.Json.parse (Trace.to_json tr) in
  let metrics = Option.get (Tl_obs.Json.member "metrics" j) in
  check "step_savings finite" true
    (Option.bind (Tl_obs.Json.member "step_savings" metrics) Tl_obs.Json.to_float
    = Some 0.);
  check "n_present 0 serialized" true
    (Option.bind (Tl_obs.Json.member "n_present" j) Tl_obs.Json.to_int = Some 0);
  check "empty rounds_detail" true
    (Option.bind (Tl_obs.Json.member "rounds_detail" j) Tl_obs.Json.to_list
    = Some [])

let test_trace_json_roundtrip () =
  (* rounds_detail through a real parser: tracked fields present,
     untracked (-1) fields omitted per the schema doc in trace.mli *)
  let tr = Trace.create ~label:"rt" () in
  Trace.set_meta tr ~mode:"naive" ~scheduling:"full-scan" ~n_base:4
    ~n_present:4;
  Trace.record tr
    { Trace.round = 1; active = 4; changed = 2; unhalted = 3; wall_s = 0.5 };
  Trace.record tr
    { Trace.round = 2; active = 3; changed = -1; unhalted = -1; wall_s = 0.25 };
  Trace.finish tr ~total_s:1.0;
  let open Tl_obs.Json in
  let j = parse (Trace.to_json tr) in
  let detail = Option.get (Option.bind (member "rounds_detail" j) to_list) in
  check_int "two detail rows" 2 (List.length detail);
  let r1 = List.nth detail 0 and r2 = List.nth detail 1 in
  check "r1 changed present" true
    (Option.bind (member "changed" r1) to_int = Some 2);
  check "r1 unhalted present" true
    (Option.bind (member "unhalted" r1) to_int = Some 3);
  check "r1 wall_s" true (Option.bind (member "wall_s" r1) to_float = Some 0.5);
  check "r2 changed omitted" true (member "changed" r2 = None);
  check "r2 unhalted omitted" true (member "unhalted" r2 = None);
  check "r2 active" true (Option.bind (member "active" r2) to_int = Some 3);
  check "label round-trips" true
    (Option.bind (member "label" j) to_str = Some "rt");
  (* the accessors added for the span bridge *)
  check "mode accessor" true (Trace.mode tr = "naive");
  check "scheduling accessor" true (Trace.scheduling tr = "full-scan");
  check_int "n_base accessor" 4 (Trace.n_base tr);
  check_int "n_present accessor" 4 (Trace.n_present tr)

(* ---------- mode parsing ---------- *)

let test_mode_strings () =
  List.iter
    (fun m ->
      check
        ("round-trip " ^ Engine.mode_to_string m)
        true
        (Engine.mode_of_string (Engine.mode_to_string m) = m))
    [ Engine.Naive; Engine.Seq; Engine.Par 2; Engine.Par 16 ];
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (match Engine.mode_of_string s with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [
      "par:0";
      "par:x";
      "threads";
      "";
      "shard:0";
      "par:+2" (* int_of_string would take it; digits-only must not *);
      " seq";
      "seq ";
      "par: 2";
      "par:2 ";
      "par:99999999999999999999" (* out of int range *);
    ];
  (* rejection messages name the offending input — callers surface them
     verbatim as usage errors *)
  (match Engine.mode_of_string "par:0" with
  | exception Invalid_argument msg ->
    check "par:0 message names the input" true
      (let rec find i =
         i + 7 <= String.length msg
         && (String.sub msg i 7 = "\"par:0\"" || find (i + 1))
       in
       find 0)
  | _ -> Alcotest.fail "par:0 must be rejected")

(* ---------- Pool ---------- *)

module Pool = Tl_engine.Pool

let test_pool_create () =
  let rejects label w =
    match Pool.create ~workers:w () with
    | exception Invalid_argument msg ->
      check label true
        (String.length msg > 0
        && String.sub msg 0 (min 11 (String.length msg)) = "Pool.create")
    | pool ->
      Alcotest.fail
        (Printf.sprintf "expected Invalid_argument on %d workers, got %d" w
           (Pool.workers pool))
  in
  rejects "rejects 0 workers" 0;
  rejects "rejects negative workers" (-3);
  (* 65+ used to be silently clamped to 64 — a typo'd --pool 640 ran at
     64 workers with plausible timings; now it is an explicit error *)
  rejects "rejects 65 workers" 65;
  rejects "rejects 1000 workers" 1000;
  check_int "64 workers accepted" 64 (Pool.workers (Pool.create ~workers:64 ()));
  let saved = !Pool.default_workers in
  Pool.default_workers := 5;
  check_int "create () reads default_workers" 5 (Pool.workers (Pool.create ()));
  Pool.default_workers := saved

let test_pool_map_deterministic () =
  let tasks = Array.init 37 (fun i -> i) in
  let expected = Array.map (fun x -> x * x) tasks in
  List.iter
    (fun w ->
      let pool = Pool.create ~workers:w () in
      let got = Pool.map pool ~tasks ~f:(fun ~worker:_ ~index:_ x -> x * x) in
      check (Printf.sprintf "map result workers=%d" w) true (got = expected))
    [ 1; 2; 3; 4; 7; 64 ]

let test_pool_chunking () =
  (* fixed contiguous chunking: task i runs on worker i / ceil(n/p),
     independent of scheduling *)
  let n = 10 and p = 3 in
  let tasks = Array.init n (fun i -> i) in
  let pool = Pool.create ~workers:p () in
  let owners = Pool.map pool ~tasks ~f:(fun ~worker ~index:_ _ -> worker) in
  let chunk = (n + p - 1) / p in
  check "contiguous chunks" true (owners = Array.init n (fun i -> i / chunk))

let test_pool_exception_lowest_index () =
  (* when several tasks raise, the lowest-index failure is re-raised —
     the same exception the sequential run would have surfaced first *)
  let tasks = Array.init 8 (fun i -> i) in
  let pool = Pool.create ~workers:4 () in
  match
    Pool.map pool ~tasks ~f:(fun ~worker:_ ~index:_ x ->
        if x = 6 then failwith "high";
        if x = 2 then failwith "low";
        x)
  with
  | exception Failure msg ->
    check "lowest-index failure wins" true (msg = "low")
  | _ -> Alcotest.fail "expected Failure"

let test_pool_commit_order () =
  let tasks = Array.init 23 (fun i -> i) in
  let pool = Pool.create ~workers:5 () in
  let order = ref [] in
  Pool.map_commit pool ~tasks
    ~work:(fun ~worker:_ ~index:_ x -> x)
    ~commit:(fun ~index r -> order := (index, r) :: !order);
  check "commit in task order" true
    (List.rev !order = List.init 23 (fun i -> (i, i)))

(* ---------- the persistent domain team ---------- *)

module Team = Tl_engine.Team

let test_team_coverage () =
  List.iter
    (fun w ->
      let hits = Array.make (max 1 w) 0 in
      Team.run ~workers:w (fun i -> hits.(i) <- hits.(i) + 1);
      check
        (Printf.sprintf "every index ran exactly once, workers=%d" w)
        true
        (Array.for_all (fun c -> c = 1) hits))
    [ 1; 2; 3; 4; 8 ]

let test_team_reuse () =
  (* the whole point: domains are spawned once and parked, not respawned
     per map / per round *)
  Team.prewarm 4;
  let s0 = Team.spawns () in
  check "prewarm spawned the members" true (s0 >= 3);
  for _ = 1 to 50 do
    Team.run ~workers:4 (fun _ -> ())
  done;
  check_int "50 team runs spawn nothing new" s0 (Team.spawns ());
  let pool = Pool.create ~workers:4 () in
  let tasks = Array.init 100 Fun.id in
  for _ = 1 to 10 do
    ignore (Pool.map pool ~tasks ~f:(fun ~worker:_ ~index:_ x -> x + 1))
  done;
  check_int "pool maps ride the same parked team" s0 (Team.spawns ());
  let saved = !Engine.par_grain in
  Engine.par_grain := 0;
  Fun.protect
    ~finally:(fun () -> Engine.par_grain := saved)
    (fun () ->
      let topo = Topology.compile (Semi_graph.of_graph (Gen.path 200)) in
      ignore
        (Engine.run_until_stable ~mode:(Engine.Par 4) ~topo
           ~init:(fun v -> v = 0)
           ~step:flood_step ~equal:Bool.equal ~max_rounds:201 ()));
  check_int "par rounds ride the same parked team" s0 (Team.spawns ())

let test_team_exception_lowest_index () =
  (* several workers raise; every member still finishes, and the lowest
     worker index's exception is re-raised *)
  match
    Team.run ~workers:4 (fun w ->
        if w = 3 then failwith "three";
        if w = 1 then failwith "one")
  with
  | exception Failure msg -> check "lowest worker index wins" true (msg = "one")
  | () -> Alcotest.fail "expected Failure"

let test_team_reentrant_inline () =
  (* a job calling back into the team (nested parallelism) must not
     deadlock on the barrier: the nested run degrades to inline *)
  let marks = Array.make 4 0 in
  Team.run ~workers:2 (fun w ->
      Team.run ~workers:2 (fun i -> marks.((w * 2) + i) <- 1));
  check "nested run covered all indices" true
    (Array.for_all (fun m -> m = 1) marks);
  (* and the team still works afterwards *)
  let hits = Array.make 3 0 in
  Team.run ~workers:3 (fun i -> hits.(i) <- 1);
  check "team alive after nested run" true (Array.for_all (fun m -> m = 1) hits)

(* ---------- flat layout vs boxed reference ---------- *)

module Flat = Tl_engine.Flat

let with_par_grain g f =
  let saved = !Engine.par_grain in
  Engine.par_grain := g;
  Fun.protect ~finally:(fun () -> Engine.par_grain := saved) f

(* grain 0 forces even tiny qcheck instances through the team; the
   default grain exercises the inline path. Results must not depend on
   either knob. *)
let flat_variants = [ (1, 2048); (1, 0); (2, 0); (3, 0); (4, 2048) ]

let record_sig t =
  List.map
    (fun r -> (r.Trace.round, r.Trace.active, r.Trace.changed, r.Trace.unhalted))
    (Trace.records t)

let prop_flat_flood_differential =
  QCheck.Test.make
    ~name:"flat flood == boxed flood (states, rounds, traces)" ~count:40
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let mr = Graph.n_nodes g + 1 in
      List.for_all
        (fun sched ->
          let boxed_tr = Trace.create () in
          let boxed =
            Engine.run_until_stable ~mode:Engine.Seq ~sched ~trace:boxed_tr
              ~topo
              ~init:(fun v -> v = 0)
              ~step:flood_step ~equal:Bool.equal ~max_rounds:mr ()
          in
          let boxed_ints = Array.map Bool.to_int boxed.Engine.states in
          List.for_all
            (fun (par, grain) ->
              with_par_grain grain (fun () ->
                  let tr = Trace.create () in
                  let o =
                    Flat.run_until_stable ~par ~sched ~trace:tr ~topo
                      ~kernel:(Flat.Kernels.flood ()) ~max_rounds:mr ()
                  in
                  o.Flat.rounds = boxed.Engine.rounds
                  && Flat.column o ~slot:0 = boxed_ints
                  && record_sig tr = record_sig boxed_tr
                  && Trace.layout tr = "flat"))
            flat_variants)
        [ Engine.Active_set; Engine.Full_scan ])

let prop_flat_mis_differential =
  QCheck.Test.make ~name:"flat MIS == boxed MIS (run with halting)" ~count:40
    QCheck.(triple (int_range 2 150) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let n = Graph.n_nodes g in
      let ids = Ids.permuted ~n ~seed:(seed + 3) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let boxed_tr = Trace.create () in
      let boxed =
        Engine.run ~mode:Engine.Seq ~trace:boxed_tr ~topo
          ~init:(fun _ -> 0)
          ~step:(mis_step ids)
          ~halted:(fun s -> s <> 0)
          ~max_rounds:(n + 1) ()
      in
      List.for_all
        (fun (par, grain) ->
          with_par_grain grain (fun () ->
              let tr = Trace.create () in
              let o =
                Flat.run ~par ~trace:tr ~topo
                  ~kernel:(Flat.Kernels.mis_local_max ~ids)
                  ~max_rounds:(n + 1) ()
              in
              o.Flat.rounds = boxed.Engine.rounds
              && Flat.column o ~slot:0 = boxed.Engine.states
              && record_sig tr = record_sig boxed_tr))
        flat_variants)

let prop_flat_run_rounds_differential =
  QCheck.Test.make ~name:"flat run_rounds == boxed run_rounds" ~count:30
    QCheck.(triple (int_range 2 120) (int_range 0 100000) (int_range 0 3))
    (fun (n, seed, pick) ->
      let g = family ~n ~seed ~pick in
      let n = Graph.n_nodes g in
      let ids = Ids.permuted ~n ~seed:(seed + 3) in
      let topo = Topology.compile (Semi_graph.of_graph g) in
      let r = 1 + (seed mod 4) in
      let boxed =
        Engine.run_rounds ~mode:Engine.Seq ~topo
          ~init:(fun _ -> 0)
          ~step:(mis_step ids) ~rounds:r ()
      in
      List.for_all
        (fun (par, grain) ->
          with_par_grain grain (fun () ->
              let o =
                Flat.run_rounds ~par ~topo
                  ~kernel:(Flat.Kernels.mis_local_max ~ids)
                  ~rounds:r ()
              in
              o.Flat.rounds = r && Flat.column o ~slot:0 = boxed.Engine.states))
        flat_variants)

let test_flat_failure_parity () =
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path 5)) in
  (* frozen machine: active set drains with unhalted nodes left — flat
     must fail fast with the byte-identical engine message *)
  let frozen_kernel =
    {
      Flat.name = "frozen";
      slots = 1;
      scratch_words = 0;
      init = (fun ~node:_ ~slot:_ -> 0);
      step = (fun ctx ~scratch:_ ~round:_ ~node:v -> ctx.Flat.nxt.(v) <- 0);
      halted = Some (fun _ ~node:_ -> false);
    }
  in
  let boxed_frozen () =
    Engine.run ~mode:Engine.Seq ~topo
      ~init:(fun _ -> 0)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
      ~halted:(fun _ -> false)
      ~max_rounds:10 ()
  in
  let flat_frozen () =
    Flat.run ~topo ~kernel:frozen_kernel ~max_rounds:10 ()
  in
  let m_boxed = failure_message boxed_frozen in
  check "boxed frozen raises" true (m_boxed <> None);
  Alcotest.(check (option string))
    "stall failure parity" m_boxed
    (failure_message flat_frozen);
  (* blinker: exhausts max_rounds in run_until_stable *)
  let blinker_kernel =
    {
      Flat.name = "blinker";
      slots = 1;
      scratch_words = 0;
      init = (fun ~node:_ ~slot:_ -> 0);
      step =
        (fun ctx ~scratch:_ ~round:_ ~node:v ->
          ctx.Flat.nxt.(v) <- 1 - ctx.Flat.cur.(v));
      halted = None;
    }
  in
  let boxed_blinker () =
    Engine.run_until_stable ~mode:Engine.Seq ~topo
      ~init:(fun _ -> false)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> not s)
      ~equal:Bool.equal ~max_rounds:7 ()
  in
  let flat_blinker () =
    Flat.run_until_stable ~topo ~kernel:blinker_kernel ~max_rounds:7 ()
  in
  let m_boxed = failure_message boxed_blinker in
  check "boxed blinker raises" true (m_boxed <> None);
  Alcotest.(check (option string))
    "max_rounds failure parity" m_boxed
    (failure_message flat_blinker);
  (* a kernel without a halting predicate cannot enter Flat.run *)
  (match Flat.run ~topo ~kernel:blinker_kernel ~max_rounds:7 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for halted-less kernel");
  ()

let test_flat_zero_alloc_per_step () =
  (* the flat hot path must allocate nothing on the minor heap per step:
     run flood down a long path (many rounds, tiny frontiers — the shape
     that amplifies any per-round or per-step allocation) and bound the
     whole run's minor-heap delta by a per-run constant. A 2-word leak
     per round would show up as ~40k words here. *)
  let n = 20_000 in
  let topo = Topology.compile (Semi_graph.of_graph (Gen.path n)) in
  let kernel = Flat.Kernels.flood () in
  ignore (Flat.run_until_stable ~topo ~kernel ~max_rounds:(n + 1) ());
  let w0 = Gc.minor_words () in
  let o = Flat.run_until_stable ~topo ~kernel ~max_rounds:(n + 1) () in
  let w1 = Gc.minor_words () in
  check_int "flood covered the path" (n - 1) o.Flat.rounds;
  check "flood reached every node" true
    (Array.for_all (fun s -> s = 1) (Flat.column o ~slot:0));
  let delta = w1 -. w0 in
  check
    (Printf.sprintf "per-run minor words bounded (got %.0f)" delta)
    true (delta < 2048.)

(* ---------- compile cache ---------- *)

let test_topology_cache_hit_and_invalidation () =
  Topology.clear_cache ();
  let g = Gen.random_tree ~n:40 ~seed:5 in
  let sg = Semi_graph.of_graph g in
  let h0, m0 = Topology.cache_stats () in
  let t1, hit1 = Topology.compile_cached_stat sg in
  let t2, hit2 = Topology.compile_cached_stat sg in
  check "first compile misses" true (not hit1);
  check "second compile hits" true hit2;
  check "hit returns the same snapshot" true (t1 == t2);
  let h1, m1 = Topology.cache_stats () in
  check_int "one hit counted" 1 (h1 - h0);
  check_int "one miss counted" 1 (m1 - m0);
  (* masking a node bumps the generation, making the old key unreachable *)
  let gen0 = Semi_graph.generation sg in
  Semi_graph.hide_node sg 0;
  check_int "generation bumped" (gen0 + 1) (Semi_graph.generation sg);
  let t3, hit3 = Topology.compile_cached_stat sg in
  check "mutation invalidates" true (not hit3);
  check "recompiled snapshot" true (not (t3 == t1));
  check "node masked out" true (not (Topology.present t3 0));
  (* hiding an already-hidden node must not bump the generation *)
  Semi_graph.hide_node sg 0;
  check_int "no-op hide keeps generation" (gen0 + 1) (Semi_graph.generation sg);
  let _, hit4 = Topology.compile_cached_stat sg in
  check "no-op hide keeps the entry live" true hit4

let test_topology_cache_eviction_generation () =
  (* generation bumps (hide_node / hide_edge) interleaved with FIFO
     overflow: every transition is predicted and the hit/miss counters
     must account for all of them exactly *)
  Topology.clear_cache ();
  Topology.set_cache_limit 2;
  let sg = Semi_graph.of_graph (Gen.random_tree ~n:30 ~seed:41) in
  let sg2 = Semi_graph.of_graph (Gen.path 10) in
  let sg3 = Semi_graph.of_graph (Gen.star 8) in
  let h0, m0 = Topology.cache_stats () in
  check "initial compile misses" true (not (snd (Topology.compile_cached_stat sg)));
  check "recompile hits" true (snd (Topology.compile_cached_stat sg));
  Semi_graph.hide_edge sg 0;
  check "hide_edge invalidates" true
    (not (snd (Topology.compile_cached_stat sg)));
  Semi_graph.hide_node sg 1;
  (* third generation of the same view: FIFO (limit 2) drops gen 0 *)
  check "hide_node invalidates again" true
    (not (snd (Topology.compile_cached_stat sg)));
  (* two fresh views overflow the bound and evict both sg generations *)
  check "fresh view misses" true (not (snd (Topology.compile_cached_stat sg2)));
  check "second fresh view misses" true
    (not (snd (Topology.compile_cached_stat sg3)));
  check "sg evicted by overflow" true
    (not (snd (Topology.compile_cached_stat sg)));
  check "sg2 evicted by sg reinsert" true
    (not (snd (Topology.compile_cached_stat sg2)));
  check "sg3 evicted by sg2 reinsert" true
    (not (snd (Topology.compile_cached_stat sg3)));
  let h1, m1 = Topology.cache_stats () in
  check_int "exactly one hit" 1 (h1 - h0);
  check_int "exactly eight misses" 8 (m1 - m0);
  (* the Runtime span counters must mirror the cache stats *)
  Topology.clear_cache ();
  let h2, m2 = Topology.cache_stats () in
  let flood ~sg =
    ignore
      (Runtime.run ~sg
         ~init:(fun v -> v = 0)
         ~step:flood_step
         ~halted:(fun s -> s)
         ~max_rounds:20)
  in
  let (), root =
    Tl_obs.Span.run "cache-counters" (fun () ->
        flood ~sg:sg2;
        flood ~sg:sg2;
        (* hide the far endpoint, not the flood source at node 0 *)
        Semi_graph.hide_node sg2 9;
        flood ~sg:sg2)
  in
  let h3, m3 = Topology.cache_stats () in
  let counters = Tl_obs.Span.counters root in
  let counter k = try List.assoc k counters with Not_found -> 0 in
  check_int "span topo:cache_hit matches stats" (h3 - h2)
    (counter "topo:cache_hit");
  check_int "span topo:cache_miss matches stats" (m3 - m2)
    (counter "topo:cache_miss");
  check_int "one hit via runtime" 1 (h3 - h2);
  check_int "two misses via runtime" 2 (m3 - m2);
  Topology.set_cache_limit 64

let test_topology_cache_limit () =
  Topology.clear_cache ();
  (match Topology.set_cache_limit (-1) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on negative limit");
  let sgs = Array.init 3 (fun i -> Semi_graph.of_graph (Gen.path (i + 2))) in
  Topology.set_cache_limit 2;
  Array.iter (fun sg -> ignore (Topology.compile_cached_stat sg)) sgs;
  (* FIFO: inserting the third view evicted the first *)
  check "oldest evicted" true (not (snd (Topology.compile_cached_stat sgs.(0))));
  check "recent kept" true (snd (Topology.compile_cached_stat sgs.(2)));
  Topology.set_cache_limit 0;
  check "limit 0 disables caching" true
    (not (snd (Topology.compile_cached_stat sgs.(2))));
  check "still disabled on repeat" true
    (not (snd (Topology.compile_cached_stat sgs.(2))));
  Topology.set_cache_limit 64

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "tl_engine"
    [
      ( "topology",
        qsuite [ prop_topology_matches_semigraph; prop_topology_on_subsets ]
        @ [
            Alcotest.test_case "compile cache hit/miss/invalidation" `Quick
              test_topology_cache_hit_and_invalidation;
            Alcotest.test_case "compile cache FIFO limit" `Quick
              test_topology_cache_limit;
            Alcotest.test_case "cache eviction: generation bumps x FIFO"
              `Quick test_topology_cache_eviction_generation;
          ] );
      ( "pool",
        [
          Alcotest.test_case "create validates and clamps" `Quick
            test_pool_create;
          Alcotest.test_case "map deterministic across widths" `Quick
            test_pool_map_deterministic;
          Alcotest.test_case "fixed contiguous chunking" `Quick
            test_pool_chunking;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "commit runs in task order" `Quick
            test_pool_commit_order;
        ] );
      ( "team",
        [
          Alcotest.test_case "every index runs exactly once" `Quick
            test_team_coverage;
          Alcotest.test_case "domains parked and reused, never respawned"
            `Quick test_team_reuse;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_team_exception_lowest_index;
          Alcotest.test_case "reentrant run degrades to inline" `Quick
            test_team_reentrant_inline;
        ] );
      ( "flat",
        qsuite
          [
            prop_flat_flood_differential;
            prop_flat_mis_differential;
            prop_flat_run_rounds_differential;
          ]
        @ [
            Alcotest.test_case "failure parity with the boxed engine" `Quick
              test_flat_failure_parity;
            Alcotest.test_case "zero minor-heap words per step" `Quick
              test_flat_zero_alloc_per_step;
          ] );
      ( "differential",
        qsuite
          [
            prop_flood_differential;
            prop_mis_differential;
            prop_peel_differential;
            prop_cv_differential;
            prop_run_rounds_differential;
          ] );
      ( "runtime",
        [ Alcotest.test_case "wrappers match naive" `Quick
            test_runtime_matches_naive ] );
      ("linial", qsuite [ prop_linial_topo_equivalence ]);
      ( "failure",
        [
          Alcotest.test_case "max_rounds and stall parity" `Quick
            test_max_rounds_failure_parity;
          Alcotest.test_case "empty present set" `Quick test_empty_present_set;
        ] );
      ( "trace",
        [
          Alcotest.test_case "metrics and ledger bridge" `Quick
            test_trace_metrics;
          Alcotest.test_case "global sink" `Quick test_trace_sink;
          Alcotest.test_case "zero-round metrics" `Quick
            test_trace_zero_rounds;
          Alcotest.test_case "rounds_detail json round-trip" `Quick
            test_trace_json_roundtrip;
        ] );
      ("modes", [ Alcotest.test_case "parsing" `Quick test_mode_strings ]);
    ]
