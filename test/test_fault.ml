(* tl_fault battery: schedule parsing and deterministic instantiation,
   injector arming, checkers and incremental repair, and differential
   chaos runs — same (graph, problem, schedule) must yield identical
   applied logs, repair counts and final digests in every engine mode,
   for each scenario class (crash-stop, crash-recover, link-drop,
   worker-kill).

   Ordering matters on OCaml 5: fork is forbidden once a domain has
   spawned, so the proc-backend scenarios (worker kills, receive
   timeouts) run in the FIRST suite, before any shard / par chaos run
   can spin up the domain team. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Topology = Tl_engine.Topology
module Engine = Tl_engine.Engine
module Plan = Tl_shard.Plan
module Wire = Tl_proc.Wire
module Ids = Tl_local.Ids
module Json = Tl_obs.Json
module Schedule = Tl_fault.Schedule
module Injector = Tl_fault.Injector
module Repair = Tl_fault.Repair
module Chaos = Tl_fault.Chaos
module P = Tl_serve.Protocol

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sched_of s =
  match Schedule.of_arg s with
  | Ok t -> t
  | Error msg -> Alcotest.failf "schedule %S rejected: %s" s msg

let tree ~n ~seed = Gen.random_tree ~n ~seed

let flood_chaos ?mode ~n ~seed spec =
  Chaos.run ?mode ~graph:(tree ~n ~seed)
    ~problem:(Chaos.Flood { source = 0 })
    ~schedule:(sched_of spec) ()

let mis_chaos ?mode ~n ~seed spec =
  let g = tree ~n ~seed in
  Chaos.run ?mode ~graph:g
    ~problem:(Chaos.Mis { ids = Ids.permuted ~n:(Graph.n_nodes g) ~seed:(seed + 1) })
    ~schedule:(sched_of spec) ()

let same_report (a : Chaos.report) (b : Chaos.report) =
  a.digest = b.digest && a.log = b.log && a.crashes = b.crashes
  && a.recoveries = b.recoveries && a.repairs = b.repairs
  && a.relabeled = b.relabeled && a.survivors = b.survivors
  && a.valid && b.valid

(* ---------- proc backend (must run before any domain spawns) ---------- *)

(* A worker kill must not change the result: the injector consumes the
   kill, the orchestrator retries the epoch on a fresh cluster, and the
   final labeling matches a seq run of the same schedule (seq never
   consults the kill hook). *)
let test_proc_kill_chaos () =
  let spec = "seed=7;kill@2:1;crash@5:9;crash@7:23" in
  let seq = flood_chaos ~mode:Engine.Seq ~n:400 ~seed:5 spec in
  let proc = flood_chaos ~mode:(Engine.Proc 3) ~n:400 ~seed:5 spec in
  check "proc kill run valid" true proc.Chaos.valid;
  check_int "one retry after the kill" 1 proc.Chaos.retries;
  check_int "kill applied once" 1 proc.Chaos.kills;
  check "digest matches seq" true (seq.Chaos.digest = proc.Chaos.digest);
  check_int "seq saw no kill" 0 seq.Chaos.kills;
  (* replay: identical applied log and digest *)
  let again = flood_chaos ~mode:(Engine.Proc 3) ~n:400 ~seed:5 spec in
  check "proc replay deterministic" true (same_report proc again)

let test_proc_timeout () =
  let g = tree ~n:60 ~seed:3 in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let flood () =
    Engine.run_until_stable ~mode:(Engine.Proc 2) ~topo
      ~init:(fun v -> if v = 0 then 1 else 0)
      ~step:Repair.flood_step ~equal:Int.equal ~max_rounds:200 ()
  in
  (* a microsecond deadline trips before any worker can answer *)
  Unix.putenv "TL_PROC_TIMEOUT_MS" "0.001";
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match flood () with
  | _ -> Alcotest.fail "expected a timeout Proc_failure"
  | exception Wire.Proc_failure msg ->
    check "timeout names itself" true (contains msg "timeout"));
  (* a generous deadline lets the run complete *)
  Unix.putenv "TL_PROC_TIMEOUT_MS" "60000";
  let o = flood () in
  check "run completes under a generous timeout" true (o.Engine.rounds > 0);
  (* malformed values disable the deadline rather than breaking runs *)
  Unix.putenv "TL_PROC_TIMEOUT_MS" "not-a-number";
  let o2 = flood () in
  check "malformed timeout ignored" true (o2.Engine.rounds = o.Engine.rounds);
  Unix.putenv "TL_PROC_TIMEOUT_MS" ""

(* ---------- schedule ---------- *)

let test_spec_roundtrip () =
  let t =
    sched_of
      "seed=42;crash@8:5,17;crash_random@8:3;recover@12:5;drop@6:0-1,2-3;kill@3:1;churn@4-16:rate=0.001,kind=crash-recover,ttl=4"
  in
  check_int "seed" 42 t.Schedule.seed;
  check_int "clauses" 5 (List.length t.Schedule.clauses);
  (match t.Schedule.churn with
  | None -> Alcotest.fail "churn lost"
  | Some c ->
    check_int "churn from" 4 c.Schedule.from_round;
    check_int "churn to" 16 c.Schedule.to_round;
    check_int "churn ttl" 4 c.Schedule.ttl;
    check "churn kind" true (c.Schedule.kind = Schedule.Crash_recover));
  (* JSON round-trip preserves the whole plan *)
  match Schedule.of_json (Schedule.to_json t) with
  | Error msg -> Alcotest.failf "to_json not parseable: %s" msg
  | Ok t' -> check "of_json (to_json t) = t" true (t = t')

let test_spec_errors () =
  let rejects s =
    match Schedule.of_arg s with
    | Ok _ -> Alcotest.failf "spec %S should be rejected" s
    | Error _ -> ()
  in
  rejects "crash@0:1";
  rejects "churn@4-2:rate=0.1";
  rejects "churn@1-5:rate=1.5";
  rejects "churn@1-5:rate=0.1,kind=sideways";
  rejects "drop@3:5";
  rejects "frobnicate@3:1";
  rejects "{ \"seed\": \"high\" }"

let test_of_arg_file () =
  let t = sched_of "seed=9;crash@3:1,2;churn@2-6:rate=0.01" in
  let file = Filename.temp_file "tlfault" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
  let oc = open_out file in
  output_string oc (Json.to_string (Schedule.to_json t));
  close_out oc;
  match Schedule.of_arg file with
  | Error msg -> Alcotest.failf "file form rejected: %s" msg
  | Ok t' -> check "file round-trip" true (t = t')

let test_instantiate_deterministic () =
  let t = sched_of "seed=5;crash_random@2:10;churn@3-30:rate=0.01,kind=crash-recover,ttl=5" in
  let a = Schedule.instantiate t ~n:500 in
  let b = Schedule.instantiate t ~n:500 in
  check "instantiate is pure" true (a = b);
  let crashes =
    List.filter_map
      (function r, Schedule.Crash v -> Some (r, v) | _ -> None)
      a
  in
  let recovers =
    List.filter_map
      (function r, Schedule.Recover v -> Some (r, v) | _ -> None)
      a
  in
  check "random crashes drawn" true (List.length crashes >= 10);
  (* crash-recover churn: every churn casualty recovers ttl rounds later *)
  List.iter
    (fun (r, v) ->
      if r >= 3 then
        check
          (Printf.sprintf "churn casualty %d@%d recovers" v r)
          true
          (List.mem (r + 5, v) recovers))
    crashes;
  (* distinctness: no node crashes twice without recovering in between *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r, e) ->
      match e with
      | Schedule.Crash v ->
        check (Printf.sprintf "node %d alive when crashed at %d" v r) false
          (Hashtbl.mem seen v);
        Hashtbl.replace seen v ()
      | Schedule.Recover v -> Hashtbl.remove seen v
      | _ -> ())
    a

let test_instantiate_range () =
  let t = sched_of "seed=1;crash@2:99" in
  match Schedule.instantiate t ~n:10 with
  | _ -> Alcotest.fail "out-of-range node accepted"
  | exception Invalid_argument _ -> ()

(* churn coins hash (seed, round, node) independently, so adding an
   explicit clause never shifts which other nodes churn *)
let test_churn_independent_of_clauses () =
  let base = sched_of "seed=11;churn@5-12:rate=0.02" in
  let extra = sched_of "seed=11;crash@1:0;churn@5-12:rate=0.02" in
  let churn_crashes t =
    Schedule.instantiate t ~n:300
    |> List.filter_map (function
         | r, Schedule.Crash v when r >= 5 && v <> 0 -> Some (r, v)
         | _ -> None)
  in
  check "churn pattern unshifted" true (churn_crashes base = churn_crashes extra)

(* ---------- injector ---------- *)

let test_injector_single_armed () =
  let t = sched_of "seed=1;crash@3:1" in
  Injector.with_armed t ~n:10 (fun _ ->
      match Injector.arm t ~n:10 with
      | _ -> Alcotest.fail "double arm accepted"
      | exception Invalid_argument _ -> ());
  (* with_armed disarmed on exit: arming again is fine *)
  Injector.with_armed t ~n:10 (fun inj ->
      check "gate closes before round 3" true
        (Engine.gate_open ~round:2 && not (Engine.gate_open ~round:3));
      check "next topo round" true (Injector.next_topo_round inj = Some 3);
      let due = Injector.take_topo_due inj ~round:3 in
      check "due events" true (due = [ Schedule.Crash 1 ]);
      check "consumed" true (Injector.next_topo_round inj = None);
      let c, r, d, k = Injector.counts inj in
      check "counts" true ((c, r, d, k) = (1, 0, 0, 0)));
  check "hooks restored" true (Engine.gate_open ~round:3)

(* ---------- repair ---------- *)

let test_flood_repair_split () =
  (* path 0-1-...-9, crash node 5 after convergence: 6..9 must fall
     back to 0, and only the two touched components are rewritten *)
  let r = flood_chaos ~n:10 ~seed:1 "seed=1;crash@50:5" in
  ignore r;
  let g = Gen.path 10 in
  let rep =
    Chaos.run ~graph:g
      ~problem:(Chaos.Flood { source = 0 })
      ~schedule:(sched_of "seed=1;crash@50:5") ()
  in
  check "path split run valid" true rep.Chaos.valid;
  check_int "one repair" 1 rep.Chaos.repairs;
  for v = 0 to 4 do
    check_int (Printf.sprintf "node %d reached" v) 1 rep.Chaos.labels.(v)
  done;
  for v = 6 to 9 do
    check_int (Printf.sprintf "node %d cut off" v) 0 rep.Chaos.labels.(v)
  done;
  check_int "four labels rewritten" 4 rep.Chaos.relabeled

let test_flood_recover_rejoins () =
  let g = Gen.path 8 in
  let rep =
    Chaos.run ~graph:g
      ~problem:(Chaos.Flood { source = 0 })
      ~schedule:(sched_of "seed=1;crash@40:3;recover@44:3") ()
  in
  check "recover run valid" true rep.Chaos.valid;
  check_int "everyone survives" 8 rep.Chaos.survivors;
  Array.iteri
    (fun v l -> check_int (Printf.sprintf "node %d reached again" v) 1 l)
    rep.Chaos.labels

let test_mis_repair_valid () =
  let n = 300 in
  let g = tree ~n ~seed:9 in
  let ids = Ids.permuted ~n ~seed:10 in
  let rep =
    Chaos.run ~graph:g ~problem:(Chaos.Mis { ids })
      ~schedule:(sched_of "seed=3;crash_random@30:15;churn@31-40:rate=0.005,kind=crash-recover,ttl=4")
      ()
  in
  check "mis chaos valid" true rep.Chaos.valid;
  check "repairs happened" true (rep.Chaos.repairs >= 1);
  (* the checker itself agrees with the final labels *)
  let present = Array.make n true in
  List.iter
    (fun (_, a) ->
      match a with
      | Injector.Crashed v -> present.(v) <- false
      | Injector.Recovered v -> present.(v) <- true
      | _ -> ())
    rep.Chaos.log;
  let sg = Semi_graph.of_node_subset g present in
  check "check_mis passes" true (Repair.check_mis ~sg ~labels:rep.Chaos.labels)

let test_checkers_reject_damage () =
  let g = Gen.path 6 in
  let sg = Semi_graph.of_graph g in
  let good = [| 1; 1; 1; 1; 1; 1 |] in
  check "flood accepts the indicator" true
    (Repair.check_flood ~sg ~source:0 ~labels:good);
  check "flood rejects a stray 0" false
    (Repair.check_flood ~sg ~source:0 ~labels:[| 1; 1; 0; 1; 1; 1 |]);
  (* path MIS: in-out-in-out-in-out is valid; adjacent ins are not *)
  check "mis accepts alternation" true
    (Repair.check_mis ~sg ~labels:[| 1; 2; 1; 2; 1; 2 |]);
  check "mis rejects adjacent ins" false
    (Repair.check_mis ~sg ~labels:[| 1; 1; 2; 1; 2; 1 |]);
  check "mis rejects unwitnessed out" false
    (Repair.check_mis ~sg ~labels:[| 2; 2; 1; 2; 1; 2 |]);
  check "mis rejects undecided" false
    (Repair.check_mis ~sg ~labels:[| 1; 2; 0; 2; 1; 2 |])

(* ---------- chaos: differential determinism ---------- *)

let scenario_specs =
  [
    ("crash-stop", "seed=13;crash_random@3:8;crash@6:2;churn@4-14:rate=0.002");
    ( "crash-recover",
      "seed=13;crash_random@3:8;recover@20:2;crash@6:2;churn@4-14:rate=0.002,kind=crash-recover,ttl=3"
    );
    ("link-drop", "seed=13;drop@2:0-1,1-2;drop@3:2-3;crash@8:5");
  ]

let test_chaos_replay_identical () =
  List.iter
    (fun (name, spec) ->
      let a = flood_chaos ~n:600 ~seed:2 spec in
      let b = flood_chaos ~n:600 ~seed:2 spec in
      check (name ^ " flood replay") true (same_report a b);
      let c = mis_chaos ~n:600 ~seed:2 spec in
      let d = mis_chaos ~n:600 ~seed:2 spec in
      check (name ^ " mis replay") true (same_report c d))
    scenario_specs

(* shard / par modes spawn the domain team — keep after the proc suite *)
let test_chaos_cross_mode () =
  List.iter
    (fun (name, spec) ->
      let seq = mis_chaos ~mode:Engine.Seq ~n:600 ~seed:2 spec in
      check (name ^ " seq valid") true seq.Chaos.valid;
      List.iter
        (fun mode ->
          let r = mis_chaos ~mode ~n:600 ~seed:2 spec in
          check
            (Printf.sprintf "%s digest %s = seq" name
               (Engine.mode_to_string mode))
            true
            (r.Chaos.digest = seq.Chaos.digest && r.Chaos.valid))
        [ Engine.Naive; Engine.Par 2 ])
    scenario_specs;
  (* drops only exist on the halo wire: the shard run must still land on
     the seq digest after the final heal *)
  List.iter
    (fun (name, spec) ->
      let seq = flood_chaos ~mode:Engine.Seq ~n:600 ~seed:2 spec in
      let sh = flood_chaos ~mode:(Engine.Shard 4) ~n:600 ~seed:2 spec in
      check (name ^ " shard digest = seq") true
        (sh.Chaos.digest = seq.Chaos.digest && sh.Chaos.valid))
    scenario_specs

let test_chaos_empty_schedule_matches_plain () =
  (* armed-but-empty chaos must equal the plain engine answer *)
  let n = 500 in
  let g = tree ~n ~seed:4 in
  let rep =
    Chaos.run ~graph:g
      ~problem:(Chaos.Flood { source = 0 })
      ~schedule:Schedule.empty ()
  in
  let topo = Topology.compile (Semi_graph.of_graph g) in
  let o =
    Engine.run_until_stable ~topo
      ~init:(Repair.flood_init ~source:0)
      ~step:Repair.flood_step ~equal:Int.equal ~max_rounds:(n + 1) ()
  in
  check "labels equal the plain run" true (rep.Chaos.labels = o.Engine.states);
  check_int "no repairs" 0 rep.Chaos.repairs;
  check_int "one epoch" 1 rep.Chaos.epochs;
  check_int "rounds equal" o.Engine.rounds rep.Chaos.rounds

(* ---------- churn vs caches (satellite: qcheck property) ---------- *)

let qcheck_churn_cache =
  QCheck.Test.make
    ~name:"compile_cached bit-identical to fresh compile under churn"
    ~count:40
    QCheck.(triple (int_range 4 80) (int_range 0 100000) (int_range 1 4))
    (fun (n, seed, limit) ->
      Topology.set_cache_limit limit;
      Fun.protect ~finally:(fun () -> Topology.set_cache_limit 64)
      @@ fun () ->
      let g = Gen.random_tree ~n ~seed in
      let present = Array.make n true in
      let sg = ref (Semi_graph.of_node_subset g present) in
      let state = ref (seed + 1) in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      let ok = ref true in
      for step = 1 to 12 do
        (* generation-bumping churn: crash a node, sometimes recover one
           (a fresh view, exercising FIFO eviction across stamps) *)
        let v = next () mod n in
        if present.(v) then begin
          present.(v) <- false;
          Semi_graph.hide_node !sg v
        end
        else begin
          present.(v) <- true;
          sg := Semi_graph.of_node_subset g present
        end;
        let cached = Topology.compile_cached !sg in
        let fresh = Topology.compile !sg in
        ok :=
          !ok
          && cached.Topology.present = fresh.Topology.present
          && cached.Topology.present_nodes = fresh.Topology.present_nodes
          && cached.Topology.off = fresh.Topology.off
          && cached.Topology.adj = fresh.Topology.adj
          && cached.Topology.eid = fresh.Topology.eid;
        (* an immediate re-request hits and returns the same snapshot *)
        let again, hit = Topology.compile_cached_stat !sg in
        ok := !ok && hit && again == cached;
        (* shard plans memoized over the cached snapshot stay equal to a
           fresh build, byte for byte *)
        if step mod 3 = 0 && Topology.n_present fresh >= 2 then begin
          let pc, _ = Plan.build_cached ~topo:cached ~shards:2 in
          let pf = Plan.build ~topo:fresh ~shards:2 in
          ok :=
            !ok
            && Plan.encode_shard pc.Plan.shards.(0)
               = Plan.encode_shard pf.Plan.shards.(0)
            && Plan.encode_shard pc.Plan.shards.(1)
               = Plan.encode_shard pf.Plan.shards.(1)
        end
      done;
      !ok)

(* ---------- serve protocol ---------- *)

let test_request_faults_roundtrip () =
  let spec = "seed=3;crash@2:1;churn@3-9:rate=0.01" in
  let req = P.request ~id:"t" ~problem:"flood" ~method_:"chaos" ~faults:spec () in
  match P.incoming_of_json (P.request_to_json req) with
  | Ok (P.Request r) ->
    check "faults preserved" true (r.P.faults = Some spec);
    check_string "method preserved" "chaos" r.P.method_
  | Ok _ -> Alcotest.fail "parsed as control"
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg

let test_request_faults_absent () =
  let req = P.request ~id:"t" () in
  match P.incoming_of_json (P.request_to_json req) with
  | Ok (P.Request r) -> check "no faults by default" true (r.P.faults = None)
  | _ -> Alcotest.fail "round-trip failed"

(* ---------- runner ---------- *)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "tl_fault"
    [
      ( "proc-chaos",
        [
          Alcotest.test_case "worker kill: retried epoch, seq digest" `Quick
            test_proc_kill_chaos;
          Alcotest.test_case "TL_PROC_TIMEOUT_MS deadline" `Quick
            test_proc_timeout;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "spec grammar + JSON round-trip" `Quick
            test_spec_roundtrip;
          Alcotest.test_case "malformed specs rejected" `Quick test_spec_errors;
          Alcotest.test_case "of_arg reads a JSON file" `Quick test_of_arg_file;
          Alcotest.test_case "instantiate: pure, distinct, ttl recoveries"
            `Quick test_instantiate_deterministic;
          Alcotest.test_case "instantiate: out-of-range rejected" `Quick
            test_instantiate_range;
          Alcotest.test_case "churn coins independent of clause edits" `Quick
            test_churn_independent_of_clauses;
        ] );
      ( "injector",
        [
          Alcotest.test_case "single-armed, gate, due events" `Quick
            test_injector_single_armed;
        ] );
      ( "repair",
        [
          Alcotest.test_case "flood: component split repaired" `Quick
            test_flood_repair_split;
          Alcotest.test_case "flood: recovered node rejoins" `Quick
            test_flood_recover_rejoins;
          Alcotest.test_case "mis: churn damage repaired to validity" `Quick
            test_mis_repair_valid;
          Alcotest.test_case "checkers reject planted damage" `Quick
            test_checkers_reject_damage;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "replay identical per scenario class" `Quick
            test_chaos_replay_identical;
          Alcotest.test_case "digest invariant across engine modes" `Quick
            test_chaos_cross_mode;
          Alcotest.test_case "empty schedule = plain engine run" `Quick
            test_chaos_empty_schedule_matches_plain;
        ] );
      ("churn-cache", qsuite [ qcheck_churn_cache ]);
      ( "serve",
        [
          Alcotest.test_case "faults field round-trips" `Quick
            test_request_faults_roundtrip;
          Alcotest.test_case "faults absent by default" `Quick
            test_request_faults_absent;
        ] );
    ]
