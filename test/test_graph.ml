(* Tests for the graph substrate: Graph, Gen, Props, Tree, Semi_graph. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Tree = Tl_graph.Tree
module Semi_graph = Tl_graph.Semi_graph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Graph construction and accessors ---------- *)

let test_of_edges_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (3, 2) ] in
  check_int "nodes" 4 (Graph.n_nodes g);
  check_int "edges" 3 (Graph.n_edges g);
  check_int "deg 1" 2 (Graph.degree g 1);
  check_int "deg 3" 1 (Graph.degree g 3);
  check_int "max degree" 2 (Graph.max_degree g);
  check "has 0-1" true (Graph.has_edge g 0 1);
  check "has 1-0" true (Graph.has_edge g 1 0);
  check "no 0-3" false (Graph.has_edge g 0 3)

let test_of_edges_normalizes () =
  (* edge given as (3,2) must be stored as (2,3) *)
  let g = Graph.of_edges ~n:4 [ (3, 2) ] in
  let u, v = Graph.edge_endpoints g 0 in
  check_int "u" 2 u;
  check_int "v" 3 v

let test_of_edges_rejects () =
  let raises f = try f () |> ignore; false with Invalid_argument _ -> true in
  check "self-loop" true (raises (fun () -> Graph.of_edges ~n:2 [ (1, 1) ]));
  check "duplicate" true
    (raises (fun () -> Graph.of_edges ~n:3 [ (0, 1); (1, 0) ]));
  check "range" true (raises (fun () -> Graph.of_edges ~n:2 [ (0, 2) ]));
  check "negative n" true (raises (fun () -> Graph.of_edges ~n:(-1) []))

let test_half_edges () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  check_int "n half edges" 4 (Graph.n_half_edges g);
  let h01 = Graph.half_edge g ~edge:0 ~node:0 in
  let h10 = Graph.half_edge g ~edge:0 ~node:1 in
  check_int "side 0" 0 h01;
  check_int "side 1" 1 h10;
  check_int "opposite" h10 (Graph.opposite_half_edge h01);
  check_int "node of h" 0 (Graph.half_edge_node g h01);
  check_int "edge of h" 0 (Graph.half_edge_edge h01);
  check_int "half edges at 1" 2 (List.length (Graph.half_edges_of g 1))

let test_other_endpoint () =
  let g = Graph.of_edges ~n:3 [ (0, 2) ] in
  check_int "other of 0" 2 (Graph.other_endpoint g 0 0);
  check_int "other of 2" 0 (Graph.other_endpoint g 0 2);
  check "bad node raises" true
    (try Graph.other_endpoint g 0 1 |> ignore; false
     with Invalid_argument _ -> true)

let test_adjacency_alignment () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  let adj = Graph.neighbors g 0 in
  let inc = Graph.incident g 0 in
  Array.iteri
    (fun i u ->
      let x, y = Graph.edge_endpoints g inc.(i) in
      check "aligned" true ((x = 0 && y = u) || (x = u && y = 0)))
    adj

let test_line_graph () =
  (* path 0-1-2-3: line graph is a path on 3 nodes *)
  let g = Gen.path 4 in
  let lg, _ = Graph.line_graph g in
  check_int "lg nodes" 3 (Graph.n_nodes lg);
  check_int "lg edges" 2 (Graph.n_edges lg);
  (* star: line graph of K_{1,4} is K_4 *)
  let s = Gen.star 5 in
  let ls, _ = Graph.line_graph s in
  check_int "ls nodes" 4 (Graph.n_nodes ls);
  check_int "ls edges" 6 (Graph.n_edges ls)

let test_induced () =
  let g = Gen.cycle 5 in
  let sub, old_of_new = Graph.induced g [ 0; 1; 2 ] in
  check_int "sub nodes" 3 (Graph.n_nodes sub);
  check_int "sub edges" 2 (Graph.n_edges sub);
  check_int "mapping" 0 old_of_new.(0)

(* ---------- Generators ---------- *)

let test_path_star_cycle () =
  check "path tree" true (Props.is_tree (Gen.path 10));
  check_int "path diameter" 9 (Props.diameter (Gen.path 10));
  check "star tree" true (Props.is_tree (Gen.star 10));
  check_int "star diameter" 2 (Props.diameter (Gen.star 10));
  check "star shape" true (Props.is_star (Gen.star 10));
  check "path not star" false (Props.is_star (Gen.path 5));
  let c = Gen.cycle 6 in
  check "cycle not forest" false (Props.is_forest c);
  check_int "cycle diameter" 3 (Props.diameter c)

let test_balanced_regular_tree () =
  List.iter
    (fun (delta, n) ->
      let t = Gen.balanced_regular_tree ~delta ~n in
      check "is tree" true (Props.is_tree t);
      check_int "n nodes" n (Graph.n_nodes t);
      check "max degree" true (Graph.max_degree t <= delta);
      (* full internal layers have degree exactly delta *)
      if n > (delta * delta) + 1 then
        check_int "root degree" delta (Graph.degree t 0))
    [ (3, 22); (3, 100); (4, 5); (2, 17); (5, 1); (3, 2) ]

let test_kary_tree () =
  let t = Gen.kary_tree ~arity:2 ~depth:3 in
  check_int "binary depth 3" 15 (Graph.n_nodes t);
  check "is tree" true (Props.is_tree t);
  check_int "diameter" 6 (Props.diameter t)

let test_caterpillar_spider_broom () =
  let c = Gen.caterpillar ~spine:5 ~legs:3 in
  check "caterpillar tree" true (Props.is_tree c);
  check_int "caterpillar nodes" 20 (Graph.n_nodes c);
  let s = Gen.spider ~legs:4 ~leg_length:3 in
  check "spider tree" true (Props.is_tree s);
  check_int "spider diameter" 6 (Props.diameter s);
  let b = Gen.broom ~handle:4 ~bristles:5 in
  check "broom tree" true (Props.is_tree b);
  check_int "broom nodes" 9 (Graph.n_nodes b);
  check_int "broom max degree" 6 (Graph.max_degree b)

let test_double_star () =
  let g = Gen.double_star 3 4 in
  check "tree" true (Props.is_tree g);
  check_int "nodes" 9 (Graph.n_nodes g);
  check_int "deg 0" 4 (Graph.degree g 0);
  check_int "deg 1" 5 (Graph.degree g 1)

let test_grid () =
  let g = Gen.grid 4 5 in
  check_int "nodes" 20 (Graph.n_nodes g);
  check_int "edges" ((3 * 5) + (4 * 4)) (Graph.n_edges g);
  check "connected" true (Props.is_connected g);
  let lo, hi = Props.arboricity_interval g in
  check "grid arboricity <= 2" true (lo <= 2 && hi <= 3)

let test_triangulated_grid () =
  let g = Gen.triangulated_grid 6 in
  check "connected" true (Props.is_connected g);
  let lo, hi = Props.arboricity_interval g in
  check "planar arboricity <= 3" true (lo <= 3 && hi <= 5)

let test_random_tree_deterministic () =
  let t1 = Gen.random_tree ~n:50 ~seed:7 in
  let t2 = Gen.random_tree ~n:50 ~seed:7 in
  let t3 = Gen.random_tree ~n:50 ~seed:8 in
  check "same seed same tree" true (Graph.edge_list t1 = Graph.edge_list t2);
  check "different seed different tree" false
    (Graph.edge_list t1 = Graph.edge_list t3)

let test_random_forest () =
  let f = Gen.random_forest ~n:40 ~trees:5 ~seed:3 in
  check "is forest" true (Props.is_forest f);
  let _, count = Props.components f in
  check_int "component count" 5 count

let test_power_law_tree () =
  let t = Gen.power_law_tree ~n:300 ~seed:5 in
  check "is tree" true (Props.is_tree t);
  check "has hub" true (Graph.max_degree t >= 8)

let test_power_law_union () =
  let g = Gen.power_law_union ~n:500 ~arboricity:3 ~seed:6 in
  let lo, hi = Props.arboricity_interval g in
  check "arboricity bounded" true (lo <= 3 && hi <= 5);
  check "has hub" true (Graph.max_degree g >= 12);
  check "connected" true (Props.is_connected g)

(* ---------- Props ---------- *)

let test_bfs_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  let d = Props.bfs_distances g 0 in
  check_int "d0" 0 d.(0);
  check_int "d2" 2 d.(2);
  check_int "unreachable" (-1) d.(4);
  let _, count = Props.components g in
  check_int "components" 3 count;
  check "not connected" false (Props.is_connected g)

let test_degeneracy () =
  check_int "tree degeneracy" 1 (Props.degeneracy (Gen.random_tree ~n:60 ~seed:1));
  check_int "cycle degeneracy" 2 (Props.degeneracy (Gen.cycle 8));
  check_int "K5 degeneracy" 4 (Props.degeneracy (Gen.complete 5));
  check_int "grid degeneracy" 2 (Props.degeneracy (Gen.grid 5 5));
  check_int "empty" 0 (Props.degeneracy (Graph.empty 0))

let test_degeneracy_order () =
  let g = Gen.grid 4 4 in
  let order = Props.degeneracy_order g in
  let k = Props.degeneracy g in
  (* each node has at most k neighbors later in the order *)
  let pos = Array.make (Graph.n_nodes g) 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Array.iteri
    (fun _ v ->
      let later =
        Array.fold_left
          (fun acc u -> if pos.(u) > pos.(v) then acc + 1 else acc)
          0 (Graph.neighbors g v)
      in
      check "degeneracy order" true (later <= k))
    order

let test_nash_williams () =
  check_int "tree" 1 (Props.nash_williams_lower_bound (Gen.random_tree ~n:30 ~seed:2));
  check_int "K4" 2 (Props.nash_williams_lower_bound (Gen.complete 4));
  check_int "empty graph" 0 (Props.nash_williams_lower_bound (Graph.empty 5))

let test_validators () =
  let g = Gen.path 4 in
  (* independent sets *)
  check "ind" true (Props.is_independent_set g [| true; false; true; false |]);
  check "not ind" false (Props.is_independent_set g [| true; true; false; false |]);
  check "maximal" true
    (Props.is_maximal_independent_set g [| true; false; true; false |]);
  check "not maximal" false
    (Props.is_maximal_independent_set g [| true; false; false; false |]);
  (* matchings on path 0-1-2-3 (edges 01, 12, 23) *)
  check "matching" true (Props.is_matching g [| true; false; true |]);
  check "not matching" false (Props.is_matching g [| true; true; false |]);
  check "maximal matching" true
    (Props.is_maximal_matching g [| true; false; true |]);
  check "mid edge maximal" true
    (Props.is_maximal_matching g [| false; true; false |]);
  check "empty not maximal" false
    (Props.is_maximal_matching g [| false; false; false |]);
  (* colorings *)
  check "proper" true (Props.is_proper_coloring g [| 1; 2; 1; 2 |]);
  check "improper" false (Props.is_proper_coloring g [| 1; 1; 2; 1 |]);
  check "edge proper" true (Props.is_proper_edge_coloring g [| 1; 2; 1 |]);
  check "edge improper" false (Props.is_proper_edge_coloring g [| 1; 1; 2 |])

let test_edge_degree () =
  let g = Gen.star 5 in
  check_int "star edge degree" 3 (Props.edge_degree g 0);
  check_int "max edge degree" 3 (Props.max_edge_degree g);
  let p = Gen.path 3 in
  check_int "path edge degree" 1 (Props.edge_degree p 0)

(* ---------- Tree utilities ---------- *)

let test_rooting () =
  let g = Gen.path 5 in
  let r = Tree.root_at g 0 in
  check_int "root" 0 r.Tree.root;
  check_int "parent of 1" 0 r.Tree.parent.(1);
  check_int "depth of 4" 4 r.Tree.depth.(4);
  check_int "height" 4 (Tree.height r);
  let sizes = Tree.subtree_sizes g r in
  check_int "subtree of root" 5 sizes.(0);
  check_int "subtree of leaf" 1 sizes.(4)

let test_parents_forest () =
  let f = Gen.random_forest ~n:30 ~trees:3 ~seed:9 in
  let parent = Tree.parents_forest f in
  (* exactly 3 roots; parent edges are real edges *)
  let roots = Array.fold_left (fun acc p -> if p < 0 then acc + 1 else acc) 0 parent in
  check_int "roots" 3 roots;
  Array.iteri
    (fun v p -> if p >= 0 then check "parent edge exists" true (Graph.has_edge f v p))
    parent

let test_tree_diameter_centroid () =
  check_int "path diameter" 7 (Tree.tree_diameter (Gen.path 8));
  check_int "star diameter" 2 (Tree.tree_diameter (Gen.star 8));
  let c = Tree.centroid (Gen.path 9) in
  check_int "path centroid" 4 c;
  check_int "star centroid" 0 (Tree.centroid (Gen.star 9))

(* ---------- Semi-graphs ---------- *)

let test_semi_node_subset () =
  (* path 0-1-2-3, keep {1,2}: edges 01 (rank 1), 12 (rank 2), 23 (rank 1) *)
  let g = Gen.path 4 in
  let mask = [| false; true; true; false |] in
  let sg = Semi_graph.of_node_subset g mask in
  check_int "present nodes" 2 (Semi_graph.n_present_nodes sg);
  check "all edges present" true
    (List.length (Semi_graph.edges sg) = 3);
  check_int "rank 01" 1 (Semi_graph.rank sg 0);
  check_int "rank 12" 2 (Semi_graph.rank sg 1);
  check_int "sdeg 1" 2 (Semi_graph.sdeg sg 1);
  check_int "underlying degree 1" 1 (Semi_graph.underlying_degree sg 1);
  check_int "max underlying" 1 (Semi_graph.max_underlying_degree sg);
  check_int "half edges at 1" 2 (List.length (Semi_graph.half_edges_of sg 1));
  check_int "rank2 neighbors of 1" 1 (List.length (Semi_graph.rank2_neighbors sg 1))

let test_semi_edge_subset () =
  let g = Gen.path 4 in
  let mask = [| true; false; true |] in
  let sg = Semi_graph.of_edge_subset g mask in
  check_int "present nodes" 4 (Semi_graph.n_present_nodes sg);
  check_int "rank of kept" 2 (Semi_graph.rank sg 0);
  check "absent edge raises" true
    (try Semi_graph.rank sg 1 |> ignore; false with Invalid_argument _ -> true);
  check_int "sdeg of 1" 1 (Semi_graph.sdeg sg 1)

let test_semi_components () =
  let g = Gen.path 6 in
  (* keep nodes {0,1} and {4,5}: two underlying components *)
  let sg = Semi_graph.of_node_subset g [| true; true; false; false; true; true |] in
  let comps = Semi_graph.underlying_components sg in
  check_int "two components" 2 (Array.length comps);
  check "component of 0" true (Semi_graph.component_of sg 0 = [ 0; 1 ]);
  check_int "ecc of 4" 1 (Semi_graph.underlying_eccentricity sg 4);
  let d = Semi_graph.underlying_distances sg 0 in
  check_int "dist 0-1" 1 d.(1);
  check_int "unreachable 4" (-1) d.(4)

let test_semi_of_graph () =
  let g = Gen.cycle 5 in
  let sg = Semi_graph.of_graph g in
  check_int "all nodes" 5 (Semi_graph.n_present_nodes sg);
  check_int "underlying = degree" 2 (Semi_graph.max_underlying_degree sg);
  List.iter (fun e -> check_int "rank 2" 2 (Semi_graph.rank sg e)) (Semi_graph.edges sg)

let test_semi_half_edge_present () =
  let g = Gen.path 3 in
  let sg = Semi_graph.of_node_subset g [| true; false; true |] in
  (* edge 0 = (0,1): half-edge at 0 present, at 1 absent *)
  check "h at 0" true (Semi_graph.half_edge_present sg (Graph.half_edge g ~edge:0 ~node:0));
  check "h at 1" false (Semi_graph.half_edge_present sg (Graph.half_edge g ~edge:0 ~node:1))

(* ---------- qcheck properties ---------- *)

let prop_random_tree_is_tree =
  QCheck.Test.make ~name:"random_tree is a tree" ~count:100
    QCheck.(pair (int_range 1 300) (int_range 0 100000))
    (fun (n, seed) -> Props.is_tree (Gen.random_tree ~n ~seed))

let prop_prufer_degree_sum =
  QCheck.Test.make ~name:"tree degree sum is 2(n-1)" ~count:50
    QCheck.(pair (int_range 2 200) (int_range 0 100000))
    (fun (n, seed) ->
      let t = Gen.random_tree ~n ~seed in
      let sum = List.init n (Graph.degree t) |> List.fold_left ( + ) 0 in
      sum = 2 * (n - 1))

let prop_forest_union_arboricity =
  QCheck.Test.make ~name:"forest_union has arboricity <= a (degeneracy <= 2a-1)"
    ~count:50
    QCheck.(triple (int_range 10 150) (int_range 1 5) (int_range 0 100000))
    (fun (n, a, seed) ->
      let g = Gen.forest_union ~n ~arboricity:a ~seed in
      let lo, hi = Props.arboricity_interval g in
      lo <= a && hi <= (2 * a) - 1)

let prop_balanced_tree_sizes =
  QCheck.Test.make ~name:"balanced_regular_tree has n nodes and is a tree"
    ~count:50
    QCheck.(pair (int_range 2 8) (int_range 1 400))
    (fun (delta, n) ->
      let t = Gen.balanced_regular_tree ~delta ~n in
      Graph.n_nodes t = n && Props.is_tree t && Graph.max_degree t <= delta)

let prop_line_graph_degrees =
  QCheck.Test.make ~name:"line graph degree equals edge degree" ~count:50
    QCheck.(pair (int_range 2 80) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n ~seed in
      let lg, edge_of = Graph.line_graph g in
      List.for_all
        (fun e -> Graph.degree lg e = Props.edge_degree g (edge_of e))
        (List.init (Graph.n_edges g) Fun.id))

let prop_semi_masks_consistent =
  QCheck.Test.make ~name:"semi-graph rank/degree consistency" ~count:80
    QCheck.(triple (int_range 2 60) (int_range 0 100000) (int_range 0 100000))
    (fun (n, seed, mask_seed) ->
      let g = Gen.random_tree ~n ~seed in
      let rng = Gen.Prng.create mask_seed in
      let mask = Array.init n (fun _ -> Gen.Prng.int rng 2 = 0) in
      let sg = Semi_graph.of_node_subset g mask in
      List.for_all
        (fun v ->
          Semi_graph.underlying_degree sg v <= Semi_graph.sdeg sg v
          && Semi_graph.sdeg sg v = Graph.degree g v)
        (Semi_graph.nodes sg)
      && List.for_all
           (fun e ->
             let r = Semi_graph.rank sg e in
             r >= 1 && r <= 2)
           (Semi_graph.edges sg))

let prop_degeneracy_bounds_nash_williams =
  QCheck.Test.make ~name:"nash-williams <= degeneracy" ~count:50
    QCheck.(triple (int_range 5 100) (int_range 1 4) (int_range 0 100000))
    (fun (n, a, seed) ->
      let g = Gen.forest_union ~n ~arboricity:a ~seed in
      let lo, hi = Props.arboricity_interval g in
      lo <= hi)

let prop_diameter_vs_eccentricity =
  QCheck.Test.make ~name:"diameter is max eccentricity" ~count:30
    QCheck.(pair (int_range 2 60) (int_range 0 100000))
    (fun (n, seed) ->
      let g = Gen.random_tree ~n ~seed in
      Props.diameter g = Tree.tree_diameter g)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_random_tree_is_tree;
      prop_prufer_degree_sum;
      prop_forest_union_arboricity;
      prop_balanced_tree_sizes;
      prop_line_graph_degrees;
      prop_semi_masks_consistent;
      prop_degeneracy_bounds_nash_williams;
      prop_diameter_vs_eccentricity;
    ]

let () =
  Alcotest.run "tl_graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges basics" `Quick test_of_edges_basic;
          Alcotest.test_case "edge normalization" `Quick test_of_edges_normalizes;
          Alcotest.test_case "invalid inputs" `Quick test_of_edges_rejects;
          Alcotest.test_case "half edges" `Quick test_half_edges;
          Alcotest.test_case "other endpoint" `Quick test_other_endpoint;
          Alcotest.test_case "adjacency alignment" `Quick test_adjacency_alignment;
          Alcotest.test_case "line graph" `Quick test_line_graph;
          Alcotest.test_case "induced subgraph" `Quick test_induced;
        ] );
      ( "generators",
        [
          Alcotest.test_case "path/star/cycle" `Quick test_path_star_cycle;
          Alcotest.test_case "balanced regular tree" `Quick test_balanced_regular_tree;
          Alcotest.test_case "k-ary tree" `Quick test_kary_tree;
          Alcotest.test_case "caterpillar/spider/broom" `Quick test_caterpillar_spider_broom;
          Alcotest.test_case "double star" `Quick test_double_star;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "triangulated grid" `Quick test_triangulated_grid;
          Alcotest.test_case "random tree determinism" `Quick test_random_tree_deterministic;
          Alcotest.test_case "random forest" `Quick test_random_forest;
          Alcotest.test_case "power law tree" `Quick test_power_law_tree;
          Alcotest.test_case "power law union" `Quick test_power_law_union;
        ] );
      ( "props",
        [
          Alcotest.test_case "bfs and components" `Quick test_bfs_components;
          Alcotest.test_case "degeneracy" `Quick test_degeneracy;
          Alcotest.test_case "degeneracy order" `Quick test_degeneracy_order;
          Alcotest.test_case "nash-williams" `Quick test_nash_williams;
          Alcotest.test_case "solution validators" `Quick test_validators;
          Alcotest.test_case "edge degree" `Quick test_edge_degree;
        ] );
      ( "tree",
        [
          Alcotest.test_case "rooting" `Quick test_rooting;
          Alcotest.test_case "forest parents" `Quick test_parents_forest;
          Alcotest.test_case "diameter and centroid" `Quick test_tree_diameter_centroid;
        ] );
      ( "semi_graph",
        [
          Alcotest.test_case "node subset view" `Quick test_semi_node_subset;
          Alcotest.test_case "edge subset view" `Quick test_semi_edge_subset;
          Alcotest.test_case "underlying components" `Quick test_semi_components;
          Alcotest.test_case "whole graph view" `Quick test_semi_of_graph;
          Alcotest.test_case "half-edge presence" `Quick test_semi_half_edge_present;
        ] );
      ("properties", qcheck_tests);
    ]
