(* Tests for the LOCAL runtime: Runtime, Round_cost, Ids, View. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Runtime = Tl_local.Runtime
module Round_cost = Tl_local.Round_cost
module Ids = Tl_local.Ids
module View = Tl_local.View

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- Runtime ---------- *)

(* Flood a token from node 0: after r rounds exactly the r-ball knows it. *)
let flood_step ~round:_ ~node:_ state ~neighbors =
  state || List.exists (fun (_, _, s) -> s) neighbors

let test_flooding_rounds () =
  (* halting when flooded: a star floods in 1 round *)
  let g = Gen.star 8 in
  let sg = Semi_graph.of_graph g in
  let outcome =
    Runtime.run ~sg
      ~init:(fun v -> v = 0)
      ~step:flood_step
      ~halted:(fun s -> s)
      ~max_rounds:10
  in
  check_int "star floods in one round" 1 outcome.Runtime.rounds

let test_flooding_completes () =
  let g = Gen.path 10 in
  let sg = Semi_graph.of_graph g in
  (* run until stable: stabilizes exactly when the whole path is flooded *)
  let outcome =
    Runtime.run_until_stable ~sg
      ~init:(fun v -> v = 0)
      ~step:flood_step ~equal:( = ) ~max_rounds:100
  in
  check "all flooded" true (Array.for_all Fun.id outcome.Runtime.states);
  (* path of 10 nodes: 9 rounds to reach the far end *)
  check_int "rounds" 9 outcome.Runtime.rounds

let test_halted_early_exit () =
  let g = Gen.star 6 in
  let sg = Semi_graph.of_graph g in
  (* every node halts immediately: 0 rounds *)
  let outcome =
    Runtime.run ~sg
      ~init:(fun _ -> 1)
      ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s)
      ~halted:(fun s -> s = 1)
      ~max_rounds:10
  in
  check_int "zero rounds" 0 outcome.Runtime.rounds

let test_max_rounds_guard () =
  let g = Gen.path 3 in
  let sg = Semi_graph.of_graph g in
  check "raises" true
    (try
       Runtime.run ~sg
         ~init:(fun _ -> 0)
         ~step:(fun ~round:_ ~node:_ s ~neighbors:_ -> s + 1)
         ~halted:(fun _ -> false)
         ~max_rounds:5
       |> ignore;
       false
     with Failure _ -> true)

let test_runtime_respects_semi_graph () =
  (* flooding must not cross rank-1 edges *)
  let g = Gen.path 5 in
  let sg = Semi_graph.of_node_subset g [| true; true; false; true; true |] in
  let outcome =
    Runtime.run_until_stable ~sg
      ~init:(fun v -> v = 0)
      ~step:flood_step ~equal:( = ) ~max_rounds:50
  in
  check "reached 1" true outcome.Runtime.states.(1);
  check "did not cross the gap" false outcome.Runtime.states.(3)

let test_swap_is_synchronous () =
  let g = Gen.path 2 in
  let sg = Semi_graph.of_graph g in
  (* run exactly 2 rounds by halting on round counter in state *)
  let outcome =
    Runtime.run ~sg
      ~init:(fun v -> (v, 0))
      ~step:(fun ~round ~node:_ (_, _) ~neighbors ->
        match neighbors with
        | [ (_, _, (s, _)) ] -> (s, round)
        | _ -> assert false)
      ~halted:(fun (_, r) -> r >= 2)
      ~max_rounds:10
  in
  (* after 2 swaps states are back *)
  check_int "node 0 state" 0 (fst outcome.Runtime.states.(0));
  check_int "node 1 state" 1 (fst outcome.Runtime.states.(1));
  check_int "rounds" 2 outcome.Runtime.rounds

(* ---------- Round_cost ---------- *)

let test_round_cost () =
  let c = Round_cost.create () in
  check_int "empty total" 0 (Round_cost.total c);
  Round_cost.charge c "a" 5;
  Round_cost.charge c "b" 3;
  Round_cost.charge c "a" 2;
  check_int "total" 10 (Round_cost.total c);
  check_int "a" 7 (Round_cost.get c "a");
  check_int "b" 3 (Round_cost.get c "b");
  check_int "missing" 0 (Round_cost.get c "zzz");
  check "order" true (Round_cost.phases c = [ ("a", 7); ("b", 3) ]);
  let d = Round_cost.create () in
  Round_cost.charge d "b" 1;
  Round_cost.merge_into ~dst:c ~src:d;
  check_int "merged" 4 (Round_cost.get c "b");
  check "negative raises" true
    (try Round_cost.charge c "x" (-1); false with Invalid_argument _ -> true)

(* ---------- Ids ---------- *)

let test_ids () =
  check "identity unique" true (Ids.check_unique (Ids.identity 50));
  check "reversed unique" true (Ids.check_unique (Ids.reversed 50));
  check "permuted unique" true (Ids.check_unique (Ids.permuted ~n:50 ~seed:1));
  check "spread unique" true (Ids.check_unique (Ids.spread ~n:50 ~c:2 ~seed:1));
  check_int "identity max" 50 (Ids.max_id (Ids.identity 50));
  check "spread can exceed n" true
    (Ids.max_id (Ids.spread ~n:50 ~c:2 ~seed:1) > 50);
  check "duplicate detected" false (Ids.check_unique [| 1; 2; 2 |]);
  check "nonpositive detected" false (Ids.check_unique [| 0; 1 |])

let prop_permuted_is_permutation =
  QCheck.Test.make ~name:"permuted ids are a permutation of 1..n" ~count:50
    QCheck.(pair (int_range 1 200) (int_range 0 100000))
    (fun (n, seed) ->
      let ids = Ids.permuted ~n ~seed in
      let sorted = Array.copy ids in
      Array.sort compare sorted;
      sorted = Array.init n (fun i -> i + 1))

(* ---------- View ---------- *)

let test_ball () =
  let g = Gen.path 7 in
  let sg = Semi_graph.of_graph g in
  check "ball 0" true (View.ball sg ~center:3 ~radius:0 = [ 3 ]);
  check "ball 1" true (View.ball sg ~center:3 ~radius:1 = [ 2; 3; 4 ]);
  check "ball big" true
    (View.ball sg ~center:3 ~radius:10 = [ 0; 1; 2; 3; 4; 5; 6 ])

let test_gather_cost () =
  let g = Gen.path 5 in
  let sg = Semi_graph.of_graph g in
  check_int "center of path" (2 * 2) (View.gather_cost sg ~center:2);
  check_int "end of path" (2 * 4) (View.gather_cost sg ~center:0);
  let comp = [ 0; 1; 2; 3; 4 ] in
  check_int "radius needed" 4 (View.radius_needed sg ~component:comp ~center:0)

let test_gather_flooding_matches_eccentricity () =
  (* the executable full-information flooding must cost exactly the
     eccentricity the analytic charge assumes *)
  List.iter
    (fun (g, center) ->
      let sg = Semi_graph.of_graph g in
      check_int "flooding = eccentricity"
        (Semi_graph.underlying_eccentricity sg center)
        (Tl_local.Gather.knowledge_rounds sg ~center);
      check_int "round trip = 2 ecc"
        (View.gather_cost sg ~center)
        (Tl_local.Gather.round_trip_cost sg ~center))
    [
      (Gen.path 9, 0);
      (Gen.path 9, 4);
      (Gen.star 12, 0);
      (Gen.star 12, 3);
      (Gen.random_tree ~n:60 ~seed:8, 17);
      (Gen.path 1, 0);
    ]

let test_gather_many_small_components () =
  (* Regression: the flooding scratch must be component-indexed, not
     n-indexed. Each round used to [Array.copy] an n-sized state array,
     so sweeping a forest of many tiny components cost O(n) per
     component — quadratic overall — and this test would take minutes. *)
  let n = 120_000 and trees = 30_000 in
  let g = Gen.random_forest ~n ~trees ~seed:11 in
  let sg = Semi_graph.of_graph g in
  let components = Semi_graph.underlying_components sg in
  check_int "component count" trees (Array.length components);
  let total = ref 0 in
  Array.iteri
    (fun i component ->
      match component with
      | [] -> ()
      | center :: _ ->
        let r = Tl_local.Gather.knowledge_rounds sg ~center in
        total := !total + r;
        (* spot-check correctness against the analytic value *)
        if i < 50 then
          check_int "flooding = eccentricity"
            (Semi_graph.underlying_eccentricity sg center)
            r)
    components;
  check "total rounds bounded by n" true (!total < n)

let prop_gather_matches_eccentricity =
  QCheck.Test.make ~name:"flooding rounds equal eccentricity" ~count:40
    QCheck.(triple (int_range 1 120) (int_range 0 100000) (int_range 0 1000))
    (fun (n, seed, c) ->
      let g = Gen.random_tree ~n ~seed in
      let center = c mod n in
      let sg = Semi_graph.of_graph g in
      Tl_local.Gather.knowledge_rounds sg ~center
      = Semi_graph.underlying_eccentricity sg center)

let () =
  Alcotest.run "tl_local"
    [
      ( "runtime",
        [
          Alcotest.test_case "flooding" `Quick test_flooding_rounds;
          Alcotest.test_case "flooding completes" `Quick test_flooding_completes;
          Alcotest.test_case "halted early exit" `Quick test_halted_early_exit;
          Alcotest.test_case "max rounds guard" `Quick test_max_rounds_guard;
          Alcotest.test_case "semi-graph restriction" `Quick test_runtime_respects_semi_graph;
          Alcotest.test_case "synchronous swap" `Quick test_swap_is_synchronous;
        ] );
      ("round_cost", [ Alcotest.test_case "ledger" `Quick test_round_cost ]);
      ( "ids",
        [
          Alcotest.test_case "assignments" `Quick test_ids;
          QCheck_alcotest.to_alcotest prop_permuted_is_permutation;
        ] );
      ( "view",
        [
          Alcotest.test_case "balls" `Quick test_ball;
          Alcotest.test_case "gather cost" `Quick test_gather_cost;
        ] );
      ( "gather",
        [
          Alcotest.test_case "flooding = eccentricity" `Quick
            test_gather_flooding_matches_eccentricity;
          Alcotest.test_case "many small components" `Quick
            test_gather_many_small_components;
          QCheck_alcotest.to_alcotest prop_gather_matches_eccentricity;
        ] );
    ]
