(* Tests for the tl_metrics registry: bucket-layout properties (every
   float lands in exactly one bucket, indices are monotone), histogram
   snapshots and merge algebra, multi-domain observation, the
   tl_metrics = 1 JSON round-trip, Prometheus text exposition, quantile
   error bounds, the flight recorder ring, and the engine bridge
   (enable/disable). *)

module Metrics = Tl_obs.Metrics
module Json = Tl_obs.Json
module Gen = Tl_graph.Gen
module Semi_graph = Tl_graph.Semi_graph
module Engine = Tl_engine.Engine
module Topology = Tl_engine.Topology

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The registry memoizes by name: property iterations that need an empty
   histogram each take a fresh one. *)
let fresh =
  let k = ref 0 in
  fun prefix ->
    incr k;
    Printf.sprintf "test_%s_%d" prefix !k

(* ---------- bucket layout ---------- *)

let test_bucket_layout () =
  check_int "n_buckets" 128 Metrics.n_buckets;
  check "first boundary is 1us" true (Metrics.bucket_le 0 = 1e-6);
  check "last boundary is +Inf" true
    (Metrics.bucket_le (Metrics.n_buckets - 1) = infinity);
  (* finite boundaries grow by exactly 2^(1/4) *)
  let growth = Float.pow 2. 0.25 in
  for i = 0 to Metrics.n_buckets - 3 do
    let ratio = Metrics.bucket_le (i + 1) /. Metrics.bucket_le i in
    check
      (Printf.sprintf "growth at %d" i)
      true
      (Float.abs (ratio -. growth) < 1e-12)
  done;
  (* totality on the specials the generators rarely produce *)
  check_int "nan -> 0" 0 (Metrics.bucket_index Float.nan);
  check_int "zero -> 0" 0 (Metrics.bucket_index 0.);
  check_int "negative -> 0" 0 (Metrics.bucket_index (-5.));
  check_int "+Inf -> last" (Metrics.n_buckets - 1)
    (Metrics.bucket_index infinity);
  (* boundary values belong to their own bucket (le is inclusive) *)
  for i = 0 to Metrics.n_buckets - 2 do
    check_int
      (Printf.sprintf "boundary %d inclusive" i)
      i
      (Metrics.bucket_index (Metrics.bucket_le i))
  done

let prop_exactly_one_bucket =
  QCheck.Test.make ~name:"every float lands in exactly one bucket" ~count:500
    QCheck.(float_range (-1.) 1e7)
    (fun x ->
      let i = Metrics.bucket_index x in
      0 <= i
      && i < Metrics.n_buckets
      && x <= Metrics.bucket_le i
      && (i = 0 || not (x <= Metrics.bucket_le (i - 1))))

let prop_bucket_index_monotone =
  QCheck.Test.make ~name:"bucket_index is monotone" ~count:500
    QCheck.(pair (float_range 0. 1e4) (float_range 0. 1e4))
    (fun (x, y) ->
      let lo = min x y and hi = max x y in
      Metrics.bucket_index lo <= Metrics.bucket_index hi)

(* ---------- histogram snapshots and merge algebra ---------- *)

let samples_arb =
  (* latencies in (0, 10s]: the layout's sweet spot *)
  QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (float_range 1e-7 10.))

let snap_of xs =
  let h = Metrics.histogram (fresh "hist") in
  List.iter (Metrics.observe h) xs;
  Metrics.histogram_snapshot h

let cumulative_ok (s : Metrics.hsnap) =
  let rec go prev = function
    | [] -> true
    | (le, cum) :: rest ->
      (match prev with
      | None -> cum > 0
      | Some (ple, pcum) -> ple < le && pcum < cum)
      && cum <= s.Metrics.h_count
      && go (Some (le, cum)) rest
  in
  go None s.Metrics.h_buckets

let prop_snapshot_cumulative_monotone =
  QCheck.Test.make
    ~name:"snapshot buckets are strictly increasing cumulatives" ~count:100
    samples_arb
    (fun xs ->
      let s = snap_of xs in
      s.Metrics.h_count = List.length xs && cumulative_ok s)

let same_structure a b =
  a.Metrics.h_count = b.Metrics.h_count
  && a.Metrics.h_buckets = b.Metrics.h_buckets

let sums_close a b =
  Float.abs (a.Metrics.h_sum -. b.Metrics.h_sum)
  <= 1e-9 *. (1. +. Float.abs a.Metrics.h_sum)

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge_hsnap is commutative" ~count:100
    QCheck.(pair samples_arb samples_arb)
    (fun (xs, ys) ->
      let a = snap_of xs and b = snap_of ys in
      Metrics.merge_hsnap a b = Metrics.merge_hsnap b a)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge_hsnap is associative" ~count:100
    QCheck.(triple samples_arb samples_arb samples_arb)
    (fun (xs, ys, zs) ->
      let a = snap_of xs and b = snap_of ys and c = snap_of zs in
      let l = Metrics.merge_hsnap (Metrics.merge_hsnap a b) c in
      let r = Metrics.merge_hsnap a (Metrics.merge_hsnap b c) in
      same_structure l r && sums_close l r)

let prop_merge_agrees_with_union =
  QCheck.Test.make
    ~name:"merge of two scrapes = scrape of the union" ~count:100
    QCheck.(pair samples_arb samples_arb)
    (fun (xs, ys) ->
      let merged = Metrics.merge_hsnap (snap_of xs) (snap_of ys) in
      let union = snap_of (xs @ ys) in
      same_structure merged union && sums_close merged union)

let test_multi_domain_observe () =
  let h = Metrics.histogram (fresh "domains") in
  let c = Metrics.counter (fresh "domains_total") in
  let per_domain = 1_000 in
  let worker () =
    Domain.spawn (fun () ->
        for i = 1 to per_domain do
          Metrics.observe h (1e-5 *. float_of_int i);
          Metrics.incr c 1
        done)
  in
  let ds = List.init 4 (fun _ -> worker ()) in
  List.iter Domain.join ds;
  let s = Metrics.histogram_snapshot h in
  check_int "histogram count over 4 domains" (4 * per_domain)
    s.Metrics.h_count;
  check_int "counter over 4 domains" (4 * per_domain) (Metrics.counter_value c);
  check "sum matches" true
    (let expected =
       4. *. (1e-5 *. (float_of_int (per_domain * (per_domain + 1)) /. 2.))
     in
     Float.abs (s.Metrics.h_sum -. expected) < 1e-6 *. expected);
  check "cumulative monotone" true (cumulative_ok s)

(* ---------- quantiles ---------- *)

let test_quantile_bounds () =
  let h = Metrics.histogram (fresh "quant") in
  for i = 1 to 100 do
    Metrics.observe h (0.001 *. float_of_int i) (* 1ms .. 100ms *)
  done;
  let s = Metrics.histogram_snapshot h in
  let growth = Float.pow 2. 0.25 in
  List.iter
    (fun q ->
      let true_q = 0.001 *. Float.ceil (q *. 100.) in
      let est = Metrics.quantile s q in
      check
        (Printf.sprintf "q%.2f overestimates by < 2^(1/4)" q)
        true
        (est >= true_q && est <= true_q *. growth *. (1. +. 1e-9)))
    [ 0.5; 0.9; 0.99; 1.0 ];
  check "empty histogram -> 0" true
    (Metrics.quantile
       { Metrics.h_count = 0; h_sum = 0.; h_buckets = [] }
       0.5
    = 0.);
  (* a sample beyond the top finite boundary pushes the max into +Inf *)
  let h2 = Metrics.histogram (fresh "quant_inf") in
  Metrics.observe h2 0.001;
  Metrics.observe h2 1e5;
  check "rank in +Inf bucket -> infinity" true
    (Metrics.quantile (Metrics.histogram_snapshot h2) 1.0 = infinity)

(* ---------- snapshot JSON round-trip and prom exposition ---------- *)

let test_snapshot_json_roundtrip () =
  let c = Metrics.counter (fresh "rt_total") in
  let g = Metrics.gauge (fresh "rt_depth") in
  let h =
    Metrics.histogram ~labels:[ ("problem", "mis"); ("engine", "seq") ]
      (fresh "rt_seconds")
  in
  Metrics.incr c 42;
  Metrics.set_gauge g (-3);
  List.iter (Metrics.observe h) [ 1e-5; 3e-4; 3e-4; 0.2; 1e5 ];
  let s = Metrics.snapshot () in
  check "snapshot has our counter" true
    (List.exists (fun (_, v) -> v = 42) s.Metrics.counters);
  match Metrics.snapshot_of_json (Metrics.snapshot_to_json s) with
  | Error msg -> Alcotest.failf "round-trip failed: %s" msg
  | Ok decoded ->
    (* %.17g float printing makes the round-trip bit-exact *)
    check "counters survive" true (decoded.Metrics.counters = s.Metrics.counters);
    check "gauges survive" true (decoded.Metrics.gauges = s.Metrics.gauges);
    check "histograms survive" true
      (decoded.Metrics.histograms = s.Metrics.histograms);
    check "version rejected" true
      (match
         Metrics.snapshot_of_json
           (Json.Obj [ ("tl_metrics", Json.Num 99.) ])
       with
      | Error _ -> true
      | Ok _ -> false)

let test_prometheus_exposition () =
  let name = fresh "prom_seconds" in
  let h = Metrics.histogram ~labels:[ ("phase", "warm") ] name in
  List.iter (Metrics.observe h) [ 1e-5; 2e-5; 0.5 ];
  let s = Metrics.snapshot () in
  let prom = Metrics.to_prometheus s in
  let lines = String.split_on_char '\n' prom in
  check "TYPE line present" true
    (List.mem (Printf.sprintf "# TYPE %s histogram" name) lines);
  check "+Inf bucket carries the count" true
    (List.mem
       (Printf.sprintf "%s_bucket{phase=\"warm\",le=\"+Inf\"} 3" name)
       lines);
  check "count series" true
    (List.mem (Printf.sprintf "%s_count{phase=\"warm\"} 3" name) lines);
  (* every sample line is `series value` with a parseable value *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "no value separator in %S" line
        | Some i ->
          let v = String.sub line (i + 1) (String.length line - i - 1) in
          check
            (Printf.sprintf "numeric value in %S" line)
            true
            (Option.is_some (float_of_string_opt v)))
    lines

(* ---------- reset and the flight recorder ---------- *)

let test_reset () =
  let c = Metrics.counter (fresh "reset_total") in
  let h = Metrics.histogram (fresh "reset_seconds") in
  Metrics.incr c 7;
  Metrics.observe h 0.01;
  Metrics.reset ();
  check_int "counter zeroed" 0 (Metrics.counter_value c);
  check_int "histogram zeroed" 0
    (Metrics.histogram_snapshot h).Metrics.h_count;
  (* the handle survives the reset *)
  Metrics.incr c 1;
  check_int "handle still live" 1 (Metrics.counter_value c)

let ev ?(outcome = "ok") i =
  {
    Metrics.Recorder.ts = float_of_int i;
    kind = "request";
    key = Printf.sprintf "k%d" i;
    detail = "problem=mis engine=seq";
    outcome;
    latency_s = 0.001 *. float_of_int i;
  }

let test_recorder_ring () =
  Metrics.Recorder.clear ();
  let cap = Metrics.Recorder.capacity in
  for i = 1 to cap + 50 do
    Metrics.Recorder.record (ev i)
  done;
  let events = Metrics.Recorder.tail () in
  check_int "ring retains capacity" cap (List.length events);
  check_str "oldest survivor" "k51"
    (List.hd events).Metrics.Recorder.key;
  check_str "newest last"
    (Printf.sprintf "k%d" (cap + 50))
    (List.nth events (cap - 1)).Metrics.Recorder.key;
  let last4 = Metrics.Recorder.tail ~limit:4 () in
  check_int "limited tail" 4 (List.length last4);
  check_str "limited tail is the newest" (Printf.sprintf "k%d" (cap + 47))
    (List.hd last4).Metrics.Recorder.key;
  Metrics.Recorder.clear ();
  check_int "clear empties" 0 (List.length (Metrics.Recorder.tail ()))

let test_recorder_json_roundtrip () =
  let e = ev ~outcome:"error:failed" 3 in
  check "event round-trips" true
    (Metrics.Recorder.event_of_json (Metrics.Recorder.event_to_json e)
    = Some e);
  check "garbage rejected" true
    (Metrics.Recorder.event_of_json (Json.Obj [ ("kind", Json.Str "x") ])
    = None)

(* ---------- engine bridge ---------- *)

let test_engine_bridge () =
  let topo =
    Topology.compile (Semi_graph.of_graph (Gen.random_tree ~n:200 ~seed:5))
  in
  let flood () =
    ignore
      (Engine.run_until_stable ~mode:Engine.Seq ~topo
         ~init:(fun v -> v = 0)
         ~step:(fun ~round:_ ~node:_ s ~neighbors ->
           s || List.exists (fun (_, _, su) -> su) neighbors)
         ~equal:Bool.equal ~max_rounds:201 ())
  in
  let runs = Metrics.counter "engine_runs_total" in
  Metrics.disable ();
  let before = Metrics.counter_value runs in
  flood ();
  check_int "disabled: no counting" before (Metrics.counter_value runs);
  Metrics.enable ();
  check "enabled flag" true (Metrics.enabled ());
  flood ();
  flood ();
  check_int "one increment per run" (before + 2) (Metrics.counter_value runs);
  check "steps counted" true
    (Metrics.counter_value (Metrics.counter "engine_steps_total") > 0);
  let run_h = Metrics.histogram_snapshot (Metrics.histogram "engine_run_seconds") in
  check "run latency observed" true (run_h.Metrics.h_count >= 2);
  Metrics.disable ();
  let after = Metrics.counter_value runs in
  flood ();
  check_int "disabled again: no counting" after (Metrics.counter_value runs)

let () =
  Alcotest.run "tl_metrics"
    [
      ( "buckets",
        [
          Alcotest.test_case "layout" `Quick test_bucket_layout;
          QCheck_alcotest.to_alcotest prop_exactly_one_bucket;
          QCheck_alcotest.to_alcotest prop_bucket_index_monotone;
        ] );
      ( "histograms",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_cumulative_monotone;
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_agrees_with_union;
          Alcotest.test_case "multi-domain observe" `Quick
            test_multi_domain_observe;
          Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "json round-trip" `Quick
            test_snapshot_json_roundtrip;
          Alcotest.test_case "prometheus exposition" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring overwrite + tail" `Quick test_recorder_ring;
          Alcotest.test_case "event json round-trip" `Quick
            test_recorder_json_roundtrip;
        ] );
      ( "engine-bridge",
        [ Alcotest.test_case "enable/disable" `Quick test_engine_bridge ] );
    ]
