(* Tests for the observability layer: Json parse/print round-trips, Span
   trees and ambient-context semantics, the two cost-stream bridges, and
   the report schema of the full Theorem 12 / Theorem 15 pipelines. *)

module Gen = Tl_graph.Gen
module Graph = Tl_graph.Graph
module Ids = Tl_local.Ids
module Round_cost = Tl_local.Round_cost
module Pipeline = Tl_core.Pipeline
module Json = Tl_obs.Json
module Span = Tl_obs.Span
module Report = Tl_obs.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ---------- Json ---------- *)

let test_json_parse_basics () =
  let open Json in
  check "null" true (parse "null" = Null);
  check "true" true (parse " true " = Bool true);
  check "num" true (parse "-12.5e1" = Num (-125.));
  check "str" true (parse {|"a\"b\né"|} = Str "a\"b\n\xc3\xa9");
  check "arr" true (parse "[1, 2 ,3]" = Arr [ Num 1.; Num 2.; Num 3. ]);
  check "obj" true
    (parse {|{"a":1,"b":[true,null]}|}
    = Obj [ ("a", Num 1.); ("b", Arr [ Bool true; Null ]) ])

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check "empty" true (bad "");
  check "trailing garbage" true (bad "1 2");
  check "bare word" true (bad "nul");
  check "unterminated string" true (bad {|"abc|});
  check "unterminated array" true (bad "[1,2");
  check "missing colon" true (bad {|{"a" 1}|})

let test_json_nonfinite_prints_null () =
  (* nan/inf used to print as "nan"/"inf" — tokens no JSON parser
     accepts, so a single bad metric poisoned a whole report file *)
  check "nan" true (Json.to_string (Json.Num Float.nan) = "null");
  check "inf" true (Json.to_string (Json.Num Float.infinity) = "null");
  check "-inf" true (Json.to_string (Json.Num Float.neg_infinity) = "null");
  let s = Json.to_string (Json.Obj [ ("x", Json.Num (0. /. 0.)) ]) in
  check "nested" true (s = {|{"x":null}|});
  check "reparses" true (Json.parse s = Json.Obj [ ("x", Json.Null) ])

let test_json_unicode_escapes () =
  let bad s =
    match Json.parse s with
    | exception Json.Parse_error _ -> true
    | _ -> false
  in
  check "bmp escape" true (Json.parse {|"A\u00e9"|} = Json.Str "A\xc3\xa9");
  (* \ud83d\ude00 is the surrogate pair for U+1F600 (the emoji) *)
  check "surrogate pair" true
    (Json.parse {|"\ud83d\ude00"|} = Json.Str "\xf0\x9f\x98\x80");
  check "lone high surrogate" true (bad {|"\ud800"|});
  check "lone high then text" true (bad {|"\ud800x"|});
  check "lone low surrogate" true (bad {|"\udfff"|});
  check "high then non-low" true (bad {|"\ud83dA"|});
  check "bad hex digit" true (bad {|"\u12g4"|});
  check "underscore not hex" true (bad {|"\u1_23"|});
  check "truncated" true (bad {|"\ud8|})

let test_json_accessors () =
  let j = Json.parse {|{"n":3,"x":1.5,"s":"hi","l":[0],"o":{}}|} in
  check "member hit" true (Json.member "n" j <> None);
  check "member miss" true (Json.member "zz" j = None);
  check "member non-obj" true (Json.member "a" (Json.Arr []) = None);
  check "to_int integral" true
    (Option.bind (Json.member "n" j) Json.to_int = Some 3);
  check "to_int non-integral" true
    (Option.bind (Json.member "x" j) Json.to_int = None);
  check "to_float" true
    (Option.bind (Json.member "x" j) Json.to_float = Some 1.5);
  check "to_str" true (Option.bind (Json.member "s" j) Json.to_str = Some "hi");
  check "to_list" true
    (Option.bind (Json.member "l" j) Json.to_list = Some [ Json.Num 0. ]);
  check "to_assoc" true
    (Option.bind (Json.member "o" j) Json.to_assoc = Some [])

(* qcheck generator for arbitrary Json values *)
let json_gen =
  let open QCheck2.Gen in
  let str_g = string_size ~gen:(char_range 'a' 'z') (int_range 0 6) in
  let num_g =
    oneof
      [
        map float_of_int (int_range (-1000000) 1000000);
        map (fun f -> Float.of_int (Float.to_int (f *. 1e6)) /. 1e6) float;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun f -> Json.Num f) num_g;
               map (fun s -> Json.Str s) str_g;
             ]
         else
           oneof
             [
               map (fun l -> Json.Arr l) (list_size (int_range 0 4) (self (n / 2)));
               map
                 (fun l -> Json.Obj l)
                 (list_size (int_range 0 4) (pair str_g (self (n / 2))));
             ])

let prop_json_roundtrip =
  QCheck2.Test.make ~name:"parse (to_string v) = v" ~count:300 json_gen
    (fun v ->
      (* duplicate object keys would not round-trip through member order;
         the generator can produce them, so compare via to_string *)
      let s = Json.to_string v in
      Json.to_string (Json.parse s) = s)

(* ---------- ndjson ---------- *)

let test_ndjson_basics () =
  let check = Alcotest.(check bool) in
  (* to_line is exactly one line: compact value + newline *)
  Alcotest.(check string)
    "to_line" "{\"a\":1}\n"
    (Json.to_line (Json.Obj [ ("a", Json.Num 1.) ]));
  let r = Json.Ndjson.reader () in
  Json.Ndjson.feed r "{\"a\":";
  check "value incomplete" true (Json.Ndjson.next r = None);
  Json.Ndjson.feed r "1}\r\n\n  \ntrue\n[1,";
  check "first value" true
    (Json.Ndjson.next r = Some (Json.Obj [ ("a", Json.Num 1.) ]));
  check "blank lines skipped" true (Json.Ndjson.next r = Some (Json.Bool true));
  check "partial tail buffered" true (Json.Ndjson.next r = None);
  Alcotest.(check string) "pending" "[1," (Json.Ndjson.pending r);
  Json.Ndjson.feed r "2]\n";
  check "completed tail" true
    (Json.Ndjson.next r = Some (Json.Arr [ Json.Num 1.; Json.Num 2. ]));
  check "drained" true (Json.Ndjson.next r = None)

let test_ndjson_parse_error () =
  let r = Json.Ndjson.reader () in
  Json.Ndjson.feed r "{oops}\n{\"ok\":true}\n";
  (match Json.Ndjson.next r with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "malformed line must raise Parse_error");
  (* the bad line is consumed; the stream continues *)
  Alcotest.(check bool)
    "stream continues after error" true
    (Json.Ndjson.next r = Some (Json.Obj [ ("ok", Json.Bool true) ]))

let test_read_ndjson () =
  Alcotest.(check bool)
    "unterminated last line" true
    (Json.read_ndjson "1\n2" = [ Json.Num 1.; Json.Num 2. ]);
  Alcotest.(check bool) "empty" true (Json.read_ndjson "" = []);
  Alcotest.(check bool) "blank" true (Json.read_ndjson " \n\t\n" = [])

(* emit a stream of values with to_line, read it back value by value —
   in one gulp and through arbitrary chunkings of the same bytes *)
let prop_ndjson_roundtrip =
  QCheck2.Test.make ~name:"ndjson stream round-trip" ~count:200
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 8) json_gen)
        (small_list (int_range 1 7)))
    (fun (vs, chunks) ->
      let stream = String.concat "" (List.map Json.to_line vs) in
      let expect = List.map Json.to_string vs in
      let got_bulk = List.map Json.to_string (Json.read_ndjson stream) in
      let r = Json.Ndjson.reader () in
      let len = String.length stream in
      let pos = ref 0 and sizes = ref chunks and got = ref [] in
      while !pos < len do
        let sz =
          match !sizes with
          | [] -> len - !pos
          | s :: rest ->
            sizes := rest;
            min s (len - !pos)
        in
        Json.Ndjson.feed r ~pos:!pos ~len:sz stream;
        pos := !pos + sz;
        let rec drain () =
          match Json.Ndjson.next r with
          | None -> ()
          | Some v ->
            got := Json.to_string v :: !got;
            drain ()
        in
        drain ()
      done;
      got_bulk = expect && List.rev !got = expect)

(* ---------- Span ---------- *)

let test_span_inactive_noops () =
  check "inactive" true (not (Span.active ()));
  check "no current" true (Span.current () = None);
  (* recording ops must be silent no-ops *)
  Span.set_attr "k" "v";
  Span.add_counter "c" 1;
  Span.add_rounds ~phase:"p" 3;
  let r = Span.with_span "ghost" (fun () -> 41 + 1) in
  check_int "passthrough result" 42 r;
  check "still inactive" true (not (Span.active ()))

let test_span_tree_structure () =
  let result, root =
    Span.run "root" ~attrs:[ ("mode", "test") ] (fun () ->
        Span.with_span "a" (fun () ->
            Span.add_rounds ~phase:"x" 5;
            Span.with_span "a1" (fun () -> Span.add_rounds ~phase:"y" 2));
        Span.with_span "b" (fun () -> Span.add_counter "hits" 7);
        "done")
  in
  check_str "result" "done" result;
  check "finished root" true (not (Span.active ()));
  check_str "root name" "root" (Span.name root);
  check "elapsed stamped" true (Span.elapsed_s root >= 0.);
  check "attrs kept" true (Span.attrs root = [ ("mode", "test") ]);
  let kids = Span.children root in
  check_int "two children" 2 (List.length kids);
  let a = List.nth kids 0 and b = List.nth kids 1 in
  check_str "child order a" "a" (Span.name a);
  check_str "child order b" "b" (Span.name b);
  check_int "a rounds_self" 5 (Span.rounds_self a);
  check_int "a rounds_total (with a1)" 7 (Span.rounds_total a);
  check_int "root rounds_total" 7 (Span.rounds_total root);
  check_int "root rounds_self" 0 (Span.rounds_self root);
  check "b counter" true (Span.counters b = [ ("hits", 7) ])

let test_span_exception_safety () =
  (match Span.run "root" (fun () -> Span.with_span "boom" (fun () -> failwith "x")) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  check "stack unwound" true (not (Span.active ()))

let test_span_install_root () =
  let root = Span.create "manual" in
  Span.install_root root;
  check "ambient" true (Span.active ());
  (match Span.install_root (Span.create "second") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument on double install");
  Span.with_span "child" (fun () -> Span.add_rounds ~phase:"p" 4);
  Span.finish root;
  check "closed" true (not (Span.active ()));
  check_int "rounds flowed" 4 (Span.rounds_total root);
  let e1 = Span.elapsed_s root in
  Span.finish root;
  check "idempotent finish" true (Span.elapsed_s root = e1)

let test_round_cost_bridge () =
  (* every ledger charge must land on the current span's phase rounds *)
  let (), root =
    Span.run "root" (fun () ->
        let c = Round_cost.create () in
        Span.with_span "decompose" (fun () ->
            Round_cost.charge c "decompose" 6);
        Span.with_span "base" (fun () -> Round_cost.charge c "base:A" 62);
        check_int "ledger total" 68 (Round_cost.total c))
  in
  check_int "span total matches ledger" 68 (Span.rounds_total root);
  let kids = Span.children root in
  check_int "decompose span rounds" 6 (Span.rounds_self (List.nth kids 0));
  check_int "base span rounds" 62 (Span.rounds_self (List.nth kids 1))

let test_add_trace () =
  let tr = Tl_engine.Trace.create ~label:"kern" () in
  Tl_engine.Trace.set_meta tr ~mode:"seq" ~scheduling:"active-set" ~n_base:10
    ~n_present:10;
  Tl_engine.Trace.record tr
    { round = 1; active = 10; changed = 3; unhalted = -1; wall_s = 0.001 };
  Tl_engine.Trace.finish tr ~total_s:0.002;
  let (), root = Span.run "root" (fun () -> Span.add_trace tr) in
  match Span.children root with
  | [ child ] ->
    check_str "engine child name" "engine:kern" (Span.name child);
    check "mode attr" true (List.assoc "mode" (Span.attrs child) = "seq");
    check_int "rounds counter" 1 (List.assoc "rounds" (Span.counters child));
    check_int "steps counter" 10 (List.assoc "steps" (Span.counters child));
    check "elapsed = total_s" true (Span.elapsed_s child = 0.002);
    (* measured engine rounds are counters, not LOCAL round charges *)
    check_int "no LOCAL rounds" 0 (Span.rounds_total root)
  | _ -> Alcotest.fail "expected exactly one engine child"

(* ---------- Report ---------- *)

let sample_tree () =
  let (), root =
    Span.run "solve" ~attrs:[ ("problem", "mis") ] (fun () ->
        Span.with_span "decompose" (fun () -> Span.add_rounds ~phase:"d" 6);
        Span.with_span "base" (fun () ->
            Span.add_counter "steps" 100;
            Span.add_rounds ~phase:"b" 62);
        Span.with_span "base" (fun () -> ()))
  in
  root

let test_report_json_schema () =
  let root = sample_tree () in
  let j = Json.parse (Report.json_string root) in
  check "schema version" true
    (Option.bind (Json.member "tl_obs_report" j) Json.to_int
    = Some Report.schema_version);
  let span = Option.get (Json.member "span" j) in
  check "name" true
    (Option.bind (Json.member "name" span) Json.to_str = Some "solve");
  check "elapsed present" true
    (Option.bind (Json.member "elapsed_s" span) Json.to_float <> None);
  check "attrs object" true
    (Option.bind (Json.member "attrs" span) Json.to_assoc
    = Some [ ("problem", Json.Str "mis") ]);
  check "rounds_total" true
    (Option.bind (Json.member "rounds_total" span) Json.to_int = Some 68);
  let children =
    Option.get (Option.bind (Json.member "children" span) Json.to_list)
  in
  check_int "three children" 3 (List.length children);
  let base = List.nth children 1 in
  check "child counters" true
    (Option.bind (Json.member "counters" base) Json.to_assoc
    = Some [ ("steps", Json.Num 100.) ]);
  check "child rounds map" true
    (Option.bind (Json.member "rounds" base) Json.to_assoc
    = Some [ ("b", Json.Num 62.) ])

let test_report_flatten_and_csv () =
  let root = sample_tree () in
  let paths = List.map fst (Report.flatten root) in
  check "paths" true
    (paths = [ "solve"; "solve/decompose"; "solve/base"; "solve/base#1" ]);
  let csv = Report.to_csv root in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_str "csv header" "path,depth,elapsed_s,rounds_self,rounds_total,attrs"
    (List.hd lines);
  check_int "csv rows" 5 (List.length lines);
  (* root row carries its attrs as ;-joined k=v pairs in the last field *)
  let root_row = List.nth lines 1 in
  check "root attrs column" true
    (String.length root_row >= 11
    && String.sub root_row (String.length root_row - 11) 11 = "problem=mis")

(* RFC 4180: span names and attr values containing the separator, a
   quote or a newline must come back quoted with inner quotes doubled —
   a raw comma in a span name used to shift every later column. *)
let test_report_csv_escaping () =
  let _, root =
    Span.run "solve, \"quoted\""
      ~attrs:[ ("note", "a,b"); ("quote", "say \"hi\""); ("nl", "x\ny") ]
      (fun () -> Span.with_span "plain" (fun () -> ()))
  in
  let csv = Report.to_csv root in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* the embedded newline in an attr value is quoted, not a row break:
     header + 2 spans + 1 continuation line of the quoted field *)
  check_int "csv physical lines" 4 (List.length lines);
  let row = List.nth lines 1 in
  check "path field quoted" true
    (String.length row > 0 && row.[0] = '"');
  let prefix = "\"solve, \"\"quoted\"\"\"," in
  check "quotes doubled in path" true
    (String.length row >= String.length prefix
    && String.sub row 0 (String.length prefix) = prefix);
  let attrs_field = {|"note=a,b;quote=say ""hi"";nl=x|} in
  check "attrs field quoted and escaped" true
    (let alen = String.length attrs_field and rlen = String.length row in
     rlen >= alen && String.sub row (rlen - alen) alen = attrs_field);
  check_str "quoted newline continuation" "y\"" (List.nth lines 2);
  (* a clean tree keeps bare, unquoted fields *)
  let _, clean = Span.run "ok" ~attrs:[ ("k", "v") ] (fun () -> ()) in
  let clean_row = List.nth (String.split_on_char '\n' (Report.to_csv clean)) 1 in
  check "no spurious quoting" true
    (not (String.contains clean_row '"'))

(* ---------- Pipeline phase schemas (acceptance criterion) ---------- *)

let child_names root =
  List.map Span.name (Span.children root)

let find_child root name =
  List.find (fun s -> Span.name s = name) (Span.children root)

let test_theorem1_report_phases () =
  (* Theorem 12 (MIS on a tree): the span tree must expose the
     decompose / base / gather-solve phase breakdown and its rounds must
     agree with the Round_cost ledger. *)
  let tree = Gen.random_tree ~n:400 ~seed:60 in
  let ids = Ids.permuted ~n:400 ~seed:61 in
  let r, root =
    Span.run "solve" (fun () -> Pipeline.mis_on_tree ~tree ~ids ())
  in
  check "valid run" true r.Pipeline.valid;
  let names = child_names root in
  List.iter
    (fun phase ->
      check (phase ^ " span present") true (List.mem phase names))
    [ "decompose"; "base"; "gather-solve"; "validate" ];
  check_int "span rounds = ledger rounds" r.Pipeline.total_rounds
    (Span.rounds_total root);
  check_int "decompose rounds" (Round_cost.get r.Pipeline.cost "decompose")
    (Span.rounds_total (find_child root "decompose"));
  check_int "base rounds"
    (Round_cost.get r.Pipeline.cost "base:A(T_C)")
    (Span.rounds_total (find_child root "base"));
  check_int "gather rounds"
    (Round_cost.get r.Pipeline.cost "gather-solve")
    (Span.rounds_total (find_child root "gather-solve"));
  (* round-trip through the serialized report *)
  let j = Json.parse (Report.json_string root) in
  let span = Option.get (Json.member "span" j) in
  check "report rounds_total" true
    (Option.bind (Json.member "rounds_total" span) Json.to_int
    = Some r.Pipeline.total_rounds)

let test_theorem2_report_phases () =
  (* Theorem 15 (matching on a bounded-arboricity union): phases
     decompose / forest-coloring / base / stars. *)
  let graph = Gen.forest_union ~n:300 ~arboricity:2 ~seed:63 in
  let ids = Ids.permuted ~n:300 ~seed:65 in
  let r, root =
    Span.run "solve" (fun () -> Pipeline.matching_on_graph ~graph ~a:2 ~ids ())
  in
  check "valid run" true r.Pipeline.valid;
  let names = child_names root in
  List.iter
    (fun phase ->
      check (phase ^ " span present") true (List.mem phase names))
    [ "decompose"; "forest-coloring"; "base"; "stars"; "validate" ];
  check_int "span rounds = ledger rounds" r.Pipeline.total_rounds
    (Span.rounds_total root);
  check_int "stars rounds"
    (Round_cost.get r.Pipeline.cost "gather-solve(stars)")
    (Span.rounds_total (find_child root "stars"));
  (* the decompose span nests the arb-decompose sub-spans *)
  let dec = find_child root "decompose" in
  let sub = List.concat_map Span.children (Span.children dec) in
  check "cv3-forests nested under decompose" true
    (List.exists (fun s -> Span.name s = "cv3-forests") sub
    || List.exists
         (fun s -> Span.name s = "cv3-forests")
         (List.concat_map Span.children sub))

let () =
  Alcotest.run "tl_obs"
    [
      ( "json",
        [
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_errors;
          Alcotest.test_case "non-finite prints null" `Quick
            test_json_nonfinite_prints_null;
          Alcotest.test_case "unicode escapes" `Quick
            test_json_unicode_escapes;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
        ] );
      ( "ndjson",
        [
          Alcotest.test_case "incremental reader" `Quick test_ndjson_basics;
          Alcotest.test_case "parse error recovery" `Quick
            test_ndjson_parse_error;
          Alcotest.test_case "read_ndjson" `Quick test_read_ndjson;
          QCheck_alcotest.to_alcotest prop_ndjson_roundtrip;
        ] );
      ( "span",
        [
          Alcotest.test_case "inactive no-ops" `Quick test_span_inactive_noops;
          Alcotest.test_case "tree structure" `Quick test_span_tree_structure;
          Alcotest.test_case "exception safety" `Quick
            test_span_exception_safety;
          Alcotest.test_case "install_root" `Quick test_span_install_root;
          Alcotest.test_case "round_cost bridge" `Quick test_round_cost_bridge;
          Alcotest.test_case "add_trace" `Quick test_add_trace;
        ] );
      ( "report",
        [
          Alcotest.test_case "json schema" `Quick test_report_json_schema;
          Alcotest.test_case "flatten + csv" `Quick
            test_report_flatten_and_csv;
          Alcotest.test_case "csv rfc-4180 escaping" `Quick
            test_report_csv_escaping;
        ] );
      ( "pipeline-phases",
        [
          Alcotest.test_case "theorem1 report" `Quick
            test_theorem1_report_phases;
          Alcotest.test_case "theorem2 report" `Quick
            test_theorem2_report_phases;
        ] );
    ]
