(* Tests for the node-edge-checkable formalism and the concrete problems. *)

module Graph = Tl_graph.Graph
module Gen = Tl_graph.Gen
module Props = Tl_graph.Props
module Semi_graph = Tl_graph.Semi_graph
module Labeling = Tl_problems.Labeling
module Nec = Tl_problems.Nec
module Mis = Tl_problems.Mis
module Coloring = Tl_problems.Coloring
module Matching = Tl_problems.Matching
module Edge_coloring = Tl_problems.Edge_coloring
module Orientation = Tl_problems.Orientation

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tree_of (n, seed) = Gen.random_tree ~n ~seed

(* ---------- Labeling ---------- *)

let test_labeling_basics () =
  let g = Gen.path 3 in
  let l = Labeling.create g in
  check_int "unlabeled" 4 (Labeling.unlabeled_count l);
  check "not complete" false (Labeling.complete l);
  Labeling.set l 0 "x";
  check "labeled" true (Labeling.is_labeled l 0);
  check "get" true (Labeling.get l 0 = Some "x");
  check "double set raises" true
    (try Labeling.set l 0 "y"; false with Invalid_argument _ -> true);
  Labeling.set_exn_free l 0 "y";
  check "override" true (Labeling.get l 0 = Some "y");
  check "labels at node" true (Labeling.labels_at_node l 0 = [ "y" ]);
  Labeling.set l 1 "z";
  check "labels at edge" true (Labeling.labels_at_edge l 0 = [ "y"; "z" ]);
  check "node 0 fully labeled" true (Labeling.node_fully_labeled l 0);
  check "node 1 not fully labeled" false (Labeling.node_fully_labeled l 1);
  let l' = Labeling.copy l in
  Labeling.set l' 2 "w";
  check "copy independent" false (Labeling.is_labeled l 2)

(* ---------- Validator machinery ---------- *)

let test_validate_reports_missing () =
  let g = Gen.path 3 in
  let l = Labeling.create g in
  let violations = Nec.validate Mis.problem g l in
  check_int "4 missing half-edges" 4
    (List.length
       (List.filter
          (function Nec.Missing_half_edge _ -> true | _ -> false)
          violations))

let test_validate_node_violation () =
  let g = Gen.path 2 in
  let l = Labeling.create g in
  (* both endpoints point P at each other: edge violation and node ok? A
     single P with no O is a legal node config; {P,P} is an illegal edge. *)
  Labeling.set l 0 Mis.P;
  Labeling.set l 1 Mis.P;
  let violations = Nec.validate Mis.problem g l in
  check "has edge violation" true
    (List.exists (function Nec.Edge_violation _ -> true | _ -> false) violations)

let test_validate_semi_ignores_absent () =
  let g = Gen.path 3 in
  let sg = Semi_graph.of_node_subset g [| true; false; false |] in
  let l = Labeling.create g in
  (* only half-edge (0, edge 01) is present; label it M *)
  Labeling.set l (Graph.half_edge g ~edge:0 ~node:0) Mis.M;
  check "valid on semi" true (Nec.validate_semi Mis.problem sg l = []);
  check "invalid on full graph" false (Nec.validate Mis.problem g l = [])

let test_multiset_equal () =
  check "perm" true (Nec.multiset_equal ( = ) [ 1; 2; 2 ] [ 2; 1; 2 ]);
  check "diff" false (Nec.multiset_equal ( = ) [ 1; 2 ] [ 2; 2 ]);
  check "len" false (Nec.multiset_equal ( = ) [ 1 ] [ 1; 1 ]);
  check "empty" true (Nec.multiset_equal ( = ) [] [])

(* ---------- MIS ---------- *)

let test_mis_node_constraint () =
  check "all M" true (Mis.problem.Nec.node_ok [ Mis.M; Mis.M ]);
  check "empty" true (Mis.problem.Nec.node_ok []);
  check "one P rest O" true (Mis.problem.Nec.node_ok [ Mis.O; Mis.P; Mis.O ]);
  check "two P" false (Mis.problem.Nec.node_ok [ Mis.P; Mis.P ]);
  check "all O" false (Mis.problem.Nec.node_ok [ Mis.O; Mis.O ]);
  check "M and O mixed" false (Mis.problem.Nec.node_ok [ Mis.M; Mis.O ])

let test_mis_edge_constraint () =
  check "MP" true (Mis.problem.Nec.edge_ok [ Mis.M; Mis.P ]);
  check "MO" true (Mis.problem.Nec.edge_ok [ Mis.O; Mis.M ]);
  check "OO" true (Mis.problem.Nec.edge_ok [ Mis.O; Mis.O ]);
  check "MM" false (Mis.problem.Nec.edge_ok [ Mis.M; Mis.M ]);
  check "PO" false (Mis.problem.Nec.edge_ok [ Mis.P; Mis.O ]);
  check "PP" false (Mis.problem.Nec.edge_ok [ Mis.P; Mis.P ]);
  check "rank1 M" true (Mis.problem.Nec.edge_ok [ Mis.M ]);
  check "rank1 O" true (Mis.problem.Nec.edge_ok [ Mis.O ]);
  check "rank1 P forbidden" false (Mis.problem.Nec.edge_ok [ Mis.P ]);
  check "rank0" true (Mis.problem.Nec.edge_ok [])

let test_mis_encode_decode () =
  let g = Gen.path 5 in
  let set = [| true; false; true; false; true |] in
  let l = Mis.encode g set in
  check "valid" true (Nec.is_valid Mis.problem g l);
  check "roundtrip" true (Mis.decode g l = set);
  check "bad set raises" true
    (try Mis.encode g [| true; true; false; false; false |] |> ignore; false
     with Invalid_argument _ -> true)

let test_mis_solve_sequential () =
  List.iter
    (fun spec ->
      let g = tree_of spec in
      let l = Mis.solve_sequential g in
      check "valid" true (Nec.is_valid Mis.problem g l);
      check "maximal" true
        (Props.is_maximal_independent_set g (Mis.decode g l)))
    [ (1, 0); (2, 1); (30, 2); (100, 3) ]

let test_mis_solve_with_boundary () =
  (* path 0-1-2: fix node 0's half-edge to M (as if a previous phase put 0
     in the MIS), then complete nodes 1 and 2 *)
  let g = Gen.path 3 in
  let l = Labeling.create g in
  Labeling.set l (Graph.half_edge g ~edge:0 ~node:0) Mis.M;
  Mis.solve_edge_list g l ~nodes:[ 1; 2 ];
  (* node 1 must not join (M neighbor), node 2 must join *)
  check "1 not in mis" true (List.exists (( <> ) Mis.M) (Labeling.labels_at_node l 1));
  check "2 in mis" true (List.for_all (( = ) Mis.M) (Labeling.labels_at_node l 2));
  (* all constraints hold except node 0 (which is only partially labeled
     from the full graph's perspective: its solitary half-edge is fine) *)
  check "complete" true (Labeling.complete l)

(* ---------- Coloring ---------- *)

let test_coloring_constraints () =
  let p = Coloring.problem_deg_plus_one in
  check "same colors" true (p.Nec.node_ok [ 2; 2; 2 ]);
  check "palette bound" false (p.Nec.node_ok [ 5; 5; 5 ]);
  check "mixed" false (p.Nec.node_ok [ 1; 2 ]);
  check "empty" true (p.Nec.node_ok []);
  check "edge differ" true (p.Nec.edge_ok [ 1; 2 ]);
  check "edge clash" false (p.Nec.edge_ok [ 3; 3 ]);
  let q = Coloring.problem_delta_plus_one ~delta:3 in
  check "delta palette ok" true (q.Nec.node_ok [ 4 ]);
  check "delta palette exceeded" false (q.Nec.node_ok [ 5 ])

let test_coloring_encode_decode () =
  let g = Gen.star 4 in
  let colors = [| 1; 2; 2; 2 |] in
  let l = Coloring.encode g colors in
  check "valid" true (Nec.is_valid Coloring.problem_deg_plus_one g l);
  check "decode" true (Coloring.decode g l = colors)

let test_coloring_solver () =
  List.iter
    (fun spec ->
      let g = tree_of spec in
      let l = Coloring.solve_sequential g in
      check "valid" true (Nec.is_valid Coloring.problem_deg_plus_one g l);
      check "proper" true (Props.is_proper_coloring g (Coloring.decode g l)))
    [ (1, 0); (2, 5); (60, 6); (200, 7) ]

let test_coloring_respects_boundary () =
  let g = Gen.path 3 in
  let l = Labeling.create g in
  (* fix node 0's color to 1 *)
  Labeling.set l (Graph.half_edge g ~edge:0 ~node:0) 1;
  Coloring.solve_edge_list g l ~nodes:[ 1; 2 ];
  let c1 = match Labeling.labels_at_node l 1 with c :: _ -> c | [] -> -1 in
  check "node 1 avoids 1" true (c1 <> 1)

(* ---------- Matching ---------- *)

let test_matching_constraints () =
  let p = Matching.problem in
  check "one M" true (p.Nec.node_ok [ Matching.M; Matching.P; Matching.D ]);
  check "two M" false (p.Nec.node_ok [ Matching.M; Matching.M ]);
  check "all O/D" true (p.Nec.node_ok [ Matching.O; Matching.D ]);
  check "P without M" false (p.Nec.node_ok [ Matching.P; Matching.O ]);
  check "MM edge" true (p.Nec.edge_ok [ Matching.M; Matching.M ]);
  check "PO edge" true (p.Nec.edge_ok [ Matching.P; Matching.O ]);
  check "PP edge" true (p.Nec.edge_ok [ Matching.P; Matching.P ]);
  check "OO edge (maximality)" false (p.Nec.edge_ok [ Matching.O; Matching.O ]);
  check "MO edge" false (p.Nec.edge_ok [ Matching.M; Matching.O ]);
  check "MP edge" false (p.Nec.edge_ok [ Matching.M; Matching.P ]);
  check "rank1 D" true (p.Nec.edge_ok [ Matching.D ]);
  check "rank1 M" false (p.Nec.edge_ok [ Matching.M ])

let test_matching_encode_decode () =
  let g = Gen.path 4 in
  let m = [| true; false; true |] in
  let l = Matching.encode g m in
  check "valid" true (Nec.is_valid Matching.problem g l);
  check "decode" true (Matching.decode g l = m)

let test_matching_solver () =
  List.iter
    (fun spec ->
      let g = tree_of spec in
      let l = Matching.solve_sequential g in
      check "valid" true (Nec.is_valid Matching.problem g l);
      check "maximal" true (Props.is_maximal_matching g (Matching.decode g l)))
    [ (2, 0); (30, 8); (150, 9) ]

let test_matching_lemma17_cases () =
  (* star with 3 leaves: center matched once, other edges P/O *)
  let g = Gen.star 4 in
  let l = Labeling.create g in
  Matching.solve_node_list g l ~edges:[ 0; 1; 2 ];
  check "valid" true (Nec.is_valid Matching.problem g l);
  let m = Matching.decode g l in
  check_int "exactly one matched" 1
    (Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m)

(* ---------- Edge coloring ---------- *)

let test_edge_coloring_constraints () =
  let p = Edge_coloring.problem in
  check "node ok" true
    (p.Nec.node_ok [ Edge_coloring.Pair (1, 3); Edge_coloring.Pair (2, 1) ]);
  check "degree part too big" false
    (p.Nec.node_ok [ Edge_coloring.Pair (3, 1); Edge_coloring.Pair (1, 2) ]);
  check "color clash" false
    (p.Nec.node_ok [ Edge_coloring.Pair (1, 2); Edge_coloring.Pair (2, 2) ]);
  check "D ignored in count" true
    (p.Nec.node_ok [ Edge_coloring.Pair (1, 1); Edge_coloring.D ]);
  check "edge ok" true
    (p.Nec.edge_ok [ Edge_coloring.Pair (2, 3); Edge_coloring.Pair (2, 3) ]);
  check "palette certificate" false
    (p.Nec.edge_ok [ Edge_coloring.Pair (1, 3); Edge_coloring.Pair (1, 3) ]);
  check "color mismatch" false
    (p.Nec.edge_ok [ Edge_coloring.Pair (2, 3); Edge_coloring.Pair (2, 4) ]);
  check "rank1 D" true (p.Nec.edge_ok [ Edge_coloring.D ]);
  check "rank1 pair" false (p.Nec.edge_ok [ Edge_coloring.Pair (1, 1) ])

let test_edge_coloring_two_delta () =
  let p = Edge_coloring.problem_two_delta ~delta:2 in
  (* palette bound 2*2-1 = 3 *)
  check "color 3 ok" true
    (p.Nec.edge_ok [ Edge_coloring.Pair (2, 3); Edge_coloring.Pair (2, 3) ]);
  check "color 4 too big" false
    (p.Nec.edge_ok [ Edge_coloring.Pair (2, 4); Edge_coloring.Pair (3, 4) ])

let test_edge_coloring_encode_decode () =
  let g = Gen.path 4 in
  let colors = [| 1; 2; 1 |] in
  let l = Edge_coloring.encode g colors in
  check "valid" true (Nec.is_valid Edge_coloring.problem g l);
  check "decode" true (Edge_coloring.decode g l = colors);
  check "out of palette raises" true
    (try Edge_coloring.encode g [| 5; 2; 1 |] |> ignore; false
     with Invalid_argument _ -> true)

let test_edge_coloring_solver () =
  List.iter
    (fun spec ->
      let g = tree_of spec in
      let l = Edge_coloring.solve_sequential g in
      check "valid" true (Nec.is_valid Edge_coloring.problem g l);
      let colors = Edge_coloring.decode g l in
      check "proper" true (Props.is_proper_edge_coloring g colors);
      check "palette" true
        (Graph.fold_edges
           (fun e _ acc -> acc && colors.(e) <= Props.edge_degree g e + 1)
           g true))
    [ (2, 0); (40, 10); (150, 11) ]

(* ---------- Orientation ---------- *)

let test_orientation_constraints () =
  let p = Orientation.problem in
  check "deg2 all in ok" true (p.Nec.node_ok [ Orientation.In; Orientation.In ]);
  check "deg3 all in bad" false
    (p.Nec.node_ok [ Orientation.In; Orientation.In; Orientation.In ]);
  check "deg3 one out" true
    (p.Nec.node_ok [ Orientation.In; Orientation.Out; Orientation.In ]);
  check "edge consistent" true (p.Nec.edge_ok [ Orientation.In; Orientation.Out ]);
  check "edge both out" false (p.Nec.edge_ok [ Orientation.Out; Orientation.Out ])

let test_orientation_solver () =
  List.iter
    (fun g ->
      let l = Orientation.solve_sequential g in
      check "valid" true (Nec.is_valid Orientation.problem g l))
    [
      Gen.random_tree ~n:50 ~seed:3;
      Gen.cycle 7;
      Gen.complete 5;
      Gen.triangulated_grid 5;
      Gen.star 6;
      Gen.grid 4 4;
    ]

(* ---------- qcheck properties ---------- *)

let arb_tree =
  QCheck.(pair (int_range 1 150) (int_range 0 100000))

let prop_mis_solver_valid =
  QCheck.Test.make ~name:"sequential MIS is valid and maximal" ~count:100
    arb_tree
    (fun spec ->
      let g = tree_of spec in
      let l = Mis.solve_sequential g in
      Nec.is_valid Mis.problem g l
      && Props.is_maximal_independent_set g (Mis.decode g l))

let prop_matching_solver_valid =
  QCheck.Test.make ~name:"sequential matching is valid and maximal" ~count:100
    arb_tree
    (fun spec ->
      let g = tree_of spec in
      let l = Matching.solve_sequential g in
      Nec.is_valid Matching.problem g l
      && Props.is_maximal_matching g (Matching.decode g l))

let prop_edge_coloring_solver_valid =
  QCheck.Test.make ~name:"sequential edge coloring is valid and proper"
    ~count:100 arb_tree
    (fun spec ->
      let g = tree_of spec in
      let l = Edge_coloring.solve_sequential g in
      Nec.is_valid Edge_coloring.problem g l
      && Props.is_proper_edge_coloring g (Edge_coloring.decode g l))

let prop_coloring_solver_valid =
  QCheck.Test.make ~name:"sequential coloring is valid and proper" ~count:100
    arb_tree
    (fun spec ->
      let g = tree_of spec in
      let l = Coloring.solve_sequential g in
      Nec.is_valid Coloring.problem_deg_plus_one g l
      && Props.is_proper_coloring g (Coloring.decode g l))

let prop_solvers_on_arbitrary_graphs =
  QCheck.Test.make ~name:"sequential solvers on bounded-arboricity graphs"
    ~count:60
    QCheck.(triple (int_range 2 80) (int_range 1 4) (int_range 0 100000))
    (fun (n, a, seed) ->
      let g = Gen.forest_union ~n ~arboricity:a ~seed in
      Nec.is_valid Matching.problem g (Matching.solve_sequential g)
      && Nec.is_valid Edge_coloring.problem g (Edge_coloring.solve_sequential g)
      && Nec.is_valid Mis.problem g (Mis.solve_sequential g)
      && Nec.is_valid Coloring.problem_deg_plus_one g (Coloring.solve_sequential g))

let prop_encode_decode_roundtrip =
  QCheck.Test.make ~name:"matching encode/decode roundtrip" ~count:60 arb_tree
    (fun spec ->
      let g = tree_of spec in
      let m = Matching.decode g (Matching.solve_sequential g) in
      Matching.decode g (Matching.encode g m) = m)

(* ---------- failure injection: validator soundness ----------

   Corrupt one half-edge of a valid solution with a random different
   label. A corruption may happen to produce another valid labeling (the
   encodings are not unique), but then it must decode to a semantically
   correct solution: "validator-valid implies referee-correct" is exactly
   the Section 5 equivalence between the node-edge-checkable encodings
   and the classic problems. *)

let corrupt_one g labeling alternatives rng =
  let h = Tl_graph.Gen.Prng.int rng (Graph.n_half_edges g) in
  let current = Labeling.get labeling h in
  let others = List.filter (fun l -> Some l <> current) alternatives in
  let l = List.nth others (Tl_graph.Gen.Prng.int rng (List.length others)) in
  Labeling.set_exn_free labeling h l;
  labeling

let prop_mis_validator_sound =
  QCheck.Test.make ~name:"corrupted MIS: valid => referee-correct" ~count:200
    QCheck.(pair (int_range 2 80) (int_range 0 100000))
    (fun (n, seed) ->
      let g = tree_of (n, seed) in
      let rng = Tl_graph.Gen.Prng.create (seed + 17) in
      let l = corrupt_one g (Mis.solve_sequential g) [ Mis.M; Mis.P; Mis.O ] rng in
      (not (Nec.is_valid Mis.problem g l))
      || Props.is_maximal_independent_set g (Mis.decode g l))

let prop_matching_validator_sound =
  QCheck.Test.make ~name:"corrupted matching: valid => referee-correct"
    ~count:200
    QCheck.(pair (int_range 2 80) (int_range 0 100000))
    (fun (n, seed) ->
      let g = tree_of (n, seed) in
      let rng = Tl_graph.Gen.Prng.create (seed + 19) in
      let l =
        corrupt_one g (Matching.solve_sequential g)
          [ Matching.M; Matching.P; Matching.O; Matching.D ]
          rng
      in
      (not (Nec.is_valid Matching.problem g l))
      || Props.is_maximal_matching g (Matching.decode g l))

let prop_coloring_validator_sound =
  QCheck.Test.make ~name:"corrupted coloring: valid => referee-correct"
    ~count:200
    QCheck.(pair (int_range 2 80) (int_range 0 100000))
    (fun (n, seed) ->
      let g = tree_of (n, seed) in
      let rng = Tl_graph.Gen.Prng.create (seed + 23) in
      let l =
        corrupt_one g (Coloring.solve_sequential g) [ 1; 2; 3; 4; 5 ] rng
      in
      (not (Nec.is_valid Coloring.problem_deg_plus_one g l))
      || Props.is_proper_coloring g (Coloring.decode g l))

let prop_edge_coloring_validator_sound =
  QCheck.Test.make ~name:"corrupted edge coloring: valid => referee-correct"
    ~count:200
    QCheck.(pair (int_range 2 80) (int_range 0 100000))
    (fun (n, seed) ->
      let g = tree_of (n, seed) in
      let rng = Tl_graph.Gen.Prng.create (seed + 29) in
      let alternatives =
        Edge_coloring.D
        :: List.concat_map
             (fun a -> List.map (fun b -> Edge_coloring.Pair (a, b)) [ 1; 2; 3 ])
             [ 1; 2; 3 ]
      in
      let l = corrupt_one g (Edge_coloring.solve_sequential g) alternatives rng in
      (not (Nec.is_valid Edge_coloring.problem g l))
      || Props.is_proper_edge_coloring g (Edge_coloring.decode g l))

let test_specific_corruptions_caught () =
  (* a handful of canonical corruptions that must each be reported *)
  let g = Gen.path 3 in
  (* MIS: make both endpoints of an edge claim membership *)
  let l = Labeling.create g in
  List.iter (fun h -> Labeling.set_exn_free l h Mis.M) [ 0; 1; 2; 3 ];
  check "double M caught" false (Nec.is_valid Mis.problem g l);
  (* matching: an unmatched-unmatched edge (maximality violation) *)
  let l = Labeling.create g in
  List.iter (fun h -> Labeling.set_exn_free l h Matching.O) [ 0; 1; 2; 3 ];
  check "O-O caught" false (Nec.is_valid Matching.problem g l);
  (* coloring: same color across an edge *)
  let l = Labeling.create g in
  List.iter (fun h -> Labeling.set_exn_free l h 1) [ 0; 1; 2; 3 ];
  check "monochromatic caught" false
    (Nec.is_valid Coloring.problem_deg_plus_one g l);
  (* edge coloring: palette certificate failure (1,3)+(1,3) *)
  let l = Labeling.create g in
  List.iter
    (fun h -> Labeling.set_exn_free l h (Edge_coloring.Pair (1, 3)))
    [ 0; 1; 2; 3 ];
  check "palette violation caught" false
    (Nec.is_valid Edge_coloring.problem g l)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_mis_solver_valid;
      prop_matching_solver_valid;
      prop_edge_coloring_solver_valid;
      prop_coloring_solver_valid;
      prop_solvers_on_arbitrary_graphs;
      prop_encode_decode_roundtrip;
      prop_mis_validator_sound;
      prop_matching_validator_sound;
      prop_coloring_validator_sound;
      prop_edge_coloring_validator_sound;
    ]

let () =
  Alcotest.run "tl_problems"
    [
      ( "labeling",
        [ Alcotest.test_case "basics" `Quick test_labeling_basics ] );
      ( "validator",
        [
          Alcotest.test_case "missing half edges" `Quick test_validate_reports_missing;
          Alcotest.test_case "edge violations" `Quick test_validate_node_violation;
          Alcotest.test_case "semi-graph scope" `Quick test_validate_semi_ignores_absent;
          Alcotest.test_case "multiset equality" `Quick test_multiset_equal;
        ] );
      ( "mis",
        [
          Alcotest.test_case "node constraint" `Quick test_mis_node_constraint;
          Alcotest.test_case "edge constraint" `Quick test_mis_edge_constraint;
          Alcotest.test_case "encode/decode" `Quick test_mis_encode_decode;
          Alcotest.test_case "sequential solver" `Quick test_mis_solve_sequential;
          Alcotest.test_case "boundary completion" `Quick test_mis_solve_with_boundary;
        ] );
      ( "coloring",
        [
          Alcotest.test_case "constraints" `Quick test_coloring_constraints;
          Alcotest.test_case "encode/decode" `Quick test_coloring_encode_decode;
          Alcotest.test_case "sequential solver" `Quick test_coloring_solver;
          Alcotest.test_case "boundary" `Quick test_coloring_respects_boundary;
        ] );
      ( "matching",
        [
          Alcotest.test_case "constraints (section 5.2)" `Quick test_matching_constraints;
          Alcotest.test_case "encode/decode" `Quick test_matching_encode_decode;
          Alcotest.test_case "sequential solver" `Quick test_matching_solver;
          Alcotest.test_case "lemma 17 labeling process" `Quick test_matching_lemma17_cases;
        ] );
      ( "edge_coloring",
        [
          Alcotest.test_case "constraints (section 5.1)" `Quick test_edge_coloring_constraints;
          Alcotest.test_case "2D-1 variant" `Quick test_edge_coloring_two_delta;
          Alcotest.test_case "encode/decode" `Quick test_edge_coloring_encode_decode;
          Alcotest.test_case "sequential solver" `Quick test_edge_coloring_solver;
        ] );
      ( "orientation",
        [
          Alcotest.test_case "constraints" `Quick test_orientation_constraints;
          Alcotest.test_case "sequential solver" `Quick test_orientation_solver;
        ] );
      ( "failure_injection",
        [
          Alcotest.test_case "canonical corruptions caught" `Quick
            test_specific_corruptions_caught;
        ] );
      ("properties", qcheck_tests);
    ]
